// Package storagesim is a deterministic discrete-event simulator of highly
// configurable HPC storage, built to reproduce "Understanding Highly
// Configurable Storage for Diverse Workloads" (Kogiou et al., IEEE CLUSTER
// 2024). It models the VAST DataStore (CNodes, DBoxes, SCM write staging,
// QLC backbone) under its NFS/TCP-gateway and NFS/RDMA deployments, plus
// the paper's comparison systems — GPFS, Lustre and node-local NVMe — on
// simulated Lassen, Ruby, Quartz and Wombat clusters, and re-implements the
// IOR and DLIO benchmarks with a DFTracer-style I/O trace analysis on top.
//
// This root package is the public facade: it re-exports the stable API and
// offers one-call helpers for the common flows. The architecture lives in
// the internal packages (see DESIGN.md):
//
//	sim      — event kernel, processes, max–min fair bandwidth solver
//	netsim   — links, gateways, NFS/TCP and NFS/RDMA transports
//	device   — SCM/QLC/HDD/NVMe models
//	cache    — LRU page caches with readahead
//	vast, gpfs, lustre, nvmelocal — the storage systems
//	cluster  — Table I machines and Section IV-B deployments
//	ior, dlio, trace — the benchmarks and the tracer
//	experiments — every table and figure of the evaluation
//
// Quick start:
//
//	s := storagesim.New()
//	cl, _ := s.Cluster("Lassen", 4)
//	vast := storagesim.VASTOnLassen(cl)
//	mounts := storagesim.MountAll(vast, cl)
//	res, _ := storagesim.RunIOR(s.Env, mounts, storagesim.IORConfig{
//		Workload: storagesim.Scientific, BlockSize: 1 << 20,
//		TransferSize: 1 << 20, Segments: 100, ProcsPerNode: 44,
//	})
//	fmt.Println(res)
package storagesim

import (
	"storagesim/internal/cluster"
	"storagesim/internal/configsearch"
	"storagesim/internal/dlio"
	"storagesim/internal/experiments"
	"storagesim/internal/faults"
	"storagesim/internal/fidelity"
	"storagesim/internal/fsapi"
	"storagesim/internal/gpfs"
	"storagesim/internal/ior"
	"storagesim/internal/lustre"
	"storagesim/internal/mdtest"
	"storagesim/internal/netsim"
	"storagesim/internal/nvmelocal"
	"storagesim/internal/repair"
	"storagesim/internal/replay"
	"storagesim/internal/resilience"
	"storagesim/internal/sim"
	"storagesim/internal/stats"
	"storagesim/internal/surrogate"
	"storagesim/internal/trace"
	"storagesim/internal/traffic"
	"storagesim/internal/unifyfs"
	"storagesim/internal/vast"
	"storagesim/internal/workloads"
)

// Core re-exports.
type (
	// Env is the discrete-event simulation environment.
	Env = sim.Env
	// Proc is a simulated process.
	Proc = sim.Proc
	// Fabric is the bandwidth-sharing system all pipes live on.
	Fabric = sim.Fabric
	// Group coordinates a domain-partitioned simulation: shards advance in
	// parallel under conservative (lookahead-based) synchronization with
	// bit-identical results for every executor count.
	Group = sim.Group
	// Shard is one domain of a Group — its own Env plus typed links to
	// peers for timestamped cross-domain messages.
	Shard = sim.Shard
	// Client is a per-node mount of a simulated file system.
	Client = fsapi.Client
	// File is an open file handle.
	File = fsapi.File
	// Cluster is an instantiated set of compute nodes.
	Cluster = cluster.Cluster
	// MachineSpec is one Table I row.
	MachineSpec = cluster.MachineSpec
	// IORConfig parameterizes an IOR run.
	IORConfig = ior.Config
	// IORResult is an IOR outcome.
	IORResult = ior.Result
	// DLIOConfig parameterizes a DLIO run.
	DLIOConfig = dlio.Config
	// DLIOResult is a DLIO outcome.
	DLIOResult = dlio.Result
	// TraceRecorder collects read/compute spans.
	TraceRecorder = trace.Recorder
	// TraceAnalysis is the overlap decomposition.
	TraceAnalysis = trace.Analysis
	// ExperimentOptions controls the paper-figure sweeps.
	ExperimentOptions = experiments.Options
	// Panel is a reproduced figure panel.
	Panel = experiments.Panel
	// ResultTable is a reproduced table.
	ResultTable = experiments.Table
	// VASTSystem, GPFSSystem, LustreSystem, NVMeSystem are the storage
	// deployments.
	VASTSystem   = vast.System
	GPFSSystem   = gpfs.System
	LustreSystem = lustre.System
	NVMeSystem   = nvmelocal.System
	// VASTConfig is the VAST deployment parameter set (for custom builds).
	VASTConfig = vast.Config
	// FaultSchedule is a timed list of fault events to inject into a run.
	FaultSchedule = faults.Schedule
	// FaultEvent is one scheduled fault or repair.
	FaultEvent = faults.Event
	// FaultInjector arms schedules on registered targets.
	FaultInjector = faults.Injector
	// FaultTarget is the interface every storage deployment implements for
	// fault injection.
	FaultTarget = faults.Target
	// RepairQoS governs background rebuild traffic: RateBps caps the repair
	// flows (throttled) and zero means fair-share (aggressive).
	RepairQoS = repair.QoS
	// RepairScheme describes a deployment's redundancy (EC/declustered
	// RAID/raidz2/None) and its concurrent-failure tolerance.
	RepairScheme = repair.Scheme
	// RepairManager wraps a Protected backend with self-healing: failures
	// spawn deterministic background rebuild jobs or loss reports.
	RepairManager = repair.Manager
	// ChaosReport is the outcome of one seeded chaos storm.
	ChaosReport = experiments.ChaosReport
	// FS names a storage deployment for the experiment helpers
	// (RunIORWithRepair, RunChaosStorm): "vast", "gpfs", "lustre", "nvme"
	// or "unifyfs".
	FS = experiments.FS
)

// Deployment identifiers for the experiment helpers.
const (
	FSVAST    = experiments.VAST
	FSGPFS    = experiments.GPFS
	FSLustre  = experiments.Lustre
	FSNVMe    = experiments.NVMe
	FSUnifyFS = experiments.UnifyFS
)

// IOR workload personalities (Section V).
const (
	Scientific = ior.Scientific
	Analytics  = ior.Analytics
	ML         = ior.ML
)

// Fault event kinds (see internal/faults for the schedule semantics).
const (
	ServerFail    = faults.ServerFail
	ServerRecover = faults.ServerRecover
	LinkDerate    = faults.LinkDerate
	LinkRestore   = faults.LinkRestore
	MediaDerate   = faults.MediaDerate
	MediaRestore  = faults.MediaRestore
	UnitFail      = faults.UnitFail
	UnitRecover   = faults.UnitRecover
)

// ParseFaultSchedule parses the JSON fault-schedule format consumed by
// `iorbench -faults`.
func ParseFaultSchedule(data []byte) (FaultSchedule, error) { return faults.ParseSchedule(data) }

// Open-loop multi-tenant traffic engine (see internal/traffic).
type (
	// TrafficSpec is a multi-tenant traffic specification.
	TrafficSpec = traffic.Spec
	// TrafficTenant is one tenant: a client population with a workload
	// mix, an arrival process, an admission cap and an SLO.
	TrafficTenant = traffic.Tenant
	// TrafficArrival selects and parameterizes a tenant's arrival process.
	TrafficArrival = traffic.Arrival
	// TrafficConfig parameterizes one open-loop window.
	TrafficConfig = traffic.Config
	// TrafficReport is the per-tenant outcome of a window.
	TrafficReport = traffic.Report
	// ShardedTrafficConfig parameterizes a domain-sharded window: the
	// classic config plus the cross-rack placement fraction.
	ShardedTrafficConfig = traffic.ShardedConfig
	// ShardedTrafficReport carries per-rack and cluster-merged outcomes.
	ShardedTrafficReport = traffic.ShardedReport
	// ShardedChaosReport is the outcome of a domain-parallel chaos storm.
	ShardedChaosReport = experiments.ShardedChaosReport
	// TenantReport is one tenant's accounting: offered/shed/completed
	// counts, delivered bytes, latency quantiles and SLO attainment.
	TenantReport = traffic.TenantReport
	// LatencySketch is the streaming quantile sketch backing the SLO
	// accounting (DDSketch-style, 1% relative error by default).
	LatencySketch = stats.Sketch
	// TrafficOutcomeEvent is one request's terminal accounting record,
	// delivered to Config.OutcomeObserver.
	TrafficOutcomeEvent = traffic.OutcomeEvent
	// ResiliencePolicy is the per-tenant client-side policy stack:
	// deadline, retry budget, hedging, circuit breaker.
	ResiliencePolicy = resilience.Policy
	// ResilienceHedge configures tail-latency hedging.
	ResilienceHedge = resilience.Hedge
	// ResilienceBreakerSpec configures the per-tenant circuit breaker.
	ResilienceBreakerSpec = resilience.BreakerSpec
	// ResilienceBrownout is the engine-wide priority-tiered shedding policy.
	ResilienceBrownout = resilience.Brownout
	// RetryStormResult is the outcome of the retry-storm metastability
	// study.
	RetryStormResult = experiments.RetryStormResult
)

// ParseTenantSpec parses the JSON tenant-spec format consumed by
// `trafficbench -spec`.
func ParseTenantSpec(data []byte) (TrafficSpec, error) { return traffic.ParseSpec(data) }

// NewLatencySketch returns an empty sketch with relative accuracy alpha
// (0 selects the 1% default).
func NewLatencySketch(alpha float64) *LatencySketch { return stats.NewSketch(alpha) }

// NewFaultInjector returns an injector delivering schedules through env's
// event calendar.
func NewFaultInjector(env *Env) *FaultInjector { return faults.NewInjector(env) }

// Access patterns.
const (
	Sequential = fsapi.Sequential
	Random     = fsapi.Random
)

// Simulation bundles an event kernel with its bandwidth fabric.
type Simulation struct {
	Env    *Env
	Fabric *Fabric
}

// New returns a fresh simulation.
func New() *Simulation {
	env := sim.NewEnv()
	return &Simulation{Env: env, Fabric: sim.NewFabric(env)}
}

// Cluster instantiates n nodes of a Table I machine ("Lassen", "Ruby",
// "Quartz", "Wombat").
func (s *Simulation) Cluster(machine string, n int) (*Cluster, error) {
	spec, err := cluster.MachineByName(machine)
	if err != nil {
		return nil, err
	}
	return cluster.New(s.Env, s.Fabric, spec, n)
}

// Machines returns the Table I machine specs.
func Machines() []MachineSpec { return cluster.Machines() }

// TableI renders the paper's Table I.
func TableI() string { return cluster.TableI() }

// Deployment constructors (Section IV-B).
var (
	// VASTOnLassen is the NFS/TCP single-gateway deployment.
	VASTOnLassen = cluster.VASTOnLassen
	// VASTOnRuby is the eight-gateway 40 GbE deployment.
	VASTOnRuby = cluster.VASTOnRuby
	// VASTOnQuartz is the 32-gateway 2×1 Gb deployment.
	VASTOnQuartz = cluster.VASTOnQuartz
	// VASTOnWombat is the NFS/RDMA nconnect=16 multipath deployment.
	VASTOnWombat = cluster.VASTOnWombat
	// WombatVASTConfig exposes the Wombat config for custom builds.
	WombatVASTConfig = cluster.WombatVASTConfig
	// GPFSOnLassen is Lassen's 16-NSD GPFS.
	GPFSOnLassen = cluster.GPFSOnLassen
	// LustreOn is the LC Lustre as mounted on Ruby or Quartz.
	LustreOn = cluster.LustreOn
	// NVMeOnWombat is the node-local 3×970 PRO baseline.
	NVMeOnWombat = cluster.NVMeOnWombat
	// UnifyFSOnWombat is a UnifyFS burst buffer over Wombat's node-local
	// NVMe (the paper's other configurable-storage example).
	UnifyFSOnWombat = cluster.UnifyFSOnWombat
	// UnifyFSWombatConfig exposes the UnifyFS config for policy sweeps.
	UnifyFSWombatConfig = cluster.UnifyFSWombatConfig
)

// UnifyFSSystem is the UnifyFS deployment type.
type UnifyFSSystem = unifyfs.System

// UnifyFSConfig is its parameter set.
type UnifyFSConfig = unifyfs.Config

// UnifyFS placement policies.
const (
	UnifyFSLocalFirst = unifyfs.LocalFirst
	UnifyFSRoundRobin = unifyfs.RoundRobin
)

// Mounter is anything that can attach a compute node (all four systems).
type Mounter interface {
	Mount(node string, nic *netsim.Iface) fsapi.Client
}

// MountAll mounts every node of the cluster on the system and returns the
// per-node clients in node order.
func MountAll(sys Mounter, cl *Cluster) []Client {
	mounts := make([]Client, 0, cl.Size())
	for _, n := range cl.Nodes() {
		mounts = append(mounts, sys.Mount(n.Name, n.NIC))
	}
	return mounts
}

// RunIOR executes the IOR benchmark on the mounts.
func RunIOR(env *Env, mounts []Client, cfg IORConfig) (IORResult, error) {
	return ior.Run(env, mounts, cfg)
}

// RunDLIO executes the DLIO benchmark, recording spans into rec (pass
// NewTraceRecorder()).
func RunDLIO(env *Env, mounts []Client, cfg DLIOConfig, rec *TraceRecorder) (DLIOResult, error) {
	return dlio.Run(env, mounts, cfg, rec)
}

// NewTraceRecorder returns an empty trace recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// NewVAST instantiates a custom VAST deployment (ablations, what-if
// studies). Start from WombatVASTConfig and mutate.
func NewVAST(env *Env, fab *Fabric, cfg VASTConfig) (*VASTSystem, error) {
	return vast.New(env, fab, cfg)
}

// AnalyzeTrace computes the overlap decomposition of recorded spans.
func AnalyzeTrace(rec *TraceRecorder) TraceAnalysis { return trace.Analyze(rec.Spans()) }

// ResNet50Config returns the paper's ResNet-50 DLIO preset (Section VI-B).
func ResNet50Config() DLIOConfig { return dlio.ResNet50() }

// CosmoflowConfig returns the paper's Cosmoflow DLIO preset (Section VI-C).
func CosmoflowConfig() DLIOConfig { return dlio.Cosmoflow() }

// ApplicationWorkload is one Section III-B application preset.
type ApplicationWorkload = workloads.Workload

// Workload engine kinds.
const (
	IORWorkload  = workloads.IORKind
	DLIOWorkload = workloads.DLIOKind
)

// WorkloadCatalogue returns every application preset (CM1, HACC-I/O,
// BD-CATS, KMeans, out-of-core sort, ResNet-50, Cosmoflow, Cosmic Tagger).
func WorkloadCatalogue(procsPerNode int) map[string]ApplicationWorkload {
	return workloads.Catalogue(procsPerNode)
}

// WorkloadByName resolves one preset.
func WorkloadByName(name string, procsPerNode int) (ApplicationWorkload, error) {
	return workloads.ByName(name, procsPerNode)
}

// MDTestConfig parameterizes the metadata benchmark.
type MDTestConfig = mdtest.Config

// MDTestResult is its outcome.
type MDTestResult = mdtest.Result

// RunMDTest executes the MDTest-style metadata benchmark on the mounts.
func RunMDTest(env *Env, mounts []Client, cfg MDTestConfig) (MDTestResult, error) {
	return mdtest.Run(env, mounts, cfg)
}

// ReplayConfig parameterizes a trace replay.
type ReplayConfig = replay.Config

// ReplayResult is the outcome of a trace replay.
type ReplayResult = replay.Result

// ReplayTrace projects recorded spans onto a different deployment,
// preserving the trace's compute durations and read dependencies.
func ReplayTrace(env *Env, mounts []Client, spans []TraceSpan, cfg ReplayConfig, rec *TraceRecorder) (ReplayResult, error) {
	return replay.Run(env, mounts, spans, cfg, rec)
}

// TraceSpan is one recorded interval.
type TraceSpan = trace.Span

// Production trace ingestion and fidelity audits (see internal/trace,
// internal/fidelity and cmd/tracereplay).
type (
	// TraceEvent is one recorded request in the common ingestion schema.
	TraceEvent = trace.Event
	// IngestedTrace is a normalized recorded request stream: validated,
	// sorted by issue time, rebased to t=0.
	IngestedTrace = trace.Trace
	// TraceFormat names a trace encoding (CSV, JSONL, DXT, Chrome).
	TraceFormat = trace.Format
	// TraceReplayConfig parameterizes an open-loop replay of a recorded
	// stream against a mounted backend.
	TraceReplayConfig = traffic.TraceConfig
	// FidelityTolerance bounds acceptable sim-vs-recording error per
	// metric class.
	FidelityTolerance = fidelity.Tolerance
	// FidelityMetric is one audited metric with its error band.
	FidelityMetric = fidelity.Metric
	// FidelityReport is the audit outcome: per-metric error bands and an
	// overall verdict.
	FidelityReport = fidelity.Report
	// FidelityAuditOptions parameterizes a fidelity audit.
	FidelityAuditOptions = experiments.AuditOptions
)

// Trace encodings.
const (
	TraceCSV    = trace.CSV
	TraceJSONL  = trace.JSONL
	TraceDXT    = trace.DXT
	TraceChrome = trace.Chrome
)

// Trace pipeline entry points.
var (
	// ParseTraceEvents parses recorded traffic in any supported encoding
	// into raw events; pass them through NormalizeTrace before use.
	ParseTraceEvents = trace.ParseEvents
	// DetectTraceFormat guesses the encoding from a file name.
	DetectTraceFormat = trace.DetectFormat
	// NormalizeTrace validates, canonicalizes, sorts and rebases raw
	// events into a replayable trace.
	NormalizeTrace = trace.Normalize
	// WriteTraceCSV and WriteTraceJSONL render events in the canonical
	// forms the parsers read back.
	WriteTraceCSV   = trace.WriteCSV
	WriteTraceJSONL = trace.WriteJSONL
	// SpecFromTrace fits a stochastic tenant spec to a recorded stream so
	// it can ride load scaling, saturation sweeps and sharded replay.
	SpecFromTrace = traffic.SpecFromTrace
	// RecordTraffic runs a traffic spec and records its completed request
	// stream as trace events (the run drains, so the recording is
	// audit-grade).
	RecordTraffic = experiments.RecordTraffic
	// ReplayTraceOn replays a normalized trace open-loop against a
	// machine+fs testbed at its recorded timestamps.
	ReplayTraceOn = experiments.ReplayTraceOn
	// FidelityAudit replays a trace and holds the simulation to the
	// trace's recorded metrics with per-metric error bands.
	FidelityAudit = experiments.FidelityAudit
)

// Paper-figure reproductions (see DESIGN.md's experiment index).
var (
	// Fig2a: Lassen IOR scalability, VAST vs GPFS.
	Fig2a = experiments.Fig2a
	// Fig2b: Wombat IOR scalability, VAST vs NVMe.
	Fig2b = experiments.Fig2b
	// Fig3: single-node fsync tests on all four machines.
	Fig3 = experiments.Fig3
	// Fig4: DLIO I/O-time analysis ("resnet50" or "cosmoflow").
	Fig4 = experiments.Fig4
	// Fig56: DLIO application/system throughput panels.
	Fig56 = experiments.Fig56
	// TakeawayRDMAvsTCP: the Section VII administrator takeaway.
	TakeawayRDMAvsTCP = experiments.TakeawayRDMAvsTCP
	// TakeawaySeqVsRandom: the Section VII I/O-researcher takeaway.
	TakeawaySeqVsRandom = experiments.TakeawaySeqVsRandom
	// AblationFabric, AblationNconnect, AblationCNodes, AblationTCPGateway:
	// the design-hypothesis sweeps (the paper's future work).
	AblationFabric     = experiments.AblationFabric
	AblationNconnect   = experiments.AblationNconnect
	AblationCNodes     = experiments.AblationCNodes
	AblationTCPGateway = experiments.AblationTCPGateway
	// AblationSharedFile quantifies the N-1 vs N-N methodology choice of
	// Section IV-C.1.
	AblationSharedFile = experiments.AblationSharedFile
	// Consistency reproduces the 10-repetition shared-environment
	// methodology of Section IV-C.
	Consistency = experiments.Consistency
	// WorkloadSuitability runs every Section III-B application preset on
	// VAST and GPFS and reports the suitability matrix.
	WorkloadSuitability = experiments.WorkloadSuitability
	// FailoverStudy exercises VAST's stateless-CNode failover (Section
	// III-A.2) in degraded mode.
	FailoverStudy = experiments.FailoverStudy
	// DegradedSweep sweeps the fraction of failed servers per deployment
	// under the schedule-driven fault-injection engine.
	DegradedSweep = experiments.DegradedSweep
	// RebuildSweep traces foreground IOR bandwidth over time while a failed
	// DBox rebuilds under throttled vs. aggressive rebuild QoS.
	RebuildSweep = experiments.RebuildSweep
	// RunIORWithRepair runs IOR with the backend wrapped in a self-healing
	// repair.Manager: scheduled failures spawn contending rebuild flows or
	// data-loss reports instead of the raw engine's free snap-back.
	RunIORWithRepair = experiments.RunIORWithRepair
	// RunChaosStorm runs one seeded randomized fault storm with the full
	// invariant suite attached and reports a deterministic digest.
	RunChaosStorm = experiments.RunChaosStorm
	// ChaosBackends lists the deployments the chaos gate covers.
	ChaosBackends = experiments.ChaosBackends
	// RepairThrottled and RepairAggressive are the canonical rebuild QoS
	// presets.
	RepairThrottled  = repair.Throttled
	RepairAggressive = repair.Aggressive
	// SaturationSweep drives the canonical four-tenant, one-million-client
	// mix open-loop at increasing offered load over the VAST and Lustre
	// deployments: delivered goodput flattens while p99 turns the
	// hockey-stick corner.
	SaturationSweep = experiments.SaturationSweep
	// SaturationTenants is that canonical tenant mix (also trafficbench's
	// built-in spec).
	SaturationTenants = experiments.SaturationTenants
	// RetryStormStudy contrasts unbounded client retries against the
	// budgeted resilience stack (deadlines, retry budgets, jittered
	// backoff, circuit breakers) through a transient link brownout — the
	// metastable-failure demonstration.
	RetryStormStudy = experiments.RetryStormStudy
	// RunTraffic runs an open-loop traffic spec on a machine/fs testbed.
	RunTraffic = experiments.RunTraffic
	// RunTrafficWithFaults additionally arms a fault schedule on the
	// deployment before the window opens.
	RunTrafficWithFaults = experiments.RunTrafficWithFaults
	// NewGroup creates a domain group running on up to `parallel`
	// executors (0 = GOMAXPROCS).
	NewGroup = sim.NewGroup
	// RunShardedTraffic splits a deployment over `racks` domain shards and
	// drives the traffic engine across them in parallel; a remote fraction
	// of requests is forwarded over inter-rack links.
	RunShardedTraffic = experiments.RunShardedTraffic
	// RunShardedChaosStorm is the chaos gate's domain-parallel variant:
	// per-rack seeded storms under a sharded traffic foreground.
	RunShardedChaosStorm = experiments.RunShardedChaosStorm
	// AblationUnifyFS sweeps UnifyFS's placement and I/O-server policies
	// (the Section I configurability example).
	AblationUnifyFS = experiments.AblationUnifyFS
	// TableIExperiment: Table I as a typed result table.
	TableIExperiment = experiments.TableI
	// Fig1: the architecture diagrams of Figure 1, generated from the live
	// deployment parameters.
	Fig1 = experiments.Fig1
)

// What-if configuration explorer (internal/configsearch + surrogate):
// enumerate a typed deployment knob space, score every candidate with the
// analytical surrogate, DES-verify only the predicted Pareto frontier
// plus a margin band, report the measured frontier.
type (
	// ConfigSpace is a typed deployment knob space.
	ConfigSpace = configsearch.Space
	// ConfigCandidate is one fully specified configuration.
	ConfigCandidate = configsearch.Candidate
	// ConfigMetrics is one candidate's predicted or measured performance.
	ConfigMetrics = configsearch.Metrics
	// WhatIfConfig parameterizes one explorer run.
	WhatIfConfig = experiments.WhatIfConfig
	// WhatIfResult is one completed explorer run.
	WhatIfResult = experiments.WhatIfResult
	// SurrogateCoeffs are the analytical model's calibratable constants.
	SurrogateCoeffs = surrogate.Coeffs
)

var (
	// ConfigSearch runs the explorer end to end (see cmd/whatif).
	ConfigSearch = experiments.ConfigSearch
	// WhatIfTenants is the pinned ckpt/scan/meta tenant mix.
	WhatIfTenants = experiments.WhatIfTenants
	// WhatIfFixtureSpace is the pinned Wombat vast-vs-nvme knob space.
	WhatIfFixtureSpace = experiments.WhatIfFixtureSpace
	// WhatIfRubySpace is the Ruby vast-vs-lustre knob space.
	WhatIfRubySpace = experiments.WhatIfRubySpace
	// FigWhatIf renders both spaces as predicted-vs-measured frontier
	// panels (paperfigs -fig whatif).
	FigWhatIf = experiments.FigWhatIf
	// ParseConfigSpace parses the JSON knob-space format consumed by
	// `whatif -space`.
	ParseConfigSpace = configsearch.ParseSpace
	// ParseConfigObjectives parses a comma-separated objective list.
	ParseConfigObjectives = configsearch.ParseObjectives
)
