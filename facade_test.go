package storagesim_test

import (
	"strings"
	"testing"

	storagesim "storagesim"
)

func TestFacadeQuickFlow(t *testing.T) {
	s := storagesim.New()
	cl, err := s.Cluster("Lassen", 2)
	if err != nil {
		t.Fatal(err)
	}
	mounts := storagesim.MountAll(storagesim.VASTOnLassen(cl), cl)
	if len(mounts) != 2 {
		t.Fatalf("mounts = %d", len(mounts))
	}
	res, err := storagesim.RunIOR(s.Env, mounts, storagesim.IORConfig{
		Workload: storagesim.Analytics, BlockSize: 1 << 20, TransferSize: 1 << 20,
		Segments: 64, ProcsPerNode: 8, ReorderTasks: true, Dir: "/t",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteBW <= 0 || res.ReadBW <= 0 {
		t.Fatalf("zero bandwidth: %+v", res)
	}
}

func TestFacadeClusterErrors(t *testing.T) {
	s := storagesim.New()
	if _, err := s.Cluster("Summit", 1); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := s.Cluster("Wombat", 100); err == nil {
		t.Fatal("oversubscription accepted")
	}
}

func TestFacadeTableI(t *testing.T) {
	out := storagesim.TableI()
	if !strings.Contains(out, "Lassen") || !strings.Contains(out, "Wombat") {
		t.Fatalf("Table I incomplete:\n%s", out)
	}
	if len(storagesim.Machines()) != 4 {
		t.Fatal("machine list incomplete")
	}
}

func TestFacadeDLIOAndTrace(t *testing.T) {
	s := storagesim.New()
	cl, err := s.Cluster("Lassen", 1)
	if err != nil {
		t.Fatal(err)
	}
	mounts := storagesim.MountAll(storagesim.GPFSOnLassen(cl), cl)
	cfg := storagesim.ResNet50Config()
	cfg.Samples = 64 // shrink for a unit test
	rec := storagesim.NewTraceRecorder()
	res, err := storagesim.RunDLIO(s.Env, mounts, cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	a := storagesim.AnalyzeTrace(rec)
	if a.TotalIO != res.Analysis.TotalIO {
		t.Fatal("AnalyzeTrace disagrees with the run's own analysis")
	}
	if a.Ranks != 4 {
		t.Fatalf("ranks = %d, want 4 (one per Lassen GPU)", a.Ranks)
	}
}

func TestFacadeCustomVAST(t *testing.T) {
	s := storagesim.New()
	cl, err := s.Cluster("Wombat", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := storagesim.WombatVASTConfig(cl)
	cfg.CNodes = 2
	sys, err := storagesim.NewVAST(s.Env, s.Fabric, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Config().CNodes != 2 {
		t.Fatal("custom config not applied")
	}
	cfg.CNodes = 0
	if _, err := storagesim.NewVAST(s.Env, s.Fabric, cfg); err == nil {
		t.Fatal("invalid custom config accepted")
	}
}
