// Fault injection: run the same IOR job on the Wombat VAST deployment
// twice — once healthy, once under a schedule that kills CNode 0
// mid-run, derates the fabric, and then repairs both — and print the
// bandwidth each run delivered. The schedule is the JSON format of
// `iorbench -faults`; the copy in this directory works there too:
//
//	go run ./examples/faultinjection
//	go run ./cmd/iorbench -machine Wombat -fs vast -nodes 2 \
//	    -faults examples/faultinjection/schedule.json
//
// Fault events ride the simulation event calendar, so a seeded degraded
// run is exactly as reproducible as a healthy one.
package main

import (
	"fmt"
	"log"

	storagesim "storagesim"
)

const schedule = `{"events": [
  {"at": "5ms",  "kind": "server-fail",    "target": "vast", "index": 0},
  {"at": "8ms",  "kind": "link-derate",    "target": "vast", "factor": 0.5},
  {"at": "14ms", "kind": "link-restore",   "target": "vast"},
  {"at": "20ms", "kind": "server-recover", "target": "vast", "index": 0}
]}`

func main() {
	sched, err := storagesim.ParseFaultSchedule([]byte(schedule))
	if err != nil {
		log.Fatal(err)
	}

	for _, run := range []struct {
		name  string
		sched storagesim.FaultSchedule
	}{
		{"healthy", storagesim.FaultSchedule{}},
		{"faulted", sched},
	} {
		s := storagesim.New()
		cl, err := s.Cluster("Wombat", 2)
		if err != nil {
			log.Fatal(err)
		}
		vast := storagesim.VASTOnWombat(cl)
		mounts := storagesim.MountAll(vast, cl)

		// The deployment registers as a fault target under the name the
		// schedule's "target" fields use.
		inj := storagesim.NewFaultInjector(s.Env)
		inj.Register("vast", vast)
		if err := inj.Apply(run.sched); err != nil {
			log.Fatal(err)
		}

		res, err := storagesim.RunIOR(s.Env, mounts, storagesim.IORConfig{
			Workload:     storagesim.Scientific, // sequential write
			BlockSize:    1 << 20,
			TransferSize: 1 << 20,
			Segments:     64,
			ProcsPerNode: 8,
			OpLevel:      true, // per-op path resolution, so failover is live
			Seed:         42,
			Dir:          "/faults",
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-8s write %6.2f GB/s in %v\n", run.name, res.WriteBW/1e9, res.WriteTime)
		for _, a := range inj.Applied() {
			fmt.Printf("         %v\n", a)
		}
	}

	fmt.Println("\nThe faulted run dips while CNode 0 is down (its clients fail over")
	fmt.Println("and pay the NFS retransmit penalty) and recovers once the schedule")
	fmt.Println("repairs the server: capacity loss, not outage.")
}
