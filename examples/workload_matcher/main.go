// Workload matcher: the paper's introduction asks for "a better mapping
// between specific workloads and file systems". This example walks the
// Section III-B application catalogue — CM1, HACC-I/O, BD-CATS, KMeans,
// out-of-core sort, and the DL trainers — runs each on VAST (NFS/TCP) and
// GPFS on a 4-node Lassen slice, and prints a recommendation per
// application, plus metadata rates from the MDTest-style benchmark.
package main

import (
	"fmt"
	"log"
	"sort"

	storagesim "storagesim"
)

const (
	nodes = 4
	ppn   = 16
)

func main() {
	fmt.Printf("Matching Section III-B applications to file systems (%d Lassen nodes):\n\n", nodes)
	cat := storagesim.WorkloadCatalogue(ppn)
	names := make([]string, 0, len(cat))
	for name := range cat {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		w := cat[name]
		if w.Kind != storagesim.IORWorkload {
			continue // the DL trainers are covered by examples/deeplearning
		}
		cfg := w.IOR
		cfg.Segments = 64 // keep the demo quick
		vast := runIOR("vast", cfg)
		gpfs := runIOR("gpfs", cfg)
		rec := "GPFS"
		if vast >= 0.8*gpfs {
			rec = "VAST (relieves GPFS contention)"
		}
		fmt.Printf("  %-18s %-52s vast %6.2f GB/s  gpfs %6.2f GB/s  -> %s\n",
			w.Name, w.Description, vast, gpfs, rec)
	}

	fmt.Println("\nMetadata rates (creates/sec, MDTest-style):")
	for _, fs := range []string{"vast", "gpfs"} {
		res := runMD(fs)
		fmt.Printf("  %-5s %9.0f creates/s  %9.0f opens/s\n", fs, res.CreatesPerSec, res.OpensPerSec)
	}
	fmt.Println("\nLow-I/O applications fit the new store; streaming-heavy ones need")
	fmt.Println("the parallel file system until the TCP gateway is upgraded (the")
	fmt.Println("paper's administrator takeaway).")
}

// runIOR executes one preset on the named file system and returns the
// workload's headline bandwidth in GB/s.
func runIOR(fs string, cfg storagesim.IORConfig) float64 {
	s := storagesim.New()
	cl, err := s.Cluster("Lassen", nodes)
	if err != nil {
		log.Fatal(err)
	}
	mounts := mount(s, cl, fs)
	res, err := storagesim.RunIOR(s.Env, mounts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.Workload == storagesim.Scientific {
		return res.WriteBW / 1e9
	}
	return res.ReadBW / 1e9
}

// runMD executes the metadata benchmark.
func runMD(fs string) storagesim.MDTestResult {
	s := storagesim.New()
	cl, err := s.Cluster("Lassen", nodes)
	if err != nil {
		log.Fatal(err)
	}
	res, err := storagesim.RunMDTest(s.Env, mount(s, cl, fs), storagesim.MDTestConfig{
		FilesPerRank: 64, ProcsPerNode: ppn, Dir: "/match",
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// mount attaches every node to the requested deployment.
func mount(s *storagesim.Simulation, cl *storagesim.Cluster, fs string) []storagesim.Client {
	if fs == "vast" {
		return storagesim.MountAll(storagesim.VASTOnLassen(cl), cl)
	}
	return storagesim.MountAll(storagesim.GPFSOnLassen(cl), cl)
}
