// Self-healing walkthrough: fail one VAST DBox mid-run and let the
// repair manager rebuild it while the benchmark keeps writing. The same
// IOR job runs three times — never failed, failure healed by a throttled
// rebuild, failure healed by an aggressive rebuild — and the write times
// show the trade-off the rebuild-rate knob buys: an aggressive rebuild
// contends for the fabric while it runs but restores full capacity and
// redundancy quickly; a throttled rebuild barely contends yet leaves the
// pool degraded — and one failure away from data loss — for many times
// longer.
//
//	go run ./examples/rebuild
//
// The figure version of this experiment is `paperfigs -fig rebuild`; a
// randomized storm over the same machinery is
// `iorbench -fs vast -chaos seed=N`.
package main

import (
	"fmt"
	"log"

	storagesim "storagesim"
)

func main() {
	cfg := storagesim.IORConfig{
		Workload:     storagesim.Scientific, // sequential write
		BlockSize:    1 << 20,
		TransferSize: 1 << 20,
		Segments:     24,
		ProcsPerNode: 4,
		OpLevel:      true, // per-op path resolution, so degraded state is live
		Seed:         42,
		Dir:          "/rebuild",
	}
	const nodes = 2

	// Reference: the clean run also sizes the failure instant.
	clean, _, err := storagesim.RunIORWithRepair("Wombat", storagesim.FSVAST,
		nodes, cfg, storagesim.FaultSchedule{}, storagesim.RepairAggressive())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s write %6.2f GB/s in %v\n", "clean", clean.WriteBW/1e9, clean.WriteTime)

	// DBox 0 dies a quarter into the run. Within EC tolerance, so the
	// manager spawns a rebuild instead of reporting loss; the rebuild's
	// flows cross the same QLC backbone the benchmark writes through.
	sched := storagesim.FaultSchedule{Events: []storagesim.FaultEvent{
		{At: clean.WriteTime / 4, Kind: storagesim.UnitFail, Index: 0},
	}}

	for _, mode := range []struct {
		name string
		qos  storagesim.RepairQoS
	}{
		// Throttled: repair trickles at 1 GB/s, foreground keeps the rest.
		{"throttled", storagesim.RepairThrottled(1e9)},
		// Aggressive: repair flows take their max-min fair share.
		{"aggressive", storagesim.RepairAggressive()},
	} {
		// Floor the rebuild volume: a real DBox holds far more live data
		// than this quick benchmark writes.
		mode.qos.MinBytes = 256 << 20
		res, mgr, err := storagesim.RunIORWithRepair("Wombat", storagesim.FSVAST,
			nodes, cfg, sched, mode.qos)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s write %6.2f GB/s in %v\n", mode.name, res.WriteBW/1e9, res.WriteTime)
		for _, j := range mgr.Jobs() {
			fmt.Printf("             rebuilt unit %d: %.0f MiB in %v\n",
				j.Unit, j.Bytes/(1<<20), j.End.Sub(j.Start))
		}
		if err := mgr.CheckComplete(); err != nil {
			log.Fatalf("%s: %v", mode.name, err)
		}
	}

	// The same machinery under a randomized (but seeded, so perfectly
	// reproducible) fault storm, with the invariant suite attached.
	rep, err := storagesim.RunChaosStorm(storagesim.FSVAST, 0x5eed1,
		storagesim.ExperimentOptions{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchaos storm: %s\n", rep.Digest())
	if len(rep.Violations) > 0 {
		log.Fatalf("invariant violations: %v", rep.Violations)
	}

	fmt.Println("\nBoth healed runs land between the clean run and a failure that")
	fmt.Println("never heals. The knob picks where the cost lands: the aggressive")
	fmt.Println("rebuild contends for the QLC backbone but restores full capacity")
	fmt.Println("within the run, while the throttled rebuild barely contends yet")
	fmt.Println("leaves the pool degraded — and one failure away from data loss —")
	fmt.Println("long after the benchmark ends.")
}
