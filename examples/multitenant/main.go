// Multi-tenant traffic: drive the Wombat VAST deployment with the
// open-loop traffic engine — a million logical clients in four tenants,
// aggregated into a handful of arrival processes — at increasing offered
// load, and watch the hockey stick: delivered goodput flattens while p99
// latency and shed requests explode. The tenant spec is the JSON format
// of `trafficbench -spec`; the copy in this directory works there too:
//
//	go run ./examples/multitenant
//	go run ./cmd/trafficbench -machine Wombat -fs vast -nodes 4 \
//	    -spec examples/multitenant/tenants.json -load 8
//
// Open-loop means arrivals never wait for completions — unlike the IOR
// and DLIO benchmarks, which are closed-loop and always deliver whatever
// the system can absorb. The per-tenant admission cap sheds work beyond
// its in-flight limit instead of queueing it without bound.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"time"

	storagesim "storagesim"
)

func main() {
	data, err := os.ReadFile("examples/multitenant/tenants.json")
	if err != nil {
		// Also work when run from inside the directory.
		data, err = os.ReadFile("tenants.json")
	}
	if err != nil {
		log.Fatal(err)
	}
	spec, err := storagesim.ParseTenantSpec(data)
	if err != nil {
		log.Fatal(err)
	}

	window := 2 * time.Second
	for _, load := range []float64{1, 8, 32} {
		rep, err := storagesim.RunTraffic("Wombat", storagesim.FSVAST, 4, storagesim.TrafficConfig{
			Spec:      spec,
			Duration:  window,
			Seed:      0x5eed,
			LoadScale: load,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("load %gx over %v:\n", load, window)
		for _, tr := range rep.Tenants {
			attain := "no SLO"
			if tr.SLOP99 > 0 && !math.IsNaN(tr.SLOAttainment) {
				attain = fmt.Sprintf("%.1f%% under %v", 100*tr.SLOAttainment, tr.SLOP99)
			}
			fmt.Printf("  %-6s offered %6d shed %5d done %6d  %8.2f MB/s  p99 %-12v %s\n",
				tr.Name, tr.Offered, tr.Shed, tr.Completed,
				tr.GoodputBps(rep.Duration)/1e6, tr.P99, attain)
		}
	}
}
