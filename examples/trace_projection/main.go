// Trace projection: the capacity-planning workflow built on the
// DFTracer-style traces. Train ResNet-50 on the TCP-throttled VAST
// deployment, record the trace, then replay the same trace — identical
// compute durations, identical read dependencies — against GPFS and
// against the RDMA VAST deployment on Wombat, and compare the runtimes the
// application would have seen. This is the "which file system should this
// workload use?" question answered with evidence instead of intuition.
package main

import (
	"fmt"
	"log"

	storagesim "storagesim"
)

func main() {
	const nodes = 2

	// 1. Record: run the workload where it lives today.
	fmt.Println("Recording ResNet-50 on VAST (NFS/TCP, Lassen)...")
	spans, base := record(nodes)
	fmt.Printf("  runtime %.2fs, %.1f%% of I/O hidden, %d spans captured\n\n",
		base.Runtime.Seconds(), 100*base.Analysis.HiddenFraction(), len(spans))

	// 2. Project: replay the trace on the alternatives.
	targets := []struct{ fs, machine string }{
		{"vast", "Lassen"}, // sanity: projecting onto itself
		{"gpfs", "Lassen"},
		{"vast", "Wombat"}, // the RDMA deployment
	}
	fmt.Println("Projected runtimes (same compute, same dependencies):")
	for _, tgt := range targets {
		res := project(spans, tgt.fs, tgt.machine, nodes)
		fmt.Printf("  %-6s on %-7s runtime %6.2fs  speedup %5.2fx  stalls %6.3fs\n",
			tgt.fs, tgt.machine, res.Runtime.Seconds(), res.Speedup,
			res.Analysis.NonOverlapIO.Seconds())
	}
	fmt.Println("\nFor this low-I/O workload every deployment keeps the GPUs fed —")
	fmt.Println("the paper's conclusion that ResNet-50 can move to VAST and relieve")
	fmt.Println("GPFS holds under projection too.")
}

// record trains ResNet-50 on Lassen's VAST and returns the trace.
func record(nodes int) ([]storagesim.TraceSpan, storagesim.DLIOResult) {
	s := storagesim.New()
	cl, err := s.Cluster("Lassen", nodes)
	if err != nil {
		log.Fatal(err)
	}
	mounts := storagesim.MountAll(storagesim.VASTOnLassen(cl), cl)
	rec := storagesim.NewTraceRecorder()
	res, err := storagesim.RunDLIO(s.Env, mounts, storagesim.ResNet50Config(), rec)
	if err != nil {
		log.Fatal(err)
	}
	return rec.Spans(), res
}

// project replays the trace on the named deployment.
func project(spans []storagesim.TraceSpan, fs, machine string, nodes int) storagesim.ReplayResult {
	s := storagesim.New()
	cl, err := s.Cluster(machine, nodes)
	if err != nil {
		log.Fatal(err)
	}
	var mounts []storagesim.Client
	switch fs + "/" + machine {
	case "vast/Lassen":
		mounts = storagesim.MountAll(storagesim.VASTOnLassen(cl), cl)
	case "gpfs/Lassen":
		mounts = storagesim.MountAll(storagesim.GPFSOnLassen(cl), cl)
	case "vast/Wombat":
		mounts = storagesim.MountAll(storagesim.VASTOnWombat(cl), cl)
	}
	res, err := storagesim.ReplayTrace(s.Env, mounts, spans, storagesim.ReplayConfig{}, storagesim.NewTraceRecorder())
	if err != nil {
		log.Fatal(err)
	}
	return res
}
