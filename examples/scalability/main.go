// Scalability: reproduce the shape of the paper's Figure 2 from the public
// API — sweep node counts on Lassen (VAST/TCP vs GPFS) and Wombat
// (VAST/RDMA vs node-local NVMe) for the three workload personalities, and
// print per-node and aggregate bandwidth so the saturation points are
// visible.
package main

import (
	"fmt"
	"log"

	storagesim "storagesim"
)

func main() {
	fmt.Println("Figure 2a — Lassen, 44 ppn, 1 MiB transfers, 129 GB per node")
	sweep("Lassen", []int{1, 4, 16, 64, 128}, 44,
		map[string]func(*storagesim.Cluster) []storagesim.Client{
			"vast": func(cl *storagesim.Cluster) []storagesim.Client {
				return storagesim.MountAll(storagesim.VASTOnLassen(cl), cl)
			},
			"gpfs": func(cl *storagesim.Cluster) []storagesim.Client {
				return storagesim.MountAll(storagesim.GPFSOnLassen(cl), cl)
			},
		})

	fmt.Println("\nFigure 2b — Wombat, 48 ppn")
	sweep("Wombat", []int{1, 2, 4, 8}, 48,
		map[string]func(*storagesim.Cluster) []storagesim.Client{
			"vast": func(cl *storagesim.Cluster) []storagesim.Client {
				return storagesim.MountAll(storagesim.VASTOnWombat(cl), cl)
			},
			"nvme": func(cl *storagesim.Cluster) []storagesim.Client {
				return storagesim.MountAll(storagesim.NVMeOnWombat(cl), cl)
			},
		})
}

// sweep runs the three workloads over the node counts for each deployment.
func sweep(machine string, nodes []int, ppn int, deploys map[string]func(*storagesim.Cluster) []storagesim.Client) {
	workloads := []struct {
		name string
		wl   storagesim.IORConfig
	}{
		{"seq-write (scientific)", storagesim.IORConfig{Workload: storagesim.Scientific}},
		{"seq-read (analytics)", storagesim.IORConfig{Workload: storagesim.Analytics}},
		{"random-read (ML)", storagesim.IORConfig{Workload: storagesim.ML}},
	}
	for _, w := range workloads {
		fmt.Printf("  %s\n", w.name)
		for _, fsName := range orderedKeys(deploys) {
			fmt.Printf("    %-5s", fsName)
			for _, n := range nodes {
				s := storagesim.New()
				cl, err := s.Cluster(machine, n)
				if err != nil {
					log.Fatal(err)
				}
				cfg := w.wl
				cfg.BlockSize = 1 << 20
				cfg.TransferSize = 1 << 20
				cfg.Segments = 3000 // the paper's cache-defeating 129 GB/node
				cfg.ProcsPerNode = ppn
				cfg.ReorderTasks = true
				cfg.Dir = "/scal"
				res, err := storagesim.RunIOR(s.Env, deploys[fsName](cl), cfg)
				if err != nil {
					log.Fatal(err)
				}
				bw := res.WriteBW
				if cfg.Workload != storagesim.Scientific {
					bw = res.ReadBW
				}
				fmt.Printf("  %3dn:%7.1f GB/s", n, bw/1e9)
			}
			fmt.Println()
		}
	}
}

// orderedKeys returns map keys in a fixed order (vast first).
func orderedKeys(m map[string]func(*storagesim.Cluster) []storagesim.Client) []string {
	keys := []string{}
	for _, k := range []string{"vast", "gpfs", "nvme", "lustre"} {
		if _, ok := m[k]; ok {
			keys = append(keys, k)
		}
	}
	return keys
}
