// Quickstart: build a simulated Lassen cluster, deploy VAST behind its
// NFS/TCP gateway and GPFS on the InfiniBand SAN, run a small IOR job on
// both, and print the aggregate bandwidths — the 30-second tour of the
// public API.
package main

import (
	"fmt"
	"log"

	storagesim "storagesim"
)

func main() {
	const nodes = 4

	for _, fs := range []string{"VAST (NFS/TCP gateway)", "GPFS (IB SAN)"} {
		// Every run gets its own simulation: virtual time, bandwidth fabric
		// and cluster are all rebuilt, so runs are independent and
		// reproducible.
		s := storagesim.New()
		cl, err := s.Cluster("Lassen", nodes)
		if err != nil {
			log.Fatal(err)
		}

		var mounts []storagesim.Client
		if fs[0] == 'V' {
			mounts = storagesim.MountAll(storagesim.VASTOnLassen(cl), cl)
		} else {
			mounts = storagesim.MountAll(storagesim.GPFSOnLassen(cl), cl)
		}

		res, err := storagesim.RunIOR(s.Env, mounts, storagesim.IORConfig{
			Workload:     storagesim.Analytics, // sequential write + read
			BlockSize:    1 << 20,              // IOR -b 1m
			TransferSize: 1 << 20,              // IOR -t 1m
			Segments:     256,                  // IOR -s 256
			ProcsPerNode: 44,                   // full Lassen nodes
			ReorderTasks: true,                 // don't read your own writes
			Dir:          "/quickstart",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %d nodes: write %6.2f GB/s, read %6.2f GB/s\n",
			fs, nodes, res.WriteBW/1e9, res.ReadBW/1e9)
	}

	fmt.Println("\nThe TCP gateway caps each VAST client at one connection's worth")
	fmt.Println("(~1.1 GB/s per node) while GPFS streams at the pagepool limit —")
	fmt.Println("the mechanism behind Figure 2a of the paper.")
}
