// Deployment tuning: the system-administrator view. Compare the same VAST
// hardware behind the two deployments the paper measured (NFS over a TCP
// gateway vs NFS over RDMA with nconnect and multipathing), then sweep the
// knobs an administrator controls — nconnect and the CBox↔DBox enclosure
// fabric — to see where each deployment's ceiling comes from. This is the
// paper's Section VII admin takeaway plus its stated future work, runnable
// on a laptop.
package main

import (
	"fmt"
	"log"

	storagesim "storagesim"
)

func main() {
	fmt.Println("Per-node VAST bandwidth by deployment (2 nodes, full ppn):")
	tcpW, tcpR := vastPerNode("Lassen", nil)
	fmt.Printf("  NFS/TCP via gateway:          write %5.2f GB/s  read %5.2f GB/s\n", tcpW, tcpR)
	rdmaW, rdmaR := vastPerNode("Wombat", nil)
	fmt.Printf("  NFS/RDMA nconnect+multipath:  write %5.2f GB/s  read %5.2f GB/s\n", rdmaW, rdmaR)
	fmt.Printf("  -> RDMA advantage: write %.1fx, read %.1fx (paper: up to 8x)\n\n", rdmaW/tcpW, rdmaR/tcpR)

	fmt.Println("nconnect sweep (Wombat, single node, sequential read):")
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		n := n
		_, r := vastPerNode("Wombat", func(cfg *storagesim.VASTConfig) {
			type setter interface{ SetConnections(int) }
			cfg.Transport.(setter).SetConnections(n)
		})
		fmt.Printf("  nconnect=%2d: %6.2f GB/s per node\n", n, r)
	}
	fmt.Println("  -> returns diminish once the connection pool stops being the")
	fmt.Println("     narrowest pipe on the path.")

	fmt.Println("\nEnclosure fabric sweep (Wombat, 8 nodes, random read aggregate):")
	for _, gbps := range []float64{3.125, 6.25, 12.5, 25} {
		gbps := gbps
		agg := vastAggregate8("Wombat", func(cfg *storagesim.VASTConfig) {
			cfg.FabricBWPerDBox = gbps * 1e9
		})
		fmt.Printf("  %6.3f GB/s per DBox: %6.1f GB/s aggregate\n", gbps, agg)
	}
	fmt.Println("  -> the paper hypothesized the 2x50Gb enclosure links cap")
	fmt.Println("     scalability; the sweep confirms the aggregate tracks them.")
}

// vastPerNode runs write and read IOR at two nodes and returns per-node
// GB/s. mutate customizes the Wombat config (nil for stock deployments).
func vastPerNode(machine string, mutate func(*storagesim.VASTConfig)) (write, read float64) {
	const nodes = 2
	run := func(wl storagesim.IORConfig) storagesim.IORResult {
		s := storagesim.New()
		cl, err := s.Cluster(machine, nodes)
		if err != nil {
			log.Fatal(err)
		}
		var mounts []storagesim.Client
		if machine == "Wombat" {
			cfg := storagesim.WombatVASTConfig(cl)
			if mutate != nil {
				mutate(&cfg)
			}
			sys, err := newVAST(s, cfg)
			if err != nil {
				log.Fatal(err)
			}
			mounts = storagesim.MountAll(sys, cl)
		} else {
			mounts = storagesim.MountAll(storagesim.VASTOnLassen(cl), cl)
		}
		wl.BlockSize, wl.TransferSize, wl.Segments = 1<<20, 1<<20, 3000
		wl.ProcsPerNode, wl.ReorderTasks, wl.Dir = 44, true, "/tuning"
		res, err := storagesim.RunIOR(s.Env, mounts, wl)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	w := run(storagesim.IORConfig{Workload: storagesim.Scientific})
	r := run(storagesim.IORConfig{Workload: storagesim.Analytics})
	return w.WriteBW / 1e9 / nodes, r.ReadBW / 1e9 / nodes
}

// vastAggregate8 runs the ML workload at 8 Wombat nodes with a mutated
// config and returns aggregate GB/s.
func vastAggregate8(machine string, mutate func(*storagesim.VASTConfig)) float64 {
	s := storagesim.New()
	cl, err := s.Cluster(machine, 8)
	if err != nil {
		log.Fatal(err)
	}
	cfg := storagesim.WombatVASTConfig(cl)
	mutate(&cfg)
	sys, err := newVAST(s, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := storagesim.RunIOR(s.Env, storagesim.MountAll(sys, cl), storagesim.IORConfig{
		Workload: storagesim.ML, BlockSize: 1 << 20, TransferSize: 1 << 20,
		Segments: 3000, ProcsPerNode: 48, ReorderTasks: true, Dir: "/tuning",
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.ReadBW / 1e9
}

// newVAST instantiates a custom VAST config on the simulation.
func newVAST(s *storagesim.Simulation, cfg storagesim.VASTConfig) (*storagesim.VASTSystem, error) {
	return storagesim.NewVAST(s.Env, s.Fabric, cfg)
}
