// Deeplearning: run the paper's two DLIO applications — ResNet-50 (weak
// scaling, 8 I/O threads) and Cosmoflow (strong scaling, 4 I/O threads,
// 256 KB transfers) — on Lassen against VAST and GPFS, and print the
// DFTracer-style I/O-time decomposition of Section VI: how much of the I/O
// the asynchronous input pipeline hides behind the GPU compute, and the
// application vs system throughput views.
package main

import (
	"fmt"
	"log"

	storagesim "storagesim"
)

func main() {
	const nodes = 4

	run := func(label string, cfg storagesim.DLIOConfig, mountFS func(*storagesim.Cluster) []storagesim.Client) {
		s := storagesim.New()
		cl, err := s.Cluster("Lassen", nodes)
		if err != nil {
			log.Fatal(err)
		}
		rec := storagesim.NewTraceRecorder()
		res, err := storagesim.RunDLIO(s.Env, mountFS(cl), cfg, rec)
		if err != nil {
			log.Fatal(err)
		}
		a := res.Analysis
		fmt.Printf("%-20s io=%8.2fs hidden=%5.1f%% stall=%7.2fs  app=%7.1f sys=%7.1f samples/s\n",
			label, a.TotalIO.Seconds(), 100*a.HiddenFraction(),
			a.NonOverlapIO.Seconds(), res.AppSamplesPerSec, res.SysSamplesPerSec)
	}

	vast := func(cl *storagesim.Cluster) []storagesim.Client {
		return storagesim.MountAll(storagesim.VASTOnLassen(cl), cl)
	}
	gpfs := func(cl *storagesim.Cluster) []storagesim.Client {
		return storagesim.MountAll(storagesim.GPFSOnLassen(cl), cl)
	}

	fmt.Printf("ResNet-50, %d nodes (weak scaling, 1024x150KB JPEGs per node, 1 epoch):\n", nodes)
	run("  vast (nfs/tcp)", storagesim.ResNet50Config(), vast)
	run("  gpfs", storagesim.ResNet50Config(), gpfs)
	fmt.Println("  -> VAST reads slower, but the 8-thread pipeline hides almost all of")
	fmt.Println("     it: the application barely notices (the paper's Figure 5a).")

	fmt.Printf("\nCosmoflow, %d nodes (strong scaling, 32MB TFRecords in 256KB reads, 4 epochs):\n", nodes)
	run("  vast (nfs/tcp)", storagesim.CosmoflowConfig(), vast)
	run("  gpfs", storagesim.CosmoflowConfig(), gpfs)
	fmt.Println("  -> Four I/O threads cannot hide 32 MB samples behind the compute on")
	fmt.Println("     the throttled VAST deployment: non-overlapping I/O explodes and")
	fmt.Println("     GPFS wins clearly (the paper's Figures 4b and 6).")
}
