# Development targets. `make check` is the smoke gate: vet + build + the
# race-enabled tests of the packages the fabric solver rewrite and the
# fault-injection engine touch + one iteration of the solver
# micro-benchmarks (catches benchmark rot without paying for stable
# timings) + a 10s fuzz pass over each input parser.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race bench-smoke fuzz-smoke bench test-all

check: vet build race bench-smoke fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/experiments/... \
		./internal/faults/... ./internal/vast/...

bench-smoke:
	$(GO) test ./internal/sim/ -run XXX -bench BenchmarkFabricSolver -benchtime=1x

# Each parser gets $(FUZZTIME) of coverage-guided fuzzing. Go allows one
# -fuzz target per invocation, so this is three short runs.
fuzz-smoke:
	$(GO) test ./internal/units -run XXX -fuzz FuzzParseSize -fuzztime $(FUZZTIME)
	$(GO) test ./internal/units -run XXX -fuzz FuzzParseDuration -fuzztime $(FUZZTIME)
	$(GO) test ./internal/faults -run XXX -fuzz FuzzSchedule -fuzztime $(FUZZTIME)

# Full solver benchmark grid with stable-ish timings.
bench:
	$(GO) test ./internal/sim/ -run XXX -bench BenchmarkFabricSolver -benchtime=3x -benchmem

test-all: build test race
