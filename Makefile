# Development targets. `make check` is the smoke gate: vet + build + the
# race-enabled tests of the packages the fabric solver rewrite touches +
# one iteration of the solver micro-benchmarks (catches benchmark rot
# without paying for stable timings).

GO ?= go

.PHONY: check vet build test race bench-smoke bench test-all

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/experiments/...

bench-smoke:
	$(GO) test ./internal/sim/ -run XXX -bench BenchmarkFabricSolver -benchtime=1x

# Full solver benchmark grid with stable-ish timings.
bench:
	$(GO) test ./internal/sim/ -run XXX -bench BenchmarkFabricSolver -benchtime=3x -benchmem

test-all: build test race
