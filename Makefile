# Development targets. `make check` is the smoke gate: vet + build + the
# race-enabled tests of the packages the fabric solver rewrite, the
# fault-injection engine and the self-healing layer touch (under both the
# calendar-queue and reference-heap schedulers) + one iteration of the
# kernel and solver micro-benchmarks (catches benchmark rot without paying
# for stable timings) + a 10s fuzz pass over each input parser and the
# scheduler differential + the seeded chaos storms (three pinned seeds per
# backend, zero invariant violations, byte-deterministic digests).

GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race reference-smoke bench-smoke bench-diff fuzz-smoke chaos-smoke parallel-smoke fidelity-smoke resilience-smoke whatif-smoke bench test-all

check: vet build race reference-smoke bench-smoke bench-diff fuzz-smoke chaos-smoke parallel-smoke fidelity-smoke resilience-smoke whatif-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/experiments/... \
		./internal/faults/... ./internal/vast/... ./internal/repair/... \
		./internal/traffic/... ./internal/trace/... ./internal/fidelity/... \
		./internal/resilience/... ./internal/configsearch/... \
		./internal/surrogate/...
	$(GO) test -race -tags simreference ./internal/sim/

# The -tags simreference build swaps the DES kernel's calendar queue for the
# seed's binary-heap scheduler; the whole sim suite (goldens included) must
# pass identically under both.
reference-smoke:
	$(GO) test -tags simreference ./internal/sim/
	$(GO) test -tags simreference ./internal/experiments -run TestGoldenSaturationQuick -count=1

bench-smoke:
	$(GO) test ./internal/sim/ -run XXX -bench BenchmarkFabricSolver -benchtime=1x
	$(GO) test . -run XXX -bench 'BenchmarkKernel' -benchtime=1x
	$(GO) test ./internal/traffic -run XXX -bench 'BenchmarkTrafficEngine|BenchmarkResilienceOverhead' -benchtime=1x
	$(GO) test ./internal/surrogate -run XXX -bench BenchmarkSurrogateScore -benchtime=1x

# Regression gate over the recorded traffic-path benchmarks: a short fresh
# run of the hot-path benches diffed against the checked-in BENCH_traffic.json.
# Any allocs/op increase fails outright (allocation counts are exact and
# machine-independent — the real teeth of the gate); ns/op gets a generous
# tolerance because CI runners and dev machines differ. Tighten with
# BENCHDIFF_TOLERANCE=0.10 when comparing runs on one machine.
BENCHDIFF_TOLERANCE ?= 0.5
bench-diff:
	( $(GO) test ./internal/traffic -run XXX -bench 'BenchmarkTrafficEngine|BenchmarkResilienceOverhead' -benchtime=100000x -benchmem ; \
	  $(GO) test ./internal/surrogate -run XXX -bench BenchmarkSurrogateScore -benchtime=100000x -benchmem ) \
	| $(GO) run ./cmd/benchjson -o /tmp/storagesim-bench-diff.json
	$(GO) run ./cmd/benchjson -diff -threshold $(BENCHDIFF_TOLERANCE) BENCH_traffic.json /tmp/storagesim-bench-diff.json

# Each parser gets $(FUZZTIME) of coverage-guided fuzzing, and the calendar
# queue is fuzzed differentially against the reference heap. Go allows one
# -fuzz target per invocation, so this is five short runs.
fuzz-smoke:
	$(GO) test ./internal/units -run XXX -fuzz FuzzParseSize -fuzztime $(FUZZTIME)
	$(GO) test ./internal/units -run XXX -fuzz FuzzParseDuration -fuzztime $(FUZZTIME)
	$(GO) test ./internal/faults -run XXX -fuzz FuzzSchedule -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sim -run XXX -fuzz FuzzWheelVsHeap -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sim -run XXX -fuzz FuzzDomainsVsSequential -fuzztime $(FUZZTIME)
	$(GO) test ./internal/traffic -run XXX -fuzz FuzzTenantSpec -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run XXX -fuzz FuzzParseTraceCSV -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run XXX -fuzz FuzzParseTraceJSONL -fuzztime $(FUZZTIME)
	$(GO) test ./internal/configsearch -run XXX -fuzz FuzzParseSpace -fuzztime $(FUZZTIME)

# Seeded chaos gate: three pinned storms per backend through the repair
# manager with the invariant suite attached. Reproduce one storm by hand
# with `iorbench -fs <fs> -chaos seed=N`.
chaos-smoke:
	$(GO) test ./internal/experiments -run 'TestChaos(Smoke|StormDeterministic)' -count=1

# Fidelity gate: the round-trip audit (record -> re-ingest -> replay ->
# error bands) plus the pinned-fixture golden under all three kernel builds
# (calendar queue, reference heap, forced-sequential groups), and the CLI
# auditing the checked-in trace end to end. Regenerate the fixture with
# `go run ./cmd/tracereplay -record ... -o internal/experiments/testdata/
# fidelity_trace.jsonl` and the golden with -update-golden.
fidelity-smoke:
	$(GO) test ./internal/experiments -run 'TestFidelity|TestGoldenFidelityQuick' -count=1
	$(GO) test -tags simreference ./internal/experiments -run TestGoldenFidelityQuick -count=1
	$(GO) test -tags simsequential ./internal/experiments -run TestGoldenFidelityQuick -count=1
	$(GO) run ./cmd/tracereplay -trace internal/experiments/testdata/fidelity_trace.jsonl \
		-machine Wombat -fs vast -nodes 2 -audit >/dev/null

# Resilience gate: the retry-storm metastability golden under all three
# kernel builds (calendar queue, reference heap, forced-sequential groups),
# the headline-property assertions that pin the metastable contrast, the
# sharded resilience lockstep (full policy stack byte-identical on 1/2/4
# executors and under the sequential oracle), and three seeded chaos
# storms with breakers armed — zero invariant violations: deadline
# cancellation and breaker shedding must never over-allocate bandwidth or
# strand a rebuild.
resilience-smoke:
	$(GO) test ./internal/experiments -run 'TestGoldenRetryStormQuick|TestRetryStormMetastability|TestResilienceChaos' -count=1
	$(GO) test -tags simreference ./internal/experiments -run TestGoldenRetryStormQuick -count=1
	$(GO) test -tags simsequential ./internal/experiments -run TestGoldenRetryStormQuick -count=1
	$(GO) test -tags simsequential ./internal/traffic -run TestShardedResilienceLockstep -count=1

# What-if explorer gate: the configsearch/surrogate unit suites, the
# pinned-fixture search and figure goldens (byte-identical frontier under
# all three kernel builds), the surrogate-vs-DES differential (rank
# correlation, error bands, exact true-frontier containment) plus the
# calibration self-check, and the CLI driving a budgeted search end to end.
whatif-smoke:
	$(GO) test ./internal/configsearch ./internal/surrogate
	$(GO) test ./internal/experiments -run 'TestWhatIf|TestGoldenWhatIf' -count=1
	$(GO) test -tags simreference ./internal/experiments -run TestGoldenWhatIf -count=1
	$(GO) test -tags simsequential ./internal/experiments -run TestGoldenWhatIf -count=1
	$(GO) run ./cmd/whatif -space internal/experiments/testdata/whatif_space.json \
		-budget 60 -print-frontier >/dev/null

# Domain-parallel gate: a two-rack chaos storm advanced on two executors
# under the race detector must produce the byte-identical digest of the
# one-executor run; the sharded traffic lockstep goldens run under both
# the parallel and the forced-sequential (-tags simsequential) builds.
parallel-smoke:
	$(GO) test -race ./internal/experiments -run 'TestSharded(ChaosSmoke|TrafficLockstep)' -count=1
	$(GO) test -tags simsequential ./internal/sim/ -run TestGroup -count=1
	$(GO) test -tags simsequential ./internal/experiments -run TestShardedTrafficLockstep -count=1

# Engine + solver + figure benchmark sweep, recorded machine-readably in
# BENCH_kernel.json (with the pre-overhaul numbers carried along from
# BENCH_baseline.json). Kernel micro-benchmarks get stable 1s timings; the
# heavyweight end-to-end benches run a few fixed iterations.
bench:
	( $(GO) test . -run XXX -bench 'BenchmarkKernel|BenchmarkFairShareSolver|BenchmarkCacheLookup' -benchtime=1s -benchmem ; \
	  $(GO) test ./internal/sim/ -run XXX -bench BenchmarkFabricSolver -benchtime=3x -benchmem ; \
	  $(GO) test . -run XXX -bench 'BenchmarkConsistency|BenchmarkFig2a|BenchmarkFig3$$' -benchtime=1x -benchmem ) \
	| $(GO) run ./cmd/benchjson -baseline BENCH_baseline.json -o BENCH_kernel.json \
	    -note "post-overhaul kernel numbers; baseline is the pre-overhaul binary-heap scheduler. Recorded with go1.24.0 linux/amd64 on a 1-core Intel Xeon @2.10GHz container, default GOMAXPROCS"
	( $(GO) test ./internal/traffic -run XXX -bench 'BenchmarkTrafficEngine|BenchmarkResilienceOverhead' -benchtime=2s -benchmem ; \
	  $(GO) test ./internal/surrogate -run XXX -bench BenchmarkSurrogateScore -benchtime=2s -benchmem ) \
	| $(GO) run ./cmd/benchjson -o BENCH_traffic.json \
	    -note "open-loop traffic engine: cost per generated request (arrival draw, admission, spawn, transfer, sketch); ResilienceOverhead arms the full policy stack (deadline, retries, hedge, breaker, brownout) on an uncongested rig — the delta vs TrafficEngine is the layer's pure bookkeeping cost (floor: two goroutine baton hand-offs per request, coordinator and attempt being separate processes). SurrogateScore is the what-if explorer's analytical predictor: cost of scoring one candidate configuration (the search layer assumes >=10k configs/sec). Recorded with go1.24.0 linux/amd64 on a 1-core Intel Xeon @2.10GHz container, default GOMAXPROCS"
	$(GO) test ./internal/traffic -run XXX -bench BenchmarkParallelTraffic -benchtime=2s -benchmem -cpu=1,2,4,8 \
	| $(GO) run ./cmd/benchjson -keep-cpu -o BENCH_parallel.json \
	    -note "domain-parallel scaling sweep: 8 racks, executors = GOMAXPROCS (-cpu suffix); results are bit-identical across the sweep, only wall clock moves. Recorded with go1.24.0 linux/amd64 on a 1-core Intel Xeon @2.10GHz container (no physical parallelism: the sweep checks determinism, not speedup, here)"

test-all: build test race
