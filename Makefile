# Development targets. `make check` is the smoke gate: vet + build + the
# race-enabled tests of the packages the fabric solver rewrite, the
# fault-injection engine and the self-healing layer touch + one iteration
# of the solver micro-benchmarks (catches benchmark rot without paying for
# stable timings) + a 10s fuzz pass over each input parser + the seeded
# chaos storms (three pinned seeds per backend, zero invariant violations,
# byte-deterministic digests).

GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race bench-smoke fuzz-smoke chaos-smoke bench test-all

check: vet build race bench-smoke fuzz-smoke chaos-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/experiments/... \
		./internal/faults/... ./internal/vast/... ./internal/repair/...

bench-smoke:
	$(GO) test ./internal/sim/ -run XXX -bench BenchmarkFabricSolver -benchtime=1x

# Each parser gets $(FUZZTIME) of coverage-guided fuzzing. Go allows one
# -fuzz target per invocation, so this is three short runs.
fuzz-smoke:
	$(GO) test ./internal/units -run XXX -fuzz FuzzParseSize -fuzztime $(FUZZTIME)
	$(GO) test ./internal/units -run XXX -fuzz FuzzParseDuration -fuzztime $(FUZZTIME)
	$(GO) test ./internal/faults -run XXX -fuzz FuzzSchedule -fuzztime $(FUZZTIME)

# Seeded chaos gate: three pinned storms per backend through the repair
# manager with the invariant suite attached. Reproduce one storm by hand
# with `iorbench -fs <fs> -chaos seed=N`.
chaos-smoke:
	$(GO) test ./internal/experiments -run 'TestChaos(Smoke|StormDeterministic)' -count=1

# Full solver benchmark grid with stable-ish timings.
bench:
	$(GO) test ./internal/sim/ -run XXX -bench BenchmarkFabricSolver -benchtime=3x -benchmem

test-all: build test race
