module storagesim

go 1.22
