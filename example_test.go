package storagesim_test

import (
	"fmt"

	storagesim "storagesim"
)

// ExampleNew runs the paper's headline comparison in a few lines: the same
// IOR workload against the TCP-gateway VAST deployment and GPFS.
func ExampleNew() {
	for _, fs := range []string{"vast", "gpfs"} {
		s := storagesim.New()
		cl, err := s.Cluster("Lassen", 2)
		if err != nil {
			panic(err)
		}
		var mounts []storagesim.Client
		if fs == "vast" {
			mounts = storagesim.MountAll(storagesim.VASTOnLassen(cl), cl)
		} else {
			mounts = storagesim.MountAll(storagesim.GPFSOnLassen(cl), cl)
		}
		res, err := storagesim.RunIOR(s.Env, mounts, storagesim.IORConfig{
			Workload: storagesim.Scientific, BlockSize: 1 << 20,
			TransferSize: 1 << 20, Segments: 128, ProcsPerNode: 44, Dir: "/ex",
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s write: %.1f GB/s\n", fs, res.WriteBW/1e9)
	}
	// Output:
	// vast write: 2.2 GB/s
	// gpfs write: 5.0 GB/s
}

// ExampleRunDLIO trains the paper's ResNet-50 configuration on GPFS and
// prints how much of the I/O the input pipeline hid behind compute.
func ExampleRunDLIO() {
	s := storagesim.New()
	cl, err := s.Cluster("Lassen", 1)
	if err != nil {
		panic(err)
	}
	mounts := storagesim.MountAll(storagesim.GPFSOnLassen(cl), cl)
	rec := storagesim.NewTraceRecorder()
	res, err := storagesim.RunDLIO(s.Env, mounts, storagesim.ResNet50Config(), rec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hidden I/O: %.0f%%\n", 100*res.Analysis.HiddenFraction())
	// Output:
	// hidden I/O: 99%
}

// ExampleTableI reprints the paper's cluster inventory.
func ExampleTableI() {
	fmt.Print(storagesim.TableI())
	// Output:
	// TABLE I: Clusters used for experiments
	// Name      Nodes   CPU  GPU    RAM Arch               Network
	// Lassen      795    44    4    256 IBM Power9         IB EDR
	// Ruby       1512    56    0    192 Intel Xeon         Omni-Path
	// Quartz     3018    36    0    128 Intel Xeon         Omni-Path
	// Wombat        8    48    2    512 ARM Fujitsu A64fx  IB EDR
}
