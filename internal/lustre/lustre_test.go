package lustre

import (
	"fmt"
	"testing"
	"time"

	"storagesim/internal/device"
	"storagesim/internal/fsapi"
	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

func testConfig() Config {
	return Config{
		Name:             "lustre-test",
		MDSCount:         2,
		MDSLatency:       200 * time.Microsecond,
		OSSCount:         4,
		OSTPerOSS:        device.SASHDDSpec("hdd").Scale(10, "ost"),
		ServerNICBW:      10e9,
		ClientCacheBytes: 64 << 20,
		CacheBlockBytes:  1 << 20,
		RPCLatency:       150 * time.Microsecond,
	}
}

func newTestSystem(t *testing.T) (*sim.Env, *sim.Fabric, *System) {
	t.Helper()
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	sys, err := New(env, fab, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return env, fab, sys
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.MDSCount = 0 },
		func(c *Config) { c.OSSCount = 0 },
		func(c *Config) { c.ServerNICBW = 0 },
		func(c *Config) { c.CacheBlockBytes = 0 },
		func(c *Config) { c.OSTPerOSS.QueueDepth = 0 },
	}
	for i, mutate := range mutations {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestStripeOneCapsSingleStream(t *testing.T) {
	// A stripe-1 file lives on one OST: a single stream cannot exceed one
	// server's bandwidth (10 disks * 230 MB/s = 2.3 GB/s here).
	env, fab, sys := newTestSystem(t)
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 25e9, 0))
	const total = 4 << 30
	var end sim.Time
	env.Go("x", func(p *sim.Proc) {
		cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
		end = p.Now()
	})
	env.Run()
	bw := float64(total) / sim.Duration(end).Seconds()
	perOST := testConfig().OSTPerOSS.WriteBW
	if bw > 1.05*perOST {
		t.Fatalf("single stream bw %.2e exceeds one OST (%.2e)", bw, perOST)
	}
}

func TestManyStreamsSpreadAcrossPool(t *testing.T) {
	// Many file-per-process streams use the whole OSS pool.
	env, fab, sys := newTestSystem(t)
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 25e9, 0))
	const per = 1 << 30
	const streams = 8
	var last sim.Time
	for i := 0; i < streams; i++ {
		i := i
		env.Go(fmt.Sprintf("s%d", i), func(p *sim.Proc) {
			cl.StreamWrite(p, fmt.Sprintf("/f%d", i), fsapi.Sequential, 1<<20, per)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	env.Run()
	agg := float64(per*streams) / sim.Duration(last).Seconds()
	single := testConfig().OSTPerOSS.WriteBW
	if agg < 3*single {
		t.Fatalf("8 streams reached only %.2e, want ~pool (4 OSS x %.2e)", agg, single)
	}
}

func TestOpenPaysMDSLatency(t *testing.T) {
	env, fab, sys := newTestSystem(t)
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 25e9, 0))
	var openCost sim.Duration
	env.Go("x", func(p *sim.Proc) {
		start := p.Now()
		f := cl.Open(p, "/f", true)
		openCost = p.Now().Sub(start)
		f.Close(p)
	})
	env.Run()
	if openCost != testConfig().MDSLatency {
		t.Fatalf("open cost = %v, want MDS latency %v", openCost, testConfig().MDSLatency)
	}
}

func TestFsyncCommitsThroughIntentLog(t *testing.T) {
	env, fab, sys := newTestSystem(t)
	_ = sys
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 25e9, 0))
	var fsyncCost sim.Duration
	env.Go("x", func(p *sim.Proc) {
		f := cl.Open(p, "/f", true)
		f.WriteAt(p, 0, 1<<20)
		start := p.Now()
		f.Fsync(p)
		fsyncCost = p.Now().Sub(start)
	})
	env.Run()
	if fsyncCost < testConfig().OSTPerOSS.FlushLatency {
		t.Fatalf("fsync %v skipped the ZIL commit (%v)", fsyncCost, testConfig().OSTPerOSS.FlushLatency)
	}
}

func TestFsyncWritesScaleWithProcesses(t *testing.T) {
	// The Figure 3b/3c shape: synchronous writes grow near-linearly with
	// the process count because commits overlap across OSTs.
	measure := func(procs int) float64 {
		env, fab, sys := newTestSystem(t)
		cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 25e9, 0))
		const perProc = 32 << 20
		var last sim.Time
		for i := 0; i < procs; i++ {
			i := i
			env.Go(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
				f := cl.Open(p, fmt.Sprintf("/f%d", i), true)
				for off := int64(0); off < perProc; off += 1 << 20 {
					f.WriteAt(p, off, 1<<20)
					f.Fsync(p)
				}
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		env.Run()
		return float64(perProc*int64(procs)) / sim.Duration(last).Seconds()
	}
	one, eight := measure(1), measure(8)
	if eight < 5*one {
		t.Fatalf("fsync writes did not scale: 1 proc %.2e, 8 procs %.2e", one, eight)
	}
}

func TestRandomReadSlowerThanSequential(t *testing.T) {
	measure := func(a fsapi.Access) float64 {
		env, fab, sys := newTestSystem(t)
		cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 25e9, 0))
		const total = 1 << 30
		var dur sim.Duration
		env.Go("x", func(p *sim.Proc) {
			cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
			start := p.Now()
			cl.StreamRead(p, "/f", a, 1<<20, total)
			dur = p.Now().Sub(start)
		})
		env.Run()
		return float64(total) / dur.Seconds()
	}
	seq, rnd := measure(fsapi.Sequential), measure(fsapi.Random)
	if rnd >= seq {
		t.Fatalf("HDD-backed random read (%.2e) not slower than sequential (%.2e)", rnd, seq)
	}
}

func TestDerate(t *testing.T) {
	_, _, sys := newTestSystem(t)
	before := sys.ossUp.Capacity()
	sys.Derate(0.8)
	if got := sys.ossUp.Capacity(); got != 0.8*before {
		t.Fatalf("derate: %v, want %v", got, 0.8*before)
	}
}
