package lustre

import "fmt"

// OSS failure and recovery. The model pools the object storage servers'
// NICs and OSTs into aggregate pipes, so losing an OSS removes its share
// of both pools (in a real deployment its OSTs fail over to an HA partner,
// which then serves double duty — the same aggregate-bandwidth loss). The
// per-stream stripe-1 caps stay nominal: a surviving OSS still serves one
// file at full speed.
//
// Capacity changes route through the pipes' health factors
// (sim.Pipe.SetHealthFactor), so a fail/recover pair restores the exact
// nominal pool capacity.

// FailOSS takes OSS i out of service. Failing an already-failed server is
// a no-op; failing the last healthy OSS panics.
func (s *System) FailOSS(i int) {
	if i < 0 || i >= s.cfg.OSSCount {
		panic(fmt.Sprintf("lustre %s: no OSS %d", s.cfg.Name, i))
	}
	if s.failed[i] {
		return
	}
	if s.healthyOSSes() == 1 {
		panic(fmt.Sprintf("lustre %s: cannot fail the last healthy OSS", s.cfg.Name))
	}
	s.failed[i] = true
	s.rebuilt[i] = 0
	s.applyHealth()
}

// RecoverOSS returns a failed OSS to service; recovering a healthy server
// is a no-op.
func (s *System) RecoverOSS(i int) {
	if i < 0 || i >= s.cfg.OSSCount || !s.failed[i] {
		return
	}
	s.failed[i] = false
	s.rebuilt[i] = 0
	s.applyHealth()
}

// HealthyOSSes reports how many OSSes are in service.
func (s *System) HealthyOSSes() int { return s.healthyOSSes() }

func (s *System) healthyOSSes() int {
	n := 0
	for i := 0; i < s.cfg.OSSCount; i++ {
		if !s.failed[i] {
			n++
		}
	}
	return n
}

// healthyFraction is the pools' effective share: whole healthy OSSes plus
// the rebuilt fractions of failed ones. With nothing failed the sum of
// zeros keeps the division exact, so fail/recover pairs still restore
// bit-identical nominal capacity.
func (s *System) healthyFraction() float64 {
	sum := float64(s.healthyOSSes())
	for i := 0; i < s.cfg.OSSCount; i++ {
		if s.failed[i] {
			sum += s.rebuilt[i]
		}
	}
	return sum / float64(s.cfg.OSSCount)
}

// applyHealth scales the pooled pipes and the OST pool to the healthy
// fraction combined with the prevailing cluster-wide derates. A failed
// OSS mid-resilver contributes its rebuilt fraction (repair.go), so pool
// capacity recovers incrementally instead of snapping back.
func (s *System) applyHealth() {
	frac := s.healthyFraction()
	s.ossUp.SetHealthFactor(frac * s.linkHealth)
	s.ossDown.SetHealthFactor(frac * s.linkHealth)
	s.pool.SetHealthFactor(frac * s.mediaHealth)
}

// --- faults.Target ---

// FaultServers implements faults.Target: the failable servers are the
// OSSes (MDS failures are not modeled — opens would block, not degrade).
func (s *System) FaultServers() int { return s.cfg.OSSCount }

// FailServer implements faults.Target.
func (s *System) FailServer(i int) { s.FailOSS(i) }

// RecoverServer implements faults.Target.
func (s *System) RecoverServer(i int) { s.RecoverOSS(i) }

// SetLinkHealth implements faults.Target: derates the OSS NIC pools to
// fraction f of nominal.
func (s *System) SetLinkHealth(f float64) {
	s.linkHealth = f
	s.applyHealth()
}

// SetMediaHealth implements faults.Target: derates the OST pool (a raidz2
// group resilvering behind a surviving OSS).
func (s *System) SetMediaHealth(f float64) {
	s.mediaHealth = f
	s.applyHealth()
}
