package lustre

import (
	"storagesim/internal/repair"
	"storagesim/internal/sim"
)

// Redundancy declaration (repair.Protected). The LC Lustre deployments
// protect each OSS's OSTs with RAID (raidz2-class parity): losing an OSS
// hands its OSTs to an HA partner and triggers a resilver that reads
// surviving strips and writes reconstructed ones through the shared OST
// pool, where the repair flows contend with foreground I/O. The
// redundancy unit is an OSS's slice of the OST pool.

// lustreTolerance is the concurrent OSS losses the parity layout absorbs
// (double parity).
const lustreTolerance = 2

// RepairScheme implements repair.Protected.
func (s *System) RepairScheme() repair.Scheme {
	return repair.Scheme{Kind: repair.DeclusteredRAID, Tolerance: lustreTolerance, ServersHoldData: true}
}

// FaultUnits implements faults.UnitTarget: one redundancy unit per OSS.
func (s *System) FaultUnits() int { return s.cfg.OSSCount }

// FailUnit implements faults.UnitTarget.
func (s *System) FailUnit(i int) { s.FailOSS(i) }

// RecoverUnit implements faults.UnitTarget.
func (s *System) RecoverUnit(i int) { s.RecoverOSS(i) }

// SetUnitRebuild implements repair.Protected: count failed OSS i as
// fraction frac resilvered when deriving pooled capacity.
func (s *System) SetUnitRebuild(i int, frac float64) {
	if i < 0 || i >= s.cfg.OSSCount || !s.failed[i] {
		return
	}
	s.rebuilt[i] = frac
	s.applyHealth()
}

// UnitBytes implements repair.Protected: files stripe evenly over the
// OSTs, so an OSS's slice is the namespace's live bytes over the OSS
// count.
func (s *System) UnitBytes(i int) float64 {
	return float64(s.ns.TotalBytes()) / float64(s.cfg.OSSCount)
}

// RepairPath implements repair.Protected: the resilver reads surviving
// strips from the OST pool and writes reconstructed ones back.
func (s *System) RepairPath(i int) []*sim.Pipe {
	return []*sim.Pipe{s.pool.ReadPipe(), s.pool.WritePipe()}
}

var _ repair.Protected = (*System)(nil)
