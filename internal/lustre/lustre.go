// Package lustre models the Lustre deployment on Ruby and Quartz (Section
// IV-B): 16 metadata servers with SSD/ZFS mirrors and 36 object storage
// servers, each with SAS-HDD raidz2 groups, reached over the Omni-Path
// fabric. Its role in the paper is the single-node fsync comparison
// (Figures 3b and 3c), where Lustre grows almost linearly with process
// count while the gateway-throttled VAST deployment stays flat.
//
// The model captures the Lustre properties that matter there:
//
//   - File-per-process files with stripe count 1: each rank's file lives on
//     one OST, so a single stream is capped by one server's bandwidth while
//     many streams spread across the pool and scale.
//   - fsync commits through the ZFS intent log (SSD mirrors on the MDS/OSS),
//     so synchronous writes cost a commit latency, not a disk seek.
//   - A metadata server hop on open.
package lustre

import (
	"fmt"
	"time"

	"storagesim/internal/cache"
	"storagesim/internal/device"
	"storagesim/internal/fsapi"
	"storagesim/internal/fsbase"
	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

// Config describes a Lustre instance.
type Config struct {
	// Name identifies the instance.
	Name string
	// MDSCount is the number of metadata servers (16).
	MDSCount int
	// MDSLatency is the metadata round trip charged on open.
	MDSLatency sim.Duration
	// OSSCount is the number of object storage servers (36).
	OSSCount int
	// OSTPerOSS is the storage spec behind one OSS.
	OSTPerOSS device.Spec
	// ServerNICBW is one OSS's network bandwidth per direction.
	ServerNICBW float64
	// ClientCacheBytes sizes the client page cache per mount.
	ClientCacheBytes int64
	// CacheBlockBytes is the client cache page size.
	CacheBlockBytes int64
	// RPCLatency is the per-op Lustre RPC latency (PtlRPC over Omni-Path).
	RPCLatency sim.Duration
}

// Validate reports the first problem with the config.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("lustre: missing name")
	case c.MDSCount <= 0 || c.OSSCount <= 0:
		return fmt.Errorf("lustre %s: need MDS and OSS servers", c.Name)
	case c.ServerNICBW <= 0:
		return fmt.Errorf("lustre %s: server NIC bandwidth must be positive", c.Name)
	case c.ClientCacheBytes > 0 && c.CacheBlockBytes <= 0:
		return fmt.Errorf("lustre %s: client cache needs a block size", c.Name)
	}
	return c.OSTPerOSS.Validate()
}

// System is a running Lustre instance.
type System struct {
	cfg Config
	env *sim.Env
	fab *sim.Fabric
	ns  *fsapi.Namespace

	ossUp, ossDown *sim.Pipe
	pool           *device.Device

	// Fault state (see faults.go): failed marks out-of-service OSSes;
	// linkHealth and mediaHealth are the prevailing cluster-wide derates.
	// rebuilt is each failed OSS's resilvered fraction (see repair.go).
	failed      []bool
	rebuilt     []float64
	linkHealth  float64
	mediaHealth float64

	// perStreamCap is one OST server's bandwidth: a stripe-1 file cannot
	// exceed it.
	perStreamCapR float64
	perStreamCapW float64
}

// New builds the system.
func New(env *sim.Env, fab *sim.Fabric, cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, env: env, fab: fab, ns: fsapi.NewNamespace(),
		failed: make([]bool, cfg.OSSCount), rebuilt: make([]float64, cfg.OSSCount),
		linkHealth: 1, mediaHealth: 1}
	poolNIC := cfg.ServerNICBW * float64(cfg.OSSCount)
	s.ossUp = fab.NewPipe(cfg.Name+"/oss/up", poolNIC, 2*time.Microsecond)
	s.ossDown = fab.NewPipe(cfg.Name+"/oss/down", poolNIC, 2*time.Microsecond)
	pool, err := device.New(env, fab, cfg.OSTPerOSS.Scale(cfg.OSSCount, cfg.Name+"/ost-pool"))
	if err != nil {
		return nil, err
	}
	s.pool = pool
	s.perStreamCapR = min2(cfg.OSTPerOSS.ReadBW, cfg.ServerNICBW)
	s.perStreamCapW = min2(cfg.OSTPerOSS.WriteBW, cfg.ServerNICBW)
	return s, nil
}

// MustNew is New that panics on config errors.
func MustNew(env *sim.Env, fab *sim.Fabric, cfg Config) *System {
	s, err := New(env, fab, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the parameters.
func (s *System) Config() Config { return s.cfg }

// OSSPipes exposes the pooled OSS NIC pipes (up = client writes in) for
// samplers that separate foreground traffic from rebuild flows, which
// cross the OST pool only.
func (s *System) OSSPipes() (up, down *sim.Pipe) { return s.ossUp, s.ossDown }

// Namespace exposes the shared file table.
func (s *System) Namespace() *fsapi.Namespace { return s.ns }

// Derate scales the server-side capacities by f (production contention).
func (s *System) Derate(f float64) {
	s.ossUp.SetCapacity(s.ossUp.Capacity() * f)
	s.ossDown.SetCapacity(s.ossDown.Capacity() * f)
	s.pool.Derate(f)
}

// Mount attaches a compute node.
func (s *System) Mount(node string, nic *netsim.Iface) fsapi.Client {
	cl := &client{sys: s, nic: nic}
	// Cache the per-mount network paths: they are fixed for the life of the
	// mount, and a stable slice keeps the fabric's flow-class lookup
	// allocation-free on the per-op hot path.
	cl.writePath = []*sim.Pipe{nic.Dir(netsim.ClientToServer), s.ossUp}
	cl.readPath = []*sim.Pipe{s.ossDown, nic.Dir(netsim.ServerToClient)}
	var pc *cache.Cache
	if s.cfg.ClientCacheBytes > 0 {
		pc = cache.New(cache.Config{
			BlockSize:       s.cfg.CacheBlockBytes,
			Capacity:        s.cfg.ClientCacheBytes,
			ReadaheadBlocks: 8,
		})
	}
	cl.core = fsbase.ClientCore{
		FS:      s.cfg.Name,
		Node:    node,
		NS:      s.ns,
		Backend: (*backend)(cl),
		Cache:   pc,
	}
	return cl
}

type client struct {
	sys  *System
	nic  *netsim.Iface
	core fsbase.ClientCore

	// cached network paths (see Mount); treated as immutable.
	writePath []*sim.Pipe
	readPath  []*sim.Pipe
}

type backend client

// FSName implements fsapi.Client.
func (c *client) FSName() string { return c.core.FSName() }

// NodeName implements fsapi.Client.
func (c *client) NodeName() string { return c.core.NodeName() }

// Open implements fsapi.Client.
func (c *client) Open(p *sim.Proc, path string, truncate bool) fsapi.File {
	return c.core.Open(p, path, truncate)
}

// Remove implements fsapi.Client.
func (c *client) Remove(p *sim.Proc, path string) { c.core.Remove(p, path) }

// DropCaches implements fsapi.Client.
func (c *client) DropCaches() { c.core.DropCaches() }

// SetFlowTag implements fsapi.FlowTagger.
func (c *client) SetFlowTag(tag string) { c.core.SetFlowTag(tag) }

func (c *client) writePipes() []*sim.Pipe { return c.writePath }

func (c *client) readPipes() []*sim.Pipe { return c.readPath }

// StreamWrite implements fsapi.Client: one stripe-1 flow, capped by its
// single OST.
func (c *client) StreamWrite(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	c.core.Stamp(p)
	if fsapi.Aborted(p) {
		return
	}
	ino := c.sys.ns.Create(path, false)
	c.sys.ns.Extend(ino, 0, total)
	c.sys.pool.StreamWrite(p, a, ioSize, float64(total), c.writePipes(), c.sys.perStreamCapW)
}

// StreamRead implements fsapi.Client.
func (c *client) StreamRead(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	c.core.Stamp(p)
	if fsapi.Aborted(p) {
		return
	}
	s := c.sys
	capBps := s.perStreamCapR
	if a == fsapi.Random {
		rtt := 2*sim.PathLatency(c.readPipes()) + s.cfg.RPCLatency
		if bc := netsim.BlockingStreamCap(ioSize, rtt, capBps); bc < capBps {
			capBps = bc
		}
	}
	s.pool.StreamRead(p, a, ioSize, float64(total), c.readPipes(), capBps)
}

// --- op-level backend ---

// OpWrite implements fsbase.Backend: RPC, network, OST write, ZIL commit.
func (b *backend) OpWrite(p *sim.Proc, ino *fsapi.Inode, off, n int64) {
	c := (*client)(b)
	s := c.sys
	if s.cfg.RPCLatency > 0 {
		p.Sleep(s.cfg.RPCLatency)
	}
	s.fab.Transfer(p, c.writePipes(), float64(n), s.perStreamCapW)
	s.pool.Write(p, ino.ID, off, n)
}

// OpCommit implements fsbase.Backend: a synchronous commit lands in the
// per-OST ZFS intent log (SSD mirrors) — a fixed latency paid concurrently
// across OSTs, not a device-wide barrier.
func (b *backend) OpCommit(p *sim.Proc, ino *fsapi.Inode) {
	if d := (*client)(b).sys.cfg.OSTPerOSS.FlushLatency; d > 0 {
		p.Sleep(d)
	}
}

// OpRead implements fsbase.Backend.
func (b *backend) OpRead(p *sim.Proc, ino *fsapi.Inode, off, n int64) {
	c := (*client)(b)
	s := c.sys
	if s.cfg.RPCLatency > 0 {
		p.Sleep(s.cfg.RPCLatency)
	}
	s.pool.Read(p, ino.ID, off, n)
	s.fab.Transfer(p, c.readPipes(), float64(n), s.perStreamCapR)
}

// OpenLatency implements fsbase.Backend: one MDS round trip.
func (b *backend) OpenLatency(p *sim.Proc, ino *fsapi.Inode) {
	if d := (*client)(b).sys.cfg.MDSLatency; d > 0 {
		p.Sleep(d)
	}
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Interface checks.
var (
	_ fsapi.Client   = (*client)(nil)
	_ fsbase.Backend = (*backend)(nil)
)
