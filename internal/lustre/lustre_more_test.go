package lustre

import (
	"testing"

	"storagesim/internal/fsapi"
	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	cfg := testConfig()
	cfg.OSSCount = 0
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew accepted a bad config")
		}
	}()
	MustNew(env, fab, cfg)
}

func TestSharedNamespaceAcrossMounts(t *testing.T) {
	env, fab, sys := newTestSystem(t)
	a := sys.Mount("a", netsim.NewIface(fab, "a/nic", 25e9, 0))
	b := sys.Mount("b", netsim.NewIface(fab, "b/nic", 25e9, 0))
	env.Go("x", func(p *sim.Proc) {
		f := a.Open(p, "/shared", true)
		f.WriteAt(p, 0, 1<<20)
		f.Close(p)
		g := b.Open(p, "/shared", false)
		if g.Size() != 1<<20 {
			t.Errorf("peer sees size %d", g.Size())
		}
	})
	env.Run()
}

func TestRemoveUnlinks(t *testing.T) {
	env, fab, sys := newTestSystem(t)
	cl := sys.Mount("a", netsim.NewIface(fab, "a/nic", 25e9, 0))
	env.Go("x", func(p *sim.Proc) {
		f := cl.Open(p, "/f", true)
		f.WriteAt(p, 0, 1<<20)
		f.Close(p)
		start := p.Now()
		cl.Remove(p, "/f")
		if cost := p.Now().Sub(start); cost != testConfig().MDSLatency {
			t.Errorf("remove cost %v, want one MDS round trip", cost)
		}
		if sys.Namespace().Lookup("/f") != nil {
			t.Error("file survived removal")
		}
		cl.Remove(p, "/f") // rm -f semantics: no-op
	})
	env.Run()
}

func TestClientIdentity(t *testing.T) {
	_, fab, sys := newTestSystem(t)
	cl := sys.Mount("nodeX", netsim.NewIface(fab, "x/nic", 25e9, 0))
	if cl.FSName() != "lustre-test" || cl.NodeName() != "nodeX" {
		t.Fatalf("identity: %s/%s", cl.FSName(), cl.NodeName())
	}
}

func TestStreamReadRandomCapApplies(t *testing.T) {
	// A random stream pays the blocking-request ceiling on top of the
	// stripe cap: it must be strictly below the sequential rate even when
	// the pool would allow more.
	env, fab, sys := newTestSystem(t)
	cl := sys.Mount("a", netsim.NewIface(fab, "a/nic", 25e9, 0))
	var seqDur, rndDur sim.Duration
	env.Go("x", func(p *sim.Proc) {
		cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, 1<<30)
		start := p.Now()
		cl.StreamRead(p, "/f", fsapi.Sequential, 1<<20, 1<<30)
		seqDur = p.Now().Sub(start)
		start = p.Now()
		cl.StreamRead(p, "/f", fsapi.Random, 1<<20, 1<<30)
		rndDur = p.Now().Sub(start)
	})
	env.Run()
	if rndDur <= seqDur {
		t.Fatalf("random (%v) not slower than sequential (%v)", rndDur, seqDur)
	}
}

func TestConfigAccessor(t *testing.T) {
	_, _, sys := newTestSystem(t)
	if sys.Config().OSSCount != testConfig().OSSCount {
		t.Fatal("config accessor diverged")
	}
}
