// Package unifyfs models UnifyFS, the paper's other example of a highly
// configurable storage system (Section I): a user-level shared file system
// that aggregates the compute nodes' local storage into one namespace,
// "which allows users to configure the data management policy, such as the
// number of dedicated I/O servers and the data placement strategy". Both
// knobs are first-class here:
//
//   - Placement: LocalFirst writes land on the writer's own device (reads
//     of a peer's data cross the interconnect — the checkpoint/restart
//     sweet spot), while RoundRobin stripes chunks across all nodes
//     (balanced reads, remote-heavy writes).
//   - IOServersPerNode: the user-level service processes that every
//     request must pass through; a small pool throttles op-level
//     throughput exactly the way a misconfigured UnifyFS deployment does.
//
// UnifyFS bypasses the kernel page cache (it is a user-level burst
// buffer), so there is no client cache layer and fsync costs only the
// local device flush.
package unifyfs

import (
	"fmt"

	"storagesim/internal/device"
	"storagesim/internal/fsapi"
	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

// Placement selects the data placement strategy.
type Placement int

const (
	// LocalFirst writes every chunk to the writer's node.
	LocalFirst Placement = iota
	// RoundRobin stripes chunks across all mounted nodes.
	RoundRobin
)

// String names the placement.
func (p Placement) String() string {
	if p == LocalFirst {
		return "local-first"
	}
	return "round-robin"
}

// Config describes a UnifyFS deployment.
type Config struct {
	// Name prefixes pipe names.
	Name string
	// PerNode is the node-local device backing the burst buffer.
	PerNode device.Spec
	// Placement is the data placement strategy.
	Placement Placement
	// ChunkBytes is the placement granularity (UnifyFS default 1 MiB).
	ChunkBytes int64
	// IOServersPerNode bounds concurrent requests served per node.
	IOServersPerNode int
	// ServerLatency is the user-level RPC cost per op.
	ServerLatency sim.Duration
	// Interconnect carries remote chunk traffic; nil confines data to the
	// writing node (LocalFirst only).
	Interconnect *netsim.LinkBank
}

// Validate reports the first problem with the config.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("unifyfs: missing name")
	case c.ChunkBytes <= 0:
		return fmt.Errorf("unifyfs %s: chunk size must be positive", c.Name)
	case c.IOServersPerNode <= 0:
		return fmt.Errorf("unifyfs %s: need at least one I/O server per node", c.Name)
	case c.ServerLatency < 0:
		return fmt.Errorf("unifyfs %s: negative server latency", c.Name)
	case c.Placement == RoundRobin && c.Interconnect == nil:
		return fmt.Errorf("unifyfs %s: round-robin placement needs an interconnect", c.Name)
	}
	return c.PerNode.Validate()
}

// System is a running UnifyFS instance: a shared namespace over per-node
// devices.
type System struct {
	cfg Config
	env *sim.Env
	fab *sim.Fabric
	ns  *fsapi.Namespace

	nodes []*nodeState
	// chunkOwner maps (inode, chunk index) to the owning node's index.
	chunkOwner map[chunkKey]int

	// Fault state (see faults.go): prevailing cluster-wide derates.
	linkHealth  float64
	mediaHealth float64
}

type chunkKey struct {
	ino   uint64
	chunk int64
}

type nodeState struct {
	name   string
	nic    *netsim.Iface
	dev    *device.Device
	svc    *sim.Resource
	failed bool
}

// New builds the system; nodes attach via Mount.
func New(env *sim.Env, fab *sim.Fabric, cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{
		cfg:         cfg,
		env:         env,
		fab:         fab,
		ns:          fsapi.NewNamespace(),
		chunkOwner:  map[chunkKey]int{},
		linkHealth:  1,
		mediaHealth: 1,
	}, nil
}

// MustNew is New that panics on config errors.
func MustNew(env *sim.Env, fab *sim.Fabric, cfg Config) *System {
	s, err := New(env, fab, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the deployment parameters.
func (s *System) Config() Config { return s.cfg }

// Namespace exposes the shared file table.
func (s *System) Namespace() *fsapi.Namespace { return s.ns }

// Nodes returns the number of mounted nodes.
func (s *System) Nodes() int { return len(s.nodes) }

// Mount attaches a compute node, contributing its local device to the
// shared space.
func (s *System) Mount(node string, nic *netsim.Iface) fsapi.Client {
	spec := s.cfg.PerNode
	spec.Name = fmt.Sprintf("%s/%s/dev", s.cfg.Name, node)
	st := &nodeState{
		name: node,
		nic:  nic,
		dev:  device.MustNew(s.env, s.fab, spec),
		svc:  sim.NewResource(s.env, fmt.Sprintf("%s/%s/iosrv", s.cfg.Name, node), s.cfg.IOServersPerNode),
	}
	s.nodes = append(s.nodes, st)
	return &client{sys: s, node: st, idx: len(s.nodes) - 1}
}

// owner resolves (and on writes, assigns) the node owning a chunk.
func (s *System) owner(ino uint64, chunk int64, writerIdx int, assign bool) int {
	key := chunkKey{ino, chunk}
	if idx, ok := s.chunkOwner[key]; ok {
		return idx
	}
	if !assign {
		return writerIdx // unwritten chunk: treat as local
	}
	idx := writerIdx
	if s.cfg.Placement == RoundRobin {
		idx = int(chunk) % len(s.nodes)
	}
	s.chunkOwner[key] = idx
	return idx
}

type client struct {
	sys  *System
	node *nodeState
	idx  int

	// tag attributes this mount's fabric traffic (fsapi.FlowTagger); tagID
	// caches its interned handle (valid while tagFor == tag).
	tag    string
	tagID  sim.FlowTag
	tagFor string

	// Per-owner interconnect paths, cached on first use (chunk sweeps hit
	// the same few owners over and over); indexed by owner node, one slice
	// per direction. Treated as immutable once built.
	toOwner   map[*nodeState][]*sim.Pipe
	fromOwner map[*nodeState][]*sim.Pipe
}

// FSName implements fsapi.Client.
func (c *client) FSName() string { return c.sys.cfg.Name }

// NodeName implements fsapi.Client.
func (c *client) NodeName() string { return c.node.name }

// DropCaches implements fsapi.Client: UnifyFS has no client page cache.
func (c *client) DropCaches() {}

// SetFlowTag implements fsapi.FlowTagger.
func (c *client) SetFlowTag(tag string) { c.tag = tag }

// stamp applies the mount's flow tag to the calling process at every
// data-path entry (see fsbase.ClientCore.Stamp for the convention). The
// interned handle is cached so the per-op stamp is an integer write.
func (c *client) stamp(p *sim.Proc) {
	if c.tagFor != c.tag {
		c.tagID = p.Env().InternTag(c.tag)
		c.tagFor = c.tag
	}
	p.SetFlowTagID(c.tagID)
}

// Remove implements fsapi.Client.
func (c *client) Remove(p *sim.Proc, path string) {
	c.stamp(p)
	ino := c.sys.ns.Lookup(path)
	if ino == nil {
		return
	}
	if c.sys.cfg.ServerLatency > 0 {
		p.Sleep(c.sys.cfg.ServerLatency)
	}
	c.sys.ns.Remove(path)
	for k := range c.sys.chunkOwner {
		if k.ino == ino.ID {
			delete(c.sys.chunkOwner, k)
		}
	}
}

// Open implements fsapi.Client.
func (c *client) Open(p *sim.Proc, path string, truncate bool) fsapi.File {
	c.stamp(p)
	if c.sys.cfg.ServerLatency > 0 {
		p.Sleep(c.sys.cfg.ServerLatency)
	}
	return &file{c: c, ino: c.sys.ns.Create(path, truncate)}
}

// remotePath returns the interconnect pipes from the owner node back to
// this client (reads) or out to the owner (writes), cached per owner.
func (c *client) remotePath(owner *nodeState, toOwner bool) []*sim.Pipe {
	cache := c.fromOwner
	if toOwner {
		if c.toOwner == nil {
			c.toOwner = map[*nodeState][]*sim.Pipe{}
		}
		cache = c.toOwner
	} else if cache == nil {
		c.fromOwner = map[*nodeState][]*sim.Pipe{}
		cache = c.fromOwner
	}
	if path, ok := cache[owner]; ok {
		return path
	}
	link := c.sys.cfg.Interconnect.Links()[0]
	var path []*sim.Pipe
	if toOwner {
		path = []*sim.Pipe{
			c.node.nic.Dir(netsim.ClientToServer),
			link.Dir(netsim.ClientToServer),
			owner.nic.Dir(netsim.ServerToClient),
		}
	} else {
		path = []*sim.Pipe{
			owner.nic.Dir(netsim.ClientToServer),
			link.Dir(netsim.ClientToServer),
			c.node.nic.Dir(netsim.ServerToClient),
		}
	}
	cache[owner] = path
	return path
}

// chunkIO serves one op-level chunk access on its owner.
func (c *client) chunkIO(p *sim.Proc, ino *fsapi.Inode, off, n int64, write, assign bool) {
	s := c.sys
	ownerIdx := s.owner(ino.ID, off/s.cfg.ChunkBytes, c.idx, assign)
	owner := s.nodes[ownerIdx]
	owner.svc.Acquire(p, 1)
	if s.cfg.ServerLatency > 0 {
		p.Sleep(s.cfg.ServerLatency)
	}
	if ownerIdx != c.idx {
		s.fab.Transfer(p, c.remotePath(owner, write), float64(n), 0)
	}
	if write {
		owner.dev.Write(p, ino.ID, off, n)
	} else {
		owner.dev.Read(p, ino.ID, off, n)
	}
	owner.svc.Release(1)
}

// localRemoteSplit returns how many of total bytes stay local under the
// placement for a file written by (or read from) this node.
func (c *client) localRemoteSplit(total int64) (local, remote int64) {
	if c.sys.cfg.Placement == LocalFirst || len(c.sys.nodes) == 1 {
		return total, 0
	}
	local = total / int64(len(c.sys.nodes))
	return local, total - local
}

// StreamWrite implements fsapi.Client: local share to the own device,
// remote share across the interconnect to the peers' devices in parallel.
func (c *client) StreamWrite(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	c.stamp(p)
	if fsapi.Aborted(p) {
		return
	}
	s := c.sys
	ino := s.ns.Create(path, false)
	s.ns.Extend(ino, 0, total)
	// Record ownership at chunk granularity for later op-level access.
	for chunk := int64(0); chunk*s.cfg.ChunkBytes < total; chunk++ {
		s.owner(ino.ID, chunk, c.idx, true)
	}
	local, remote := c.localRemoteSplit(total)
	c.streamSplit(p, a, ioSize, local, remote, true)
}

// StreamRead implements fsapi.Client. With LocalFirst placement a reader
// that is not the writer pulls everything across the interconnect; the
// engine models the common IOR reorder case by checking chunk ownership of
// chunk 0.
func (c *client) StreamRead(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	c.stamp(p)
	if fsapi.Aborted(p) {
		return
	}
	s := c.sys
	ino := s.ns.Lookup(path)
	ownerIdx := c.idx
	if ino != nil {
		ownerIdx = s.owner(ino.ID, 0, c.idx, false)
	}
	var local, remote int64
	if s.cfg.Placement == RoundRobin {
		local, remote = c.localRemoteSplit(total)
	} else if ownerIdx == c.idx {
		local, remote = total, 0
	} else {
		local, remote = 0, total
	}
	c.streamSplit(p, a, ioSize, local, remote, false)
}

// streamSplit issues the local and remote shares as parallel flows and
// waits for both. Spawned children do not inherit the caller's abort token
// (sim.Proc tokens are per-process), so the request's token is propagated
// explicitly: each half re-checks it on entry and its fabric transfers
// register on it, letting a deadline unwind both halves in flight.
func (c *client) streamSplit(p *sim.Proc, a fsapi.Access, ioSize, local, remote int64, write bool) {
	s := c.sys
	ab := p.AbortSignal()
	wg := sim.NewWaitGroup(p.Env())
	if local > 0 {
		wg.Go(c.node.name+"/local", func(p *sim.Proc) {
			p.SetAbort(ab)
			if p.Aborted() {
				return
			}
			if write {
				c.node.dev.StreamWrite(p, a, ioSize, float64(local), nil, 0)
			} else {
				c.node.dev.StreamRead(p, a, ioSize, float64(local), nil, 0)
			}
		})
	}
	if remote > 0 {
		// Remote share: spread across the peer devices (model as the
		// neighbour's device plus the interconnect hop).
		peer := s.nodes[(c.idx+1)%len(s.nodes)]
		path := c.remotePath(peer, write)
		wg.Go(c.node.name+"/remote", func(p *sim.Proc) {
			p.SetAbort(ab)
			if p.Aborted() {
				return
			}
			if write {
				peer.dev.StreamWrite(p, a, ioSize, float64(remote), path, 0)
			} else {
				peer.dev.StreamRead(p, a, ioSize, float64(remote), path, 0)
			}
		})
	}
	wg.Wait(p)
}

type file struct {
	c   *client
	ino *fsapi.Inode
}

// Path implements fsapi.File.
func (f *file) Path() string { return f.ino.Path }

// Size implements fsapi.File.
func (f *file) Size() int64 { return f.ino.Size }

// WriteAt implements fsapi.File: chunk-granular placement and service.
func (f *file) WriteAt(p *sim.Proc, off, n int64) {
	if n <= 0 {
		return
	}
	f.c.sys.ns.Extend(f.ino, off, n)
	f.forEachChunk(off, n, func(coff, cn int64) {
		f.c.chunkIO(p, f.ino, coff, cn, true, true)
	})
}

// ReadAt implements fsapi.File.
func (f *file) ReadAt(p *sim.Proc, off, n int64) {
	if n <= 0 {
		return
	}
	fsapi.ValidateRead(f.ino, off, n)
	f.forEachChunk(off, n, func(coff, cn int64) {
		f.c.chunkIO(p, f.ino, coff, cn, false, false)
	})
}

// forEachChunk splits [off,+n) on chunk boundaries.
func (f *file) forEachChunk(off, n int64, fn func(coff, cn int64)) {
	cb := f.c.sys.cfg.ChunkBytes
	for n > 0 {
		cn := cb - off%cb
		if cn > n {
			cn = n
		}
		fn(off, cn)
		off += cn
		n -= cn
	}
}

// Fsync implements fsapi.File: UnifyFS laminates on the local device only.
func (f *file) Fsync(p *sim.Proc) {
	f.c.node.dev.Flush(p)
}

// Close implements fsapi.File.
func (f *file) Close(p *sim.Proc) {}

// Interface checks.
var _ fsapi.Client = (*client)(nil)
