package unifyfs

import "fmt"

// Node failure and recovery. UnifyFS aggregates the compute nodes' local
// devices, so the failable "servers" are the mounted nodes themselves: a
// failed node's device is parked (chunks it owns are still addressed —
// UnifyFS has no re-replication — so accesses to them crawl at the parked
// rate until the node returns, the user-level analogue of an NFS hard
// mount). Register the system with the fault injector only after all
// mounts: FaultServers reports the mounted-node count.
//
// Capacity changes route through the device's health factor, so a
// fail/recover pair restores the exact nominal device bandwidth.

// FailNode takes mounted node i out of service. Failing an already-failed
// node is a no-op; failing the last healthy node panics.
func (s *System) FailNode(i int) {
	if i < 0 || i >= len(s.nodes) {
		panic(fmt.Sprintf("unifyfs %s: no node %d", s.cfg.Name, i))
	}
	st := s.nodes[i]
	if st.failed {
		return
	}
	if s.healthyNodes() == 1 {
		panic(fmt.Sprintf("unifyfs %s: cannot fail the last healthy node", s.cfg.Name))
	}
	st.failed = true
	st.dev.SetHealthFactor(0)
}

// RecoverNode returns a failed node to service; recovering a healthy node
// is a no-op.
func (s *System) RecoverNode(i int) {
	if i < 0 || i >= len(s.nodes) || !s.nodes[i].failed {
		return
	}
	s.nodes[i].failed = false
	s.nodes[i].dev.SetHealthFactor(s.mediaHealth)
}

// HealthyNodes reports how many mounted nodes are in service.
func (s *System) HealthyNodes() int { return s.healthyNodes() }

func (s *System) healthyNodes() int {
	n := 0
	for _, st := range s.nodes {
		if !st.failed {
			n++
		}
	}
	return n
}

// --- faults.Target ---

// FaultServers implements faults.Target: the failable servers are the
// mounted nodes (register with the injector after mounting).
func (s *System) FaultServers() int { return len(s.nodes) }

// FailServer implements faults.Target.
func (s *System) FailServer(i int) { s.FailNode(i) }

// RecoverServer implements faults.Target.
func (s *System) RecoverServer(i int) { s.RecoverNode(i) }

// SetLinkHealth implements faults.Target: derates the node interconnect
// that carries remote chunk traffic (no-op without one).
func (s *System) SetLinkHealth(f float64) {
	s.linkHealth = f
	if s.cfg.Interconnect != nil {
		s.cfg.Interconnect.SetHealthFactor(f)
	}
}

// SetMediaHealth implements faults.Target: derates every healthy node's
// local device (SSD wear across the burst-buffer fleet). Failed nodes stay
// parked and pick up the prevailing factor when they recover.
func (s *System) SetMediaHealth(f float64) {
	s.mediaHealth = f
	for _, st := range s.nodes {
		if !st.failed {
			st.dev.SetHealthFactor(f)
		}
	}
}
