package unifyfs

import (
	"fmt"
	"testing"
	"time"

	"storagesim/internal/device"
	"storagesim/internal/fsapi"
	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

func testConfig(fab *sim.Fabric, placement Placement, servers int) Config {
	return Config{
		Name:             "unifyfs-test",
		PerNode:          device.NVMe970ProSpec("ssd"),
		Placement:        placement,
		ChunkBytes:       1 << 20,
		IOServersPerNode: servers,
		ServerLatency:    50 * time.Microsecond,
		Interconnect:     netsim.NewLinkBank(fab, "ic", 1, 12.5e9, 2*time.Microsecond),
	}
}

func build(t *testing.T, placement Placement, servers, nodes int) (*sim.Env, *System, []fsapi.Client) {
	t.Helper()
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	sys, err := New(env, fab, testConfig(fab, placement, servers))
	if err != nil {
		t.Fatal(err)
	}
	var mounts []fsapi.Client
	for i := 0; i < nodes; i++ {
		nic := netsim.NewIface(fab, fmt.Sprintf("n%d/nic", i), 25e9, 0)
		mounts = append(mounts, sys.Mount(fmt.Sprintf("n%d", i), nic))
	}
	return env, sys, mounts
}

func TestConfigValidate(t *testing.T) {
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	good := testConfig(fab, LocalFirst, 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.ChunkBytes = 0 },
		func(c *Config) { c.IOServersPerNode = 0 },
		func(c *Config) { c.ServerLatency = -1 },
		func(c *Config) { c.Placement = RoundRobin; c.Interconnect = nil },
		func(c *Config) { c.PerNode.ReadBW = 0 },
	}
	for i, mutate := range mutations {
		cfg := testConfig(fab, LocalFirst, 4)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSharedNamespace(t *testing.T) {
	env, _, mounts := build(t, LocalFirst, 4, 2)
	env.Go("x", func(p *sim.Proc) {
		f := mounts[0].Open(p, "/ckpt", true)
		f.WriteAt(p, 0, 4<<20)
		f.Close(p)
		g := mounts[1].Open(p, "/ckpt", false)
		if g.Size() != 4<<20 {
			t.Errorf("peer sees size %d", g.Size())
		}
		g.ReadAt(p, 0, 4<<20) // remote read must work
		g.Close(p)
	})
	env.Run()
}

func TestLocalFirstKeepsWritesLocal(t *testing.T) {
	env, sys, mounts := build(t, LocalFirst, 4, 4)
	env.Go("x", func(p *sim.Proc) {
		f := mounts[2].Open(p, "/f", true)
		for i := int64(0); i < 8; i++ {
			f.WriteAt(p, i<<20, 1<<20)
		}
	})
	env.Run()
	for k, owner := range sys.chunkOwner {
		if owner != 2 {
			t.Fatalf("chunk %v placed on node %d, want writer's node 2", k, owner)
		}
	}
}

func TestRoundRobinStripesChunks(t *testing.T) {
	env, sys, mounts := build(t, RoundRobin, 4, 4)
	env.Go("x", func(p *sim.Proc) {
		f := mounts[0].Open(p, "/f", true)
		for i := int64(0); i < 8; i++ {
			f.WriteAt(p, i<<20, 1<<20)
		}
	})
	env.Run()
	seen := map[int]int{}
	for _, owner := range sys.chunkOwner {
		seen[owner]++
	}
	if len(seen) != 4 {
		t.Fatalf("stripes used %d of 4 nodes: %v", len(seen), seen)
	}
	for node, n := range seen {
		if n != 2 {
			t.Fatalf("node %d owns %d chunks, want 2: %v", node, n, seen)
		}
	}
}

func TestRemoteReadSlowerThanLocal(t *testing.T) {
	// LocalFirst: the writer reads locally; a peer crosses the
	// interconnect and pays the extra latency per chunk.
	env, _, mounts := build(t, LocalFirst, 8, 2)
	var localDur, remoteDur sim.Duration
	env.Go("x", func(p *sim.Proc) {
		f := mounts[0].Open(p, "/f", true)
		f.WriteAt(p, 0, 32<<20)
		start := p.Now()
		f.ReadAt(p, 0, 32<<20)
		localDur = p.Now().Sub(start)
		g := mounts[1].Open(p, "/f", false)
		start = p.Now()
		g.ReadAt(p, 0, 32<<20)
		remoteDur = p.Now().Sub(start)
	})
	env.Run()
	if remoteDur <= localDur {
		t.Fatalf("remote read (%v) not slower than local (%v)", remoteDur, localDur)
	}
}

func TestIOServerPoolThrottles(t *testing.T) {
	// One I/O server versus eight, with concurrent requesters on the same
	// node: the small pool must serialize.
	measure := func(servers int) sim.Duration {
		env, _, mounts := build(t, LocalFirst, servers, 1)
		var last sim.Time
		wg := sim.NewWaitGroup(env)
		for i := 0; i < 8; i++ {
			i := i
			wg.Go(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
				f := mounts[0].Open(p, fmt.Sprintf("/f%d", i), true)
				for j := int64(0); j < 16; j++ {
					f.WriteAt(p, j<<20, 1<<20)
				}
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		env.Run()
		return sim.Duration(last)
	}
	one, eight := measure(1), measure(8)
	if one <= eight {
		t.Fatalf("1 I/O server (%v) not slower than 8 (%v)", one, eight)
	}
}

func TestStreamLocalFirstWritesAtDeviceSpeed(t *testing.T) {
	env, _, mounts := build(t, LocalFirst, 4, 4)
	const total = 4 << 30
	var end sim.Time
	env.Go("x", func(p *sim.Proc) {
		mounts[0].StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
		end = p.Now()
	})
	env.Run()
	bw := float64(total) / sim.Duration(end).Seconds()
	devW := device.NVMe970ProSpec("x").WriteBW
	if bw < 0.9*devW || bw > 1.1*devW {
		t.Fatalf("local-first stream write = %.2e, want ~device %.2e", bw, devW)
	}
}

func TestStreamRoundRobinUsesInterconnect(t *testing.T) {
	// Round-robin writes push (n-1)/n of the bytes over the interconnect:
	// with a slow interconnect they must be slower than local-first.
	measure := func(pl Placement) float64 {
		env := sim.NewEnv()
		fab := sim.NewFabric(env)
		cfg := testConfig(fab, pl, 4)
		cfg.Interconnect = netsim.NewLinkBank(fab, "ic", 1, 1e9, 2*time.Microsecond) // slow
		sys := MustNew(env, fab, cfg)
		var mounts []fsapi.Client
		for i := 0; i < 4; i++ {
			nic := netsim.NewIface(fab, fmt.Sprintf("n%d/nic", i), 25e9, 0)
			mounts = append(mounts, sys.Mount(fmt.Sprintf("n%d", i), nic))
		}
		const total = 2 << 30
		var end sim.Time
		env.Go("x", func(p *sim.Proc) {
			mounts[0].StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
			end = p.Now()
		})
		env.Run()
		return float64(total) / sim.Duration(end).Seconds()
	}
	local, rr := measure(LocalFirst), measure(RoundRobin)
	if rr >= local {
		t.Fatalf("round-robin over a slow interconnect (%.2e) not slower than local-first (%.2e)", rr, local)
	}
}

func TestRemoveDropsChunks(t *testing.T) {
	env, sys, mounts := build(t, RoundRobin, 4, 2)
	env.Go("x", func(p *sim.Proc) {
		f := mounts[0].Open(p, "/f", true)
		f.WriteAt(p, 0, 4<<20)
		f.Close(p)
		mounts[0].Remove(p, "/f")
	})
	env.Run()
	if len(sys.chunkOwner) != 0 {
		t.Fatalf("%d chunks survived removal", len(sys.chunkOwner))
	}
	if sys.Namespace().Lookup("/f") != nil {
		t.Fatal("file survived removal")
	}
}

func TestFsyncIsLocalFlushOnly(t *testing.T) {
	env, _, mounts := build(t, LocalFirst, 4, 1)
	var cost sim.Duration
	env.Go("x", func(p *sim.Proc) {
		f := mounts[0].Open(p, "/f", true)
		f.WriteAt(p, 0, 1<<20)
		start := p.Now()
		f.Fsync(p)
		cost = p.Now().Sub(start)
	})
	env.Run()
	if cost != device.NVMe970ProSpec("x").FlushLatency {
		t.Fatalf("fsync cost %v, want one local device flush", cost)
	}
}
