package unifyfs

import (
	"storagesim/internal/repair"
	"storagesim/internal/sim"
)

// Redundancy declaration (repair.Protected). UnifyFS keeps exactly one
// copy of every chunk on the writing node's local device — there is no
// re-replication and no parity — so the scheme is None: a node failure
// loses every chunk the node owns, and the repair manager reports those
// bytes as lost instead of spawning a rebuild.

// RepairScheme implements repair.Protected.
func (s *System) RepairScheme() repair.Scheme {
	return repair.Scheme{Kind: repair.None, Tolerance: 0, ServersHoldData: true}
}

// FaultUnits implements faults.UnitTarget: one unit per mounted node (its
// local device).
func (s *System) FaultUnits() int { return len(s.nodes) }

// FailUnit implements faults.UnitTarget.
func (s *System) FailUnit(i int) { s.FailNode(i) }

// RecoverUnit implements faults.UnitTarget.
func (s *System) RecoverUnit(i int) { s.RecoverNode(i) }

// SetUnitRebuild implements repair.Protected. With no redundancy there is
// nothing to rebuild from; the manager never calls it.
func (s *System) SetUnitRebuild(i int, frac float64) {}

// UnitBytes implements repair.Protected: the bytes of every chunk node i
// owns. Map iteration order is irrelevant — integer addition commutes.
func (s *System) UnitBytes(i int) float64 {
	chunks := int64(0)
	for _, owner := range s.chunkOwner {
		if owner == i {
			chunks++
		}
	}
	return float64(chunks * s.cfg.ChunkBytes)
}

// RepairPath implements repair.Protected: no scheme, no repair flows.
func (s *System) RepairPath(i int) []*sim.Pipe { return nil }

var _ repair.Protected = (*System)(nil)
