// Package workloads maps the real applications the paper cites (Section
// III-B) onto the benchmark engines, the way the paper maps them onto IOR
// access patterns: scientific simulations are bulk-synchronous sequential
// writers, data-analytics codes are sequential readers, ML/DL codes are
// random readers or DLIO pipelines. Each preset documents the application's
// published I/O signature and returns a ready-to-run configuration.
package workloads

import (
	"fmt"
	"time"

	"storagesim/internal/dlio"
	"storagesim/internal/ior"
	"storagesim/internal/units"
)

// Kind distinguishes which engine a workload runs on.
type Kind int

const (
	// IORKind workloads run on the IOR engine.
	IORKind Kind = iota
	// DLIOKind workloads run on the DLIO engine.
	DLIOKind
)

// Workload is one named application preset.
type Workload struct {
	// Name is the application name as the paper cites it.
	Name string
	// Description summarizes the I/O signature being modeled.
	Description string
	// Kind selects the engine.
	Kind Kind
	// IOR is set for IORKind.
	IOR ior.Config
	// DLIO is set for DLIOKind.
	DLIO dlio.Config
}

// CM1 models the atmospheric-simulation writer: "generates more than 750
// files each of 16 MB in size" — bulk-synchronous sequential writes,
// file-per-process.
func CM1(procsPerNode int) Workload {
	return Workload{
		Name:        "CM1",
		Description: "atmospheric simulation: 750+ sequential 16 MB file writes",
		Kind:        IORKind,
		IOR: ior.Config{
			Workload:     ior.Scientific,
			BlockSize:    int64(16 * units.MiB),
			TransferSize: int64(units.MiB),
			Segments:     1, // one 16 MB block per file; many files via ranks
			ProcsPerNode: procsPerNode,
			ReorderTasks: false,
			Dir:          "/cm1",
		},
	}
}

// HACCIO models the cosmology checkpoint/restart kernel: each rank dumps
// its particle state sequentially, then a restart reads it back.
func HACCIO(procsPerNode int) Workload {
	return Workload{
		Name:        "HACC-I/O",
		Description: "checkpoint/restart on simulation data: seq write then seq read back",
		Kind:        IORKind,
		IOR: ior.Config{
			Workload:     ior.Analytics, // write phase + read-back phase
			BlockSize:    int64(units.MiB),
			TransferSize: int64(units.MiB),
			Segments:     1024, // ~1 GiB checkpoint per rank
			ProcsPerNode: procsPerNode,
			ReorderTasks: true, // restart often lands on different nodes
			Dir:          "/hacc",
		},
	}
}

// BDCATS models the trillion-particle clustering analytics: iterative
// sequential traversal of a large shared dataset. (The paper runs N-N to
// isolate storage behaviour; the SharedFile flag reproduces the N-1
// contention it avoided.)
func BDCATS(procsPerNode int) Workload {
	return Workload{
		Name:        "BD-CATS",
		Description: "data analytics over one shared HDF5 file: N-1 sequential reads",
		Kind:        IORKind,
		IOR: ior.Config{
			Workload:     ior.Analytics,
			BlockSize:    int64(units.MiB),
			TransferSize: int64(units.MiB),
			Segments:     512,
			ProcsPerNode: procsPerNode,
			ReorderTasks: true,
			SharedFile:   true,
			Dir:          "/bdcats",
		},
	}
}

// KMeans models point-set clustering: ranks repeatedly read disjoint
// divisions of the input sequentially.
func KMeans(procsPerNode int) Workload {
	return Workload{
		Name:        "KMeans",
		Description: "clustering: ranks read disjoint point divisions sequentially",
		Kind:        IORKind,
		IOR: ior.Config{
			Workload:     ior.Analytics,
			BlockSize:    int64(4 * units.MiB),
			TransferSize: int64(units.MiB),
			Segments:     128,
			ProcsPerNode: procsPerNode,
			ReorderTasks: true,
			Dir:          "/kmeans",
		},
	}
}

// OutOfCoreSort models the paper's ML stand-in: database-like files where
// "the offset indicates the location of each entry" — random reads.
func OutOfCoreSort(procsPerNode int) Workload {
	return Workload{
		Name:        "out-of-core sort",
		Description: "random reads at entry offsets in database-like files",
		Kind:        IORKind,
		IOR: ior.Config{
			Workload:     ior.ML,
			BlockSize:    int64(units.MiB),
			TransferSize: int64(units.MiB),
			Segments:     512,
			ProcsPerNode: procsPerNode,
			ReorderTasks: true,
			Dir:          "/oocsort",
		},
	}
}

// ResNet50 re-exports the DLIO preset under the workloads catalogue.
func ResNet50() Workload {
	return Workload{
		Name:        "ResNet-50",
		Description: "image classification: 150 KB JPEG samples, 8 I/O threads, weak scaling",
		Kind:        DLIOKind,
		DLIO:        dlio.ResNet50(),
	}
}

// Cosmoflow re-exports the DLIO preset under the workloads catalogue.
func Cosmoflow() Workload {
	return Workload{
		Name:        "Cosmoflow",
		Description: "dark-matter CNN: 32 MB TFRecords in 256 KB reads, 4 I/O threads, strong scaling",
		Kind:        DLIOKind,
		DLIO:        dlio.Cosmoflow(),
	}
}

// CosmicTagger models the UNet segmentation trainer: HDF5 samples striped
// in memory via h5py, a heavier per-sample read than ResNet with a longer
// step time.
func CosmicTagger() Workload {
	cfg := dlio.Config{
		Model:           "cosmic-tagger",
		Samples:         512,
		SampleBytes:     4 << 20,
		TransferBytes:   1 << 20,
		SamplesPerFile:  8,
		Epochs:          2,
		BatchSize:       1,
		ReadThreads:     6,
		PrefetchDepth:   12,
		ComputePerBatch: 80 * time.Millisecond,
		ProcsPerNode:    4,
		Scaling:         dlio.WeakScaling,
		Shuffle:         true,
		Seed:            13,
		Dir:             "/dlio/cosmictagger",
	}
	return Workload{
		Name:        "Cosmic Tagger",
		Description: "UNet over HDF5: 4 MB samples read in 1 MB stripes",
		Kind:        DLIOKind,
		DLIO:        cfg,
	}
}

// Catalogue returns every preset, keyed for CLI lookup.
func Catalogue(procsPerNode int) map[string]Workload {
	return map[string]Workload{
		"cm1":           CM1(procsPerNode),
		"hacc":          HACCIO(procsPerNode),
		"bdcats":        BDCATS(procsPerNode),
		"kmeans":        KMeans(procsPerNode),
		"oocsort":       OutOfCoreSort(procsPerNode),
		"resnet50":      ResNet50(),
		"cosmoflow":     Cosmoflow(),
		"cosmic-tagger": CosmicTagger(),
	}
}

// ByName resolves a preset.
func ByName(name string, procsPerNode int) (Workload, error) {
	w, ok := Catalogue(procsPerNode)[name]
	if !ok {
		return Workload{}, fmt.Errorf("workloads: unknown application %q", name)
	}
	return w, nil
}
