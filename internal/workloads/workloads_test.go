package workloads

import (
	"testing"

	"storagesim/internal/cluster"
	"storagesim/internal/dlio"
	"storagesim/internal/fsapi"
	"storagesim/internal/ior"
	"storagesim/internal/sim"
	"storagesim/internal/trace"
)

func TestCatalogueComplete(t *testing.T) {
	cat := Catalogue(8)
	want := []string{"cm1", "hacc", "bdcats", "kmeans", "oocsort", "resnet50", "cosmoflow", "cosmic-tagger"}
	for _, name := range want {
		w, ok := cat[name]
		if !ok {
			t.Errorf("catalogue missing %q", name)
			continue
		}
		if w.Name == "" || w.Description == "" {
			t.Errorf("%q lacks name/description", name)
		}
		switch w.Kind {
		case IORKind:
			if err := w.IOR.Validate(); err != nil {
				t.Errorf("%q IOR config invalid: %v", name, err)
			}
		case DLIOKind:
			if err := w.DLIO.Validate(); err != nil {
				t.Errorf("%q DLIO config invalid: %v", name, err)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("cm1", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("vasp", 4); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPatternMapping(t *testing.T) {
	// The paper's mapping: scientific -> seq write, analytics -> seq read,
	// ML -> random read.
	if CM1(4).IOR.Workload != ior.Scientific {
		t.Error("CM1 must be a sequential writer")
	}
	if HACCIO(4).IOR.Workload != ior.Analytics {
		t.Error("HACC-I/O must read its checkpoint back")
	}
	if KMeans(4).IOR.Workload != ior.Analytics || BDCATS(4).IOR.Workload != ior.Analytics {
		t.Error("analytics workloads must be sequential readers")
	}
	if OutOfCoreSort(4).IOR.Workload != ior.ML {
		t.Error("out-of-core sort must be a random reader")
	}
	if !BDCATS(4).IOR.SharedFile {
		t.Error("BD-CATS operates on one shared file (N-1)")
	}
	if Cosmoflow().DLIO.Scaling != dlio.StrongScaling {
		t.Error("Cosmoflow scales strongly")
	}
}

func TestCM1Signature(t *testing.T) {
	w := CM1(8)
	if w.IOR.BlockSize != 16<<20 {
		t.Fatalf("CM1 file size = %d, want 16 MiB", w.IOR.BlockSize)
	}
}

func TestWorkloadsRunOnSimulatedStorage(t *testing.T) {
	// Every IOR-kind preset must actually run on a deployment end to end.
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	cl := cluster.MustNew(env, fab, cluster.LassenSpec(), 1)
	sys := cluster.GPFSOnLassen(cl)
	mount := sys.Mount(cl.Node(0).Name, cl.Node(0).NIC)
	ranIOR := 0
	for name, w := range Catalogue(4) {
		if w.Kind != IORKind {
			continue
		}
		cfg := w.IOR
		cfg.Segments = 4 // shrink for the unit test
		env2 := sim.NewEnv()
		fab2 := sim.NewFabric(env2)
		cl2 := cluster.MustNew(env2, fab2, cluster.LassenSpec(), 1)
		sys2 := cluster.GPFSOnLassen(cl2)
		m2 := sys2.Mount(cl2.Node(0).Name, cl2.Node(0).NIC)
		res, err := ior.Run(env2, []fsapi.Client{m2}, cfg)
		if err != nil {
			t.Fatalf("%s failed: %v", name, err)
		}
		if res.WriteBW <= 0 {
			t.Fatalf("%s produced no write bandwidth", name)
		}
		ranIOR++
	}
	if ranIOR != 5 {
		t.Fatalf("ran %d IOR presets, want 5", ranIOR)
	}
	_ = mount

	// And one DLIO preset (Cosmic Tagger, the smallest).
	env3 := sim.NewEnv()
	fab3 := sim.NewFabric(env3)
	cl3 := cluster.MustNew(env3, fab3, cluster.LassenSpec(), 1)
	sys3 := cluster.GPFSOnLassen(cl3)
	m3 := sys3.Mount(cl3.Node(0).Name, cl3.Node(0).NIC)
	ct := CosmicTagger().DLIO
	ct.Samples = 32
	res, err := dlio.Run(env3, []fsapi.Client{m3}, ct, trace.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 64 { // 32 samples x 2 epochs
		t.Fatalf("cosmic tagger processed %d samples", res.Samples)
	}
}
