package sim

import "math/bits"

// Calendar-queue geometry. The wheel is a ring of buckets covering a sliding
// window of virtual time starting at base: an event lands in the wheel when
// it is within wheelSpan of base, and in the overflow heap otherwise. The
// window only moves when the wheel is empty (pop rebases it onto the
// overflow minimum and cascades near-future events in), which keeps the
// bucket→time mapping single-lap and therefore trivially ordered.
const (
	wheelBucketShift = 6   // 64 ns of virtual time per bucket
	wheelBuckets     = 256 // window span: 16384 ns
	wheelMask        = wheelBuckets - 1
	wheelWords       = wheelBuckets / 64
	wheelSpan        = Time(wheelBuckets << wheelBucketShift)
)

// calBucket is one wheel slot. Events append unsorted; the first drain of
// the bucket sorts it by (at, seq) once, and inserts that arrive while the
// bucket is mid-drain keep the remainder ordered with a binary-search
// insert. head marks how far the drain has progressed, so exhausting a
// bucket is a cheap truncation that keeps the slice's capacity for the next
// lap of the window.
type calBucket struct {
	items  []*timedEvent
	head   int
	sorted bool
}

// calQueue is the production scheduler: a hierarchical timer-wheel /
// calendar-queue hybrid. Near-future events cost O(1) to insert and pop —
// the dominant patterns, scheduling at the current instant (process wakes,
// coalesced fabric solves, event broadcasts) and short timers, never touch
// a heap — while far-future events wait in a binary heap and cascade into
// buckets when the window reaches them, paying the O(log n) at most once.
//
// Determinism: the queue pops in exactly the (at, seq) total order of the
// seed's binary heap. Within a bucket events are sorted by (at, seq);
// buckets are drained in ascending time order (each bucket covers a
// disjoint 64 ns range of the window); and every wheel event precedes every
// overflow event because admission requires at - base < wheelSpan and the
// window never moves while the wheel is non-empty. refQueue is the
// reference implementation; FuzzWheelVsHeap checks the equivalence over
// fuzzed schedule/cancel/pop sequences.
type calQueue struct {
	base      Time // window start, aligned to bucket width; base <= Env.now
	nwheel    int  // events sitting in buckets, including tombstones
	wheelLive int  // live (non-cancelled) events in buckets
	occupied  [wheelWords]uint64
	overflow  eventHeap
	pool      eventPool
	buckets   [wheelBuckets]calBucket
}

func (q *calQueue) alloc() *timedEvent     { return q.pool.get() }
func (q *calQueue) release(ev *timedEvent) { q.pool.put(ev) }
func (q *calQueue) live() int              { return q.wheelLive + q.overflow.len() }

// insert files a pending event. The caller (Env) guarantees at >= now >=
// base, so the subtraction cannot go negative and the bucket mapping never
// lands behind the drain cursor's time.
func (q *calQueue) insert(ev *timedEvent) {
	if ev.at-q.base < wheelSpan {
		q.insertWheel(ev)
		return
	}
	q.overflow.push(ev)
}

func (q *calQueue) insertWheel(ev *timedEvent) {
	b := int(ev.at>>wheelBucketShift) & wheelMask
	bk := &q.buckets[b]
	ev.idx = evIdxBucket
	q.nwheel++
	q.wheelLive++
	if len(bk.items) == 0 {
		q.occupied[b>>6] |= 1 << (b & 63)
		bk.items = append(bk.items, ev)
		return
	}
	if bk.sorted {
		// Mid-drain bucket: keep the remainder ordered. seq is globally
		// increasing, so every already-filed event with the same timestamp
		// precedes ev and comparing times alone finds the slot.
		lo, hi := bk.head, len(bk.items)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if bk.items[mid].at <= ev.at {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bk.items = append(bk.items, nil)
		copy(bk.items[lo+1:], bk.items[lo:])
		bk.items[lo] = ev
		return
	}
	bk.items = append(bk.items, ev)
}

// pop removes and returns the earliest live event if its timestamp is at
// most limit, or nil when the calendar is drained (or drained up to limit —
// the RunUntil deadline). A nil return never moves the window, so a
// deadline stop can be followed by schedules below the overflow minimum.
func (q *calQueue) pop(limit Time) *timedEvent {
	for {
		if q.nwheel > 0 {
			b := q.firstOccupied()
			bk := &q.buckets[b]
			if !bk.sorted {
				sortEvents(bk.items)
				bk.sorted = true
				bk.head = 0
			}
			for bk.head < len(bk.items) {
				ev := bk.items[bk.head]
				if ev.kind == evDead {
					// Tombstone from a bucket cancel: recycle it now.
					bk.items[bk.head] = nil
					bk.head++
					q.nwheel--
					q.pool.put(ev)
					continue
				}
				if ev.at > limit {
					return nil
				}
				bk.items[bk.head] = nil
				bk.head++
				q.nwheel--
				q.wheelLive--
				if bk.head == len(bk.items) {
					q.resetBucket(b, bk)
				}
				ev.idx = evIdxNone
				ev.gen++
				return ev
			}
			q.resetBucket(b, bk)
			continue
		}
		// Wheel empty: slide the window onto the overflow heap's earliest
		// region and cascade near-future events into buckets. Each overflow
		// event pays its heap traffic exactly once.
		if q.overflow.len() == 0 || q.overflow.peek().at > limit {
			return nil
		}
		q.base = q.overflow.peek().at &^ (1<<wheelBucketShift - 1)
		for q.overflow.len() > 0 && q.overflow.peek().at-q.base < wheelSpan {
			q.insertWheel(q.overflow.pop())
		}
	}
}

// nextAt returns the timestamp of the earliest live event without disturbing
// the calendar. Buckets are scanned in ring order from the window base; the
// first bucket holding a live (non-tombstone) event wins, because each bucket
// covers a disjoint time range and every wheel event precedes every overflow
// event (admission requires at - base < wheelSpan). The scan does not sort —
// a min over the bucket's live items is enough — so the calendar's lazy
// sort-on-first-drain behavior is untouched.
func (q *calQueue) nextAt() (Time, bool) {
	if q.wheelLive > 0 {
		s := int(q.base >> wheelBucketShift)
		for i := 0; i < wheelBuckets; i++ {
			b := (s + i) & wheelMask
			if q.occupied[b>>6]&(1<<(b&63)) == 0 {
				continue
			}
			bk := &q.buckets[b]
			best, found := Time(0), false
			for _, ev := range bk.items[bk.head:] {
				if ev.kind != evDead && (!found || ev.at < best) {
					best, found = ev.at, true
				}
			}
			if found {
				return best, true
			}
		}
		panic("sim: calendar live count out of sync")
	}
	if q.overflow.len() > 0 {
		return q.overflow.peek().at, true
	}
	return 0, false
}

// cancel removes a pending event: heap events are cut out of the overflow
// immediately; bucket events are tombstoned in place (excluded from live
// counts at once, recycled when the drain sweeps past them).
func (q *calQueue) cancel(ev *timedEvent) {
	switch {
	case ev.idx >= 0:
		q.overflow.remove(ev.idx)
		ev.gen++
		q.pool.put(ev)
	case ev.idx == evIdxBucket:
		ev.kind = evDead
		ev.fn = nil
		ev.proc = nil
		ev.gen++
		q.wheelLive--
	}
}

func (q *calQueue) resetBucket(b int, bk *calBucket) {
	bk.items = bk.items[:0]
	bk.head = 0
	bk.sorted = false
	q.occupied[b>>6] &^= 1 << (b & 63)
}

// firstOccupied returns the non-empty bucket holding the earliest events:
// the first set bitmap bit in ring order starting from base's bucket. The
// scan is over four words regardless of how sparse the wheel is.
func (q *calQueue) firstOccupied() int {
	s := int(q.base>>wheelBucketShift) & wheelMask
	w, bit := s>>6, uint(s&63)
	if m := q.occupied[w] &^ (1<<bit - 1); m != 0 {
		return w<<6 + bits.TrailingZeros64(m)
	}
	for i := 1; i < wheelWords; i++ {
		ww := (w + i) & (wheelWords - 1)
		if m := q.occupied[ww]; m != 0 {
			return ww<<6 + bits.TrailingZeros64(m)
		}
	}
	if m := q.occupied[w] & (1<<bit - 1); m != 0 {
		return w<<6 + bits.TrailingZeros64(m)
	}
	panic("sim: calendar bitmap out of sync")
}
