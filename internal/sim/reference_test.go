package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Reference cross-check: a deliberately naive per-flow max–min solver and
// event loop, written with none of the production engine's optimizations
// (no classes, no scoped re-solve, no heaps — dense O(flows·pipes) solves
// at every event). Randomized scenarios must complete at the same virtual
// nanoseconds in both implementations.

type refFlow struct {
	start Time
	path  []int // pipe indices
	bytes float64
	cap   float64

	remaining float64
	rate      float64
	end       Time
	active    bool
	finished  bool
}

// refSolve densely water-fills rates for all active flows.
func refSolve(flows []*refFlow, caps []float64) {
	remCap := append([]float64(nil), caps...)
	unfrozen := make([]int, len(caps))
	live := 0
	for _, fl := range flows {
		if !fl.active {
			continue
		}
		live++
		fl.rate = 0
		for _, p := range fl.path {
			unfrozen[p]++
		}
	}
	frozen := make(map[*refFlow]bool)
	freeze := func(fl *refFlow, rate float64) {
		frozen[fl] = true
		fl.rate = rate
		for _, p := range fl.path {
			remCap[p] -= rate
			if remCap[p] < 0 {
				remCap[p] = 0
			}
			unfrozen[p]--
		}
		live--
	}
	for live > 0 {
		share := math.Inf(1)
		for p := range caps {
			if unfrozen[p] == 0 {
				continue
			}
			if s := remCap[p] / float64(unfrozen[p]); s < share {
				share = s
			}
		}
		progressed := false
		for _, fl := range flows {
			if !fl.active || frozen[fl] || fl.cap <= 0 || fl.cap > share {
				continue
			}
			freeze(fl, fl.cap)
			progressed = true
		}
		if progressed {
			continue
		}
		for p := range caps {
			if unfrozen[p] == 0 || remCap[p]/float64(unfrozen[p]) > share*(1+1e-12) {
				continue
			}
			for _, fl := range flows {
				if !fl.active || frozen[fl] {
					continue
				}
				onPipe := false
				for _, q := range fl.path {
					if q == p {
						onPipe = true
						break
					}
				}
				if onPipe {
					freeze(fl, share)
					progressed = true
				}
			}
		}
		if !progressed {
			panic("reference solver stuck")
		}
	}
}

// refRun plays the scenario on the naive engine and returns completion times.
func refRun(flows []*refFlow, caps []float64) []Time {
	now := Time(0)
	pendingArrivals := len(flows)
	for {
		// Next event: earliest unstarted arrival or earliest completion.
		next := Time(math.MaxInt64)
		for _, fl := range flows {
			if !fl.finished && !fl.active && fl.start < next {
				next = fl.start
			}
		}
		anyActive := false
		earliest := math.Inf(1)
		for _, fl := range flows {
			if fl.active {
				anyActive = true
				if t := fl.remaining / fl.rate; t < earliest {
					earliest = t
				}
			}
		}
		if anyActive {
			if comp := now + Time(math.Ceil(earliest*1e9)); comp < next {
				next = comp
			}
		}
		if !anyActive && pendingArrivals == 0 {
			break
		}
		dt := next.Sub(now).Seconds()
		now = next
		for _, fl := range flows {
			if fl.active {
				fl.remaining -= fl.rate * dt
			}
		}
		for _, fl := range flows {
			if fl.active && fl.remaining < completionSlack {
				fl.active = false
				fl.finished = true
				fl.end = now
			}
		}
		for _, fl := range flows {
			if !fl.finished && !fl.active && fl.start <= now {
				fl.active = true
				fl.remaining = fl.bytes
				pendingArrivals--
			}
		}
		refSolve(flows, caps)
	}
	ends := make([]Time, len(flows))
	for i, fl := range flows {
		ends[i] = fl.end
	}
	return ends
}

// fabricRun plays the same scenario on the production engine.
func fabricRun(flows []*refFlow, caps []float64) []Time {
	e := NewEnv()
	fab := NewFabric(e)
	pipes := make([]*Pipe, len(caps))
	for i, c := range caps {
		pipes[i] = fab.NewPipe(fmt.Sprintf("p%d", i), c, 0)
	}
	ends := make([]Time, len(flows))
	for i, fl := range flows {
		i, fl := i, fl
		path := make([]*Pipe, len(fl.path))
		for j, p := range fl.path {
			path[j] = pipes[p]
		}
		e.Go(fmt.Sprintf("f%d", i), func(p *Proc) {
			p.SleepUntil(fl.start)
			fab.Transfer(p, path, fl.bytes, fl.cap)
			ends[i] = p.Now()
		})
	}
	e.Run()
	return ends
}

func TestSolverMatchesDenseReference(t *testing.T) {
	capChoices := []float64{0, 0, 0, 3e8, 7e8} // mostly uncapped
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nPipes := 3 + rng.Intn(4)
		caps := make([]float64, nPipes)
		for i := range caps {
			caps[i] = float64(1+rng.Intn(8)) * 5e8
		}
		flows := make([]*refFlow, 0, 40)
		for i := 0; i < 40; i++ {
			pathLen := 1 + rng.Intn(3)
			perm := rng.Perm(nPipes)[:pathLen]
			flows = append(flows, &refFlow{
				start: Time(rng.Intn(50_000_000)), // within 50ms
				path:  perm,
				bytes: float64(1+rng.Intn(100)) * 1e6,
				cap:   capChoices[rng.Intn(len(capChoices))],
			})
		}
		want := refRun(cloneFlows(flows), caps)
		got := fabricRun(flows, caps)
		for i := range flows {
			// The engines quantize through different float paths (per-flow
			// remaining vs class work integral); completions may differ by a
			// few ns when an intermediate event shifts by one quantum.
			if d := int64(got[i]) - int64(want[i]); d < -4 || d > 4 {
				t.Errorf("seed %d flow %d: fabric %dns, reference %dns (Δ=%dns)",
					seed, i, int64(got[i]), int64(want[i]), d)
			}
		}
	}
}

func cloneFlows(flows []*refFlow) []*refFlow {
	out := make([]*refFlow, len(flows))
	for i, fl := range flows {
		c := *fl
		out[i] = &c
	}
	return out
}
