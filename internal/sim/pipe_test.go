package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"
)

// close enough for float bandwidth math quantized to nanoseconds.
func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

func TestSingleFlowFullCapacity(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0) // 1 GB/s
	var done Time
	e.Go("xfer", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 5e8, 0) // 500 MB
		done = p.Now()
	})
	e.Run()
	if !approx(Duration(done).Seconds(), 0.5, 1e-6) {
		t.Fatalf("500MB over 1GB/s took %v, want 500ms", Duration(done))
	}
}

func TestTwoFlowsShareEvenly(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	var ends []Time
	for i := 0; i < 2; i++ {
		e.Go(fmt.Sprintf("x%d", i), func(p *Proc) {
			fab.Transfer(p, []*Pipe{link}, 5e8, 0)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	// Two 500 MB flows sharing 1 GB/s: both finish at t=1s.
	for _, end := range ends {
		if !approx(Duration(end).Seconds(), 1.0, 1e-6) {
			t.Fatalf("end = %v, want 1s", Duration(end))
		}
	}
}

func TestDepartureSpeedsUpRemainder(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	var shortEnd, longEnd Time
	e.Go("short", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 1e8, 0) // 100 MB
		shortEnd = p.Now()
	})
	e.Go("long", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 4e8, 0) // 400 MB
		longEnd = p.Now()
	})
	e.Run()
	// Shared until short finishes: 100MB at 500MB/s = 0.2s. Long has done
	// 100MB too, then 300MB at full 1GB/s = 0.3s more -> 0.5s total.
	if !approx(Duration(shortEnd).Seconds(), 0.2, 1e-6) {
		t.Fatalf("short end = %v, want 0.2s", Duration(shortEnd))
	}
	if !approx(Duration(longEnd).Seconds(), 0.5, 1e-6) {
		t.Fatalf("long end = %v, want 0.5s", Duration(longEnd))
	}
}

func TestPerFlowRateCap(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	var end Time
	e.Go("capped", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 1e8, 1e8) // 100 MB at <=100 MB/s
		end = p.Now()
	})
	e.Run()
	if !approx(Duration(end).Seconds(), 1.0, 1e-6) {
		t.Fatalf("capped flow end = %v, want 1s", Duration(end))
	}
}

func TestCapLeavesHeadroomForOthers(t *testing.T) {
	// One capped flow plus one open flow: the open flow should get the
	// remaining capacity, not just half.
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	var openEnd Time
	e.Go("capped", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 2e8, 2e8) // 200MB/s cap for 1s
	})
	e.Go("open", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 8e8, 0)
		openEnd = p.Now()
	})
	e.Run()
	// open flow gets 800 MB/s while capped is active -> 800MB in 1s.
	if !approx(Duration(openEnd).Seconds(), 1.0, 1e-6) {
		t.Fatalf("open end = %v, want 1s", Duration(openEnd))
	}
}

func TestBottleneckIsMinAlongPath(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	fast := fab.NewPipe("fast", 10e9, 0)
	slow := fab.NewPipe("slow", 1e9, 0)
	var end Time
	e.Go("x", func(p *Proc) {
		fab.Transfer(p, []*Pipe{fast, slow}, 1e9, 0)
		end = p.Now()
	})
	e.Run()
	if !approx(Duration(end).Seconds(), 1.0, 1e-6) {
		t.Fatalf("end = %v, want 1s (bottleneck 1GB/s)", Duration(end))
	}
}

func TestUnbottleneckedPipeRedistributes(t *testing.T) {
	// Flow A crosses pipes L1(1GB/s)+shared(10GB/s); flow B crosses only
	// shared. Max-min: A gets 1 GB/s (bound by L1), B gets 9 GB/s.
	e := NewEnv()
	fab := NewFabric(e)
	l1 := fab.NewPipe("l1", 1e9, 0)
	shared := fab.NewPipe("shared", 10e9, 0)
	var aEnd, bEnd Time
	e.Go("a", func(p *Proc) {
		fab.Transfer(p, []*Pipe{l1, shared}, 1e9, 0)
		aEnd = p.Now()
	})
	e.Go("b", func(p *Proc) {
		fab.Transfer(p, []*Pipe{shared}, 9e9, 0)
		bEnd = p.Now()
	})
	e.Run()
	if !approx(Duration(aEnd).Seconds(), 1.0, 1e-6) {
		t.Fatalf("a end = %v, want 1s", Duration(aEnd))
	}
	if !approx(Duration(bEnd).Seconds(), 1.0, 1e-6) {
		t.Fatalf("b end = %v, want 1s (9GB at 9GB/s)", Duration(bEnd))
	}
}

func TestPathLatencyChargedOnce(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 10*time.Millisecond)
	var end Time
	e.Go("x", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 1e9, 0)
		end = p.Now()
	})
	e.Run()
	if !approx(Duration(end).Seconds(), 1.01, 1e-6) {
		t.Fatalf("end = %v, want 1.01s", Duration(end))
	}
}

func TestSetCapacityMidFlow(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	var end Time
	e.Go("x", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 1e9, 0)
		end = p.Now()
	})
	e.Go("squeeze", func(p *Proc) {
		p.Sleep(500 * time.Millisecond)
		link.SetCapacity(0.5e9)
	})
	e.Run()
	// 500MB at 1GB/s, then 500MB at 0.5GB/s => 0.5 + 1.0 = 1.5s.
	if !approx(Duration(end).Seconds(), 1.5, 1e-6) {
		t.Fatalf("end = %v, want 1.5s", Duration(end))
	}
}

func TestManySymmetricFlowsAggregateToCapacity(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 8e9, 0)
	const n = 64
	perFlow := 1e9
	var lastEnd Time
	for i := 0; i < n; i++ {
		e.Go(fmt.Sprintf("f%d", i), func(p *Proc) {
			fab.Transfer(p, []*Pipe{link}, perFlow, 0)
			if p.Now() > lastEnd {
				lastEnd = p.Now()
			}
		})
	}
	e.Run()
	want := float64(n) * perFlow / 8e9
	if !approx(Duration(lastEnd).Seconds(), want, 1e-6) {
		t.Fatalf("makespan = %v, want %.3fs", Duration(lastEnd), want)
	}
}

func TestZeroByteTransferIsInstant(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	e.Go("x", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 0, 0)
		if p.Now() != 0 {
			t.Errorf("zero-byte transfer advanced clock to %v", p.Now())
		}
	})
	e.Run()
}

// Property: conservation — for any flow sizes, total bytes moved equals the
// link capacity integrated over the makespan when the link is the common
// bottleneck (all flows start at t=0 and keep the link busy until they
// finish; the last completion time >= total/capacity).
func TestConservationProperty(t *testing.T) {
	f := func(sizes []uint32) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 32 {
			sizes = sizes[:32]
		}
		e := NewEnv()
		fab := NewFabric(e)
		cap := 1e9
		link := fab.NewPipe("link", cap, 0)
		total := 0.0
		var makespan Time
		for i, s := range sizes {
			bytes := float64(s%1000+1) * 1e6
			total += bytes
			e.Go(fmt.Sprintf("f%d", i), func(p *Proc) {
				fab.Transfer(p, []*Pipe{link}, bytes, 0)
				if p.Now() > makespan {
					makespan = p.Now()
				}
			})
		}
		e.Run()
		want := total / cap
		return approx(Duration(makespan).Seconds(), want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: max-min fairness — with one shared bottleneck and per-flow caps,
// measured single-instant rates match the analytic water-filling solution.
func TestWaterFillingProperty(t *testing.T) {
	f := func(caps []uint16) bool {
		if len(caps) == 0 || len(caps) > 16 {
			return true
		}
		e := NewEnv()
		fab := NewFabric(e)
		capacity := 1e9
		link := fab.NewPipe("link", capacity, 0)
		flows := make([]*Flow, len(caps))
		capVals := make([]float64, len(caps))
		for i, c := range caps {
			capVals[i] = float64(c%100+1) * 1e7 // 10..1000 MB/s
			flows[i] = fab.StartFlow([]*Pipe{link}, 1e15, capVals[i])
		}
		var ok bool
		e.Go("check", func(p *Proc) {
			p.Sleep(time.Millisecond) // let the solve event run
			// analytic water-filling
			want := waterFill(capacity, capVals)
			ok = true
			for i, fl := range flows {
				if math.Abs(fl.Rate()-want[i]) > 1 {
					ok = false
				}
			}
		})
		e.RunUntil(Time(2 * time.Millisecond))
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// waterFill is an independent reference implementation of single-link
// max-min fair allocation with per-flow caps.
func waterFill(capacity float64, caps []float64) []float64 {
	rates := make([]float64, len(caps))
	frozen := make([]bool, len(caps))
	remaining := capacity
	left := len(caps)
	for left > 0 {
		share := remaining / float64(left)
		any := false
		for i := range caps {
			if !frozen[i] && caps[i] <= share {
				rates[i] = caps[i]
				remaining -= caps[i]
				frozen[i] = true
				left--
				any = true
			}
		}
		if !any {
			for i := range caps {
				if !frozen[i] {
					rates[i] = share
					frozen[i] = true
					left--
				}
			}
			remaining = 0
		}
	}
	return rates
}

func TestResourceFIFO(t *testing.T) {
	e := NewEnv()
	res := NewResource(e, "r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Duration(i)) // stagger arrivals
			res.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(100)
			res.Release(1)
		})
	}
	e.Run()
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestResourceLargeRequestNotStarved(t *testing.T) {
	e := NewEnv()
	res := NewResource(e, "r", 4)
	var bigAt Time
	e.Go("hold", func(p *Proc) {
		res.Acquire(p, 4)
		p.Sleep(100)
		res.Release(4)
	})
	e.Go("big", func(p *Proc) {
		p.Sleep(1)
		res.Acquire(p, 3)
		bigAt = p.Now()
		res.Release(3)
	})
	e.Go("small", func(p *Proc) {
		p.Sleep(2)
		res.Acquire(p, 1) // arrives after big; must not jump the queue
		if bigAt == 0 {
			t.Error("small acquired before big despite FIFO")
		}
		res.Release(1)
	})
	e.Run()
	if bigAt != 100 {
		t.Fatalf("big acquired at %v, want 100", bigAt)
	}
}

func TestQueueProducerConsumer(t *testing.T) {
	e := NewEnv()
	q := NewQueue(e, "q", 2)
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			q.Put(p, i)
		}
		q.Close()
	})
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v.(int))
			p.Sleep(10)
		}
	})
	e.Run()
	if len(got) != 10 {
		t.Fatalf("consumed %d items, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestQueueBlocksWhenFull(t *testing.T) {
	e := NewEnv()
	q := NewQueue(e, "q", 1)
	var putDone Time
	e.Go("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2) // blocks until consumer takes item 1
		putDone = p.Now()
	})
	e.Go("consumer", func(p *Proc) {
		p.Sleep(500)
		if _, ok := q.Get(p); !ok {
			t.Error("queue closed unexpectedly")
		}
	})
	e.Run()
	if putDone != 500 {
		t.Fatalf("second put completed at %v, want 500", putDone)
	}
}
