//go:build simreference

package sim

// eventQueue under -tags simreference: the reference binary-heap scheduler.
// See queue_wheel.go for the default.
type eventQueue = refQueue
