package sim

import (
	"fmt"
	"strings"
	"testing"
)

// ringModel builds a canonical multi-shard model on g: `shards` shards in a
// full mesh at `lat`, each running a generator process that wakes every
// `period`, bumps a local counter and sends a payload to the next shard in
// the ring (with a per-hop extra delay), where the receiver folds
// (receive time, payload) into the shard's order-sensitive digest. Returns
// the per-shard digest accumulators.
type ringShard struct {
	sh     *Shard
	local  uint64
	digest uint64
}

func (r *ringShard) fold(v uint64) {
	r.digest = (r.digest ^ v) * 0x100000001b3
}

func buildRing(g *Group, shards int, lat, period Duration, sends int) []*ringShard {
	rs := make([]*ringShard, shards)
	for i := 0; i < shards; i++ {
		rs[i] = &ringShard{sh: g.AddShard(fmt.Sprintf("shard%d", i), NewEnv())}
	}
	g.LinkAll(lat)
	for i, r := range rs {
		i, r := i, r
		next := rs[(i+1)%shards]
		r.sh.Env().Go("gen", func(p *Proc) {
			for k := 0; k < sends; k++ {
				p.Sleep(period + Duration(i)*3)
				r.local++
				payload := uint64(i)<<32 | uint64(k)
				r.sh.Send(next.sh, Duration(k%5), func() {
					next.fold(uint64(next.sh.Env().Now()) ^ payload)
				})
			}
		})
	}
	return rs
}

func ringDigest(rs []*ringShard) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "%s local=%d digest=%016x now=%d;", r.sh.Name(), r.local, r.digest, r.sh.Env().Now())
	}
	return b.String()
}

// runRing executes the canonical model at the given executor cap and
// returns its digest.
func runRing(t *testing.T, parallel, shards int, until Time) string {
	t.Helper()
	g := NewGroup(parallel)
	rs := buildRing(g, shards, 200, 70, 40)
	g.Run(until)
	g.Shutdown()
	return ringDigest(rs)
}

// TestGroupLockstep pins the tentpole property: the same model produces the
// byte-identical digest whether its shards are advanced by one executor
// (the sequential oracle), two, four, or more executors than shards.
func TestGroupLockstep(t *testing.T) {
	want := runRing(t, 1, 4, 20_000)
	if !strings.Contains(want, "digest=") || strings.Contains(want, "digest=0000000000000000") {
		t.Fatalf("model did not exercise cross-shard messages: %s", want)
	}
	for _, parallel := range []int{2, 4, 16} {
		if got := runRing(t, parallel, 4, 20_000); got != want {
			t.Errorf("parallel=%d diverged from sequential oracle:\n got %s\nwant %s", parallel, got, want)
		}
	}
}

// TestGroupMessageTiming checks that a message runs on the destination at
// exactly send-time + link latency + extra, and that the destination clock
// has reached (not passed) that instant.
func TestGroupMessageTiming(t *testing.T) {
	g := NewGroup(2)
	a := g.AddShard("a", NewEnv())
	b := g.AddShard("b", NewEnv())
	g.Link(a, b, 150)
	var got Time
	a.Env().Go("sender", func(p *Proc) {
		p.Sleep(40)
		a.Send(b, 25, func() { got = b.Env().Now() })
	})
	g.Run(1000)
	g.Shutdown()
	if want := Time(40 + 150 + 25); got != want {
		t.Fatalf("message ran at %d, want %d", got, want)
	}
}

// TestGroupIdleSkip runs a sparse model whose events are separated by
// thousands of lookaheads: the run must still complete promptly (the
// coordinator jumps empty windows) and deliver messages at exact times.
func TestGroupIdleSkip(t *testing.T) {
	g := NewGroup(2)
	a := g.AddShard("a", NewEnv())
	b := g.AddShard("b", NewEnv())
	g.Link(a, b, 10)
	g.Link(b, a, 10)
	var times []Time
	a.Env().Go("sparse", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1_000_000) // 100k lookaheads of silence
			a.Send(b, 0, func() { times = append(times, b.Env().Now()) })
		}
	})
	g.Run(10_000_000)
	g.Shutdown()
	if len(times) != 5 {
		t.Fatalf("delivered %d messages, want 5", len(times))
	}
	for i, at := range times {
		if want := Time(1_000_000*(i+1) + 10); at != want {
			t.Errorf("message %d at %d, want %d", i, at, want)
		}
	}
}

// TestGroupSingleShard: a one-shard group behaves exactly like RunUntil on
// a plain Env.
func TestGroupSingleShard(t *testing.T) {
	g := NewGroup(4)
	s := g.AddShard("solo", NewEnv())
	var n int
	s.Env().Go("p", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(7)
			n++
		}
	})
	if end := g.Run(1000); end != 1000 {
		t.Fatalf("group clock %d, want 1000", end)
	}
	if s.Env().Now() != 1000 || n != 10 {
		t.Fatalf("shard now=%d n=%d, want 1000, 10", s.Env().Now(), n)
	}
	g.Shutdown()
}

// TestGroupResume: Run may be called repeatedly with increasing deadlines
// and the barrier clock picks up where it stopped.
func TestGroupResume(t *testing.T) {
	g := NewGroup(2)
	a := g.AddShard("a", NewEnv())
	b := g.AddShard("b", NewEnv())
	g.Link(a, b, 50)
	var hits []Time
	a.Env().Go("p", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(100)
			a.Send(b, 0, func() { hits = append(hits, b.Env().Now()) })
		}
	})
	g.Run(120)
	if g.Now() != 120 {
		t.Fatalf("clock %d after first run, want 120", g.Now())
	}
	g.Run(1000)
	g.Shutdown()
	if len(hits) != 4 {
		t.Fatalf("got %d deliveries, want 4", len(hits))
	}
	for i, at := range hits {
		if want := Time(100*(i+1) + 50); at != want {
			t.Errorf("delivery %d at %d, want %d", i, at, want)
		}
	}
}

// TestGroupPanicPropagation: a model-callback panic inside a parallel
// window surfaces at the Run caller (process-function panics crash on their
// worker goroutine, exactly as in single-Env runs).
func TestGroupPanicPropagation(t *testing.T) {
	g := NewGroup(4)
	shards := make([]*Shard, 4)
	for i := range shards {
		shards[i] = g.AddShard(fmt.Sprintf("s%d", i), NewEnv())
	}
	g.LinkAll(100)
	shards[2].Env().Schedule(30, func() { panic("model bug") })
	defer func() {
		if r := recover(); r != "model bug" {
			t.Fatalf("recovered %v, want model bug", r)
		}
		g.Shutdown()
	}()
	g.Run(1000)
	t.Fatal("run returned despite panicking model")
}

// TestGroupValidation covers the constructor/topology guard rails.
func TestGroupValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	g := NewGroup(1)
	a := g.AddShard("a", NewEnv())
	b := g.AddShard("b", NewEnv())
	mustPanic("self link", func() { g.Link(a, a, 10) })
	mustPanic("zero latency", func() { g.Link(a, b, 0) })
	g.Run(10)
	mustPanic("late AddShard", func() { g.AddShard("c", NewEnv()) })
	mustPanic("late Link", func() { g.Link(a, b, 5) })
	mustPanic("rewind", func() { g.Run(5) })
	g.Shutdown()

	g2 := NewGroup(1)
	x := g2.AddShard("x", NewEnv())
	y := g2.AddShard("y", NewEnv())
	g2.Link(x, y, 10)
	x.Env().Go("p", func(p *Proc) {
		p.Sleep(1)
		mustPanic("send without link", func() { y.Send(x, 0, func() {}) })
		mustPanic("negative extra", func() { x.Send(y, -1, func() {}) })
	})
	g2.Run(100)
	g2.Shutdown()
}

// TestGroupUnlinkedShards: with no links there is no coupling and the
// group advances every shard to the deadline in one window.
func TestGroupUnlinkedShards(t *testing.T) {
	g := NewGroup(3)
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		s := g.AddShard(fmt.Sprintf("iso%d", i), NewEnv())
		s.Env().Go("p", func(p *Proc) {
			for j := 0; j < 50; j++ {
				p.Sleep(13)
				counts[i]++
			}
		})
	}
	g.Run(10_000)
	g.Shutdown()
	for i, n := range counts {
		if n != 50 {
			t.Errorf("shard %d ran %d ticks, want 50", i, n)
		}
	}
}

// TestNextEventAt exercises the calendar peek on both wheel regions: the
// near-future buckets, tombstoned entries and the far-future overflow heap.
func TestNextEventAt(t *testing.T) {
	e := NewEnv()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("empty calendar reported an event")
	}
	h1 := e.Schedule(100, func() {})
	e.Schedule(50_000_000, func() {}) // far future: overflow heap
	if at, ok := e.NextEventAt(); !ok || at != 100 {
		t.Fatalf("peek = %v,%v want 100,true", at, ok)
	}
	h1.Cancel()
	if at, ok := e.NextEventAt(); !ok || at != 50_000_000 {
		t.Fatalf("peek after cancel = %v,%v want 50000000,true", at, ok)
	}
	e.Schedule(70, func() {})
	if at, ok := e.NextEventAt(); !ok || at != 70 {
		t.Fatalf("peek after reschedule = %v,%v want 70,true", at, ok)
	}
	e.Run()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("drained calendar reported an event")
	}
}
