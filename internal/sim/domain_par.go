//go:build !simsequential

package sim

// forceSequentialGroups selects the domain execution mode at build time. The
// default build advances shards on parallel executors; `go build -tags
// simsequential` forces every Group through the strictly sequential in-line
// path — the differential oracle build, mirroring -tags simreference for the
// event queue.
const forceSequentialGroups = false
