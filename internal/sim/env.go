package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
)

// Env is a simulation environment: the virtual clock, the event calendar and
// the process scheduler. An Env is not safe for use from multiple OS-level
// goroutines except through the process primitives it hands out; the
// scheduler itself guarantees that only one simulated process runs at a time.
//
// The scheduler has no dedicated goroutine: whichever goroutine holds the
// baton (initially the Run caller) drains the calendar inline, and resuming
// a process hands the baton directly to that process's goroutine with a
// single channel operation. When an event resumes the very process that is
// draining the calendar — the Sleep-loop pattern — no channel operation or
// goroutine switch happens at all.
type Env struct {
	now Time
	seq uint64
	q   eventQueue

	// deadline bounds dispatch: Run uses the maximum Time, RunUntil the
	// caller's deadline. Events beyond it stay queued.
	deadline Time
	running  bool

	// mainResume is where Run/RunUntil wait while a process holds the
	// baton; whichever goroutine drains the calendar hands it back.
	mainResume chan struct{}

	// fnPanic carries a model-callback panic from a worker goroutine to the
	// main goroutine (see dispatch), so callback panics always surface at the
	// Run caller no matter which goroutine happened to drain the event.
	fnPanic any

	procs   int // live (started, not yet finished) processes
	blocked []blockedProc

	// freeWorkers are parked goroutines whose process has finished,
	// available for reuse by the next Go. spawnedWorkers counts actual
	// goroutine launches (recycling diagnostics).
	freeWorkers    []*worker
	spawnedWorkers int

	// freeProcs is the free list behind GoPooled: finished pooled Procs
	// (with their Done events) recycled for the next spawn. Like the event
	// pool, a plain slice — single-threaded by construction, deterministic
	// reuse order.
	freeProcs []*Proc

	// Interned flow tags (see tag.go). tagNames[0] is the untagged "".
	tagIndex map[string]FlowTag
	tagNames []string
}

// blockedProc records one process parked on a non-timer wait, for the
// deadlock report. A slice (with the index mirrored in the Proc) replaces
// the seed's map so the report order never depends on map iteration and the
// park hot path never hashes.
type blockedProc struct {
	p   *Proc
	why string
}

// NewEnv returns an environment with the clock at zero.
func NewEnv() *Env {
	return &Env{mainResume: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Pending returns the number of live events on the calendar — cancelled
// events are dropped from the count immediately and never resurface.
// Periodic observers (the fault-injection invariant sampler) use it to
// re-arm themselves only while the simulation still has work, so Run can
// terminate.
func (e *Env) Pending() int { return e.q.live() }

// scheduleEvent files a pooled event on the calendar. All scheduling —
// public Schedule/After, process timers, process starts — funnels through
// here, so at >= now is a global invariant and the calendar's (at, seq)
// order is total.
func (e *Env) scheduleEvent(at Time, kind uint8, fn func(), p *Proc) *timedEvent {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	ev := e.q.alloc()
	ev.at = at
	ev.seq = e.seq
	ev.kind = kind
	ev.fn = fn
	ev.proc = p
	e.q.insert(ev)
	return ev
}

// Schedule runs fn at time `at`. It returns a handle that can cancel the
// event before it fires. Scheduling in the past panics: that is always a
// model bug.
func (e *Env) Schedule(at Time, fn func()) *EventHandle {
	ev := e.scheduleEvent(at, evFn, fn, nil)
	return &EventHandle{env: e, ev: ev, gen: ev.gen}
}

// After runs fn after duration d.
func (e *Env) After(d Duration, fn func()) *EventHandle {
	return e.Schedule(e.now.Add(d), fn)
}

// EventHandle allows cancelling a scheduled event.
type EventHandle struct {
	env *Env
	ev  *timedEvent
	// gen snapshots the event's generation at schedule time. Events are
	// pooled and recycled after they fire or cancel; a mismatch means this
	// handle's event is gone and the pooled object now belongs to a later
	// Schedule, so Cancel must not touch it.
	gen uint64
}

// Cancel removes the event from the calendar so it neither fires nor counts
// toward Pending. Cancelling twice, cancelling after the event has fired,
// and cancelling through a handle whose (pooled, recycled) event now belongs
// to a later Schedule are all explicit no-ops, and calling Cancel on a nil
// handle is allowed — callers that keep an optional timer (e.g. the fabric's
// completion timer before the first flow starts) may cancel unconditionally.
func (h *EventHandle) Cancel() {
	if h == nil || h.ev == nil || h.ev.gen != h.gen {
		return
	}
	h.env.q.cancel(h.ev)
	h.ev = nil
}

// timerRef is the allocation-free internal analog of EventHandle, used by
// kernel re-armed timers (the fabric completion timer re-arms on every
// solve). The zero value refers to nothing; cancelling it is a no-op.
type timerRef struct {
	ev  *timedEvent
	gen uint64
}

// scheduleFn files fn like Schedule but returns a by-value ref instead of a
// heap-allocated handle.
func (e *Env) scheduleFn(at Time, fn func()) timerRef {
	ev := e.scheduleEvent(at, evFn, fn, nil)
	return timerRef{ev: ev, gen: ev.gen}
}

func (e *Env) cancelTimer(t timerRef) {
	if t.ev != nil && t.ev.gen == t.gen {
		e.q.cancel(t.ev)
	}
}

// Timer is a by-value, allocation-free cancellable timer: the exported
// analog of the kernel's internal timerRef, for model code that arms and
// cancels a timer per operation (the resilience layer's hedge and deadline
// timers). The zero value refers to nothing; Cancel on it is a no-op.
type Timer struct {
	env *Env
	ev  *timedEvent
	// gen snapshots the pooled event's generation at schedule time, exactly
	// like EventHandle: once the event fires or cancels, the pooled object
	// may belong to a later schedule and a stale Cancel must not touch it.
	gen uint64
}

// AfterFunc schedules fn to run after duration d and returns a by-value
// Timer that can cancel it. Unlike After, neither the schedule nor the
// cancel allocates; callers that re-arm timers on a hot path should bind fn
// once and reuse it.
func (e *Env) AfterFunc(d Duration, fn func()) Timer {
	ev := e.scheduleEvent(e.now.Add(d), evFn, fn, nil)
	return Timer{env: e, ev: ev, gen: ev.gen}
}

// Cancel removes the timer's event from the calendar. Cancelling the zero
// Timer, cancelling twice, or cancelling after the event fired (or after
// the pooled event was recycled by a later schedule) are all no-ops.
func (t Timer) Cancel() {
	if t.ev != nil && t.ev.gen == t.gen {
		t.env.q.cancel(t.ev)
	}
}

// Go starts a new simulated process running fn. The process begins executing
// at the current virtual time, after the caller parks or (when called from
// outside the simulation) when Run is invoked. The goroutine that carries it
// is drawn from the environment's pool of parked workers when one is free;
// spawning is the exception, not the rule, on churny workloads.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, fn: fn, blockedIdx: -1, Done: NewEvent(e)}
	e.procs++
	e.scheduleEvent(e.now, evStart, nil, p)
	return p
}

// GoPooled starts a simulated process like Go, but recycles the Proc record
// (and its Done event) through a free list once the process function
// returns. It deliberately returns nothing: the caller must not retain the
// Proc or wait on its Done — both belong to the pool the moment fn returns
// and will be rebound to a later spawn. Request-scoped fan-out (the traffic
// engine's request coordinators, the resilience layer's attempts) is the
// intended user: fire-and-forget processes spawned millions of times per
// run, where the per-spawn Proc+Event allocation of Go dominates the heap
// profile.
//
// Scheduling is byte-identical to Go — the same evStart event, the same
// sequence-number consumption — so switching a spawn site between Go and
// GoPooled never perturbs the deterministic schedule.
func (e *Env) GoPooled(name string, fn func(p *Proc)) {
	var p *Proc
	if n := len(e.freeProcs); n > 0 {
		p = e.freeProcs[n-1]
		e.freeProcs[n-1] = nil
		e.freeProcs = e.freeProcs[:n-1]
		p.name = name
		p.fn = fn
		p.finished = false
		p.Done.fired = false
	} else {
		p = &Proc{env: e, name: name, fn: fn, blockedIdx: -1, pooled: true, Done: NewEvent(e)}
	}
	e.procs++
	e.scheduleEvent(e.now, evStart, nil, p)
}

// recycleProc returns a finished pooled Proc to the free list. The stale
// w.proc pointer its last worker may still hold is harmless: a parked
// worker's proc field is only read after bindWorker overwrites it, and a
// dispatching worker's own process cannot have been recycled and re-parked
// within that same dispatch (restarting it rebinds and ends the dispatch).
func (e *Env) recycleProc(p *Proc) {
	p.w = nil
	p.flowTag = 0
	p.abort = nil
	e.freeProcs = append(e.freeProcs, p)
}

// dispatch outcomes.
const (
	dispHandoff = iota // baton handed to another goroutine; caller must wait
	dispSelf           // the caller's own process was resumed (or re-assigned)
	dispDone           // calendar drained (or deadline reached); main only
)

// dispatch is the scheduler's inner loop. It runs calendar events on the
// calling goroutine until one transfers control: resuming another process
// hands the baton directly to its goroutine (one channel send — the classic
// bounce through a central scheduler goroutine is gone); resuming the
// calling process returns dispSelf with no channel traffic at all. w is the
// calling worker, nil when main dispatches.
//
// Plain fn events run inline on whichever goroutine drains them. That is
// what lets steady request traffic chain on a single worker with no channel
// operations at all: a worker that finishes one request pops the next
// arrival tick, admits inline, pops the spawn it just scheduled and rebinds
// itself (dispSelf) — where stashing fn events for the main goroutine would
// cost two baton hand-offs per callback. The price is that deep model
// callbacks (the fabric solver above all) can grow worker stacks to the
// model's high-water mark, bounded by the worker pool cap; panics from
// model callbacks are relayed through fnPanic so they still surface at the
// Run caller, as they did in the seed.
func (e *Env) dispatch(w *worker) int {
	for {
		ev := e.q.pop(e.deadline)
		if ev == nil {
			if w == nil {
				return dispDone
			}
			e.mainResume <- struct{}{}
			return dispHandoff
		}
		e.now = ev.at
		switch ev.kind {
		case evFn:
			fn := ev.fn
			e.q.release(ev)
			if w == nil {
				fn()
			} else if !e.runFnOnWorker(fn) {
				// The callback panicked: relay the value home, where runLoop
				// re-panics at the Run caller. The simulation is dead; this
				// goroutine parks forever on its resume channel (exactly the
				// fate of every other worker parked mid-wait at a panic).
				e.mainResume <- struct{}{}
				return dispHandoff
			}
		case evResume:
			p := ev.proc
			e.q.release(ev)
			if w != nil && p == w.proc {
				return dispSelf
			}
			p.w.resume <- struct{}{}
			return dispHandoff
		default: // evStart
			p := ev.proc
			e.q.release(ev)
			nw := e.takeWorker()
			if nw == nil {
				nw = &worker{resume: make(chan struct{})}
				e.spawnedWorkers++
				bindWorker(nw, p)
				go e.workerMain(nw)
				return dispHandoff
			}
			bindWorker(nw, p)
			if nw == w {
				// The dispatching worker just finished its process and
				// pooled itself; workerMain picks the new job up in its
				// loop instead of this goroutine sending to itself.
				return dispSelf
			}
			nw.resume <- struct{}{}
			return dispHandoff
		}
	}
}

// runFnOnWorker executes a model callback on a worker goroutine, converting
// a panic into a false return with the value parked in fnPanic. Keeping the
// recover in its own frame keeps dispatch's hot loop free of deferred calls.
func (e *Env) runFnOnWorker(fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.fnPanic = r
		}
	}()
	fn()
	return true
}

// maxFreeWorkers bounds the idle-goroutine pool. Recycling wins on churny
// workloads where processes start and finish all run long, but a fan-in —
// hundreds of processes finishing with no new starts — would otherwise park
// hundreds of goroutines whose stacks stay live until the run ends, raising
// GC pressure for no benefit. Beyond the cap a finishing worker hands the
// baton off and exits immediately, exactly like the seed's one-goroutine-
// per-process scheduler.
const maxFreeWorkers = 64

// workerMain is the body of a pooled process goroutine. Entered holding the
// baton with a job bound; after the process function returns, the worker
// pools itself and keeps draining the calendar, so a process finish costs no
// goroutine switch either.
func (e *Env) workerMain(w *worker) {
	for {
		p := w.proc
		p.fn(p)
		p.fn = nil
		p.finished = true
		e.procs--
		p.Done.Fire()
		if p.pooled {
			e.recycleProc(p)
		}
		if len(e.freeWorkers) >= maxFreeWorkers {
			// Pool full: hand the baton off and retire. dispatch cannot pick
			// this worker again — its process is finished and it is not in
			// the free pool — so dispSelf is impossible here.
			w.proc = nil
			e.dispatch(w)
			return
		}
		e.freeWorkers = append(e.freeWorkers, w)
		if e.dispatch(w) != dispSelf {
			<-w.resume
			if w.proc == nil {
				// Dismissed by stopWorkers; ack and unwind.
				e.mainResume <- struct{}{}
				return
			}
		}
	}
}

func (e *Env) takeWorker() *worker {
	n := len(e.freeWorkers)
	if n == 0 {
		return nil
	}
	w := e.freeWorkers[n-1]
	e.freeWorkers = e.freeWorkers[:n-1]
	return w
}

// stopWorkers dismisses the idle pooled goroutines and waits for them to
// unwind. Called when a run returns: recycling pays off within a run (where
// process churn lives), but an Env that has quiesced would otherwise pin its
// high-water goroutine count forever — benchmarks and sweeps build thousands
// of short-lived Envs. The join half matters as much as the dismissal: a
// merely-runnable zombie still references the Env from its stack, and a
// sweep that drops the Env and builds the next one would accumulate whole
// dead simulations in the live heap until the scheduler got around to
// running the zombies off.
func (e *Env) stopWorkers() {
	for _, w := range e.freeWorkers {
		w.proc = nil
		w.resume <- struct{}{}
	}
	for range e.freeWorkers {
		<-e.mainResume // ack: the worker is past its last reference to e
	}
	e.freeWorkers = e.freeWorkers[:0]
	runtime.Gosched() // let the acked workers run their final return
}

// runLoop drains the calendar up to e.deadline, lending the baton out to
// process goroutines and reclaiming it when they quiesce.
func (e *Env) runLoop() {
	e.running = true
	defer func() { e.running = false }()
	for {
		if e.dispatch(nil) == dispDone {
			return
		}
		<-e.mainResume
		if e.fnPanic != nil {
			r := e.fnPanic
			e.fnPanic = nil
			panic(r)
		}
	}
}

// Run executes events until the calendar is empty, then returns the final
// virtual time. If the calendar drains while processes are still blocked on
// non-timer waits (a lost signal, a full queue nobody drains, ...) Run
// panics with a deadlock report naming the stuck processes in name order: in
// a correct model every blocked process is eventually woken by a scheduled
// event.
func (e *Env) Run() Time {
	e.deadline = Time(math.MaxInt64)
	e.runLoop()
	if len(e.blocked) > 0 {
		panic(fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked with no pending events: %v",
			e.now, len(e.blocked), e.blockedReport()))
	}
	e.stopWorkers()
	return e.now
}

// blockedReport lists the parked processes as "name (reason)", sorted by
// process name (then reason) — never in map or park order, so two runs of
// the same deadlocking model print the same report.
func (e *Env) blockedReport() []string {
	names := make([]string, 0, len(e.blocked))
	for _, b := range e.blocked {
		names = append(names, fmt.Sprintf("%s (%s)", b.p.name, b.why))
	}
	sort.Strings(names)
	return names
}

// RunUntil executes events with timestamps <= deadline and advances the
// clock to exactly the deadline. Events beyond the deadline stay queued.
func (e *Env) RunUntil(deadline Time) Time {
	e.deadline = deadline
	e.runLoop()
	if e.now < deadline {
		e.now = deadline
	}
	e.stopWorkers()
	return e.now
}

// StepUntil is RunUntil for callers that will advance the clock again: the
// pooled worker goroutines stay parked for the next step instead of being
// dismissed and respawned. A domain executor stepping its shard through
// thousands of conservative-synchronization windows calls this once per
// window; pay stopWorkers only once, via Shutdown, when the whole run ends.
func (e *Env) StepUntil(deadline Time) Time {
	e.deadline = deadline
	e.runLoop()
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Shutdown dismisses the environment's idle worker pool. Required after a
// StepUntil sequence (Run and RunUntil shut the pool down themselves);
// calling it on an already-quiesced Env is a no-op.
func (e *Env) Shutdown() { e.stopWorkers() }

// NextEventAt returns the timestamp of the earliest live calendar event,
// reporting false when the calendar is empty. The domain coordinator uses it
// to skip conservative-synchronization windows in which no shard has any
// work — without it, a sparse simulation would pay one barrier per lookahead
// of virtual time no matter how empty the calendar is.
func (e *Env) NextEventAt() (Time, bool) { return e.q.nextAt() }

func (e *Env) pushBlocked(p *Proc, why string) {
	p.blockedIdx = len(e.blocked)
	e.blocked = append(e.blocked, blockedProc{p: p, why: why})
}

func (e *Env) popBlocked(p *Proc) {
	i := p.blockedIdx
	last := len(e.blocked) - 1
	if i != last {
		e.blocked[i] = e.blocked[last]
		e.blocked[i].p.blockedIdx = i
	}
	e.blocked[last] = blockedProc{}
	e.blocked = e.blocked[:last]
	p.blockedIdx = -1
}
