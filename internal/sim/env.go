package sim

import (
	"fmt"
	"sort"
)

// Env is a simulation environment: the virtual clock, the event calendar and
// the process scheduler. An Env is not safe for use from multiple OS-level
// goroutines except through the process primitives it hands out; the
// scheduler itself guarantees that only one simulated process runs at a time.
type Env struct {
	now    Time
	seq    uint64
	events eventHeap

	// baton is the scheduler hand-off channel: a running process sends on
	// baton when it parks or terminates, returning control to Run.
	baton chan struct{}

	running bool
	procs   int // live (started, not yet finished) processes
	blocked map[*Proc]string
}

// NewEnv returns an environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		baton:   make(chan struct{}),
		blocked: map[*Proc]string{},
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Pending returns the number of live events on the calendar — cancelled
// events are removed immediately and never counted. Periodic observers
// (the fault-injection invariant sampler) use it to re-arm themselves only
// while the simulation still has work, so Run can terminate.
func (e *Env) Pending() int { return e.events.len() }

// Schedule runs fn at time `at`. It returns a handle that can cancel the
// event before it fires. Scheduling in the past panics: that is always a
// model bug.
func (e *Env) Schedule(at Time, fn func()) *EventHandle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	ev := &timedEvent{at: at, seq: e.seq, fn: fn}
	e.events.push(ev)
	return &EventHandle{env: e, ev: ev}
}

// After runs fn after duration d.
func (e *Env) After(d Duration, fn func()) *EventHandle {
	return e.Schedule(e.now.Add(d), fn)
}

// EventHandle allows cancelling a scheduled event.
type EventHandle struct {
	env *Env
	ev  *timedEvent
}

// Cancel removes the event from the calendar so it neither fires nor counts
// toward Pending. Cancelling an already-fired or already-cancelled event is
// a no-op, and calling Cancel on a nil handle is explicitly allowed —
// callers that keep an optional timer (e.g. the fabric's completion timer
// before the first flow starts) may cancel it unconditionally.
func (h *EventHandle) Cancel() {
	if h == nil || h.ev == nil || h.ev.idx < 0 {
		return
	}
	h.env.events.remove(h.ev.idx)
}

// Go starts a new simulated process running fn. The process begins executing
// at the current virtual time, after the caller parks or (when called from
// outside the simulation) when Run is invoked.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		env:    e,
		name:   name,
		resume: make(chan struct{}),
		Done:   NewEvent(e),
	}
	e.procs++
	e.Schedule(e.now, func() {
		go func() {
			fn(p)
			p.finished = true
			e.procs--
			p.Done.Fire()
			e.baton <- struct{}{}
		}()
		<-e.baton // wait until the new process parks or finishes
	})
	return p
}

// Run executes events until the calendar is empty, then returns the final
// virtual time. If the calendar drains while processes are still blocked on
// non-timer waits (a lost signal, a full queue nobody drains, ...) Run
// panics with a deadlock report naming the stuck processes: in a correct
// model every blocked process is eventually woken by a scheduled event.
func (e *Env) Run() Time {
	e.running = true
	defer func() { e.running = false }()
	for e.events.len() > 0 {
		ev := e.events.pop()
		e.now = ev.at
		ev.fn()
	}
	if len(e.blocked) > 0 {
		names := make([]string, 0, len(e.blocked))
		for p, why := range e.blocked {
			names = append(names, fmt.Sprintf("%s (%s)", p.name, why))
		}
		sort.Strings(names)
		panic(fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked with no pending events: %v",
			e.now, len(names), names))
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline and advances the
// clock to exactly the deadline. Events beyond the deadline stay queued.
func (e *Env) RunUntil(deadline Time) Time {
	e.running = true
	defer func() { e.running = false }()
	for e.events.len() > 0 && e.events.peek().at <= deadline {
		ev := e.events.pop()
		e.now = ev.at
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// resumeProc wakes a parked process and waits until it parks again or
// terminates. This is the scheduler half of the baton protocol; Proc.park is
// the process half.
func (e *Env) resumeProc(p *Proc) {
	p.resume <- struct{}{}
	<-e.baton
}
