package sim

// Barrier is a reusable synchronization barrier for a fixed party count,
// like MPI_Barrier: the n-th arrival releases everyone and re-arms the
// barrier for the next round. DLIO uses it for epoch boundaries; IOR-style
// phase barriers use WaitGroup instead (parties that terminate).
type Barrier struct {
	env     *Env
	parties int
	arrived int
	round   *Event
}

// NewBarrier returns a barrier for the given party count (> 0).
func NewBarrier(env *Env, name string, parties int) *Barrier {
	if parties <= 0 {
		panic("sim: barrier needs at least one party: " + name)
	}
	return &Barrier{env: env, parties: parties, round: NewEvent(env)}
}

// Parties returns the configured party count.
func (b *Barrier) Parties() int { return b.parties }

// Wait blocks the calling process until all parties have arrived, then
// releases the round together.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		round := b.round
		b.round = NewEvent(b.env) // re-arm before waking anyone
		round.Fire()
		return
	}
	round := b.round
	round.Wait(p)
}
