package sim

import (
	"testing"
	"time"
)

// The kernel pools procs, flows, events and timers behind generation
// counters. These tests pin the lifecycle invariants the pools rely on:
// stale handles must be no-ops, double recycling must be loud, and reuse
// must be indistinguishable from fresh allocation.

func TestEventResetWithWaitersPanics(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e)
	e.Go("waiter", func(p *Proc) { ev.Wait(p) })
	e.Go("resetter", func(p *Proc) {
		p.Sleep(10) // let the waiter park first
		defer func() {
			if recover() == nil {
				t.Error("Reset with a parked waiter did not panic")
			}
			ev.Fire() // release the waiter so Run can finish
		}()
		ev.Reset()
	})
	e.Run()
}

func TestTimerCancelAfterFireIsNoop(t *testing.T) {
	e := NewEnv()
	fired := 0
	tm := e.AfterFunc(10, func() { fired++ })
	// Recycle the timer's pooled event into an unrelated schedule, then
	// cancel through the stale handle: the generation check must protect
	// the new owner.
	e.Schedule(20, func() {})
	e.Run()
	tm.Cancel()
	tm.Cancel() // double cancel, equally dead
	var zero Timer
	zero.Cancel() // zero value is a no-op too
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1", fired)
	}
}

func TestTimerCancelBeforeFire(t *testing.T) {
	e := NewEnv()
	fired := false
	var tm Timer
	tm = e.AfterFunc(100, func() { fired = true })
	e.Schedule(50, func() { tm.Cancel() })
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

// TestGoPooledRecyclesRecords pins the pooling behavior itself: a long
// sequential chain of GoPooled processes must reuse one Proc record (and
// its Done event) rather than allocating per spawn, and the recycled
// record must behave exactly like a fresh one.
func TestGoPooledRecyclesRecords(t *testing.T) {
	e := NewEnv()
	const n = 64
	ran := 0
	var spawn func()
	spawn = func() {
		e.GoPooled("worker", func(p *Proc) {
			ran++
			p.Sleep(1)
			if ran < n {
				// Spawn the successor from a callback that runs after this
				// process has finished and been recycled, so the chain
				// exercises genuine record reuse.
				e.After(2, spawn)
			}
		})
	}
	spawn()
	e.Run()
	if ran != n {
		t.Fatalf("ran %d pooled procs, want %d", ran, n)
	}
	if got := len(e.freeProcs); got != 1 {
		t.Fatalf("free list holds %d procs after a sequential chain, want 1", got)
	}
}

// TestPooledFlowStaleAbortIsNoop drives a transfer to completion under an
// abort token, recycles the flow record into a second transfer, and only
// then fires the token: the generation snapshot in the abort's flow list
// must keep the stale hook away from the recycled flow.
func TestPooledFlowStaleAbortIsNoop(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	ab := NewAbort()
	var first, second Time
	e.Go("first", func(p *Proc) {
		p.SetAbort(ab)
		fab.Transfer(p, []*Pipe{link}, 1e6, 0)
		first = p.Now()
	})
	e.Go("second", func(p *Proc) {
		p.Sleep(Time(5 * time.Millisecond).Sub(0)) // after the first completes
		fab.Transfer(p, []*Pipe{link}, 1e6, 0)     // reuses the pooled flow record
		done := NewEvent(e)
		e.After(1, func() {
			ab.Fire() // stale: its flow ref points at a recycled record
			done.Fire()
		})
		done.Wait(p)
		fab.Transfer(p, []*Pipe{link}, 1e6, 0) // pool still healthy
		second = p.Now()
	})
	e.Run()
	if first != Time(time.Millisecond) {
		t.Fatalf("first transfer ended at %v, want 1ms", first)
	}
	// 5ms start + 1ms second transfer + 1ns abort callback + 1ms third.
	want := Time(5*time.Millisecond) + Time(2*time.Millisecond) + 1
	if second != want {
		t.Fatalf("second transfer chain ended at %v, want %v", second, want)
	}
}

// TestFlowClassResurrection retires a tagged flow class (its last flow
// completes), then starts an identical transfer: the class must come back
// through the dead-class cache with zeroed rate state, and per-tag byte
// attribution must keep accumulating across the retirement.
func TestFlowClassResurrection(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	tag := e.InternTag("tenant-a")
	xfer := func(p *Proc) {
		p.SetFlowTagID(tag)
		fab.Transfer(p, []*Pipe{link}, 1e6, 0)
	}
	e.Go("one", func(p *Proc) {
		xfer(p)                // class created, then retired at completion
		p.Sleep(Duration(1e6)) // idle gap: class stays dead
		xfer(p)                // resurrected from the dead-class cache
	})
	e.Run()
	if got := fab.TagBytes("tenant-a"); got != 2e6 {
		t.Fatalf("TagBytes = %v after resurrection, want 2e6", got)
	}
}

// TestDeadClassCacheEviction churns through more distinct retired classes
// than the cache keeps, forcing FIFO eviction, and then reuses the oldest
// signature again: eviction must only drop the index entry, never corrupt
// the accounting of resurrected or fresh classes.
func TestDeadClassCacheEviction(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	tag := e.InternTag("churn")
	e.Go("churn", func(p *Proc) {
		p.SetFlowTagID(tag)
		// Each distinct rateCap is a distinct class signature; finishing
		// each transfer retires its class.
		for i := 1; i <= 300; i++ {
			fab.Transfer(p, []*Pipe{link}, 1e3, float64(i)*1e6)
		}
		// Back to the first signature: long evicted from the cache, so this
		// re-registers from scratch.
		fab.Transfer(p, []*Pipe{link}, 1e3, 1e6)
	})
	e.Run()
	// Completion instants quantize to nanoseconds, so delivered-byte
	// integrals overshoot the nominal total by a hair per flow.
	if got := fab.TagBytes("churn"); !approx(got, 301e3, 1e-3) {
		t.Fatalf("TagBytes = %v after eviction churn, want ~301e3", got)
	}
}

// TestWorkerPanicSurfacesAtRun pins the panic-relay contract: a model
// callback that panics while a pooled worker goroutine is draining the
// calendar must still surface at the Run caller, exactly as when the main
// goroutine runs it.
func TestWorkerPanicSurfacesAtRun(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	e := NewEnv()
	// The process parks mid-calendar, so its worker goroutine is the one
	// that pops and runs the panicking callback.
	e.Go("parker", func(p *Proc) { p.Sleep(100) })
	e.Schedule(50, func() { panic("boom") })
	e.Run()
}
