package sim

import (
	"fmt"
	"testing"
)

// buildSolverBench constructs a fabric with `classes` distinct flow
// signatures (one per-class NIC pipe feeding a shared backbone) and starts
// `flows` long-lived transfers spread round-robin across the classes.
// Flow sizes are staggered so completions arrive one at a time: every
// completion is a membership change that re-runs the solver, which makes
// the benchmark measure the per-churn solve cost the experiments pay.
func buildSolverBench(classes, flows int) *Env {
	e := NewEnv()
	fab := NewFabric(e)
	backbone := fab.NewPipe("backbone", 1e12, 0)
	nics := make([]*Pipe, classes)
	for i := range nics {
		nics[i] = fab.NewPipe(fmt.Sprintf("nic%d", i), 1e11, 0)
	}
	for i := 0; i < flows; i++ {
		nic := nics[i%classes]
		bytes := float64(i+1) * 1e6
		i := i
		e.Go(fmt.Sprintf("f%d", i), func(p *Proc) {
			fab.Transfer(p, []*Pipe{nic, backbone}, bytes, 0)
		})
	}
	return e
}

// BenchmarkFabricSolver measures end-to-end simulation cost of churn-heavy
// fair-share solving across class-count × flow-count combinations. The
// 1-class columns model Fig. 2a's identical IOR rank streams; 64 classes
// approximates a heterogeneous DLIO mix.
func BenchmarkFabricSolver(b *testing.B) {
	for _, classes := range []int{1, 8, 64} {
		for _, flows := range []int{100, 1000, 4000, 10000} {
			if flows < classes {
				continue
			}
			b.Run(fmt.Sprintf("classes=%d/flows=%d", classes, flows), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					e := buildSolverBench(classes, flows)
					b.StartTimer()
					e.Run()
				}
			})
		}
	}
}
