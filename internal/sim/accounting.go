package sim

import "sort"

// Utilization accounting: when enabled on a fabric, every pipe integrates
// its allocated bandwidth over virtual time, so after a run the harness can
// rank pipes by utilization and name the bottleneck — the simulator's
// answer to the paper's recurring question of *where* bandwidth is lost
// (gateway link? connection cap? reduction engine? spinning pool?).
//
// The integrals piggyback on the solver's advance step: no extra events,
// exact between solves. Accounting is opt-in because it costs O(pipes) per
// fabric advance.

// EnableAccounting turns on utilization integration for all pipes. When
// enabled mid-run, every pipe with active flows is re-marked so the next
// solve refreshes its allocated rate (allocations are otherwise only
// recomputed for the dirty region).
func (f *Fabric) EnableAccounting() {
	f.accounting = true
	if f.liveFlows > 0 {
		for _, p := range f.pipes {
			if p.nflows > 0 {
				f.touch(p)
			}
		}
		f.markDirty()
	}
}

// Pipes returns every pipe registered on the fabric, in creation order.
func (f *Fabric) Pipes() []*Pipe { return f.pipes }

// AllocatedRate returns the bandwidth currently granted to flows crossing
// the pipe (bytes/sec), as of the last solve.
func (p *Pipe) AllocatedRate() float64 { return p.allocated }

// Utilization returns the pipe's time-averaged allocated fraction of
// capacity (0 when accounting is off or no time has passed). Pipes created
// lazily mid-run (per-pattern device service pipes, per-mount connection
// pipes) integrate from their creation, so a short-lived pipe that ran
// flat out reports high utilization even if it never constrained the
// workload — read the report together with each pipe's capacity.
func (p *Pipe) Utilization() float64 {
	if p.capIntegral <= 0 {
		return 0
	}
	return p.busyIntegral / p.capIntegral
}

// BytesMoved returns the total bytes the pipe carried (accounting only).
func (p *Pipe) BytesMoved() float64 { return p.busyIntegral }

// PipeUtil is one row of a utilization report.
type PipeUtil struct {
	Name        string
	Utilization float64
	Capacity    float64
	Bytes       float64
}

// TopUtilized returns the n busiest pipes by time-averaged utilization,
// breaking ties by bytes moved and then name (deterministic).
func (f *Fabric) TopUtilized(n int) []PipeUtil {
	out := make([]PipeUtil, 0, len(f.pipes))
	for _, p := range f.pipes {
		u := p.Utilization()
		if u <= 0 {
			continue
		}
		out = append(out, PipeUtil{Name: p.name, Utilization: u, Capacity: p.capacity, Bytes: p.busyIntegral})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Utilization != out[b].Utilization {
			return out[a].Utilization > out[b].Utilization
		}
		if out[a].Bytes != out[b].Bytes {
			return out[a].Bytes > out[b].Bytes
		}
		return out[a].Name < out[b].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// accrue integrates the pipe's allocation over dt seconds.
func (p *Pipe) accrue(dt float64) {
	p.busyIntegral += p.allocated * dt
	p.capIntegral += p.capacity * dt
}

// recomputeAllocations refreshes the allocated rate of every pipe in the
// last solved region. Pipes outside the region kept their rates, so their
// cached allocation is still exact. O(region class-pipe incidences).
func (f *Fabric) recomputeAllocations() {
	for _, p := range f.regionPipes {
		p.allocated = 0
	}
	for _, c := range f.regionClasses {
		total := c.rate * float64(c.count)
		for _, p := range c.pipes {
			p.allocated += total
		}
	}
}
