package sim

import (
	"fmt"
	"strings"
	"testing"
)

// fuzzMix is a local splitmix64 so the fuzzed model's randomness is
// self-contained and deterministic per input.
func fuzzMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fuzzGroupDigest builds a randomized multi-shard model from (seed, shards,
// lat, events) and executes it at the given executor cap, returning an
// event-order-sensitive digest: every message reception folds its receive
// time and payload into the receiving shard's accumulator, and shard
// accumulators concatenate in shard order.
func fuzzGroupDigest(parallel int, seed uint64, nshards, lat, events int) string {
	g := NewGroup(parallel)
	digests := make([]uint64, nshards)
	shards := make([]*Shard, nshards)
	for i := range shards {
		shards[i] = g.AddShard(fmt.Sprintf("s%d", i), NewEnv())
	}
	g.LinkAll(Duration(lat))
	for i, s := range shards {
		i, s := i, s
		rng := seed ^ uint64(i)*0x9e3779b97f4a7c15
		s.Env().Go("gen", func(p *Proc) {
			r := rng
			for k := 0; k < events; k++ {
				r = fuzzMix(r)
				p.Sleep(Duration(r%301) + 1)
				r = fuzzMix(r)
				target := int(r % uint64(nshards))
				payload := r
				if target == i {
					// Local work: bump the own digest in-line.
					digests[i] = (digests[i] ^ payload) * 0x100000001b3
					continue
				}
				to := shards[target]
				r = fuzzMix(r)
				extra := Duration(r % 97)
				s.Send(to, extra, func() {
					digests[target] = (digests[target] ^ uint64(to.Env().Now()) ^ payload) * 0x100000001b3
				})
			}
		})
	}
	g.Run(Time(events * 400))
	g.Shutdown()
	var b strings.Builder
	for i, d := range digests {
		fmt.Fprintf(&b, "s%d=%016x now=%d;", i, d, shards[i].Env().Now())
	}
	return b.String()
}

// FuzzDomainsVsSequential is the lockstep fuzz gating the domain-parallel
// coordinator: any randomized shard topology and message schedule must
// produce byte-identical digests under the strictly sequential oracle
// (parallel=1) and under 2- and 4-executor parallel execution.
func FuzzDomainsVsSequential(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint16(10), uint8(20))
	f.Add(uint64(0x5eed), uint8(3), uint16(1), uint8(40))
	f.Add(uint64(42), uint8(4), uint16(350), uint8(60))
	f.Add(uint64(7777), uint8(4), uint16(65535), uint8(10))
	f.Fuzz(func(t *testing.T, seed uint64, shardsRaw uint8, latRaw uint16, eventsRaw uint8) {
		nshards := 2 + int(shardsRaw)%3 // 2..4
		lat := 1 + int(latRaw)%1000
		events := 1 + int(eventsRaw)%60
		want := fuzzGroupDigest(1, seed, nshards, lat, events)
		for _, parallel := range []int{2, 4} {
			if got := fuzzGroupDigest(parallel, seed, nshards, lat, events); got != want {
				t.Fatalf("parallel=%d diverged (shards=%d lat=%d events=%d):\n got %s\nwant %s",
					parallel, nshards, lat, events, got, want)
			}
		}
	})
}
