package sim

import (
	"math"
	"math/rand"
	"testing"
)

// queueImpl is the behavioural surface shared by the production calendar
// queue and the reference heap, so the differential harness can drive both
// in lockstep.
type queueImpl interface {
	alloc() *timedEvent
	release(ev *timedEvent)
	live() int
	insert(ev *timedEvent)
	pop(limit Time) *timedEvent
	cancel(ev *timedEvent)
}

var (
	_ queueImpl = (*calQueue)(nil)
	_ queueImpl = (*refQueue)(nil)
)

// diffHandle tracks one pending event in both queues. Pointers alone cannot
// identify events (the pool recycles them), so the (at, seq) key and the
// generation snapshots say whether the handles are still current.
type diffHandle struct {
	at         Time
	seq        uint64
	cEv, rEv   *timedEvent
	cGen, rGen uint64
}

// diffQueues interprets ops as a schedule/cancel/pop program and runs it
// against the calendar queue and the reference heap simultaneously, failing
// on the first divergence in pop order, pop timing, or live counts. The op
// stream deliberately mixes same-instant bursts (delta 0), in-window timers,
// and far-future events beyond wheelSpan so every cascade and tombstone path
// gets exercised.
func diffQueues(t *testing.T, ops []byte) {
	t.Helper()
	c := &calQueue{}
	r := &refQueue{}
	var (
		now     Time
		seq     uint64
		pending []diffHandle
	)

	schedule := func(delta Time) {
		seq++
		at := now + delta
		if at < now { // overflow guard for adversarial fuzz inputs
			at = now
		}
		cEv := c.alloc()
		rEv := r.alloc()
		for _, ev := range [2]*timedEvent{cEv, rEv} {
			ev.at = at
			ev.seq = seq
			ev.kind = evFn
		}
		h := diffHandle{at: at, seq: seq, cEv: cEv, rEv: rEv, cGen: cEv.gen, rGen: rEv.gen}
		c.insert(cEv)
		r.insert(rEv)
		pending = append(pending, h)
	}

	popOne := func(limit Time) bool {
		cEv := c.pop(limit)
		rEv := r.pop(limit)
		if (cEv == nil) != (rEv == nil) {
			t.Fatalf("pop(limit=%d) divergence: cal=%v ref=%v", limit, cEv, rEv)
		}
		if cEv == nil {
			return false
		}
		if cEv.at != rEv.at || cEv.seq != rEv.seq {
			t.Fatalf("pop order divergence: cal=(%d,%d) ref=(%d,%d)", cEv.at, cEv.seq, rEv.at, rEv.seq)
		}
		if cEv.at < now {
			t.Fatalf("pop went backwards: %d < now %d", cEv.at, now)
		}
		now = cEv.at
		for i := range pending {
			if pending[i].seq == cEv.seq {
				pending = append(pending[:i], pending[i+1:]...)
				break
			}
		}
		c.release(cEv)
		r.release(rEv)
		return true
	}

	for i := 0; i < len(ops); {
		op := ops[i]
		i++
		arg := func() Time {
			if i < len(ops) {
				v := Time(ops[i])
				i++
				return v
			}
			return 0
		}
		switch op % 4 {
		case 0: // near-future (or same-instant) schedule, lands in the wheel
			schedule(arg())
		case 1: // far-future schedule, lands in the overflow heap
			schedule(wheelSpan + arg()<<7)
		case 2: // cancel a pending event chosen by the next byte
			if len(pending) > 0 {
				h := pending[int(arg())%len(pending)]
				if h.cEv.gen != h.cGen || h.rEv.gen != h.rGen {
					t.Fatalf("handle (%d,%d) went stale while pending", h.at, h.seq)
				}
				c.cancel(h.cEv)
				r.cancel(h.rEv)
				for j := range pending {
					if pending[j].seq == h.seq {
						pending = append(pending[:j], pending[j+1:]...)
						break
					}
				}
			}
		default: // pop a few events under a bounded limit
			limit := now + arg()<<4
			n := int(arg()%4) + 1
			for j := 0; j < n; j++ {
				if !popOne(limit) {
					break
				}
			}
		}
		if c.live() != r.live() {
			t.Fatalf("live count divergence after op %d: cal=%d ref=%d", op%4, c.live(), r.live())
		}
		if c.live() != len(pending) {
			t.Fatalf("live count vs harness: cal=%d pending=%d", c.live(), len(pending))
		}
	}

	// Drain completely; every remaining event must come out of both queues
	// in the same total order.
	for popOne(Time(math.MaxInt64)) {
	}
	if c.live() != 0 || r.live() != 0 || len(pending) != 0 {
		t.Fatalf("drain left residue: cal=%d ref=%d pending=%d", c.live(), r.live(), len(pending))
	}
}

// FuzzWheelVsHeap feeds coverage-guided op programs through the differential
// harness. Run via `make fuzz-smoke`.
func FuzzWheelVsHeap(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 3, 255, 3}) // same-instant burst then drain
	f.Add([]byte{1, 200, 1, 200, 1, 1, 3, 255, 3, 0, 10, 3, 255, 3})
	f.Add([]byte{0, 5, 1, 9, 2, 0, 0, 5, 2, 1, 3, 40, 2})
	f.Add([]byte{1, 0, 1, 0, 1, 0, 2, 1, 3, 255, 3, 3, 255, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		diffQueues(t, ops)
	})
}

// TestWheelVsHeapRandom runs the differential harness over fixed-seed random
// programs, so the equivalence check runs on every plain `go test` even
// without the fuzzing engine.
func TestWheelVsHeapRandom(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := make([]byte, 2048)
		rng.Read(ops)
		diffQueues(t, ops)
	}
}

// TestWheelCascadePreservesFIFO pins the subtlest ordering obligation: a
// burst of same-timestamp events that overflow past the wheel window must
// still fire in scheduling order after they cascade from the heap into a
// bucket.
func TestWheelCascadePreservesFIFO(t *testing.T) {
	e := NewEnv()
	far := Time(10 * wheelSpan) // well beyond the initial window
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(far, func() { got = append(got, i) })
	}
	// A second cohort one bucket later, interleaved in schedule order too.
	for i := 100; i < 150; i++ {
		i := i
		e.Schedule(far+64, func() { got = append(got, i) })
	}
	e.Run()
	if len(got) != 150 {
		t.Fatalf("fired %d of 150 events", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("event %d fired at position %d: cascade broke FIFO", v, i)
		}
	}
}

// TestRunUntilThenNearSchedule guards the window-rebase rule: a RunUntil
// deadline that stops short of a far-future event must not slide the wheel
// window forward, or a subsequent schedule between the deadline and that
// event would land behind the window.
func TestRunUntilThenNearSchedule(t *testing.T) {
	e := NewEnv()
	var got []Time
	e.Schedule(1_000_000, func() { got = append(got, e.Now()) })
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("RunUntil stopped at %d, want 500", e.Now())
	}
	e.Schedule(600, func() { got = append(got, e.Now()) })
	e.Run()
	want := []Time{600, 1_000_000}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("fire order %v, want %v", got, want)
	}
}
