package sim

// Proc is a simulated process: a logical thread of execution interleaved
// with all other processes by the Env scheduler so that exactly one runs at
// a time. All blocking methods (Sleep, Wait, resource acquisition, ...) must
// be called from the process's own goroutine.
//
// The goroutine carrying a Proc is a pooled worker: when the process
// function returns, the goroutine is recycled for the next Env.Go instead of
// dying. A Proc started with Env.Go is never recycled — callers may hold it
// (and its Done event) indefinitely. A Proc started with Env.GoPooled is
// recycled the moment its function returns, which is why GoPooled hands out
// no reference.
type Proc struct {
	env        *Env
	name       string
	fn         func(p *Proc)
	w          *worker
	blockedIdx int // index in env.blocked, -1 when not parked on a wait
	finished   bool
	pooled     bool // recycled via env.freeProcs when the function returns

	// flowTag labels every fabric flow this process starts (multi-tenant
	// attribution; see Fabric.TagBytes). Backends stamp the interned handle
	// of their mount's tag at the entry of each data-path operation, so the
	// zero (untagged) handle costs nothing and the stamp is an integer
	// write.
	flowTag FlowTag

	// abort is the request-scoped cancellation token (see abort.go); nil
	// means the process never aborts, which costs one nil check per
	// cancellation point.
	abort *Abort

	// Done fires when the process function returns. Other processes can
	// Wait on it to join this process.
	Done *Event
}

// worker is a recyclable process goroutine: a resume channel (the baton
// hand-off point) plus the process currently bound to it.
type worker struct {
	resume chan struct{}
	proc   *Proc
}

func bindWorker(w *worker, p *Proc) {
	w.proc = p
	p.w = w
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name (used in deadlock reports and traces).
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// SetFlowTag labels all fabric flows this process subsequently starts.
// Flows with distinct tags form distinct fair-share classes and their
// delivered bytes are attributed per tag (Fabric.TagBytes); the empty tag
// restores untagged operation. The string is interned on every call — hot
// per-operation stamping should intern once and use SetFlowTagID.
func (p *Proc) SetFlowTag(tag string) { p.flowTag = p.env.InternTag(tag) }

// SetFlowTagID stamps a pre-interned tag handle (see Env.InternTag): the
// allocation- and hash-free form of SetFlowTag for per-operation stamping.
func (p *Proc) SetFlowTagID(tag FlowTag) { p.flowTag = tag }

// FlowTag returns the process's current flow tag ("" when untagged).
func (p *Proc) FlowTag() string { return p.env.TagName(p.flowTag) }

// FlowTagID returns the process's current interned tag handle.
func (p *Proc) FlowTagID() FlowTag { return p.flowTag }

// park hands control to the scheduler and blocks until some event resumes
// this process. The calling goroutine drains the calendar itself (see
// Env.dispatch): if the next wake-up belongs to this very process, park
// returns without a single channel operation; otherwise the baton goes
// directly to the resumed process's goroutine. why is recorded for deadlock
// diagnostics; processes parked on timers pass "" and are not tracked (a
// timer always fires).
func (p *Proc) park(why string) {
	e := p.env
	if why != "" {
		e.pushBlocked(p, why)
	}
	if e.dispatch(p.w) != dispSelf {
		<-p.w.resume
	}
	if why != "" {
		e.popBlocked(p)
	}
}

// wake schedules this process to resume at the current virtual time.
func (p *Proc) wake() {
	p.env.scheduleEvent(p.env.now, evResume, nil, p)
}

// Sleep suspends the process for duration d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	if d == 0 {
		return
	}
	p.env.scheduleEvent(p.env.now.Add(d), evResume, nil, p)
	p.park("")
}

// SleepUntil suspends the process until virtual time t (no-op if t is now or
// in the past).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.env.now {
		return
	}
	p.env.scheduleEvent(t, evResume, nil, p)
	p.park("")
}

// Yield lets every other event already scheduled for the current instant run
// before this process continues.
func (p *Proc) Yield() {
	p.wake()
	p.park("")
}

// Event is a one-shot broadcast signal. Processes Wait on it; Fire releases
// all current and future waiters. The zero value is not usable; create with
// NewEvent.
type Event struct {
	env     *Env
	fired   bool
	waiters []*Proc
	// w0 backs the single-waiter fast path: the first Wait parks without a
	// heap allocation (a Transfer's completion event has exactly one
	// waiter, and flows dominate event volume on large sweeps).
	w0 [1]*Proc
}

// NewEvent returns an unfired event bound to env.
func NewEvent(env *Env) *Event { return &Event{env: env} }

// Init binds a zero-value (typically embedded) Event to env and resets it
// to the unfired state, so request records can reuse one Event allocation
// across pooled lifecycles.
func (ev *Event) Init(env *Env) {
	ev.env = env
	ev.Reset()
}

// Reset returns a fired event to the unfired state for reuse. Resetting an
// event that still has waiters would silently strand them, so that panics —
// it is always a lifecycle bug (the pool recycled a record something still
// waits on).
func (ev *Event) Reset() {
	if len(ev.waiters) != 0 {
		panic("sim: Event.Reset with waiters still parked")
	}
	ev.fired = false
}

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// Fire triggers the event, waking all waiters. Firing twice is a no-op.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, p := range ev.waiters {
		p.wake()
	}
	ev.waiters = nil
}

// Wait blocks the calling process until the event fires. Returns immediately
// if it already fired.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	if ev.waiters == nil {
		ev.waiters = ev.w0[:0]
	}
	ev.waiters = append(ev.waiters, p)
	p.park("event")
}

// WaitGroup counts outstanding activities, like sync.WaitGroup but for
// simulated processes.
type WaitGroup struct {
	env   *Env
	count int
	done  *Event
}

// NewWaitGroup returns a WaitGroup bound to env.
func NewWaitGroup(env *Env) *WaitGroup {
	return &WaitGroup{env: env, done: NewEvent(env)}
}

// Add increments the counter by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Go starts fn as a process and tracks it in the group.
func (wg *WaitGroup) Go(name string, fn func(p *Proc)) {
	wg.Add(1)
	wg.env.Go(name, func(p *Proc) {
		defer wg.doneOne()
		fn(p)
	})
}

func (wg *WaitGroup) doneOne() {
	wg.count--
	if wg.count == 0 {
		wg.done.Fire()
		wg.done = NewEvent(wg.env) // re-arm for reuse
	}
}

// Wait blocks the calling process until the counter reaches zero. Returns
// immediately if it is already zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.done.Wait(p)
}
