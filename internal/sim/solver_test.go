package sim

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// --- flow-class aggregation (white-box) ---

func TestIdenticalFlowsAggregateIntoOneClass(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	nic := fab.NewPipe("nic", 1e9, 0)
	for i := 0; i < 100; i++ {
		fab.StartFlow([]*Pipe{nic, link}, 1e9, 0)
	}
	if got := len(fab.classes); got != 1 {
		t.Fatalf("100 identical flows produced %d classes, want 1", got)
	}
	if got := fab.classes[0].count; got != 100 {
		t.Fatalf("class count = %d, want 100", got)
	}
	// A different cap or a different path must open a new class.
	fab.StartFlow([]*Pipe{nic, link}, 1e9, 5e8)
	fab.StartFlow([]*Pipe{link}, 1e9, 0)
	if got := len(fab.classes); got != 3 {
		t.Fatalf("distinct signatures produced %d classes, want 3", got)
	}
	e.RunUntil(Time(time.Millisecond))
	// All members of the big class share one rate.
	if r := fab.classes[0].rate; r <= 0 {
		t.Fatalf("class rate = %v", r)
	}
}

func TestClassRetiresWhenLastMemberFinishes(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	e.Go("a", func(p *Proc) { fab.Transfer(p, []*Pipe{link}, 1e8, 0) })
	e.Go("b", func(p *Proc) { fab.Transfer(p, []*Pipe{link}, 1e8, 0) })
	e.Run()
	if got := len(fab.classes); got != 0 {
		t.Fatalf("%d classes alive after all flows finished, want 0", got)
	}
	if got := link.ActiveFlows(); got != 0 {
		t.Fatalf("link reports %d active flows, want 0", got)
	}
	if got := len(link.classes); got != 0 {
		t.Fatalf("link still registers %d classes, want 0", got)
	}
}

// --- scoped re-solve (white-box) ---

// TestScopedResolveLeavesOtherComponentUntouched: churn on one component
// must not re-visit pipes of a disconnected component.
func TestScopedResolveLeavesOtherComponentUntouched(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	a := fab.NewPipe("a", 1e9, 0)
	b := fab.NewPipe("b", 1e9, 0)
	e.Go("long-on-a", func(p *Proc) { fab.Transfer(p, []*Pipe{a}, 1e9, 0) })
	var genAfterSetup uint64
	e.Go("churn-on-b", func(p *Proc) {
		p.Sleep(100 * time.Millisecond)
		genAfterSetup = a.visitGen
		for i := 0; i < 5; i++ {
			fab.Transfer(p, []*Pipe{b}, 1e7, 0)
		}
		if a.visitGen != genAfterSetup {
			t.Errorf("pipe a was re-visited (gen %d -> %d) by churn on pipe b",
				genAfterSetup, a.visitGen)
		}
	})
	e.Run()
}

// TestScopedResolveMergesComponents: a flow bridging two previously
// independent components must trigger a joint re-solve with correct rates.
func TestScopedResolveMergesComponents(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	a := fab.NewPipe("a", 1e9, 0)
	b := fab.NewPipe("b", 3e9, 0)
	flA := fab.StartFlow([]*Pipe{a}, 1e15, 0)
	flB := fab.StartFlow([]*Pipe{b}, 1e15, 0)
	var bridge *Flow
	e.Go("bridge", func(p *Proc) {
		p.Sleep(time.Millisecond)
		bridge = fab.StartFlow([]*Pipe{a, b}, 1e15, 0)
		p.Sleep(time.Millisecond)
		// Max-min: a (1 GB/s) splits 0.5/0.5; b grants the bridge 0.5 and
		// flB the remaining 2.5.
		if math.Abs(flA.Rate()-5e8) > 1 || math.Abs(bridge.Rate()-5e8) > 1 {
			t.Errorf("a-side rates: flA=%v bridge=%v, want 5e8 each", flA.Rate(), bridge.Rate())
		}
		if math.Abs(flB.Rate()-2.5e9) > 1 {
			t.Errorf("flB rate = %v, want 2.5e9", flB.Rate())
		}
	})
	e.RunUntil(Time(3 * time.Millisecond))
}

// --- solver edge cases ---

// TestRateCapExactlyAtPipeShare: a cap exactly equal to the binding pipe
// share must freeze cleanly (no infinite loop, same rate either way).
func TestRateCapExactlyAtPipeShare(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 9e8, 0)
	capped := fab.StartFlow([]*Pipe{link}, 1e15, 3e8) // cap == fair share of 3
	open1 := fab.StartFlow([]*Pipe{link}, 1e15, 0)
	open2 := fab.StartFlow([]*Pipe{link}, 1e15, 0)
	e.Go("check", func(p *Proc) {
		p.Sleep(time.Millisecond)
		for _, fl := range []*Flow{capped, open1, open2} {
			if math.Abs(fl.Rate()-3e8) > 1 {
				t.Errorf("rate = %v, want 3e8", fl.Rate())
			}
		}
	})
	e.RunUntil(Time(2 * time.Millisecond))
}

// TestSetCapacityOnSaturatedPipe: shrinking and restoring a saturated
// pipe's capacity mid-flight must re-allocate exactly.
func TestSetCapacityOnSaturatedPipe(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	ends := make([]Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Go(fmt.Sprintf("f%d", i), func(p *Proc) {
			fab.Transfer(p, []*Pipe{link}, 1e9, 0)
			ends[i] = p.Now()
		})
	}
	e.Go("squeeze", func(p *Proc) {
		p.Sleep(500 * time.Millisecond)
		link.SetCapacity(5e8) // halve while both flows saturate it
		p.Sleep(1 * time.Second)
		link.SetCapacity(1e9) // restore
	})
	e.Run()
	// Each flow: 250 MB in the first 0.5 s (half of 1 GB/s), 250 MB in the
	// next 1 s (half of 0.5 GB/s), remaining 500 MB at 0.5 GB/s -> 2.5 s.
	for i, end := range ends {
		if got := Duration(end).Seconds(); math.Abs(got-2.5) > 1e-6 {
			t.Fatalf("flow %d ended at %.6fs, want 2.5s", i, got)
		}
	}
}

// TestZeroRemainingAbsorption: a flow whose residual byte count falls into
// the float-absorption window at another flow's completion event must
// complete at that same event, not a nanosecond later.
func TestZeroRemainingAbsorption(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	var endA, endB Time
	e.Go("a", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 1e8, 0)
		endA = p.Now()
	})
	e.Go("b", func(p *Proc) {
		// 5e-4 bytes more than a: after a finishes, b's residual is inside
		// the 1e-3 absorption window and must be forgiven immediately.
		fab.Transfer(p, []*Pipe{link}, 1e8+5e-4, 0)
		endB = p.Now()
	})
	e.Run()
	if endA != endB {
		t.Fatalf("absorption failed: a ended at %v, b at %v", endA, endB)
	}
}

// TestSubSlackTransferCompletesImmediately: a transfer smaller than the
// absorption slack is treated as instantaneous.
func TestSubSlackTransferCompletesImmediately(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	e.Go("tiny", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 5e-4, 0)
		if p.Now() != 0 {
			t.Errorf("sub-slack transfer took until %v", p.Now())
		}
	})
	e.Run()
}

// --- golden determinism ---

// churnScenario drives a deliberately nasty mixed workload: shared-class
// bursts, capped flows, a component bridge, capacity churn on a saturated
// pipe, and staggered arrivals. It returns every flow's completion time in
// start order.
func churnScenario() []Time {
	e := NewEnv()
	fab := NewFabric(e)
	nicA := fab.NewPipe("nicA", 2e9, 0)
	nicB := fab.NewPipe("nicB", 3e9, 0)
	back := fab.NewPipe("back", 4e9, 0)
	other := fab.NewPipe("other", 1e9, 0) // separate component most of the time
	ends := make([]Time, 24)
	for i := 0; i < 24; i++ {
		i := i
		e.Go(fmt.Sprintf("f%d", i), func(p *Proc) {
			p.Sleep(Duration(i%7) * 11 * time.Millisecond)
			var pipes []*Pipe
			var rateCap float64
			switch i % 4 {
			case 0:
				pipes = []*Pipe{nicA, back} // shared class (burst of 6)
			case 1:
				pipes = []*Pipe{nicB, back}
				rateCap = 4e8
			case 2:
				pipes = []*Pipe{other}
			default:
				pipes = []*Pipe{nicA, nicB, back} // long path, bridges all
			}
			fab.Transfer(p, pipes, float64(3e7*(i+1)), rateCap)
			ends[i] = p.Now()
		})
	}
	e.Go("churn", func(p *Proc) {
		p.Sleep(40 * time.Millisecond)
		back.SetCapacity(2e9)
		p.Sleep(40 * time.Millisecond)
		back.SetCapacity(4e9)
	})
	e.Run()
	return ends
}

// goldenChurnEnds pins the exact virtual-ns completion times of
// churnScenario as produced by the flow-class solver. Any change to solver
// arithmetic, iteration order or event scheduling that shifts a single
// nanosecond fails this test.
var goldenChurnEnds = []int64{
	94899185, 214590088, 541100001, 700815851, 864452215, 565593751,
	1195183334, 1166429488, 1330429488, 841544800, 1646583334, 1687058276,
	1782135199, 1169031251, 1946083334, 1973169581, 2044169581, 1452544800,
	2231916668, 2191298952, 2222673952, 1719544800, 2340000001, 2262943329,
}

func TestGoldenChurnDeterminism(t *testing.T) {
	first := churnScenario()
	second := churnScenario()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run-to-run divergence at flow %d: %v vs %v", i, first[i], second[i])
		}
	}
	if len(first) != len(goldenChurnEnds) {
		t.Fatalf("scenario produced %d flows, golden has %d", len(first), len(goldenChurnEnds))
	}
	for i := range first {
		if int64(first[i]) != goldenChurnEnds[i] {
			t.Errorf("flow %d completed at %dns, golden %dns", i, int64(first[i]), goldenChurnEnds[i])
		}
	}
}

// TestPrintGoldenChurn regenerates the golden values (run with -v when the
// scenario itself changes deliberately).
func TestPrintGoldenChurn(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("golden value generator; run with -v to print")
	}
	for _, end := range churnScenario() {
		t.Logf("%d,", int64(end))
	}
}
