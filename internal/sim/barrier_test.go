package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestBarrierReleasesTogether(t *testing.T) {
	e := NewEnv()
	b := NewBarrier(e, "b", 4)
	var releases []Time
	for i := 0; i < 4; i++ {
		i := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Duration(i*10) * time.Millisecond) // staggered arrivals
			b.Wait(p)
			releases = append(releases, p.Now())
		})
	}
	e.Run()
	if len(releases) != 4 {
		t.Fatalf("releases = %d", len(releases))
	}
	for _, r := range releases {
		if r != Time(30*time.Millisecond) {
			t.Fatalf("release at %v, want all at 30ms (last arrival)", Duration(r))
		}
	}
}

func TestBarrierReusableAcrossRounds(t *testing.T) {
	e := NewEnv()
	b := NewBarrier(e, "b", 2)
	var log []string
	for i := 0; i < 2; i++ {
		i := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			for round := 0; round < 3; round++ {
				p.Sleep(Duration(i+1) * time.Millisecond)
				b.Wait(p)
				log = append(log, fmt.Sprintf("p%d:r%d@%v", i, round, p.Now()))
			}
		})
	}
	e.Run()
	if len(log) != 6 {
		t.Fatalf("log = %v", log)
	}
	// Rounds must not interleave: both parties finish round r before
	// either passes round r+1.
	for round := 0; round < 3; round++ {
		a, bb := log[2*round], log[2*round+1]
		if a[4] != byte('0'+round) || bb[4] != byte('0'+round) {
			t.Fatalf("rounds interleaved: %v", log)
		}
	}
}

func TestBarrierSingleParty(t *testing.T) {
	e := NewEnv()
	b := NewBarrier(e, "b", 1)
	passed := 0
	e.Go("solo", func(p *Proc) {
		for i := 0; i < 5; i++ {
			b.Wait(p) // never blocks
			passed++
		}
	})
	e.Run()
	if passed != 5 {
		t.Fatalf("passed = %d", passed)
	}
}

func TestBarrierLateArrivalJoinsNextRound(t *testing.T) {
	// Two fast parties and one slow one in a 2-party barrier: the fast
	// pair forms round 1; the slow process plus one fast process form
	// round 2.
	e := NewEnv()
	b := NewBarrier(e, "b", 2)
	var order []string
	e.Go("fast1", func(p *Proc) {
		b.Wait(p)
		order = append(order, fmt.Sprintf("fast1@%v", p.Now()))
		b.Wait(p) // joins round 2 with slow
		order = append(order, fmt.Sprintf("fast1b@%v", p.Now()))
	})
	e.Go("fast2", func(p *Proc) {
		b.Wait(p)
		order = append(order, fmt.Sprintf("fast2@%v", p.Now()))
	})
	e.Go("slow", func(p *Proc) {
		p.Sleep(time.Second)
		b.Wait(p)
		order = append(order, fmt.Sprintf("slow@%v", p.Now()))
	})
	e.Run()
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
}
