package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestCancelLifecycle walks EventHandle.Cancel through every state of the
// pooled event lifecycle. Events are recycled after firing or cancellation,
// so each case checks both that Cancel is a no-op where it must be and that
// the pooled object's next incarnation is unharmed.
func TestCancelLifecycle(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"nil handle", func(t *testing.T) {
			var h *EventHandle
			h.Cancel() // must not panic
		}},
		{"double cancel", func(t *testing.T) {
			e := NewEnv()
			fired := false
			h := e.Schedule(10, func() { fired = true })
			other := e.Schedule(20, func() {})
			_ = other
			h.Cancel()
			h.Cancel() // second cancel is a no-op, not a double-remove
			if e.Pending() != 1 {
				t.Fatalf("Pending = %d after double cancel, want 1", e.Pending())
			}
			e.Run()
			if fired {
				t.Fatal("cancelled event fired")
			}
		}},
		{"cancel after fire", func(t *testing.T) {
			e := NewEnv()
			h := e.Schedule(10, func() {})
			e.Run()
			h.Cancel() // event already fired and was recycled; must be a no-op
			fired := false
			e.Schedule(e.Now()+5, func() { fired = true })
			e.Run()
			if !fired {
				t.Fatal("cancel-after-fire damaged the recycled event")
			}
		}},
		{"stale handle cannot cancel recycled event", func(t *testing.T) {
			e := NewEnv()
			h := e.Schedule(Time(10*wheelSpan), func() {}) // overflow: cancel recycles immediately
			stale := *h
			h.Cancel()
			fired := false
			// The pool hands the just-released object to the next schedule.
			e.Schedule(Time(10*wheelSpan), func() { fired = true })
			stale.Cancel() // generation mismatch: must not touch the new event
			if e.Pending() != 1 {
				t.Fatalf("Pending = %d after stale cancel, want 1", e.Pending())
			}
			e.Run()
			if !fired {
				t.Fatal("stale handle cancelled a later schedule's event")
			}
		}},
		{"cancel near event drops Pending", func(t *testing.T) {
			e := NewEnv()
			h := e.Schedule(10, func() {}) // within the wheel window: tombstoned
			if e.Pending() != 1 {
				t.Fatalf("Pending = %d, want 1", e.Pending())
			}
			h.Cancel()
			if e.Pending() != 0 {
				t.Fatalf("Pending = %d after bucket cancel, want 0", e.Pending())
			}
			e.Run()
		}},
		{"cancel far event drops Pending", func(t *testing.T) {
			e := NewEnv()
			h := e.Schedule(Time(10*wheelSpan), func() {}) // beyond the window: overflow heap
			h.Cancel()
			if e.Pending() != 0 {
				t.Fatalf("Pending = %d after overflow cancel, want 0", e.Pending())
			}
			e.Run()
		}},
		{"cancel mid-run from an earlier event", func(t *testing.T) {
			e := NewEnv()
			fired := false
			h := e.Schedule(20, func() { fired = true })
			e.Schedule(10, func() { h.Cancel() })
			e.Run()
			if fired {
				t.Fatal("event fired despite mid-run cancel")
			}
			if e.Now() != 10 {
				t.Fatalf("clock at %d, want 10 (cancelled event must not advance it)", e.Now())
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// TestDeadlockReportSorted pins the deadlock diagnostic to name order. The
// seed kept blocked processes in a map, so the report order changed from run
// to run; it is now sorted and therefore stable.
func TestDeadlockReportSorted(t *testing.T) {
	e := NewEnv()
	stuck := NewEvent(e)
	for _, name := range []string{"zeta", "alpha", "mike"} {
		e.Go(name, func(p *Proc) { stuck.Wait(p) })
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic on deadlock")
		}
		msg := fmt.Sprint(r)
		want := "[alpha (event) mike (event) zeta (event)]"
		if !strings.Contains(msg, want) {
			t.Fatalf("deadlock report %q does not list processes sorted as %q", msg, want)
		}
	}()
	e.Run()
}

// TestWorkerRecycling verifies that sequential process churn reuses one
// parked goroutine instead of spawning one per process, and that the pool is
// dismissed when the run returns.
func TestWorkerRecycling(t *testing.T) {
	e := NewEnv()
	const n = 50
	done := 0
	for i := 0; i < n; i++ {
		at := Time(i * 100)
		e.Schedule(at, func() {
			e.Go("worker", func(p *Proc) {
				p.Sleep(10) // finishes well before the next spawn
				done++
			})
		})
	}
	e.Run()
	if done != n {
		t.Fatalf("ran %d processes, want %d", done, n)
	}
	if e.spawnedWorkers != 1 {
		t.Fatalf("spawned %d goroutines for %d sequential processes, want 1", e.spawnedWorkers, n)
	}
	if len(e.freeWorkers) != 0 {
		t.Fatalf("%d workers still pooled after Run", len(e.freeWorkers))
	}
}

// TestWorkerPoolAcrossRuns checks that recycling also spans Run calls on the
// same Env: concurrent processes need one goroutine each, but a second batch
// after the first Run reuses nothing stale and leaves no residue.
func TestWorkerPoolAcrossRuns(t *testing.T) {
	e := NewEnv()
	ran := 0
	spawn := func(k int) {
		for i := 0; i < k; i++ {
			e.Go("p", func(p *Proc) {
				p.Sleep(5)
				ran++
			})
		}
	}
	spawn(8)
	e.Run()
	if e.spawnedWorkers != 8 {
		t.Fatalf("first batch spawned %d goroutines, want 8", e.spawnedWorkers)
	}
	spawn(8)
	e.Run()
	if ran != 16 {
		t.Fatalf("ran %d processes, want 16", ran)
	}
	if len(e.freeWorkers) != 0 {
		t.Fatalf("%d workers still pooled after second Run", len(e.freeWorkers))
	}
}
