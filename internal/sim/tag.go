package sim

// FlowTag is an interned flow-attribution tag: a dense integer handle for
// the tag string carried by processes and fabric flows. The zero value is
// the untagged default (the empty string). Interning happens once per
// distinct tag per Env — backends cache the handle of their mount's tag —
// so the per-operation stamp and the per-flow class signature are integer
// writes, never string hashing.
type FlowTag int32

// InternTag returns the environment-wide handle of the given tag string,
// assigning one on first use. The empty string always maps to the zero
// handle. Handles are assigned in interning order, so a deterministic
// sequence of InternTag calls yields deterministic handles.
func (e *Env) InternTag(name string) FlowTag {
	if name == "" {
		return 0
	}
	if id, ok := e.tagIndex[name]; ok {
		return id
	}
	if e.tagIndex == nil {
		e.tagIndex = make(map[string]FlowTag)
		e.tagNames = append(e.tagNames, "") // reserve the untagged slot
	}
	id := FlowTag(len(e.tagNames))
	e.tagNames = append(e.tagNames, name)
	e.tagIndex[name] = id
	return id
}

// TagName returns the string form of a tag handle ("" for the untagged
// handle and for handles this Env never issued).
func (e *Env) TagName(t FlowTag) string {
	if t <= 0 || int(t) >= len(e.tagNames) {
		return ""
	}
	return e.tagNames[t]
}

// lookupTag resolves a tag string without interning it.
func (e *Env) lookupTag(name string) (FlowTag, bool) {
	if name == "" {
		return 0, true
	}
	id, ok := e.tagIndex[name]
	return id, ok
}
