//go:build simsequential

package sim

// forceSequentialGroups under -tags simsequential: every domain group runs
// its shards strictly sequentially on the caller's goroutine, whatever
// parallelism was requested. See domain_par.go for the default.
const forceSequentialGroups = true
