package sim

import (
	"math"
	"testing"
	"time"
)

func TestUtilizationFullyBusyPipe(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	fab.EnableAccounting()
	link := fab.NewPipe("link", 1e9, 0)
	e.Go("x", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 2e9, 0) // busy for the whole run
	})
	e.Run()
	if u := link.Utilization(); math.Abs(u-1.0) > 1e-6 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
	if b := link.BytesMoved(); math.Abs(b-2e9) > 1 {
		t.Fatalf("bytes moved = %v, want 2e9", b)
	}
}

func TestUtilizationHalfBusy(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	fab.EnableAccounting()
	link := fab.NewPipe("link", 1e9, 0)
	e.Go("x", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 1e9, 0) // 1s busy
		p.Sleep(time.Second)                   // 1s idle
		fab.Transfer(p, []*Pipe{link}, 1, 0)   // force a final advance (~1ns)
	})
	e.Run()
	u := link.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestUtilizationIdentifiesBottleneck(t *testing.T) {
	// Two-stage path where the backbone binds: it must rank first.
	e := NewEnv()
	fab := NewFabric(e)
	fab.EnableAccounting()
	nic := fab.NewPipe("nic", 10e9, 0)
	backbone := fab.NewPipe("backbone", 1e9, 0)
	e.Go("x", func(p *Proc) {
		fab.Transfer(p, []*Pipe{nic, backbone}, 1e9, 0)
	})
	e.Run()
	top := fab.TopUtilized(2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Name != "backbone" {
		t.Fatalf("bottleneck = %s, want backbone", top[0].Name)
	}
	if top[0].Utilization < 0.99 {
		t.Fatalf("backbone utilization = %v", top[0].Utilization)
	}
	if top[1].Utilization > 0.15 {
		t.Fatalf("nic utilization = %v, want ~0.1", top[1].Utilization)
	}
}

func TestAccountingOffCostsNothing(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	e.Go("x", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 1e9, 0)
	})
	e.Run()
	if link.Utilization() != 0 {
		t.Fatal("utilization accrued without EnableAccounting")
	}
	if len(fab.TopUtilized(5)) != 0 {
		t.Fatal("report non-empty without accounting")
	}
}

func TestTopUtilizedDeterministicOrder(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	fab.EnableAccounting()
	a := fab.NewPipe("a", 1e9, 0)
	b := fab.NewPipe("b", 1e9, 0)
	e.Go("x", func(p *Proc) {
		fl1 := fab.StartFlow([]*Pipe{a}, 1e9, 0)
		fl2 := fab.StartFlow([]*Pipe{b}, 1e9, 0)
		fl1.Done().Wait(p)
		fl2.Done().Wait(p)
	})
	e.Run()
	top := fab.TopUtilized(0)
	if len(top) != 2 || top[0].Name != "a" || top[1].Name != "b" {
		t.Fatalf("tie-break order = %v, want a then b", top)
	}
}
