// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel follows the classic process-interaction style (SimPy, SIMULA):
// simulated activities are ordinary Go functions running on goroutines, but
// the scheduler guarantees that at most one process executes at any moment
// and that processes resume in a total order defined by (virtual time,
// scheduling sequence number). Together with seeded pseudo-randomness this
// makes every simulation run bit-for-bit reproducible.
//
// The kernel provides three families of primitives:
//
//   - Processes and timers: Env.Go, Proc.Sleep, Event (one-shot signal).
//   - Queueing resources: Resource (FIFO counting semaphore) and Queue
//     (bounded producer/consumer buffer).
//   - Bandwidth: Fabric and Pipe, a global max–min fair-share flow solver
//     used to model network links, device channels and fabrics.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Using an integer representation keeps event ordering exact.
type Time int64

// Duration is a span of virtual time. It aliases time.Duration so that the
// familiar constants (time.Millisecond, ...) can be used directly.
type Duration = time.Duration

// Common durations re-exported for convenience in simulation code.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return fmt.Sprintf("t=%s", Duration(t)) }
