//go:build !simreference

package sim

// eventQueue selects the scheduler implementation at build time. The
// default is the calendar-queue hybrid; `go build -tags simreference`
// substitutes the seed's binary heap (refQueue) so any behavioral
// divergence shows up as a golden or test failure rather than silent drift.
type eventQueue = calQueue
