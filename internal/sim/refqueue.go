package sim

// refQueue is the reference scheduler: the seed's plain binary-heap
// calendar with the pooled-event lifecycle layered on top. It produces the
// identical (at, seq) pop order as calQueue and stays compiled
// unconditionally — the differential tests (wheel_test.go) drive both
// implementations in lockstep, and building with `-tags simreference` swaps
// it in as the Env's scheduler wholesale, which lets the whole test suite
// (goldens included) double as an end-to-end equivalence check.
type refQueue struct {
	h    eventHeap
	pool eventPool
}

func (q *refQueue) alloc() *timedEvent     { return q.pool.get() }
func (q *refQueue) release(ev *timedEvent) { q.pool.put(ev) }
func (q *refQueue) live() int              { return q.h.len() }

func (q *refQueue) insert(ev *timedEvent) { q.h.push(ev) }

func (q *refQueue) nextAt() (Time, bool) {
	if q.h.len() == 0 {
		return 0, false
	}
	return q.h.peek().at, true
}

func (q *refQueue) pop(limit Time) *timedEvent {
	if q.h.len() == 0 || q.h.peek().at > limit {
		return nil
	}
	ev := q.h.pop()
	ev.gen++
	return ev
}

func (q *refQueue) cancel(ev *timedEvent) {
	if ev.idx < 0 {
		return
	}
	q.h.remove(ev.idx)
	ev.gen++
	q.pool.put(ev)
}
