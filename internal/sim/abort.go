package sim

// Abort is a request-scoped cancellation token: the kernel half of the
// client resilience layer's deadline/hedging support. A coordinator (a
// deadline timer callback, a hedge arbiter) fires the token once; every
// process carrying it observes the firing at its next cancellation point
// and unwinds, and any in-flight fabric transfer registered on the token is
// removed from its flow class immediately, returning its bandwidth to the
// fair-share pool.
//
// Tokens are single-threaded simulation state like everything else in the
// kernel: they are created, fired and polled only from simulated processes
// and scheduler callbacks, which the Env serializes. Firing is idempotent,
// and a nil *Abort is a valid "never aborted" token — all methods are
// nil-safe, so unpoliced requests pay one nil check and nothing else.
type Abort struct {
	fired bool
	// cancels holds the cancellation hooks of in-flight blocking operations.
	// Hooks are never deregistered: each one is a no-op once its operation
	// completed, and the slice dies with the request (or is truncated by
	// Reset when the token is pooled). A request accumulates one hook per
	// operation it starts, which is bounded by its op count — never by
	// simulation length.
	cancels []func()
	// flows holds the closure-free form of the dominant hook: in-flight
	// fabric transfers registered with onFireFlow. Each entry snapshots the
	// flow's pool generation, so a hook outliving its (completed, recycled)
	// flow can never abort the pooled object's next incarnation.
	flows []flowRef
}

// flowRef pins one in-flight fabric flow to an abort token.
type flowRef struct {
	fab *Fabric
	fl  *Flow
	gen uint64
}

// NewAbort returns an unfired token.
func NewAbort() *Abort { return &Abort{} }

// Reset returns a token to the unfired state with no registered hooks, so
// pooled request records can reuse one token allocation per lifecycle. The
// caller owns the proof that no in-flight operation still carries the
// token — for the request pool that is the record's live-attempt count.
func (a *Abort) Reset() {
	a.fired = false
	a.cancels = a.cancels[:0]
	a.flows = a.flows[:0]
}

// Fired reports whether the token has fired. Nil-safe.
func (a *Abort) Fired() bool { return a != nil && a.fired }

// Fire triggers the token: every registered cancellation hook runs (in
// registration order, deterministically) and subsequent Fired calls report
// true. Firing twice — or firing a nil token — is a no-op.
func (a *Abort) Fire() {
	if a == nil || a.fired {
		return
	}
	a.fired = true
	cancels := a.cancels
	a.cancels = a.cancels[:0]
	for _, fn := range cancels {
		fn()
	}
	flows := a.flows
	a.flows = a.flows[:0]
	for _, fr := range flows {
		if fr.fl.gen == fr.gen {
			fr.fab.AbortFlow(fr.fl)
		}
	}
}

// OnFire registers a cancellation hook. If the token already fired the hook
// runs immediately; otherwise it runs (once) when Fire is called. Hooks
// must tolerate running after their operation completed on its own.
func (a *Abort) OnFire(fn func()) {
	if a == nil {
		return
	}
	if a.fired {
		fn()
		return
	}
	a.cancels = append(a.cancels, fn)
}

// onFireFlow registers cancellation of an in-flight fabric flow: the
// closure-free fast path behind Transfer. Flow hooks run after the generic
// cancels, in registration order; in practice a token carries one kind or
// the other. The generation snapshot makes a hook that outlives its flow's
// pooled lifetime an explicit no-op.
func (a *Abort) onFireFlow(f *Fabric, fl *Flow) {
	if a == nil {
		return
	}
	if a.fired {
		f.AbortFlow(fl)
		return
	}
	a.flows = append(a.flows, flowRef{fab: f, fl: fl, gen: fl.gen})
}

// SetAbort attaches a cancellation token to the process: blocking
// operations that support cancellation (fabric transfers, retry backoff
// loops, multi-op client streams) poll it and unwind early once it fires.
// nil detaches. The token is carried like the flow tag — per process, not
// inherited by processes this one spawns; spawners propagate it explicitly
// when a child acts on the request's behalf.
func (p *Proc) SetAbort(a *Abort) { p.abort = a }

// AbortSignal returns the process's attached token (nil when none).
func (p *Proc) AbortSignal() *Abort { return p.abort }

// Aborted reports whether the process carries a fired abort token.
func (p *Proc) Aborted() bool { return p.abort != nil && p.abort.fired }

// AbortFlow removes an in-flight flow from the fabric before it completes:
// the flow leaves its class, its pipes' flow counts drop, the region is
// re-solved, and the flow's done event fires so its waiter unwinds. Bytes
// already moved stay moved (and stay attributed to the flow's tag) — an
// aborted transfer wasted real bandwidth, which is exactly what makes
// deadline-abandoned work expensive in a retry storm. Aborting a flow that
// already completed is a no-op, so cancellation hooks may race benignly
// with normal completion.
func (f *Fabric) AbortFlow(fl *Flow) {
	if fl.done.fired {
		return
	}
	f.advance()
	c := fl.class
	c.removeMember(fl)
	c.count--
	for _, pp := range c.pipes {
		pp.nflows--
		f.touch(pp)
	}
	if c.count == 0 {
		f.retireClass(c)
	}
	f.liveFlows--
	f.markDirty()
	fl.done.Fire()
	f.releaseFlow(fl)
}
