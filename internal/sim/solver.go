package sim

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// flowClass aggregates all live flows that share an identical signature:
// the same ordered pipe path and the same per-flow rate cap. Max–min fair
// sharing gives such flows identical rates at every instant, so the solver
// treats the whole group as one variable with a multiplicity count — the
// 5632 IOR rank streams of a 128-node Figure 2a point collapse into a
// handful of classes.
//
// Per-flow byte accounting stays exact through the work integral: work is
// the number of bytes served to *each* member since the class was created.
// A flow of S bytes joining when the integral is W completes when work
// reaches W+S; members therefore complete in target order, tracked by a
// min-heap.
type flowClass struct {
	pipes   []*Pipe
	slots   []int // index of this class in pipes[i].classes (backrefs)
	rateCap float64
	tag     FlowTag // attribution tag; part of the signature (0 = untagged)
	key     string
	index   int // position in fabric.classes (backref for swap-remove)

	count int     // live member flows
	rate  float64 // per-flow allocated rate from the last solve, B/s
	work  float64 // bytes served per member since class creation

	// members is a min-heap of live flows ordered by (target, seq).
	members []*Flow

	// Resurrection cache state (see retireClass): a dead class is retired
	// from the solver but keeps its classIndex slot so the next identical
	// signature revives it instead of allocating afresh. deadSeq stamps the
	// retirement that parked it, so the eviction FIFO can tell whether its
	// entry is still the one that owns the index slot.
	dead    bool
	deadSeq uint64

	// solver scratch
	frozen   bool
	visitGen uint64
}

// deadClassEntry is one parked class in the fabric's bounded resurrection
// FIFO. seq must match the class's deadSeq for the entry to still own it —
// a class that was resurrected and re-retired has a newer entry.
type deadClassEntry struct {
	c   *flowClass
	seq uint64
}

// deadClassCap bounds how many retired classes keep their classIndex slots
// warm. Steady request traffic cycles through a handful of signatures;
// 256 covers large multi-tenant sweeps while keeping worst-case retained
// memory trivial.
const deadClassCap = 256

// describe names the class for panic messages.
func (c *flowClass) describe() string {
	return fmt.Sprintf("%d flow(s) cap=%g over pipes [%s]",
		c.count, c.rateCap, strings.Join(pipeNames(c.pipes), " "))
}

// classFor returns the live class for (pipes, rateCap, tag), creating and
// registering it if none exists. The signature key is the pipe id sequence
// plus the cap bits plus the fixed-width interned tag handle; lookup is
// allocation-free on the hit path. A hit on a dead (retired, cached) class
// resurrects it: zeroed work/rate and re-registered with its pipes, which is
// observationally identical to a freshly created class.
func (f *Fabric) classFor(pipes []*Pipe, rateCap float64, tag FlowTag) *flowClass {
	if tag > 0 {
		for int(tag) >= len(f.tagAcc) {
			f.tagAcc = append(f.tagAcc, 0)
		}
	}
	buf := f.keyBuf[:0]
	for _, p := range pipes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.id))
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rateCap))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(tag))
	f.keyBuf = buf
	if c, ok := f.classIndex[string(buf)]; ok {
		if c.dead {
			f.resurrectClass(c)
		}
		return c
	}
	c := &flowClass{
		pipes:   append([]*Pipe(nil), pipes...),
		slots:   make([]int, len(pipes)),
		rateCap: rateCap,
		tag:     tag,
		key:     string(buf),
		index:   len(f.classes),
	}
	for i, p := range c.pipes {
		c.slots[i] = len(p.classes)
		p.classes = append(p.classes, c)
	}
	f.classes = append(f.classes, c)
	f.classIndex[c.key] = c
	return c
}

// resurrectClass re-registers a dead cached class exactly as classFor would
// register a fresh one: work and rate restart from zero (the work integral
// is defined per class lifetime), and the class re-enters each pipe's class
// list and the fabric class list at the positions a new class would take.
// Its stale FIFO entry is left behind; the deadSeq mismatch makes eviction
// skip it.
func (f *Fabric) resurrectClass(c *flowClass) {
	c.dead = false
	c.work = 0
	c.rate = 0
	c.frozen = false
	c.index = len(f.classes)
	for i, p := range c.pipes {
		c.slots[i] = len(p.classes)
		p.classes = append(p.classes, c)
	}
	f.classes = append(f.classes, c)
}

// retireClass unregisters an empty class from its pipes and the class list.
// Swap-remove keeps the deterministic order property: the resulting order
// depends only on the (deterministic) sequence of insertions and removals,
// never on map iteration. The class keeps its classIndex slot and parks in
// the bounded resurrection FIFO; only eviction from the FIFO finally drops
// the index entry (and only if the class was not resurrected since).
func (f *Fabric) retireClass(c *flowClass) {
	for i, p := range c.pipes {
		slot := c.slots[i]
		last := len(p.classes) - 1
		moved := p.classes[last]
		p.classes[slot] = moved
		p.classes[last] = nil
		p.classes = p.classes[:last]
		if slot != last {
			// Backpatch the moved class's slot for this pipe. A class may
			// cross the same pipe more than once; fix the slot that pointed
			// at the vacated position.
			for j, q := range moved.pipes {
				if q == p && moved.slots[j] == last {
					moved.slots[j] = slot
					break
				}
			}
		}
	}
	last := len(f.classes) - 1
	moved := f.classes[last]
	f.classes[c.index] = moved
	moved.index = c.index
	f.classes[last] = nil
	f.classes = f.classes[:last]

	c.dead = true
	c.deadSeq = f.deadSeq
	f.deadSeq++
	f.deadClasses = append(f.deadClasses, deadClassEntry{c: c, seq: c.deadSeq})
	if len(f.deadClasses)-f.deadHead > deadClassCap {
		victim := f.deadClasses[f.deadHead]
		f.deadClasses[f.deadHead] = deadClassEntry{}
		f.deadHead++
		if victim.c.dead && victim.c.deadSeq == victim.seq {
			delete(f.classIndex, victim.c.key)
		}
		// Compact once the dead prefix dominates, so the slice does not
		// grow without bound under churn.
		if f.deadHead >= deadClassCap {
			n := copy(f.deadClasses, f.deadClasses[f.deadHead:])
			for i := n; i < len(f.deadClasses); i++ {
				f.deadClasses[i] = deadClassEntry{}
			}
			f.deadClasses = f.deadClasses[:n]
			f.deadHead = 0
		}
	}
}

// pushMember adds a flow to the class completion heap.
func (c *flowClass) pushMember(fl *Flow) {
	c.count++
	c.members = append(c.members, fl)
	i := len(c.members) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !memberLess(c.members[i], c.members[parent]) {
			break
		}
		c.members[i], c.members[parent] = c.members[parent], c.members[i]
		i = parent
	}
}

// popMember removes and returns the earliest-finishing member.
func (c *flowClass) popMember() *Flow {
	top := c.members[0]
	last := len(c.members) - 1
	c.members[0] = c.members[last]
	c.members[last] = nil
	c.members = c.members[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && memberLess(c.members[l], c.members[smallest]) {
			smallest = l
		}
		if r < last && memberLess(c.members[r], c.members[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		c.members[i], c.members[smallest] = c.members[smallest], c.members[i]
		i = smallest
	}
	return top
}

// removeMember deletes an arbitrary live flow from the class completion
// heap (flow abort). Aborts are rare next to completions, so the linear
// member scan is fine; the heap property is restored with one sift from the
// vacated slot. The caller adjusts count and pipe bookkeeping.
func (c *flowClass) removeMember(fl *Flow) {
	for i, m := range c.members {
		if m != fl {
			continue
		}
		last := len(c.members) - 1
		c.members[i] = c.members[last]
		c.members[last] = nil
		c.members = c.members[:last]
		if i < last {
			c.fixMember(i)
		}
		return
	}
	panic("sim: aborted flow is not a live member of its class: " + c.describe())
}

// fixMember restores the heap property around slot i after a replacement:
// sift up if the new occupant beats its parent, otherwise sift down.
func (c *flowClass) fixMember(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !memberLess(c.members[i], c.members[parent]) {
			break
		}
		c.members[i], c.members[parent] = c.members[parent], c.members[i]
		i = parent
	}
	n := len(c.members)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && memberLess(c.members[l], c.members[smallest]) {
			smallest = l
		}
		if r < n && memberLess(c.members[r], c.members[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		c.members[i], c.members[smallest] = c.members[smallest], c.members[i]
		i = smallest
	}
}

// memberLess orders members by completion target, breaking ties by start
// order so same-instant completions fire deterministically.
func memberLess(a, b *Flow) bool {
	if a.target != b.target {
		return a.target < b.target
	}
	return a.seq < b.seq
}

// gatherRegion expands the dirty pipe set into the full connected region
// whose allocation may have changed: starting from every dirty pipe, it
// alternates pipe→classes→pipes until closed. Pipes and classes outside
// the region provably keep their previous rates (max–min fair allocation
// decomposes by connected component), so their cached allocation stands.
//
// The traversal order is deterministic: dirty pipes in marking order,
// classes in each pipe's insertion order.
func (f *Fabric) gatherRegion() {
	f.visitGen++
	gen := f.visitGen
	rp := f.regionPipes[:0]
	rc := f.regionClasses[:0]
	for _, p := range f.dirtyPipes {
		if p.visitGen != gen {
			p.visitGen = gen
			rp = append(rp, p)
		}
		p.dirty = false
	}
	f.dirtyPipes = f.dirtyPipes[:0]
	for i := 0; i < len(rp); i++ {
		for _, c := range rp[i].classes {
			if c.visitGen == gen {
				continue
			}
			c.visitGen = gen
			rc = append(rc, c)
			for _, q := range c.pipes {
				if q.visitGen != gen {
					q.visitGen = gen
					rp = append(rp, q)
				}
			}
		}
	}
	f.regionPipes = rp
	f.regionClasses = rc
}

// solve computes the exact max–min fair allocation of the dirty region by
// progressive filling over flow classes. Cost per round is O(region pipes +
// region classes); the number of member flows only enters through O(1)
// multiplicity arithmetic.
func (f *Fabric) solve() {
	if len(f.dirtyPipes) == 0 {
		return
	}
	f.gatherRegion()
	if len(f.regionClasses) == 0 {
		return
	}
	unfrozenFlows := 0
	for _, p := range f.regionPipes {
		p.remCap = p.capacity
		p.unfrozen = 0
	}
	for _, c := range f.regionClasses {
		c.frozen = false
		c.rate = 0
		unfrozenFlows += c.count
		for _, p := range c.pipes {
			p.unfrozen += c.count
		}
	}
	for unfrozenFlows > 0 {
		// The binding constraint is either the pipe with the smallest fair
		// share among unfrozen flows, or a class rate cap below every pipe
		// share on its path.
		share := math.Inf(1)
		for _, p := range f.regionPipes {
			if p.unfrozen == 0 {
				continue
			}
			if s := p.remCap / float64(p.unfrozen); s < share {
				share = s
			}
		}
		progressed := false
		// First freeze classes whose own cap binds below the global minimum
		// share: they cannot use their full fair allocation anywhere.
		for _, c := range f.regionClasses {
			if c.frozen || c.rateCap <= 0 || c.rateCap > share {
				continue
			}
			f.freeze(c, c.rateCap)
			unfrozenFlows -= c.count
			progressed = true
		}
		if progressed {
			continue // shares changed; recompute
		}
		// Otherwise freeze all classes crossing a binding pipe at the share.
		for _, p := range f.regionPipes {
			if p.unfrozen == 0 {
				continue
			}
			if p.remCap/float64(p.unfrozen) > share*(1+1e-12) {
				continue
			}
			for _, c := range p.classes {
				if c.frozen {
					continue
				}
				f.freeze(c, share)
				unfrozenFlows -= c.count
				progressed = true
			}
		}
		if !progressed {
			panic("sim: fair-share solver failed to progress")
		}
	}
}

func (f *Fabric) freeze(c *flowClass, rate float64) {
	c.frozen = true
	c.rate = rate
	take := rate * float64(c.count)
	for _, p := range c.pipes {
		p.remCap -= take
		if p.remCap < 0 {
			p.remCap = 0
		}
		p.unfrozen -= c.count
	}
}
