package sim

// timedEvent is an entry in the event calendar: a closure to run at a given
// virtual time. Events scheduled for the same time run in scheduling order
// (seq), which makes the calendar a total order and the simulation
// deterministic.
type timedEvent struct {
	at  Time
	seq uint64
	fn  func()
	// idx is the event's position in the heap, or -1 once it has been
	// popped or cancelled. Tracking it makes Cancel a true O(log n)
	// removal, so Pending() never counts dead events — periodic observers
	// (the invariant sampler) re-arm off Pending() and must not be kept
	// alive by a cancelled far-future timer.
	idx int
}

// eventHeap is a binary min-heap ordered by (at, seq). It implements the
// subset of container/heap we need, specialized to avoid interface
// allocations on the hot path.
type eventHeap struct {
	items []*timedEvent
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].idx = i
	h.items[j].idx = j
}

func (h *eventHeap) push(ev *timedEvent) {
	ev.idx = len(h.items)
	h.items = append(h.items, ev)
	h.up(len(h.items) - 1)
}

func (h *eventHeap) pop() *timedEvent {
	n := len(h.items) - 1
	h.swap(0, n)
	ev := h.items[n]
	h.items[n] = nil
	h.items = h.items[:n]
	if n > 0 {
		h.down(0)
	}
	ev.idx = -1
	return ev
}

// remove deletes the event at heap position i. The relative order of the
// remaining events is untouched, so cancellation never perturbs the
// deterministic schedule.
func (h *eventHeap) remove(i int) {
	n := len(h.items) - 1
	ev := h.items[i]
	if i != n {
		h.swap(i, n)
	}
	h.items[n] = nil
	h.items = h.items[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
	ev.idx = -1
}

// peek returns the earliest event without removing it.
func (h *eventHeap) peek() *timedEvent { return h.items[0] }

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
