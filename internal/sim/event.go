package sim

import "slices"

// Event kinds. The scheduler devirtualizes its two hottest callbacks —
// resuming a parked process and starting a new one — into explicit kinds, so
// a timer fire on the no-cancel fast path never touches a closure.
const (
	evFn     = uint8(iota) // run fn()
	evResume               // resume the parked process proc
	evStart                // run proc.fn on a (possibly recycled) worker goroutine
	evDead                 // cancelled in place; swept and recycled at drain time
)

// Sentinel values for timedEvent.idx recording where the event currently
// lives. Values >= 0 are positions in an eventHeap.
const (
	evIdxNone   = -1 // popped, cancelled, or sitting in the free pool
	evIdxBucket = -2 // sitting in a calendar-queue bucket
)

// timedEvent is an entry in the event calendar. Events scheduled for the
// same time run in scheduling order (seq), which makes the calendar a total
// order and the simulation deterministic.
//
// Events are pooled: once fired or cancelled they return to a free list and
// are reused by the next Schedule. gen is bumped on every fire and cancel,
// so a stale EventHandle held across the event's recycling can never cancel
// the pooled object's next incarnation.
type timedEvent struct {
	at   Time
	seq  uint64
	gen  uint64
	kind uint8
	// idx is the event's position in a heap, or one of the evIdx sentinels.
	// Tracking it makes Cancel a true removal, so Pending() never counts
	// dead events — periodic observers (the invariant sampler) re-arm off
	// Pending() and must not be kept alive by a cancelled far-future timer.
	idx  int
	fn   func()
	proc *Proc
}

// before reports whether a precedes b in the calendar's total order.
func (a *timedEvent) before(b *timedEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// sortEvents orders a bucket by (at, seq). The key is unique per event, so
// any comparison sort yields the same — deterministic — permutation.
func sortEvents(items []*timedEvent) {
	slices.SortFunc(items, func(a, b *timedEvent) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		case a.seq < b.seq:
			return -1
		default:
			return 1
		}
	})
}

// eventPool is a free list of timedEvents. The simulation is single-threaded
// by construction (one process runs at a time), so a plain slice beats
// sync.Pool: no locks, no per-P caches, fully deterministic reuse order.
type eventPool struct {
	free []*timedEvent
}

func (p *eventPool) get() *timedEvent {
	if n := len(p.free); n > 0 {
		ev := p.free[n-1]
		p.free = p.free[:n-1]
		return ev
	}
	return &timedEvent{idx: evIdxNone}
}

func (p *eventPool) put(ev *timedEvent) {
	ev.fn = nil
	ev.proc = nil
	ev.idx = evIdxNone
	p.free = append(p.free, ev)
}

// eventHeap is a binary min-heap ordered by (at, seq). It implements the
// subset of container/heap we need, specialized to avoid interface
// allocations. The calendar queue uses it for far-future overflow events;
// the simreference build uses it as the whole scheduler.
type eventHeap struct {
	items []*timedEvent
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool { return h.items[i].before(h.items[j]) }

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].idx = i
	h.items[j].idx = j
}

func (h *eventHeap) push(ev *timedEvent) {
	ev.idx = len(h.items)
	h.items = append(h.items, ev)
	h.up(len(h.items) - 1)
}

func (h *eventHeap) pop() *timedEvent {
	n := len(h.items) - 1
	h.swap(0, n)
	ev := h.items[n]
	h.items[n] = nil
	h.items = h.items[:n]
	if n > 0 {
		h.down(0)
	}
	ev.idx = evIdxNone
	return ev
}

// remove deletes the event at heap position i. The relative order of the
// remaining events is untouched, so cancellation never perturbs the
// deterministic schedule.
func (h *eventHeap) remove(i int) {
	n := len(h.items) - 1
	ev := h.items[i]
	if i != n {
		h.swap(i, n)
	}
	h.items[n] = nil
	h.items = h.items[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
	ev.idx = evIdxNone
}

// peek returns the earliest event without removing it.
func (h *eventHeap) peek() *timedEvent { return h.items[0] }

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
