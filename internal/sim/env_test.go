package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("new env clock = %v, want 0", e.Now())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEnv()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end time = %v, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEnv()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 100; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events ran out of scheduling order at %d: %v", i, got[:i+1])
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEnv()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(50, func() {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEnv()
	fired := false
	h := e.Schedule(10, func() { fired = true })
	h.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEnv()
	var wakeTimes []Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(100 * time.Millisecond)
		wakeTimes = append(wakeTimes, p.Now())
		p.Sleep(50 * time.Millisecond)
		wakeTimes = append(wakeTimes, p.Now())
	})
	e.Run()
	if len(wakeTimes) != 2 {
		t.Fatalf("wakeups = %d, want 2", len(wakeTimes))
	}
	if wakeTimes[0] != Time(100*time.Millisecond) || wakeTimes[1] != Time(150*time.Millisecond) {
		t.Fatalf("wake times = %v", wakeTimes)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEnv()
	var order []string
	mk := func(name string, d Duration) {
		e.Go(name, func(p *Proc) {
			p.Sleep(d)
			order = append(order, name)
		})
	}
	mk("c", 30)
	mk("a", 10)
	mk("b", 20)
	e.Run()
	if fmt.Sprint(order) != "[a b c]" {
		t.Fatalf("order = %v", order)
	}
}

func TestEventBroadcast(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e)
	woke := 0
	for i := 0; i < 5; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			ev.Wait(p)
			woke++
			if p.Now() != Time(42) {
				t.Errorf("woke at %v, want 42", p.Now())
			}
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Sleep(42)
		ev.Fire()
	})
	e.Run()
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e)
	ev.Fire()
	ran := false
	e.Go("late", func(p *Proc) {
		ev.Wait(p) // must not block
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("waiter on fired event blocked")
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEnv()
	wg := NewWaitGroup(e)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		d := Duration(i) * 10
		wg.Go(fmt.Sprintf("w%d", i), func(p *Proc) { p.Sleep(d) })
	}
	e.Go("joiner", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != 30 {
		t.Fatalf("joiner resumed at %v, want 30", doneAt)
	}
}

func TestProcDoneJoin(t *testing.T) {
	e := NewEnv()
	worker := e.Go("worker", func(p *Proc) { p.Sleep(77) })
	var joined Time
	e.Go("joiner", func(p *Proc) {
		worker.Done.Wait(p)
		joined = p.Now()
	})
	e.Run()
	if joined != 77 {
		t.Fatalf("joined at %v, want 77", joined)
	}
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEnv()
	ev := NewEvent(e)
	e.Go("stuck", func(p *Proc) { ev.Wait(p) }) // nobody fires ev
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEnv()
	var ticks []Time
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(10)
			ticks = append(ticks, p.Now())
		}
	})
	e.RunUntil(35)
	if len(ticks) != 3 {
		t.Fatalf("ticks before t=35: %d, want 3", len(ticks))
	}
	if e.Now() != 35 {
		t.Fatalf("clock = %v, want exactly 35", e.Now())
	}
}

// TestDeterminism runs the same mixed workload twice and requires identical
// traces: the kernel must not leak goroutine or map scheduling randomness.
func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		var log []string
		res := NewResource(e, "srv", 2)
		q := NewQueue(e, "q", 4)
		fab := NewFabric(e)
		link := fab.NewPipe("link", 1e9, 0)
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("p%d", i)
			i := i
			e.Go(name, func(p *Proc) {
				p.Sleep(Duration(i%3) * time.Millisecond)
				res.Acquire(p, 1)
				fab.Transfer(p, []*Pipe{link}, 1e6*float64(1+i), 0)
				res.Release(1)
				q.Put(p, i)
				log = append(log, fmt.Sprintf("%s@%d", name, p.Now()))
			})
		}
		e.Go("drain", func(p *Proc) {
			for i := 0; i < 8; i++ {
				v, ok := q.Get(p)
				if !ok {
					t.Fatal("queue closed early")
				}
				log = append(log, fmt.Sprintf("got%v@%d", v, p.Now()))
			}
		})
		e.Run()
		return log
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("non-deterministic runs:\n%v\n%v", a, b)
	}
}

// Property: for any set of sleep durations, processes complete in sorted
// order of duration and the final clock equals the maximum.
func TestSleepOrderingProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 64 {
			durs = durs[:64]
		}
		e := NewEnv()
		var finished []Duration
		for i, d := range durs {
			d := Duration(d)
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				finished = append(finished, d)
			})
		}
		end := e.Run()
		var max Duration
		for i, d := range finished {
			if d > max {
				max = d
			}
			if i > 0 && finished[i-1] > d {
				return false // completed out of order
			}
		}
		return end == Time(max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
