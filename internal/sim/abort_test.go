package sim

import (
	"testing"
	"time"
)

// An aborted transfer must unwind its waiter immediately and return its
// bandwidth: the surviving flow speeds up from the abort instant.
func TestAbortFlowFreesBandwidth(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	ab := NewAbort()
	var victimEnd, survivorEnd Time
	e.Go("victim", func(p *Proc) {
		p.SetAbort(ab)
		fab.Transfer(p, []*Pipe{link}, 1e9, 0)
		victimEnd = p.Now()
	})
	e.Go("survivor", func(p *Proc) {
		fab.Transfer(p, []*Pipe{link}, 1e9, 0)
		survivorEnd = p.Now()
	})
	e.After(Duration(250*time.Millisecond), ab.Fire)
	e.Run()
	if got := Duration(victimEnd).Seconds(); !approx(got, 0.25, 1e-6) {
		t.Fatalf("victim unwound at %v, want 250ms", Duration(victimEnd))
	}
	// Survivor: 125 MB delivered by t=0.25s at the half share, remaining
	// 875 MB at full 1 GB/s -> 0.25 + 0.875 = 1.125s.
	if got := Duration(survivorEnd).Seconds(); !approx(got, 1.125, 1e-6) {
		t.Fatalf("survivor finished at %v, want 1.125s", Duration(survivorEnd))
	}
	if fab.liveFlows != 0 {
		t.Fatalf("liveFlows = %d after drain, want 0", fab.liveFlows)
	}
	if link.ActiveFlows() != 0 {
		t.Fatalf("pipe still reports %d active flows", link.ActiveFlows())
	}
}

// Aborting before the transfer starts must skip it entirely, and a token
// fired during the path's propagation latency must stop the flow from ever
// joining the fabric.
func TestAbortBeforeAndDuringLatency(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, Duration(10*time.Millisecond))
	pre := NewAbort()
	pre.Fire()
	var preEnd Time
	e.Go("pre", func(p *Proc) {
		p.SetAbort(pre)
		fab.Transfer(p, []*Pipe{link}, 1e9, 0)
		preEnd = p.Now()
	})
	mid := NewAbort()
	var midEnd Time
	e.Go("mid", func(p *Proc) {
		p.SetAbort(mid)
		fab.Transfer(p, []*Pipe{link}, 1e9, 0)
		midEnd = p.Now()
	})
	e.After(Duration(5*time.Millisecond), mid.Fire)
	e.Run()
	if preEnd != 0 {
		t.Fatalf("pre-fired abort still blocked until %v", Duration(preEnd))
	}
	if got := Duration(midEnd).Seconds(); !approx(got, 0.010, 1e-9) {
		t.Fatalf("latency-phase abort unwound at %v, want 10ms", Duration(midEnd))
	}
	if fab.liveFlows != 0 {
		t.Fatalf("aborted transfers left %d live flows", fab.liveFlows)
	}
}

// Abort after completion is a no-op, double-fire is a no-op, and late
// cancellation hooks run immediately.
func TestAbortIdempotence(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	ab := NewAbort()
	var end Time
	e.Go("xfer", func(p *Proc) {
		p.SetAbort(ab)
		fab.Transfer(p, []*Pipe{link}, 1e8, 0) // finishes at 100ms
		end = p.Now()
	})
	e.After(Duration(500*time.Millisecond), func() {
		ab.Fire()
		ab.Fire()
	})
	e.Run()
	if got := Duration(end).Seconds(); !approx(got, 0.1, 1e-6) {
		t.Fatalf("completed transfer perturbed by late abort: end %v", Duration(end))
	}
	if !ab.Fired() {
		t.Fatal("token did not report fired")
	}
	ran := false
	ab.OnFire(func() { ran = true })
	if !ran {
		t.Fatal("hook registered after firing did not run immediately")
	}
	var nilAb *Abort
	if nilAb.Fired() {
		t.Fatal("nil token reports fired")
	}
	nilAb.Fire() // must not panic
	nilAb.OnFire(func() { t.Fatal("nil token ran a hook") })
}

// Aborting one member of a multi-flow class keeps the class's remaining
// members exact: three same-signature flows, the middle-started one
// aborted, the other two still complete at the correct instants.
func TestAbortWithinFlowClass(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 3e9, 0)
	ab := NewAbort()
	ends := make([]Time, 3)
	sizes := []float64{3e9, 6e9, 3e9} // flow 1 is the abort victim
	for i := range sizes {
		i := i
		e.Go("xfer", func(p *Proc) {
			if i == 1 {
				p.SetAbort(ab)
			}
			fab.Transfer(p, []*Pipe{link}, sizes[i], 0)
			ends[i] = p.Now()
		})
	}
	e.After(Duration(time.Second), ab.Fire)
	e.Run()
	// Until t=1s each of the three class members runs at 1 GB/s. The abort
	// removes flow 1; flows 0 and 2 each have 2 GB left and run at 1.5 GB/s,
	// finishing together at 1s + 2/1.5 s.
	if got := Duration(ends[1]).Seconds(); !approx(got, 1.0, 1e-6) {
		t.Fatalf("victim unwound at %v, want 1s", Duration(ends[1]))
	}
	want := 1.0 + 2.0/1.5
	for _, i := range []int{0, 2} {
		if got := Duration(ends[i]).Seconds(); !approx(got, want, 1e-6) {
			t.Fatalf("survivor %d finished at %v, want %.4fs", i, Duration(ends[i]), want)
		}
	}
}

// The calendar must drain to the same state whether a request is aborted
// via the token or runs to completion with no token attached — i.e. the
// abort path leaves no stray kernel state behind.
func TestAbortLeavesNoResidue(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	for i := 0; i < 8; i++ {
		ab := NewAbort()
		e.Go("xfer", func(p *Proc) {
			p.SetAbort(ab)
			fab.Transfer(p, []*Pipe{link}, 1e9, 0)
		})
		e.After(Duration((i+1)*100)*Duration(time.Millisecond), ab.Fire)
	}
	e.Run()
	if fab.liveFlows != 0 || len(fab.classes) != 0 {
		t.Fatalf("fabric retained %d flows / %d classes", fab.liveFlows, len(fab.classes))
	}
	if e.Pending() != 0 {
		t.Fatalf("calendar retained %d events", e.Pending())
	}
}
