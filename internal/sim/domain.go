package sim

import (
	"fmt"
	"math"
	"runtime"
	"slices"
)

// Domain-parallel execution: one simulation partitioned into shards that
// advance concurrently under conservative synchronization.
//
// A Shard owns a whole Env — its own virtual clock, timer wheel, event pool
// and process set — so shard-local execution is exactly the single-threaded
// kernel, untouched. Shards interact only through timestamped cross-shard
// messages carried over declared Links, and every link has a positive
// latency. The minimum link latency is the group's lookahead L: a shard at
// virtual time t cannot affect any other shard before t+L, which is the
// classical conservative-synchronization guarantee the coordinator exploits.
//
// The Group advances the shards in bounded windows. All shards stand at a
// common barrier time T; the coordinator delivers every message produced so
// far (each provably timestamped >= T), picks the next boundary
//
//	T' = min(until, max(T+L, earliest pending event across all shards))
//
// and has every shard execute its events with timestamps <= T' — serially,
// or spread over executor goroutines when parallelism is enabled. Messages
// a shard sends during the window land in a shard-local outbox; the
// coordinator gathers them at the barrier and delivers them in the global
// (deliverAt, source shard, send seq) order before any shard moves again.
//
// Correctness of the window: a message sent at local time s carries
// deliverAt >= s+L. In a busy window every executed event has s in [T, T'],
// T' <= T+L, so deliverAt >= T+L >= T'. In an idle-skip window (T' =
// earliest pending event > T+L) the only executable events sit exactly at
// T', so deliverAt >= T'+L > T'. Either way no message is ever due before
// the barrier at which it is delivered — the simulation cannot miss or
// reorder a cross-shard interaction, and the outcome is bit-for-bit
// identical whether the windows run on one goroutine or sixteen.
//
// Determinism does not merely hold per executor count — the entire
// observable execution is independent of the executor layout. Window
// boundaries are computed from global minima, shard-local execution is
// single-threaded, and message delivery order is a sorted total order, so
// none of them can see how shards were assigned to goroutines. The lockstep
// tests and FuzzDomainsVsSequential pin exactly this property.
type Group struct {
	shards    []*Shard
	links     map[[2]int32]Duration
	executors int
	lookahead Duration

	clock     Time
	finalized bool

	// pending is the barrier-time message scratch, reused across rounds.
	pending []xmsg

	// Parallel plumbing: one command channel per executor, a shared ack
	// channel, and the last round's boundary. Executors are started lazily on
	// the first parallel round and joined by Shutdown.
	cmds    []chan Time
	acks    chan any
	started bool
}

// Shard is one partition of a domain-parallel simulation: an Env plus the
// group bookkeeping that lets it exchange timestamped messages with its
// neighbors.
type Shard struct {
	id    int32
	name  string
	env   *Env
	group *Group

	// out[i] is the latency of this shard's link to shard i (0 = no link),
	// resolved from the group's link set when the first Run finalizes the
	// topology.
	out []Duration

	// outbox collects the messages sent during the current window. Only this
	// shard's executor touches it until the barrier, where the coordinator
	// (ordered by the ack channel) drains it.
	outbox  []xmsg
	sendSeq uint64
}

// xmsg is one cross-shard message: fn runs on the destination shard's Env at
// virtual time at. (src, seq) breaks delivery ties deterministically.
type xmsg struct {
	at       Time
	src, dst int32
	seq      uint64
	fn       func()
}

// NewGroup returns an empty domain group. parallel caps the number of
// executor goroutines that advance shards concurrently: 0 means
// GOMAXPROCS, 1 means strictly sequential in-line execution (the
// differential oracle), and any value is further clamped to the shard
// count. Building with `-tags simsequential` forces 1 group-wide.
func NewGroup(parallel int) *Group {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Group{executors: parallel, links: map[[2]int32]Duration{}}
}

// AddShard registers env as one shard of the group. The Env must be
// exclusive to this shard — its clock is advanced only through the group
// from here on. Shards must all be added before the first Run.
func (g *Group) AddShard(name string, env *Env) *Shard {
	if g.finalized {
		panic("sim: AddShard after the group started running")
	}
	if env.now != 0 || env.running {
		panic("sim: shard Env must be fresh: " + name)
	}
	s := &Shard{id: int32(len(g.shards)), name: name, env: env, group: g}
	g.shards = append(g.shards, s)
	return s
}

// Name returns the shard name.
func (s *Shard) Name() string { return s.name }

// Env returns the shard's environment.
func (s *Shard) Env() *Env { return s.env }

// Link declares a one-way channel from shard a to shard b with the given
// message latency. Latency must be positive: a zero-latency link would give
// the group zero lookahead and serialize every window. Re-linking a pair
// keeps the smaller latency.
func (g *Group) Link(a, b *Shard, latency Duration) {
	if g.finalized {
		panic("sim: Link after the group started running")
	}
	if a.group != g || b.group != g {
		panic("sim: Link across groups")
	}
	if a == b {
		panic("sim: self-link: " + a.name)
	}
	if latency <= 0 {
		panic(fmt.Sprintf("sim: link latency must be positive: %s -> %s", a.name, b.name))
	}
	key := [2]int32{a.id, b.id}
	if cur, ok := g.links[key]; !ok || latency < cur {
		g.links[key] = latency
	}
}

// LinkAll declares a full bidirectional mesh over every shard at the given
// latency — the common fabric-segment topology where any rack can reach any
// other in one hop.
func (g *Group) LinkAll(latency Duration) {
	for _, a := range g.shards {
		for _, b := range g.shards {
			if a != b {
				g.Link(a, b, latency)
			}
		}
	}
}

// Lookahead returns the group's synchronization lookahead: the minimum
// declared link latency (0 before the first Run resolves the topology, or
// when the shards are unlinked and therefore independent).
func (g *Group) Lookahead() Duration { return g.lookahead }

// Now returns the group's barrier clock — the common virtual time every
// shard has reached.
func (g *Group) Now() Time { return g.clock }

// Send schedules fn to run on shard `to` at the sender's current virtual
// time plus the link latency plus extra (>= 0). It must be called from
// within the sending shard's window — a process or event callback running
// on s.Env() — and the two shards must be linked. Messages become visible
// to the destination at the next barrier; conservative synchronization
// guarantees that is always before their timestamp.
func (s *Shard) Send(to *Shard, extra Duration, fn func()) {
	if extra < 0 {
		panic("sim: negative extra send delay")
	}
	lat := Duration(0)
	if int(to.id) < len(s.out) {
		lat = s.out[to.id]
	}
	if lat <= 0 {
		panic(fmt.Sprintf("sim: no link %s -> %s", s.name, to.name))
	}
	s.outbox = append(s.outbox, xmsg{
		at:  s.env.now.Add(lat + extra),
		src: s.id, dst: to.id,
		seq: s.sendSeq,
		fn:  fn,
	})
	s.sendSeq++
}

// finalize freezes the topology: per-shard link slices and the lookahead.
func (g *Group) finalize() {
	if g.finalized {
		return
	}
	g.finalized = true
	n := len(g.shards)
	for _, s := range g.shards {
		s.out = make([]Duration, n)
	}
	for key, lat := range g.links {
		g.shards[key[0]].out[key[1]] = lat
		if g.lookahead == 0 || lat < g.lookahead {
			g.lookahead = lat
		}
	}
}

// Run advances every shard to virtual time `until` under conservative
// window synchronization and returns the barrier clock. It may be called
// repeatedly with increasing deadlines; call Shutdown when the simulation
// is over.
func (g *Group) Run(until Time) Time {
	g.finalize()
	if until < g.clock {
		panic(fmt.Sprintf("sim: group run until %v before barrier clock %v", until, g.clock))
	}
	for g.clock < until {
		g.deliver()
		boundary := g.boundary(until)
		g.advance(boundary)
		g.collect()
		g.clock = boundary
	}
	return g.clock
}

// boundary picks the next barrier time: one lookahead ahead, stretched to
// the earliest pending event when every shard is idle longer than that
// (idle skip), and capped at the deadline. With no pending events anywhere
// — and deliver() has already drained the message queue — nothing can
// happen before `until`, so the window jumps straight there.
func (g *Group) boundary(until Time) Time {
	earliest, found := Time(0), false
	for _, s := range g.shards {
		if at, ok := s.env.q.nextAt(); ok && (!found || at < earliest) {
			earliest, found = at, true
		}
	}
	if !found {
		return until
	}
	boundary := until
	if g.lookahead > 0 {
		boundary = g.clock.Add(g.lookahead)
		if boundary < g.clock { // overflow
			boundary = Time(math.MaxInt64)
		}
		if earliest > boundary {
			boundary = earliest
		}
		if boundary > until {
			boundary = until
		}
	}
	return boundary
}

// collect drains every shard's outbox into the pending set. Runs at the
// barrier, after the ack channel ordered the executors' writes.
func (g *Group) collect() {
	for _, s := range g.shards {
		g.pending = append(g.pending, s.outbox...)
		clear(s.outbox)
		s.outbox = s.outbox[:0]
	}
}

// deliver schedules every pending message on its destination shard in the
// global (deliverAt, src, seq) order — a total order, since (src, seq) is
// unique — so the destination Env's tie-breaking sequence numbers are
// assigned identically no matter how the producing windows were laid out
// across executors.
func (g *Group) deliver() {
	if len(g.pending) == 0 {
		return
	}
	slices.SortFunc(g.pending, func(a, b xmsg) int {
		switch {
		case a.at != b.at:
			if a.at < b.at {
				return -1
			}
			return 1
		case a.src != b.src:
			return int(a.src - b.src)
		case a.seq < b.seq:
			return -1
		default:
			return 1
		}
	})
	for i := range g.pending {
		m := &g.pending[i]
		dst := g.shards[m.dst]
		if m.at < dst.env.now {
			panic(fmt.Sprintf("sim: conservative synchronization violated: message from %s due %v behind %s clock %v",
				g.shards[m.src].name, m.at, dst.name, dst.env.now))
		}
		dst.env.scheduleFn(m.at, m.fn)
	}
	clear(g.pending)
	g.pending = g.pending[:0]
}

// advance runs every shard's window [clock, boundary], in-line when the
// group is sequential and over the executor goroutines otherwise.
func (g *Group) advance(boundary Time) {
	if g.parallelism() <= 1 {
		for _, s := range g.shards {
			s.env.StepUntil(boundary)
		}
		return
	}
	if !g.started {
		g.startExecutors()
	}
	for _, ch := range g.cmds {
		ch <- boundary
	}
	var failure any
	for range g.cmds {
		if v := <-g.acks; v != nil && failure == nil {
			failure = v
		}
	}
	if failure != nil {
		panic(failure)
	}
}

// parallelism is the effective executor count: the configured cap, clamped
// to the shard count, forced to 1 by the simsequential build tag.
func (g *Group) parallelism() int {
	if forceSequentialGroups {
		return 1
	}
	n := g.executors
	if n > len(g.shards) {
		n = len(g.shards)
	}
	return n
}

// startExecutors launches the worker goroutines. Executor i owns shards
// i, i+E, i+2E, ... — a static round-robin deal, so no two executors ever
// touch the same Env and the assignment needs no locking. Which executor
// advances a shard is invisible to the simulation; the deal only spreads
// wall-clock load.
func (g *Group) startExecutors() {
	g.started = true
	e := g.parallelism()
	g.acks = make(chan any)
	g.cmds = make([]chan Time, e)
	for i := range g.cmds {
		ch := make(chan Time)
		g.cmds[i] = ch
		mine := make([]*Shard, 0, (len(g.shards)+e-1)/e)
		for j := i; j < len(g.shards); j += e {
			mine = append(mine, g.shards[j])
		}
		go func() {
			for boundary := range ch {
				g.acks <- runWindow(mine, boundary)
			}
		}()
	}
}

// runWindow advances shards to the boundary, converting a model panic into
// a value the coordinator re-panics with on its own goroutine — a model bug
// inside a parallel window must surface at the Run caller, exactly as it
// does in sequential mode.
func runWindow(shards []*Shard, boundary Time) (failure any) {
	defer func() { failure = recover() }()
	for _, s := range shards {
		s.env.StepUntil(boundary)
	}
	return nil
}

// Shutdown joins the executor goroutines and dismisses every shard Env's
// pooled workers. The group cannot Run again afterwards.
func (g *Group) Shutdown() {
	if g.started {
		for _, ch := range g.cmds {
			close(ch)
		}
		g.cmds = nil
		g.started = false
	}
	for _, s := range g.shards {
		s.env.stopWorkers()
	}
}
