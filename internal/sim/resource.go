package sim

// Resource is a counting semaphore with FIFO admission, used to model
// limited-concurrency servers such as device queue depths, CPU cores on a
// storage server, or RPC service slots.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  []*resWaiter
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource returns a resource with the given capacity (> 0).
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive: " + name)
	}
	return &Resource{env: env, name: name, capacity: capacity}
}

// Capacity returns the total number of slots.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently held slots.
func (r *Resource) InUse() int { return r.inUse }

// Acquire blocks the calling process until n slots are available, then takes
// them. Requests are served strictly in arrival order, so a large request
// cannot be starved by a stream of small ones.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic("sim: invalid acquire count on " + r.name)
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, &resWaiter{p: p, n: n})
	p.park("resource " + r.name)
}

// TryAcquire takes n slots if immediately available, reporting success.
func (r *Resource) TryAcquire(n int) bool {
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return true
	}
	return false
}

// Release returns n slots and admits as many queued waiters as now fit, in
// FIFO order.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: release without acquire on " + r.name)
	}
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			break
		}
		r.inUse += w.n
		r.waiters = r.waiters[1:]
		w.p.wake()
	}
}

// Use runs fn while holding one slot.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p, 1)
	defer r.Release(1)
	fn()
}

// Queue is a bounded FIFO buffer connecting producer and consumer processes,
// used for example as the prefetch queue between DLIO I/O workers and the
// training loop. Capacity 0 is not supported (use an Event for rendezvous).
type Queue struct {
	env      *Env
	name     string
	capacity int
	items    []any
	getters  []*Proc
	putters  []*Proc
	closed   bool
}

// NewQueue returns an empty queue with the given capacity (> 0).
func NewQueue(env *Env, name string, capacity int) *Queue {
	if capacity <= 0 {
		panic("sim: queue capacity must be positive: " + name)
	}
	return &Queue{env: env, name: name, capacity: capacity}
}

// Len returns the number of buffered items.
func (q *Queue) Len() int { return len(q.items) }

// Put appends v, blocking while the queue is full. Put on a closed queue
// panics (a model bug).
func (q *Queue) Put(p *Proc, v any) {
	for len(q.items) >= q.capacity {
		if q.closed {
			panic("sim: put on closed queue " + q.name)
		}
		q.putters = append(q.putters, p)
		p.park("queue-put " + q.name)
	}
	if q.closed {
		panic("sim: put on closed queue " + q.name)
	}
	q.items = append(q.items, v)
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.wake()
	}
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. It returns ok=false when the queue is closed and drained.
func (q *Queue) Get(p *Proc) (v any, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return nil, false
		}
		q.getters = append(q.getters, p)
		p.park("queue-get " + q.name)
	}
	v = q.items[0]
	q.items = q.items[1:]
	if len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		w.wake()
	}
	return v, true
}

// Close marks the queue closed: blocked and future Gets drain remaining
// items and then return ok=false.
func (q *Queue) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, g := range q.getters {
		g.wake()
	}
	q.getters = nil
}
