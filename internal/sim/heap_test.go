package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

// Property: the event heap pops in exact (time, seq) order for any insert
// sequence, matching a reference sort.
func TestEventHeapOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var h eventHeap
		type key struct {
			at  Time
			seq uint64
		}
		var ref []key
		for i, at := range times {
			ev := &timedEvent{at: Time(at), seq: uint64(i)}
			h.push(ev)
			ref = append(ref, key{Time(at), uint64(i)})
		}
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].at != ref[b].at {
				return ref[a].at < ref[b].at
			}
			return ref[a].seq < ref[b].seq
		})
		for _, want := range ref {
			got := h.pop()
			if got.at != want.at || got.seq != want.seq {
				return false
			}
		}
		return h.len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved pushes and pops never violate the order invariant
// (each pop is >= the previous pop in (time, seq) among remaining events
// pushed before it... verified against a sorted multiset).
func TestEventHeapInterleavedProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		var h eventHeap
		seq := uint64(0)
		var lastAt Time = -1
		var lastSeq uint64
		for _, op := range ops {
			if op%3 == 0 && h.len() > 0 {
				ev := h.pop()
				if ev.at < lastAt || (ev.at == lastAt && ev.seq < lastSeq) {
					// pops may go "backwards" only when a smaller event was
					// pushed after the last pop; allow if it was pushed later
					// (seq greater than lastSeq is not a valid check here),
					// so instead verify against the heap's own minimum: the
					// popped event must have been the minimum.
					return false
				}
				lastAt, lastSeq = ev.at, ev.seq
			} else {
				// Only push events at or after the last popped time, so the
				// monotonicity check above is a true invariant (mirrors the
				// kernel, which never schedules in the past).
				at := lastAt
				if at < 0 {
					at = 0
				}
				h.push(&timedEvent{at: at + Time(op%100), seq: seq})
				seq++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
