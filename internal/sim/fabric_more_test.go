package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"
)

// TestMultiPipeConservation: flows crossing a two-stage path (per-client
// NIC then shared backbone) must, in aggregate, never exceed either
// stage's capacity and must fully use the binding stage.
func TestMultiPipeConservation(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	backbone := fab.NewPipe("backbone", 4e9, 0)
	const clients = 8
	perClient := 1e9 // NICs sum to 8 GB/s; backbone 4 GB/s binds
	bytesEach := 1e9
	var last Time
	for i := 0; i < clients; i++ {
		nic := fab.NewPipe(fmt.Sprintf("nic%d", i), perClient, 0)
		e.Go(fmt.Sprintf("c%d", i), func(p *Proc) {
			fab.Transfer(p, []*Pipe{nic, backbone}, bytesEach, 0)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	e.Run()
	makespan := Duration(last).Seconds()
	want := float64(clients) * bytesEach / 4e9
	if math.Abs(makespan-want) > 1e-6*want {
		t.Fatalf("makespan %.4fs, want %.4fs (backbone-bound)", makespan, want)
	}
}

// TestHeterogeneousFlowsMaxMin: a mix of capped, NIC-bound and free flows
// must satisfy max-min optimality: no flow can be raised without lowering
// a smaller one.
func TestHeterogeneousFlowsMaxMin(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	shared := fab.NewPipe("shared", 10e9, 0)
	slowNic := fab.NewPipe("slow-nic", 1e9, 0)

	capped := fab.StartFlow([]*Pipe{shared}, 1e15, 2e9)
	nicBound := fab.StartFlow([]*Pipe{slowNic, shared}, 1e15, 0)
	free := fab.StartFlow([]*Pipe{shared}, 1e15, 0)

	e.Go("check", func(p *Proc) {
		p.Sleep(time.Millisecond)
		// water-filling: nicBound=1, capped=2, free=10-1-2=7.
		if math.Abs(nicBound.Rate()-1e9) > 1 {
			t.Errorf("nic-bound rate = %v", nicBound.Rate())
		}
		if math.Abs(capped.Rate()-2e9) > 1 {
			t.Errorf("capped rate = %v", capped.Rate())
		}
		if math.Abs(free.Rate()-7e9) > 1 {
			t.Errorf("free rate = %v", free.Rate())
		}
	})
	e.RunUntil(Time(2 * time.Millisecond))
}

// Property: across random two-stage topologies, aggregate throughput never
// exceeds the bottleneck and every flow finishes.
func TestTwoStageThroughputProperty(t *testing.T) {
	f := func(nFlows uint8, nicCapM, backCapM uint16) bool {
		n := int(nFlows%16) + 1
		nicCap := float64(nicCapM%1000+1) * 1e7
		backCap := float64(backCapM%1000+1) * 1e7
		e := NewEnv()
		fab := NewFabric(e)
		back := fab.NewPipe("back", backCap, 0)
		bytesEach := 1e8
		finished := 0
		var last Time
		for i := 0; i < n; i++ {
			nic := fab.NewPipe(fmt.Sprintf("nic%d", i), nicCap, 0)
			e.Go(fmt.Sprintf("f%d", i), func(p *Proc) {
				fab.Transfer(p, []*Pipe{nic, back}, bytesEach, 0)
				finished++
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		e.Run()
		if finished != n {
			return false
		}
		// Aggregate throughput bound: min(n*nicCap, backCap).
		agg := float64(n) * bytesEach / Duration(last).Seconds()
		bound := math.Min(float64(n)*nicCap, backCap)
		return agg <= bound*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestStaggeredArrivalsFairness: later arrivals squeeze earlier flows and
// everything still completes with exact byte accounting.
func TestStaggeredArrivalsFairness(t *testing.T) {
	e := NewEnv()
	fab := NewFabric(e)
	link := fab.NewPipe("link", 1e9, 0)
	ends := make([]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Go(fmt.Sprintf("f%d", i), func(p *Proc) {
			p.Sleep(Duration(i) * 100 * time.Millisecond)
			fab.Transfer(p, []*Pipe{link}, 3e8, 0)
			ends[i] = p.Now()
		})
	}
	e.Run()
	// f0 alone 0-100ms (100MB), shares 100-200 (50MB), three-way after.
	// All three must finish in arrival order here (equal sizes, head start).
	if !(ends[0] < ends[1] && ends[1] < ends[2]) {
		t.Fatalf("completion order broken: %v", ends)
	}
	// Total bytes = 900MB, link 1GB/s, earliest possible finish 0.9s + the
	// 200ms of partially-idle start; last end must be >= 0.9s and exactly
	// when all bytes have passed: 0.2s idle-ish accounted by integration.
	total := 9e8
	busyIntegral := 0.0
	// piecewise: 0-0.1 one flow(1e9); 0.1-0.2 two (1e9); then full till end.
	busyIntegral = 0.1*1e9 + 0.1*1e9
	rest := total - busyIntegral
	wantEnd := 0.2 + rest/1e9
	if math.Abs(Duration(ends[2]).Seconds()-wantEnd) > 1e-6 {
		t.Fatalf("last end %.4fs, want %.4fs", Duration(ends[2]).Seconds(), wantEnd)
	}
}

// TestFabricDeterminismUnderChurn: heavy join/leave churn across shared
// pipes must be bit-for-bit reproducible.
func TestFabricDeterminismUnderChurn(t *testing.T) {
	run := func() []Time {
		e := NewEnv()
		fab := NewFabric(e)
		a := fab.NewPipe("a", 2e9, 0)
		b := fab.NewPipe("b", 3e9, 0)
		var ends []Time
		for i := 0; i < 40; i++ {
			i := i
			e.Go(fmt.Sprintf("f%d", i), func(p *Proc) {
				p.Sleep(Duration(i*7) * time.Millisecond)
				pipes := []*Pipe{a}
				if i%3 == 0 {
					pipes = []*Pipe{a, b}
				} else if i%3 == 1 {
					pipes = []*Pipe{b}
				}
				fab.Transfer(p, pipes, float64(1e7*(i+1)), float64(1e8*(i%5+1)))
				ends = append(ends, p.Now())
			})
		}
		e.Run()
		return ends
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at flow %d: %v vs %v", i, a[i], b[i])
		}
	}
}
