package sim

import (
	"fmt"
	"math"
)

// Fabric is a system of bandwidth Pipes with a global max–min fair-share
// solver. Every data movement in the simulator — a client NIC, a gateway
// Ethernet link, an NVMe-oF fabric, a flash channel — is a Pipe, and a
// transfer is a Flow that traverses one or more Pipes. Whenever the set of
// active flows changes, the fabric recomputes the exact max–min fair
// allocation (progressive filling / water-filling), so saturation points,
// contention effects and crossovers emerge from the topology instead of
// being scripted.
//
// The solver is exact: it repeatedly finds the most-constrained pipe (or
// per-flow rate cap), freezes the flows it constrains at their fair share,
// removes that capacity, and continues until all flows have a rate.
type Fabric struct {
	env   *Env
	pipes []*Pipe
	// flows is kept in start order so that completion events fire in a
	// deterministic order (map iteration order would leak randomness into
	// the schedule).
	flows []*Flow

	lastAdvance  Time
	solvePending bool
	timer        *EventHandle

	// accounting enables per-pipe utilization integration (accounting.go).
	accounting bool
}

// NewFabric returns an empty fabric bound to env.
func NewFabric(env *Env) *Fabric {
	return &Fabric{env: env}
}

// Pipe is a shared bandwidth resource inside a Fabric.
type Pipe struct {
	fabric   *Fabric
	name     string
	capacity float64 // bytes per second
	latency  Duration

	active map[*Flow]struct{}

	// scratch fields used by the solver
	remCap   float64
	unfrozen int

	// utilization accounting (see accounting.go)
	allocated    float64
	busyIntegral float64
	capIntegral  float64
}

// NewPipe adds a pipe with the given capacity in bytes/second and one-way
// propagation latency. Capacity must be positive.
func (f *Fabric) NewPipe(name string, bytesPerSec float64, latency Duration) *Pipe {
	if bytesPerSec <= 0 {
		panic("sim: pipe capacity must be positive: " + name)
	}
	p := &Pipe{
		fabric:   f,
		name:     name,
		capacity: bytesPerSec,
		latency:  latency,
		active:   map[*Flow]struct{}{},
	}
	f.pipes = append(f.pipes, p)
	return p
}

// Name returns the pipe name.
func (p *Pipe) Name() string { return p.name }

// Fabric returns the fabric the pipe belongs to.
func (p *Pipe) Fabric() *Fabric { return p.fabric }

// Capacity returns the pipe capacity in bytes/second.
func (p *Pipe) Capacity() float64 { return p.capacity }

// Latency returns the pipe's one-way propagation latency.
func (p *Pipe) Latency() Duration { return p.latency }

// SetCapacity changes the pipe capacity and reallocates all flows. Used by
// noise injectors and ablation sweeps.
func (p *Pipe) SetCapacity(bytesPerSec float64) {
	if bytesPerSec <= 0 {
		panic("sim: pipe capacity must be positive: " + p.name)
	}
	p.fabric.advance()
	p.capacity = bytesPerSec
	p.fabric.markDirty()
}

// ActiveFlows returns the number of flows currently crossing the pipe.
func (p *Pipe) ActiveFlows() int { return len(p.active) }

// Flow is an in-progress transfer across a set of pipes.
type Flow struct {
	pipes     []*Pipe
	remaining float64 // bytes left
	rateCap   float64 // per-flow ceiling (e.g. one TCP connection); 0 = none
	rate      float64 // current allocated rate, bytes/sec
	done      *Event
	frozen    bool // solver scratch
}

// Rate returns the flow's currently allocated bandwidth in bytes/sec.
func (fl *Flow) Rate() float64 { return fl.rate }

// PathLatency returns the sum of one-way latencies along pipes.
func PathLatency(pipes []*Pipe) Duration {
	var d Duration
	for _, p := range pipes {
		d += p.latency
	}
	return d
}

// Transfer moves `bytes` across the given pipes as a single flow, blocking
// the calling process until the last byte arrives. The flow receives its
// max–min fair share of every pipe it crosses, further limited by rateCap
// when non-zero. Propagation latency of the path is charged once, up front.
//
// Transfer is the flow-level primitive: it models a sustained stream (an
// IOR rank writing its whole file, an NFS connection moving a block) rather
// than individual packets.
func (f *Fabric) Transfer(p *Proc, pipes []*Pipe, bytes float64, rateCap float64) {
	if bytes <= 0 {
		return
	}
	if lat := PathLatency(pipes); lat > 0 {
		p.Sleep(lat)
	}
	fl := f.StartFlow(pipes, bytes, rateCap)
	fl.done.Wait(p)
}

// StartFlow registers a flow without blocking; the returned flow's Done
// event fires on completion. Most callers want Transfer.
func (f *Fabric) StartFlow(pipes []*Pipe, bytes float64, rateCap float64) *Flow {
	if len(pipes) == 0 {
		panic("sim: flow must cross at least one pipe")
	}
	f.advance()
	fl := &Flow{
		pipes:     pipes,
		remaining: bytes,
		rateCap:   rateCap,
		done:      NewEvent(f.env),
	}
	f.flows = append(f.flows, fl)
	for _, pp := range pipes {
		pp.active[fl] = struct{}{}
	}
	f.markDirty()
	return fl
}

// Done exposes the completion event of a flow started with StartFlow.
func (fl *Flow) Done() *Event { return fl.done }

// advance accrues progress on every active flow at the rates computed by the
// last solve. It must be called before any state change.
func (f *Fabric) advance() {
	dt := f.env.now.Sub(f.lastAdvance).Seconds()
	f.lastAdvance = f.env.now
	if dt <= 0 {
		return
	}
	if f.accounting {
		for _, p := range f.pipes {
			p.accrue(dt)
		}
	}
	for _, fl := range f.flows {
		fl.remaining -= fl.rate * dt
		// Absorb float rounding: at simulated rates of ~1e11 B/s the
		// accumulated error is far below a byte, and no modeled transfer is
		// smaller than a kilobyte.
		if fl.remaining < 1e-3 {
			fl.remaining = 0
		}
	}
}

// markDirty schedules a single solve at the current instant, coalescing any
// number of same-instant membership changes into one solver run.
func (f *Fabric) markDirty() {
	if f.solvePending {
		return
	}
	f.solvePending = true
	f.env.Schedule(f.env.now, func() {
		f.solvePending = false
		f.advance()
		f.reapFinished()
		f.solve()
		if f.accounting {
			f.recomputeAllocations()
		}
		f.scheduleNextCompletion()
	})
}

// reapFinished completes flows whose byte counts have reached zero, firing
// their done events in flow-start order.
func (f *Fabric) reapFinished() {
	live := f.flows[:0]
	var finished []*Flow
	for _, fl := range f.flows {
		if fl.remaining <= 0 {
			finished = append(finished, fl)
			for _, pp := range fl.pipes {
				delete(pp.active, fl)
			}
		} else {
			live = append(live, fl)
		}
	}
	f.flows = live
	for _, fl := range finished {
		fl.done.Fire()
	}
}

// solve computes the exact max–min fair allocation by progressive filling.
func (f *Fabric) solve() {
	if len(f.flows) == 0 {
		return
	}
	for _, p := range f.pipes {
		p.remCap = p.capacity
		p.unfrozen = 0
	}
	unfrozenTotal := 0
	for _, fl := range f.flows {
		fl.frozen = false
		fl.rate = 0
		unfrozenTotal++
		for _, p := range fl.pipes {
			p.unfrozen++
		}
	}
	for unfrozenTotal > 0 {
		// The binding constraint is either the pipe with the smallest fair
		// share among unfrozen flows, or an individual flow's rate cap below
		// every pipe share on its path.
		share := math.Inf(1)
		for _, p := range f.pipes {
			if p.unfrozen == 0 {
				continue
			}
			if s := p.remCap / float64(p.unfrozen); s < share {
				share = s
			}
		}
		progressed := false
		// First freeze flows whose own cap binds below the global minimum
		// share: they cannot use their full fair allocation anywhere.
		for _, fl := range f.flows {
			if fl.frozen || fl.rateCap <= 0 || fl.rateCap > share {
				continue
			}
			f.freeze(fl, fl.rateCap)
			unfrozenTotal--
			progressed = true
		}
		if progressed {
			continue // shares changed; recompute
		}
		// Otherwise freeze all flows crossing a binding pipe at the share.
		for _, p := range f.pipes {
			if p.unfrozen == 0 {
				continue
			}
			if p.remCap/float64(p.unfrozen) > share*(1+1e-12) {
				continue
			}
			for fl := range p.active {
				if fl.frozen {
					continue
				}
				f.freeze(fl, share)
				unfrozenTotal--
				progressed = true
			}
		}
		if !progressed {
			panic("sim: fair-share solver failed to progress")
		}
	}
}

func (f *Fabric) freeze(fl *Flow, rate float64) {
	fl.frozen = true
	fl.rate = rate
	for _, p := range fl.pipes {
		p.remCap -= rate
		if p.remCap < 0 {
			p.remCap = 0
		}
		p.unfrozen--
	}
}

// scheduleNextCompletion arms the fabric timer for the earliest flow finish
// under the current allocation.
func (f *Fabric) scheduleNextCompletion() {
	f.timer.Cancel()
	f.timer = nil
	if len(f.flows) == 0 {
		return
	}
	earliest := math.Inf(1)
	for _, fl := range f.flows {
		if fl.rate <= 0 {
			panic(fmt.Sprintf("sim: flow allocated zero rate (pipes %v)", pipeNames(fl.pipes)))
		}
		if t := fl.remaining / fl.rate; t < earliest {
			earliest = t
		}
	}
	// Quantize upward to a whole nanosecond so completion never lands
	// before the true finish instant.
	ns := Time(math.Ceil(earliest * 1e9))
	if ns < 0 {
		ns = 0
	}
	f.timer = f.env.Schedule(f.env.now+ns, func() {
		f.advance()
		f.reapFinished()
		f.solve()
		if f.accounting {
			f.recomputeAllocations()
		}
		f.scheduleNextCompletion()
	})
}

func pipeNames(pipes []*Pipe) []string {
	names := make([]string, len(pipes))
	for i, p := range pipes {
		names[i] = p.name
	}
	return names
}
