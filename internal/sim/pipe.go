package sim

import (
	"fmt"
	"math"
	"slices"
)

// Fabric is a system of bandwidth Pipes with a global max–min fair-share
// solver. Every data movement in the simulator — a client NIC, a gateway
// Ethernet link, an NVMe-oF fabric, a flash channel — is a Pipe, and a
// transfer is a Flow that traverses one or more Pipes. Whenever the set of
// active flows changes, the fabric recomputes the exact max–min fair
// allocation (progressive filling / water-filling), so saturation points,
// contention effects and crossovers emerge from the topology instead of
// being scripted.
//
// Two structural optimizations keep the solver off the critical path of
// large sweeps (128 nodes × 44 ranks is 5632 concurrent flows):
//
//   - Flow classes: flows with an identical (pipe path, rate cap) signature
//     are aggregated into a single flowClass with a multiplicity count. The
//     solver's flow dimension is the number of *distinct* classes, not the
//     number of flows; per-flow byte bookkeeping stays exact through the
//     class work integral (see solver.go).
//   - Scoped re-solve: a membership change re-solves only the connected
//     component of pipes reachable from the changed flow's path. Unrelated
//     components keep their cached allocation, so churn on one storage
//     system never pays for the pipes of another.
//
// The solver is exact: it repeatedly finds the most-constrained pipe (or
// per-class rate cap), freezes the classes it constrains at their fair
// share, removes that capacity, and continues until every class has a
// rate. All iteration is over deterministic slices in creation order —
// never over maps — so a run is bit-for-bit reproducible.
type Fabric struct {
	env     *Env
	pipes   []*Pipe
	classes []*flowClass // live classes, insertion order with swap-remove

	// classIndex resolves a (path, rateCap) signature to its live class.
	classIndex map[string]*flowClass
	keyBuf     []byte // scratch for signature construction

	liveFlows int
	flowSeq   uint64 // start-order stamp; completion events fire in seq order

	lastAdvance  Time
	solvePending bool
	timer        timerRef

	// stepFn and solveFn are the fabric's two scheduler callbacks, created
	// once so that re-arming the completion timer and coalescing a solve —
	// both per-event operations on busy fabrics — never allocate a closure.
	stepFn  func()
	solveFn func()

	// dirtyPipes accumulates pipes whose membership or capacity changed
	// since the last solve; the next solve re-allocates exactly the
	// connected region reachable from them.
	dirtyPipes []*Pipe

	// tagAcc integrates delivered bytes per interned flow tag (multi-tenant
	// attribution), indexed by FlowTag handle. Tags partition classes — the
	// tag is part of the class signature — so the per-tag integral is exact
	// under the same work accounting that serves per-flow completion.
	// Grown on demand: fabrics that never see a tagged flow pay nothing.
	tagAcc []float64

	// freeFlows recycles the Flow records of completed transfers. Only
	// Transfer-internal flows are pooled — StartFlow hands its Flow to the
	// caller, who may hold it (and its Done event) indefinitely. gen on the
	// Flow guards stale abort hooks across recycling.
	freeFlows []*Flow

	// deadClasses is the FIFO resurrection cache of retired flow classes
	// (see solver.go): an empty class keeps its signature slot in classIndex
	// so the next identical flow revives it instead of re-allocating class,
	// key, pipe and slot storage — the dominant allocation site of steady
	// request traffic, where each request's lone flow retires its class on
	// completion and the next request re-creates it.
	deadClasses []deadClassEntry
	deadHead    int // index of the oldest live entry in deadClasses
	deadSeq     uint64

	// solver scratch, reused across solves (see solver.go).
	regionPipes   []*Pipe
	regionClasses []*flowClass
	reapScratch   []*Flow
	visitGen      uint64

	// accounting enables per-pipe utilization integration (accounting.go).
	accounting bool
}

// NewFabric returns an empty fabric bound to env.
func NewFabric(env *Env) *Fabric {
	f := &Fabric{env: env, classIndex: map[string]*flowClass{}}
	f.stepFn = f.step
	f.solveFn = func() {
		f.solvePending = false
		f.step()
	}
	return f
}

// Pipe is a shared bandwidth resource inside a Fabric.
type Pipe struct {
	fabric   *Fabric
	id       int32
	name     string
	capacity float64 // effective bytes per second (base × health)
	latency  Duration

	// base is the nominal capacity the pipe was configured with; health is
	// the fault-injection factor applied on top of it (1 = healthy, 0 =
	// parked). Keeping them separate lets a failed component recover to its
	// exact pre-fault capacity and lets derates compose with the ablation
	// sweeps' SetCapacity calls.
	base   float64
	health float64

	// classes crossing this pipe, in deterministic insertion order
	// (swap-remove on class retirement keeps removal O(1) while staying
	// reproducible). nflows is the total member-flow count across them.
	classes []*flowClass
	nflows  int

	// scratch fields used by the solver
	remCap   float64
	unfrozen int // unfrozen member flows during a solve

	// scoped re-solve bookkeeping
	dirty    bool
	visitGen uint64

	// utilization accounting (see accounting.go)
	allocated    float64
	busyIntegral float64
	capIntegral  float64
}

// NewPipe adds a pipe with the given capacity in bytes/second and one-way
// propagation latency. Capacity must be positive.
func (f *Fabric) NewPipe(name string, bytesPerSec float64, latency Duration) *Pipe {
	if bytesPerSec <= 0 {
		panic("sim: pipe capacity must be positive: " + name)
	}
	p := &Pipe{
		fabric:   f,
		id:       int32(len(f.pipes)),
		name:     name,
		capacity: bytesPerSec,
		base:     bytesPerSec,
		health:   1,
		latency:  latency,
	}
	f.pipes = append(f.pipes, p)
	return p
}

// Name returns the pipe name.
func (p *Pipe) Name() string { return p.name }

// Fabric returns the fabric the pipe belongs to.
func (p *Pipe) Fabric() *Fabric { return p.fabric }

// Capacity returns the pipe capacity in bytes/second.
func (p *Pipe) Capacity() float64 { return p.capacity }

// Latency returns the pipe's one-way propagation latency.
func (p *Pipe) Latency() Duration { return p.latency }

// SetCapacity changes the pipe's base capacity and reallocates the flows of
// the pipe's connected component. Used by noise injectors and ablation
// sweeps. Any fault health factor stays applied on top of the new base.
func (p *Pipe) SetCapacity(bytesPerSec float64) {
	if bytesPerSec <= 0 {
		panic("sim: pipe capacity must be positive: " + p.name)
	}
	p.base = bytesPerSec
	p.applyCapacity()
}

// ParkedBps is the effective capacity of a parked pipe (health factor 0): a
// token trickle that lets in-flight flows drain away from a failed component
// instead of dividing by zero, mirroring an NFS hard mount retrying into the
// void until its server returns.
const ParkedBps = 1

// SetHealthFactor derates the pipe to fraction f of its base capacity —
// the fault-injection handle. f = 1 restores full health, 0 parks the pipe
// at ParkedBps, values in between model NIC derates and SSD wear. Unlike
// SetCapacity arithmetic done by callers, the factor is absolute, so a
// recover event restores the exact pre-fault capacity.
func (p *Pipe) SetHealthFactor(f float64) {
	switch {
	case f < 0 || f > 1:
		panic(fmt.Sprintf("sim: health factor %g out of [0,1]: %s", f, p.name))
	case f == p.health:
		return
	}
	p.health = f
	p.applyCapacity()
}

// HealthFactor returns the pipe's current fault derate factor (1 = healthy).
func (p *Pipe) HealthFactor() float64 { return p.health }

// BaseCapacity returns the nominal capacity before fault derating.
func (p *Pipe) BaseCapacity() float64 { return p.base }

// applyCapacity recomputes the effective capacity from base × health and
// schedules a re-solve of the pipe's connected component.
func (p *Pipe) applyCapacity() {
	eff := p.base * p.health
	if eff < ParkedBps {
		eff = ParkedBps
	}
	if eff == p.capacity {
		return
	}
	p.fabric.advance()
	p.capacity = eff
	p.fabric.touch(p)
	p.fabric.markDirty()
}

// ActiveFlows returns the number of flows currently crossing the pipe.
func (p *Pipe) ActiveFlows() int { return p.nflows }

// Flow is an in-progress transfer across a set of pipes. Internally it is
// one member of a flowClass; its own state is just the class work level at
// which it completes.
type Flow struct {
	class  *flowClass
	seq    uint64  // start order, used for deterministic completion events
	target float64 // class work level (bytes per member) at which it is done
	pooled bool    // recycled through fabric.freeFlows on completion/abort
	// gen counts pool lifecycles. Abort hooks snapshot it at registration
	// (see Abort.onFireFlow); a hook whose snapshot no longer matches is
	// aimed at a recycled record and must not fire.
	gen uint64
	// done is embedded by value: one Flow allocation carries its completion
	// event, halving the per-flow allocation count on the start path.
	done Event
}

// Rate returns the flow's currently allocated bandwidth in bytes/sec.
func (fl *Flow) Rate() float64 { return fl.class.rate }

// PathLatency returns the sum of one-way latencies along pipes.
func PathLatency(pipes []*Pipe) Duration {
	var d Duration
	for _, p := range pipes {
		d += p.latency
	}
	return d
}

// Transfer moves `bytes` across the given pipes as a single flow, blocking
// the calling process until the last byte arrives. The flow receives its
// max–min fair share of every pipe it crosses, further limited by rateCap
// when non-zero. Propagation latency of the path is charged once, up front.
//
// Transfer is the flow-level primitive: it models a sustained stream (an
// IOR rank writing its whole file, an NFS connection moving a block) rather
// than individual packets.
// The flow inherits the calling process's flow tag (see Proc.SetFlowTag),
// so multi-tenant engines get per-tenant bandwidth attribution for free.
//
// Transfer is a cancellation point: if the process carries an abort token
// (Proc.SetAbort) that fired, it returns immediately without moving bytes,
// and a token firing mid-transfer cancels the in-flight flow (AbortFlow) so
// the waiter unwinds at once instead of draining a parked pipe.
func (f *Fabric) Transfer(p *Proc, pipes []*Pipe, bytes float64, rateCap float64) {
	if bytes <= 0 {
		return
	}
	ab := p.abort
	if ab != nil && ab.fired {
		return
	}
	tag := p.flowTag
	if lat := PathLatency(pipes); lat > 0 {
		p.Sleep(lat)
		if ab != nil && ab.fired {
			return // aborted during the propagation delay
		}
	}
	fl := f.startFlow(pipes, bytes, rateCap, tag, true)
	ab.onFireFlow(f, fl)
	fl.done.Wait(p)
}

// StartFlow registers an untagged flow without blocking; the returned
// flow's Done event fires on completion. Most callers want Transfer.
func (f *Fabric) StartFlow(pipes []*Pipe, bytes float64, rateCap float64) *Flow {
	return f.startFlow(pipes, bytes, rateCap, 0, false)
}

// StartFlowTagged registers a flow carrying an attribution tag: its
// delivered bytes accumulate under Fabric.TagBytes(tag). Tagged flows form
// their own fair-share classes per (path, cap, tag) signature; the empty
// tag is the untagged default.
func (f *Fabric) StartFlowTagged(pipes []*Pipe, bytes float64, rateCap float64, tag string) *Flow {
	return f.startFlow(pipes, bytes, rateCap, f.env.InternTag(tag), false)
}

// startFlow registers a flow. pooled flows (Transfer's) are drawn from and
// returned to the fabric's free list — the caller must not retain them past
// their done event; StartFlow/StartFlowTagged flows are heap-allocated and
// owned by the caller.
func (f *Fabric) startFlow(pipes []*Pipe, bytes float64, rateCap float64, tag FlowTag, pooled bool) *Flow {
	if len(pipes) == 0 {
		panic("sim: flow must cross at least one pipe")
	}
	f.advance()
	c := f.classFor(pipes, rateCap, tag)
	var fl *Flow
	if n := len(f.freeFlows); pooled && n > 0 {
		fl = f.freeFlows[n-1]
		f.freeFlows[n-1] = nil
		f.freeFlows = f.freeFlows[:n-1]
		fl.done.fired = false
	} else {
		fl = &Flow{pooled: pooled, done: Event{env: f.env}}
	}
	fl.class = c
	fl.seq = f.flowSeq
	fl.target = c.work + bytes
	f.flowSeq++
	c.pushMember(fl)
	for _, pp := range c.pipes {
		pp.nflows++
		f.touch(pp)
	}
	f.liveFlows++
	f.markDirty()
	return fl
}

// releaseFlow recycles a completed (or aborted) pooled flow. The generation
// bump invalidates every abort hook registered against this lifecycle.
func (f *Fabric) releaseFlow(fl *Flow) {
	if !fl.pooled {
		return
	}
	fl.gen++
	fl.class = nil
	f.freeFlows = append(f.freeFlows, fl)
}

// Done exposes the completion event of a flow started with StartFlow.
func (fl *Flow) Done() *Event { return &fl.done }

// advance accrues progress on every active class at the rates computed by
// the last solve. It must be called before any state change. Cost is
// O(classes), independent of the flow count.
func (f *Fabric) advance() {
	dt := f.env.now.Sub(f.lastAdvance).Seconds()
	f.lastAdvance = f.env.now
	if dt <= 0 {
		return
	}
	if f.accounting {
		for _, p := range f.pipes {
			p.accrue(dt)
		}
	}
	for _, c := range f.classes {
		c.work += c.rate * dt
		if c.tag != 0 {
			// f.classes iterates in deterministic (insertion/swap-remove)
			// order, so same-tag float accumulation is reproducible.
			// tagAcc is sized for every interned tag by classFor.
			f.tagAcc[c.tag] += c.rate * dt * float64(c.count)
		}
	}
}

// TagBytes returns the bytes delivered so far to flows carrying tag,
// integrated continuously (in-flight progress counts). Unknown tags report
// zero. Call after the fabric has settled (or accept the value as of the
// last advance).
func (f *Fabric) TagBytes(tag string) float64 {
	id, ok := f.env.lookupTag(tag)
	if !ok || id == 0 || int(id) >= len(f.tagAcc) {
		return 0
	}
	return f.tagAcc[id]
}

// touch marks a pipe's allocation as stale, scheduling its connected
// component for the next solve.
func (f *Fabric) touch(p *Pipe) {
	if !p.dirty {
		p.dirty = true
		f.dirtyPipes = append(f.dirtyPipes, p)
	}
}

// markDirty schedules a single solve at the current instant, coalescing any
// number of same-instant membership changes into one solver run.
func (f *Fabric) markDirty() {
	if f.solvePending {
		return
	}
	f.solvePending = true
	f.env.scheduleFn(f.env.now, f.solveFn)
}

// Settled reports whether the fabric has no same-instant re-solve pending.
// Invariant checkers sampling between a capacity change and its coalesced
// solve event skip allocation checks until the fabric settles.
func (f *Fabric) Settled() bool { return !f.solvePending }

// step is the fabric's per-event pipeline: integrate progress, complete
// finished flows, re-solve the dirty region, and re-arm the completion
// timer.
func (f *Fabric) step() {
	f.advance()
	f.reapFinished()
	f.solve()
	if f.accounting {
		f.recomputeAllocations()
	}
	f.scheduleNextCompletion()
}

// completionSlack absorbs float rounding in the byte accounting: at
// simulated rates of ~1e11 B/s the accumulated error is far below a byte,
// and no modeled transfer is smaller than a kilobyte, so a flow within
// completionSlack bytes of its target is complete.
const completionSlack = 1e-3

// reapFinished completes flows whose byte counts have reached their class
// work target, firing their done events in flow-start order. Only classes
// are scanned, never individual flows.
func (f *Fabric) reapFinished() {
	if f.liveFlows == 0 {
		return
	}
	reaped := f.reapScratch[:0]
	for _, c := range f.classes {
		for len(c.members) > 0 && c.members[0].target-c.work < completionSlack {
			reaped = append(reaped, c.popMember())
		}
	}
	if len(reaped) == 0 {
		f.reapScratch = reaped
		return
	}
	for _, fl := range reaped {
		c := fl.class
		c.count--
		for _, pp := range c.pipes {
			pp.nflows--
			f.touch(pp)
		}
		if c.count == 0 {
			f.retireClass(c)
		}
	}
	f.liveFlows -= len(reaped)
	// Fire completions in flow-start order: the seed implementation kept a
	// global start-ordered flow list, and waiter wake-up order is part of
	// the deterministic schedule. slices.SortFunc keeps the sort off the
	// heap — sort.Slice costs two allocations per reap on this hot path.
	slices.SortFunc(reaped, func(a, b *Flow) int {
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
	for _, fl := range reaped {
		fl.done.Fire()
	}
	// Recycle after every completion fired: waiters were woken by Fire (they
	// resume via their own scheduled events and never touch the Flow again),
	// and the generation bump in releaseFlow disarms any abort hook still
	// aimed at this lifecycle.
	for i, fl := range reaped {
		f.releaseFlow(fl)
		reaped[i] = nil
	}
	f.reapScratch = reaped[:0]
}

// scheduleNextCompletion arms the fabric timer for the earliest flow finish
// under the current allocation. The scan is over classes: each class tracks
// its earliest-finishing member in a heap, so the cost is O(classes)
// instead of O(flows).
func (f *Fabric) scheduleNextCompletion() {
	// cancelTimer on the zero ref is a no-op, which covers the very first
	// arm (before any timer exists) and re-arming from within the timer's
	// own firing (the fired event's generation has already moved on).
	f.env.cancelTimer(f.timer)
	f.timer = timerRef{}
	if f.liveFlows == 0 {
		return
	}
	earliest := math.Inf(1)
	for _, c := range f.classes {
		if c.rate <= 0 {
			panic("sim: flow class allocated zero rate after solve: " + c.describe())
		}
		if t := (c.members[0].target - c.work) / c.rate; t < earliest {
			earliest = t
		}
	}
	// Quantize upward to a whole nanosecond so completion never lands
	// before the true finish instant.
	ns := Time(math.Ceil(earliest * 1e9))
	if ns < 0 {
		ns = 0
	}
	f.timer = f.env.scheduleFn(f.env.now+ns, f.stepFn)
}

func pipeNames(pipes []*Pipe) []string {
	names := make([]string, len(pipes))
	for i, p := range pipes {
		names[i] = p.name
	}
	return names
}
