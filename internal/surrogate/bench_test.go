package surrogate

import "testing"

// BenchmarkSurrogateScore measures the cost of scoring one candidate
// configuration — the number that decides how large a knob space the
// what-if explorer can afford to sweep analytically. The configs/sec
// metric is recorded into BENCH_traffic.json by `make bench`; the search
// layer assumes ≥10k configs/sec.
func BenchmarkSurrogateScore(b *testing.B) {
	m := NewModel()
	dep := Deployment{
		Name:            "bench",
		Nodes:           2,
		PerNodeWriteBps: 9.6e9,
		PerNodeReadBps:  9.6e9,
		WritePools: []Pool{
			{Name: "rails", Class: ClientClass, Bps: 100e9},
			{Name: "cnode-nic", Class: ServerClass, Bps: 100e9},
			{Name: "reduce", Class: ServerClass, Bps: 8e9},
			{Name: "fabric-up", Class: FabricClass, Bps: 25e9},
			{Name: "scm", Class: DeviceClass, Bps: 16e9},
		},
		ReadPools: []Pool{
			{Name: "rails", Class: ClientClass, Bps: 100e9},
			{Name: "cnode-nic", Class: ServerClass, Bps: 100e9},
			{Name: "fabric-down", Class: FabricClass, Bps: 25e9},
			{Name: "qlc", Class: DeviceClass, Bps: 140.8e9},
		},
		WriteOverheadSec: 150e-6,
		ReadOverheadSec:  250e-6,
		MetaSec:          45e-6,
	}
	streams := []Stream{
		{Name: "ckpt", Kind: Write, RateHz: 3000, Bytes: 1 << 20, MaxInflight: 64, Burst: 1},
		{Name: "scan", Kind: Read, RateHz: 400, Bytes: 1 << 20, MaxInflight: 16, Burst: 1},
		{Name: "dash", Kind: Meta, RateHz: 200, Burst: 1},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := m.Score(dep, streams)
		if p.GoodputBps <= 0 {
			b.Fatal("degenerate prediction")
		}
	}
	b.ReportMetric(1e9/float64(b.Elapsed().Nanoseconds())*float64(b.N), "configs/sec")
}
