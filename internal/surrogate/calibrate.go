package surrogate

import "math"

// Calibration: the surrogate's coefficients have physical defaults (the
// idealized η=1 roofline), but a handful of DES probe runs pin down how
// much of the nameplate bandwidth the simulated protocol stacks really
// deliver and how fat the latency tails run. Fit is a deterministic
// least-squares grid refinement: it scans a fixed coefficient lattice in
// a fixed order, keeps the first strict improvement of the squared
// log-error, and therefore returns byte-identical coefficients for the
// same probes on every run — a calibration that moved between CI runs
// would poison golden files downstream.

// Probe is one DES observation: a deployment, its offered load, and the
// measured report to fit against.
type Probe struct {
	Dep     Deployment
	Streams []Stream
	// GoodputBps and P99Sec are the DES-measured values.
	GoodputBps float64
	P99Sec     float64
}

// logErr is the squared log-ratio — scale-free, so a 2 GB/s miss on a
// 20 GB/s probe weighs the same as 0.1 GB/s on 1 GB/s.
func logErr(pred, meas float64) float64 {
	if pred <= 0 || meas <= 0 {
		return 25 // ~e^5 ratio: effectively "completely wrong"
	}
	d := math.Log(pred / meas)
	return d * d
}

// goodputErr sums the squared log-error of predicted goodput over probes.
func goodputErr(m Model, probes []Probe) float64 {
	e := 0.0
	for _, p := range probes {
		e += logErr(m.Score(p.Dep, p.Streams).GoodputBps, p.GoodputBps)
	}
	return e
}

// p99Err sums the squared log-error of predicted merged p99 over probes.
func p99Err(m Model, probes []Probe) float64 {
	e := 0.0
	for _, p := range probes {
		e += logErr(m.Score(p.Dep, p.Streams).P99Sec, p.P99Sec)
	}
	return e
}

// etaGrid is the efficiency lattice Fit scans. It includes 1.0 (the
// default), so a fit can never be worse than the uncalibrated model on
// its own training probes.
var etaGrid = []float64{0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00}

// tailGrid is the tail-factor lattice.
var tailGrid = []float64{1.0, 1.1, 1.15, 1.25, 1.5, 1.75, 2.0, 2.2, 2.5, 3.0, 3.5, 4.0}

// Fit returns coefficients refined against the probes: first the three
// efficiency classes (client, server∪fabric, device) against measured
// goodput, then the two tail factors against measured p99 with the
// efficiencies held. Deterministic: fixed grids, fixed scan order, strict
// improvement required to move off the base coefficients.
func Fit(base Coeffs, probes []Probe) Coeffs {
	if len(probes) == 0 {
		return base
	}
	best := base
	bestErr := goodputErr(Model{Coeffs: base}, probes)
	for _, ec := range etaGrid {
		for _, es := range etaGrid {
			for _, ed := range etaGrid {
				c := base
				c.EtaClient, c.EtaServer, c.EtaFabric, c.EtaDevice = ec, es, es, ed
				if e := goodputErr(Model{Coeffs: c}, probes); e < bestErr-1e-12 {
					best, bestErr = c, e
				}
			}
		}
	}
	tbest := best
	tbestErr := p99Err(Model{Coeffs: best}, probes)
	for _, tq := range tailGrid {
		for _, ts := range tailGrid {
			c := best
			c.TailQueue, c.TailSat = tq, ts
			if c.Validate() != nil {
				continue
			}
			if e := p99Err(Model{Coeffs: c}, probes); e < tbestErr-1e-12 {
				tbest, tbestErr = c, e
			}
		}
	}
	return tbest
}

// RankCorrelation returns Spearman's ρ between two metric slices — the
// differential tests' yardstick for "does the surrogate order candidates
// the way the DES does". Ties share the average rank. Returns 0 for
// fewer than two points.
func RankCorrelation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra, rb := ranks(a), ranks(b)
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= float64(len(ra))
	mb /= float64(len(rb))
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// ranks returns average ranks (1-based) with ties averaged.
func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by value, then index: deterministic and n is small.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && (v[idx[j]] < v[idx[j-1]] ||
			(v[idx[j]] == v[idx[j-1]] && idx[j] < idx[j-1])); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}
