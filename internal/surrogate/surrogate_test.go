package surrogate

import (
	"math"
	"testing"
)

// testDeployment is a two-node deployment with a clear bottleneck: the
// server pool at 2 GB/s sits below the client side (2×4 GB/s) and the
// device pool (8 GB/s).
func testDeployment() Deployment {
	return Deployment{
		Name:            "test",
		Nodes:           2,
		PerNodeWriteBps: 4e9,
		PerNodeReadBps:  4e9,
		WritePools: []Pool{
			{Name: "server", Class: ServerClass, Bps: 2e9},
			{Name: "device", Class: DeviceClass, Bps: 8e9},
		},
		ReadPools: []Pool{
			{Name: "server", Class: ServerClass, Bps: 2e9},
			{Name: "device", Class: DeviceClass, Bps: 8e9},
		},
		WriteOverheadSec: 100e-6,
		ReadOverheadSec:  100e-6,
		MetaSec:          50e-6,
	}
}

func TestScoreUncontended(t *testing.T) {
	m := NewModel()
	// 100 req/s × 1 MiB = ~105 MB/s offered against 2 GB/s: far below
	// saturation, everything is delivered, nothing is shed.
	st := []Stream{{Name: "w", Kind: Write, RateHz: 100, Bytes: 1 << 20, MaxInflight: 64, Burst: 1}}
	p := m.Score(testDeployment(), st)
	want := 100 * float64(int64(1)<<20)
	if math.Abs(p.GoodputBps-want) > 1 {
		t.Fatalf("uncontended goodput %.0f, want %.0f", p.GoodputBps, want)
	}
	if p.ShedFrac != 0 {
		t.Fatalf("uncontended shed fraction %.3f, want 0", p.ShedFrac)
	}
	if p.P99Sec <= 0 || p.P99Sec > 50e-3 {
		t.Fatalf("uncontended p99 %.6f out of plausible range", p.P99Sec)
	}
}

func TestScoreSaturated(t *testing.T) {
	m := NewModel()
	// 10 GB/s offered against a 2 GB/s bottleneck: goodput pins at the
	// capacity, the rest is shed, and the p99 tracks the full admission
	// queue K·B/rate.
	st := []Stream{{Name: "w", Kind: Write, RateHz: 10000, Bytes: 1 << 20, MaxInflight: 64, Burst: 1}}
	p := m.Score(testDeployment(), st)
	if math.Abs(p.GoodputBps-2e9) > 1 {
		t.Fatalf("saturated goodput %.3e, want 2e9", p.GoodputBps)
	}
	if p.ShedFrac < 0.7 {
		t.Fatalf("saturated shed fraction %.3f, want ~0.8", p.ShedFrac)
	}
	// K·B/C = 64 MiB / 2 GB/s ≈ 33.6 ms, inflated by the tail factor.
	if p.P99Sec < 30e-3 || p.P99Sec > 60e-3 {
		t.Fatalf("saturated p99 %.4f outside the admission-queue band", p.P99Sec)
	}
}

func TestScoreSharesFollowInflightCaps(t *testing.T) {
	m := NewModel()
	// Two saturating tenants with 3:1 caps split the bottleneck 3:1.
	st := []Stream{
		{Name: "big", Kind: Write, RateHz: 10000, Bytes: 1 << 20, MaxInflight: 96, Burst: 1},
		{Name: "small", Kind: Write, RateHz: 10000, Bytes: 1 << 20, MaxInflight: 32, Burst: 1},
	}
	p := m.Score(testDeployment(), st)
	ratio := p.Streams[0].DeliveredBps / p.Streams[1].DeliveredBps
	if math.Abs(ratio-3) > 0.01 {
		t.Fatalf("share ratio %.3f, want 3.0", ratio)
	}
}

func TestScoreDirectionsIndependent(t *testing.T) {
	m := NewModel()
	st := []Stream{
		{Name: "w", Kind: Write, RateHz: 10000, Bytes: 1 << 20, MaxInflight: 64, Burst: 1},
		{Name: "r", Kind: Read, RateHz: 100, Bytes: 1 << 20, MaxInflight: 16, Burst: 1},
	}
	p := m.Score(testDeployment(), st)
	// Write saturation must not shed the uncontended read stream.
	if p.Streams[1].ShedFrac != 0 {
		t.Fatalf("read stream shed %.3f despite spare read capacity", p.Streams[1].ShedFrac)
	}
}

func TestScoreDegradedWindow(t *testing.T) {
	m := NewModel()
	dep := testDeployment()
	healthy := m.Score(dep, []Stream{{Name: "r", Kind: Read, RateHz: 4000, Bytes: 1 << 20, MaxInflight: 64, Burst: 1}})
	dep.DegradedFrac = 0.5
	dep.DegradedReadAmp = 1.5
	dep.RebuildBps = 0.5e9
	degraded := m.Score(dep, []Stream{{Name: "r", Kind: Read, RateHz: 4000, Bytes: 1 << 20, MaxInflight: 64, Burst: 1}})
	if degraded.GoodputBps >= healthy.GoodputBps {
		t.Fatalf("degraded goodput %.3e not below healthy %.3e", degraded.GoodputBps, healthy.GoodputBps)
	}
	if degraded.P99Sec <= healthy.P99Sec {
		t.Fatalf("degraded p99 %.4f not above healthy %.4f", degraded.P99Sec, healthy.P99Sec)
	}
}

func TestScoreCapacityMonotoneInKnobs(t *testing.T) {
	m := NewModel()
	st := []Stream{{Name: "w", Kind: Write, RateHz: 10000, Bytes: 1 << 20, MaxInflight: 64, Burst: 1}}
	prev := 0.0
	for _, bw := range []float64{1e9, 2e9, 4e9, 8e9, 9e9} {
		dep := testDeployment()
		dep.WritePools[0].Bps = bw
		g := m.Score(dep, st).GoodputBps
		if g < prev {
			t.Fatalf("goodput not monotone in server pool bandwidth: %.3e after %.3e", g, prev)
		}
		prev = g
	}
}

func TestScoreDeterministic(t *testing.T) {
	m := NewModel()
	st := []Stream{
		{Name: "w", Kind: Write, RateHz: 3000, Bytes: 1 << 20, MaxInflight: 64, Burst: 1},
		{Name: "r", Kind: Read, RateHz: 500, Bytes: 1 << 20, MaxInflight: 16, Burst: 0},
		{Name: "m", Kind: Meta, RateHz: 100, Burst: 1},
	}
	a := m.Score(testDeployment(), st)
	b := m.Score(testDeployment(), st)
	if a.GoodputBps != b.GoodputBps || a.P99Sec != b.P99Sec || a.ShedFrac != b.ShedFrac {
		t.Fatalf("Score is not deterministic: %+v vs %+v", a, b)
	}
}

func TestMergedP99SingleStreamConsistent(t *testing.T) {
	m := NewModel()
	sp := []StreamPrediction{{Name: "w", P99Sec: 0.040, CompletionHz: 100}}
	got := m.mergedP99(sp)
	if math.Abs(got-0.040) > 0.001 {
		t.Fatalf("single-stream merged p99 %.4f, want its own p99 0.040", got)
	}
}

func TestFitDeterministicAndNoWorse(t *testing.T) {
	dep := testDeployment()
	st := []Stream{{Name: "w", Kind: Write, RateHz: 10000, Bytes: 1 << 20, MaxInflight: 64, Burst: 1}}
	// Synthesize probes from a "truth" model with 85% server efficiency
	// and a fatter saturation tail than the defaults.
	truth := Model{Coeffs: Coeffs{EtaClient: 1, EtaServer: 0.85, EtaFabric: 0.85, EtaDevice: 1, TailQueue: 2.2, TailSat: 1.5}}
	var probes []Probe
	for _, bw := range []float64{1e9, 2e9, 4e9} {
		d := dep
		d.WritePools = []Pool{{Name: "server", Class: ServerClass, Bps: bw}, {Name: "device", Class: DeviceClass, Bps: 8e9}}
		p := truth.Score(d, st)
		probes = append(probes, Probe{Dep: d, Streams: st, GoodputBps: p.GoodputBps, P99Sec: p.P99Sec})
	}
	f1 := Fit(DefaultCoeffs(), probes)
	f2 := Fit(DefaultCoeffs(), probes)
	if f1 != f2 {
		t.Fatalf("Fit not deterministic: %+v vs %+v", f1, f2)
	}
	if e0, e1 := goodputErr(Model{Coeffs: DefaultCoeffs()}, probes), goodputErr(Model{Coeffs: f1}, probes); e1 > e0 {
		t.Fatalf("fit goodput error %.4f worse than uncalibrated %.4f", e1, e0)
	}
	if f1.EtaServer != 0.85 {
		t.Fatalf("fit EtaServer %.2f, want the planted 0.85", f1.EtaServer)
	}
	if f1.TailSat != 1.5 {
		t.Fatalf("fit TailSat %.2f, want the planted 1.5", f1.TailSat)
	}
}

func TestRankCorrelation(t *testing.T) {
	if r := RankCorrelation([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect agreement ρ=%.3f, want 1", r)
	}
	if r := RankCorrelation([]float64{1, 2, 3, 4}, []float64{40, 30, 20, 10}); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect disagreement ρ=%.3f, want -1", r)
	}
	if r := RankCorrelation([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("degenerate input ρ=%.3f, want 0", r)
	}
}

func TestCoeffsValidate(t *testing.T) {
	good := DefaultCoeffs()
	if err := good.Validate(); err != nil {
		t.Fatalf("default coefficients rejected: %v", err)
	}
	bad := good
	bad.EtaServer = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero efficiency accepted")
	}
	bad = good
	bad.TailQueue = 0.5
	if err := bad.Validate(); err == nil {
		t.Fatal("sub-1 tail factor accepted")
	}
}
