// Package surrogate is a closed-form queueing/roofline predictor for the
// storage deployments the testbeds simulate. Where the DES spends
// milliseconds faithfully fair-sharing every flow, the surrogate spends
// microseconds on three classical approximations:
//
//   - Roofline capacity: a deployment is a chain of bandwidth pools
//     (client NICs and connection pipes, protocol-server NICs and reduce
//     engines, the CBox↔DBox fabric, the device pools). The sustainable
//     rate of a direction is the minimum pool, each derated by a per-class
//     efficiency coefficient (the calibratable gap between nameplate
//     bandwidth and what a real protocol stack delivers).
//   - M/G/1-PS latency: below saturation a stream's sojourn time is its
//     uncontended service time inflated by 1/(1-ρ) — the processor-sharing
//     mean, insensitive to the service distribution. Above saturation the
//     admission cap K pins the in-flight population, so a request's
//     latency is K·B/rate: the bandwidth-delay product of a full queue.
//   - Admission/shedding saturation: an open-loop tenant offering more
//     than its fair share of the bottleneck sheds the excess; shares at
//     saturation follow the in-flight caps (the DES fair-shares per flow,
//     and the cap bounds each tenant's flow count).
//
// The prediction (goodput, merged p99, shed fraction) is exactly the
// tuple the traffic engine reports, so a configuration-search layer can
// score thousands of candidate deployments analytically and reserve the
// DES for the handful that matter. Everything here is pure float
// arithmetic over the inputs: no randomness, no maps, no global state —
// byte-identical results on every run and platform.
package surrogate

import (
	"fmt"
	"math"
)

// PoolClass buckets a bandwidth pool by which part of the stack provides
// it; the per-class efficiency coefficients attach here.
type PoolClass string

// Pool classes.
const (
	// ClientClass pools are client-side: node NICs, NFS connection pipes.
	ClientClass PoolClass = "client"
	// ServerClass pools are protocol-server side: CNode/OSS NIC banks,
	// ingest-reduction engines.
	ServerClass PoolClass = "server"
	// FabricClass pools are internal interconnects (CBox↔DBox NVMe-oF).
	FabricClass PoolClass = "fabric"
	// DeviceClass pools are the storage media (SCM, QLC, OST spindles).
	DeviceClass PoolClass = "device"
)

// Pool is one aggregate bandwidth resource on a data path.
type Pool struct {
	// Name identifies the pool in debug output ("reduce", "fabric-up").
	Name string
	// Class selects the efficiency coefficient applied to Bps.
	Class PoolClass
	// Bps is the pool's nameplate aggregate bandwidth, bytes/second.
	Bps float64
}

// Deployment is the analytical view of one materialized configuration:
// the per-direction pool chains plus the per-node and per-stream ceilings
// the transports impose.
type Deployment struct {
	// Name labels the deployment in errors and debug output.
	Name string
	// Nodes is the client node count; per-node ceilings scale by it.
	Nodes int
	// PerNodeWriteBps/PerNodeReadBps cap one node's injection rate
	// (min of node NIC and its connection pipe).
	PerNodeWriteBps, PerNodeReadBps float64
	// PerStreamWriteBps/PerStreamReadBps cap a single stream (stripe-1
	// files on Lustre, per-connection ceilings on TCP mounts). 0 = none.
	PerStreamWriteBps, PerStreamReadBps float64
	// WritePools/ReadPools are the shared pools of each direction.
	WritePools, ReadPools []Pool
	// WriteOverheadSec/ReadOverheadSec are the fixed per-request
	// latencies of a data request (RPC rounds, metadata lookups, device
	// op latency, path propagation), seconds.
	WriteOverheadSec, ReadOverheadSec float64
	// MetaSec is the latency of one metadata round trip, seconds.
	MetaSec float64

	// Degraded-window terms, all zero for a healthy run. DegradedFrac is
	// the fraction of the window spent with a failed unit, RebuildBps the
	// background reconstruction draw on the pools during that window, and
	// DegradedReadAmp the read-amplification of EC-decoded reads
	// ((w+p-1)/w surviving strips fetched per strip served).
	DegradedFrac    float64
	RebuildBps      float64
	DegradedReadAmp float64
}

// StreamKind is the direction of a workload stream.
type StreamKind string

// Stream kinds.
const (
	// Write streams move payload client→servers.
	Write StreamKind = "write"
	// Read streams move payload servers→client.
	Read StreamKind = "read"
	// Meta streams are metadata round trips, no payload.
	Meta StreamKind = "meta"
)

// Stream is the analytical view of one tenant's offered load.
type Stream struct {
	// Name labels the stream in per-stream predictions.
	Name string
	// Kind is the direction.
	Kind StreamKind
	// RateHz is the offered request rate, requests/second.
	RateHz float64
	// Bytes is the payload of one request (0 for Meta).
	Bytes float64
	// MaxInflight is the tenant's admission cap (0 = uncapped).
	MaxInflight int
	// Burst is the arrival-process burstiness: 0 for deterministic
	// spacing, 1 for Poisson, >1 for bursty (on/off, diurnal peaks). It
	// scales the queueing contribution to the p99.
	Burst float64
}

// Coeffs are the surrogate's free coefficients. The Eta* efficiencies
// derate each pool class from nameplate to deliverable bandwidth; the
// Tail* factors inflate mean sojourn times to p99 estimates. Defaults are
// the idealized model (no protocol losses); Fit tightens them against DES
// probe runs.
type Coeffs struct {
	EtaClient, EtaServer, EtaFabric, EtaDevice float64
	// TailQueue is the p99/mean inflation of an uncontended stream whose
	// arrivals queue stochastically (scaled by Stream.Burst).
	TailQueue float64
	// TailSat is the p99/mean inflation at saturation, where the full
	// admission queue concentrates latencies near K·B/rate.
	TailSat float64
}

// DefaultCoeffs returns the uncalibrated (idealized) coefficients.
func DefaultCoeffs() Coeffs {
	return Coeffs{
		EtaClient: 1, EtaServer: 1, EtaFabric: 1, EtaDevice: 1,
		TailQueue: 2.2, TailSat: 1.15,
	}
}

// Validate reports the first problem with the coefficients.
func (c Coeffs) Validate() error {
	switch {
	case c.EtaClient <= 0 || c.EtaServer <= 0 || c.EtaFabric <= 0 || c.EtaDevice <= 0:
		return fmt.Errorf("surrogate: efficiencies must be positive")
	case c.EtaClient > 1 || c.EtaServer > 1 || c.EtaFabric > 1 || c.EtaDevice > 1:
		return fmt.Errorf("surrogate: efficiencies cannot exceed 1")
	case c.TailQueue < 1 || c.TailSat < 1:
		return fmt.Errorf("surrogate: tail factors must be >= 1")
	}
	return nil
}

// Model scores deployments with a fixed coefficient set.
type Model struct {
	Coeffs Coeffs
}

// NewModel returns a model with the default coefficients.
func NewModel() Model { return Model{Coeffs: DefaultCoeffs()} }

// StreamPrediction is the per-stream slice of a prediction.
type StreamPrediction struct {
	Name string
	// DeliveredBps is the predicted payload goodput, bytes/second.
	DeliveredBps float64
	// MeanSec and P99Sec are the predicted completion latencies.
	MeanSec, P99Sec float64
	// ShedFrac is the predicted fraction of offered requests refused by
	// admission control.
	ShedFrac float64
	// CompletionHz is the predicted completion rate, requests/second.
	CompletionHz float64
}

// Prediction is the analytical counterpart of a traffic.Report.
type Prediction struct {
	// GoodputBps sums delivered payload bandwidth over data streams.
	GoodputBps float64
	// P99Sec is the p99 of the merged completion-latency distribution.
	P99Sec float64
	// ShedFrac is the offered-weighted shed fraction.
	ShedFrac float64
	// Streams carries the per-stream breakdown, in input order.
	Streams []StreamPrediction
}

func (m Model) eta(c PoolClass) float64 {
	switch c {
	case ClientClass:
		return m.Coeffs.EtaClient
	case ServerClass:
		return m.Coeffs.EtaServer
	case FabricClass:
		return m.Coeffs.EtaFabric
	case DeviceClass:
		return m.Coeffs.EtaDevice
	}
	return 1
}

// capacity returns the deliverable bandwidth of one direction: the
// minimum derated pool, including the aggregated per-node ceiling, with
// the degraded-window adjustment averaged in.
func (m Model) capacity(dep *Deployment, write bool) float64 {
	perNode := dep.PerNodeReadBps
	pools := dep.ReadPools
	if write {
		perNode = dep.PerNodeWriteBps
		pools = dep.WritePools
	}
	c := math.Inf(1)
	if perNode > 0 && dep.Nodes > 0 {
		c = perNode * float64(dep.Nodes) * m.Coeffs.EtaClient
	}
	for _, p := range pools {
		if eff := p.Bps * m.eta(p.Class); eff < c {
			c = eff
		}
	}
	if math.IsInf(c, 1) {
		c = 0
	}
	if f := dep.DegradedFrac; f > 0 {
		deg := c - dep.RebuildBps
		if deg < 0 {
			deg = 0
		}
		if !write && dep.DegradedReadAmp > 1 {
			deg /= dep.DegradedReadAmp
		}
		c = (1-f)*c + f*deg
	}
	if c < 1 {
		c = 1
	}
	return c
}

// waterfill splits capacity C across streams by weight, never granting a
// stream more than its demand; freed capacity cascades to the others.
func waterfill(C float64, demand, weight []float64) []float64 {
	granted := make([]float64, len(demand))
	active := make([]bool, len(demand))
	n := 0
	for i, d := range demand {
		if d > 0 {
			active[i] = true
			n++
		}
	}
	rem := C
	for n > 0 {
		wsum := 0.0
		for i := range demand {
			if active[i] {
				wsum += weight[i]
			}
		}
		if wsum <= 0 {
			break
		}
		satisfied := false
		for i := range demand {
			if active[i] && rem*weight[i]/wsum >= demand[i] {
				granted[i] = demand[i]
				rem -= demand[i]
				active[i] = false
				n--
				satisfied = true
			}
		}
		if !satisfied {
			for i := range demand {
				if active[i] {
					granted[i] = rem * weight[i] / wsum
				}
			}
			break
		}
	}
	return granted
}

// Score predicts the traffic engine's report for one deployment and
// offered load. Pure arithmetic: ~1µs per call, no allocation beyond the
// returned slices.
func (m Model) Score(dep Deployment, streams []Stream) Prediction {
	var pred Prediction
	pred.Streams = make([]StreamPrediction, len(streams))

	for _, write := range []bool{true, false} {
		kind := Read
		perStream := dep.PerStreamReadBps
		perNode := dep.PerNodeReadBps
		overhead := dep.ReadOverheadSec
		if write {
			kind = Write
			perStream = dep.PerStreamWriteBps
			perNode = dep.PerNodeWriteBps
			overhead = dep.WriteOverheadSec
		}
		C := m.capacity(&dep, write)

		// A stream's aggregate rate is also capped by its own transport
		// pipes: one mount per node, each behind the per-stream ceiling
		// (connection pipes on NFS, stripe-1 OST paths on Lustre). Demand
		// beyond that never reaches the shared pools — it queues at the
		// mount and is shed by admission control.
		nodes := float64(dep.Nodes)
		if nodes < 1 {
			nodes = 1
		}
		lim := math.Inf(1)
		if perStream > 0 {
			lim = perStream * m.Coeffs.EtaClient * nodes
		}
		if perNode > 0 && perNode*m.Coeffs.EtaClient*nodes < lim {
			lim = perNode * m.Coeffs.EtaClient * nodes
		}

		idx := make([]int, 0, len(streams))
		raw := make([]float64, 0, len(streams))
		demand := make([]float64, 0, len(streams))
		weight := make([]float64, 0, len(streams))
		total := 0.0
		for i, s := range streams {
			if s.Kind != kind {
				continue
			}
			d := s.RateHz * s.Bytes
			idx = append(idx, i)
			raw = append(raw, d)
			if d > lim {
				d = lim
			}
			demand = append(demand, d)
			total += d
			// At saturation the DES fair-shares per flow, so a tenant's
			// share follows its in-flight cap; an uncapped open-loop
			// tenant grows its flow count without bound and crowds out
			// the capped ones.
			if s.MaxInflight > 0 {
				weight = append(weight, float64(s.MaxInflight))
			} else {
				weight = append(weight, 1e12)
			}
		}
		if len(idx) == 0 {
			continue
		}
		rho := total / C
		granted := waterfill(C, demand, weight)
		for k, i := range idx {
			s := streams[i]
			sp := &pred.Streams[i]
			sp.Name = s.Name
			sp.DeliveredBps = granted[k]
			streamCap := C
			if perStream > 0 && perStream*m.Coeffs.EtaClient < streamCap {
				streamCap = perStream * m.Coeffs.EtaClient
			}
			if perNode > 0 && perNode*m.Coeffs.EtaClient < streamCap {
				streamCap = perNode * m.Coeffs.EtaClient
			}
			if granted[k] >= raw[k]*0.9999 && rho < 1 {
				// Uncontended: M/G/1-PS sojourn, tail scaled by arrival
				// burstiness.
				slow := 1 - rho
				if slow < 0.05 {
					slow = 0.05
				}
				mean := overhead + s.Bytes/streamCap/slow
				sp.MeanSec = mean
				q := 1 + (m.Coeffs.TailQueue-1)*s.Burst*rho
				sp.P99Sec = mean * q
				sp.ShedFrac = 0
				sp.CompletionHz = s.RateHz
			} else {
				// Saturated: the admission cap pins K requests in flight;
				// each one progresses at delivered/K.
				K := float64(s.MaxInflight)
				if K < 1 {
					// Uncapped at saturation: in-flight grows all window;
					// stand in with the bandwidth-delay population.
					K = math.Max(1, s.RateHz*(overhead+s.Bytes/streamCap))
				}
				rate := granted[k]
				if rate < 1 {
					rate = 1
				}
				mean := overhead + s.Bytes*K/rate
				sp.MeanSec = mean
				sp.P99Sec = mean * m.Coeffs.TailSat
				sp.ShedFrac = 1 - granted[k]/raw[k]
				sp.CompletionHz = rate / math.Max(1, s.Bytes)
			}
			pred.GoodputBps += sp.DeliveredBps
		}
	}

	// Metadata streams: a round trip against the metadata service. The
	// fixture loads never saturate it, so only the fixed latency and the
	// stochastic queueing tail appear.
	for i, s := range streams {
		if s.Kind != Meta {
			continue
		}
		sp := &pred.Streams[i]
		sp.Name = s.Name
		sp.MeanSec = dep.MetaSec
		sp.P99Sec = dep.MetaSec * (1 + (m.Coeffs.TailQueue-1)*s.Burst)
		sp.CompletionHz = s.RateHz
	}

	pred.P99Sec = m.mergedP99(pred.Streams)
	var offered, shed float64
	for i, s := range streams {
		offered += s.RateHz
		shed += s.RateHz * pred.Streams[i].ShedFrac
	}
	if offered > 0 {
		pred.ShedFrac = shed / offered
	}
	return pred
}

// mergedP99 approximates the p99 of the pooled completion-latency
// distribution: each stream contributes an exponential tail whose own p99
// matches its prediction, weighted by completion rate, and the quantile
// of the mixture is found by bisection. This mirrors merging the
// per-tenant sketches the way the experiment harness does.
func (m Model) mergedP99(sp []StreamPrediction) float64 {
	const ln100 = 4.605170185988091
	var wsum, hi float64
	for _, s := range sp {
		if s.CompletionHz <= 0 || s.P99Sec <= 0 {
			continue
		}
		wsum += s.CompletionHz
		if s.P99Sec > hi {
			hi = s.P99Sec
		}
	}
	if wsum <= 0 || hi <= 0 {
		return 0
	}
	tail := func(x float64) float64 {
		t := 0.0
		for _, s := range sp {
			if s.CompletionHz <= 0 || s.P99Sec <= 0 {
				continue
			}
			t += s.CompletionHz / wsum * math.Exp(-x*ln100/s.P99Sec)
		}
		return t
	}
	lo, up := 0.0, 2*hi
	for i := 0; i < 60; i++ {
		mid := (lo + up) / 2
		if tail(mid) > 0.01 {
			lo = mid
		} else {
			up = mid
		}
	}
	return (lo + up) / 2
}
