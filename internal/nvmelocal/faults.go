package nvmelocal

import "fmt"

// Node failure and SSD wear. The failable "servers" are the mounted nodes
// in mount order: failing one parks its NVMe array and page-cache ingest
// pipe (the node is down; a peer reading its data over the interconnect
// crawls at the parked rate until it returns). Register the system with
// the fault injector only after all mounts: FaultServers reports the
// mounted-node count.
//
// SetMediaHealth is the wear model the paper's consumer 970 PRO SSDs
// invite: a worn or thermally-throttled drive serves fraction f of its
// nominal bandwidth.

// FailNode takes the i-th mounted node (mount order) out of service.
// Failing an already-failed node is a no-op; failing the last healthy node
// panics.
func (s *System) FailNode(i int) {
	if i < 0 || i >= len(s.order) {
		panic(fmt.Sprintf("nvmelocal %s: no node %d", s.cfg.Name, i))
	}
	st := s.nodes[s.order[i]]
	if st.failed {
		return
	}
	if s.healthyNodes() == 1 {
		panic(fmt.Sprintf("nvmelocal %s: cannot fail the last healthy node", s.cfg.Name))
	}
	st.failed = true
	st.dev.SetHealthFactor(0)
	st.memIn.SetHealthFactor(0)
}

// RecoverNode returns a failed node to service; recovering a healthy node
// is a no-op.
func (s *System) RecoverNode(i int) {
	if i < 0 || i >= len(s.order) {
		return
	}
	st := s.nodes[s.order[i]]
	if !st.failed {
		return
	}
	st.failed = false
	st.dev.SetHealthFactor(s.mediaHealth)
	st.memIn.SetHealthFactor(1)
}

// HealthyNodes reports how many mounted nodes are in service.
func (s *System) HealthyNodes() int { return s.healthyNodes() }

func (s *System) healthyNodes() int {
	n := 0
	for _, name := range s.order {
		if !s.nodes[name].failed {
			n++
		}
	}
	return n
}

// --- faults.Target ---

// FaultServers implements faults.Target: the failable servers are the
// mounted nodes (register with the injector after mounting).
func (s *System) FaultServers() int { return len(s.order) }

// FailServer implements faults.Target.
func (s *System) FailServer(i int) { s.FailNode(i) }

// RecoverServer implements faults.Target.
func (s *System) RecoverServer(i int) { s.RecoverNode(i) }

// SetLinkHealth implements faults.Target: derates the node interconnect
// used for cross-node copies (no-op without one).
func (s *System) SetLinkHealth(f float64) {
	s.linkHealth = f
	if s.cfg.Interconnect != nil {
		s.cfg.Interconnect.SetHealthFactor(f)
	}
}

// SetMediaHealth implements faults.Target: derates every healthy node's
// NVMe array (SSD wear). Failed nodes stay parked and pick up the
// prevailing factor when they recover.
func (s *System) SetMediaHealth(f float64) {
	s.mediaHealth = f
	for _, name := range s.order {
		if st := s.nodes[name]; !st.failed {
			st.dev.SetHealthFactor(f)
		}
	}
}
