// Package nvmelocal models the node-local NVMe storage on Wombat (Section
// IV-B): three Samsung 970 PRO SSDs per compute node behind a local mount
// point. It is the paper's baseline for the Wombat comparisons (Figures 2b
// and 3d).
//
// Three behaviours define the comparison and are modeled:
//
//   - The OS page cache absorbs writes at memory speed up to the dirty
//     threshold, after which write-back throttling pins the writer to
//     device speed (the paper deliberately allows write-back caching "to
//     replicate a realistic user scenario").
//   - fsync on a consumer SSD drains a volatile write cache: a device-wide
//     barrier whose cost dominates the synchronous write test — the reason
//     RDMA-deployed VAST beats local flash by ~5× there.
//   - An NVMe SSD cannot serve remote reads: when another node needs the
//     data, it is copied over the node interconnect from the owner's
//     device (the paper's round-robin copy methodology).
package nvmelocal

import (
	"fmt"

	"storagesim/internal/cache"
	"storagesim/internal/device"
	"storagesim/internal/fsapi"
	"storagesim/internal/fsbase"
	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

// Config describes the per-node NVMe setup.
type Config struct {
	// Name prefixes pipe names.
	Name string
	// PerNode is the device spec of one node's NVMe array (3× 970 PRO).
	PerNode device.Spec
	// MemBW is the page-cache ingest bandwidth (memcpy into the cache).
	MemBW float64
	// DirtyLimitBytes is the write-back throttle threshold (vm.dirty_ratio
	// of node RAM); beyond it a writer runs at device speed.
	DirtyLimitBytes int64
	// PageCacheBytes sizes the op-level page cache per node.
	PageCacheBytes int64
	// CacheBlockBytes is the page size.
	CacheBlockBytes int64
	// Interconnect is the node-to-node network used for remote reads; nil
	// restricts reads to node-local data.
	Interconnect *netsim.LinkBank
}

// Validate reports the first problem with the config.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("nvmelocal: missing name")
	case c.MemBW <= 0:
		return fmt.Errorf("nvmelocal %s: memory bandwidth must be positive", c.Name)
	case c.DirtyLimitBytes < 0:
		return fmt.Errorf("nvmelocal %s: negative dirty limit", c.Name)
	case c.PageCacheBytes > 0 && c.CacheBlockBytes <= 0:
		return fmt.Errorf("nvmelocal %s: page cache needs a block size", c.Name)
	}
	return c.PerNode.Validate()
}

// System manages the per-node devices. Unlike the shared file systems, each
// node has its own namespace (a file written on node A does not exist on
// node B until copied).
type System struct {
	cfg Config
	env *sim.Env
	fab *sim.Fabric

	nodes map[string]*nodeState
	order []string // deterministic iteration

	// Fault state (see faults.go): prevailing cluster-wide derates.
	linkHealth  float64
	mediaHealth float64
}

type nodeState struct {
	name      string
	nic       *netsim.Iface
	dev       *device.Device
	memIn     *sim.Pipe
	memInPath []*sim.Pipe // cached {memIn}; treated as immutable
	ns        *fsapi.Namespace
	dirty     int64
	lastDrain sim.Time
	client    *client
	failed    bool
}

// New builds the system; nodes attach lazily on Mount.
func New(env *sim.Env, fab *sim.Fabric, cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg, env: env, fab: fab, nodes: map[string]*nodeState{},
		linkHealth: 1, mediaHealth: 1}, nil
}

// MustNew is New that panics on config errors.
func MustNew(env *sim.Env, fab *sim.Fabric, cfg Config) *System {
	s, err := New(env, fab, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the parameters.
func (s *System) Config() Config { return s.cfg }

// Mount attaches a compute node's local NVMe.
func (s *System) Mount(node string, nic *netsim.Iface) fsapi.Client {
	st, ok := s.nodes[node]
	if !ok {
		spec := s.cfg.PerNode
		spec.Name = fmt.Sprintf("%s/%s/nvme", s.cfg.Name, node)
		st = &nodeState{
			name:  node,
			nic:   nic,
			dev:   device.MustNew(s.env, s.fab, spec),
			memIn: s.fab.NewPipe(fmt.Sprintf("%s/%s/pagecache", s.cfg.Name, node), s.cfg.MemBW, 0),
			ns:    fsapi.NewNamespace(),
		}
		// Stable single-pipe path for page-cache absorption: write bursts hit
		// this on every call, so don't re-allocate the slice each time.
		st.memInPath = []*sim.Pipe{st.memIn}
		s.nodes[node] = st
		s.order = append(s.order, node)
	}
	if st.client == nil {
		cl := &client{sys: s, node: st}
		var pc *cache.Cache
		if s.cfg.PageCacheBytes > 0 {
			pc = cache.New(cache.Config{
				BlockSize:       s.cfg.CacheBlockBytes,
				Capacity:        s.cfg.PageCacheBytes,
				ReadaheadBlocks: 16,
			})
		}
		cl.core = fsbase.ClientCore{
			FS:      s.cfg.Name,
			Node:    node,
			NS:      st.ns,
			Backend: (*backend)(cl),
			Cache:   pc,
		}
		st.client = cl
	}
	return st.client
}

// Peer returns the node that node i reads from under the paper's
// round-robin copy scheme: the previous node in mount order (itself when
// alone).
func (s *System) Peer(node string) string {
	if len(s.order) <= 1 {
		return node
	}
	for i, n := range s.order {
		if n == node {
			return s.order[(i+len(s.order)-1)%len(s.order)]
		}
	}
	return node
}

type client struct {
	sys  *System
	node *nodeState
	core fsbase.ClientCore

	// One-entry cache of the cross-node read path: the round-robin peer
	// only changes while nodes are still mounting, so tag by source node
	// and rebuild on mismatch.
	peerSrc  *nodeState
	peerPath []*sim.Pipe
}

type backend client

// FSName implements fsapi.Client.
func (c *client) FSName() string { return c.core.FSName() }

// NodeName implements fsapi.Client.
func (c *client) NodeName() string { return c.core.NodeName() }

// Open implements fsapi.Client.
func (c *client) Open(p *sim.Proc, path string, truncate bool) fsapi.File {
	return c.core.Open(p, path, truncate)
}

// Remove implements fsapi.Client.
func (c *client) Remove(p *sim.Proc, path string) { c.core.Remove(p, path) }

// DropCaches implements fsapi.Client.
func (c *client) DropCaches() { c.core.DropCaches() }

// SetFlowTag implements fsapi.FlowTagger.
func (c *client) SetFlowTag(tag string) { c.core.SetFlowTag(tag) }

// StreamWrite implements fsapi.Client: the page cache absorbs up to the
// remaining dirty budget at memory speed; the rest runs at device speed
// (write-back throttling).
func (c *client) StreamWrite(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	c.core.Stamp(p)
	if fsapi.Aborted(p) {
		return
	}
	s := c.sys
	st := c.node
	ino := st.ns.Create(path, false)
	st.ns.Extend(ino, 0, total)
	st.drainDirty(p.Now())
	absorb := s.cfg.DirtyLimitBytes - st.dirty
	if absorb > total {
		absorb = total
	}
	if absorb < 0 {
		absorb = 0
	}
	if absorb > 0 {
		s.fab.Transfer(p, st.memInPath, float64(absorb), 0)
		st.dirty += absorb
	}
	if fsapi.Aborted(p) {
		return // absorbed pages stay dirty; the device spill is abandoned
	}
	if rest := total - absorb; rest > 0 {
		st.dev.StreamWrite(p, a, ioSize, float64(rest), nil, 0)
	}
}

// drainDirty credits background write-back since the last accounting
// instant: the kernel flusher pushes dirty pages at roughly half the device
// write bandwidth while the node is otherwise busy.
func (st *nodeState) drainDirty(now sim.Time) {
	elapsed := now.Sub(st.lastDrain).Seconds()
	st.lastDrain = now
	drained := int64(elapsed * st.dev.Spec().WriteBW * 0.5)
	st.dirty -= drained
	if st.dirty < 0 {
		st.dirty = 0
	}
}

// StreamRead implements fsapi.Client: data lives on the round-robin peer's
// device and crosses the interconnect (local read when this node is its
// own peer).
func (c *client) StreamRead(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	c.core.Stamp(p)
	if fsapi.Aborted(p) {
		return
	}
	s := c.sys
	src := s.nodes[s.Peer(c.node.name)]
	if src == nil {
		src = c.node
	}
	var path2 []*sim.Pipe
	if src != c.node && s.cfg.Interconnect != nil {
		if c.peerSrc != src {
			link := s.cfg.Interconnect.Links()[0]
			c.peerPath = []*sim.Pipe{
				src.nic.Dir(netsim.ClientToServer),
				link.Dir(netsim.ClientToServer),
				c.node.nic.Dir(netsim.ServerToClient),
			}
			c.peerSrc = src
		}
		path2 = c.peerPath
	}
	src.dev.StreamRead(p, a, ioSize, float64(total), path2, 0)
}

// --- op-level backend ---

// OpWrite implements fsbase.Backend: a direct device write.
func (b *backend) OpWrite(p *sim.Proc, ino *fsapi.Inode, off, n int64) {
	c := (*client)(b)
	c.node.dev.Write(p, ino.ID, off, n)
}

// OpCommit implements fsbase.Backend: fsync on a consumer SSD drains the
// volatile write cache — a device-wide barrier (see device.Flush).
func (b *backend) OpCommit(p *sim.Proc, ino *fsapi.Inode) {
	(*client)(b).node.dev.Flush(p)
}

// OpRead implements fsbase.Backend: local device read (the op-level path
// serves DLIO and fsync tests, which read node-local data).
func (b *backend) OpRead(p *sim.Proc, ino *fsapi.Inode, off, n int64) {
	c := (*client)(b)
	c.node.dev.Read(p, ino.ID, off, n)
}

// OpenLatency implements fsbase.Backend: local open is free at this
// granularity.
func (b *backend) OpenLatency(p *sim.Proc, ino *fsapi.Inode) {}

// Interface checks.
var (
	_ fsapi.Client   = (*client)(nil)
	_ fsbase.Backend = (*backend)(nil)
)
