package nvmelocal

import (
	"testing"
	"time"

	"storagesim/internal/device"
	"storagesim/internal/fsapi"
	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

func testConfig(fab *sim.Fabric) Config {
	return Config{
		Name:            "nvme-test",
		PerNode:         device.NVMe970ProSpec("ssd").Scale(3, "array"),
		MemBW:           30e9,
		DirtyLimitBytes: 4 << 30,
		PageCacheBytes:  1 << 30,
		CacheBlockBytes: 1 << 20,
		Interconnect:    netsim.NewLinkBank(fab, "ic", 1, 12.5e9, 2*time.Microsecond),
	}
}

func newTestSystem(t *testing.T) (*sim.Env, *sim.Fabric, *System) {
	t.Helper()
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	sys, err := New(env, fab, testConfig(fab))
	if err != nil {
		t.Fatal(err)
	}
	return env, fab, sys
}

func TestConfigValidate(t *testing.T) {
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	good := testConfig(fab)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.MemBW = 0 },
		func(c *Config) { c.DirtyLimitBytes = -1 },
		func(c *Config) { c.CacheBlockBytes = 0 },
		func(c *Config) { c.PerNode.WriteBW = 0 },
	}
	for i, mutate := range mutations {
		c := testConfig(fab)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNamespaceIsPerNode(t *testing.T) {
	// A file written on node A does not exist on node B (local storage).
	env, fab, sys := newTestSystem(t)
	a := sys.Mount("a", netsim.NewIface(fab, "a/nic", 25e9, 0))
	b := sys.Mount("b", netsim.NewIface(fab, "b/nic", 25e9, 0))
	env.Go("x", func(p *sim.Proc) {
		f := a.Open(p, "/data", true)
		f.WriteAt(p, 0, 1<<20)
		f.Close(p)
		g := b.Open(p, "/data", true)
		if g.Size() != 0 {
			t.Errorf("node B sees node A's file (size %d)", g.Size())
		}
	})
	env.Run()
}

func TestMountIdempotent(t *testing.T) {
	env, fab, sys := newTestSystem(t)
	_ = env
	nic := netsim.NewIface(fab, "a/nic", 25e9, 0)
	c1 := sys.Mount("a", nic)
	c2 := sys.Mount("a", nic)
	if c1 != c2 {
		t.Fatal("remounting the same node created a second client")
	}
}

func TestWriteBackAbsorbsUpToDirtyLimit(t *testing.T) {
	// 2 GiB < 4 GiB dirty limit: the stream lands at memory speed.
	env, fab, sys := newTestSystem(t)
	cl := sys.Mount("a", netsim.NewIface(fab, "a/nic", 25e9, 0))
	const total = 2 << 30
	var end sim.Time
	env.Go("x", func(p *sim.Proc) {
		cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
		end = p.Now()
	})
	env.Run()
	bw := float64(total) / sim.Duration(end).Seconds()
	if bw < 25e9 {
		t.Fatalf("small write ran at %.2e, want ~memory speed (30e9)", bw)
	}
}

func TestWriteBackThrottlesBeyondDirtyLimit(t *testing.T) {
	// 16 GiB >> 4 GiB dirty limit: most bytes run at device speed.
	env, fab, sys := newTestSystem(t)
	cl := sys.Mount("a", netsim.NewIface(fab, "a/nic", 25e9, 0))
	const total = 16 << 30
	var end sim.Time
	env.Go("x", func(p *sim.Proc) {
		cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
		end = p.Now()
	})
	env.Run()
	bw := float64(total) / sim.Duration(end).Seconds()
	devBW := testConfig(fab).PerNode.WriteBW
	if bw < devBW || bw > 2*devBW {
		t.Fatalf("throttled write = %.2e, want between device (%.2e) and 2x", bw, devBW)
	}
}

func TestBackgroundDrainRestoresBudget(t *testing.T) {
	// Fill the dirty budget, idle long enough for the flusher, then write
	// again: the second burst should absorb at memory speed.
	env, fab, sys := newTestSystem(t)
	cl := sys.Mount("a", netsim.NewIface(fab, "a/nic", 25e9, 0))
	var secondBW float64
	env.Go("x", func(p *sim.Proc) {
		cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, 4<<30) // fill budget
		p.Sleep(10 * time.Second)                               // flusher drains
		start := p.Now()
		cl.StreamWrite(p, "/g", fsapi.Sequential, 1<<20, 2<<30)
		secondBW = float64(2<<30) / p.Now().Sub(start).Seconds()
	})
	env.Run()
	if secondBW < 25e9 {
		t.Fatalf("second burst ran at %.2e, drain did not restore the budget", secondBW)
	}
}

func TestRemoteReadCrossesInterconnect(t *testing.T) {
	// With two nodes, reads come from the round-robin peer over the
	// interconnect (12.5 GB/s here, below the 8.7 GB/s device — device
	// still binds, but the path must exist and be slower than local).
	env, fab, sys := newTestSystem(t)
	a := sys.Mount("a", netsim.NewIface(fab, "a/nic", 25e9, 0))
	b := sys.Mount("b", netsim.NewIface(fab, "b/nic", 25e9, 0))
	if sys.Peer("a") != "b" || sys.Peer("b") != "a" {
		t.Fatalf("round-robin peers wrong: a->%s b->%s", sys.Peer("a"), sys.Peer("b"))
	}
	const total = 4 << 30
	var end sim.Time
	env.Go("x", func(p *sim.Proc) {
		// Peer must hold the data under the same path.
		b.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
		start := p.Now()
		a.StreamRead(p, "/f", fsapi.Sequential, 1<<20, total)
		end = sim.Time(p.Now().Sub(start))
	})
	env.Run()
	bw := float64(total) / sim.Duration(end).Seconds()
	devRead := testConfig(fab).PerNode.ReadBW
	if bw > devRead*1.05 {
		t.Fatalf("remote read %.2e exceeds the source device %.2e", bw, devRead)
	}
}

func TestSingleNodeReadsLocally(t *testing.T) {
	env, fab, sys := newTestSystem(t)
	a := sys.Mount("a", netsim.NewIface(fab, "a/nic", 25e9, 0))
	if sys.Peer("a") != "a" {
		t.Fatal("single node must be its own peer")
	}
	const total = 2 << 30
	var end sim.Time
	env.Go("x", func(p *sim.Proc) {
		a.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
		start := p.Now()
		a.StreamRead(p, "/f", fsapi.Sequential, 1<<20, total)
		end = sim.Time(p.Now().Sub(start))
	})
	env.Run()
	bw := float64(total) / sim.Duration(end).Seconds()
	if bw < 0.9*testConfig(fab).PerNode.ReadBW {
		t.Fatalf("local read = %.2e, want ~device read bw", bw)
	}
}

func TestFsyncBarrierSerializesWriters(t *testing.T) {
	// fsync-per-write throughput must be far below the raw device write
	// bandwidth: the volatile-cache drain is a device-wide barrier.
	env, fab, sys := newTestSystem(t)
	cl := sys.Mount("a", netsim.NewIface(fab, "a/nic", 25e9, 0))
	const procs, perProc = 8, 16 << 20
	var last sim.Time
	for i := 0; i < procs; i++ {
		i := i
		env.Go("w", func(p *sim.Proc) {
			f := cl.Open(p, "/f"+string(rune('0'+i)), true)
			for off := int64(0); off < perProc; off += 1 << 20 {
				f.WriteAt(p, off, 1<<20)
				f.Fsync(p)
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	env.Run()
	agg := float64(procs*perProc) / sim.Duration(last).Seconds()
	if agg > 0.3*testConfig(fab).PerNode.WriteBW {
		t.Fatalf("fsync-per-write ran at %.2e, barrier not serializing (device %.2e)",
			agg, testConfig(fab).PerNode.WriteBW)
	}
}
