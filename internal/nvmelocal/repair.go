package nvmelocal

import (
	"storagesim/internal/repair"
	"storagesim/internal/sim"
)

// Redundancy declaration (repair.Protected). A node-local NVMe scratch
// file system has no redundancy at all — the paper's Wombat nodes run a
// plain md-RAID0 of consumer SSDs — so the scheme is None: a node failure
// loses the node's whole local namespace, and the repair manager reports
// those bytes as lost instead of spawning a rebuild.

// RepairScheme implements repair.Protected.
func (s *System) RepairScheme() repair.Scheme {
	return repair.Scheme{Kind: repair.None, Tolerance: 0, ServersHoldData: true}
}

// FaultUnits implements faults.UnitTarget: one unit per mounted node (its
// NVMe array).
func (s *System) FaultUnits() int { return len(s.order) }

// FailUnit implements faults.UnitTarget.
func (s *System) FailUnit(i int) { s.FailNode(i) }

// RecoverUnit implements faults.UnitTarget.
func (s *System) RecoverUnit(i int) { s.RecoverNode(i) }

// SetUnitRebuild implements repair.Protected. With no redundancy there is
// nothing to rebuild from; the manager never calls it.
func (s *System) SetUnitRebuild(i int, frac float64) {}

// UnitBytes implements repair.Protected: the live bytes of node i's
// private namespace.
func (s *System) UnitBytes(i int) float64 {
	if i < 0 || i >= len(s.order) {
		return 0
	}
	return float64(s.nodes[s.order[i]].ns.TotalBytes())
}

// RepairPath implements repair.Protected: no scheme, no repair flows.
func (s *System) RepairPath(i int) []*sim.Pipe { return nil }

var _ repair.Protected = (*System)(nil)
