// Trace ingestion: recorded production traffic becomes simulator input.
//
// The simulator's own recorder (trace.Recorder) captures spans it generated
// itself; this file goes the other way. It parses traffic that was recorded
// outside the simulator — per-request CSV logs, JSONL event streams, or
// Darshan/DFTracer-style HPC span logs (darshan.go) — and normalizes all of
// them into one Event schema that the open-loop traffic engine can replay
// against any backend (traffic.ReplayTrace) and the fidelity harness can
// audit against (internal/fidelity). An Event is one recorded request: when
// it was issued, by which tenant, what operation, how many bytes, and —
// when the recording system measured it — how long it took. The recorded
// latency is never used to *drive* the replay (the target system decides
// how long each request takes); it is the measured reality the fidelity
// audit holds the model to.
package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"storagesim/internal/sim"
	"storagesim/internal/units"
)

// Op names the recorded operation of one request, the trace-side mirror of
// the traffic engine's workload kinds.
type Op string

// Operation kinds.
const (
	// OpRead is a sequential read of Bytes.
	OpRead Op = "read"
	// OpRandRead is a random-access read of Bytes.
	OpRandRead Op = "rand-read"
	// OpWrite is a sequential write of Bytes.
	OpWrite Op = "write"
	// OpMeta is a metadata round trip (open/close); it moves no bytes.
	OpMeta Op = "meta"
)

// Valid reports whether o is a known operation.
func (o Op) Valid() bool {
	switch o {
	case OpRead, OpRandRead, OpWrite, OpMeta:
		return true
	}
	return false
}

// MovesData reports whether the operation transfers payload bytes.
func (o Op) MovesData() bool { return o != OpMeta }

// Event is one recorded request in the common ingestion schema.
type Event struct {
	// At is the request's issue time. Parsers deliver whatever clock the
	// recording used; Normalize rebases the trace so the first event is at
	// t=0 (the simulator starts every run at zero).
	At sim.Time
	// Tenant is the traffic class the request belongs to (normalized to
	// lower case, see Normalize).
	Tenant string
	// Op is the recorded operation.
	Op Op
	// Bytes is the request payload (> 0 for data ops, 0 for OpMeta).
	Bytes int64
	// IO is the recorded per-op transfer size within the request, 0 when
	// the recording did not capture it (replay then uses its configured
	// default). Op size changes how a request loads the target — the same
	// megabyte costs more in 4 KiB ops than in one — so recordings that
	// have it should keep it.
	IO int64
	// Latency is the recorded completion latency, 0 when the recording did
	// not measure it. Fidelity audits need it; replay does not.
	Latency sim.Duration
	// Rank is the recording client/rank, or -1 when unknown. Replay pins
	// rank r onto compute node r mod nodes, so co-located requests stay
	// co-located.
	Rank int
	// File is the recorded path, "" when unknown (replay then rotates
	// through a bounded synthetic file set).
	File string
	// ID is the recorded request id, "" when absent. Normalize rejects
	// duplicates: a repeated id means the recording double-counted.
	ID string
}

// Trace is a normalized event sequence: validated, sorted by issue time,
// rebased to start at t=0.
type Trace struct {
	Events []Event
}

// Duration returns the trace span: first issue (t=0 after rebasing) to the
// last recorded completion — or the last issue when latencies were not
// recorded.
func (t *Trace) Duration() sim.Duration {
	var end sim.Time
	for _, ev := range t.Events {
		if c := ev.At.Add(ev.Latency); c > end {
			end = c
		}
	}
	return end.Sub(0)
}

// TenantNames returns the distinct tenant names in sorted order.
func (t *Trace) TenantNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, ev := range t.Events {
		if !seen[ev.Tenant] {
			seen[ev.Tenant] = true
			names = append(names, ev.Tenant)
		}
	}
	sort.Strings(names)
	return names
}

// HasLatencies reports whether every event carries a recorded latency —
// the precondition for a latency fidelity audit.
func (t *Trace) HasLatencies() bool {
	for _, ev := range t.Events {
		if ev.Latency <= 0 {
			return false
		}
	}
	return len(t.Events) > 0
}

// NormalizeTenant maps a recorded tenant label to its canonical form:
// trimmed, lower-cased, inner whitespace collapsed to "-". Tenant names
// become path components and fabric flow tags, so they must be stable
// across recording systems that disagree about case and spacing.
func NormalizeTenant(raw string) string {
	return strings.Join(strings.Fields(strings.ToLower(raw)), "-")
}

// validate reports the first problem with a single (pre-normalization)
// event. i is the event's position for error messages.
func (e *Event) validate(i int) error {
	switch {
	case e.Tenant == "":
		return fmt.Errorf("event %d: empty tenant", i)
	case !e.Op.Valid():
		return fmt.Errorf("event %d: unknown op %q", i, e.Op)
	case e.Op.MovesData() && e.Bytes <= 0:
		return fmt.Errorf("event %d: %s of %d bytes (data ops need positive bytes)", i, e.Op, e.Bytes)
	case !e.Op.MovesData() && (e.Bytes != 0 || e.IO != 0):
		return fmt.Errorf("event %d: %s carries %d bytes (metadata ops move none)", i, e.Op, e.Bytes+e.IO)
	case e.IO < 0:
		return fmt.Errorf("event %d: negative io size %d", i, e.IO)
	case e.At < 0:
		return fmt.Errorf("event %d: negative timestamp %v", i, sim.Duration(e.At))
	case e.Latency < 0:
		return fmt.Errorf("event %d: negative latency %v", i, e.Latency)
	case e.Rank < -1:
		return fmt.Errorf("event %d: rank %d out of range", i, e.Rank)
	}
	return nil
}

// Normalize validates raw parsed events and produces a Trace: tenant names
// canonicalized (two *distinct* recorded names that collide after
// canonicalization are an error — silently merging "ML " into "ml" would
// misattribute every byte), duplicate request ids rejected, events stably
// sorted by issue time (recorded logs are routinely out of order across
// ranks), and timestamps rebased so the first event is at t=0.
func Normalize(events []Event) (*Trace, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("trace: no events")
	}
	out := make([]Event, len(events))
	copy(out, events)
	canon := map[string]string{} // normalized -> first raw spelling
	ids := map[string]int{}
	for i := range out {
		ev := &out[i]
		if err := ev.validate(i); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		norm := NormalizeTenant(ev.Tenant)
		if norm == "" {
			return nil, fmt.Errorf("trace: event %d: tenant %q normalizes to nothing", i, ev.Tenant)
		}
		if first, ok := canon[norm]; ok && first != ev.Tenant {
			return nil, fmt.Errorf("trace: tenants %q and %q collide after normalization (%q)", first, ev.Tenant, norm)
		} else if !ok {
			canon[norm] = ev.Tenant
		}
		ev.Tenant = norm
		if ev.ID != "" {
			if j, dup := ids[ev.ID]; dup {
				return nil, fmt.Errorf("trace: events %d and %d share request id %q", j, i, ev.ID)
			}
			ids[ev.ID] = i
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	base := out[0].At
	for i := range out {
		out[i].At -= base
	}
	return &Trace{Events: out}, nil
}

// Format names a trace encoding.
type Format string

// Supported trace encodings.
const (
	// CSV is the per-request table format (see ParseCSV).
	CSV Format = "csv"
	// JSONL is one JSON event object per line (see ParseJSONL).
	JSONL Format = "jsonl"
	// DXT is the Darshan DXT text dump (see ParseDXT in darshan.go).
	DXT Format = "dxt"
	// Chrome is the DFTracer-style Chrome trace-event JSON this package
	// already reads and writes (spans converted via EventsFromSpans).
	Chrome Format = "chrome"
)

// DetectFormat guesses the encoding from a file name. Unknown extensions
// default to CSV, the plainest of the formats.
func DetectFormat(name string) Format {
	switch strings.ToLower(filepath.Ext(name)) {
	case ".jsonl", ".ndjson":
		return JSONL
	case ".json":
		return Chrome
	case ".dxt", ".darshan":
		return DXT
	default:
		return CSV
	}
}

// ParseEvents parses data in the given format into raw events (pass them
// through Normalize before use). tenant is the fallback traffic class for
// formats that do not record one (DXT, Chrome).
func ParseEvents(data []byte, f Format, tenant string) ([]Event, error) {
	switch f {
	case CSV:
		return ParseCSV(bytes.NewReader(data))
	case JSONL:
		return ParseJSONL(bytes.NewReader(data))
	case DXT:
		return ParseDXT(bytes.NewReader(data), tenant)
	case Chrome:
		spans, err := ReadChromeTrace(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return EventsFromSpans(spans, tenant), nil
	}
	return nil, fmt.Errorf("trace: unknown format %q", f)
}

// CSV format: a header row naming a subset of the known columns, then one
// row per request.
//
//	ts,tenant,op,bytes,io,latency,rank,file,id
//	0,ml,rand-read,1m,128k,12ms,3,/data/f1,r1
//	0.25,ckpt,write,4m,,,0,,
//
// ts and latency accept Go duration syntax or bare seconds; bytes and io
// accept the IOR suffix syntax ("1m", "256k") or a bare count. ts, tenant
// and op are required; the rest may be empty or omitted entirely. Unknown
// columns are rejected, the DisallowUnknownFields stance of
// traffic.ParseSpec: a typoed "latncy" column silently dropping every
// recorded latency would void a whole fidelity audit.

// csvColumns is the full recognized header set.
var csvColumns = []string{"ts", "tenant", "op", "bytes", "io", "latency", "rank", "file", "id"}

// ParseCSV parses the CSV trace format.
func ParseCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: csv: no header: %v", err)
	}
	col := map[string]int{}
	for i, name := range header {
		name = strings.TrimSpace(strings.ToLower(name))
		known := false
		for _, k := range csvColumns {
			if name == k {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("trace: csv: unknown column %q", name)
		}
		if _, dup := col[name]; dup {
			return nil, fmt.Errorf("trace: csv: duplicate column %q", name)
		}
		col[name] = i
	}
	for _, req := range []string{"ts", "tenant", "op"} {
		if _, ok := col[req]; !ok {
			return nil, fmt.Errorf("trace: csv: missing required column %q", req)
		}
	}
	field := func(row []string, name string) string {
		i, ok := col[name]
		if !ok || i >= len(row) {
			return ""
		}
		return strings.TrimSpace(row[i])
	}
	var events []Event
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %v", line, err)
		}
		ev := Event{Rank: -1}
		ts, err := units.ParseDuration(field(row, "ts"))
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: ts: %v", line, err)
		}
		ev.At = sim.Time(0).Add(ts)
		ev.Tenant = field(row, "tenant")
		ev.Op = Op(field(row, "op"))
		if s := field(row, "bytes"); s != "" {
			b, err := units.ParseBytes(s)
			if err != nil {
				return nil, fmt.Errorf("trace: csv line %d: bytes: %v", line, err)
			}
			ev.Bytes = int64(b)
		}
		if s := field(row, "io"); s != "" {
			b, err := units.ParseBytes(s)
			if err != nil {
				return nil, fmt.Errorf("trace: csv line %d: io: %v", line, err)
			}
			ev.IO = int64(b)
		}
		if s := field(row, "latency"); s != "" {
			if ev.Latency, err = units.ParseDuration(s); err != nil {
				return nil, fmt.Errorf("trace: csv line %d: latency: %v", line, err)
			}
		}
		if s := field(row, "rank"); s != "" {
			if ev.Rank, err = strconv.Atoi(s); err != nil {
				return nil, fmt.Errorf("trace: csv line %d: rank: %v", line, err)
			}
		}
		ev.File = field(row, "file")
		ev.ID = field(row, "id")
		events = append(events, ev)
	}
	return events, nil
}

// WriteCSV renders events in the canonical CSV form ParseCSV reads back
// (durations in Go syntax, bytes as bare counts).
func WriteCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvColumns); err != nil {
		return err
	}
	for _, ev := range events {
		rank := ""
		if ev.Rank >= 0 {
			rank = strconv.Itoa(ev.Rank)
		}
		lat := ""
		if ev.Latency != 0 {
			lat = ev.Latency.String()
		}
		io := ""
		if ev.IO != 0 {
			io = strconv.FormatInt(ev.IO, 10)
		}
		row := []string{
			sim.Duration(ev.At).String(),
			ev.Tenant,
			string(ev.Op),
			strconv.FormatInt(ev.Bytes, 10),
			io,
			lat,
			rank,
			ev.File,
			ev.ID,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// JSONL format: one JSON object per line, blank lines skipped.
//
//	{"ts":"1.5s","tenant":"ml","op":"rand-read","bytes":"1m","latency":"12ms","rank":3,"file":"/f","id":"r1"}
//
// Fields mirror the CSV columns; "bytes" accepts a number or a suffixed
// string. Unknown fields are rejected per line.

// jsonBytes accepts a JSON number or a size string with IOR suffixes.
type jsonBytes int64

func (b *jsonBytes) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := units.ParseBytes(s)
		if err != nil {
			return err
		}
		*b = jsonBytes(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("bytes must be a number or a size string: %s", data)
	}
	*b = jsonBytes(n)
	return nil
}

func (b jsonBytes) MarshalJSON() ([]byte, error) {
	return []byte(strconv.FormatInt(int64(b), 10)), nil
}

type jsonEvent struct {
	Ts      string    `json:"ts"`
	Tenant  string    `json:"tenant"`
	Op      string    `json:"op"`
	Bytes   jsonBytes `json:"bytes,omitempty"`
	IO      jsonBytes `json:"io,omitempty"`
	Latency string    `json:"latency,omitempty"`
	Rank    *int      `json:"rank,omitempty"`
	File    string    `json:"file,omitempty"`
	ID      string    `json:"id,omitempty"`
}

// ParseJSONL parses the JSONL trace format.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	// Split on newlines by hand rather than bufio.Scanner: recorded lines
	// can exceed any fixed token size.
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: jsonl: %v", err)
	}
	for n, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %v", n+1, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("trace: jsonl line %d: trailing data after event", n+1)
		}
		ev := Event{
			Tenant: je.Tenant,
			Op:     Op(je.Op),
			Bytes:  int64(je.Bytes),
			IO:     int64(je.IO),
			File:   je.File,
			ID:     je.ID,
			Rank:   -1,
		}
		ts, err := units.ParseDuration(je.Ts)
		if err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: ts: %v", n+1, err)
		}
		ev.At = sim.Time(0).Add(ts)
		if je.Latency != "" {
			if ev.Latency, err = units.ParseDuration(je.Latency); err != nil {
				return nil, fmt.Errorf("trace: jsonl line %d: latency: %v", n+1, err)
			}
		}
		if je.Rank != nil {
			ev.Rank = *je.Rank
		}
		events = append(events, ev)
	}
	return events, nil
}

// WriteJSONL renders events in the canonical JSONL form ParseJSONL reads
// back — the format the traffic engine's recording observer emits, so a
// synthetic run can be re-ingested bit-for-bit (the round-trip fidelity
// test).
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for i := range events {
		ev := &events[i]
		je := jsonEvent{
			Ts:     sim.Duration(ev.At).String(),
			Tenant: ev.Tenant,
			Op:     string(ev.Op),
			Bytes:  jsonBytes(ev.Bytes),
			IO:     jsonBytes(ev.IO),
			File:   ev.File,
			ID:     ev.ID,
		}
		if ev.Latency != 0 {
			je.Latency = ev.Latency.String()
		}
		if ev.Rank >= 0 {
			rank := ev.Rank
			je.Rank = &rank
		}
		if err := enc.Encode(&je); err != nil {
			return err
		}
	}
	return nil
}
