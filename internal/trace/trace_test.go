package trace

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"storagesim/internal/sim"
)

func ms(x int64) sim.Time { return sim.Time(x * int64(time.Millisecond)) }

func TestRecorderSkipsEmptySpans(t *testing.T) {
	r := NewRecorder()
	r.Record(0, Read, 10, 10, 100)
	r.Record(0, Read, 10, 5, 100)
	r.Record(0, Read, 10, 20, 100)
	if r.Len() != 1 {
		t.Fatalf("len = %d, want 1", r.Len())
	}
}

func TestAnalyzeDisjoint(t *testing.T) {
	// read 0-10ms, compute 10-90ms: no overlap.
	spans := []Span{
		{Rank: 0, Kind: Read, Start: ms(0), End: ms(10), Bytes: 1000},
		{Rank: 0, Kind: Compute, Start: ms(10), End: ms(90)},
	}
	a := Analyze(spans)
	if a.TotalIO != 10*time.Millisecond || a.OverlapIO != 0 || a.NonOverlapIO != 10*time.Millisecond {
		t.Fatalf("analysis = %+v", a)
	}
	if a.ComputeTime != 80*time.Millisecond {
		t.Fatalf("compute = %v", a.ComputeTime)
	}
	if a.Bytes != 1000 {
		t.Fatalf("bytes = %d", a.Bytes)
	}
}

func TestAnalyzeFullOverlap(t *testing.T) {
	// read hidden entirely inside compute.
	spans := []Span{
		{Rank: 0, Kind: Compute, Start: ms(0), End: ms(100)},
		{Rank: 0, Kind: Read, Start: ms(20), End: ms(60), Bytes: 4096},
	}
	a := Analyze(spans)
	if a.OverlapIO != 40*time.Millisecond || a.NonOverlapIO != 0 {
		t.Fatalf("analysis = %+v", a)
	}
	if a.HiddenFraction() != 1.0 {
		t.Fatalf("hidden = %v", a.HiddenFraction())
	}
}

func TestAnalyzePartialOverlap(t *testing.T) {
	spans := []Span{
		{Rank: 0, Kind: Read, Start: ms(0), End: ms(30), Bytes: 1},
		{Rank: 0, Kind: Compute, Start: ms(20), End: ms(50)},
	}
	a := Analyze(spans)
	if a.OverlapIO != 10*time.Millisecond || a.NonOverlapIO != 20*time.Millisecond {
		t.Fatalf("analysis = %+v", a)
	}
}

func TestAnalyzeUnionsConcurrentReaders(t *testing.T) {
	// Four I/O threads reading simultaneously occupy the rank's pipeline
	// once, not four times.
	var spans []Span
	for i := 0; i < 4; i++ {
		spans = append(spans, Span{Rank: 0, Kind: Read, Start: ms(0), End: ms(10), Bytes: 100})
	}
	a := Analyze(spans)
	if a.TotalIO != 10*time.Millisecond {
		t.Fatalf("total IO = %v, want 10ms (unioned)", a.TotalIO)
	}
	if a.Bytes != 400 {
		t.Fatalf("bytes = %d, want all payload counted", a.Bytes)
	}
}

func TestAnalyzePerRankIsolation(t *testing.T) {
	// Overlap is within a rank: rank 1's compute does not hide rank 0's IO.
	spans := []Span{
		{Rank: 0, Kind: Read, Start: ms(0), End: ms(10), Bytes: 1},
		{Rank: 1, Kind: Compute, Start: ms(0), End: ms(10)},
	}
	a := Analyze(spans)
	if a.OverlapIO != 0 || a.NonOverlapIO != 10*time.Millisecond {
		t.Fatalf("analysis = %+v", a)
	}
	if a.Ranks != 2 {
		t.Fatalf("ranks = %d", a.Ranks)
	}
}

func TestThroughputs(t *testing.T) {
	spans := []Span{
		{Rank: 0, Kind: Compute, Start: ms(0), End: ms(100)},
		{Rank: 0, Kind: Read, Start: ms(50), End: ms(150), Bytes: 100e6},
	}
	a := Analyze(spans)
	// total IO 100ms, overlap 50ms, nonoverlap 50ms.
	if got := a.SysThroughput(); got != 1e9 {
		t.Fatalf("sys throughput = %v", got)
	}
	if got := a.AppThroughput(); got != 2e9 {
		t.Fatalf("app throughput = %v", got)
	}
	if a.AppThroughput() < a.SysThroughput() {
		t.Fatal("app throughput must be >= system throughput")
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Record(0, Read, ms(1), ms(2), 12345)
	r.Record(1, Compute, ms(2), ms(5), 0)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Spans()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip lost spans: %v", back)
	}
	if back[0] != r.Spans()[0] || back[1] != r.Spans()[1] {
		t.Fatalf("round trip mismatch:\n%v\n%v", back, r.Spans())
	}
}

// Property: for any span set, NonOverlap + Overlap == Total, overlap is
// bounded by both total IO and compute, and all are non-negative.
func TestAnalysisInvariantsProperty(t *testing.T) {
	f := func(raw []struct {
		Rank  uint8
		Kind  bool
		Start uint16
		Len   uint16
	}) bool {
		var spans []Span
		for _, s := range raw {
			k := Read
			if s.Kind {
				k = Compute
			}
			spans = append(spans, Span{
				Rank:  int(s.Rank % 4),
				Kind:  k,
				Start: sim.Time(s.Start),
				End:   sim.Time(uint32(s.Start) + uint32(s.Len%1000) + 1),
				Bytes: 1,
			})
		}
		a := Analyze(spans)
		if a.TotalIO < 0 || a.OverlapIO < 0 || a.NonOverlapIO < 0 || a.ComputeTime < 0 {
			return false
		}
		if a.NonOverlapIO+a.OverlapIO != a.TotalIO {
			return false
		}
		if a.OverlapIO > a.TotalIO || a.OverlapIO > a.ComputeTime {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionIntervals(t *testing.T) {
	iv := []interval{{5, 10}, {0, 3}, {2, 6}, {20, 25}}
	merged := unionIntervals(iv)
	if len(merged) != 2 {
		t.Fatalf("merged = %v", merged)
	}
	if merged[0].start != 0 || merged[0].end != 10 || merged[1].start != 20 || merged[1].end != 25 {
		t.Fatalf("merged = %v", merged)
	}
	if totalLen(merged) != 15 {
		t.Fatalf("total = %v", totalLen(merged))
	}
}

func TestIntersectLen(t *testing.T) {
	a := []interval{{0, 10}, {20, 30}}
	b := []interval{{5, 25}}
	if got := intersectLen(a, b); got != 10 {
		t.Fatalf("intersect = %v, want 10", got)
	}
	if got := intersectLen(a, nil); got != 0 {
		t.Fatalf("intersect with empty = %v", got)
	}
}
