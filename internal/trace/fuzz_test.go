package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// The trace parsers sit on the untrusted boundary of the pipeline: they
// eat whatever a recording system produced. Both fuzzers pin the same
// contract as FuzzTenantSpec and FuzzSchedule do for their parsers — no
// panic on any input, and every stream the parser and Normalize both
// accept must survive a write/re-parse/re-normalize round trip event for
// event (the recorder emits through the same writers, so a lossy codec
// would silently corrupt every recorded fixture).

// roundTrip re-encodes an accepted trace and asserts re-ingestion
// reproduces it exactly.
func roundTrip(t *testing.T, tr *Trace,
	write func(io.Writer, []Event) error, parse func([]byte) ([]Event, error)) {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf, tr.Events); err != nil {
		t.Fatalf("accepted trace does not encode: %v", err)
	}
	back, err := parse(buf.Bytes())
	if err != nil {
		t.Fatalf("encoded trace does not re-parse: %v\n%s", err, buf.String())
	}
	tr2, err := Normalize(back)
	if err != nil {
		t.Fatalf("re-parsed trace does not re-normalize: %v", err)
	}
	if !reflect.DeepEqual(tr2.Events, tr.Events) {
		t.Fatalf("round trip changed events:\n%+v\nwant:\n%+v", tr2.Events, tr.Events)
	}
}

func FuzzParseTraceCSV(f *testing.F) {
	for _, seed := range []string{
		"ts,tenant,op,bytes,io,latency,rank,file,id\n0,ml,rand-read,1m,128k,12ms,3,/data/f1,r1\n",
		"ts,tenant,op,bytes\n0,a,read,4k\n1.5,a,write,1m\n",
		"ts,tenant,op\n0,m,meta\n",
		"ts,tenant,op,latency\n0.25,A Team,read,5ms\n",        // needs bytes: rejected later
		"ts,tenant,op,bytes\n-1,a,read,4k\n",                  // negative ts: rejected later
		"ts,tenant,op,bytes,id\n0,a,read,1,x\n1,a,read,1,x\n", // dup id
		"ts,tenant,op,nope\n",
		"ts,tenant\n",
		"\"ts\n",
		"",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ParseCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		tr, err := Normalize(events)
		if err != nil {
			return
		}
		roundTrip(t, tr, WriteCSV, func(b []byte) ([]Event, error) { return ParseCSV(bytes.NewReader(b)) })
	})
}

func FuzzParseTraceJSONL(f *testing.F) {
	for _, seed := range []string{
		`{"ts":"1.5s","tenant":"ml","op":"rand-read","bytes":"1m","io":"128k","latency":"12ms","rank":3,"file":"/f","id":"r1"}` + "\n",
		`{"ts":"0","tenant":"a","op":"read","bytes":4096}` + "\n" + `{"ts":"1s","tenant":"a","op":"write","bytes":1}` + "\n",
		`{"ts":"0","tenant":"m","op":"meta"}` + "\n",
		`{"ts":"0","tenant":"a","op":"read","bytes":1,"rank":-1}` + "\n",
		`{"ts":"0","tenant":"a","op":"read","bytes":1,"unknown":true}` + "\n",
		`{"ts":"0","tenant":"a","op":"read","bytes":1}{"ts":"0"}` + "\n",
		`{}`,
		`[]`,
		"not json\n",
		"",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ParseJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		tr, err := Normalize(events)
		if err != nil {
			return
		}
		roundTrip(t, tr, WriteJSONL, func(b []byte) ([]Event, error) { return ParseJSONL(bytes.NewReader(b)) })
	})
}
