// Package trace is the simulator's DFTracer: it records per-rank "read"
// and "compute" spans during a DLIO run, computes the paper's I/O-time
// decomposition — non-overlapping I/O, overlapping I/O, pure compute
// (Section VI-A) — and derives the two throughput views: the application
// throughput (the app only perceives I/O that stalls its compute) and the
// system throughput (the system is busy for all I/O time). Traces export to
// Chrome trace-event JSON for inspection.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"storagesim/internal/sim"
)

// Kind labels a span.
type Kind int

const (
	// Read spans cover time a rank's I/O pipeline spends fetching samples.
	Read Kind = iota
	// Compute spans cover model training steps.
	Compute
	// Write spans cover checkpoint and output writes; they count as I/O in
	// the overlap analysis alongside reads.
	Write
)

// String returns "read", "compute" or "write".
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Compute:
		return "compute"
	default:
		return "write"
	}
}

// Span is one recorded interval.
type Span struct {
	Rank  int
	Kind  Kind
	Start sim.Time
	End   sim.Time
	Bytes int64 // payload for read spans; 0 for compute
}

// Duration returns the span length.
func (s Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// Recorder collects spans for one run. It is used from simulated processes
// only, which the kernel serializes, so no locking is needed.
type Recorder struct {
	spans []Span
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends a span; zero- and negative-length spans are kept out.
func (r *Recorder) Record(rank int, k Kind, start, end sim.Time, bytes int64) {
	if end <= start {
		return
	}
	r.spans = append(r.spans, Span{Rank: rank, Kind: k, Start: start, End: end, Bytes: bytes})
}

// Spans returns the recorded spans in record order.
func (r *Recorder) Spans() []Span { return r.spans }

// Len returns the span count.
func (r *Recorder) Len() int { return len(r.spans) }

// Analysis is the per-run I/O time decomposition.
type Analysis struct {
	// Ranks is the number of distinct ranks seen.
	Ranks int
	// TotalIO is the summed read-span time across ranks (overlapping reads
	// within one rank are unioned first: four I/O threads fetching at once
	// occupy the rank's pipeline once, not four times).
	TotalIO sim.Duration
	// OverlapIO is the part of TotalIO that ran concurrently with the same
	// rank's compute.
	OverlapIO sim.Duration
	// NonOverlapIO = TotalIO - OverlapIO: the stalls the application
	// perceives.
	NonOverlapIO sim.Duration
	// ComputeTime is the summed (unioned per rank) compute time.
	ComputeTime sim.Duration
	// Bytes is the total payload read.
	Bytes int64
}

// AppThroughput returns bytes over the I/O time the application perceives
// (non-overlapping only). Fully hidden I/O yields +Inf-free large values
// because the first batch can never overlap; callers report it as is.
func (a Analysis) AppThroughput() float64 {
	if a.NonOverlapIO <= 0 {
		return 0
	}
	return float64(a.Bytes) / a.NonOverlapIO.Seconds()
}

// SysThroughput returns bytes over total I/O time.
func (a Analysis) SysThroughput() float64 {
	if a.TotalIO <= 0 {
		return 0
	}
	return float64(a.Bytes) / a.TotalIO.Seconds()
}

// HiddenFraction returns OverlapIO/TotalIO — how much of the I/O the
// asynchronous input pipeline managed to hide.
func (a Analysis) HiddenFraction() float64 {
	if a.TotalIO <= 0 {
		return 0
	}
	return a.OverlapIO.Seconds() / a.TotalIO.Seconds()
}

// String renders the decomposition.
func (a Analysis) String() string {
	return fmt.Sprintf("io=%v (overlap=%v nonoverlap=%v) compute=%v hidden=%.0f%%",
		a.TotalIO, a.OverlapIO, a.NonOverlapIO, a.ComputeTime, 100*a.HiddenFraction())
}

// interval is a half-open [start, end) pair used by the union machinery.
type interval struct{ start, end sim.Time }

// unionIntervals merges overlapping intervals in place and returns the
// merged set in ascending order.
func unionIntervals(iv []interval) []interval {
	if len(iv) == 0 {
		return iv
	}
	sort.Slice(iv, func(a, b int) bool { return iv[a].start < iv[b].start })
	out := iv[:1]
	for _, in := range iv[1:] {
		last := &out[len(out)-1]
		if in.start <= last.end {
			if in.end > last.end {
				last.end = in.end
			}
			continue
		}
		out = append(out, in)
	}
	return out
}

// totalLen sums interval lengths.
func totalLen(iv []interval) sim.Duration {
	var d sim.Duration
	for _, in := range iv {
		d += in.end.Sub(in.start)
	}
	return d
}

// intersectLen returns the total overlap between two merged interval sets.
func intersectLen(a, b []interval) sim.Duration {
	var d sim.Duration
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].start
		if b[j].start > lo {
			lo = b[j].start
		}
		hi := a[i].end
		if b[j].end < hi {
			hi = b[j].end
		}
		if hi > lo {
			d += hi.Sub(lo)
		}
		if a[i].end < b[j].end {
			i++
		} else {
			j++
		}
	}
	return d
}

// Analyze computes the decomposition over the recorded spans.
func Analyze(spans []Span) Analysis {
	perRank := map[int]*struct {
		reads, computes []interval
		bytes           int64
	}{}
	for _, s := range spans {
		st, ok := perRank[s.Rank]
		if !ok {
			st = &struct {
				reads, computes []interval
				bytes           int64
			}{}
			perRank[s.Rank] = st
		}
		iv := interval{s.Start, s.End}
		if s.Kind == Compute {
			st.computes = append(st.computes, iv)
		} else {
			st.reads = append(st.reads, iv)
			st.bytes += s.Bytes
		}
	}
	var a Analysis
	a.Ranks = len(perRank)
	for _, st := range perRank {
		reads := unionIntervals(st.reads)
		computes := unionIntervals(st.computes)
		io := totalLen(reads)
		overlap := intersectLen(reads, computes)
		a.TotalIO += io
		a.OverlapIO += overlap
		a.ComputeTime += totalLen(computes)
		a.Bytes += st.bytes
	}
	a.NonOverlapIO = a.TotalIO - a.OverlapIO
	return a
}

// chromeEvent is one Chrome trace-event ("X" complete events).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Args struct {
		Bytes int64 `json:"bytes,omitempty"`
	} `json:"args"`
}

// WriteChromeTrace serializes the spans as a Chrome trace-event JSON array
// (load it in chrome://tracing or Perfetto).
func WriteChromeTrace(w io.Writer, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Kind.String(),
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Duration()) / 1e3,
			Pid:  s.Rank,
			Tid:  int(s.Kind),
		}
		ev.Args.Bytes = s.Bytes
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}

// ReadChromeTrace parses a trace written by WriteChromeTrace back into
// spans (used by cmd/tracestat).
func ReadChromeTrace(r io.Reader) ([]Span, error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	spans := make([]Span, 0, len(doc.TraceEvents))
	for _, ev := range doc.TraceEvents {
		k := Read
		switch ev.Name {
		case "compute":
			k = Compute
		case "write":
			k = Write
		}
		start := sim.Time(ev.Ts * 1e3)
		spans = append(spans, Span{
			Rank:  ev.Pid,
			Kind:  k,
			Start: start,
			End:   start + sim.Time(ev.Dur*1e3),
			Bytes: ev.Args.Bytes,
		})
	}
	return spans, nil
}
