// Darshan/DFTracer-style HPC span-log ingestion. HPC I/O recordings come
// as per-operation span logs, not request streams: Darshan's DXT module
// dumps one line per POSIX/MPI-IO segment with rank, direction, offset,
// length and start/end seconds, and DFTracer emits Chrome trace-event JSON
// (the format this package already writes). Both reduce to the common
// Event schema: one event per recorded I/O span, issue time = span start,
// recorded latency = span duration.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"storagesim/internal/sim"
)

// DefaultHPCTenant is the traffic class assigned to span logs that record
// no tenant of their own (a Darshan log covers exactly one job).
const DefaultHPCTenant = "hpc"

// ParseDXT parses a Darshan DXT text dump (the output of
// darshan-dxt-parser) into events. Recognized record lines carry eight
// fields:
//
//	# DXT, file_id: 16592106915301738621, file_name: /p/lustre/ior.data
//	X_POSIX	0	write	0	0	1048576	0.0013	0.0130
//
// i.e. module, rank, read|write, segment, offset, length, start(s),
// end(s). "# DXT, file_name:" headers set the file attributed to the
// records that follow; other comment lines and blank lines are skipped.
// All events are assigned the given tenant (DefaultHPCTenant when empty).
func ParseDXT(r io.Reader, tenant string) ([]Event, error) {
	if tenant == "" {
		tenant = DefaultHPCTenant
	}
	var events []Event
	file := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if name, ok := dxtFileName(text); ok {
				file = name
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 8 {
			return nil, fmt.Errorf("trace: dxt line %d: want 8 fields (module rank op segment offset length start end), got %d", line, len(fields))
		}
		rank, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: dxt line %d: rank: %v", line, err)
		}
		var op Op
		switch strings.ToLower(fields[2]) {
		case "write":
			op = OpWrite
		case "read":
			op = OpRead
		default:
			return nil, fmt.Errorf("trace: dxt line %d: op %q (want read or write)", line, fields[2])
		}
		length, err := strconv.ParseInt(fields[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: dxt line %d: length: %v", line, err)
		}
		start, err := strconv.ParseFloat(fields[6], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: dxt line %d: start: %v", line, err)
		}
		end, err := strconv.ParseFloat(fields[7], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: dxt line %d: end: %v", line, err)
		}
		if end < start {
			return nil, fmt.Errorf("trace: dxt line %d: span ends (%.6fs) before it starts (%.6fs)", line, end, start)
		}
		// A DXT record is one segment, i.e. a single operation: the op size
		// is the payload itself, and replay must not re-chunk it. Start and
		// end are rounded to whole nanoseconds independently before
		// subtracting, so the latency is exactly their difference.
		startNs := sim.Time(math.Round(start * 1e9))
		endNs := sim.Time(math.Round(end * 1e9))
		events = append(events, Event{
			At:      startNs,
			Tenant:  tenant,
			Op:      op,
			Bytes:   length,
			IO:      length,
			Latency: endNs.Sub(startNs),
			Rank:    rank,
			File:    file,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: dxt: %v", err)
	}
	return events, nil
}

// dxtFileName extracts the file_name from a "# DXT, ..." header line.
func dxtFileName(line string) (string, bool) {
	const key = "file_name:"
	i := strings.Index(line, key)
	if i < 0 {
		return "", false
	}
	name := strings.TrimSpace(line[i+len(key):])
	if j := strings.IndexByte(name, ','); j >= 0 {
		name = strings.TrimSpace(name[:j])
	}
	return name, name != ""
}

// EventsFromSpans converts recorded I/O spans (a DFTracer-style Chrome
// trace, or this package's own Recorder output) into ingestion events:
// read and write spans become events at their start time with the span
// duration as recorded latency; compute spans carry no I/O and are
// dropped.
func EventsFromSpans(spans []Span, tenant string) []Event {
	if tenant == "" {
		tenant = DefaultHPCTenant
	}
	events := make([]Event, 0, len(spans))
	for _, s := range spans {
		if s.Kind == Compute {
			continue
		}
		op := OpRead
		if s.Kind == Write {
			op = OpWrite
		}
		events = append(events, Event{
			At:      s.Start,
			Tenant:  tenant,
			Op:      op,
			Bytes:   s.Bytes,
			Latency: s.Duration(),
			Rank:    s.Rank,
		})
	}
	return events
}
