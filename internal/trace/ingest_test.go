package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"storagesim/internal/sim"
)

// ev builds a valid data event for tests; fields are then perturbed.
func ev(at sim.Duration, tenant string, op Op, bytes int64) Event {
	return Event{At: sim.Time(0).Add(at), Tenant: tenant, Op: op, Bytes: bytes, Rank: -1}
}

// TestNormalizeSortsAndRebases: recorded logs are routinely out of order
// across ranks and on an arbitrary clock; Normalize must deliver a stably
// sorted stream starting at t=0.
func TestNormalizeSortsAndRebases(t *testing.T) {
	a := ev(5*time.Second, "a", OpRead, 10)
	b := ev(3*time.Second, "b", OpWrite, 20)
	c := ev(9*time.Second, "c", OpRead, 30)
	tr, err := Normalize([]Event{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if got := []string{tr.Events[0].Tenant, tr.Events[1].Tenant, tr.Events[2].Tenant}; !reflect.DeepEqual(got, []string{"b", "a", "c"}) {
		t.Fatalf("sort order %v", got)
	}
	if tr.Events[0].At != 0 {
		t.Fatalf("first event not rebased to 0: %v", tr.Events[0].At)
	}
	if d := tr.Events[2].At.Sub(tr.Events[0].At); d != 6*time.Second {
		t.Fatalf("relative spacing changed: %v", d)
	}
	// Equal timestamps: the sort must be stable (recording order is the
	// only tiebreak the data offers).
	x := ev(time.Second, "x", OpRead, 1)
	y := ev(time.Second, "y", OpRead, 1)
	tr, err = Normalize([]Event{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events[0].Tenant != "x" || tr.Events[1].Tenant != "y" {
		t.Fatalf("tie order not stable: %v %v", tr.Events[0].Tenant, tr.Events[1].Tenant)
	}
}

// TestNormalizeTenantNames: canonicalization folds case and whitespace;
// distinct recorded spellings that collide are an error, the same spelling
// repeated is not.
func TestNormalizeTenantNames(t *testing.T) {
	tr, err := Normalize([]Event{ev(0, "ML Train", OpRead, 1), ev(time.Second, "ML Train", OpRead, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events[0].Tenant != "ml-train" {
		t.Fatalf("canonical name %q", tr.Events[0].Tenant)
	}
	_, err = Normalize([]Event{ev(0, "ML ", OpRead, 1), ev(time.Second, "ml", OpRead, 1)})
	if err == nil || !strings.Contains(err.Error(), "collide") {
		t.Fatalf("colliding tenants accepted: %v", err)
	}
}

// TestNormalizeRejects: the validation table — every malformed event the
// parsers can deliver must be refused with a pointed error.
func TestNormalizeRejects(t *testing.T) {
	dup1 := ev(0, "a", OpRead, 1)
	dup1.ID = "r1"
	dup2 := ev(time.Second, "a", OpRead, 1)
	dup2.ID = "r1"
	metaBytes := ev(0, "a", OpMeta, 0)
	metaBytes.Bytes = 7
	metaIO := ev(0, "a", OpMeta, 0)
	metaIO.IO = 7
	negIO := ev(0, "a", OpRead, 8)
	negIO.IO = -1
	negAt := ev(0, "a", OpRead, 8)
	negAt.At = -5
	negLat := ev(0, "a", OpRead, 8)
	negLat.Latency = -time.Second
	badRank := ev(0, "a", OpRead, 8)
	badRank.Rank = -2
	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{"no events", nil, "no events"},
		{"empty tenant", []Event{ev(0, "", OpRead, 1)}, "empty tenant"},
		{"blank tenant", []Event{ev(0, "  ", OpRead, 1)}, "normalizes to nothing"},
		{"unknown op", []Event{ev(0, "a", Op("scan"), 1)}, "unknown op"},
		{"zero-byte read", []Event{ev(0, "a", OpRead, 0)}, "positive bytes"},
		{"negative-byte write", []Event{ev(0, "a", OpWrite, -4)}, "positive bytes"},
		{"meta with bytes", []Event{metaBytes}, "move none"},
		{"meta with io", []Event{metaIO}, "move none"},
		{"negative io", []Event{negIO}, "negative io"},
		{"negative timestamp", []Event{negAt}, "negative timestamp"},
		{"negative latency", []Event{negLat}, "negative latency"},
		{"rank out of range", []Event{badRank}, "out of range"},
		{"duplicate ids", []Event{dup1, dup2}, "share request id"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Normalize(tc.events)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestParseCSV: the documented format, optional fields and all.
func TestParseCSV(t *testing.T) {
	const in = `ts,tenant,op,bytes,io,latency,rank,file,id
0,ml,rand-read,1m,128k,12ms,3,/data/f1,r1
0.25,ckpt,write,4m,,,0,,
1.5s,meta,meta,,,,,,
`
	events, err := ParseCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: 0, Tenant: "ml", Op: OpRandRead, Bytes: 1 << 20, IO: 128 << 10, Latency: 12 * time.Millisecond, Rank: 3, File: "/data/f1", ID: "r1"},
		{At: sim.Time(250 * time.Millisecond), Tenant: "ckpt", Op: OpWrite, Bytes: 4 << 20, Rank: 0},
		{At: sim.Time(1500 * time.Millisecond), Tenant: "meta", Op: OpMeta, Rank: -1},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("parsed:\n%+v\nwant:\n%+v", events, want)
	}
}

// TestParseCSVRejects: header and value errors, including the
// unknown-column stance (a typoed column must not silently drop data).
func TestParseCSVRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"unknown column", "ts,tenant,op,latncy\n0,a,read,1ms\n", `unknown column "latncy"`},
		{"duplicate column", "ts,tenant,op,ts\n", "duplicate column"},
		{"missing required", "tenant,op\na,read\n", `missing required column "ts"`},
		{"bad ts", "ts,tenant,op\nnope,a,read\n", "ts:"},
		{"bad bytes", "ts,tenant,op,bytes\n0,a,read,12q\n", "bytes:"},
		{"bad io", "ts,tenant,op,io\n0,a,read,12q\n", "io:"},
		{"bad latency", "ts,tenant,op,latency\n0,a,read,fast\n", "latency:"},
		{"bad rank", "ts,tenant,op,rank\n0,a,read,three\n", "rank:"},
		{"no header", "", "no header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseCSV(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestParseJSONL: the documented format; unknown fields rejected per line,
// bytes as number or suffixed string, blank lines skipped.
func TestParseJSONL(t *testing.T) {
	const in = `
{"ts":"1.5s","tenant":"ml","op":"rand-read","bytes":"1m","io":131072,"latency":"12ms","rank":3,"file":"/f","id":"r1"}

{"ts":"2s","tenant":"meta","op":"meta"}
`
	events, err := ParseJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: sim.Time(1500 * time.Millisecond), Tenant: "ml", Op: OpRandRead, Bytes: 1 << 20, IO: 128 << 10, Latency: 12 * time.Millisecond, Rank: 3, File: "/f", ID: "r1"},
		{At: sim.Time(2 * time.Second), Tenant: "meta", Op: OpMeta, Rank: -1},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("parsed:\n%+v\nwant:\n%+v", events, want)
	}
	cases := []struct {
		name, in, want string
	}{
		{"unknown field", `{"ts":"0","tenant":"a","op":"read","bytes":1,"latncy":"1ms"}`, "latncy"},
		{"trailing data", `{"ts":"0","tenant":"a","op":"read","bytes":1} {"x":1}`, "trailing data"},
		{"bad ts", `{"ts":"soon","tenant":"a","op":"read","bytes":1}`, "ts:"},
		{"bad bytes", `{"ts":"0","tenant":"a","op":"read","bytes":true}`, "bytes must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseJSONL(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestCodecRoundTrips: normalized events survive Write/Parse bit for bit
// in both self-describing encodings.
func TestCodecRoundTrips(t *testing.T) {
	src := []Event{
		{At: 0, Tenant: "ml", Op: OpRandRead, Bytes: 1 << 20, IO: 128 << 10, Latency: 587227 * time.Nanosecond, Rank: 1, File: "/traffic/ml/n1/f0", ID: "a-1"},
		{At: sim.Time(time.Millisecond), Tenant: "ckpt", Op: OpWrite, Bytes: 4 << 20, IO: 1 << 20, Latency: time.Millisecond, Rank: 0},
		{At: sim.Time(2 * time.Millisecond), Tenant: "meta", Op: OpMeta, Rank: -1},
	}
	tr, err := Normalize(src)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("csv", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr.Events); err != nil {
			t.Fatal(err)
		}
		back, err := ParseCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(back, tr.Events) {
			t.Fatalf("csv round trip:\n%+v\nwant:\n%+v", back, tr.Events)
		}
	})
	t.Run("jsonl", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, tr.Events); err != nil {
			t.Fatal(err)
		}
		back, err := ParseJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(back, tr.Events) {
			t.Fatalf("jsonl round trip:\n%+v\nwant:\n%+v", back, tr.Events)
		}
	})
}

// TestParseDXT: the Darshan DXT dump format — header file attribution,
// per-segment events with IO = Bytes (a segment is one op).
func TestParseDXT(t *testing.T) {
	const in = `# darshan-dxt-parser output
# DXT, file_id: 16592106915301738621, file_name: /p/lustre/ior.data, nprocs: 2
X_POSIX	0	write	0	0	1048576	0.0013	0.0130
X_POSIX	1	read	1	1048576	524288	0.0020	0.0040
`
	events, err := ParseDXT(strings.NewReader(in), "")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: sim.Time(1300 * time.Microsecond), Tenant: DefaultHPCTenant, Op: OpWrite, Bytes: 1 << 20, IO: 1 << 20,
			Latency: sim.Duration(11700 * time.Microsecond), Rank: 0, File: "/p/lustre/ior.data"},
		{At: sim.Time(2 * time.Millisecond), Tenant: DefaultHPCTenant, Op: OpRead, Bytes: 512 << 10, IO: 512 << 10,
			Latency: 2 * time.Millisecond, Rank: 1, File: "/p/lustre/ior.data"},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("parsed:\n%+v\nwant:\n%+v", events, want)
	}
	for _, bad := range []string{
		"X_POSIX\t0\twrite\t0\t0\t1024\t0.1\n",         // 7 fields
		"X_POSIX\tzero\twrite\t0\t0\t1024\t0.1\t0.2\n", // bad rank
		"X_POSIX\t0\tstat\t0\t0\t1024\t0.1\t0.2\n",     // bad op
		"X_POSIX\t0\twrite\t0\t0\t1024\t0.2\t0.1\n",    // ends before start
		"X_POSIX\t0\twrite\t0\t0\tmany\t0.1\t0.2\n",    // bad length
	} {
		if _, err := ParseDXT(strings.NewReader(bad), "t"); err == nil {
			t.Fatalf("accepted malformed dxt line %q", bad)
		}
	}
}

// TestEventsFromSpans: compute spans carry no I/O and are dropped.
func TestEventsFromSpans(t *testing.T) {
	spans := []Span{
		{Kind: Compute, Rank: 0, Start: 0, End: sim.Time(time.Second)},
		{Kind: Write, Rank: 1, Start: sim.Time(time.Second), End: sim.Time(2 * time.Second), Bytes: 42},
	}
	events := EventsFromSpans(spans, "")
	if len(events) != 1 || events[0].Op != OpWrite || events[0].Bytes != 42 || events[0].Tenant != DefaultHPCTenant {
		t.Fatalf("events %+v", events)
	}
}

// TestDetectFormat and the trace-level accessors.
func TestTraceHelpers(t *testing.T) {
	for name, want := range map[string]Format{
		"a.csv": CSV, "b.jsonl": JSONL, "c.ndjson": JSONL,
		"d.json": Chrome, "e.dxt": DXT, "f.darshan": DXT, "g.log": CSV,
	} {
		if got := DetectFormat(name); got != want {
			t.Fatalf("DetectFormat(%q) = %v, want %v", name, got, want)
		}
	}
	withLat := ev(0, "b", OpRead, 1)
	withLat.Latency = 2 * time.Second
	tr, err := Normalize([]Event{withLat, ev(time.Second, "a", OpRead, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Duration(); got != 2*time.Second {
		t.Fatalf("Duration %v, want last recorded completion 2s", got)
	}
	if tr.HasLatencies() {
		t.Fatal("HasLatencies true with an unmeasured event")
	}
	if got := tr.TenantNames(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("TenantNames %v", got)
	}
}
