package experiments

import (
	"math"
	"os"
	"sort"
	"testing"
	"time"

	"storagesim/internal/configsearch"
	"storagesim/internal/surrogate"
)

// loadWhatIfSpace reads the pinned differential fixture.
func loadWhatIfSpace(t *testing.T) configsearch.Space {
	t.Helper()
	buf, err := os.ReadFile("testdata/whatif_space.json")
	if err != nil {
		t.Fatal(err)
	}
	space, err := configsearch.ParseSpace(buf)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

// The fixture must stay big enough that surrogate pruning is the point:
// a space small enough to DES exhaustively would not exercise the
// explorer's reason to exist. The JSON fixture and the in-code
// WhatIfFixtureSpace must enumerate identically, so the differential
// tests and the figure explore the same space.
func TestWhatIfFixtureSpace(t *testing.T) {
	space := loadWhatIfSpace(t)
	cands, err := space.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 500 {
		t.Fatalf("fixture space enumerates %d candidates, want >= 500", len(cands))
	}
	inCode := WhatIfFixtureSpace()
	codeCands, err := inCode.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(codeCands) != len(cands) {
		t.Fatalf("WhatIfFixtureSpace enumerates %d candidates, JSON fixture %d", len(codeCands), len(cands))
	}
	for i := range cands {
		if cands[i] != codeCands[i] {
			t.Fatalf("candidate %d differs: fixture %s, WhatIfFixtureSpace %s", i, cands[i], codeCands[i])
		}
	}
}

// TestGoldenWhatIfQuick pins the explorer's frontier table on the fixture
// space: calibrated surrogate, margin-band pruning, DES verification of
// the survivors. The golden is byte-identical across the default,
// simreference and simsequential kernel builds, and the run is asserted
// deterministic by rendering twice.
func TestGoldenWhatIfQuick(t *testing.T) {
	space := loadWhatIfSpace(t)
	run := func() (*WhatIfResult, string) {
		res, err := ConfigSearch(WhatIfConfig{Space: space, Calibrate: true, Budget: 60})
		if err != nil {
			t.Fatal(err)
		}
		return res, res.FrontierTable().Render()
	}
	res, got := run()
	if _, got2 := run(); got != got2 {
		t.Fatalf("what-if explorer is not deterministic:\n--- first ---\n%s\n--- second ---\n%s", got, got2)
	}

	total := len(res.Search.Candidates)
	verified := len(res.Search.Survivors)
	if verified*10 > total {
		t.Errorf("DES-verified %d of %d candidates (> 10%%): the surrogate prunes too little", verified, total)
	}
	if len(res.Search.Frontier) == 0 {
		t.Fatal("empty measured frontier")
	}
	if res.Probes == 0 {
		t.Error("calibration ran no probes")
	}

	goldenCompare(t, "whatif_quick.golden", got)
}

// TestGoldenWhatIfFigure pins the two-panel predicted-vs-measured
// frontier figure (cmd/paperfigs -fig whatif) byte-for-byte.
func TestGoldenWhatIfFigure(t *testing.T) {
	panels, err := FigWhatIf(Options{Seed: 0x5eed})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("FigWhatIf returned %d panels, want 2", len(panels))
	}
	var got string
	for _, p := range panels {
		got += p.Render()
	}
	goldenCompare(t, "whatif_fig_quick.golden", got)
}

// TestWhatIfDifferential is the fidelity audit for the surrogate: every
// candidate in the fixture space is DES-measured exhaustively, and the
// surrogate's predictions must (a) rank the space consistently, (b) stay
// within bounded relative error, and (c) never have pruned a candidate
// that belongs on the true DES frontier.
func TestWhatIfDifferential(t *testing.T) {
	space := loadWhatIfSpace(t)
	res, err := ConfigSearch(WhatIfConfig{Space: space, Calibrate: true, Budget: 60})
	if err != nil {
		t.Fatal(err)
	}

	// Exhaustive DES over the whole space with the same explorer
	// parameters the search used.
	wc := WhatIfConfig{Space: space}.withDefaults()
	e, err := newWhatIfExplorer(wc)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := space.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	measured, err := e.measureBatch(cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range measured {
		measured[i].CostHr = space.Cost(cands[i])
	}

	// (a) Rank fidelity: the search ordered the space by these predictions.
	predG := make([]float64, len(cands))
	predP := make([]float64, len(cands))
	measG := make([]float64, len(cands))
	measP := make([]float64, len(cands))
	for i := range cands {
		predG[i] = res.Search.Candidates[i].Predicted.GoodputBps
		predP[i] = res.Search.Candidates[i].Predicted.P99Sec
		measG[i] = measured[i].GoodputBps
		measP[i] = measured[i].P99Sec
	}
	if rc := surrogate.RankCorrelation(predG, measG); rc < 0.95 {
		t.Errorf("goodput rank correlation %.3f < 0.95", rc)
	}
	if rc := surrogate.RankCorrelation(predP, measP); rc < 0.80 {
		t.Errorf("p99 rank correlation %.3f < 0.80", rc)
	}

	// (b) Bounded relative error. Goodput is the surrogate's strong suit;
	// the p99 bound is looser because tail constants are first-order.
	gErr := relErrors(predG, measG)
	pErr := relErrors(predP, measP)
	if m := quantileOf(gErr, 0.50); m > 0.05 {
		t.Errorf("median goodput relative error %.3f > 0.05", m)
	}
	if m := quantileOf(gErr, 0.90); m > 0.15 {
		t.Errorf("p90 goodput relative error %.3f > 0.15", m)
	}
	if m := quantileOf(pErr, 0.50); m > 0.35 {
		t.Errorf("median p99 relative error %.3f > 0.35", m)
	}

	// (c) Soundness: the true DES frontier must be a subset of the
	// reported frontier — surrogate pruning may cost extra verification,
	// never a frontier point.
	reported := map[string]bool{}
	for _, i := range res.Search.Frontier {
		reported[res.Search.Candidates[i].Candidate.String()] = true
	}
	trueFrontier := configsearch.ParetoIndices(measured, res.Search.Objectives)
	for _, i := range trueFrontier {
		if !reported[cands[i].String()] {
			t.Errorf("true-frontier candidate %s (meas %.2f GB/s, p99 %.2f ms, $%.2f/hr) was pruned by the surrogate",
				cands[i], measured[i].GoodputBps/1e9, measured[i].P99Sec*1e3, measured[i].CostHr)
		}
	}
	if len(res.Search.Survivors)*10 > len(cands) {
		t.Errorf("verified %d of %d candidates (> 10%%)", len(res.Search.Survivors), len(cands))
	}
	t.Logf("%d candidates, %d verified, %d reported frontier, %d true frontier",
		len(cands), len(res.Search.Survivors), len(res.Search.Frontier), len(trueFrontier))
}

// relErrors returns |pred-meas|/meas for every pair with meas > 0.
func relErrors(pred, meas []float64) []float64 {
	out := make([]float64, 0, len(pred))
	for i := range pred {
		if meas[i] > 0 {
			out = append(out, math.Abs(pred[i]-meas[i])/meas[i])
		}
	}
	return out
}

// quantileOf returns the q-quantile of vs by sorting a copy.
func quantileOf(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// TestWhatIfCalibration is the self-check for the probe fit: coefficients
// fitted to a handful of DES probes must rank a held-out candidate spread
// at least as well as the stock coefficients, and the fit itself must be
// deterministic.
func TestWhatIfCalibration(t *testing.T) {
	space := loadWhatIfSpace(t)
	wc := WhatIfConfig{Space: space}.withDefaults()
	e, err := newWhatIfExplorer(wc)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := space.Enumerate()
	if err != nil {
		t.Fatal(err)
	}

	// Fit on 8 evenly spread probes.
	probeIdx := probeIndices(len(cands), 8)
	probes := make([]surrogate.Probe, len(probeIdx))
	for k, i := range probeIdx {
		dep, streams, err := e.analytical(cands[i])
		if err != nil {
			t.Fatal(err)
		}
		m, err := e.measure(cands[i])
		if err != nil {
			t.Fatal(err)
		}
		probes[k] = surrogate.Probe{Dep: dep, Streams: streams, GoodputBps: m.GoodputBps, P99Sec: m.P99Sec}
	}
	base := surrogate.NewModel().Coeffs
	fitted := surrogate.Fit(base, probes)
	if again := surrogate.Fit(base, probes); again != fitted {
		t.Fatalf("Fit is not deterministic: %+v vs %+v", fitted, again)
	}

	// Evaluate both coefficient sets on a held-out spread (disjoint from
	// the probes by construction: twice as many points, odd positions).
	evalIdx := probeIndices(len(cands), 16)
	var heldOut []int
	inProbes := map[int]bool{}
	for _, i := range probeIdx {
		inProbes[i] = true
	}
	for _, i := range evalIdx {
		if !inProbes[i] {
			heldOut = append(heldOut, i)
		}
	}
	if len(heldOut) < 5 {
		t.Fatalf("held-out spread too small: %d", len(heldOut))
	}
	rank := func(coeffs surrogate.Coeffs) float64 {
		model := surrogate.Model{Coeffs: coeffs}
		pred := make([]float64, len(heldOut))
		meas := make([]float64, len(heldOut))
		for k, i := range heldOut {
			dep, streams, err := e.analytical(cands[i])
			if err != nil {
				t.Fatal(err)
			}
			m, err := e.measure(cands[i])
			if err != nil {
				t.Fatal(err)
			}
			pred[k] = model.Score(dep, streams).GoodputBps
			meas[k] = m.GoodputBps
		}
		return surrogate.RankCorrelation(pred, meas)
	}
	rBase, rFit := rank(base), rank(fitted)
	if rFit < rBase-1e-9 {
		t.Errorf("calibration worsened goodput rank correlation: base %.3f, fitted %.3f", rBase, rFit)
	}
	t.Logf("rank correlation base %.3f fitted %.3f (coeffs %+v)", rBase, rFit, fitted)
}

// TestWhatIfFaultSearch arms the degraded-window scenario: under a
// unit-fail fault the repair-QoS knob must be performance-live in the DES
// (throttled vs aggressive rebuilds measurably differ) and the search
// must carry both through to a measured frontier.
func TestWhatIfFaultSearch(t *testing.T) {
	space := configsearch.Space{
		Machine:     "Wombat",
		Backends:    []string{"vast"},
		Nodes:       []int{1},
		CNodes:      []int{4},
		Nconnect:    []int{8},
		DBoxes:      []int{4},
		StripeWidth: []int{2},
		ECParity:    []int{1},
		RepairQoS:   []string{configsearch.QoSThrottled, configsearch.QoSAggressive},
		MaxInflight: []int{32},
		Fault:       &configsearch.Fault{Kind: "unit-fail", At: 50 * time.Millisecond, Index: 0},
	}
	cands, err := space.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("fault space enumerates %d candidates, want 2", len(cands))
	}

	wc := WhatIfConfig{Space: space}.withDefaults()
	e, err := newWhatIfExplorer(wc)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := e.measureBatch(cands)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].GoodputBps == ms[1].GoodputBps && ms[0].P99Sec == ms[1].P99Sec {
		t.Errorf("throttled and aggressive rebuilds are indistinguishable in the DES: %+v", ms[0])
	}

	res, err := ConfigSearch(WhatIfConfig{Space: space})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Search.Frontier) == 0 {
		t.Fatal("empty frontier under fault")
	}
	for _, i := range res.Search.Frontier {
		if res.Search.Candidates[i].Measured == nil {
			t.Fatalf("frontier candidate %s has no DES measurement", res.Search.Candidates[i].Candidate)
		}
	}
}
