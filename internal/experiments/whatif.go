package experiments

import (
	"fmt"
	"math"
	"time"

	"storagesim/internal/cluster"
	"storagesim/internal/configsearch"
	"storagesim/internal/device"
	"storagesim/internal/faults"
	"storagesim/internal/fsapi"
	"storagesim/internal/gpfs"
	"storagesim/internal/lustre"
	"storagesim/internal/netsim"
	"storagesim/internal/nvmelocal"
	"storagesim/internal/repair"
	"storagesim/internal/sim"
	"storagesim/internal/stats"
	"storagesim/internal/surrogate"
	"storagesim/internal/traffic"
	"storagesim/internal/unifyfs"
	"storagesim/internal/vast"
)

// The what-if configuration explorer: enumerate a typed deployment knob
// space (internal/configsearch), score every candidate with the analytical
// surrogate (internal/surrogate) in microseconds, and DES-verify only the
// predicted Pareto frontier plus a margin band — the rest of the space is
// never simulated. The surrogate's deployment parameters are harvested
// from the same cluster.*Config builders the testbeds instantiate, so the
// two models cannot drift apart silently.

// WhatIfConfig parameterizes one explorer run.
type WhatIfConfig struct {
	// Space is the knob space to explore.
	Space configsearch.Space
	// Spec is the tenant mix every candidate serves (WhatIfTenants()
	// when zero).
	Spec traffic.Spec
	// Window is the DES verification window (default 250ms).
	Window time.Duration
	// Seed drives the DES arrival streams.
	Seed uint64
	// Budget caps DES verifications (0: verify the whole margin band).
	Budget int
	// Objectives are the frontier axes (default goodput, p99, cost).
	Objectives []configsearch.Objective
	// Margin is the pruning band (default 0.35).
	Margin float64
	// Calibrate fits the surrogate's coefficients to a handful of DES
	// probes before searching.
	Calibrate bool
	// Probes is the calibration probe count (default 8).
	Probes int
}

func (wc WhatIfConfig) withDefaults() WhatIfConfig {
	if len(wc.Spec.Tenants) == 0 {
		wc.Spec = WhatIfTenants()
	}
	if wc.Window <= 0 {
		wc.Window = 250 * time.Millisecond
	}
	if wc.Seed == 0 {
		wc.Seed = 0x5eed
	}
	if wc.Margin == 0 {
		wc.Margin = 0.35
	}
	if len(wc.Objectives) == 0 {
		wc.Objectives = configsearch.DefaultObjectives()
	}
	if wc.Probes <= 0 {
		wc.Probes = 8
	}
	return wc
}

// WhatIfTenants is the pinned three-tenant mix of the what-if studies: a
// checkpoint writer, a scan reader and a metadata tenant, sized so a
// 250ms window resolves saturation on small configurations while a full
// DES evaluation stays in the low milliseconds.
func WhatIfTenants() traffic.Spec {
	return traffic.Spec{Tenants: []traffic.Tenant{
		{
			Name: "ckpt", Clients: 3000, Workload: traffic.SeqWrite,
			Arrival:      traffic.Arrival{Kind: traffic.DeterministicRate, Rate: 1.0},
			RequestBytes: 1 << 20, IOBytes: 1 << 20,
			MaxInflight: 64, SLOP99: 250 * time.Millisecond,
		},
		{
			Name: "scan", Clients: 6000, Workload: traffic.SeqRead,
			Arrival:      traffic.Arrival{Kind: traffic.DeterministicRate, Rate: 1.0},
			RequestBytes: 1 << 20, IOBytes: 1 << 20,
			MaxInflight: 64, SLOP99: 250 * time.Millisecond,
		},
		{
			Name: "meta", Clients: 2000, Workload: traffic.Metadata,
			Arrival:     traffic.Arrival{Kind: traffic.DeterministicRate, Rate: 1.0},
			MaxInflight: 128, SLOP99: 50 * time.Millisecond,
		},
	}}
}

// WhatIfResult is one completed explorer run.
type WhatIfResult struct {
	// Search is the full search outcome (all candidates, predictions,
	// survivors, measured frontier).
	Search *configsearch.Result
	// Coeffs are the surrogate coefficients the search scored with.
	Coeffs surrogate.Coeffs
	// Probes counts calibration probes run (0 when uncalibrated).
	Probes int
	// Window echoes the DES verification window.
	Window time.Duration
}

// ConfigSearch runs the what-if explorer end to end: enumerate,
// surrogate-score, prune to the predicted frontier plus the margin band,
// DES-verify the survivors on the parallel rep machinery, and extract the
// measured Pareto frontier. Fully deterministic for a fixed config.
func ConfigSearch(wc WhatIfConfig) (*WhatIfResult, error) {
	wc = wc.withDefaults()
	if err := wc.Spec.Validate(); err != nil {
		return nil, err
	}
	e, err := newWhatIfExplorer(wc)
	if err != nil {
		return nil, err
	}
	probes := 0
	if wc.Calibrate {
		cands, err := wc.Space.Enumerate()
		if err != nil {
			return nil, err
		}
		idxs := probeIndices(len(cands), wc.Probes)
		batch := make([]configsearch.Candidate, len(idxs))
		for k, i := range idxs {
			batch[k] = cands[i]
		}
		measured, err := e.measureBatch(batch)
		if err != nil {
			return nil, fmt.Errorf("whatif: calibration probes: %w", err)
		}
		ps := make([]surrogate.Probe, len(batch))
		for k, c := range batch {
			dep, streams, err := e.analytical(c)
			if err != nil {
				return nil, err
			}
			ps[k] = surrogate.Probe{
				Dep: dep, Streams: streams,
				GoodputBps: measured[k].GoodputBps, P99Sec: measured[k].P99Sec,
			}
		}
		e.model = surrogate.Model{Coeffs: surrogate.Fit(e.model.Coeffs, ps)}
		probes = len(ps)
	}
	res, err := configsearch.Search(&wc.Space, configsearch.Options{
		Objectives: wc.Objectives,
		Margin:     wc.Margin,
		Budget:     wc.Budget,
	}, e.predict, e.measureBatch)
	if err != nil {
		return nil, err
	}
	return &WhatIfResult{Search: res, Coeffs: e.model.Coeffs, Probes: probes, Window: wc.Window}, nil
}

// probeIndices spreads n probes evenly over the enumeration order.
func probeIndices(total, n int) []int {
	if n > total {
		n = total
	}
	out := make([]int, 0, n)
	seen := map[int]bool{}
	for k := 0; k < n; k++ {
		i := k * (total - 1) / max(n-1, 1)
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// FrontierTable renders the measured Pareto frontier with the surrogate's
// predictions alongside — the explorer's answer.
func (r *WhatIfResult) FrontierTable() Table {
	t := Table{
		ID:    "whatif-frontier",
		Title: "What-if Pareto frontier (DES-verified; surrogate predictions alongside)",
		Header: []string{"config", "cost $/hr", "pred GB/s", "meas GB/s",
			"pred p99 ms", "meas p99 ms", "shed %"},
	}
	for _, i := range r.Search.Frontier {
		s := r.Search.Candidates[i]
		m := s.Measured
		t.Rows = append(t.Rows, []string{
			s.Candidate.String(),
			fmt.Sprintf("%.2f", m.CostHr),
			fmt.Sprintf("%.2f", s.Predicted.GoodputBps/1e9),
			fmt.Sprintf("%.2f", m.GoodputBps/1e9),
			fmt.Sprintf("%.2f", s.Predicted.P99Sec*1e3),
			fmt.Sprintf("%.2f", m.P99Sec*1e3),
			fmt.Sprintf("%.1f", m.ShedFrac*100),
		})
	}
	verified := len(r.Search.Survivors)
	total := len(r.Search.Candidates)
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d candidates enumerated; %d surrogate-pruned, %d DES-verified (%.1f%% of the space), %d truncated by budget",
			total, total-verified, verified, 100*float64(verified)/float64(total), r.Search.Truncated),
		fmt.Sprintf("margin %.2f; window %v; coeffs eta(client %.2f server %.2f fabric %.2f device %.2f) tail(queue %.2f sat %.2f); %d calibration probes",
			r.Search.Margin, r.Window,
			r.Coeffs.EtaClient, r.Coeffs.EtaServer, r.Coeffs.EtaFabric, r.Coeffs.EtaDevice,
			r.Coeffs.TailQueue, r.Coeffs.TailSat, r.Probes),
	)
	return t
}

// --- the explorer ---

type whatIfExplorer struct {
	cfg     WhatIfConfig
	window  sim.Duration
	machine cluster.MachineSpec
	model   surrogate.Model

	// Deployment parameter snapshots, harvested once from the cluster
	// builders on a throwaway env (only the backends the space names).
	vcfg *vast.Config
	ncfg *nvmelocal.Config
	lcfg *lustre.Config
	gcfg *gpfs.Config
	ucfg *unifyfs.Config
}

func newWhatIfExplorer(wc WhatIfConfig) (*whatIfExplorer, error) {
	spec, err := cluster.MachineByName(wc.Space.Machine)
	if err != nil {
		return nil, err
	}
	env := sim.NewEnv()
	cl, err := cluster.New(env, sim.NewFabric(env), spec, 1)
	if err != nil {
		return nil, err
	}
	e := &whatIfExplorer{
		cfg:     wc,
		window:  sim.Duration(wc.Window),
		machine: spec,
		model:   surrogate.NewModel(),
	}
	for _, b := range wc.Space.Backends {
		switch b {
		case "vast":
			var v vast.Config
			switch wc.Space.Machine {
			case "Wombat":
				v = cluster.WombatVASTConfig(cl)
			case "Ruby":
				v = cluster.RubyVASTConfig(cl)
			default:
				return nil, fmt.Errorf("whatif: no vast surrogate for machine %s (Wombat and Ruby modeled)", wc.Space.Machine)
			}
			e.vcfg = &v
		case "nvme":
			n := cluster.NVMeWombatConfig(cl)
			e.ncfg = &n
		case "lustre":
			l := cluster.LustreConfig(cl)
			e.lcfg = &l
		case "gpfs":
			g := cluster.GPFSLassenConfig(cl)
			e.gcfg = &g
		case "unifyfs":
			u := cluster.UnifyFSWombatConfig(cl)
			e.ucfg = &u
		default:
			return nil, fmt.Errorf("whatif: no surrogate for backend %s", b)
		}
	}
	return e, nil
}

// predict scores one candidate analytically.
func (e *whatIfExplorer) predict(c configsearch.Candidate) (configsearch.Metrics, error) {
	dep, streams, err := e.analytical(c)
	if err != nil {
		return configsearch.Metrics{}, err
	}
	p := e.model.Score(dep, streams)
	return configsearch.Metrics{
		GoodputBps: p.GoodputBps,
		P99Sec:     math.Min(p.P99Sec, e.window.Seconds()),
		ShedFrac:   p.ShedFrac,
	}, nil
}

// analytical maps a candidate onto the surrogate's deployment + streams.
func (e *whatIfExplorer) analytical(c configsearch.Candidate) (surrogate.Deployment, []surrogate.Stream, error) {
	var dep surrogate.Deployment
	switch c.Backend {
	case "vast":
		dep = e.vastDeployment(c)
	case "nvme":
		dep = e.nvmeDeployment(c)
	case "lustre":
		dep = e.lustreDeployment(c)
	case "gpfs":
		dep = e.gpfsDeployment(c)
	case "unifyfs":
		dep = e.unifyfsDeployment(c)
	default:
		return surrogate.Deployment{}, nil, fmt.Errorf("whatif: no surrogate for backend %s", c.Backend)
	}
	e.applyFault(c, &dep)
	return dep, e.streams(c), nil
}

func (e *whatIfExplorer) vastDeployment(c configsearch.Candidate) surrogate.Deployment {
	v := e.vcfg
	cn := orInt(c.CNodes, v.CNodes)
	db := orInt(c.DBoxes, v.DBoxes)
	scm := device.SCMSpec("scm").Scale(v.SCMPerDBox*db, "scm")
	qlc := device.QLCSpec("qlc").Scale(v.QLCPerDBox*db, "qlc")
	var pipe, interconnect float64
	var rpc sim.Duration
	switch tr := v.Transport.(type) {
	case *netsim.RDMATransport:
		pipe = tr.PerConnBW * float64(orInt(c.Nconnect, tr.Connections))
		interconnect = tr.Rails.AggregateCapacity()
		rpc = tr.RPC
	case *netsim.TCPTransport:
		pipe = tr.PerConnBW * float64(tr.Connections)
		interconnect = tr.Gateways.AggregateCapacity()
		rpc = tr.RPC
	}
	writePools := []surrogate.Pool{
		{Name: "cnode-nic", Class: surrogate.ServerClass, Bps: v.CNodeNICBW * float64(cn)},
		{Name: "reduce", Class: surrogate.ServerClass, Bps: v.ReduceBWPerCNode * float64(cn)},
		{Name: "interconnect", Class: surrogate.FabricClass, Bps: interconnect},
		{Name: "dbox-fabric", Class: surrogate.FabricClass, Bps: v.FabricBWPerDBox * float64(db)},
		{Name: "scm", Class: surrogate.DeviceClass, Bps: scm.WriteBW / float64(v.SCMReplicas)},
	}
	readPools := []surrogate.Pool{
		{Name: "cnode-nic", Class: surrogate.ServerClass, Bps: v.CNodeNICBW * float64(cn)},
		{Name: "interconnect", Class: surrogate.FabricClass, Bps: interconnect},
		{Name: "dbox-fabric", Class: surrogate.FabricClass, Bps: v.FabricBWPerDBox * float64(db)},
		{Name: "qlc", Class: surrogate.DeviceClass, Bps: qlc.ReadBW},
	}
	return surrogate.Deployment{
		Name:  c.String(),
		Nodes: c.Nodes,

		PerNodeWriteBps:   e.machine.NodeNICBW,
		PerNodeReadBps:    e.machine.NodeNICBW,
		PerStreamWriteBps: pipe,
		PerStreamReadBps:  pipe,

		WritePools: writePools,
		ReadPools:  readPools,

		WriteOverheadSec: rpc.Seconds() + 2*v.FabricLatency.Seconds() + scm.WriteLatency.Seconds(),
		ReadOverheadSec:  rpc.Seconds() + v.MetaLatency.Seconds() + 2*v.FabricLatency.Seconds() + qlc.ReadLatency.Seconds(),
		MetaSec:          rpc.Seconds() + v.MetaLatency.Seconds(),
	}
}

func (e *whatIfExplorer) nvmeDeployment(c configsearch.Candidate) surrogate.Deployment {
	n := e.ncfg
	spec := n.PerNode
	return surrogate.Deployment{
		Name:  c.String(),
		Nodes: c.Nodes,

		// Writes land in the page cache at memory speed (the dirty limit is
		// far beyond a verification window); reads also hit the page cache
		// because a short window's working set stays resident, so both
		// directions run at memory bandwidth with device latency as the
		// per-op overhead.
		PerNodeWriteBps:   n.MemBW,
		PerNodeReadBps:    n.MemBW,
		PerStreamWriteBps: n.MemBW,
		PerStreamReadBps:  n.MemBW,

		WritePools: []surrogate.Pool{
			{Name: "pagecache", Class: surrogate.DeviceClass, Bps: n.MemBW * float64(c.Nodes)},
		},
		ReadPools: []surrogate.Pool{
			{Name: "pagecache", Class: surrogate.DeviceClass, Bps: n.MemBW * float64(c.Nodes)},
		},

		WriteOverheadSec: spec.WriteLatency.Seconds(),
		ReadOverheadSec:  spec.ReadLatency.Seconds(),
		MetaSec:          spec.WriteLatency.Seconds(),
	}
}

func (e *whatIfExplorer) lustreDeployment(c configsearch.Candidate) surrogate.Deployment {
	l := e.lcfg
	ost := l.OSTPerOSS
	oss := float64(l.OSSCount)
	return surrogate.Deployment{
		Name:  c.String(),
		Nodes: c.Nodes,

		PerNodeWriteBps:   e.machine.NodeNICBW,
		PerNodeReadBps:    e.machine.NodeNICBW,
		PerStreamWriteBps: math.Min(ost.WriteBW, l.ServerNICBW),
		PerStreamReadBps:  math.Min(ost.ReadBW, l.ServerNICBW),

		WritePools: []surrogate.Pool{
			{Name: "oss-nic", Class: surrogate.ServerClass, Bps: l.ServerNICBW * oss},
			{Name: "ost", Class: surrogate.DeviceClass, Bps: ost.WriteBW * oss},
		},
		ReadPools: []surrogate.Pool{
			{Name: "oss-nic", Class: surrogate.ServerClass, Bps: l.ServerNICBW * oss},
			{Name: "ost", Class: surrogate.DeviceClass, Bps: ost.ReadBW * oss},
		},

		WriteOverheadSec: l.RPCLatency.Seconds() + ost.WriteLatency.Seconds(),
		ReadOverheadSec:  l.RPCLatency.Seconds() + ost.ReadLatency.Seconds(),
		MetaSec:          l.RPCLatency.Seconds() + l.MDSLatency.Seconds(),
	}
}

func (e *whatIfExplorer) gpfsDeployment(c configsearch.Candidate) surrogate.Deployment {
	g := e.gcfg
	raid := g.RaidPerServer
	nsd := float64(g.NSDServers)
	return surrogate.Deployment{
		Name:  c.String(),
		Nodes: c.Nodes,

		PerNodeWriteBps:   math.Min(e.machine.NodeNICBW, g.ClientWriteCap),
		PerNodeReadBps:    math.Min(e.machine.NodeNICBW, g.ClientStreamCap),
		PerStreamWriteBps: g.ClientWriteCap,
		PerStreamReadBps:  g.ClientStreamCap,

		WritePools: []surrogate.Pool{
			{Name: "nsd-nic", Class: surrogate.ServerClass, Bps: g.ServerNICBW * nsd},
			{Name: "raid", Class: surrogate.DeviceClass, Bps: raid.WriteBW * nsd},
		},
		ReadPools: []surrogate.Pool{
			{Name: "nsd-nic", Class: surrogate.ServerClass, Bps: g.ServerNICBW * nsd},
			{Name: "server-mem", Class: surrogate.ServerClass, Bps: g.ServerMemBW},
			{Name: "raid", Class: surrogate.DeviceClass, Bps: raid.ReadBW * nsd},
		},

		WriteOverheadSec: g.RPCLatency.Seconds() + raid.WriteLatency.Seconds(),
		ReadOverheadSec:  g.RPCLatency.Seconds() + raid.ReadLatency.Seconds(),
		MetaSec:          2 * g.RPCLatency.Seconds(),
	}
}

func (e *whatIfExplorer) unifyfsDeployment(c configsearch.Candidate) surrogate.Deployment {
	u := e.ucfg
	spec := u.PerNode
	return surrogate.Deployment{
		Name:  c.String(),
		Nodes: c.Nodes,

		PerNodeWriteBps:   spec.WriteBW,
		PerNodeReadBps:    spec.ReadBW,
		PerStreamWriteBps: spec.WriteBW,
		PerStreamReadBps:  spec.ReadBW,

		WritePools: []surrogate.Pool{
			{Name: "nvme", Class: surrogate.DeviceClass, Bps: spec.WriteBW * float64(c.Nodes)},
		},
		ReadPools: []surrogate.Pool{
			{Name: "nvme", Class: surrogate.DeviceClass, Bps: spec.ReadBW * float64(c.Nodes)},
		},

		WriteOverheadSec: u.ServerLatency.Seconds() + spec.WriteLatency.Seconds(),
		ReadOverheadSec:  u.ServerLatency.Seconds() + spec.ReadLatency.Seconds(),
		MetaSec:          u.ServerLatency.Seconds(),
	}
}

// applyFault folds the space's fault scenario into a deployment: the
// degraded window fraction, the rebuild's bandwidth appetite under the
// candidate's repair QoS, and the EC decode read amplification. This is a
// coarse first-order model — the DES verification carries the precision.
func (e *whatIfExplorer) applyFault(c configsearch.Candidate, dep *surrogate.Deployment) {
	f := e.cfg.Space.Fault
	if f == nil {
		return
	}
	frac := 1 - f.At.Seconds()/e.window.Seconds()
	dep.DegradedFrac = math.Min(math.Max(frac, 0), 1)
	switch f.Kind {
	case "unit-fail":
		if c.RepairQoS == configsearch.QoSThrottled {
			dep.RebuildBps = rebuildThrottleBps
		} else if e.vcfg != nil {
			dep.RebuildBps = e.vcfg.FabricBWPerDBox
		}
		dep.DegradedReadAmp = ecReadAmp(orInt(c.StripeWidth, 1))
	case "server-fail":
		if c.Backend == "vast" && e.vcfg != nil {
			cn := orInt(c.CNodes, e.vcfg.CNodes)
			scalePools(dep, surrogate.ServerClass, 1-dep.DegradedFrac/float64(cn))
		}
	case "link-derate":
		scalePools(dep, surrogate.FabricClass, 1-dep.DegradedFrac*(1-f.Factor))
	}
}

// scalePools applies a time-averaged capacity factor to one pool class.
func scalePools(dep *surrogate.Deployment, class surrogate.PoolClass, factor float64) {
	for _, pools := range [][]surrogate.Pool{dep.WritePools, dep.ReadPools} {
		for i := range pools {
			if pools[i].Class == class {
				pools[i].Bps *= factor
			}
		}
	}
}

// streams maps the tenant mix onto surrogate streams, applying the
// candidate's admission-cap knob.
func (e *whatIfExplorer) streams(c configsearch.Candidate) []surrogate.Stream {
	out := make([]surrogate.Stream, len(e.cfg.Spec.Tenants))
	for i, t := range e.cfg.Spec.Tenants {
		kind := surrogate.Read
		switch t.Workload {
		case traffic.SeqWrite:
			kind = surrogate.Write
		case traffic.Metadata:
			kind = surrogate.Meta
		}
		cap := t.MaxInflight
		if c.MaxInflight > 0 {
			cap = c.MaxInflight
		}
		out[i] = surrogate.Stream{
			Name:        t.Name,
			Kind:        kind,
			RateHz:      float64(t.Clients) * t.Arrival.Rate,
			Bytes:       float64(t.RequestBytes),
			MaxInflight: cap,
			Burst:       burstOf(t.Arrival),
		}
	}
	return out
}

// burstOf summarizes an arrival process's burstiness for the tail model.
func burstOf(a traffic.Arrival) float64 {
	switch a.Kind {
	case traffic.Poisson:
		return 1.5
	case traffic.OnOff:
		b := float64(a.Burst)
		if b < 1 {
			b = 1
		}
		return 1 + b/2
	case traffic.Diurnal:
		return 1 + a.Amplitude
	default:
		return 1
	}
}

// --- DES verification ---

// measureBatch DES-evaluates a candidate batch on the parallel rep pool
// (each candidate builds its own env, so they are independent), results
// in input order.
func (e *whatIfExplorer) measureBatch(cs []configsearch.Candidate) ([]configsearch.Metrics, error) {
	return runReps(len(cs), func(int) float64 { return 1 }, func(i int, _ float64) (configsearch.Metrics, error) {
		return e.measure(cs[i])
	})
}

// measure runs one candidate through the traffic engine.
func (e *whatIfExplorer) measure(c configsearch.Candidate) (configsearch.Metrics, error) {
	tb, err := e.buildCandidate(c)
	if err != nil {
		return configsearch.Metrics{}, fmt.Errorf("whatif: build %s: %w", c, err)
	}
	mount := func(tenant string, node int) fsapi.Client {
		return tb.mount(tb.cl.Node(node).Name+"/"+tenant, node)
	}
	rep := traffic.Run(tb.env, tb.fab, c.Nodes, mount, traffic.Config{
		Spec:     e.specFor(c),
		Duration: e.window,
		Seed:     e.cfg.Seed,
	})
	var m configsearch.Metrics
	merged := stats.NewSketch(0)
	for _, tr := range rep.Tenants {
		m.GoodputBps += tr.DeliveredBytes / e.window.Seconds()
		m.Offered += tr.Offered
		m.Completed += tr.Completed
		m.Shed += tr.Shed
		merged.Merge(tr.Sketch)
	}
	p99 := merged.Quantile(99)
	if math.IsNaN(p99) {
		p99 = e.window.Seconds() // nothing completed: pin to the window
	}
	m.P99Sec = math.Min(p99, e.window.Seconds())
	if m.Offered > 0 {
		m.ShedFrac = float64(m.Shed) / float64(m.Offered)
	}
	return m, nil
}

// specFor clones the tenant mix with the candidate's admission cap.
func (e *whatIfExplorer) specFor(c configsearch.Candidate) traffic.Spec {
	spec := traffic.Spec{Tenants: append([]traffic.Tenant(nil), e.cfg.Spec.Tenants...)}
	if c.MaxInflight > 0 {
		for i := range spec.Tenants {
			spec.Tenants[i].MaxInflight = c.MaxInflight
		}
	}
	return spec
}

// buildCandidate instantiates the candidate's testbed, mutating the VAST
// config for the vast-specific knobs and arming the space's fault
// scenario (through a repair manager when the backend is protected and
// the candidate names a rebuild QoS).
func (e *whatIfExplorer) buildCandidate(c configsearch.Candidate) (*testbed, error) {
	var mutate func(*vast.Config)
	if c.Backend == "vast" && e.cfg.Space.Machine == "Wombat" {
		mutate = func(v *vast.Config) { mutateVASTCandidate(v, c) }
	}
	tb, err := buildTestbed(e.cfg.Space.Machine, FS(c.Backend), c.Nodes, mutate)
	if err != nil {
		return nil, err
	}
	f := e.cfg.Space.Fault
	if f == nil {
		return tb, nil
	}
	sched := faults.Schedule{Events: []faults.Event{{
		At: f.At, Kind: faults.Kind(f.Kind), Index: f.Index, Factor: f.Factor,
	}}}
	inj := faults.NewInjector(tb.env)
	if prot, ok := tb.target.(repair.Protected); ok && c.RepairQoS != "" {
		qos := repair.QoS{MinBytes: rebuildFloorBytes}
		if c.RepairQoS == configsearch.QoSThrottled {
			qos.RateBps = rebuildThrottleBps
		}
		inj.Register(c.Backend, repair.NewManager(tb.env, tb.fab, prot, qos))
	} else {
		inj.Register(c.Backend, tb.target)
	}
	if err := inj.Apply(sched); err != nil {
		return nil, err
	}
	return tb, nil
}

// mutateVASTCandidate applies the candidate's vast knobs to the Wombat
// config before instantiation.
func mutateVASTCandidate(v *vast.Config, c configsearch.Candidate) {
	if c.CNodes > 0 {
		v.CNodes = c.CNodes
	}
	if c.DBoxes > 0 {
		// The staging tier scales with the enclosures it lives in.
		v.SCMStagingBytes = v.SCMStagingBytes / int64(v.DBoxes) * int64(c.DBoxes)
		v.DBoxes = c.DBoxes
	}
	if c.StripeWidth > 0 {
		v.StripeBytes = int64(c.StripeWidth) << 20
	}
	if c.ECParity > 0 {
		v.ECParity = c.ECParity
	}
	if c.StripeWidth > 0 || c.ECParity > 0 {
		v.DecodeReadAmp = ecReadAmp(orInt(c.StripeWidth, 1))
	}
	if c.ClientCacheMiB > 0 {
		v.ClientCacheBytes = int64(c.ClientCacheMiB) << 20
	}
	if c.Nconnect > 0 {
		setNconnect(v, c.Nconnect)
	}
}

// ecReadAmp is the QLC read amplification of a degraded read under a
// w-wide stripe: the decoder fetches w surviving strips to reconstruct
// one (never below the stock 1.5 default).
func ecReadAmp(w int) float64 {
	return math.Max(1.5, float64(w))
}

func orInt(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
