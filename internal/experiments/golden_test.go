package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden figure tables")

// The golden figure tests pin the *rendered bytes* of representative figure
// tables. The fabric solver, the repetition fan-out and the backend path
// construction may be rearranged freely for performance, but the simulated
// virtual-time results — and therefore every printed digit — must not move.
// Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestGolden -update-golden

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenFig2aQuick pins the Figure 2a quick-sweep tables: the IOR
// scalability panels exercise the full VAST and GPFS stacks (5632 flows at
// the 64-node point) through the class-aggregated solver.
func TestGoldenFig2aQuick(t *testing.T) {
	panels, err := Fig2a(Options{Quick: true, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, p := range panels {
		b.WriteString(p.Render())
	}
	goldenCompare(t, "fig2a_quick_reps3.golden", b.String())
}

// TestGoldenConsistencyQuick pins the run-to-run consistency table, which
// sweeps 4 contended repetitions through the parallel repetition runner.
func TestGoldenConsistencyQuick(t *testing.T) {
	tab, err := Consistency(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "consistency_quick.golden", tab.Render())
}

// TestGoldenDegradedQuick pins the degraded-mode sweep: fault delivery
// through the event calendar is part of the deterministic schedule, so a
// seeded degraded run must reproduce the same bytes on every machine.
func TestGoldenDegradedQuick(t *testing.T) {
	p, err := DegradedSweep(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "degraded_quick.golden", p.Render())
}
