package experiments

import (
	"strings"
	"testing"

	"storagesim/internal/stats"
)

func demoPanel() Panel {
	p := Panel{ID: "demo", Title: "demo panel", XLabel: "nodes", YLabel: "GB/s"}
	s1 := stats.Series{Name: "vast"}
	s2 := stats.Series{Name: "gpfs"}
	for _, x := range []float64{1, 4, 16, 64} {
		s1.Append(x, x*1.1, 0)
		s2.Append(x, x*2.5, 0)
	}
	p.Series = []stats.Series{s1, s2}
	return p
}

func TestRenderPlotContainsAllSeries(t *testing.T) {
	out := demoPanel().RenderPlot()
	for _, want := range []string{"demo panel", "* = vast", "o = gpfs", "160", "GB/s vs nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "*") < 4 || strings.Count(out, "o") < 4 {
		t.Fatalf("plot lost data points:\n%s", out)
	}
}

func TestRenderPlotFlatSeries(t *testing.T) {
	// A saturated (flat) curve must not panic or distort: the regression
	// case where consecutive points share a row.
	p := Panel{ID: "flat", Title: "flat", XLabel: "x", YLabel: "y"}
	s := stats.Series{Name: "flat"}
	for _, x := range []float64{1, 2, 3, 4} {
		s.Append(x, 25, 0)
	}
	p.Series = []stats.Series{s}
	out := p.RenderPlot()
	if !strings.Contains(out, "*") {
		t.Fatalf("flat plot empty:\n%s", out)
	}
}

func TestRenderPlotEmptyFallsBack(t *testing.T) {
	p := Panel{ID: "e", Title: "empty"}
	if out := p.RenderPlot(); !strings.Contains(out, "empty") {
		t.Fatalf("empty panel render: %q", out)
	}
	// All-zero series also falls back to the table.
	s := stats.Series{Name: "z"}
	s.Append(1, 0, 0)
	p.Series = []stats.Series{s}
	if out := p.RenderPlot(); !strings.Contains(out, "== e: empty ==") {
		t.Fatalf("zero panel render: %q", out)
	}
}
