package experiments

import (
	"fmt"
	"math"
	"time"

	"storagesim/internal/faults"
	"storagesim/internal/faults/invariants"
	"storagesim/internal/fsapi"
	"storagesim/internal/repair"
	"storagesim/internal/repair/chaos"
	"storagesim/internal/sim"
	"storagesim/internal/stats"
	"storagesim/internal/traffic"
)

// Domain-parallel experiment entry points: the cluster is partitioned into
// racks — one full machine+fs testbed per rack, each on its own sim shard —
// and the racks advance concurrently under the group's conservative
// synchronization. Remote traffic (placement on another rack) crosses the
// inter-rack links and is the coupling that makes the partition one
// simulation. Results are bit-identical for every executor count, so the
// sequential run (domains=1) is the standing oracle for the parallel ones.

// interRackLatency is the fabric latency of the inter-rack forwarding
// links; it is also the group's conservative lookahead — every rack can
// safely advance this far beyond the last barrier before it could possibly
// hear from a peer.
const interRackLatency = 5 * time.Microsecond

// shardedRack couples a rack's testbed with its shard.
type shardedRack struct {
	tb    *testbed
	shard *sim.Shard
}

// buildShardedTestbeds assembles `racks` identical machine+fs testbeds,
// one per shard of a fresh group running on up to `domains` executors
// (0 = GOMAXPROCS), linked in a full mesh at interRackLatency.
func buildShardedTestbeds(machine string, fs FS, racks, nodesPerRack, domains int) (*sim.Group, []traffic.Rack, []shardedRack, error) {
	if racks < 1 {
		return nil, nil, nil, fmt.Errorf("experiments: need at least one rack, got %d", racks)
	}
	if nodesPerRack < 1 {
		return nil, nil, nil, fmt.Errorf("experiments: need at least one node per rack, got %d", nodesPerRack)
	}
	g := sim.NewGroup(domains)
	srs := make([]shardedRack, racks)
	trs := make([]traffic.Rack, racks)
	for r := 0; r < racks; r++ {
		env := sim.NewEnv()
		fab := sim.NewFabric(env)
		shard := g.AddShard(fmt.Sprintf("rack%d/%s", r, fs), env)
		tb, err := buildTestbedOn(env, fab, machine, fs, nodesPerRack, nil)
		if err != nil {
			g.Shutdown()
			return nil, nil, nil, err
		}
		srs[r] = shardedRack{tb: tb, shard: shard}
		trs[r] = traffic.Rack{
			Shard: shard,
			Fab:   fab,
			Nodes: nodesPerRack,
			Mount: func(tenant string, node int) fsapi.Client {
				return tb.mount(tb.cl.Node(node).Name+"/"+tenant, node)
			},
		}
	}
	if racks > 1 {
		g.LinkAll(interRackLatency)
	}
	return g, trs, srs, nil
}

// RunShardedTraffic builds `racks` identical machine+fs testbeds — one per
// domain shard — and drives the sharded traffic engine across them on up
// to `domains` executors (0 = GOMAXPROCS). cfg.RemoteFraction of requests
// are placed on another rack and forwarded over the inter-rack links.
func RunShardedTraffic(machine string, fs FS, racks, nodesPerRack, domains int, cfg traffic.ShardedConfig) (traffic.ShardedReport, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return traffic.ShardedReport{}, err
	}
	g, trs, _, err := buildShardedTestbeds(machine, fs, racks, nodesPerRack, domains)
	if err != nil {
		return traffic.ShardedReport{}, err
	}
	defer g.Shutdown()
	return traffic.RunSharded(g, trs, cfg), nil
}

// runSaturationPoint dispatches one saturation data point to the classic
// single-env engine or the domain-sharded one, per opts.Racks. Both return
// cluster-wide per-tenant reports in spec order.
func runSaturationPoint(machine string, fs FS, nodes int, cfg traffic.Config, opts Options) ([]traffic.TenantReport, error) {
	if opts.Racks <= 1 {
		rep, err := RunTraffic(machine, fs, nodes, cfg)
		return rep.Tenants, err
	}
	per := nodes / opts.Racks
	if per < 1 {
		per = 1
	}
	rep, err := RunShardedTraffic(machine, fs, opts.Racks, per, opts.Domains,
		traffic.ShardedConfig{Config: cfg, RemoteFraction: opts.RemoteFraction})
	return rep.Tenants, err
}

// RackChaosOutcome is one rack's storm accounting inside a sharded chaos
// run.
type RackChaosOutcome struct {
	Rack         int
	Seed         uint64 // the rack's derived storm seed
	Delivered    int    // fault events actually delivered on the rack
	LostBytes    float64
	RebuiltBytes float64
	Losses       int
	Rebuilds     int
	Violations   []string
}

// ShardedChaosReport is the outcome of a domain-parallel chaos run:
// per-rack storm accounting plus the foreground traffic report.
type ShardedChaosReport struct {
	Backend string
	Machine string
	Seed    uint64
	Racks   []RackChaosOutcome
	Traffic traffic.ShardedReport
}

// Violations flattens every rack's invariant violations.
func (r ShardedChaosReport) Violations() []string {
	var out []string
	for _, rc := range r.Racks {
		out = append(out, rc.Violations...)
	}
	return out
}

// Digest renders the full observable outcome — per-rack storm accounting
// with float bit patterns plus the traffic engine's own digest. The
// parallel-smoke gate demands this string is byte-identical across domain
// counts and under the sequential build tag.
func (r ShardedChaosReport) Digest() string {
	out := fmt.Sprintf("%s/%s seed=%#x", r.Backend, r.Machine, r.Seed)
	for _, rc := range r.Racks {
		out += fmt.Sprintf(" [r%d seed=%#x delivered=%d lost=%016x rebuilt=%016x losses=%d rebuilds=%d viol=%d]",
			rc.Rack, rc.Seed, rc.Delivered,
			math.Float64bits(rc.LostBytes), math.Float64bits(rc.RebuiltBytes),
			rc.Losses, rc.Rebuilds, len(rc.Violations))
	}
	return out + " " + r.Traffic.Digest()
}

// shardedChaosTenants is the foreground mix of the sharded chaos gate: a
// checkpoint writer and a metadata tenant, hot enough to generate hundreds
// of requests inside the short storm window.
func shardedChaosTenants() traffic.Spec {
	return traffic.Spec{Tenants: []traffic.Tenant{
		{
			Name: "ckpt", Clients: 4000, Workload: traffic.SeqWrite,
			Arrival:      traffic.Arrival{Kind: traffic.Poisson, Rate: 1},
			RequestBytes: 1 << 20, IOBytes: 1 << 20,
			MaxInflight: 64, SLOP99: 50 * time.Millisecond,
		},
		{
			Name: "meta", Clients: 2000, Workload: traffic.Metadata,
			Arrival:     traffic.Arrival{Kind: traffic.DeterministicRate, Rate: 1},
			MaxInflight: 128, SLOP99: 5 * time.Millisecond,
		},
	}}
}

// rackStormSeed derives rack r's storm seed from the run seed — distinct,
// deterministic streams per rack.
func rackStormSeed(seed uint64, r int) uint64 {
	return stats.Mix64(seed ^ (uint64(r+1) * 0x9e3779b97f4a7c15))
}

// RunShardedChaosStorm is the chaos gate's domain-parallel variant: every
// rack of a sharded deployment gets its own seeded storm, repair manager
// and invariant checker, while the sharded traffic engine (remote fraction
// 0.25) runs as the foreground across all racks — so rebuild traffic,
// fault windows and cross-rack forwarding interleave inside one
// conservatively synchronized simulation.
func RunShardedChaosStorm(fs FS, racks, domains int, seed uint64, opts Options) (ShardedChaosReport, error) {
	opts = opts.withDefaults()
	machine, err := chaosMachine(fs)
	if err != nil {
		return ShardedChaosReport{}, err
	}
	g, trs, srs, err := buildShardedTestbeds(machine, fs, racks, 2, domains)
	if err != nil {
		return ShardedChaosReport{}, err
	}
	defer g.Shutdown()

	type rackChaos struct {
		mgr     *repair.Manager
		inj     *faults.Injector
		checker *invariants.Checker
		seed    uint64
	}
	rcs := make([]rackChaos, racks)
	for r := range srs {
		tb := srs[r].tb
		prot, ok := tb.target.(repair.Protected)
		if !ok {
			return ShardedChaosReport{}, fmt.Errorf("experiments: %s target declares no redundancy scheme", fs)
		}
		scheme := prot.RepairScheme()
		rseed := rackStormSeed(seed, r)
		storm := chaos.Storm(rseed, chaos.Profile{
			Target:          string(fs),
			Servers:         prot.FaultServers(),
			Units:           prot.FaultUnits(),
			UnitsAreServers: scheme.ServersHoldData,
			Horizon:         30 * time.Millisecond,
			Events:          12,
		})
		mgr := repair.NewManager(tb.env, tb.fab, prot, repair.QoS{MinBytes: 32 << 20})
		inj := faults.NewInjector(tb.env)
		inj.Register(string(fs), mgr)
		if err := inj.Apply(storm); err != nil {
			return ShardedChaosReport{}, err
		}
		checker := invariants.Attach(tb.env, tb.fab, 250*time.Microsecond)
		checker.Final("rebuild-completes-or-reports-loss", mgr.CheckComplete)
		rcs[r] = rackChaos{mgr: mgr, inj: inj, checker: checker, seed: rseed}
	}

	trep := traffic.RunSharded(g, trs, traffic.ShardedConfig{
		Config: traffic.Config{
			Spec:     shardedChaosTenants(),
			Duration: 50 * time.Millisecond,
			Seed:     opts.Seed + seed,
		},
		RemoteFraction: 0.25,
	})

	rep := ShardedChaosReport{Backend: string(fs), Machine: machine, Seed: seed, Traffic: trep}
	for r := range rcs {
		rc := rcs[r]
		if rc.checker.Samples() == 0 {
			return ShardedChaosReport{}, fmt.Errorf("experiments: rack %d chaos checker never sampled", r)
		}
		rc.checker.Err() // fold final checks into Violations
		rep.Racks = append(rep.Racks, RackChaosOutcome{
			Rack:         r,
			Seed:         rc.seed,
			Delivered:    len(rc.inj.Applied()),
			LostBytes:    rc.mgr.LostBytes(),
			RebuiltBytes: rc.mgr.RebuiltBytes(),
			Losses:       len(rc.mgr.Losses()),
			Rebuilds:     len(rc.mgr.Jobs()),
			Violations:   rc.checker.Violations(),
		})
	}
	return rep, nil
}
