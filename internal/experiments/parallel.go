package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runReps executes the repetitions of one sweep point concurrently on a
// bounded worker pool — min(reps, GOMAXPROCS) workers pulling repetition
// indices off an atomic counter. Each repetition builds its own sim.Env
// and testbed (buildTestbed allocates everything fresh; no backend keeps
// package-level mutable state), so the simulations are fully independent,
// and each simulation is itself a goroutine-heavy baton-handoff system —
// capping the fan-out keeps peak memory at pool-width simulations instead
// of `reps` simultaneous ones.
//
// Determinism is preserved by construction:
//
//   - the contention RNG is consumed sequentially in repetition order
//     *before* the fan-out, so the draw sequence is identical to the old
//     serial loop;
//   - results land in a slice indexed by repetition, so the merge order
//     never depends on worker finish order;
//   - on error, the lowest-numbered failing repetition wins.
func runReps[T any](reps int, derate func(rep int) float64, point func(rep int, derate float64) (T, error)) ([]T, error) {
	factors := make([]float64, reps)
	for rep := range factors {
		factors[rep] = derate(rep)
	}
	out := make([]T, reps)
	errs := make([]error, reps)
	workers := runtime.GOMAXPROCS(0)
	if workers > reps {
		workers = reps
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				rep := int(next.Add(1)) - 1
				if rep >= reps {
					return
				}
				out[rep], errs[rep] = point(rep, factors[rep])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
