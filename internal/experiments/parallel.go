package experiments

import "sync"

// runReps executes the repetitions of one sweep point concurrently, one
// goroutine per repetition. Each repetition builds its own sim.Env and
// testbed (buildTestbed allocates everything fresh; no backend keeps
// package-level mutable state), so the simulations are fully independent.
//
// Determinism is preserved by construction:
//
//   - the contention RNG is consumed sequentially in repetition order
//     *before* the fan-out, so the draw sequence is identical to the old
//     serial loop;
//   - results land in a slice indexed by repetition, so the merge order
//     never depends on goroutine finish order;
//   - on error, the lowest-numbered failing repetition wins.
func runReps[T any](reps int, derate func(rep int) float64, point func(rep int, derate float64) (T, error)) ([]T, error) {
	factors := make([]float64, reps)
	for rep := range factors {
		factors[rep] = derate(rep)
	}
	out := make([]T, reps)
	errs := make([]error, reps)
	var wg sync.WaitGroup
	for rep := 0; rep < reps; rep++ {
		rep := rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[rep], errs[rep] = point(rep, factors[rep])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
