package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"storagesim/internal/faults"
	"storagesim/internal/stats"
	"storagesim/internal/traffic"
)

// TestGoldenSaturationQuick pins the quick saturation sweep: the canonical
// four-tenant, one-million-client mix driven open-loop over the VAST and
// Lustre deployments at four load multipliers. The rendered goodput and
// p99 tables must be byte-identical across runs, Go versions and both
// event-queue builds (timer wheel and -tags simreference).
func TestGoldenSaturationQuick(t *testing.T) {
	panels, err := SaturationSweep(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, p := range panels {
		b.WriteString(p.Render())
	}
	goldenCompare(t, "saturation_quick.golden", b.String())
}

// trafficKey projects a traffic report onto comparable values: every
// scalar plus the full kept-latency streams, with the sketch pointers
// (always distinct across runs) replaced by their rendered quantiles.
func trafficKey(r traffic.Report) interface{} {
	type row struct {
		TR   traffic.TenantReport
		Lats []float64
		Q    [3]float64
	}
	rows := make([]row, len(r.Tenants))
	for i, tr := range r.Tenants {
		q := [3]float64{tr.Sketch.Quantile(50), tr.Sketch.Quantile(95), tr.Sketch.Quantile(99)}
		lats := tr.Latencies
		tr.Sketch, tr.Latencies = nil, nil
		rows[i] = row{TR: tr, Lats: lats, Q: q}
	}
	return rows
}

// TestTrafficMillionClients is the acceptance test: the one-million-client
// four-tenant mix runs over the full VAST and Lustre stacks via client
// aggregation, is byte-deterministic across two runs, and every tenant's
// latency sketch tracks the exact-sort oracle within 2% relative error at
// p50/p95/p99.
func TestTrafficMillionClients(t *testing.T) {
	spec := SaturationTenants()
	var clients int
	for _, tn := range spec.Tenants {
		clients += tn.Clients
	}
	if clients != 1_000_000 {
		t.Fatalf("canonical mix has %d clients, want 1M", clients)
	}
	deps := []struct {
		machine string
		fs      FS
	}{
		{"Wombat", VAST},
		{"Ruby", Lustre},
	}
	for _, d := range deps {
		cfg := traffic.Config{
			Spec:          spec,
			Duration:      2 * time.Second,
			Seed:          0x5eed,
			KeepLatencies: true,
		}
		rep1, err := RunTraffic(d.machine, d.fs, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep2, err := RunTraffic(d.machine, d.fs, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(trafficKey(rep1), trafficKey(rep2)) {
			t.Fatalf("%s/%s: identical runs diverged", d.machine, d.fs)
		}
		for _, tr := range rep1.Tenants {
			if tr.Completed == 0 {
				t.Fatalf("%s/%s tenant %s completed nothing", d.machine, d.fs, tr.Name)
			}
			if tr.Completed+tr.Shed+uint64(tr.InFlightEnd) != tr.Offered {
				t.Fatalf("%s/%s tenant %s books don't balance: %+v", d.machine, d.fs, tr.Name, tr)
			}
			for _, p := range []float64{50, 95, 99} {
				exact := stats.Percentile(tr.Latencies, p)
				est := tr.Sketch.Quantile(p)
				if math.Abs(est-exact)/exact > 0.02 {
					t.Fatalf("%s/%s tenant %s p%g: sketch %v vs exact %v (>2%%)",
						d.machine, d.fs, tr.Name, p, est, exact)
				}
			}
		}
	}
}

// TestTrafficFaultComposition: arming a server failure under the traffic
// engine must change the report (degraded service) while staying
// deterministic — the composition the chaos experiments rely on.
func TestTrafficFaultComposition(t *testing.T) {
	spec := SaturationTenants()
	// LoadScale 8 pushes the deployment past its knee so lost capacity is
	// visible in delivered bytes, not just in the tail.
	cfg := traffic.Config{Spec: spec, Duration: 2 * time.Second, Seed: 0x5eed, LoadScale: 8}
	sched := faults.Schedule{Events: []faults.Event{
		{At: 200 * time.Millisecond, Kind: faults.ServerFail, Index: 0},
		{At: 250 * time.Millisecond, Kind: faults.ServerFail, Index: 1},
	}}
	healthy, err := RunTraffic("Wombat", VAST, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hurt1, applied, err := RunTrafficWithFaults("Wombat", VAST, 4, cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 {
		t.Fatalf("applied %d fault events, want 2", len(applied))
	}
	hurt2, _, err := RunTrafficWithFaults("Wombat", VAST, 4, cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trafficKey(hurt1), trafficKey(hurt2)) {
		t.Fatal("faulted runs diverged")
	}
	if reflect.DeepEqual(trafficKey(healthy), trafficKey(hurt1)) {
		t.Fatal("server failures left the traffic report unchanged")
	}
	// Failing half the servers must cost delivered bytes on the data tenants.
	var okBytes, hurtBytes float64
	for i := range healthy.Tenants {
		okBytes += healthy.Tenants[i].DeliveredBytes
		hurtBytes += hurt1.Tenants[i].DeliveredBytes
	}
	if hurtBytes >= okBytes {
		t.Fatalf("degraded run delivered %.0f bytes >= healthy %.0f", hurtBytes, okBytes)
	}
}
