package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"storagesim/internal/fidelity"
	"storagesim/internal/trace"
	"storagesim/internal/traffic"
)

// loadFixtureTrace ingests the pinned recorded trace the fidelity smoke
// gate audits (regenerate with:
// go run ./cmd/tracereplay -record -machine Wombat -fs vast -nodes 2
// -duration 400ms -o internal/experiments/testdata/fidelity_trace.jsonl).
func loadFixtureTrace(t *testing.T) *trace.Trace {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "fidelity_trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.ParseEvents(data, trace.JSONL, "")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Normalize(events)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestFidelityRoundTrip is the pipeline auditing itself: record a synthetic
// run to trace events, serialize and re-ingest them through the JSONL
// codec, replay the trace on the same testbed, and assert the audit holds
// — every latency percentile within the documented 2% band (the sketch's
// relative-error bound is 1%, so recorded and replayed quantiles of an
// identical run can differ by at most twice that), goodput and counts
// exact.
func TestFidelityRoundTrip(t *testing.T) {
	cfg := traffic.Config{
		Spec:     SaturationTenants(),
		Duration: 300 * time.Millisecond,
		Seed:     0x5eed,
	}
	_, events, err := RecordTraffic("Wombat", VAST, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("recording produced no events")
	}
	// Serialize and re-ingest: the round trip must cross the codec, not
	// just hand the events over in memory.
	var buf strings.Builder
	if err := trace.WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.ParseEvents([]byte(buf.String()), trace.JSONL, "")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Normalize(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HasLatencies() {
		t.Fatal("recorded trace lost its latencies")
	}
	report, _, err := FidelityAudit("Wombat", VAST, 2, tr, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		var b strings.Builder
		report.WriteText(&b)
		t.Fatalf("round-trip audit failed:\n%s", b.String())
	}
	for _, m := range report.Metrics {
		if strings.HasPrefix(m.Name, "p") && m.RelErr > 0.02 {
			t.Errorf("%s %s: relative error %.4f above the 2%% band", m.Tenant, m.Name, m.RelErr)
		}
	}
}

// TestGoldenFidelityQuick pins the rendered audit report of the checked-in
// fixture trace: the replay's virtual-time results — and therefore every
// printed digit of every error band — must not move. The same bytes must
// reproduce under the calendar-queue, reference-heap (-tags simreference)
// and forced-sequential (-tags simsequential) kernels; the Makefile's
// fidelity-smoke gate runs all three.
func TestGoldenFidelityQuick(t *testing.T) {
	tr := loadFixtureTrace(t)
	report, rep, err := FidelityAudit("Wombat", VAST, 2, tr, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration <= 0 {
		t.Fatal("replay reported no makespan")
	}
	var b strings.Builder
	if err := report.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fidelity_quick.golden", b.String())
	if !report.Passed() {
		t.Fatal("fixture audit must pass on the deployment it was recorded on")
	}
}

// TestFidelityDetectsDrift: the audit is only worth its gate if it can
// fail — replaying the fixture on a different backend must land outside
// the error bands.
func TestFidelityDetectsDrift(t *testing.T) {
	tr := loadFixtureTrace(t)
	report, _, err := FidelityAudit("Wombat", NVMe, 2, tr, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Passed() || report.Failed == 0 {
		t.Fatal("audit passed a replay on the wrong backend")
	}
}

// TestFidelityTolerances: widening the bands flips the same drifted replay
// to a pass, so tolerances are real knobs, not decoration.
func TestFidelityTolerances(t *testing.T) {
	tr := loadFixtureTrace(t)
	report, _, err := FidelityAudit("Wombat", NVMe, 2, tr, AuditOptions{
		Tolerance: fidelity.Tolerance{LatencyRel: 5, GoodputRel: 5, CountRel: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		var b strings.Builder
		report.WriteText(&b)
		t.Fatalf("500%% bands still failed:\n%s", b.String())
	}
}
