// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections V and VI) plus the takeaway numbers of Section VII
// and a set of ablations for the design hypotheses the paper could not test
// (its stated future work).
//
// Each experiment constructs a fresh simulated cluster and storage
// deployment per data point, repeats it Options.Reps times with a seeded
// contention model (the paper repeats every test 10 times "to test
// performance consistency in the shared environment"), and returns typed
// series with error bars.
package experiments

import (
	"fmt"
	"strings"

	"storagesim/internal/stats"
)

// Options controls sweep sizes and repetition.
type Options struct {
	// Reps is the number of repetitions per point (the paper uses 10).
	// Repetition 0 runs on an uncontended system; later repetitions derate
	// shared components pseudo-randomly. Zero means 1.
	Reps int
	// Seed drives the contention model and workload shuffles.
	Seed uint64
	// Quick shrinks the sweeps (for unit tests and smoke runs).
	Quick bool
	// Racks partitions the traffic-driven experiments into this many
	// domain shards — one full testbed per rack, advanced in parallel
	// under conservative synchronization. 0 or 1 keeps the classic
	// single-env path (and its byte-identical goldens).
	Racks int
	// Domains caps the executor count driving the racks; 0 means
	// GOMAXPROCS. Results are bit-identical for every value.
	Domains int
	// RemoteFraction is the cross-rack placement probability of the
	// sharded traffic engine when Racks > 1.
	RemoteFraction float64
}

func (o Options) withDefaults() Options {
	if o.Reps <= 0 {
		o.Reps = 1
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	return o
}

// Contention spreads: how much of a system's server-side capacity
// background users can take in a bad repetition. GPFS and Lustre are the
// production file systems everyone uses; VAST is newly deployed and NVMe is
// node-private.
const (
	sharedSpread    = 0.15
	dedicatedSpread = 0.03
)

// derateFactor returns the contention factor for a repetition: rep 0 is
// clean, later reps scale capacity down by up to `spread`.
func derateFactor(rng *stats.RNG, rep int, spread float64) float64 {
	if rep == 0 {
		return 1
	}
	return 1 - spread*rng.Float64()
}

// Panel is one plot panel: named series over a shared X axis.
type Panel struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []stats.Series
	Notes  []string
}

// Render formats the panel as an aligned text table (the repository's
// stand-in for the paper's plots).
func (p Panel) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", p.ID, p.Title)
	fmt.Fprintf(&b, "%-10s", p.XLabel)
	for _, s := range p.Series {
		fmt.Fprintf(&b, " %22s", s.Name)
	}
	b.WriteString("\n")
	if len(p.Series) > 0 {
		for i, pt := range p.Series[0].Points {
			fmt.Fprintf(&b, "%-10g", pt.X)
			for _, s := range p.Series {
				y := s.YAt(pt.X)
				errv := 0.0
				if i < len(s.Err) {
					errv = s.Err[i]
				}
				fmt.Fprintf(&b, " %14.3f ±%6.3f", y, errv)
			}
			b.WriteString("\n")
		}
	}
	for _, n := range p.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Table is a rendered result table (Table I, takeaways).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// summarizeReps folds per-repetition values into a (mean, stddev) pair for
// a series point.
func summarizeReps(vals []float64) (mean, dev float64) {
	s := stats.Summarize(vals)
	return s.Mean, s.Stddev
}

// nodesSweep returns the Figure 2a node counts (1..128 on Lassen).
func nodesSweep(quick bool) []int {
	if quick {
		return []int{1, 4, 16, 64}
	}
	return []int{1, 2, 4, 8, 16, 32, 64, 128}
}

// wombatSweep returns the Figure 2b node counts (Wombat has 8 nodes).
func wombatSweep(quick bool) []int {
	if quick {
		return []int{1, 4, 8}
	}
	return []int{1, 2, 4, 8}
}

// procsSweep returns the Figure 3 per-node process counts.
func procsSweep(quick bool) []int {
	if quick {
		return []int{1, 8, 32}
	}
	return []int{1, 2, 4, 8, 16, 32}
}
