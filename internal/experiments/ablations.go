package experiments

import (
	"fmt"

	"storagesim/internal/ior"
	"storagesim/internal/stats"
	"storagesim/internal/vast"
)

// The ablations test the design hypotheses the paper states but cannot
// verify on production hardware — its declared future work ("we plan on
// deploying a custom VAST configuration on cloud-like resources ... to test
// this"). The simulator can simply rebuild VAST with different knobs.

// AblationFabric sweeps the CBox↔DBox fabric bandwidth of the Wombat VAST
// instance and measures aggregate random-read bandwidth at full machine
// scale — testing the paper's hypothesis that the 2×50 Gb Ethernet
// enclosure links cap VAST's scalability (Section V-A).
func AblationFabric(opts Options) (Panel, error) {
	opts = opts.withDefaults()
	sweep := []float64{1.5625e9, 3.125e9, 6.25e9, 12.5e9, 25e9}
	if opts.Quick {
		sweep = []float64{3.125e9, 6.25e9, 12.5e9}
	}
	panel := Panel{
		ID:     "ablation-fabric",
		Title:  "Wombat VAST: ML aggregate bandwidth vs per-DBox fabric bandwidth (8 nodes)",
		XLabel: "fabric GB/s per DBox",
		YLabel: "aggregate GB/s",
	}
	s := stats.Series{Name: "vast ml read"}
	for _, bw := range sweep {
		bw := bw
		v, err := iorPoint("Wombat", VAST, 8, 48, ior.ML, 3000, false, 1, opts.Seed,
			func(c *vast.Config) { c.FabricBWPerDBox = bw })
		if err != nil {
			return Panel{}, err
		}
		s.Append(bw/1e9, v, 0)
	}
	panel.Series = []stats.Series{s}
	panel.Notes = append(panel.Notes,
		"hypothesis confirmed when aggregate bandwidth tracks the fabric sweep until another resource binds")
	return panel, nil
}

// AblationNconnect sweeps the NFS nconnect count of the RDMA deployment
// and measures per-node sequential-read bandwidth at one node.
func AblationNconnect(opts Options) (Panel, error) {
	opts = opts.withDefaults()
	sweep := []int{1, 2, 4, 8, 16, 32}
	if opts.Quick {
		sweep = []int{1, 4, 16}
	}
	panel := Panel{
		ID:     "ablation-nconnect",
		Title:  "Wombat VAST: single-node read bandwidth vs nconnect",
		XLabel: "nconnect",
		YLabel: "GB/s per node",
	}
	s := stats.Series{Name: "vast seq read"}
	for _, n := range sweep {
		n := n
		v, err := iorPoint("Wombat", VAST, 1, 48, ior.Analytics, 3000, false, 1, opts.Seed,
			func(c *vast.Config) { setNconnect(c, n) })
		if err != nil {
			return Panel{}, err
		}
		s.Append(float64(n), v, 0)
	}
	panel.Series = []stats.Series{s}
	panel.Notes = append(panel.Notes,
		"diminishing returns once the connection pool exceeds the node's link share")
	return panel, nil
}

// AblationCNodes sweeps the CNode count of the RDMA deployment and
// measures aggregate sequential-read bandwidth at 8 nodes — the paper
// attributes the 8-node saturation of Figure 2b to the 8 CNodes.
func AblationCNodes(opts Options) (Panel, error) {
	opts = opts.withDefaults()
	sweep := []int{1, 2, 4, 8, 16}
	if opts.Quick {
		sweep = []int{1, 8}
	}
	panel := Panel{
		ID:     "ablation-cnodes",
		Title:  "Wombat VAST: aggregate read bandwidth vs CNode count (8 nodes)",
		XLabel: "CNodes",
		YLabel: "aggregate GB/s",
	}
	s := stats.Series{Name: "vast seq read"}
	for _, n := range sweep {
		n := n
		v, err := iorPoint("Wombat", VAST, 8, 48, ior.Analytics, 3000, false, 1, opts.Seed,
			func(c *vast.Config) { c.CNodes = n })
		if err != nil {
			return Panel{}, err
		}
		s.Append(float64(n), v, 0)
	}
	panel.Series = []stats.Series{s}
	panel.Notes = append(panel.Notes,
		"below 2 CNodes the protocol-server NICs bind; beyond that the enclosure fabric does — together they explain the Figure 2b saturation")
	return panel, nil
}

// AblationTCPGateway sweeps the Lassen gateway link bandwidth under the
// TCP deployment — the knob the LC administrators would upgrade (the
// paper's "help Livermore Computing administrators improve the
// interconnection used with VAST").
func AblationTCPGateway(opts Options) (Panel, error) {
	opts = opts.withDefaults()
	// Sweeping the gateway means rebuilding the transport; express it as a
	// fraction of the stock 25 GB/s gateway via Derate on repetition 0.
	sweep := []float64{0.25, 0.5, 1.0}
	panel := Panel{
		ID:     "ablation-tcp-gateway",
		Title:  "Lassen VAST: 64-node aggregate write bandwidth vs gateway capacity",
		XLabel: "gateway fraction of 2x100GbE",
		YLabel: "aggregate GB/s",
	}
	s := stats.Series{Name: "vast seq write"}
	for _, f := range sweep {
		f := f
		v, err := iorPoint("Lassen", VAST, 64, 44, ior.Scientific, 3000, false, f, opts.Seed, nil)
		if err != nil {
			return Panel{}, err
		}
		s.Append(f, v, 0)
	}
	panel.Series = []stats.Series{s}
	return panel, nil
}

// setNconnect adjusts the RDMA transport's connection count in a Wombat
// VAST config.
func setNconnect(c *vast.Config, n int) {
	type nconnSetter interface{ SetConnections(int) }
	if t, ok := c.Transport.(nconnSetter); ok {
		t.SetConnections(n)
		return
	}
	panic(fmt.Sprintf("experiments: transport %T does not support nconnect", c.Transport))
}
