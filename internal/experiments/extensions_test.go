package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestAblationSharedFilePenalty(t *testing.T) {
	tab, err := AblationSharedFile(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		nn := parseCell(t, row[1])
		n1 := parseCell(t, row[2])
		if n1 >= nn {
			t.Fatalf("%s: N-1 (%.2f) not slower than N-N (%.2f)", row[0], n1, nn)
		}
		penalty := parseCell(t, row[3])
		if penalty < 10 {
			t.Fatalf("%s: N-1 penalty only %.0f%%, locking model inert", row[0], penalty)
		}
	}
}

func TestConsistencySpreads(t *testing.T) {
	tab, err := Consistency(quick())
	if err != nil {
		t.Fatal(err)
	}
	var vastSpread, gpfsSpread float64
	for _, row := range tab.Rows {
		switch row[0] {
		case "vast":
			vastSpread = parseCell(t, row[4])
		case "gpfs":
			gpfsSpread = parseCell(t, row[4])
		}
	}
	// The dedicated system must be steadier than the shared one.
	if vastSpread >= gpfsSpread {
		t.Fatalf("VAST spread (%.1f%%) not below GPFS (%.1f%%)", vastSpread, gpfsSpread)
	}
	if gpfsSpread <= 0 {
		t.Fatal("contention model produced no variation on GPFS")
	}
}

func TestAblationUnifyFSPolicies(t *testing.T) {
	tab, err := AblationUnifyFS(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 placements x 2 server counts)", len(tab.Rows))
	}
	byKey := map[string][]string{}
	for _, row := range tab.Rows {
		byKey[row[0]+"/"+row[1]] = row
	}
	// The checkpoint design point: local-first writes beat round-robin at
	// equal server count.
	lf := parseCell(t, byKey["local-first/16"][2])
	rr := parseCell(t, byKey["round-robin/16"][2])
	if lf <= rr {
		t.Fatalf("local-first writes (%.2f) not above round-robin (%.2f)", lf, rr)
	}
	// The I/O-server knob: more servers help the local-first path.
	one := parseCell(t, byKey["local-first/1"][2])
	sixteen := parseCell(t, byKey["local-first/16"][2])
	if sixteen <= one {
		t.Fatalf("server pool had no effect: 1 -> %.2f, 16 -> %.2f", one, sixteen)
	}
}
