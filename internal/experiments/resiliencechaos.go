package experiments

import (
	"fmt"
	"math"
	"time"

	"storagesim/internal/faults"
	"storagesim/internal/faults/invariants"
	"storagesim/internal/fsapi"
	"storagesim/internal/netsim"
	"storagesim/internal/repair"
	"storagesim/internal/repair/chaos"
	"storagesim/internal/resilience"
	"storagesim/internal/traffic"
)

// Resilience chaos gate: the seeded fault storm of the chaos gate, but
// with the client resilience layer fully armed as the foreground —
// deadlines cancelling transfers mid-flight, budgeted retries re-offering
// work, hedges racing, breakers tripping and probing, brownout tiers
// shedding — all while servers fail, units die and rebuilds contend for
// the fabric. The invariant suite must stay silent: cancellation returns
// bandwidth without over-allocating it, aborted flows never violate the
// nominal-capacity ceiling, and rebuilds still complete or report loss.

// ResilienceChaosReport is the outcome of one seeded resilient storm.
type ResilienceChaosReport struct {
	Backend      string
	Machine      string
	Seed         uint64
	Delivered    int // fault events actually delivered
	LostBytes    float64
	RebuiltBytes float64
	Losses       int
	Rebuilds     int
	Violations   []string
	Traffic      traffic.Report
}

// Digest renders the run's observable outcome — repair accounting plus
// every tenant's full resilience counter set, float bit patterns included
// — the byte-determinism witness for a fixed seed.
func (r ResilienceChaosReport) Digest() string {
	out := fmt.Sprintf("%s/%s seed=%#x delivered=%d lost=%016x rebuilt=%016x losses=%d rebuilds=%d violations=%d",
		r.Backend, r.Machine, r.Seed, r.Delivered,
		math.Float64bits(r.LostBytes), math.Float64bits(r.RebuiltBytes),
		r.Losses, r.Rebuilds, len(r.Violations))
	for _, tr := range r.Traffic.Tenants {
		out += fmt.Sprintf(" %s:%d/%d/%d/%d:%d/%d/%d/%d:%d/%d/%d:%d/%d/%d:%016x",
			tr.Name, tr.Offered, tr.Shed, tr.Completed, tr.InFlightEnd,
			tr.ShedAdmission, tr.ShedBrownout, tr.ShedBreaker, tr.DeadlineMiss,
			tr.Retries, tr.Hedges, tr.HedgeWins,
			tr.Breaker.Opens, tr.Breaker.HalfOpens, tr.Breaker.Closes,
			math.Float64bits(tr.DeliveredBytes))
	}
	return out
}

// resilienceChaosTenants is the foreground of the gate: a priority-0
// checkpoint writer with the full stack (tight deadline, budgeted jittered
// retries, hedging, breaker) and a priority-1 metadata tenant with
// deadline+budget only, under an engine-wide brownout — every mechanism of
// the layer is live inside the storm window.
func resilienceChaosTenants() traffic.Spec {
	return traffic.Spec{
		Brownout: resilience.Brownout{Capacity: 96, Tiers: []float64{1.0, 0.5}},
		Tenants: []traffic.Tenant{
			{
				Name: "ckpt", Clients: 4000, Workload: traffic.SeqWrite,
				Arrival:      traffic.Arrival{Kind: traffic.Poisson, Rate: 1},
				RequestBytes: 1 << 20, IOBytes: 1 << 20,
				MaxInflight: 64, SLOP99: 50 * time.Millisecond, Priority: 0,
				Resilience: resilience.Policy{
					Deadline: 10 * time.Millisecond,
					Retry: netsim.RetryPolicy{
						Timeout: 2 * time.Millisecond, Multiplier: 2,
						MaxRetries: 2, Jitter: time.Millisecond,
					},
					Hedge: resilience.Hedge{Quantile: 0.9, MinSamples: 16},
					Breaker: resilience.BreakerSpec{
						Failures: 5, Cooldown: 5 * time.Millisecond,
						Probes: 2, Successes: 3,
					},
				},
			},
			{
				Name: "meta", Clients: 2000, Workload: traffic.Metadata,
				Arrival:     traffic.Arrival{Kind: traffic.DeterministicRate, Rate: 1},
				MaxInflight: 128, SLOP99: 5 * time.Millisecond, Priority: 1,
				Resilience: resilience.Policy{
					Deadline: 5 * time.Millisecond,
					Retry:    netsim.RetryPolicy{Timeout: time.Millisecond, Multiplier: 2, MaxRetries: 1},
				},
			},
		},
	}
}

// RunResilienceChaosStorm generates the seeded storm for fs's canonical
// deployment, wraps the backend in a repair.Manager, attaches the
// invariant checker, and runs the resilient traffic foreground through it.
func RunResilienceChaosStorm(fs FS, seed uint64, opts Options) (ResilienceChaosReport, error) {
	opts = opts.withDefaults()
	machine, err := chaosMachine(fs)
	if err != nil {
		return ResilienceChaosReport{}, err
	}
	tb, err := buildTestbed(machine, fs, 2, nil)
	if err != nil {
		return ResilienceChaosReport{}, err
	}
	prot, ok := tb.target.(repair.Protected)
	if !ok {
		return ResilienceChaosReport{}, fmt.Errorf("experiments: %s target declares no redundancy scheme", fs)
	}
	scheme := prot.RepairScheme()
	storm := chaos.Storm(seed, chaos.Profile{
		Target:          string(fs),
		Servers:         prot.FaultServers(),
		Units:           prot.FaultUnits(),
		UnitsAreServers: scheme.ServersHoldData,
		Horizon:         30 * time.Millisecond,
		Events:          12,
	})
	mgr := repair.NewManager(tb.env, tb.fab, prot, repair.QoS{MinBytes: 32 << 20})
	inj := faults.NewInjector(tb.env)
	inj.Register(string(fs), mgr)
	if err := inj.Apply(storm); err != nil {
		return ResilienceChaosReport{}, err
	}
	checker := invariants.Attach(tb.env, tb.fab, 250*time.Microsecond)
	checker.Final("rebuild-completes-or-reports-loss", mgr.CheckComplete)
	mount := func(tenant string, node int) fsapi.Client {
		return tb.mount(tb.cl.Node(node).Name+"/"+tenant, node)
	}
	trep := traffic.Run(tb.env, tb.fab, 2, mount, traffic.Config{
		Spec:     resilienceChaosTenants(),
		Duration: 50 * time.Millisecond,
		Seed:     opts.Seed + seed,
	})
	if checker.Samples() == 0 {
		return ResilienceChaosReport{}, fmt.Errorf("experiments: resilience chaos checker never sampled")
	}
	checker.Err() // fold final checks into Violations
	return ResilienceChaosReport{
		Backend:      string(fs),
		Machine:      machine,
		Seed:         seed,
		Delivered:    len(inj.Applied()),
		LostBytes:    mgr.LostBytes(),
		RebuiltBytes: mgr.RebuiltBytes(),
		Losses:       len(mgr.Losses()),
		Rebuilds:     len(mgr.Jobs()),
		Violations:   checker.Violations(),
		Traffic:      trep,
	}, nil
}
