package experiments

import (
	"fmt"

	"storagesim/internal/cluster"
	"storagesim/internal/dlio"
	"storagesim/internal/ior"
	"storagesim/internal/sim"
	"storagesim/internal/stats"
	"storagesim/internal/trace"
	"storagesim/internal/vast"
)

// TableI reprints the paper's cluster table.
func TableI() Table {
	t := Table{
		ID:     "table1",
		Title:  "Clusters used for experiments",
		Header: []string{"Name", "Nodes", "CPU", "GPU", "RAM", "Arch", "Network"},
	}
	for _, m := range cluster.Machines() {
		t.Rows = append(t.Rows, []string{
			m.Name,
			fmt.Sprint(m.Nodes), fmt.Sprint(m.CPUsPerNode), fmt.Sprint(m.GPUsPerNode),
			fmt.Sprint(m.RAMGB), m.Arch, m.Network,
		})
	}
	return t
}

// RunIOROnce builds the machine+fs testbed with the given node count and
// runs one fully explicit IOR configuration on it — the entry point for
// cmd/iorbench and ad-hoc experiments.
func RunIOROnce(machine string, fs FS, nodes int, cfg ior.Config) (ior.Result, error) {
	res, _, err := RunIORWithBottlenecks(machine, fs, nodes, cfg, 0)
	return res, err
}

// RunIORWithBottlenecks is RunIOROnce with utilization accounting: it also
// returns the topN busiest pipes of the run — the simulator's direct
// answer to "what limited this number?".
func RunIORWithBottlenecks(machine string, fs FS, nodes int, cfg ior.Config, topN int) (ior.Result, []sim.PipeUtil, error) {
	tb, err := buildTestbed(machine, fs, nodes, nil)
	if err != nil {
		return ior.Result{}, nil, err
	}
	if topN > 0 {
		tb.fab.EnableAccounting()
	}
	res, err := ior.Run(tb.env, tb.mounts, cfg)
	if err != nil {
		return ior.Result{}, nil, err
	}
	var top []sim.PipeUtil
	if topN > 0 {
		top = tb.fab.TopUtilized(topN)
	}
	return res, top, nil
}

// RunDLIOOnce builds the Lassen testbed for fs and runs one DLIO
// configuration, returning the result and the recorded trace — the entry
// point for cmd/dliobench.
func RunDLIOOnce(fs FS, nodes int, cfg dlio.Config) (dlio.Result, *trace.Recorder, error) {
	tb, err := buildTestbed("Lassen", fs, nodes, nil)
	if err != nil {
		return dlio.Result{}, nil, err
	}
	rec := trace.NewRecorder()
	res, err := dlio.Run(tb.env, tb.mounts, cfg, rec)
	return res, rec, err
}

// iorPoint runs one IOR configuration once and returns the bandwidth of
// the phase the workload measures, in GB/s.
func iorPoint(machine string, fs FS, nodes, ppn int, wl ior.Workload, segments int, fsync bool, derate float64, seed uint64, mutate func(*vast.Config)) (float64, error) {
	tb, err := buildTestbed(machine, fs, nodes, mutate)
	if err != nil {
		return 0, err
	}
	if derate < 1 {
		tb.derate(derate)
	}
	res, err := ior.Run(tb.env, tb.mounts, ior.Config{
		Workload:     wl,
		BlockSize:    1 << 20,
		TransferSize: 1 << 20,
		Segments:     segments,
		ProcsPerNode: ppn,
		Fsync:        fsync,
		ReorderTasks: true,
		Seed:         seed,
		Dir:          "/ior",
	})
	if err != nil {
		return 0, err
	}
	bw := res.WriteBW
	if wl != ior.Scientific {
		bw = res.ReadBW
	}
	return bw / 1e9, nil
}

// iorSeries sweeps xs (node or proc counts) with reps repetitions and
// returns a series of mean aggregate GB/s with stddev error bars.
func iorSeries(name, machine string, fs FS, xs []int, point func(x int, derate float64, seed uint64) (float64, error), opts Options) (stats.Series, error) {
	s := stats.Series{Name: name}
	rng := stats.NewRNG(opts.Seed ^ hashString(name))
	tbSpread := dedicatedSpread
	if fs == GPFS || fs == Lustre {
		tbSpread = sharedSpread
	}
	for _, x := range xs {
		x := x
		vals, err := runReps(opts.Reps,
			func(rep int) float64 { return derateFactor(rng, rep, tbSpread) },
			func(rep int, f float64) (float64, error) {
				return point(x, f, opts.Seed+uint64(rep))
			})
		if err != nil {
			return s, err
		}
		mean, dev := summarizeReps(vals)
		s.Append(float64(x), mean, dev)
	}
	return s, nil
}

// hashString mixes a name into a seed (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// workloadTitle maps IOR workloads to the paper's panel names.
func workloadTitle(wl ior.Workload) string {
	switch wl {
	case ior.Scientific:
		return "scientific simulations (sequential write)"
	case ior.Analytics:
		return "data analytics (sequential read)"
	default:
		return "ML applications (random read)"
	}
}

// Fig2a reproduces Figure 2a: IOR scalability on Lassen (44 ppn, 1→128
// nodes, 1 MiB transfers, 3000 segments ≈ 129 GB/node), VAST (NFS/TCP)
// against GPFS, one panel per workload.
func Fig2a(opts Options) ([]Panel, error) {
	opts = opts.withDefaults()
	segments := 3000
	var panels []Panel
	for _, wl := range []ior.Workload{ior.Scientific, ior.Analytics, ior.ML} {
		panel := Panel{
			ID:     fmt.Sprintf("fig2a-%s", wl),
			Title:  "Lassen scalability: " + workloadTitle(wl),
			XLabel: "nodes",
			YLabel: "aggregate GB/s",
		}
		for _, fs := range []FS{VAST, GPFS} {
			fs := fs
			wl := wl
			s, err := iorSeries(string(fs), "Lassen", fs, nodesSweep(opts.Quick),
				func(x int, f float64, seed uint64) (float64, error) {
					return iorPoint("Lassen", fs, x, 44, wl, segments, false, f, seed, nil)
				}, opts)
			if err != nil {
				return nil, err
			}
			panel.Series = append(panel.Series, s)
		}
		panels = append(panels, panel)
	}
	return panels, nil
}

// Fig2b reproduces Figure 2b: IOR scalability on Wombat (48 ppn, 1→8
// nodes), VAST (NFS/RDMA, nconnect=16, multipath) against node-local NVMe.
func Fig2b(opts Options) ([]Panel, error) {
	opts = opts.withDefaults()
	segments := 3000
	var panels []Panel
	for _, wl := range []ior.Workload{ior.Scientific, ior.Analytics, ior.ML} {
		panel := Panel{
			ID:     fmt.Sprintf("fig2b-%s", wl),
			Title:  "Wombat scalability: " + workloadTitle(wl),
			XLabel: "nodes",
			YLabel: "aggregate GB/s",
		}
		for _, fs := range []FS{VAST, NVMe} {
			fs := fs
			wl := wl
			s, err := iorSeries(string(fs), "Wombat", fs, wombatSweep(opts.Quick),
				func(x int, f float64, seed uint64) (float64, error) {
					return iorPoint("Wombat", fs, x, 48, wl, segments, false, f, seed, nil)
				}, opts)
			if err != nil {
				return nil, err
			}
			panel.Series = append(panel.Series, s)
		}
		panels = append(panels, panel)
	}
	return panels, nil
}

// fig3Case describes one Figure 3 sub-figure.
type fig3Case struct {
	sub     string
	machine string
	systems []FS
}

// Fig3 reproduces Figure 3: single-node tests with fsync on writes,
// scaling processes 1→32, on all four machines. Each sub-figure yields a
// write panel (scientific, fsync) and a read panel (data analytics).
func Fig3(opts Options) ([]Panel, error) {
	opts = opts.withDefaults()
	cases := []fig3Case{
		{"a", "Lassen", []FS{VAST, GPFS}},
		{"b", "Quartz", []FS{VAST, Lustre}},
		{"c", "Ruby", []FS{VAST, Lustre}},
		{"d", "Wombat", []FS{VAST, NVMe}},
	}
	// 32 segments of 1 MiB per rank keep the op-level run short while still
	// reaching steady state.
	const segments = 32
	var panels []Panel
	for _, c := range cases {
		for _, phase := range []ior.Workload{ior.Scientific, ior.Analytics} {
			kind := "write+fsync"
			if phase == ior.Analytics {
				kind = "read"
			}
			panel := Panel{
				ID:     fmt.Sprintf("fig3%s-%s", c.sub, kind),
				Title:  fmt.Sprintf("%s single node, %s", c.machine, kind),
				XLabel: "processes",
				YLabel: "GB/s",
			}
			for _, fs := range c.systems {
				fs := fs
				phase := phase
				machine := c.machine
				s, err := iorSeries(string(fs), machine, fs, procsSweep(opts.Quick),
					func(x int, f float64, seed uint64) (float64, error) {
						return iorPoint(machine, fs, 1, x, phase, segments, true, f, seed, nil)
					}, opts)
				if err != nil {
					return nil, err
				}
				panel.Series = append(panel.Series, s)
			}
			panels = append(panels, panel)
		}
	}
	return panels, nil
}
