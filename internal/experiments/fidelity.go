package experiments

import (
	"storagesim/internal/faults"
	"storagesim/internal/fidelity"
	"storagesim/internal/fsapi"
	"storagesim/internal/trace"
	"storagesim/internal/traffic"
)

// Trace replay and fidelity audits: the entry points behind cmd/tracereplay.
// RecordTraffic turns a synthetic run into a recorded trace (the simulator
// acting as its own production system); ReplayTraceOn replays any recorded
// trace — ingested or synthetic — against a deployment; FidelityAudit does
// the replay and then holds the model to the trace's recorded metrics with
// per-metric error bands. The round-trip fidelity test chains all three:
// record, re-ingest, replay on the same testbed, audit — the audit harness
// auditing itself.

// RecordTraffic runs the traffic spec on a machine+fs testbed and records
// the completed request stream as trace events (issue time, tenant, op,
// bytes, op size, measured latency, node, path). The run always drains:
// an undrained recording omits the in-flight tail whose contention shaped
// the recorded latencies, so replaying it would measure a lighter load
// than the one recorded. The returned events are in completion order;
// trace.Normalize sorts and rebases them.
func RecordTraffic(machine string, fs FS, nodes int, cfg traffic.Config) (traffic.Report, []trace.Event, error) {
	var events []trace.Event
	cfg.Observer = func(ev trace.Event) { events = append(events, ev) }
	cfg.Drain = true
	rep, _, err := RunTrafficWithFaults(machine, fs, nodes, cfg, faults.Schedule{})
	return rep, events, err
}

// ReplayTraceOn replays a normalized trace open-loop against a machine+fs
// testbed: recorded timestamps drive the arrivals, the target deployment
// decides the latencies. Tenant mounts are minted per tenant×node exactly
// as in RunTrafficWithFaults.
func ReplayTraceOn(machine string, fs FS, nodes int, tr *trace.Trace, cfg traffic.TraceConfig) (traffic.Report, error) {
	tb, err := buildTestbed(machine, fs, nodes, nil)
	if err != nil {
		return traffic.Report{}, err
	}
	mount := func(tenant string, node int) fsapi.Client {
		return tb.mount(tb.cl.Node(node).Name+"/"+tenant, node)
	}
	cfg.Trace = tr
	return traffic.ReplayTrace(tb.env, tb.fab, nodes, mount, cfg), nil
}

// AuditOptions parameterizes a fidelity audit.
type AuditOptions struct {
	// IOBytes is the replay's per-op transfer size (0 = 1 MiB).
	IOBytes int64
	// Tolerance bounds the acceptable per-metric error (zero fields take
	// the documented defaults: 2% on percentiles, 5% on goodput, exact
	// completion counts).
	Tolerance fidelity.Tolerance
	// SketchAlpha is the percentile sketch's relative-error bound used on
	// both the recorded and the simulated side (0 = stats default, 1%).
	SketchAlpha float64
}

// FidelityAudit replays tr against the deployment and compares simulated
// per-tenant goodput, completion counts and p50/p95/p99 latency against
// the metrics recorded in the trace, reporting per-metric error bands. The
// replay report is returned alongside so callers can render both views.
func FidelityAudit(machine string, fs FS, nodes int, tr *trace.Trace, opts AuditOptions) (*fidelity.Report, traffic.Report, error) {
	rep, err := ReplayTraceOn(machine, fs, nodes, tr, traffic.TraceConfig{
		IOBytes:     opts.IOBytes,
		SketchAlpha: opts.SketchAlpha,
	})
	if err != nil {
		return nil, traffic.Report{}, err
	}
	audit, err := fidelity.Audit(tr, rep, opts.Tolerance, opts.SketchAlpha)
	if err != nil {
		return nil, traffic.Report{}, err
	}
	return audit, rep, nil
}
