package experiments

import (
	"fmt"

	"storagesim/internal/cluster"
	"storagesim/internal/faults"
	"storagesim/internal/fsapi"
	"storagesim/internal/sim"
	"storagesim/internal/vast"
)

// FS names the storage deployments under test.
type FS string

// Deployment identifiers used across the experiments.
const (
	VAST    FS = "vast"
	GPFS    FS = "gpfs"
	Lustre  FS = "lustre"
	NVMe    FS = "nvme"
	UnifyFS FS = "unifyfs"
)

// testbed is one instantiated (machine, deployment, node count) triple.
type testbed struct {
	env    *sim.Env
	fab    *sim.Fabric
	cl     *cluster.Cluster
	mounts []fsapi.Client
	// mount mints one more client mount named name on node index i. The
	// benchmark engines use the prebuilt mounts (one per node); the traffic
	// engine mints extra per-tenant mounts through this so each tenant gets
	// its own tagged view of the same node.
	mount func(name string, i int) fsapi.Client
	// derate scales the deployment's server side (contention model).
	derate func(f float64)
	// shared reports whether the deployment is a production shared system
	// (GPFS, Lustre) or dedicated (VAST, node-local NVMe).
	shared bool
	// vast holds the VAST system when the testbed is a VAST deployment
	// (failover and staging studies need the concrete type).
	vast *vast.System
	// target is the deployment as a fault-injection target (every backend
	// implements faults.Target).
	target faults.Target
}

// buildTestbed instantiates machine+fs with n nodes. mutateVAST, when
// non-nil, adjusts the VAST config before instantiation (ablations).
func buildTestbed(machine string, fs FS, n int, mutateVAST func(*vast.Config)) (*testbed, error) {
	env := sim.NewEnv()
	return buildTestbedOn(env, sim.NewFabric(env), machine, fs, n, mutateVAST)
}

// buildTestbedOn is buildTestbed on a caller-owned env and fabric — the
// domain-sharded experiments build one testbed per rack shard, each on the
// shard's own Env, so racks advance in parallel under the group
// coordinator.
func buildTestbedOn(env *sim.Env, fab *sim.Fabric, machine string, fs FS, n int, mutateVAST func(*vast.Config)) (*testbed, error) {
	spec, err := cluster.MachineByName(machine)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(env, fab, spec, n)
	if err != nil {
		return nil, err
	}
	tb := &testbed{env: env, fab: fab, cl: cl}
	mountAll := func(mount func(string, int) fsapi.Client) {
		tb.mount = mount
		for i := 0; i < n; i++ {
			tb.mounts = append(tb.mounts, mount(cl.Node(i).Name, i))
		}
	}
	switch {
	case fs == VAST && machine == "Wombat":
		cfg := cluster.WombatVASTConfig(cl)
		if mutateVAST != nil {
			mutateVAST(&cfg)
		}
		sys, err := vast.New(env, fab, cfg)
		if err != nil {
			return nil, err
		}
		mountAll(func(name string, i int) fsapi.Client { return sys.Mount(name, cl.Node(i).NIC) })
		tb.derate = sys.Derate
		tb.vast = sys
		tb.target = sys
	case fs == VAST && machine == "Lassen":
		sys := cluster.VASTOnLassen(cl)
		mountAll(func(name string, i int) fsapi.Client { return sys.Mount(name, cl.Node(i).NIC) })
		tb.derate = sys.Derate
		tb.vast = sys
		tb.target = sys
	case fs == VAST && machine == "Ruby":
		sys := cluster.VASTOnRuby(cl)
		mountAll(func(name string, i int) fsapi.Client { return sys.Mount(name, cl.Node(i).NIC) })
		tb.derate = sys.Derate
		tb.vast = sys
		tb.target = sys
	case fs == VAST && machine == "Quartz":
		sys := cluster.VASTOnQuartz(cl)
		mountAll(func(name string, i int) fsapi.Client { return sys.Mount(name, cl.Node(i).NIC) })
		tb.derate = sys.Derate
		tb.vast = sys
		tb.target = sys
	case fs == GPFS && machine == "Lassen":
		sys := cluster.GPFSOnLassen(cl)
		mountAll(func(name string, i int) fsapi.Client { return sys.Mount(name, cl.Node(i).NIC) })
		tb.derate = sys.Derate
		tb.shared = true
		tb.target = sys
	case fs == Lustre && (machine == "Ruby" || machine == "Quartz"):
		sys := cluster.LustreOn(cl)
		mountAll(func(name string, i int) fsapi.Client { return sys.Mount(name, cl.Node(i).NIC) })
		tb.derate = sys.Derate
		tb.shared = true
		tb.target = sys
	case fs == NVMe && machine == "Wombat":
		sys := cluster.NVMeOnWombat(cl)
		mountAll(func(name string, i int) fsapi.Client { return sys.Mount(name, cl.Node(i).NIC) })
		tb.derate = func(float64) {} // node-local: nobody else contends
		tb.target = sys
	case fs == UnifyFS && machine == "Wombat":
		sys := cluster.UnifyFSOnWombat(cl)
		mountAll(func(name string, i int) fsapi.Client { return sys.Mount(name, cl.Node(i).NIC) })
		tb.derate = func(float64) {} // job-private burst buffer
		tb.target = sys
	default:
		return nil, fmt.Errorf("experiments: no deployment of %s on %s", fs, machine)
	}
	return tb, nil
}

// spread returns the contention spread for the testbed's deployment class.
func (tb *testbed) spread() float64 {
	if tb.shared {
		return sharedSpread
	}
	return dedicatedSpread
}
