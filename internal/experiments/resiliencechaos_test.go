package experiments

import (
	"testing"
)

// TestResilienceChaosStorm is the resilience half of the chaos gate,
// wired into `make check` (resilience-smoke): three seeded storms against
// the VAST deployment with the full client policy stack armed, zero
// invariant violations — deadline cancellation and breaker shedding must
// never over-allocate bandwidth or strand a rebuild.
func TestResilienceChaosStorm(t *testing.T) {
	var breakerEngaged, deadlineMissed bool
	for _, seed := range chaosSmokeSeeds {
		rep, err := RunResilienceChaosStorm(VAST, seed, Options{Quick: true})
		if err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
		if len(rep.Violations) != 0 {
			t.Errorf("seed %#x: %d invariant violation(s): %s",
				seed, len(rep.Violations), rep.Violations[0])
		}
		if rep.Delivered == 0 {
			t.Errorf("seed %#x: storm delivered no events", seed)
		}
		for _, tr := range rep.Traffic.Tenants {
			if tr.Completed == 0 {
				t.Errorf("seed %#x: tenant %s completed nothing", seed, tr.Name)
			}
			if sum := tr.ShedAdmission + tr.ShedBrownout + tr.ShedBreaker + tr.DeadlineMiss; sum != tr.Shed {
				t.Errorf("seed %#x: tenant %s shed split %d != %d", seed, tr.Name, sum, tr.Shed)
			}
			breakerEngaged = breakerEngaged || tr.Breaker.Opens > 0
			deadlineMissed = deadlineMissed || tr.DeadlineMiss > 0
		}
	}
	// The gate is only meaningful if the storms actually stress the layer:
	// across the three seeds, deadlines must have missed and at least one
	// breaker must have tripped.
	if !deadlineMissed {
		t.Error("no seed produced a deadline miss — storms not stressing the layer")
	}
	if !breakerEngaged {
		t.Error("no seed tripped a breaker — storms not stressing the layer")
	}
}

// TestResilienceChaosStormDeterministic replays one resilient storm and
// demands a byte-identical digest — cancellations, hedge races, jittered
// backoffs and breaker transitions are all part of the deterministic
// schedule.
func TestResilienceChaosStormDeterministic(t *testing.T) {
	a, err := RunResilienceChaosStorm(VAST, chaosSmokeSeeds[0], Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunResilienceChaosStorm(VAST, chaosSmokeSeeds[0], Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("resilient storm not deterministic:\n a: %s\n b: %s", a.Digest(), b.Digest())
	}
}
