package experiments

import "testing"

func TestWorkloadSuitabilityMatrix(t *testing.T) {
	tab, err := WorkloadSuitability(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 6 {
		t.Fatalf("suitability rows = %d, want the catalogue", len(tab.Rows))
	}
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	// The paper's application-user takeaway: ResNet-50 is viable on VAST.
	if row := byName["ResNet-50"]; row == nil || row[4] != "yes" {
		t.Fatalf("ResNet-50 verdict = %v, want yes", byName["ResNet-50"])
	}
	// Bandwidth-hungry sequential readers are not, behind the TCP gateway.
	if row := byName["KMeans"]; row == nil || row[4] == "yes" {
		t.Fatalf("KMeans verdict = %v, want no (TCP ceiling)", byName["KMeans"])
	}
	// Every row has a filled verdict.
	for _, row := range tab.Rows {
		if row[4] == "" {
			t.Fatalf("row %v missing verdict", row)
		}
	}
}

func TestVerdictRule(t *testing.T) {
	if verdict(8, 10) != "yes" {
		t.Fatal("80% must qualify")
	}
	if verdict(7.9, 10) == "yes" {
		t.Fatal("79% must not qualify")
	}
	if verdict(1, 0) != "n/a" {
		t.Fatal("zero baseline must be n/a")
	}
}
