package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestPanelCSVRoundShape(t *testing.T) {
	p := demoPanel()
	var b strings.Builder
	if err := p.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // header + 4 x values
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if rows[0][0] != "nodes" || rows[0][1] != "vast" || rows[0][2] != "vast_stddev" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][0] != "1" || rows[4][0] != "64" {
		t.Fatalf("x column = %v ... %v", rows[1][0], rows[4][0])
	}
	// gpfs value at x=4 is 10.
	if rows[2][3] != "10" {
		t.Fatalf("gpfs@4 = %q", rows[2][3])
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		ID:     "x",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
	}
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:        "1",
		64:       "64",
		2.5:      "2.5",
		0.333333: "0.333333",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
