package experiments

import (
	"strings"
	"sync"
	"testing"
)

// The quick retry-storm study takes a few seconds; both tests below share
// one run.
var (
	stormOnce sync.Once
	stormRes  RetryStormResult
	stormErr  error
)

func quickStorm(t *testing.T) RetryStormResult {
	t.Helper()
	stormOnce.Do(func() {
		stormRes, stormErr = RetryStormStudy(Options{Quick: true})
	})
	if stormErr != nil {
		t.Fatal(stormErr)
	}
	return stormRes
}

// TestGoldenRetryStormQuick pins the full bucketed timeline of the
// metastable-failure contrast — every goodput and retry digit of both
// variants. The deadline cancellations, jittered backoffs, breaker
// transitions and fault delivery are all part of the deterministic
// schedule, so the bytes must not move across runs, executor counts or
// kernel builds (default, -tags simreference, -tags simsequential).
func TestGoldenRetryStormQuick(t *testing.T) {
	res := quickStorm(t)
	var b strings.Builder
	for _, p := range res.Panels {
		b.WriteString(p.Render())
	}
	goldenCompare(t, "retrystorm_quick.golden", b.String())
}

// TestRetryStormMetastability asserts the study's headline properties
// rather than its bytes, so a deliberate golden regeneration cannot
// silently invert the result:
//
//   - unbounded retries convert the transient brownout into a permanent
//     collapse — post-recovery goodput stays at least 30% below nominal
//     and the inflight window remains pinned at its cap;
//   - the budgeted stack recovers to within 5% of nominal, with the
//     breaker having tripped (shedding load cheaply) and re-closed.
func TestRetryStormMetastability(t *testing.T) {
	res := quickStorm(t)
	if res.NaiveNominal <= 0 || res.BudgetedNominal <= 0 {
		t.Fatalf("no nominal goodput: naive %v budgeted %v", res.NaiveNominal, res.BudgetedNominal)
	}
	if res.NaivePost > 0.7*res.NaiveNominal {
		t.Fatalf("naive variant recovered: post %v vs nominal %v (want ≥30%% below)",
			res.NaivePost, res.NaiveNominal)
	}
	if res.BudgetedPost < 0.95*res.BudgetedNominal {
		t.Fatalf("budgeted variant did not recover: post %v vs nominal %v (want within 5%%)",
			res.BudgetedPost, res.BudgetedNominal)
	}
	// The naive collapse must be self-sustaining, not a draining backlog:
	// the inflight window is still pinned at its cap when the run ends,
	// 3.5 s after full capacity returned.
	if got, cap := res.NaiveReport.InFlightEnd, 1024; got != cap {
		t.Fatalf("naive inflight %d at end, want pinned at cap %d", got, cap)
	}
	if res.NaiveReport.Breaker.Opens != 0 {
		t.Fatalf("naive variant has no breaker but opened %d times", res.NaiveReport.Breaker.Opens)
	}
	br := res.BudgetedReport
	if br.Breaker.Opens == 0 || br.ShedBreaker == 0 {
		t.Fatalf("budgeted breaker never engaged: %+v", br)
	}
	if br.Breaker.Closes == 0 {
		t.Fatalf("budgeted breaker never re-closed after recovery: %+v", br)
	}
	if br.InFlightEnd != 0 {
		t.Fatalf("budgeted variant left %d in flight", br.InFlightEnd)
	}
	// Retry amplification stays within the budget: ≤ (1+budget) attempts
	// per admitted request.
	admitted := br.Offered - br.ShedAdmission - br.ShedBrownout - br.ShedBreaker
	if attempts := admitted + br.Retries; attempts > 3*admitted {
		t.Fatalf("budgeted attempts %d exceed (1+budget)·admitted %d", attempts, 3*admitted)
	}
}
