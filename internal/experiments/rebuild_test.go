package experiments

import (
	"testing"

	"storagesim/internal/faults"
	"storagesim/internal/faults/invariants"
	"storagesim/internal/ior"
	"storagesim/internal/repair"
	"storagesim/internal/sim"
)

// dipCase pins one redundant backend's dip-recover-rebuild regime. The
// workload and rebuild QoS are chosen so the failure actually binds the
// foreground: GPFS and Lustre pool dozens of servers behind per-node
// stack pipes, so a tolerance-sized failure only shows when the server
// pools carry enough concurrent load (big transfers, 64 ranks) and the
// rebuild window overlaps the pool-bound phases; VAST loses a quarter of
// its fabric with one of four DBoxes, so a modest workload already dips.
type dipCase struct {
	fs      FS
	machine string
	nodes   int
	cfg     ior.Config
	nfail   int // tolerance-sized concurrent failure
	kind    faults.Kind
	qos     repair.QoS
}

func bigPoolCfg() ior.Config {
	return ior.Config{
		Workload:     ior.Scientific,
		BlockSize:    16 << 20,
		TransferSize: 16 << 20,
		Segments:     8,
		ProcsPerNode: 16,
		OpLevel:      true,
		Seed:         0x5eed,
		Dir:          "/accept",
	}
}

func smallOpCfg() ior.Config {
	return ior.Config{
		Workload:     ior.Scientific,
		BlockSize:    1 << 20,
		TransferSize: 1 << 20,
		Segments:     24,
		ProcsPerNode: 4,
		OpLevel:      true,
		Seed:         0x5eed,
		Dir:          "/accept",
	}
}

func dipCases() []dipCase {
	return []dipCase{
		// GPFS flushes its RAID traffic in a tail burst, so the rebuild is
		// throttled hard enough to still be reconstructing when the tail
		// lands — partially restored health, strictly between the extremes.
		{GPFS, "Lassen", 4, bigPoolCfg(), 2, faults.ServerFail,
			repair.QoS{RateBps: 0.5e9, MinBytes: 256 << 20}},
		{Lustre, "Ruby", 4, bigPoolCfg(), 2, faults.ServerFail,
			repair.QoS{RateBps: 2e9, MinBytes: 256 << 20}},
		{VAST, "Wombat", 2, smallOpCfg(), 1, faults.UnitFail,
			repair.QoS{MinBytes: 256 << 20}},
	}
}

// dipSchedule fails the first tc.nfail units a quarter into the clean run.
func dipSchedule(tc dipCase, clean ior.Result) faults.Schedule {
	failAt := clean.WriteTime / 4
	var s faults.Schedule
	for i := 0; i < tc.nfail; i++ {
		s.Events = append(s.Events, faults.Event{At: failAt, Kind: tc.kind, Index: i})
	}
	return s
}

// TestRebuildDipRecover is the PR's acceptance criterion on the redundant
// backends: foreground write time with a failure + rebuild sits strictly
// between the clean run (fastest) and a failure that never heals
// (slowest); the rebuild completes; nothing is lost.
func TestRebuildDipRecover(t *testing.T) {
	for _, tc := range dipCases() {
		tc := tc
		t.Run(string(tc.fs), func(t *testing.T) {
			clean, _, err := RunIORWithFaults(tc.machine, tc.fs, tc.nodes, tc.cfg, faults.Schedule{})
			if err != nil {
				t.Fatal(err)
			}
			sched := dipSchedule(tc, clean)
			// Never-healing reference: raw fault engine, no recovery event.
			failOnly, _, err := RunIORWithFaults(tc.machine, tc.fs, tc.nodes, tc.cfg, sched)
			if err != nil {
				t.Fatal(err)
			}
			// Self-healing run: same failure through the repair manager.
			healed, mgr, err := RunIORWithRepair(tc.machine, tc.fs, tc.nodes, tc.cfg, sched, tc.qos)
			if err != nil {
				t.Fatal(err)
			}
			if !(clean.WriteTime < healed.WriteTime) {
				t.Errorf("healed run (%v) not slower than clean (%v): failure cost vanished",
					healed.WriteTime, clean.WriteTime)
			}
			if !(healed.WriteTime < failOnly.WriteTime) {
				t.Errorf("healed run (%v) not faster than never-healing run (%v): rebuild restored nothing",
					healed.WriteTime, failOnly.WriteTime)
			}
			jobs := mgr.Jobs()
			if len(jobs) != tc.nfail {
				t.Fatalf("expected %d rebuild jobs, got %d", tc.nfail, len(jobs))
			}
			for _, j := range jobs {
				if j.End == 0 {
					t.Errorf("unit %d rebuild never completed", j.Unit)
				}
			}
			if mgr.LostBytes() != 0 || len(mgr.Losses()) != 0 {
				t.Errorf("within-tolerance failure lost %g bytes", mgr.LostBytes())
			}
			if err := mgr.CheckComplete(); err != nil {
				t.Errorf("CheckComplete: %v", err)
			}
		})
	}
}

// TestRebuildSteadyStateMatchesClean runs a complete fail + rebuild cycle
// with no foreground traffic, then measures an identical probe workload on
// the healed testbed and on a never-failed one: post-rebuild steady-state
// throughput must equal the pre-failure clean level within 1e-9 relative —
// a completed rebuild may leave no residual derate behind. (The cycle runs
// before any I/O so the two testbeds differ only by the fail + rebuild
// history; a mid-workload failure also perturbs cache and seek state,
// which is real history, not a derate.)
func TestRebuildSteadyStateMatchesClean(t *testing.T) {
	for _, tc := range dipCases() {
		tc := tc
		t.Run(string(tc.fs), func(t *testing.T) {
			probe := tc.cfg
			probe.Dir = "/probe"
			qos := repair.QoS{MinBytes: 64 << 20}

			// Fail tolerance-many units at 1ms, let the rebuilds run dry.
			sched := faults.Schedule{}
			for i := 0; i < tc.nfail; i++ {
				sched.Events = append(sched.Events, faults.Event{
					At: 1e6, Kind: tc.kind, Index: i,
				})
			}
			tb, mgr, err := buildRepairTestbed(tc.machine, tc.fs, tc.nodes, sched, qos)
			if err != nil {
				t.Fatal(err)
			}
			tb.env.Run()
			if err := mgr.CheckComplete(); err != nil {
				t.Fatalf("rebuild incomplete before probe: %v", err)
			}
			probeStart := tb.env.Now()

			// Reference testbed: never failed, idled to the same virtual time
			// so periodic background machinery is in the same phase when the
			// probe starts.
			tbClean, _, err := buildRepairTestbed(tc.machine, tc.fs, tc.nodes, faults.Schedule{}, qos)
			if err != nil {
				t.Fatal(err)
			}
			tbClean.env.After(sim.Duration(probeStart-tbClean.env.Now()), func() {})
			tbClean.env.Run()

			// Capacity state first: every pipe restored to bit-exact nominal.
			if err := invariants.DiffStates(invariants.Snapshot(tbClean.fab), invariants.Snapshot(tb.fab)); err != nil {
				t.Errorf("healed fabric differs from clean fabric: %v", err)
			}

			cleanProbe, err := ior.Run(tbClean.env, tbClean.mounts, probe)
			if err != nil {
				t.Fatal(err)
			}
			healedProbe, err := ior.Run(tb.env, tb.mounts, probe)
			if err != nil {
				t.Fatal(err)
			}
			if err := invariants.SteadyStateMatch("write bandwidth", cleanProbe.WriteBW, healedProbe.WriteBW); err != nil {
				t.Error(err)
			}
			if err := invariants.SteadyStateMatch("read bandwidth", cleanProbe.ReadBW, healedProbe.ReadBW); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestUnprotectedFailureReportsLoss is the other half of the acceptance
// criterion: on the scheme-None backends a data-holding node failure must
// complete the run with a nonzero lost-bytes report — never a hang, never
// a silent clean result.
func TestUnprotectedFailureReportsLoss(t *testing.T) {
	for _, tc := range []struct {
		fs      FS
		machine string
	}{
		{UnifyFS, "Wombat"},
		{NVMe, "Wombat"},
	} {
		tc := tc
		t.Run(string(tc.fs), func(t *testing.T) {
			cfg := smallOpCfg()
			clean, _, err := RunIORWithFaults(tc.machine, tc.fs, 2, cfg, faults.Schedule{})
			if err != nil {
				t.Fatal(err)
			}
			sched := faults.Schedule{Events: []faults.Event{
				{At: clean.WriteTime / 2, Kind: faults.ServerFail, Index: 0},
			}}
			_, mgr, err := RunIORWithRepair(tc.machine, tc.fs, 2, cfg, sched, repair.Aggressive())
			if err != nil {
				t.Fatal(err)
			}
			if mgr.LostBytes() <= 0 {
				t.Errorf("node failure on %s reported %g lost bytes, want > 0", tc.fs, mgr.LostBytes())
			}
			if len(mgr.Jobs()) != 0 {
				t.Errorf("scheme-None backend ran %d rebuilds", len(mgr.Jobs()))
			}
			if err := mgr.CheckComplete(); err != nil {
				t.Errorf("CheckComplete: %v", err)
			}
		})
	}
}

// TestBeyondToleranceReportsLoss drives each redundant backend one unit
// past its declared tolerance with simultaneous failures and demands a
// nonzero loss report while the within-tolerance units still rebuild.
func TestBeyondToleranceReportsLoss(t *testing.T) {
	for _, tc := range dipCases() {
		tc := tc
		t.Run(string(tc.fs), func(t *testing.T) {
			clean, _, err := RunIORWithFaults(tc.machine, tc.fs, tc.nodes, tc.cfg, faults.Schedule{})
			if err != nil {
				t.Fatal(err)
			}
			tbProbe, _, err := buildRepairTestbed(tc.machine, tc.fs, tc.nodes, faults.Schedule{}, tc.qos)
			if err != nil {
				t.Fatal(err)
			}
			tol := tbProbe.target.(repair.Protected).RepairScheme().Tolerance
			// tol+1 simultaneous failures mid-run: the rebuilds started for
			// the first tol units are nowhere near done, so the last failure
			// exceeds the concurrent-loss budget.
			sched := faults.Schedule{}
			for i := 0; i <= tol; i++ {
				sched.Events = append(sched.Events, faults.Event{
					At:    clean.WriteTime / 2,
					Kind:  tc.kind,
					Index: i,
				})
			}
			_, mgr, err := RunIORWithRepair(tc.machine, tc.fs, tc.nodes, tc.cfg, sched, tc.qos)
			if err != nil {
				t.Fatal(err)
			}
			if len(mgr.Losses()) == 0 || mgr.LostBytes() <= 0 {
				t.Errorf("%d simultaneous failures beyond tolerance %d reported no loss (lost=%g)",
					tol+1, tol, mgr.LostBytes())
			}
			if len(mgr.Jobs()) != tol {
				t.Errorf("expected %d rebuilds for the within-tolerance units, got %d", tol, len(mgr.Jobs()))
			}
			if err := mgr.CheckComplete(); err != nil {
				t.Errorf("CheckComplete: %v", err)
			}
		})
	}
}

// TestGoldenRebuildQuick pins the rebuild figure: the throttled/aggressive
// trade-off is part of the deterministic schedule, so the rendered bytes
// must reproduce exactly.
func TestGoldenRebuildQuick(t *testing.T) {
	p, err := RebuildSweep(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 2 {
		t.Fatalf("expected throttled + aggressive series, got %d", len(p.Series))
	}
	var nonzero int
	for _, s := range p.Series {
		for _, pt := range s.Points {
			if pt.Y > 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Fatal("rebuild sweep rendered an all-zero figure")
	}
	goldenCompare(t, "rebuild_quick.golden", p.Render())
}
