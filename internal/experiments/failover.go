package experiments

import (
	"fmt"
	"time"

	"storagesim/internal/ior"
	"storagesim/internal/sim"
	"storagesim/internal/vast"
)

// FailoverStudy exercises the paper's "stateless containers" claim
// (Section III-A.2): because VAST's CNodes hold no state, losing servers
// costs only their share of capacity — clients fail over and keep running.
// The study runs the Wombat write workload with 0, 1, 2 and 4 of the 8
// CNodes failed mid-run and reports the delivered bandwidth.
func FailoverStudy(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		ID:     "failover-study",
		Title:  "VAST degraded-mode writes (Wombat, 2 nodes, CNodes failed mid-run)",
		Header: []string{"failed CNodes", "healthy", "write GB/s", "vs healthy"},
	}
	baseline := 0.0
	for _, failures := range []int{0, 1, 2, 4} {
		bw, healthy, err := failoverPoint(failures, opts)
		if err != nil {
			return Table{}, err
		}
		if failures == 0 {
			baseline = bw
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(failures), fmt.Sprint(healthy),
			fmt.Sprintf("%.2f", bw), fmt.Sprintf("%.0f%%", 100*bw/baseline),
		})
	}
	t.Notes = append(t.Notes,
		"stateless CNodes: failures cost capacity proportionally; no client ever errors")
	return t, nil
}

// failoverPoint runs the op-level write workload and fails `failures`
// CNodes shortly after the run starts.
func failoverPoint(failures int, opts Options) (bw float64, healthy int, err error) {
	tb, err := buildTestbed("Wombat", VAST, 2, nil)
	if err != nil {
		return 0, 0, err
	}
	sys := vastSystemOf(tb)
	if sys == nil {
		return 0, 0, fmt.Errorf("experiments: failover study needs a VAST testbed")
	}
	if failures > 0 {
		tb.env.Go("chaos", func(p *sim.Proc) {
			p.Sleep(10 * time.Millisecond)
			for i := 0; i < failures; i++ {
				sys.FailCNode(i)
			}
		})
	}
	segments := 128
	if opts.Quick {
		segments = 48
	}
	res, err := ior.Run(tb.env, tb.mounts, ior.Config{
		Workload:     ior.Scientific,
		BlockSize:    1 << 20,
		TransferSize: 1 << 20,
		Segments:     segments,
		ProcsPerNode: 16,
		OpLevel:      true, // ops re-resolve their path, so failover is live
		Seed:         opts.Seed,
		Dir:          "/ha",
	})
	if err != nil {
		return 0, 0, err
	}
	return res.WriteBW / 1e9, sys.HealthyCNodes(), nil
}

// vastSystemOf digs the VAST system out of a testbed built for it.
func vastSystemOf(tb *testbed) *vast.System {
	return tb.vast
}
