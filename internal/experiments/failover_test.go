package experiments

import "testing"

func TestFailoverStudyDegradesGracefully(t *testing.T) {
	tab, err := FailoverStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	var bws []float64
	for _, row := range tab.Rows {
		bws = append(bws, parseCell(t, row[2]))
	}
	// Bandwidth must degrade monotonically with failures but never reach
	// zero — capacity loss, not outage.
	for i := 1; i < len(bws); i++ {
		if bws[i] >= bws[i-1] {
			t.Fatalf("no degradation from %d to %d failures: %v", i-1, i, bws)
		}
		if bws[i] <= 0 {
			t.Fatalf("outage at row %d: %v", i, bws)
		}
	}
	// Failing half the CNodes must not halve bandwidth outright at this
	// small scale (the survivors absorb the clients), but must cost
	// something substantial.
	if ratio := bws[3] / bws[0]; ratio < 0.3 || ratio > 0.9 {
		t.Fatalf("4-failure ratio = %.2f, want graceful degradation", ratio)
	}
}
