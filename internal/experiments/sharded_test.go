package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"storagesim/internal/traffic"
)

func shardedTrafficDigest(t *testing.T, fs FS, machine string, domains int, seed uint64) string {
	t.Helper()
	rep, err := RunShardedTraffic(machine, fs, 2, 2, domains, traffic.ShardedConfig{
		Config: traffic.Config{
			Spec:     shardedChaosTenants(),
			Duration: 20 * time.Millisecond,
			Seed:     seed,
		},
		RemoteFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Digest()
}

// TestShardedTrafficLockstep is the table-driven determinism gate of the
// domain-parallel experiments: pinned seeds, full VAST and Lustre stacks
// split over two racks, executed at 1/2/4 domains — every digest must be
// byte-identical to the one-executor oracle, and the oracle digests
// themselves are pinned as goldens so the virtual-time results cannot
// drift across refactors.
func TestShardedTrafficLockstep(t *testing.T) {
	type deployment struct {
		fs      FS
		machine string
	}
	deps := []deployment{{VAST, "Wombat"}, {Lustre, "Ruby"}}
	seeds := []uint64{0x5eed1, 0x5eed2}
	var b strings.Builder
	for _, d := range deps {
		for _, seed := range seeds {
			want := shardedTrafficDigest(t, d.fs, d.machine, 1, seed)
			for _, domains := range []int{2, 4} {
				if got := shardedTrafficDigest(t, d.fs, d.machine, domains, seed); got != want {
					t.Errorf("%s seed=%#x domains=%d diverged from sequential oracle:\n got %s\nwant %s",
						d.fs, seed, domains, got, want)
				}
			}
			fmt.Fprintf(&b, "%s/%s seed=%#x %s\n", d.fs, d.machine, seed, want)
		}
	}
	goldenCompare(t, "sharded_traffic_lockstep.golden", b.String())
}

// TestShardedTrafficCoupling: remote placement must couple the racks — a
// remote-fraction-0 run has to produce a different outcome than the
// coupled one, or the forwarding path silently never engaged.
func TestShardedTrafficCoupling(t *testing.T) {
	cfg := traffic.Config{Spec: shardedChaosTenants(), Duration: 20 * time.Millisecond, Seed: 0x5eed1}
	coupled, err := RunShardedTraffic("Wombat", VAST, 2, 2, 2, traffic.ShardedConfig{Config: cfg, RemoteFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	isolated, err := RunShardedTraffic("Wombat", VAST, 2, 2, 2, traffic.ShardedConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if coupled.Digest() == isolated.Digest() {
		t.Fatal("remote fraction 0.3 produced the same digest as 0: forwarding never engaged")
	}
}

// TestShardedChaosSmoke is the parallel-smoke gate wired into `make
// check`: a two-rack chaos storm on two executors (run under -race by the
// gate) whose digest must match the strictly sequential one-executor run,
// with zero invariant violations on either rack and live foreground
// traffic on both.
func TestShardedChaosSmoke(t *testing.T) {
	const seed = 0x5eed1
	want, err := RunShardedChaosStorm(VAST, 2, 1, seed, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunShardedChaosStorm(VAST, 2, 2, seed, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != want.Digest() {
		t.Errorf("2-domain storm diverged from sequential oracle:\n got %s\nwant %s", got.Digest(), want.Digest())
	}
	if v := got.Violations(); len(v) != 0 {
		t.Errorf("%d invariant violation(s): %s", len(v), v[0])
	}
	for _, rc := range got.Racks {
		if rc.Delivered == 0 {
			t.Errorf("rack %d storm delivered no events", rc.Rack)
		}
	}
	var completed uint64
	for _, tr := range got.Traffic.Tenants {
		completed += tr.Completed
	}
	if completed == 0 {
		t.Error("foreground traffic completed no requests during the storm")
	}
}

// TestSaturationShardedKnob: the Options.Racks knob routes the saturation
// sweep through the sharded engine and still produces well-formed panels.
func TestSaturationShardedKnob(t *testing.T) {
	tenants, err := runSaturationPoint("Wombat", VAST, 4, traffic.Config{
		Spec:     shardedChaosTenants(),
		Duration: 20 * time.Millisecond,
		Seed:     0x5eed,
	}, Options{Racks: 2, Domains: 2, RemoteFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 {
		t.Fatalf("tenant count %d, want 2", len(tenants))
	}
	for _, tr := range tenants {
		if tr.Offered == 0 || tr.Completed == 0 {
			t.Errorf("%s: offered %d completed %d", tr.Name, tr.Offered, tr.Completed)
		}
	}
}
