package experiments

import (
	"testing"
)

func TestFig4aResNetShapes(t *testing.T) {
	p, err := Fig4("resnet50", quick())
	if err != nil {
		t.Fatal(err)
	}
	vastOvl := series(t, p, "vast overlap")
	vastNovl := series(t, p, "vast non-overlap")
	gpfsOvl := series(t, p, "gpfs overlap")
	gpfsNovl := series(t, p, "gpfs non-overlap")

	// VAST spends more total I/O time than GPFS, but most of it overlaps
	// with compute (Section VI-B).
	for _, n := range []float64{1, 8} {
		vTot := vastOvl.YAt(n) + vastNovl.YAt(n)
		gTot := gpfsOvl.YAt(n) + gpfsNovl.YAt(n)
		if vTot <= gTot {
			t.Fatalf("nodes=%v: VAST I/O (%.2fs) must exceed GPFS (%.2fs)", n, vTot, gTot)
		}
		if vastOvl.YAt(n) < 5*vastNovl.YAt(n) {
			t.Fatalf("nodes=%v: VAST I/O not mostly hidden: ovl=%.2f novl=%.2f",
				n, vastOvl.YAt(n), vastNovl.YAt(n))
		}
	}
}

func TestFig5ResNetThroughputs(t *testing.T) {
	app, system, err := Fig56("resnet50", quick())
	if err != nil {
		t.Fatal(err)
	}
	vApp, gApp := series(t, app, "vast"), series(t, app, "gpfs")
	vSys, gSys := series(t, system, "vast"), series(t, system, "gpfs")
	// System throughput differs strongly; app throughput only slightly,
	// GPFS ahead (Section VI-B / Figure 5).
	if gSys.YAt(8) < 1.5*vSys.YAt(8) {
		t.Fatalf("system throughput must differ strongly: gpfs=%.0f vast=%.0f",
			gSys.YAt(8), vSys.YAt(8))
	}
	gap := gApp.YAt(8) / vApp.YAt(8)
	if gap < 1.0 || gap > 1.2 {
		t.Fatalf("app throughput gap = %.2fx, want slight GPFS lead", gap)
	}
}

func TestFig4bAndFig6Cosmoflow(t *testing.T) {
	if testing.Short() {
		t.Skip("cosmoflow run is heavy")
	}
	p, err := Fig4("cosmoflow", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Non-overlapping I/O is dramatically larger for VAST (Section VI-C).
	vNovl := series(t, p, "vast non-overlap")
	gNovl := series(t, p, "gpfs non-overlap")
	if vNovl.YAt(1) < 10*gNovl.YAt(1) {
		t.Fatalf("VAST non-overlap (%.1fs) must dwarf GPFS (%.1fs)", vNovl.YAt(1), gNovl.YAt(1))
	}
	app, system, err := Fig56("cosmoflow", quick())
	if err != nil {
		t.Fatal(err)
	}
	// GPFS serves Cosmoflow clearly better on both views (Figure 6).
	if series(t, app, "gpfs").YAt(1) < 1.5*series(t, app, "vast").YAt(1) {
		t.Fatal("GPFS must clearly beat VAST on Cosmoflow app throughput")
	}
	if series(t, system, "gpfs").YAt(1) < 2*series(t, system, "vast").YAt(1) {
		t.Fatal("GPFS must clearly beat VAST on Cosmoflow system throughput")
	}
	_ = gNovl
}

func TestModelConfigUnknown(t *testing.T) {
	if _, _, err := modelConfig("alexnet"); err == nil {
		t.Fatal("unknown model accepted")
	}
}
