package experiments

import (
	"fmt"
	"time"

	"storagesim/internal/faults"
	"storagesim/internal/fsapi"
	"storagesim/internal/stats"
	"storagesim/internal/traffic"
)

// Multi-tenant saturation studies: the open-loop traffic engine drives a
// deployment with a mixed tenant population at increasing offered load.
// Unlike the closed-loop IOR sweeps — which always deliver whatever the
// system can absorb — an open-loop engine keeps offering work the system
// cannot serve, so delivered throughput flattens while tail latency turns
// the hockey-stick corner, and admission control starts shedding.

// RunTrafficWithFaults builds the machine+fs testbed, arms the fault
// schedule, and runs the traffic spec against it — the entry point for
// cmd/trafficbench. Tenant mounts are minted per tenant×node with
// tenant-qualified names, so shared deployments (VAST, GPFS, Lustre) give
// every tenant its own client stack into the common servers, while
// node-local deployments (NVMe, UnifyFS) give each tenant a private
// allocation — the burst-buffer-per-job model.
func RunTrafficWithFaults(machine string, fs FS, nodes int, cfg traffic.Config, sched faults.Schedule) (traffic.Report, []faults.Applied, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return traffic.Report{}, nil, err
	}
	tb, err := buildTestbed(machine, fs, nodes, nil)
	if err != nil {
		return traffic.Report{}, nil, err
	}
	inj := faults.NewInjector(tb.env)
	inj.Register(string(fs), tb.target)
	if err := inj.Apply(sched); err != nil {
		return traffic.Report{}, nil, err
	}
	mount := func(tenant string, node int) fsapi.Client {
		return tb.mount(tb.cl.Node(node).Name+"/"+tenant, node)
	}
	rep := traffic.Run(tb.env, tb.fab, nodes, mount, cfg)
	return rep, inj.Applied(), nil
}

// RunTraffic is RunTrafficWithFaults with an empty schedule.
func RunTraffic(machine string, fs FS, nodes int, cfg traffic.Config) (traffic.Report, error) {
	rep, _, err := RunTrafficWithFaults(machine, fs, nodes, cfg, faults.Schedule{})
	return rep, err
}

// SaturationTenants is the canonical four-tenant, one-million-client mix
// the saturation studies and cmd/trafficbench's built-in spec use: a
// checkpoint writer, an analytics scanner, a bursty ML random reader and a
// diurnal metadata tenant.
func SaturationTenants() traffic.Spec {
	return traffic.Spec{Tenants: []traffic.Tenant{
		{
			Name: "ckpt", Clients: 250_000, Workload: traffic.SeqWrite,
			Arrival:      traffic.Arrival{Kind: traffic.Poisson, Rate: 2e-4},
			RequestBytes: 4 << 20, IOBytes: 1 << 20,
			MaxInflight: 64, SLOP99: 2 * time.Second,
		},
		{
			Name: "scan", Clients: 250_000, Workload: traffic.SeqRead,
			Arrival:      traffic.Arrival{Kind: traffic.DeterministicRate, Rate: 2e-4},
			RequestBytes: 8 << 20, IOBytes: 1 << 20,
			MaxInflight: 32, SLOP99: 4 * time.Second,
		},
		{
			Name: "ml", Clients: 400_000, Workload: traffic.RandRead,
			Arrival: traffic.Arrival{
				Kind: traffic.OnOff, Rate: 2.5e-4,
				OnMean: 200 * time.Millisecond, OffMean: 600 * time.Millisecond, Burst: 4,
			},
			RequestBytes: 1 << 20, IOBytes: 128 << 10,
			MaxInflight: 128, SLOP99: time.Second,
		},
		{
			Name: "meta", Clients: 100_000, Workload: traffic.Metadata,
			Arrival: traffic.Arrival{
				Kind: traffic.Diurnal, Rate: 1e-3,
				Period: 2 * time.Second, Amplitude: 0.8,
			},
			MaxInflight: 256, SLOP99: 100 * time.Millisecond,
		},
	}}
}

// saturationLoads returns the offered-load multipliers of the sweep.
func saturationLoads(quick bool) []float64 {
	if quick {
		return []float64{1, 4, 16, 32}
	}
	return []float64{0.5, 1, 2, 4, 8, 16, 32}
}

// SaturationSweep sweeps offered load over the shared deployments and
// reports delivered goodput and aggregate p99 latency — the open-loop
// hockey stick. Both panels share the load-multiplier X axis.
func SaturationSweep(opts Options) ([]Panel, error) {
	opts = opts.withDefaults()
	goodput := Panel{
		ID:     "saturation-goodput",
		Title:  "Delivered goodput vs offered load (4 tenants, 1M clients)",
		XLabel: "load x",
		YLabel: "GB/s",
	}
	tail := Panel{
		ID:     "saturation-p99",
		Title:  "Aggregate p99 latency vs offered load (4 tenants, 1M clients)",
		XLabel: "load x",
		YLabel: "p99 ms",
	}
	type deployment struct {
		name    string
		machine string
		fs      FS
		nodes   int
	}
	deps := []deployment{
		{"vast/Wombat", "Wombat", VAST, 4},
		{"lustre/Ruby", "Ruby", Lustre, 4},
	}
	window := 2 * time.Second
	for _, d := range deps {
		gp := stats.Series{Name: d.name}
		tl := stats.Series{Name: d.name}
		for _, load := range saturationLoads(opts.Quick) {
			tenants, err := runSaturationPoint(d.machine, d.fs, d.nodes, traffic.Config{
				Spec:      SaturationTenants(),
				Duration:  window,
				Seed:      opts.Seed,
				LoadScale: load,
			}, opts)
			if err != nil {
				return nil, err
			}
			var delivered float64
			merged := stats.NewSketch(0)
			for _, tr := range tenants {
				delivered += tr.DeliveredBytes
				merged.Merge(tr.Sketch)
			}
			p99 := merged.Quantile(99) // seconds; NaN only if nothing completed
			gp.Points = append(gp.Points, stats.Point{X: load, Y: delivered / window.Seconds() / 1e9})
			gp.Err = append(gp.Err, 0)
			tl.Points = append(tl.Points, stats.Point{X: load, Y: p99 * 1e3})
			tl.Err = append(tl.Err, 0)
		}
		goodput.Series = append(goodput.Series, gp)
		tail.Series = append(tail.Series, tl)
	}
	note := fmt.Sprintf("open-loop window %v; seed %#x; load x scales every tenant's arrival rate", window, opts.Seed)
	if opts.Racks > 1 {
		note += fmt.Sprintf("; sharded over %d racks (remote fraction %g)", opts.Racks, opts.RemoteFraction)
	}
	goodput.Notes = append(goodput.Notes, note,
		"goodput counts tagged fabric bytes delivered inside the window, including partial requests")
	tail.Notes = append(tail.Notes, note,
		"p99 over completed requests of all tenants (latency sketch, 1% relative error)")
	return []Panel{goodput, tail}, nil
}
