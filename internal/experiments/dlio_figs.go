package experiments

import (
	"fmt"

	"storagesim/internal/dlio"
	"storagesim/internal/stats"
	"storagesim/internal/trace"
)

// dlioPoint runs one DLIO configuration on Lassen and returns the result.
func dlioPoint(fs FS, nodes int, cfg dlio.Config, derate float64, seed uint64) (dlio.Result, error) {
	tb, err := buildTestbed("Lassen", fs, nodes, nil)
	if err != nil {
		return dlio.Result{}, err
	}
	if derate < 1 {
		tb.derate(derate)
	}
	cfg.Seed = seed
	rec := trace.NewRecorder()
	return dlio.Run(tb.env, tb.mounts, cfg, rec)
}

// dlioNodes returns the node sweep for a model.
func dlioNodes(model string, quick bool) []int {
	if model == "cosmoflow" {
		if quick {
			return []int{1, 8}
		}
		return []int{1, 2, 4, 8}
	}
	if quick {
		return []int{1, 8, 32}
	}
	return []int{1, 2, 4, 8, 16, 32}
}

// dlioSweep runs the model on both file systems over the node sweep and
// hands each result to collect, which appends values to its own series.
func dlioSweep(cfg dlio.Config, opts Options, collect func(fs FS, nodes int, reps []dlio.Result) error) error {
	opts = opts.withDefaults()
	for _, fs := range []FS{VAST, GPFS} {
		rng := stats.NewRNG(opts.Seed ^ hashString(cfg.Model+string(fs)))
		spread := dedicatedSpread
		if fs == GPFS {
			spread = sharedSpread
		}
		for _, n := range dlioNodes(cfg.Model, opts.Quick) {
			fs, n := fs, n
			reps, err := runReps(opts.Reps,
				func(rep int) float64 { return derateFactor(rng, rep, spread) },
				func(rep int, f float64) (dlio.Result, error) {
					return dlioPoint(fs, n, cfg, f, opts.Seed+uint64(rep))
				})
			if err != nil {
				return err
			}
			if err := collect(fs, n, reps); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fig4 reproduces Figure 4 (I/O time analysis): for each file system, the
// overlapping and non-overlapping I/O seconds per node count. model is
// "resnet50" (Fig. 4a, weak scaling) or "cosmoflow" (Fig. 4b, strong
// scaling).
func Fig4(model string, opts Options) (Panel, error) {
	cfg, id, err := modelConfig(model)
	if err != nil {
		return Panel{}, err
	}
	panel := Panel{
		ID:     "fig4" + id,
		Title:  fmt.Sprintf("%s I/O time analysis (Lassen, VAST vs GPFS)", cfg.Model),
		XLabel: "nodes",
		YLabel: "seconds",
	}
	series := map[string]*stats.Series{}
	order := []string{}
	for _, fs := range []FS{VAST, GPFS} {
		for _, part := range []string{"overlap", "non-overlap"} {
			name := string(fs) + " " + part
			series[name] = &stats.Series{Name: name}
			order = append(order, name)
		}
	}
	err = dlioSweep(cfg, opts, func(fs FS, n int, reps []dlio.Result) error {
		var ovl, novl []float64
		for _, r := range reps {
			ovl = append(ovl, r.Analysis.OverlapIO.Seconds())
			novl = append(novl, r.Analysis.NonOverlapIO.Seconds())
		}
		m, d := summarizeReps(ovl)
		series[string(fs)+" overlap"].Append(float64(n), m, d)
		m, d = summarizeReps(novl)
		series[string(fs)+" non-overlap"].Append(float64(n), m, d)
		return nil
	})
	if err != nil {
		return Panel{}, err
	}
	for _, name := range order {
		panel.Series = append(panel.Series, *series[name])
	}
	return panel, nil
}

// Fig56 reproduces Figures 5 and 6 (application and system throughput in
// samples/s) for the given model: "resnet50" → Fig. 5, "cosmoflow" →
// Fig. 6. It returns the app-throughput panel and the system-throughput
// panel.
func Fig56(model string, opts Options) (app, system Panel, err error) {
	cfg, id, err := modelConfig(model)
	if err != nil {
		return Panel{}, Panel{}, err
	}
	figNum := "fig5"
	if id == "b" {
		figNum = "fig6"
	}
	app = Panel{
		ID:     figNum + "a-app-throughput",
		Title:  cfg.Model + " application throughput (samples/s)",
		XLabel: "nodes", YLabel: "samples/s",
	}
	system = Panel{
		ID:     figNum + "b-system-throughput",
		Title:  cfg.Model + " system throughput (samples/s)",
		XLabel: "nodes", YLabel: "samples/s",
	}
	appSeries := map[FS]*stats.Series{VAST: {Name: "vast"}, GPFS: {Name: "gpfs"}}
	sysSeries := map[FS]*stats.Series{VAST: {Name: "vast"}, GPFS: {Name: "gpfs"}}
	err = dlioSweep(cfg, opts, func(fs FS, n int, reps []dlio.Result) error {
		var av, sv []float64
		for _, r := range reps {
			av = append(av, r.AppSamplesPerSec)
			sv = append(sv, r.SysSamplesPerSec)
		}
		m, d := summarizeReps(av)
		appSeries[fs].Append(float64(n), m, d)
		m, d = summarizeReps(sv)
		sysSeries[fs].Append(float64(n), m, d)
		return nil
	})
	if err != nil {
		return Panel{}, Panel{}, err
	}
	for _, fs := range []FS{VAST, GPFS} {
		app.Series = append(app.Series, *appSeries[fs])
		system.Series = append(system.Series, *sysSeries[fs])
	}
	return app, system, nil
}

// modelConfig maps a model name to its DLIO preset and figure suffix.
func modelConfig(model string) (dlio.Config, string, error) {
	switch model {
	case "resnet50":
		return dlio.ResNet50(), "a", nil
	case "cosmoflow":
		return dlio.Cosmoflow(), "b", nil
	}
	return dlio.Config{}, "", fmt.Errorf("experiments: unknown DLIO model %q", model)
}
