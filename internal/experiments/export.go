package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the panel as CSV — one row per X value, one column pair
// (value, stddev) per series — so the figures can be re-plotted with any
// external tool.
func (p Panel) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{p.XLabel}
	for _, s := range p.Series {
		header = append(header, s.Name, s.Name+"_stddev")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(p.Series) > 0 {
		for i, pt := range p.Series[0].Points {
			row := []string{formatFloat(pt.X)}
			for _, s := range p.Series {
				row = append(row, formatFloat(s.YAt(pt.X)))
				errv := 0.0
				if i < len(s.Err) {
					errv = s.Err[i]
				}
				row = append(row, formatFloat(errv))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the table rows as CSV.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatFloat renders numbers compactly without scientific noise for the
// magnitudes the experiments produce.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return fmt.Sprintf("%.6g", v)
}
