package experiments

// Shape tests: each experiment must reproduce the qualitative findings of
// the paper (who wins, by roughly what factor, where saturation falls).
// These are the reproduction's acceptance tests.

import (
	"math"
	"strings"
	"testing"

	"storagesim/internal/stats"
)

func quick() Options { return Options{Quick: true, Reps: 1} }

func series(t *testing.T, p Panel, name string) stats.Series {
	t.Helper()
	for _, s := range p.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("panel %s has no series %q", p.ID, name)
	return stats.Series{}
}

func panelByID(t *testing.T, panels []Panel, id string) Panel {
	t.Helper()
	for _, p := range panels {
		if p.ID == id {
			return p
		}
	}
	t.Fatalf("no panel %q", id)
	return Panel{}
}

func TestTableIMatchesPaper(t *testing.T) {
	tab := TableI()
	if len(tab.Rows) != 4 {
		t.Fatalf("Table I rows = %d, want 4", len(tab.Rows))
	}
	rendered := tab.Render()
	for _, want := range []string{"Lassen", "795", "44", "Ruby", "1512", "Quartz", "3018", "Wombat", "A64fx", "Omni-Path"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("Table I missing %q:\n%s", want, rendered)
		}
	}
}

func TestFig2aShapes(t *testing.T) {
	panels, err := Fig2a(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("fig2a panels = %d", len(panels))
	}
	sci := panelByID(t, panels, "fig2a-scientific(seq-write)")
	vast := series(t, sci, "vast")
	gpfs := series(t, sci, "gpfs")

	// VAST plateaus at the gateway (~25 GB/s aggregate); GPFS keeps
	// scaling past it.
	if _, max := vast.MaxY(); max > 30 {
		t.Fatalf("VAST write exceeded the gateway ceiling: %.1f GB/s", max)
	}
	if vast.YAt(64) > 0.8*gpfs.YAt(64) {
		t.Fatalf("GPFS writes must dominate at scale: vast=%.1f gpfs=%.1f", vast.YAt(64), gpfs.YAt(64))
	}
	// VAST ~1.1 GB/s per node before saturation (the TCP connection cap).
	if per := vast.YAt(4) / 4; per < 0.8 || per > 1.4 {
		t.Fatalf("VAST per-node TCP write = %.2f GB/s, want ~1.1", per)
	}

	ml := panelByID(t, panels, "fig2a-ml(random-read)")
	ana := panelByID(t, panels, "fig2a-analytics(seq-read)")
	// GPFS random reads collapse relative to sequential at scale ("90%
	// performance drop"); VAST reads stay the same across patterns.
	gSeq, gRand := series(t, ana, "gpfs").YAt(64), series(t, ml, "gpfs").YAt(64)
	if gRand > 0.5*gSeq {
		t.Fatalf("GPFS random read did not collapse: seq=%.1f rand=%.1f", gSeq, gRand)
	}
	vSeq, vRand := series(t, ana, "vast").YAt(16), series(t, ml, "vast").YAt(16)
	if math.Abs(vSeq-vRand) > 0.15*vSeq {
		t.Fatalf("VAST patterns diverged: seq=%.1f rand=%.1f", vSeq, vRand)
	}
}

func TestFig2bShapes(t *testing.T) {
	panels, err := Fig2b(quick())
	if err != nil {
		t.Fatal(err)
	}
	ana := panelByID(t, panels, "fig2b-analytics(seq-read)")
	vast := series(t, ana, "vast")
	nvme := series(t, ana, "nvme")
	// VAST outperforms NVMe at small scale; NVMe scales linearly and
	// overtakes; VAST saturates by 8 nodes (8 CNodes / fabric).
	if vast.YAt(1) <= nvme.YAt(1) {
		t.Fatalf("VAST must beat NVMe at 1 node: vast=%.1f nvme=%.1f", vast.YAt(1), nvme.YAt(1))
	}
	if nvme.YAt(8) <= vast.YAt(8) {
		t.Fatalf("NVMe must overtake at 8 nodes: vast=%.1f nvme=%.1f", vast.YAt(8), nvme.YAt(8))
	}
	if growth := nvme.GrowthFactor(); growth < 6 {
		t.Fatalf("node-local NVMe must scale ~linearly, growth=%.1f", growth)
	}
	ml := panelByID(t, panels, "fig2b-ml(random-read)")
	if _, max := series(t, ml, "vast").MaxY(); max < 15 || max > 30 {
		t.Fatalf("VAST ML plateau = %.1f GB/s, want ~22.5", max)
	}
}

func TestFig3Shapes(t *testing.T) {
	panels, err := Fig3(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 3d: VAST ~5x NVMe for fsync writes at 32 procs; saturation ~5-6 GB/s.
	d := panelByID(t, panels, "fig3d-write+fsync")
	vast, nvme := series(t, d, "vast"), series(t, d, "nvme")
	ratio := vast.YAt(32) / nvme.YAt(32)
	if ratio < 3.5 || ratio > 7 {
		t.Fatalf("Wombat fsync write VAST/NVMe = %.1fx, want ~5x", ratio)
	}
	if v := vast.YAt(32); v < 4.5 || v > 7 {
		t.Fatalf("VAST fsync write saturation = %.1f GB/s, want ~5.8", v)
	}
	// 3b: Quartz VAST is throttled to the 2x1Gb gateway (~0.25 GB/s) while
	// Lustre grows with process count.
	b := panelByID(t, panels, "fig3b-write+fsync")
	if v := series(t, b, "vast").YAt(32); v > 0.3 {
		t.Fatalf("Quartz VAST = %.2f GB/s, want <=0.25 (gateway)", v)
	}
	if l := series(t, b, "lustre"); l.GrowthFactor() < 5 {
		t.Fatalf("Lustre must grow near-linearly, growth=%.1f", l.GrowthFactor())
	}
	// 3a vs 3b/3c: VAST on Lassen beats VAST on Ruby and Quartz (better
	// deployment).
	a := panelByID(t, panels, "fig3a-write+fsync")
	c := panelByID(t, panels, "fig3c-write+fsync")
	if series(t, a, "vast").YAt(32) <= series(t, c, "vast").YAt(32) {
		t.Fatal("VAST on Lassen must beat VAST on Ruby")
	}
	// 3a: at low concurrency the SCM-backed VAST beats GPFS's spinning
	// commit path.
	if series(t, a, "vast").YAt(1) <= series(t, a, "gpfs").YAt(1) {
		t.Fatal("VAST (SCM commit) must beat GPFS (RAID commit) at 1 process")
	}
}

func TestTakeawayRDMAvsTCP(t *testing.T) {
	tab, err := TakeawayRDMAvsTCP(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	note := tab.Notes[0]
	if !strings.Contains(note, "x") {
		t.Fatalf("note missing ratio: %s", note)
	}
	// Parse-free check: rerun the underlying points cheaply via the note
	// format is brittle; assert through a fresh computation instead.
	// (The note content is asserted in cmd tests.)
	_ = note
}

func TestTakeawaySeqVsRandomFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full 128-node sweep")
	}
	tab, err := TakeawaySeqVsRandom(Options{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is GPFS: the drop column must report ~90%.
	drop := tab.Rows[0][3]
	if drop != "90%" && drop != "89%" && drop != "91%" {
		t.Fatalf("GPFS seq->random drop = %s, want ~90%%", drop)
	}
	// Row 1 is VAST: consistent across patterns.
	if vDrop := tab.Rows[1][3]; vDrop != "0%" && vDrop != "1%" && vDrop != "2%" {
		t.Fatalf("VAST drop = %s, want ~0%%", vDrop)
	}
}

func TestAblationFabricMonotone(t *testing.T) {
	p, err := AblationFabric(quick())
	if err != nil {
		t.Fatal(err)
	}
	s := p.Series[0]
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y < s.Points[i-1].Y-0.5 {
			t.Fatalf("fabric sweep not monotone: %+v", s.Points)
		}
	}
	// The hypothesis: at the stock 6.25 GB/s per DBox the fabric binds, so
	// doubling it must raise aggregate bandwidth materially.
	if s.YAt(12.5) < 1.3*s.YAt(6.25) {
		t.Fatalf("fabric is not the binding constraint: %.1f vs %.1f", s.YAt(6.25), s.YAt(12.5))
	}
}

func TestAblationNconnectDiminishingReturns(t *testing.T) {
	p, err := AblationNconnect(quick())
	if err != nil {
		t.Fatal(err)
	}
	s := p.Series[0]
	if s.YAt(4) < 2*s.YAt(1) {
		t.Fatalf("nconnect must lift the single-connection ceiling: %+v", s.Points)
	}
}

func TestAblationCNodesGrowsWithServers(t *testing.T) {
	p, err := AblationCNodes(quick())
	if err != nil {
		t.Fatal(err)
	}
	s := p.Series[0]
	if s.YAt(8) <= s.YAt(1) {
		t.Fatalf("aggregate read did not grow with CNodes: %+v", s.Points)
	}
}

func TestAblationTCPGatewayProportional(t *testing.T) {
	p, err := AblationTCPGateway(quick())
	if err != nil {
		t.Fatal(err)
	}
	s := p.Series[0]
	// Aggregate write at 64 nodes is gateway-bound: doubling the gateway
	// should ~double the number.
	half, full := s.YAt(0.5), s.YAt(1.0)
	if full < 1.8*half || full > 2.2*half {
		t.Fatalf("gateway sweep not proportional: 0.5x=%.1f 1.0x=%.1f", half, full)
	}
}

func TestRenderPanel(t *testing.T) {
	p := Panel{ID: "x", Title: "T", XLabel: "nodes", YLabel: "GB/s"}
	s := stats.Series{Name: "a"}
	s.Append(1, 2.5, 0.1)
	p.Series = []stats.Series{s}
	out := p.Render()
	for _, want := range []string{"x", "T", "nodes", "a", "2.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
