package experiments

import (
	"fmt"

	"storagesim/internal/dlio"
	"storagesim/internal/ior"
	"storagesim/internal/trace"
	"storagesim/internal/workloads"
)

// WorkloadSuitability produces the matrix the paper's introduction asks
// for — "a better mapping between specific workloads and file systems":
// every Section III-B application preset runs on Lassen against VAST
// (NFS/TCP) and GPFS, and the table reports the headline metric plus the
// winner. This is the application-user takeaway, generalized beyond
// ResNet-50.
func WorkloadSuitability(opts Options) (Table, error) {
	opts = opts.withDefaults()
	const nodes, ppn = 4, 16
	t := Table{
		ID:     "workload-suitability",
		Title:  fmt.Sprintf("Workload suitability on Lassen (%d nodes): VAST (NFS/TCP) vs GPFS", nodes),
		Header: []string{"application", "metric", "vast", "gpfs", "suited to VAST?"},
	}
	cat := workloads.Catalogue(ppn)
	// Fixed report order (map iteration is random).
	order := []string{"cm1", "hacc", "bdcats", "kmeans", "oocsort", "resnet50", "cosmoflow", "cosmic-tagger"}
	for _, name := range order {
		w := cat[name]
		var row []string
		var err error
		switch w.Kind {
		case workloads.IORKind:
			row, err = suitabilityIOR(w, nodes, opts)
		case workloads.DLIOKind:
			if opts.Quick && name == "cosmoflow" {
				continue // the heavy sweep; covered by Fig. 6
			}
			row, err = suitabilityDLIO(w, nodes, opts)
		}
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"\"suited\" = VAST delivers >= 80% of GPFS on the workload's headline metric,",
		"matching the paper's takeaway that VAST viably serves low-I/O workloads and relieves GPFS contention")
	return t, nil
}

// suitabilityIOR runs one IOR-kind preset on both systems.
func suitabilityIOR(w workloads.Workload, nodes int, opts Options) ([]string, error) {
	cfg := w.IOR
	if opts.Quick && cfg.Segments > 64 {
		cfg.Segments = 64
	}
	cfg.Seed = opts.Seed
	run := func(fs FS) (float64, error) {
		res, err := RunIOROnce("Lassen", fs, nodes, cfg)
		if err != nil {
			return 0, err
		}
		if cfg.Workload == ior.Scientific {
			return res.WriteBW / 1e9, nil
		}
		return res.ReadBW / 1e9, nil
	}
	v, err := run(VAST)
	if err != nil {
		return nil, err
	}
	g, err := run(GPFS)
	if err != nil {
		return nil, err
	}
	metric := "write GB/s"
	if cfg.Workload != ior.Scientific {
		metric = "read GB/s"
	}
	return []string{
		w.Name, metric,
		fmt.Sprintf("%.2f", v), fmt.Sprintf("%.2f", g), verdict(v, g),
	}, nil
}

// suitabilityDLIO runs one DLIO-kind preset on both systems and compares
// the application-perceived throughput (what the user cares about).
func suitabilityDLIO(w workloads.Workload, nodes int, opts Options) ([]string, error) {
	cfg := w.DLIO
	if opts.Quick {
		cfg.Samples /= 2
		if cfg.Samples < nodes*cfg.ProcsPerNode {
			cfg.Samples = nodes * cfg.ProcsPerNode
		}
	}
	cfg.Seed = opts.Seed
	run := func(fs FS) (float64, error) {
		tb, err := buildTestbed("Lassen", fs, nodes, nil)
		if err != nil {
			return 0, err
		}
		res, err := dlio.Run(tb.env, tb.mounts, cfg, trace.NewRecorder())
		if err != nil {
			return 0, err
		}
		return res.AppSamplesPerSec, nil
	}
	v, err := run(VAST)
	if err != nil {
		return nil, err
	}
	g, err := run(GPFS)
	if err != nil {
		return nil, err
	}
	return []string{
		w.Name, "app samples/s",
		fmt.Sprintf("%.1f", v), fmt.Sprintf("%.1f", g), verdict(v, g),
	}, nil
}

// verdict applies the suitability rule.
func verdict(vast, gpfs float64) string {
	if gpfs <= 0 {
		return "n/a"
	}
	if vast >= 0.8*gpfs {
		return "yes"
	}
	return fmt.Sprintf("no (%.0f%% of GPFS)", 100*vast/gpfs)
}
