package experiments

import (
	"fmt"

	"storagesim/internal/ior"
)

// TakeawayRDMAvsTCP quantifies the system-administrator takeaway of
// Section VII: per-node write and read bandwidth of VAST behind the
// NFS/RDMA deployment (Wombat) versus the NFS/TCP deployment (Lassen),
// measured at the two-node scale where neither backend saturates.
func TakeawayRDMAvsTCP(opts Options) (Table, error) {
	opts = opts.withDefaults()
	// One node: the scale at which the paper quotes per-node deployment
	// bandwidths (neither backend pool is shared with other nodes yet).
	const nodes, ppn, segments = 1, 44, 3000
	row := func(machine, label string) ([]string, float64, float64, error) {
		w, err := iorPoint(machine, VAST, nodes, ppn, ior.Scientific, segments, false, 1, opts.Seed, nil)
		if err != nil {
			return nil, 0, 0, err
		}
		r, err := iorPoint(machine, VAST, nodes, ppn, ior.Analytics, segments, false, 1, opts.Seed, nil)
		if err != nil {
			return nil, 0, 0, err
		}
		wPer, rPer := w/float64(nodes), r/float64(nodes)
		return []string{label, fmt.Sprintf("%.2f", wPer), fmt.Sprintf("%.2f", rPer)}, wPer, rPer, nil
	}
	tcpRow, tcpW, tcpR, err := row("Lassen", "NFS/TCP (Lassen)")
	if err != nil {
		return Table{}, err
	}
	rdmaRow, rdmaW, rdmaR, err := row("Wombat", "NFS/RDMA+nconnect+multipath (Wombat)")
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "takeaway-rdma-vs-tcp",
		Title:  "VAST per-node bandwidth by deployment (GB/s)",
		Header: []string{"deployment", "write GB/s per node", "read GB/s per node"},
		Rows:   [][]string{tcpRow, rdmaRow},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("RDMA/TCP ratio: write %.1fx, read %.1fx (paper: up to 8x, ~8 GB/s vs ~1 GB/s per node)",
			rdmaW/tcpW, rdmaR/tcpR))
	return t, nil
}

// TakeawaySeqVsRandom quantifies the I/O-researcher takeaway: GPFS loses
// ~90% of its per-node read bandwidth going sequential → random while
// RDMA-deployed VAST stays consistent. Following the paper's framing, each
// per-node figure is taken at its characteristic scale: GPFS sequential at
// a modest node count (its unsaturated ~14.5 GB/s/node), GPFS random at
// the full 128-node scale where the seek-bound pool pins every node to
// ~1.4 GB/s; VAST on the Wombat RDMA deployment.
func TakeawaySeqVsRandom(opts Options) (Table, error) {
	opts = opts.withDefaults()
	const segments = 3000
	seqNodes, randNodes := 8, 128
	if opts.Quick {
		seqNodes, randNodes = 4, 64
	}
	gSeq, err := iorPoint("Lassen", GPFS, seqNodes, 44, ior.Analytics, segments, false, 1, opts.Seed, nil)
	if err != nil {
		return Table{}, err
	}
	gRand, err := iorPoint("Lassen", GPFS, randNodes, 44, ior.ML, segments, false, 1, opts.Seed, nil)
	if err != nil {
		return Table{}, err
	}
	vSeq, err := iorPoint("Wombat", VAST, 2, 48, ior.Analytics, segments, false, 1, opts.Seed, nil)
	if err != nil {
		return Table{}, err
	}
	vRand, err := iorPoint("Wombat", VAST, 2, 48, ior.ML, segments, false, 1, opts.Seed, nil)
	if err != nil {
		return Table{}, err
	}
	gSeqPer, gRandPer := gSeq/float64(seqNodes), gRand/float64(randNodes)
	vSeqPer, vRandPer := vSeq/2, vRand/2
	t := Table{
		ID:     "takeaway-seq-vs-random",
		Title:  "Per-node read bandwidth: sequential vs random (GB/s)",
		Header: []string{"file system", "seq GB/s per node", "random GB/s per node", "drop"},
		Rows: [][]string{
			{"GPFS (HDD, Lassen)", fmt.Sprintf("%.2f", gSeqPer), fmt.Sprintf("%.2f", gRandPer),
				fmt.Sprintf("%.0f%%", 100*(1-gRandPer/gSeqPer))},
			{"VAST (SCM/QLC, RDMA, Wombat)", fmt.Sprintf("%.2f", vSeqPer), fmt.Sprintf("%.2f", vRandPer),
				fmt.Sprintf("%.0f%%", 100*(1-vRandPer/vSeqPer))},
		},
		Notes: []string{"paper: GPFS 14.5 -> 1.4 GB/s (-90%); VAST 9 -> 7 GB/s (consistent)"},
	}
	return t, nil
}
