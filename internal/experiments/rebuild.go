package experiments

import (
	"fmt"

	"storagesim/internal/faults"
	"storagesim/internal/ior"
	"storagesim/internal/repair"
	"storagesim/internal/sim"
	"storagesim/internal/stats"
)

// Self-healing studies: what foreground workloads deliver while a
// redundancy rebuild is reconstructing a failed unit. Unlike the degraded
// sweeps (degraded.go), which use the raw PR 2 fault model with its
// instantaneous free recovery, these runs wrap the backend in a
// repair.Manager: failures spawn background rebuild jobs whose flows
// genuinely contend with the benchmark through the fabric solver.

// RunIORWithRepair builds the machine+fs testbed, wraps the backend in a
// repair.Manager with the given rebuild QoS, arms the fault schedule on
// the manager (so failures trigger rebuilds or loss accounting instead of
// PR 2's snap-back recovery), and runs one IOR configuration.
func RunIORWithRepair(machine string, fs FS, nodes int, cfg ior.Config, sched faults.Schedule, qos repair.QoS) (ior.Result, *repair.Manager, error) {
	tb, mgr, err := buildRepairTestbed(machine, fs, nodes, sched, qos)
	if err != nil {
		return ior.Result{}, nil, err
	}
	res, err := ior.Run(tb.env, tb.mounts, cfg)
	if err != nil {
		return ior.Result{}, nil, err
	}
	return res, mgr, nil
}

// buildRepairTestbed wires testbed + manager + injector without running a
// workload, for callers that need to attach samplers or checkers first.
func buildRepairTestbed(machine string, fs FS, nodes int, sched faults.Schedule, qos repair.QoS) (*testbed, *repair.Manager, error) {
	tb, err := buildTestbed(machine, fs, nodes, nil)
	if err != nil {
		return nil, nil, err
	}
	prot, ok := tb.target.(repair.Protected)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: %s target declares no redundancy scheme", fs)
	}
	mgr := repair.NewManager(tb.env, tb.fab, prot, qos)
	inj := faults.NewInjector(tb.env)
	inj.Register(string(fs), mgr)
	if err := inj.Apply(sched); err != nil {
		return nil, nil, err
	}
	return tb, mgr, nil
}

// Rebuild sweep tuning. The figure runs VAST on Wombat — the sharpest
// contention story: the workload's SCM→QLC drain and the EC
// reconstruction meet on the QLC backbone, so the rebuild-rate knob
// trades foreground bandwidth against time-to-redundancy in a single
// sampled curve.
const (
	// rebuildSweepBuckets is the number of bandwidth samples per series.
	rebuildSweepBuckets = 16
	// rebuildFloorBytes sizes the reconstruction (QoS.MinBytes): a real
	// DBox holds far more live data than a quick benchmark writes, so the
	// floor stands in for a realistically loaded enclosure.
	rebuildFloorBytes = 256 << 20
	// rebuildThrottleBps is the background-priority rebuild rate cap. At
	// this trickle the reconstruction outlives the sampling window, so
	// the throttled series stays degraded to its end while the
	// aggressive series dips deep and recovers.
	rebuildThrottleBps = 1e9
	// rebuildSweepNodes is the client scale of the sampled runs.
	rebuildSweepNodes = 2
)

// RebuildSweep traces foreground IOR write bandwidth over time while a
// DBox fails a quarter into the run and is rebuilt under two QoS
// settings: throttled (repair trickles, foreground stays degraded to the
// end of the window) and aggressive (repair takes its fair share,
// foreground dips harder but redundancy returns within the run). The
// trade-off the rebuild-rate knob buys is the figure's whole point.
func RebuildSweep(opts Options) (Panel, error) {
	opts = opts.withDefaults()
	segments := 48
	if opts.Quick {
		segments = 24
	}
	// Per-write fsync keeps every rank synchronously paced by the CBox↔DBox
	// fabric — the contended resource — so the sampled segment completions
	// trace delivered bandwidth instead of cache-absorption bursts.
	cfg := ior.Config{
		Workload:     ior.Scientific,
		BlockSize:    1 << 20,
		TransferSize: 1 << 20,
		Segments:     segments,
		ProcsPerNode: 16,
		Fsync:        true,
		Seed:         opts.Seed,
		Dir:          "/rebuild",
	}
	// Size the time axis from an untouched clean run: the window covers
	// 1.25x the clean write so the degraded tail stays on the plot.
	clean, _, err := RunIORWithFaults("Wombat", VAST, rebuildSweepNodes, cfg, faults.Schedule{})
	if err != nil {
		return Panel{}, err
	}
	failAt := clean.WriteTime / 4
	interval := 5 * clean.WriteTime / (4 * rebuildSweepBuckets)
	sched := faults.Schedule{Events: []faults.Event{
		{At: failAt, Kind: faults.UnitFail, Index: 0},
	}}
	p := Panel{
		ID:     "rebuild-sweep",
		Title:  "Foreground IOR writes during a DBox rebuild (vast/Wombat)",
		XLabel: "t ms",
		YLabel: "avg write GB/s",
	}
	modes := []struct {
		name string
		qos  repair.QoS
	}{
		{"throttled", repair.QoS{RateBps: rebuildThrottleBps, MinBytes: rebuildFloorBytes}},
		{"aggressive", repair.QoS{MinBytes: rebuildFloorBytes}},
	}
	for _, m := range modes {
		deltas, err := sampleRebuildRun(cfg, sched, m.qos, interval)
		if err != nil {
			return Panel{}, err
		}
		// Plot the running average (delivered bytes over elapsed time):
		// rank-synchronized segment completions alias per-bucket deltas,
		// but the running mean is smooth, and the failure, the rebuild
		// contention and the recovery all show as slope changes.
		series := stats.Series{Name: m.name}
		cum := 0.0
		for k, d := range deltas {
			cum += d
			elapsed := float64(k+1) * interval.Seconds()
			series.Points = append(series.Points, stats.Point{
				X: elapsed * 1e3,
				Y: cum / elapsed / 1e9,
			})
			series.Err = append(series.Err, 0)
		}
		p.Series = append(p.Series, series)
	}
	p.Notes = append(p.Notes,
		fmt.Sprintf("DBox 0 fails at %v (25%% of the clean run); rebuild floor %d bytes", failAt, int64(rebuildFloorBytes)),
		fmt.Sprintf("throttled caps repair flows at %.0f GB/s; aggressive lets them take their fair share", rebuildThrottleBps/1e9),
		fmt.Sprintf("seed %#x; same seed and schedule reproduce these bytes exactly", opts.Seed),
	)
	return p, nil
}

// sampleRebuildRun runs the workload once under the given rebuild QoS and
// buckets per-rank segment completions (ior.Config.OnSegment) into
// fixed-width intervals: delivered foreground bytes per bucket, with the
// rebuild's own traffic invisible except through the contention it causes.
// Buckets after the run finishes read zero.
func sampleRebuildRun(cfg ior.Config, sched faults.Schedule, qos repair.QoS, interval sim.Duration) ([]float64, error) {
	tb, _, err := buildRepairTestbed("Wombat", VAST, rebuildSweepNodes, sched, qos)
	if err != nil {
		return nil, err
	}
	deltas := make([]float64, rebuildSweepBuckets)
	cfg.OnSegment = func(rank int, at sim.Time, bytes int64) {
		k := int(sim.Duration(at) / interval)
		if k >= 0 && k < len(deltas) {
			deltas[k] += float64(bytes)
		}
	}
	if _, err := ior.Run(tb.env, tb.mounts, cfg); err != nil {
		return nil, err
	}
	return deltas, nil
}
