package experiments

import (
	"fmt"
	"strings"

	"storagesim/internal/cluster"
	"storagesim/internal/sim"
	"storagesim/internal/units"
)

// Fig1 regenerates the paper's Figure 1 — the high-level architectures of
// VAST and GPFS on Lassen — as ASCII diagrams whose numbers come from the
// live deployment constructors, so the diagram can never drift from the
// model.
func Fig1() (string, error) {
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	cl, err := cluster.New(env, fab, cluster.LassenSpec(), 1)
	if err != nil {
		return "", err
	}
	vastSys := cluster.VASTOnLassen(cl)
	gpfsSys := cluster.GPFSOnLassen(cl)
	vcfg := vastSys.Config()
	gcfg := gpfsSys.Config()
	up, _ := vastSys.FabricPipes()

	var b strings.Builder
	b.WriteString("Fig. 1a — VAST on Lassen (NFS over a single TCP gateway)\n\n")
	fmt.Fprintf(&b, "  [%d Lassen compute nodes, %s NIC each]\n",
		cluster.LassenSpec().Nodes, units.BPS(cluster.LassenSpec().NodeNICBW))
	b.WriteString("        |  one NFS/TCP connection per node (~1.1 GB/s)\n")
	b.WriteString("        v\n")
	b.WriteString("  [gateway node: 2x100Gb Ethernet = 25 GB/s total]\n")
	b.WriteString("        |\n")
	b.WriteString("        v\n")
	fmt.Fprintf(&b, "  [%d CNodes (stateless NFS servers), %s NIC each]\n",
		vcfg.CNodes, units.BPS(vcfg.CNodeNICBW))
	fmt.Fprintf(&b, "        |  NVMe-oF over EDR InfiniBand (%s per direction)\n",
		units.BPS(up.Capacity()))
	b.WriteString("        v\n")
	fmt.Fprintf(&b, "  [%d DBoxes, 2 DNodes each: %d SCM + %d QLC SSDs per DBox]\n",
		vcfg.DBoxes, vcfg.SCMPerDBox, vcfg.QLCPerDBox)
	fmt.Fprintf(&b, "   writes: stage to %d SCM replicas, ack, background\n", vcfg.SCMReplicas)
	fmt.Fprintf(&b, "   similarity-reduce (%.0fx) and migrate to QLC\n", vcfg.ReductionRatio)

	b.WriteString("\nFig. 1b — GPFS on Lassen (InfiniBand SAN, no gateway)\n\n")
	fmt.Fprintf(&b, "  [%d Lassen compute nodes, pagepool client cache %s each]\n",
		cluster.LassenSpec().Nodes, units.Bytes(gcfg.ClientCacheBytes))
	b.WriteString("        |  EDR InfiniBand SAN, striped across all servers\n")
	b.WriteString("        v\n")
	fmt.Fprintf(&b, "  [%d PowerPC64 NSD servers, %s NIC each]\n",
		gcfg.NSDServers, units.BPS(gcfg.ServerNICBW))
	b.WriteString("        |\n")
	b.WriteString("        v\n")
	fmt.Fprintf(&b, "  [GPFS-RAID arrays: %d spindle-equivalents per NSD, %s seq read each]\n",
		gcfg.RaidPerServer.Units, units.BPS(gcfg.RaidPerServer.ReadBW))
	b.WriteString("   reads: server cache + aggressive readahead; random reads seek\n")
	return b.String(), nil
}
