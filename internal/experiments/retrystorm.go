package experiments

import (
	"fmt"
	"time"

	"storagesim/internal/faults"
	"storagesim/internal/netsim"
	"storagesim/internal/resilience"
	"storagesim/internal/sim"
	"storagesim/internal/stats"
	"storagesim/internal/traffic"
)

// Retry-storm metastability study (Bronson et al., "Metastable Failures in
// Distributed Systems"; Google SRE, "Addressing Cascading Failures"): a
// transient link brownout pushes every in-flight request past its
// deadline; clients that retry without a budget convert the transient into
// sustained self-inflicted load, so the system stays collapsed after the
// fault clears — the retry traffic alone keeps attempts missing their
// deadlines. The same trigger against clients with bounded retry budgets,
// jittered backoff and a circuit breaker costs a dip and a clean recovery.
//
// The study runs the two client policies over the same deployment, fault
// schedule and seed, and reports a bucketed goodput/effort timeline. With
// a fixed seed the whole timeline is byte-deterministic — the quick
// variant is pinned as a golden across all three kernel builds.

// Retry-storm timeline constants. The fault window [stormFaultAt,
// stormRestoreAt) derates the deployment's backend links to stormFactor
// of nominal; buckets are stormBucket wide.
const (
	stormFaultAt   = 1500 * time.Millisecond
	stormRestoreAt = 2500 * time.Millisecond
	stormBucket    = 250 * time.Millisecond
)

// RetryStormResult is the study's outcome: the rendered panels plus the
// scalar goodputs (bytes/s) the acceptance thresholds are stated over.
// Nominal is measured on the healthy pre-fault window of each variant,
// Post on the final two seconds — well after the fault cleared.
type RetryStormResult struct {
	Panels []Panel
	// NaiveNominal/BudgetedNominal: pre-fault goodput of each variant.
	NaiveNominal, BudgetedNominal float64
	// NaivePost/BudgetedPost: goodput on the post-recovery window.
	NaivePost, BudgetedPost float64
	// NaiveReport/BudgetedReport: the full tenant reports, for the
	// breaker/retry counters.
	NaiveReport, BudgetedReport traffic.TenantReport
}

// retryStormSpec is the single-tenant client population of the study:
// 600 req/s of 1 MiB writes — a few percent of the deployment's healthy
// capacity, so nominal service is uncontended and fast. naive arms an
// unbounded constant-interval retry loop (the hard-mount default); the
// budgeted variant arms the full resilience stack: a bounded budget,
// exponential jittered backoff and a circuit breaker.
func retryStormSpec(naive bool) traffic.Spec {
	t := traffic.Tenant{
		Name: "client", Clients: 100_000, Workload: traffic.SeqWrite,
		Arrival:      traffic.Arrival{Kind: traffic.Poisson, Rate: 6e-3}, // 600 req/s aggregate
		RequestBytes: 1 << 20, IOBytes: 1 << 20,
		MaxInflight: 1024,
	}
	if naive {
		t.Resilience = resilience.Policy{
			Deadline: 10 * time.Millisecond,
			// Retry forever at a constant 5 ms interval: the metastable
			// configuration — every miss immediately re-offers the work.
			Retry: netsim.RetryPolicy{Timeout: 5 * time.Millisecond, Multiplier: 1, MaxRetries: 0},
		}
	} else {
		t.Resilience = resilience.Policy{
			Deadline: 10 * time.Millisecond,
			Retry: netsim.RetryPolicy{
				Timeout: 20 * time.Millisecond, Multiplier: 2,
				MaxTimeout: 200 * time.Millisecond, MaxRetries: 2,
				Jitter: 10 * time.Millisecond,
			},
			Breaker: resilience.BreakerSpec{
				Failures: 10, Cooldown: 200 * time.Millisecond,
				Probes: 4, Successes: 5,
			},
		}
	}
	return traffic.Spec{Tenants: []traffic.Tenant{t}}
}

// stormTimeline is one variant's bucketed observer accumulation.
type stormTimeline struct {
	goodput []float64 // bytes completed per bucket
	retries []float64 // retries reported by terminal outcomes per bucket
}

// runRetryStorm runs one variant over the deployment and returns its
// timeline and tenant report.
func runRetryStorm(naive bool, window time.Duration, seed uint64) (stormTimeline, traffic.TenantReport, error) {
	nb := int(window / stormBucket)
	tl := stormTimeline{goodput: make([]float64, nb), retries: make([]float64, nb)}
	cfg := traffic.Config{
		Spec:     retryStormSpec(naive),
		Duration: window,
		Seed:     seed,
		OutcomeObserver: func(ev traffic.OutcomeEvent) {
			b := int(time.Duration(ev.At) / stormBucket)
			if b < 0 || b >= nb {
				return
			}
			if ev.Kind == traffic.OutcomeCompleted {
				tl.goodput[b] += float64(ev.Bytes)
			}
			tl.retries[b] += float64(ev.Retries)
		},
	}
	sched := faults.Schedule{Events: []faults.Event{
		{At: sim.Duration(stormFaultAt), Kind: faults.LinkDerate, Factor: 0.02},
		{At: sim.Duration(stormRestoreAt), Kind: faults.LinkRestore},
	}}
	rep, _, err := RunTrafficWithFaults("Wombat", VAST, 4, cfg, sched)
	if err != nil {
		return tl, traffic.TenantReport{}, err
	}
	return tl, rep.Tenants[0], nil
}

// windowMean averages a per-bucket series (bytes/bucket) over [from, to),
// returning a rate in bytes/s.
func (tl stormTimeline) windowMean(from, to time.Duration) float64 {
	lo, hi := int(from/stormBucket), int(to/stormBucket)
	if hi > len(tl.goodput) {
		hi = len(tl.goodput)
	}
	var sum float64
	for b := lo; b < hi; b++ {
		sum += tl.goodput[b]
	}
	return sum / time.Duration((hi-lo)*int(stormBucket)).Seconds()
}

// RetryStormStudy contrasts unbounded retries against the budgeted
// resilience stack under the same 1 s link brownout, on the vast/Wombat
// deployment. Quick shortens the post-recovery tail (the collapse is
// visible either way); the full run holds the tail longer.
func RetryStormStudy(opts Options) (RetryStormResult, error) {
	opts = opts.withDefaults()
	window := 8 * time.Second
	if opts.Quick {
		window = 6 * time.Second
	}
	naive, naiveRep, err := runRetryStorm(true, window, opts.Seed)
	if err != nil {
		return RetryStormResult{}, err
	}
	budgeted, budgetedRep, err := runRetryStorm(false, window, opts.Seed)
	if err != nil {
		return RetryStormResult{}, err
	}

	goodput := Panel{
		ID:     "retrystorm-goodput",
		Title:  "Goodput through a 1s link brownout: unbounded retries vs budgeted+breaker",
		XLabel: "t (s)",
		YLabel: "MB/s",
	}
	effort := Panel{
		ID:     "retrystorm-effort",
		Title:  "Retries reported by terminal outcomes per bucket",
		XLabel: "t (s)",
		YLabel: "retries",
	}
	variants := []struct {
		name string
		tl   stormTimeline
	}{{"naive", naive}, {"budgeted", budgeted}}
	for _, v := range variants {
		gp := stats.Series{Name: v.name}
		rt := stats.Series{Name: v.name}
		for b := range v.tl.goodput {
			x := (time.Duration(b+1) * stormBucket).Seconds()
			gp.Points = append(gp.Points, stats.Point{X: x, Y: v.tl.goodput[b] / stormBucket.Seconds() / 1e6})
			gp.Err = append(gp.Err, 0)
			rt.Points = append(rt.Points, stats.Point{X: x, Y: v.tl.retries[b]})
			rt.Err = append(rt.Err, 0)
		}
		goodput.Series = append(goodput.Series, gp)
		effort.Series = append(effort.Series, rt)
	}

	res := RetryStormResult{
		NaiveNominal:    naive.windowMean(500*time.Millisecond, stormFaultAt),
		BudgetedNominal: budgeted.windowMean(500*time.Millisecond, stormFaultAt),
		NaivePost:       naive.windowMean(window-2*time.Second, window),
		BudgetedPost:    budgeted.windowMean(window-2*time.Second, window),
		NaiveReport:     naiveRep,
		BudgetedReport:  budgetedRep,
	}
	note := fmt.Sprintf(
		"vast/Wombat 4 nodes; 600 req/s of 1 MiB writes; links derated to 2%% during [%v,%v); seed %#x",
		stormFaultAt, stormRestoreAt, opts.Seed)
	verdict := fmt.Sprintf(
		"nominal naive %.1f MB/s, budgeted %.1f MB/s; post-recovery naive %.1f MB/s, budgeted %.1f MB/s",
		res.NaiveNominal/1e6, res.BudgetedNominal/1e6, res.NaivePost/1e6, res.BudgetedPost/1e6)
	goodput.Notes = append(goodput.Notes, note,
		"naive: 10ms deadline, retry forever every 5ms — the hard-mount metastable configuration",
		"budgeted: 10ms deadline, 2-retry budget with jittered exponential backoff, breaker 10 fails/200ms cooldown",
		verdict)
	effort.Notes = append(effort.Notes, note,
		"retries are attributed to the bucket of the request's terminal outcome; in-flight effort is invisible until then")
	res.Panels = []Panel{goodput, effort}
	return res, nil
}
