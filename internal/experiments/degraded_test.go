package experiments

import (
	"strings"
	"testing"
	"time"

	"storagesim/internal/faults"
	"storagesim/internal/ior"
)

func degradedIORConfig(segments int) ior.Config {
	return ior.Config{
		Workload:     ior.Scientific,
		BlockSize:    1 << 20,
		TransferSize: 1 << 20,
		Segments:     segments,
		ProcsPerNode: 8,
		OpLevel:      true,
		Seed:         0x5eed,
		Dir:          "/degraded",
	}
}

// TestVASTDipAndReturn is the acceptance case for the fault engine: an IOR
// run on the VAST deployment with a CNode failing mid-run and recovering
// later must (a) complete, (b) run slower than a clean run — the dip —
// and (c) run faster than the same failure without recovery — the return.
func TestVASTDipAndReturn(t *testing.T) {
	cfg := degradedIORConfig(64)
	clean, _, err := RunIORWithFaults("Wombat", VAST, 2, cfg, faults.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	// Place the failure 20% into the clean run and the recovery at 60%, so
	// both land mid-stream whatever the absolute run length is.
	failAt := time.Duration(float64(clean.WriteTime) * 0.2)
	recoverAt := time.Duration(float64(clean.WriteTime) * 0.6)

	dip, applied, err := RunIORWithFaults("Wombat", VAST, 2, cfg, faults.Schedule{Events: []faults.Event{
		{At: failAt, Kind: faults.ServerFail, Index: 0},
		{At: recoverAt, Kind: faults.ServerRecover, Index: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 {
		t.Fatalf("delivered %d of 2 fault events (run ended before recovery?)", len(applied))
	}
	failOnly, _, err := RunIORWithFaults("Wombat", VAST, 2, cfg, faults.Schedule{Events: []faults.Event{
		{At: failAt, Kind: faults.ServerFail, Index: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}

	if dip.WriteTime <= clean.WriteTime {
		t.Errorf("faulted run (%v) not slower than clean run (%v): no throughput dip", dip.WriteTime, clean.WriteTime)
	}
	if failOnly.WriteTime <= dip.WriteTime {
		t.Errorf("unrecovered run (%v) not slower than recovered run (%v): recovery had no effect", failOnly.WriteTime, dip.WriteTime)
	}
	if clean.WriteBW <= dip.WriteBW || dip.WriteBW <= failOnly.WriteBW {
		t.Errorf("bandwidth ordering clean %v > dip %v > fail-only %v violated",
			clean.WriteBW, dip.WriteBW, failOnly.WriteBW)
	}
}

// TestDegradedRunsAreReproducible is the byte-determinism gate for the
// fault engine: the same seed and schedule must reproduce the degraded
// sweep's rendered tables byte for byte.
func TestDegradedRunsAreReproducible(t *testing.T) {
	render := func() string {
		p, err := DegradedSweep(Options{Quick: true, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return p.Render()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("two identical degraded sweeps rendered differently.\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if !strings.Contains(first, "vast/Wombat") {
		t.Fatalf("sweep table missing expected series:\n%s", first)
	}
}
