package experiments

import (
	"fmt"
	"math"
	"strings"

	"storagesim/internal/stats"
)

// RenderPlot draws the panel as an ASCII chart — the terminal stand-in for
// the paper's line plots. The X axis uses the series' sample points
// (spaced evenly, since the paper's node counts are powers of two), the Y
// axis is linear from zero, and each series gets a distinct glyph.
func (p Panel) RenderPlot() string {
	if len(p.Series) == 0 || len(p.Series[0].Points) == 0 {
		return p.Render()
	}
	const (
		height = 16
		colW   = 9
	)
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	xs := make([]float64, 0, len(p.Series[0].Points))
	for _, pt := range p.Series[0].Points {
		xs = append(xs, pt.X)
	}
	maxY := 0.0
	for _, s := range p.Series {
		for _, pt := range s.Points {
			if pt.Y > maxY {
				maxY = pt.Y
			}
		}
	}
	if maxY <= 0 || math.IsNaN(maxY) {
		return p.Render()
	}

	width := len(xs) * colW
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		g := glyphs[si%len(glyphs)]
		prevRow, prevCol := -1, -1
		for xi, x := range xs {
			y := s.YAt(x)
			if math.IsNaN(y) {
				continue
			}
			row := height - 1 - int(y/maxY*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			col := xi*colW + colW/2
			grid[row][col] = g
			// connect with a sparse vertical run so trends read at a glance
			if prevCol >= 0 && prevRow != row {
				step := 1
				if prevRow > row {
					step = -1
				}
				for r := prevRow + step; r != row; r += step {
					mid := (prevCol + col) / 2
					if grid[r][mid] == ' ' {
						grid[r][mid] = '.'
					}
				}
			}
			prevRow, prevCol = row, col
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", p.ID, p.Title)
	for _, s := range p.Series {
		fmt.Fprintf(&b, "   %c = %s", glyphs[indexOf(p.Series, s.Name)%len(glyphs)], s.Name)
	}
	b.WriteString("\n")
	for r, line := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.4g ", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%9.4g ", 0.0)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", width) + "\n")
	b.WriteString(strings.Repeat(" ", 10))
	for _, x := range xs {
		fmt.Fprintf(&b, " %-*g", colW-1, x)
	}
	fmt.Fprintf(&b, "\n%s(%s vs %s)\n", strings.Repeat(" ", 10), p.YLabel, p.XLabel)
	return b.String()
}

// indexOf finds a series index by name.
func indexOf(ss []stats.Series, name string) int {
	for i, s := range ss {
		if s.Name == name {
			return i
		}
	}
	return 0
}
