package experiments

import (
	"testing"
)

// chaosSmokeSeeds are the gate's pinned seeds: every backend survives each
// storm with zero invariant violations, deterministically.
var chaosSmokeSeeds = []uint64{0x5eed1, 0x5eed2, 0x5eed3}

// TestChaosSmoke is the chaos gate wired into `make check` (chaos-smoke):
// three seeded storms per backend, full invariant suite, no violations.
func TestChaosSmoke(t *testing.T) {
	for _, fs := range ChaosBackends() {
		fs := fs
		t.Run(string(fs), func(t *testing.T) {
			for _, seed := range chaosSmokeSeeds {
				rep, err := RunChaosStorm(fs, seed, Options{Quick: true})
				if err != nil {
					t.Fatalf("seed %#x: %v", seed, err)
				}
				if len(rep.Violations) != 0 {
					t.Errorf("seed %#x: %d invariant violation(s): %s",
						seed, len(rep.Violations), rep.Violations[0])
				}
				if rep.Delivered == 0 {
					t.Errorf("seed %#x: storm delivered no events", seed)
				}
				if rep.WriteBW <= 0 {
					t.Errorf("seed %#x: foreground workload moved no bytes", seed)
				}
			}
		})
	}
}

// TestChaosStormDeterministic replays one storm per backend and demands a
// byte-identical report digest — the reproducibility half of the gate.
func TestChaosStormDeterministic(t *testing.T) {
	for _, fs := range ChaosBackends() {
		fs := fs
		t.Run(string(fs), func(t *testing.T) {
			a, err := RunChaosStorm(fs, chaosSmokeSeeds[0], Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunChaosStorm(fs, chaosSmokeSeeds[0], Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if a.Digest() != b.Digest() {
				t.Errorf("same seed, different outcomes:\n  %s\n  %s", a.Digest(), b.Digest())
			}
		})
	}
}

// TestChaosLossAccountingOnUnprotectedBackends asserts the None-scheme
// deployments report losses when a storm takes a data-holding node down —
// never a silent clean result.
func TestChaosLossAccountingOnUnprotectedBackends(t *testing.T) {
	for _, fs := range []FS{UnifyFS, NVMe} {
		fs := fs
		t.Run(string(fs), func(t *testing.T) {
			sawLoss := false
			for _, seed := range chaosSmokeSeeds {
				rep, err := RunChaosStorm(fs, seed, Options{Quick: true})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Rebuilds != 0 {
					t.Errorf("seed %#x: scheme-None backend ran %d rebuilds", seed, rep.Rebuilds)
				}
				if rep.Losses > 0 {
					sawLoss = true
					if rep.LostBytes < 0 {
						t.Errorf("seed %#x: negative lost bytes %g", seed, rep.LostBytes)
					}
				}
			}
			if !sawLoss {
				t.Errorf("no pinned seed produced a node loss on %s; pick seeds that exercise loss accounting", fs)
			}
		})
	}
}
