package experiments

import (
	"fmt"

	"storagesim/internal/ior"
	"storagesim/internal/stats"
)

// AblationSharedFile quantifies the methodology choice of Section IV-C.1:
// the paper used file-per-process (N-N) "instead of N-1 (shared-file) as
// the contention, file locking and metadata overhead it introduces can
// make the isolation of the storage system behavior challenging". The
// sweep runs the same sequential-write workload in both layouts on GPFS
// and VAST and reports the N-1 penalty.
func AblationSharedFile(opts Options) (Table, error) {
	opts = opts.withDefaults()
	const nodes, ppn, segments = 4, 16, 64
	t := Table{
		ID:     "ablation-shared-file",
		Title:  "N-N vs N-1 sequential write bandwidth (Lassen, 4 nodes x 16 ppn)",
		Header: []string{"file system", "N-N GB/s", "N-1 GB/s", "N-1 penalty"},
	}
	for _, fs := range []FS{VAST, GPFS} {
		run := func(shared bool) (float64, error) {
			tb, err := buildTestbed("Lassen", fs, nodes, nil)
			if err != nil {
				return 0, err
			}
			res, err := ior.Run(tb.env, tb.mounts, ior.Config{
				Workload:     ior.Scientific,
				BlockSize:    1 << 20,
				TransferSize: 1 << 20,
				Segments:     segments,
				ProcsPerNode: ppn,
				SharedFile:   shared,
				OpLevel:      true, // locking is an op-level effect
				Seed:         opts.Seed,
				Dir:          "/n1",
			})
			if err != nil {
				return 0, err
			}
			return res.WriteBW / 1e9, nil
		}
		nn, err := run(false)
		if err != nil {
			return Table{}, err
		}
		n1, err := run(true)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			string(fs),
			fmt.Sprintf("%.2f", nn),
			fmt.Sprintf("%.2f", n1),
			fmt.Sprintf("%.0f%%", 100*(1-n1/nn)),
		})
	}
	t.Notes = append(t.Notes,
		"the penalty justifies the paper's N-N methodology: N-1 measures the lock manager, not the storage")
	return t, nil
}

// Consistency reproduces the paper's shared-environment methodology
// statement: "To test performance consistency in the shared environment we
// repeated our tests 10 times." It runs the Figure 2a sequential-write
// point at 8 nodes ten times under the contention model and reports the
// relative spread per system — shared production systems (GPFS) vary,
// the dedicated VAST instance barely does.
func Consistency(opts Options) (Table, error) {
	opts = opts.withDefaults()
	reps := 10
	if opts.Quick {
		reps = 4
	}
	// 64 nodes of sequential reads: the scale at which both systems run
	// against their server-side ceilings (the GPFS NSD pool, the VAST
	// gateway), so background contention is visible.
	nodes := 64
	if opts.Quick {
		nodes = 32
	}
	t := Table{
		ID:     "consistency",
		Title:  fmt.Sprintf("Run-to-run consistency over %d repetitions (Lassen, %d nodes, seq read)", reps, nodes),
		Header: []string{"file system", "mean GB/s", "min", "max", "rel spread"},
	}
	for _, fs := range []FS{VAST, GPFS} {
		rng := stats.NewRNG(opts.Seed ^ hashString("consistency"+string(fs)))
		spread := dedicatedSpread
		if fs == GPFS {
			spread = sharedSpread
		}
		fs := fs
		vals, err := runReps(reps,
			func(rep int) float64 { return derateFactor(rng, rep, spread) },
			func(rep int, f float64) (float64, error) {
				return iorPoint("Lassen", fs, nodes, 44, ior.Analytics, 3000, false,
					f, opts.Seed+uint64(rep), nil)
			})
		if err != nil {
			return Table{}, err
		}
		s := stats.Summarize(vals)
		t.Rows = append(t.Rows, []string{
			string(fs),
			fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.2f", s.Min),
			fmt.Sprintf("%.2f", s.Max),
			fmt.Sprintf("%.1f%%", 100*s.RelSpread()),
		})
	}
	t.Notes = append(t.Notes,
		"repetition 0 is the uncontended run; later repetitions derate shared server capacity pseudo-randomly")
	return t, nil
}
