package experiments

import (
	"strings"
	"testing"
)

func TestFig1DiagramsReflectDeployments(t *testing.T) {
	out, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// The numbers come from the live constructors — if a deployment
	// parameter changes, the diagram follows. Assert the Section IV-B
	// facts the paper's Figure 1 encodes.
	for _, want := range []string{
		"Fig. 1a", "Fig. 1b",
		"795 Lassen compute nodes",
		"2x100Gb Ethernet",            // the single gateway
		"16 CNodes",                   // LC VAST
		"5 DBoxes", "6 SCM", "22 QLC", // enclosure contents
		"stage to 2 SCM replicas",  // write path
		"16 PowerPC64 NSD servers", // GPFS side
		"random reads seek",        // the HDD mechanism
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 missing %q:\n%s", want, out)
		}
	}
}
