package experiments

import (
	"fmt"
	"time"

	"storagesim/internal/faults"
	"storagesim/internal/ior"
	"storagesim/internal/stats"
)

// Degraded-mode studies: what the paper's deployments deliver while
// servers are down. The fault-injection engine (internal/faults) delivers
// a schedule of timed events through the simulation event loop, so every
// degraded run with a fixed seed and schedule is byte-reproducible.

// RunIORWithFaults builds the machine+fs testbed, arms the fault schedule
// on it (the whole deployment registers under the fs name, so schedules
// may leave "target" empty), and runs one IOR configuration. It returns
// the result and the events actually delivered — the entry point for
// cmd/iorbench's -faults flag.
func RunIORWithFaults(machine string, fs FS, nodes int, cfg ior.Config, sched faults.Schedule) (ior.Result, []faults.Applied, error) {
	tb, err := buildTestbed(machine, fs, nodes, nil)
	if err != nil {
		return ior.Result{}, nil, err
	}
	inj := faults.NewInjector(tb.env)
	inj.Register(string(fs), tb.target)
	if err := inj.Apply(sched); err != nil {
		return ior.Result{}, nil, err
	}
	res, err := ior.Run(tb.env, tb.mounts, cfg)
	if err != nil {
		return ior.Result{}, nil, err
	}
	return res, inj.Applied(), nil
}

// DegradedSweep sweeps the fraction of failed servers and reports the
// delivered IOR write bandwidth for each deployment — the degraded-mode
// counterpart of the scalability figures. Servers fail 10 ms into the run
// (mid-stream, not before it), so each point carries a short healthy
// prefix exactly like an operational incident.
func DegradedSweep(opts Options) (Panel, error) {
	opts = opts.withDefaults()
	p := Panel{
		ID:     "degraded-sweep",
		Title:  "Degraded-mode IOR writes vs fraction of failed servers",
		XLabel: "failed",
		YLabel: "write GB/s",
	}
	type deployment struct {
		name    string
		machine string
		fs      FS
		nodes   int
		servers int
	}
	// Server counts follow Section IV-B: 8 CNodes on Wombat, 16 NSD
	// servers on Lassen, 36 OSSes on Ruby.
	deps := []deployment{
		{"vast/Wombat", "Wombat", VAST, 2, 8},
		{"gpfs/Lassen", "Lassen", GPFS, 2, 16},
		{"lustre/Ruby", "Ruby", Lustre, 2, 36},
	}
	fracs := []float64{0, 0.125, 0.25, 0.5}
	if opts.Quick {
		fracs = []float64{0, 0.25, 0.5}
	}
	segments := 96
	if opts.Quick {
		segments = 32
	}
	for _, d := range deps {
		series := stats.Series{Name: d.name}
		for _, frac := range fracs {
			failures := int(frac * float64(d.servers))
			sched := faults.Schedule{}
			for i := 0; i < failures; i++ {
				sched.Events = append(sched.Events, faults.Event{
					At: 10 * time.Millisecond, Kind: faults.ServerFail, Index: i,
				})
			}
			res, _, err := RunIORWithFaults(d.machine, d.fs, d.nodes, ior.Config{
				Workload:     ior.Scientific,
				BlockSize:    1 << 20,
				TransferSize: 1 << 20,
				Segments:     segments,
				ProcsPerNode: 8,
				OpLevel:      true, // ops re-resolve paths, so failover is live
				Seed:         opts.Seed,
				Dir:          "/degraded",
			}, sched)
			if err != nil {
				return Panel{}, err
			}
			series.Points = append(series.Points,
				stats.Point{X: frac, Y: res.WriteBW / 1e9})
			series.Err = append(series.Err, 0)
		}
		p.Series = append(p.Series, series)
	}
	p.Notes = append(p.Notes,
		"servers fail 10ms into the run; failed fraction rounds down to whole servers",
		fmt.Sprintf("seed %#x; same seed and schedule reproduce these bytes exactly", opts.Seed),
	)
	return p, nil
}
