package experiments

import (
	"fmt"

	"storagesim/internal/cluster"
	"storagesim/internal/fsapi"
	"storagesim/internal/ior"
	"storagesim/internal/sim"
	"storagesim/internal/unifyfs"
)

// AblationUnifyFS sweeps the two configuration policies the paper's
// introduction names for UnifyFS — "the number of dedicated I/O servers
// and the data placement strategy" — over the Wombat burst buffer, and
// reports write and read-back bandwidth for a checkpoint/restart-shaped
// workload (HACC-style: sequential write, reordered sequential read).
func AblationUnifyFS(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		ID:     "ablation-unifyfs",
		Title:  "UnifyFS configurability on Wombat (4 nodes, checkpoint/restart)",
		Header: []string{"placement", "I/O servers/node", "write GB/s", "read-back GB/s"},
	}
	servers := []int{1, 4, 16}
	if opts.Quick {
		servers = []int{1, 16}
	}
	for _, pl := range []unifyfs.Placement{unifyfs.LocalFirst, unifyfs.RoundRobin} {
		for _, srv := range servers {
			w, r, err := unifyFSPoint(pl, srv, opts)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				pl.String(), fmt.Sprint(srv),
				fmt.Sprintf("%.2f", w), fmt.Sprintf("%.2f", r),
			})
		}
	}
	t.Notes = append(t.Notes,
		"local-first wins checkpoints (all writes local); round-robin balances the restart reads",
		"the I/O-server pool bounds op-level request concurrency per node")
	return t, nil
}

// unifyFSPoint runs one HACC-shaped IOR configuration on a UnifyFS
// deployment with the given policies.
func unifyFSPoint(pl unifyfs.Placement, servers int, opts Options) (write, read float64, err error) {
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	cl, err := cluster.New(env, fab, cluster.WombatSpec(), 4)
	if err != nil {
		return 0, 0, err
	}
	cfg := cluster.UnifyFSWombatConfig(cl)
	cfg.Placement = pl
	cfg.IOServersPerNode = servers
	sys, err := unifyfs.New(env, fab, cfg)
	if err != nil {
		return 0, 0, err
	}
	var mounts []fsapi.Client
	for _, n := range cl.Nodes() {
		mounts = append(mounts, sys.Mount(n.Name, n.NIC))
	}
	segments := 128
	if opts.Quick {
		segments = 48
	}
	res, err := ior.Run(env, mounts, ior.Config{
		Workload:     ior.Analytics, // write + reordered read back
		BlockSize:    1 << 20,
		TransferSize: 1 << 20,
		Segments:     segments,
		ProcsPerNode: 8,
		ReorderTasks: true,
		OpLevel:      true, // the I/O-server pool is an op-level effect
		Seed:         opts.Seed,
		Dir:          "/ufs",
	})
	if err != nil {
		return 0, 0, err
	}
	return res.WriteBW / 1e9, res.ReadBW / 1e9, nil
}
