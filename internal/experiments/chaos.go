package experiments

import (
	"fmt"
	"math"
	"time"

	"storagesim/internal/faults"
	"storagesim/internal/faults/invariants"
	"storagesim/internal/ior"
	"storagesim/internal/repair"
	"storagesim/internal/repair/chaos"
	"storagesim/internal/vast"
)

// Chaos fuzzing gate: randomized fault storms against every backend with
// the full invariant suite attached — over-allocation, nominal-capacity,
// clock monotonicity, byte conservation (VAST's staging split) and
// rebuild-completes-or-reports-loss. A fixed seed reproduces the storm,
// the run and the report digest byte-for-byte; `make chaos-smoke` pins
// three seeds per backend.

// ChaosReport is the outcome of one seeded storm.
type ChaosReport struct {
	Backend      string
	Machine      string
	Seed         uint64
	Delivered    int // fault events actually delivered
	WriteBW      float64
	LostBytes    float64
	RebuiltBytes float64
	Losses       int
	Rebuilds     int
	Violations   []string
}

// Digest renders the run's observable outcome with full float bit
// patterns — the byte-determinism witness for a fixed seed.
func (r ChaosReport) Digest() string {
	return fmt.Sprintf("%s/%s seed=%#x delivered=%d bw=%016x lost=%016x rebuilt=%016x losses=%d rebuilds=%d violations=%d",
		r.Backend, r.Machine, r.Seed, r.Delivered,
		math.Float64bits(r.WriteBW), math.Float64bits(r.LostBytes), math.Float64bits(r.RebuiltBytes),
		r.Losses, r.Rebuilds, len(r.Violations))
}

// chaosMachine is each deployment's canonical testbed machine.
func chaosMachine(fs FS) (string, error) {
	switch fs {
	case VAST, NVMe, UnifyFS:
		return "Wombat", nil
	case GPFS:
		return "Lassen", nil
	case Lustre:
		return "Ruby", nil
	}
	return "", fmt.Errorf("experiments: no chaos machine for %q", fs)
}

// RunChaosStorm generates the seeded storm for fs's canonical deployment,
// wraps the backend in a repair.Manager, attaches the invariant checker
// and runs an op-level IOR foreground through it. Storm generation is
// profile-driven: server and unit counts come from the backend itself.
func RunChaosStorm(fs FS, seed uint64, opts Options) (ChaosReport, error) {
	opts = opts.withDefaults()
	machine, err := chaosMachine(fs)
	if err != nil {
		return ChaosReport{}, err
	}
	tb, err := buildTestbed(machine, fs, 2, nil)
	if err != nil {
		return ChaosReport{}, err
	}
	prot, ok := tb.target.(repair.Protected)
	if !ok {
		return ChaosReport{}, fmt.Errorf("experiments: %s target declares no redundancy scheme", fs)
	}
	scheme := prot.RepairScheme()
	storm := chaos.Storm(seed, chaos.Profile{
		Target:          string(fs),
		Servers:         prot.FaultServers(),
		Units:           prot.FaultUnits(),
		UnitsAreServers: scheme.ServersHoldData,
		Horizon:         30 * time.Millisecond,
		Events:          12,
	})
	mgr := repair.NewManager(tb.env, tb.fab, prot, repair.QoS{MinBytes: 32 << 20})
	inj := faults.NewInjector(tb.env)
	inj.Register(string(fs), mgr)
	if err := inj.Apply(storm); err != nil {
		return ChaosReport{}, err
	}
	checker := invariants.Attach(tb.env, tb.fab, 250*time.Microsecond)
	checker.Final("rebuild-completes-or-reports-loss", mgr.CheckComplete)
	cfg := ior.Config{
		Workload:     ior.Scientific,
		BlockSize:    1 << 20,
		TransferSize: 1 << 20,
		Segments:     8,
		ProcsPerNode: 4,
		OpLevel:      true, // ops re-resolve paths, so failover is live
		Seed:         opts.Seed + seed,
		Dir:          "/chaos",
	}
	if tb.vast != nil {
		written := int64(2*cfg.ProcsPerNode) * cfg.BlockSize * int64(cfg.Segments)
		sys := tb.vast
		checker.Final("byte-conservation", invariants.ConserveBytes(
			func() int64 { return written },
			func() int64 { return sys.StagedBytes() + sys.MigratedBytes() }))
	}
	res, err := ior.Run(tb.env, tb.mounts, cfg)
	if err != nil {
		return ChaosReport{}, err
	}
	if checker.Samples() == 0 {
		return ChaosReport{}, fmt.Errorf("experiments: chaos checker never sampled")
	}
	checker.Err() // fold final checks into Violations
	return ChaosReport{
		Backend:      string(fs),
		Machine:      machine,
		Seed:         seed,
		Delivered:    len(inj.Applied()),
		WriteBW:      res.WriteBW,
		LostBytes:    mgr.LostBytes(),
		RebuiltBytes: mgr.RebuiltBytes(),
		Losses:       len(mgr.Losses()),
		Rebuilds:     len(mgr.Jobs()),
		Violations:   checker.Violations(),
	}, nil
}

// ChaosBackends lists every deployment the gate covers.
func ChaosBackends() []FS { return []FS{VAST, GPFS, Lustre, NVMe, UnifyFS} }

// Interface check: the conservation hook needs the concrete VAST system.
var _ = (*vast.System)(nil)
