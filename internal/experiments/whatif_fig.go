package experiments

import (
	"fmt"

	"storagesim/internal/configsearch"
	"storagesim/internal/stats"
)

// The what-if figure: two deployment spaces, each searched with the
// calibrated surrogate and DES-verified, rendered as predicted-vs-measured
// frontier panels. Pinned as a golden across all three kernel builds.

// WhatIfFixtureSpace is the pinned Wombat knob space of the differential
// tests and the figure's first panel: the RDMA VAST deployment swept over
// protocol servers, nconnect, EC geometry and admission caps, against the
// node-local NVMe baseline. It must enumerate identically to
// testdata/whatif_space.json (a sync test holds the two together).
func WhatIfFixtureSpace() configsearch.Space {
	return configsearch.Space{
		Machine:     "Wombat",
		Backends:    []string{"nvme", "vast"},
		Nodes:       []int{1, 2},
		CNodes:      []int{1, 2, 4, 6, 8},
		Nconnect:    []int{1, 2, 4, 8, 16},
		DBoxes:      []int{4},
		StripeWidth: []int{1, 2},
		ECParity:    []int{1, 2},
		MaxInflight: []int{8, 32, 64},
		Pricing: configsearch.Pricing{
			ClientNodeHr: 1.0, ServerHr: 3.0, EnclosureHr: 8.0, CacheGiBHr: 0.02,
		},
	}
}

// WhatIfRubySpace is the figure's second panel: the LC deployments as
// mounted from Ruby — VAST behind the TCP gateways against Lustre — where
// the hardware is fixed and only client-side knobs move.
func WhatIfRubySpace() configsearch.Space {
	return configsearch.Space{
		Machine:     "Ruby",
		Backends:    []string{"lustre", "vast"},
		Nodes:       []int{1, 2},
		MaxInflight: []int{16, 64},
		Pricing: configsearch.Pricing{
			ClientNodeHr: 1.0, ServerHr: 3.0, EnclosureHr: 8.0, CacheGiBHr: 0.02,
		},
	}
}

// FigWhatIf runs the what-if explorer over both spaces and renders the
// measured frontiers with the surrogate's predictions alongside, one
// panel per space, X = frontier rank (cheapest first).
func FigWhatIf(opts Options) ([]Panel, error) {
	runs := []struct {
		id, title string
		space     configsearch.Space
		budget    int
	}{
		{"whatif-wombat", "Wombat what-if: VAST/RDMA knobs vs node-local NVMe",
			WhatIfFixtureSpace(), 60},
		{"whatif-ruby", "Ruby what-if: VAST/TCP gateways vs Lustre",
			WhatIfRubySpace(), 0},
	}
	var panels []Panel
	for _, r := range runs {
		res, err := ConfigSearch(WhatIfConfig{
			Space: r.space, Calibrate: true, Budget: r.budget, Seed: opts.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("whatif: %s: %w", r.id, err)
		}
		panels = append(panels, whatIfPanel(r.id, r.title, res))
	}
	return panels, nil
}

// whatIfPanel renders one search result: the measured frontier ordered by
// cost, with predicted and measured goodput and p99 per rank. The
// candidate behind each rank is spelled out in the notes.
func whatIfPanel(id, title string, res *WhatIfResult) Panel {
	ranked := frontierByCost(res.Search)
	predG := stats.Series{Name: "pred goodput GB/s"}
	measG := stats.Series{Name: "meas goodput GB/s"}
	predP := stats.Series{Name: "pred p99 ms"}
	measP := stats.Series{Name: "meas p99 ms"}
	p := Panel{
		ID:     id,
		Title:  title,
		XLabel: "rank",
		YLabel: "goodput / p99",
	}
	for k, i := range ranked {
		s := res.Search.Candidates[i]
		x := float64(k + 1)
		predG.Append(x, s.Predicted.GoodputBps/1e9, 0)
		measG.Append(x, s.Measured.GoodputBps/1e9, 0)
		predP.Append(x, s.Predicted.P99Sec*1e3, 0)
		measP.Append(x, s.Measured.P99Sec*1e3, 0)
		p.Notes = append(p.Notes, fmt.Sprintf("rank %d: %s ($%.2f/hr)", k+1, s.Candidate, s.Measured.CostHr))
	}
	p.Series = []stats.Series{predG, measG, predP, measP}
	total := len(res.Search.Candidates)
	verified := len(res.Search.Survivors)
	p.Notes = append(p.Notes,
		fmt.Sprintf("%d candidates, %d DES-verified (%.1f%%), %d truncated by budget, %d calibration probes",
			total, verified, 100*float64(verified)/float64(total), res.Search.Truncated, res.Probes))
	return p
}

// frontierByCost orders the frontier indices by measured cost, then
// goodput descending, then enumeration index — a stable presentation
// order for the ranked panels.
func frontierByCost(res *configsearch.Result) []int {
	out := append([]int(nil), res.Frontier...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := res.Candidates[out[j-1]], res.Candidates[out[j]]
			if a.Measured.CostHr < b.Measured.CostHr ||
				(a.Measured.CostHr == b.Measured.CostHr && a.Measured.GoodputBps >= b.Measured.GoodputBps) {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
