package vast

import (
	"testing"

	"storagesim/internal/fsapi"
	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

// TestFlowAndOpLevelAgree pins the claim in docs/MODEL.md §6: the two
// simulation fidelities produce comparable bandwidth for a steady
// sequential stream. Flow level moves the phase as one fair-shared flow;
// op level pushes 1 MiB writes through the page cache with eviction
// write-back and a closing flush. They must land within 30% (op level
// pays real per-op RPC latencies).
func TestFlowAndOpLevelAgree(t *testing.T) {
	const total = 2 << 30

	flowBW := func() float64 {
		env, fab, sys := newTestSystem(t)
		cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 10e9, 0))
		var end sim.Time
		env.Go("w", func(p *sim.Proc) {
			cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
			end = p.Now()
		})
		env.Run()
		return float64(total) / sim.Duration(end).Seconds()
	}()

	opBW := func() float64 {
		env, fab, sys := newTestSystem(t)
		cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 10e9, 0))
		var end sim.Time
		env.Go("w", func(p *sim.Proc) {
			f := cl.Open(p, "/f", true)
			for off := int64(0); off < total; off += 1 << 20 {
				f.WriteAt(p, off, 1<<20)
			}
			f.Close(p) // flush the tail
			end = p.Now()
		})
		env.Run()
		return float64(total) / sim.Duration(end).Seconds()
	}()

	ratio := opBW / flowBW
	if ratio < 0.7 || ratio > 1.05 {
		t.Fatalf("fidelities disagree: op-level %.3e vs flow-level %.3e (ratio %.2f)",
			opBW, flowBW, ratio)
	}
}
