package vast

import "fmt"

// CNode failure, recovery and failover. Section III-A.2 of the paper
// describes the CNodes as stateless containers: "the VAST system state is
// firstly written into multiple SSDs, then acknowledged and finally
// committed and thus the containers (which host the CNodes) are considered
// stateless." The operational consequence — any CNode can serve any
// client, so a failure only costs capacity, never data or availability —
// is modeled here: failing a CNode re-pins its clients to the survivors
// and parks its NIC and reduction bandwidth; recovering it restores the
// exact pre-fault capacities and re-balances the client pinning.
//
// Capacity changes route through the pipes' health factors
// (sim.Pipe.SetHealthFactor), so a fail/recover pair is a true no-op on
// the fabric: parked components sit at sim.ParkedBps and come back to
// their nominal capacity, not to whatever a cumulative derate left behind.

// FailCNode takes CNode i out of service. Clients pinned to it fail over
// to the next healthy CNode and are marked stale: with a retry policy
// configured, their next operation pays the NFS retransmit delay before
// using the new path. The multipath pools lose the node's share. Failing
// an already-failed CNode is a no-op; failing the last healthy CNode
// panics (the cluster would be down, which no experiment models).
//
// Op-level workloads resolve their path per operation and fail over after
// the retransmit penalty. A flow-level stream that is mid-flight across
// the failed server keeps its pinned path (the model cannot migrate a live
// flow) and crawls at the parked capacity — mirroring an NFS hard-mount
// retrying until its server returns. Inject failures around flow
// boundaries or use op-level runs for failure studies.
func (s *System) FailCNode(i int) {
	if i < 0 || i >= s.cfg.CNodes {
		panic(fmt.Sprintf("vast %s: no CNode %d", s.cfg.Name, i))
	}
	if s.failed[i] {
		return
	}
	if s.healthyCNodes() == 1 {
		panic(fmt.Sprintf("vast %s: cannot fail the last healthy CNode", s.cfg.Name))
	}
	s.failed[i] = true
	// The failed server's NIC and reduction engine serve nobody: park their
	// pipes so in-flight flows drain away from it rather than dividing by
	// zero.
	s.cnodeNIC[i].SetHealthFactor(0)
	s.reduce[i].SetHealthFactor(0)
	s.applyPoolHealth()
	// Stateless failover: re-pin every client that was on the dead server.
	for _, cl := range s.clients {
		if cl.cnode == i {
			cl.cnode = s.nextHealthy(i)
			cl.stale = true
		}
	}
}

// RecoverCNode returns a failed CNode to service and re-balances the
// client pinning: every mount whose home CNode (its round-robin assignment
// at mount time) is the recovered server moves back to it, as the
// automounter's VIP redistribution does. Moved clients are marked stale
// and pay the retransmit penalty on their next operation. Recovering a
// healthy CNode is a no-op.
func (s *System) RecoverCNode(i int) {
	if !s.restoreCapacity(i) {
		return
	}
	for _, cl := range s.clients {
		if cl.home == i && cl.cnode != i {
			cl.cnode = i
			cl.stale = true
		}
	}
}

// RestoreCNode returns a failed CNode to service, capacity only: clients
// stay where the failover left them until they remount. RecoverCNode is
// the full recovery including client re-balancing.
func (s *System) RestoreCNode(i int) { s.restoreCapacity(i) }

// restoreCapacity un-parks CNode i's pipes, reporting whether i was failed.
func (s *System) restoreCapacity(i int) bool {
	if i < 0 || i >= s.cfg.CNodes || !s.failed[i] {
		return false
	}
	s.failed[i] = false
	s.cnodeNIC[i].SetHealthFactor(s.linkHealth)
	s.reduce[i].SetHealthFactor(s.linkHealth)
	s.applyPoolHealth()
	return true
}

// applyPoolHealth scales the multipath pools to the healthy-CNode fraction
// combined with any cluster-wide link derate.
func (s *System) applyPoolHealth() {
	if s.cnodePool == nil {
		return
	}
	frac := float64(s.healthyCNodes()) / float64(s.cfg.CNodes) * s.linkHealth
	s.cnodePool.SetHealthFactor(frac)
	s.reducePool.SetHealthFactor(frac)
}

// HealthyCNodes reports how many CNodes are in service.
func (s *System) HealthyCNodes() int { return s.healthyCNodes() }

func (s *System) healthyCNodes() int {
	n := 0
	for i := 0; i < s.cfg.CNodes; i++ {
		if !s.failed[i] {
			n++
		}
	}
	return n
}

// nextHealthy returns the first in-service CNode after i (wrapping).
func (s *System) nextHealthy(i int) int {
	for step := 1; step <= s.cfg.CNodes; step++ {
		j := (i + step) % s.cfg.CNodes
		if !s.failed[j] {
			return j
		}
	}
	panic("vast: no healthy CNodes") // guarded by FailCNode
}

// --- faults.Target ---

// FaultServers implements faults.Target: the failable servers are the
// CNodes.
func (s *System) FaultServers() int { return s.cfg.CNodes }

// FailServer implements faults.Target.
func (s *System) FailServer(i int) { s.FailCNode(i) }

// RecoverServer implements faults.Target: full recovery with client
// re-balancing.
func (s *System) RecoverServer(i int) { s.RecoverCNode(i) }

// SetLinkHealth implements faults.Target: derates every healthy CNode's
// NIC and reduction engine, the multipath pools and the CBox↔DBox fabric
// to fraction f of nominal. Failed CNodes stay parked; they pick up the
// prevailing link health when they recover.
func (s *System) SetLinkHealth(f float64) {
	s.linkHealth = f
	for i := 0; i < s.cfg.CNodes; i++ {
		if s.failed[i] {
			continue
		}
		s.cnodeNIC[i].SetHealthFactor(f)
		s.reduce[i].SetHealthFactor(f)
	}
	s.applyPoolHealth()
	s.applyDBoxHealth()
}

// SetMediaHealth implements faults.Target: derates the SCM staging tier
// and the QLC backbone (SSD wear, a rebuilding stripe group), composed
// with the DBox fraction (repair.go).
func (s *System) SetMediaHealth(f float64) {
	s.mediaHealth = f
	s.applyDBoxHealth()
}
