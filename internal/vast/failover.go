package vast

import "fmt"

// CNode failure and failover. Section III-A.2 of the paper describes the
// CNodes as stateless containers: "the VAST system state is firstly
// written into multiple SSDs, then acknowledged and finally committed and
// thus the containers (which host the CNodes) are considered stateless."
// The operational consequence — any CNode can serve any client, so a
// failure only costs capacity, never data or availability — is modeled
// here: failing a CNode re-pins its clients to the survivors and removes
// its NIC and reduction bandwidth from the pools.

// FailCNode takes CNode i out of service. Clients pinned to it fail over
// to the next healthy CNode; the multipath pools lose the node's share.
// Failing an already-failed CNode is a no-op; failing the last healthy
// CNode panics (the cluster would be down, which no experiment models).
//
// Op-level workloads resolve their path per operation and fail over
// seamlessly. A flow-level stream that is mid-flight across the failed
// server keeps its pinned path (the model cannot migrate a live flow) and
// crawls at the parked capacity — mirroring an NFS hard-mount retrying
// until its server returns. Inject failures around flow boundaries or use
// op-level runs for failure studies.
func (s *System) FailCNode(i int) {
	if i < 0 || i >= s.cfg.CNodes {
		panic(fmt.Sprintf("vast %s: no CNode %d", s.cfg.Name, i))
	}
	if s.failed[i] {
		return
	}
	if s.healthyCNodes() == 1 {
		panic(fmt.Sprintf("vast %s: cannot fail the last healthy CNode", s.cfg.Name))
	}
	s.failed[i] = true
	// The failed server's NIC and reduction engine serve nobody: park their
	// pipes at a negligible capacity so in-flight flows drain away from it
	// rather than dividing by zero.
	const parked = 1 // bytes/sec
	s.cnodeNIC[i].SetCapacity(parked)
	s.reduce[i].SetCapacity(parked)
	if s.cnodePool != nil {
		frac := float64(s.healthyCNodes()) / float64(s.cfg.CNodes)
		s.cnodePool.SetCapacity(s.cfg.CNodeNICBW * float64(s.cfg.CNodes) * frac)
		s.reducePool.SetCapacity(s.cfg.ReduceBWPerCNode * float64(s.cfg.CNodes) * frac)
	}
	// Stateless failover: re-pin every client that was on the dead server.
	for _, cl := range s.clients {
		if cl.cnode == i {
			cl.cnode = s.nextHealthy(i)
		}
	}
}

// RestoreCNode returns a failed CNode to service (capacity only; clients
// stay where the automounter left them until they remount).
func (s *System) RestoreCNode(i int) {
	if i < 0 || i >= s.cfg.CNodes || !s.failed[i] {
		return
	}
	s.failed[i] = false
	s.cnodeNIC[i].SetCapacity(s.cfg.CNodeNICBW)
	s.reduce[i].SetCapacity(s.cfg.ReduceBWPerCNode)
	if s.cnodePool != nil {
		frac := float64(s.healthyCNodes()) / float64(s.cfg.CNodes)
		s.cnodePool.SetCapacity(s.cfg.CNodeNICBW * float64(s.cfg.CNodes) * frac)
		s.reducePool.SetCapacity(s.cfg.ReduceBWPerCNode * float64(s.cfg.CNodes) * frac)
	}
}

// HealthyCNodes reports how many CNodes are in service.
func (s *System) HealthyCNodes() int { return s.healthyCNodes() }

func (s *System) healthyCNodes() int {
	n := 0
	for i := 0; i < s.cfg.CNodes; i++ {
		if !s.failed[i] {
			n++
		}
	}
	return n
}

// nextHealthy returns the first in-service CNode after i (wrapping).
func (s *System) nextHealthy(i int) int {
	for step := 1; step <= s.cfg.CNodes; step++ {
		j := (i + step) % s.cfg.CNodes
		if !s.failed[j] {
			return j
		}
	}
	panic("vast: no healthy CNodes") // guarded by FailCNode
}
