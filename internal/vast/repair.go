package vast

import (
	"fmt"
	"time"

	"storagesim/internal/repair"
	"storagesim/internal/sim"
)

// DBox failure, degraded reads and redundancy declaration. Section III-A
// of the paper: VAST protects data with wide-stripe, locally-decodable
// erasure codes laid across the DBox enclosures, so the redundancy unit
// is the DBox, not the (stateless) CNode. Losing an enclosure costs its
// share of the CBox↔DBox fabric and of the SCM/QLC pools, and every read
// whose stripe is homed on the degraded enclosure pays a decode penalty —
// extra latency plus read amplification on the surviving QLC — until the
// rebuild reconstructs the enclosure's strips onto spare capacity.

// ecTolerance is the whole-DBox losses the stripe survives.
func (c *Config) ecTolerance() int {
	if c.ECParity > 0 {
		return c.ECParity
	}
	if c.DBoxes <= 2 {
		return c.DBoxes - 1
	}
	return 2
}

// stripeBytes is the EC stripe width (default 1 MiB).
func (c *Config) stripeBytes() int64 {
	if c.StripeBytes > 0 {
		return c.StripeBytes
	}
	return 1 << 20
}

// decodeLatency is the per-op reconstruction latency (default 25µs).
func (c *Config) decodeLatency() sim.Duration {
	if c.DecodeLatency > 0 {
		return c.DecodeLatency
	}
	return 25 * time.Microsecond
}

// decodeAmp is the degraded-read QLC amplification (default 1.5).
func (c *Config) decodeAmp() float64 {
	if c.DecodeReadAmp >= 1 {
		return c.DecodeReadAmp
	}
	return 1.5
}

// FailDBox takes enclosure i out of service: the fabric and the SCM/QLC
// pools lose its share, and reads homed on it turn degraded. Failing an
// already-failed enclosure is a no-op; failing the last healthy one
// panics (the cluster would be down, which no experiment models).
func (s *System) FailDBox(i int) {
	if i < 0 || i >= s.cfg.DBoxes {
		panic(fmt.Sprintf("vast %s: no DBox %d", s.cfg.Name, i))
	}
	if s.dboxFailed[i] {
		return
	}
	if s.healthyDBoxes() == 1 {
		panic(fmt.Sprintf("vast %s: cannot fail the last healthy DBox", s.cfg.Name))
	}
	s.dboxFailed[i] = true
	s.dboxRebuilt[i] = 0
	s.applyDBoxHealth()
}

// RecoverDBox returns enclosure i to service at exact nominal capacity;
// recovering a healthy enclosure is a no-op.
func (s *System) RecoverDBox(i int) {
	if i < 0 || i >= s.cfg.DBoxes || !s.dboxFailed[i] {
		return
	}
	s.dboxFailed[i] = false
	s.dboxRebuilt[i] = 0
	s.applyDBoxHealth()
}

// SetDBoxRebuild counts failed enclosure i as fraction frac reconstructed
// when deriving fabric and media capacity, so health recovers
// incrementally as a rebuild progresses.
func (s *System) SetDBoxRebuild(i int, frac float64) {
	if i < 0 || i >= s.cfg.DBoxes || !s.dboxFailed[i] {
		return
	}
	s.dboxRebuilt[i] = frac
	s.applyDBoxHealth()
}

// HealthyDBoxes reports how many enclosures are in service.
func (s *System) HealthyDBoxes() int { return s.healthyDBoxes() }

func (s *System) healthyDBoxes() int {
	n := 0
	for i := 0; i < s.cfg.DBoxes; i++ {
		if !s.dboxFailed[i] {
			n++
		}
	}
	return n
}

// dboxFraction is the enclosures' effective share: whole healthy DBoxes
// plus the rebuilt fractions of failed ones. With nothing failed the sum
// of zeros keeps the division exact, so fail/recover pairs still restore
// bit-identical nominal capacity.
func (s *System) dboxFraction() float64 {
	sum := float64(s.healthyDBoxes())
	for i := 0; i < s.cfg.DBoxes; i++ {
		if s.dboxFailed[i] {
			sum += s.dboxRebuilt[i]
		}
	}
	return sum / float64(s.cfg.DBoxes)
}

// applyDBoxHealth scales the CBox↔DBox fabric and the SCM/QLC pools to
// the DBox fraction composed with the prevailing cluster-wide derates.
func (s *System) applyDBoxHealth() {
	frac := s.dboxFraction()
	s.fabricUp.SetHealthFactor(s.linkHealth * frac)
	s.fabricDown.SetHealthFactor(s.linkHealth * frac)
	s.scm.SetHealthFactor(s.mediaHealth * frac)
	s.qlc.SetHealthFactor(s.mediaHealth * frac)
}

// stripeHome maps a stripe index to the DBox its data strip lives on.
func (s *System) stripeHome(stripe int64) int {
	return int(stripe % int64(s.cfg.DBoxes))
}

// readDegraded reports whether any stripe of [off, off+n) is homed on a
// failed enclosure — those reads must reconstruct from parity.
func (s *System) readDegraded(off, n int64) bool {
	if s.healthyDBoxes() == s.cfg.DBoxes {
		return false
	}
	sb := s.cfg.stripeBytes()
	for st := off / sb; st*sb < off+n; st++ {
		if s.dboxFailed[s.stripeHome(st)] {
			return true
		}
	}
	return false
}

// qlcOpRead serves one op-level read from the QLC backbone, paying the
// decode penalty — reconstruction latency plus read amplification on the
// surviving flash — when the extent is homed on a degraded enclosure. The
// penalty disappears the moment the enclosure's rebuild completes
// (RecoverDBox clears dboxFailed).
func (s *System) qlcOpRead(p *sim.Proc, id uint64, off, n int64) {
	if s.readDegraded(off, n) {
		p.Sleep(s.cfg.decodeLatency())
		n = int64(float64(n) * s.cfg.decodeAmp())
	}
	s.qlc.Read(p, id, off, n)
}

// --- repair.Protected ---

// RepairScheme implements repair.Protected: wide-stripe erasure coding
// across enclosures; CNode failures cost capacity, never data
// (ServersHoldData false).
func (s *System) RepairScheme() repair.Scheme {
	return repair.Scheme{Kind: repair.ErasureCode, Tolerance: s.cfg.ecTolerance(), ServersHoldData: false}
}

// FaultUnits implements faults.UnitTarget: one redundancy unit per DBox.
func (s *System) FaultUnits() int { return s.cfg.DBoxes }

// FailUnit implements faults.UnitTarget.
func (s *System) FailUnit(i int) { s.FailDBox(i) }

// RecoverUnit implements faults.UnitTarget.
func (s *System) RecoverUnit(i int) { s.RecoverDBox(i) }

// SetUnitRebuild implements repair.Protected.
func (s *System) SetUnitRebuild(i int, frac float64) { s.SetDBoxRebuild(i, frac) }

// UnitBytes implements repair.Protected: the physical bytes homed on one
// enclosure — the reduced QLC footprint plus the SCM-staged tail, spread
// evenly by the wide stripes.
func (s *System) UnitBytes(i int) float64 {
	ratio := s.cfg.ReductionRatio
	if ratio < 1 {
		ratio = 1
	}
	flash := float64(s.staging.Migrated())/ratio + float64(s.staging.Staged())
	return flash / float64(s.cfg.DBoxes)
}

// RepairPath implements repair.Protected: reconstruction streams
// surviving strips out of the QLC pool, across the CBox↔DBox fabric (the
// CNodes decode) and back onto spare flash — contending with foreground
// traffic on every hop.
func (s *System) RepairPath(i int) []*sim.Pipe {
	return []*sim.Pipe{s.qlc.ReadPipe(), s.fabricDown, s.fabricUp, s.qlc.WritePipe()}
}

var _ repair.Protected = (*System)(nil)
