package vast

import (
	"testing"
	"time"

	"storagesim/internal/fsapi"
	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

// stagingConfig returns a VAST instance with a tiny staging tier and a
// slow QLC drain so backpressure is easy to hit.
func stagingConfig() Config {
	cfg := testConfig(&netsim.TCPTransport{PerConnBW: 50e9, Connections: 1})
	cfg.SCMStagingBytes = 1 << 30 // 1 GiB staging
	cfg.ReductionRatio = 2
	return cfg
}

func TestMigrationDrainsStagedBytes(t *testing.T) {
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	sys := MustNew(env, fab, stagingConfig())
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 50e9, 0))
	env.Go("w", func(p *sim.Proc) {
		cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, 512<<20)
	})
	env.Run()
	if sys.StagedBytes() != 0 {
		t.Fatalf("staged bytes not drained: %d", sys.StagedBytes())
	}
	if sys.MigratedBytes() != 512<<20 {
		t.Fatalf("migrated = %d, want 512 MiB", sys.MigratedBytes())
	}
}

func TestStagingBackpressureThrottlesSustainedWrites(t *testing.T) {
	// Ingest far beyond the staging tier: throughput must approach the
	// migration drain rate (QLC write bw x reduction ratio), not the SCM
	// landing rate.
	cfg := stagingConfig()
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	sys := MustNew(env, fab, cfg)
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 200e9, 0))
	const total = 64 << 30 // 64 GiB through a 1 GiB stage
	var end sim.Time
	env.Go("w", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, 1<<30)
		}
		end = p.Now()
	})
	env.Run()
	bw := float64(total) / sim.Duration(end).Seconds()
	drain := sys.qlc.Spec().WriteBW * cfg.ReductionRatio
	if bw > 1.2*drain {
		t.Fatalf("sustained write %.2e exceeds drain rate %.2e: backpressure inert", bw, drain)
	}
	if sys.StagedBytes() != 0 {
		t.Fatalf("staging not drained at end: %d", sys.StagedBytes())
	}
}

func TestBurstWithinStagingRunsAtSCMSpeed(t *testing.T) {
	// A burst smaller than the stage must land at SCM/path speed, not the
	// QLC drain rate — the burst-buffer promise.
	cfg := stagingConfig()
	// slow the QLC dramatically so a drain-bound run would be obvious
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	sys := MustNew(env, fab, cfg)
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 50e9, 0))
	const burst = 512 << 20 // half the stage
	var end sim.Time
	env.Go("w", func(p *sim.Proc) {
		cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, burst)
		end = p.Now()
	})
	env.Run()
	bw := float64(burst) / sim.Duration(end).Seconds()
	// The write path bottleneck in testConfig is the per-CNode reduce pipe
	// (2 GB/s); the QLC drain must not slow the ack path.
	if bw < 1.8e9 {
		t.Fatalf("in-stage burst ran at %.2e, want ~2e9 (ack path)", bw)
	}
	_ = sys
}

func TestOpLevelWritesAccountStaging(t *testing.T) {
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	sys := MustNew(env, fab, stagingConfig())
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 50e9, 0))
	env.Go("w", func(p *sim.Proc) {
		f := cl.Open(p, "/f", true)
		for i := int64(0); i < 8; i++ {
			f.WriteAt(p, i<<20, 1<<20)
			f.Fsync(p)
		}
		// let the migrator catch up
		p.Sleep(time.Second)
	})
	env.Run()
	if sys.MigratedBytes() != 8<<20 {
		t.Fatalf("migrated = %d, want 8 MiB", sys.MigratedBytes())
	}
}

func TestZeroCapacityDisablesBackpressure(t *testing.T) {
	cfg := stagingConfig()
	cfg.SCMStagingBytes = 0
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	sys := MustNew(env, fab, cfg)
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 200e9, 0))
	var end sim.Time
	env.Go("w", func(p *sim.Proc) {
		cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, 16<<30)
		end = p.Now()
	})
	env.Run()
	bw := float64(16<<30) / sim.Duration(end).Seconds()
	if bw < 1.8e9 {
		t.Fatalf("unbounded staging still throttled: %.2e", bw)
	}
	_ = sys
}
