package vast

import (
	"storagesim/internal/device"
	"storagesim/internal/sim"
)

// SCM write staging and background migration (Section III-A.2/4/5): VAST
// acks a write once it is committed to the SCM replicas, then
// asynchronously similarity-reduces and migrates the data to the QLC
// backbone. Under normal load the ack path never touches QLC; under
// sustained ingest beyond the drain rate the staging area fills and
// writers throttle to the migrator — the classic burst-buffer saturation
// behaviour (cf. Lockwood et al., PDSW'21, on benchmarking all-flash
// storage past its staging tier).
//
// The migrator is not a perpetual process: each staged burst starts a
// background QLC flow whose completion releases the staged bytes, so the
// simulation drains naturally once writers stop.

// stager tracks staged-but-unmigrated bytes and applies backpressure.
type stager struct {
	sys      *System
	capacity int64 // staging capacity; 0 disables backpressure
	staged   int64
	migrated int64

	// space fires when a migration completes and frees staging room; it is
	// re-armed after each broadcast.
	space *sim.Event
}

// newStager returns the staging accountant.
func newStager(s *System) *stager {
	return &stager{
		sys:      s,
		capacity: s.cfg.SCMStagingBytes,
		space:    sim.NewEvent(s.env),
	}
}

// Staged returns the bytes currently staged on SCM awaiting migration.
func (st *stager) Staged() int64 { return st.staged }

// Migrated returns the bytes drained to QLC so far (pre-reduction).
func (st *stager) Migrated() int64 { return st.migrated }

// admit blocks the writer while the staging area is full (backpressure
// precedes the SCM landing) and accounts the incoming bytes, reporting
// whether the write was admitted. The caller starts the drain with migrate
// once the data has landed. A request whose abort token fires while it is
// throttled is refused at the next space broadcast (migrations keep
// draining during faults, so the wait is bounded) and must not migrate.
func (st *stager) admit(p *sim.Proc, bytes int64) bool {
	if bytes <= 0 {
		return true
	}
	if st.capacity > 0 {
		for st.staged >= st.capacity {
			if p.Aborted() {
				return false
			}
			st.space.Wait(p)
		}
	}
	st.staged += bytes
	return true
}

// migrate starts the asynchronous drain of bytes that have landed on SCM.
func (st *stager) migrate(bytes int64) {
	if bytes <= 0 {
		return
	}
	st.startMigration(bytes)
}

// startMigration launches the asynchronous SCM→QLC drain of one burst.
// Migration happens inside the DBoxes (SCM → PCIe switches → QLC), so it
// consumes QLC write bandwidth but not the CBox↔DBox fabric, and the
// similarity reduction shrinks the bytes that reach flash.
func (st *stager) startMigration(bytes int64) {
	s := st.sys
	ratio := s.cfg.ReductionRatio
	if ratio < 1 {
		ratio = 1
	}
	pipes := s.qlc.StreamPipes(device.Sequential, true, 1<<20)
	flow := s.fab.StartFlow(pipes, float64(bytes)/ratio, 0)
	s.env.Go(s.cfg.Name+"/migrate", func(p *sim.Proc) {
		flow.Done().Wait(p)
		st.staged -= bytes
		st.migrated += bytes
		st.space.Fire()
		st.space = sim.NewEvent(s.env)
	})
}
