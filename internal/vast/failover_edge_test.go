package vast

import (
	"fmt"
	"testing"
	"time"

	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

// mountN mounts n clients; with 4 CNodes the round-robin homes are
// 0,1,2,3,0,1,...
func mountN(fab *sim.Fabric, sys *System, n int) []*client {
	var out []*client
	for i := 0; i < n; i++ {
		nic := netsim.NewIface(fab, fmt.Sprintf("e%d/nic", i), 10e9, 0)
		out = append(out, sys.Mount(fmt.Sprintf("e%d", i), nic).(*client))
	}
	return out
}

// TestFailoverSequences drives the fail/recover/restore state machine
// through edge-case sequences. After every non-panicking step, no client
// may be pinned to a failed CNode — failover is supposed to hold as an
// invariant, not just after a single clean failure.
func TestFailoverSequences(t *testing.T) {
	type step struct {
		op  string
		idx int
	}
	cases := []struct {
		name        string
		steps       []step
		wantHealthy int
		wantPanic   bool
	}{
		{"fail recover fail same CNode", []step{{"fail", 1}, {"recover", 1}, {"fail", 1}}, 3, false},
		{"double fail is a no-op", []step{{"fail", 2}, {"fail", 2}}, 3, false},
		{"recover healthy is a no-op", []step{{"recover", 0}}, 4, false},
		{"restore then re-fail", []step{{"fail", 0}, {"restore", 0}, {"fail", 0}}, 3, false},
		{"interleaved fail and recover", []step{{"fail", 0}, {"fail", 1}, {"recover", 0}, {"fail", 2}}, 2, false},
		{"cascade to two survivors", []step{{"fail", 3}, {"fail", 0}}, 2, false},
		{"fail last healthy panics", []step{{"fail", 0}, {"fail", 1}, {"fail", 2}, {"fail", 3}}, 0, true},
		{"fail out of range panics", []step{{"fail", 7}}, 0, true},
		{"fail negative panics", []step{{"fail", -1}}, 0, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, fab, sys := newTestSystem(t)
			clients := mountN(fab, sys, 8)
			panicked := func() (p bool) {
				defer func() { p = recover() != nil }()
				for _, st := range tc.steps {
					switch st.op {
					case "fail":
						sys.FailCNode(st.idx)
					case "recover":
						sys.RecoverCNode(st.idx)
					case "restore":
						sys.RestoreCNode(st.idx)
					}
					for i, cl := range clients {
						if sys.failed[cl.cnode] {
							t.Errorf("after %s %d: client %d pinned to failed CNode %d", st.op, st.idx, i, cl.cnode)
						}
					}
				}
				return false
			}()
			if panicked != tc.wantPanic {
				t.Fatalf("panicked = %v, want %v", panicked, tc.wantPanic)
			}
			if tc.wantPanic {
				return
			}
			if got := sys.HealthyCNodes(); got != tc.wantHealthy {
				t.Fatalf("healthy = %d, want %d", got, tc.wantHealthy)
			}
		})
	}
}

// TestRePinDistributionAfterRecovery checks the full failover round trip:
// failing a CNode spreads its clients over the survivors, and recovering
// it moves exactly its home clients back, restoring the balanced
// mount-time distribution.
func TestRePinDistributionAfterRecovery(t *testing.T) {
	_, fab, sys := newTestSystem(t)
	clients := mountN(fab, sys, 8) // homes 0,1,2,3,0,1,2,3

	distribution := func() map[int]int {
		d := map[int]int{}
		for _, cl := range clients {
			d[cl.cnode]++
		}
		return d
	}
	sys.FailCNode(0)
	if d := distribution(); d[0] != 0 {
		t.Fatalf("failed CNode still serves %d clients", d[0])
	}
	sys.RecoverCNode(0)
	d := distribution()
	for cn := 0; cn < 4; cn++ {
		if d[cn] != 2 {
			t.Fatalf("after recovery CNode %d serves %d clients, want 2 (distribution %v)", cn, d[cn], d)
		}
	}
	for i, cl := range clients {
		if cl.cnode != cl.home {
			t.Errorf("client %d on CNode %d, home %d: recovery did not re-balance", i, cl.cnode, cl.home)
		}
	}
	// The moved clients (homes on CNode 0) must be marked stale so their
	// next op pays the retransmit penalty; untouched clients must not be.
	for i, cl := range clients {
		wantStale := cl.home == 0
		if cl.stale != wantStale {
			t.Errorf("client %d stale = %v, want %v", i, cl.stale, wantStale)
		}
	}
}

// TestRetryPenaltyAfterFailover measures the NFS retransmit model: with a
// retry policy configured, the first operation after a failover pays at
// least one timeout round; once paid, subsequent ops run at full speed.
func TestRetryPenaltyAfterFailover(t *testing.T) {
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	cfg := testConfig(&netsim.TCPTransport{PerConnBW: 5e9, Connections: 1, RPC: 50 * time.Microsecond})
	cfg.Retry = netsim.RetryPolicy{Timeout: sim.Duration(2 * time.Millisecond), Multiplier: 2}
	sys := MustNew(env, fab, cfg)
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 10e9, 0)).(*client)
	victim := cl.cnode

	var clean, penalized, after sim.Duration
	env.Go("w", func(p *sim.Proc) {
		// WriteAt lands in the client page cache; Fsync drives the backend
		// op path where the retransmit penalty is charged.
		f := cl.Open(p, "/f", true)
		t0 := p.Now()
		f.WriteAt(p, 0, 1<<20)
		f.Fsync(p)
		clean = sim.Duration(p.Now() - t0)

		sys.FailCNode(victim)
		t0 = p.Now()
		f.WriteAt(p, 1<<20, 1<<20)
		f.Fsync(p)
		penalized = sim.Duration(p.Now() - t0)

		t0 = p.Now()
		f.WriteAt(p, 2<<20, 1<<20)
		f.Fsync(p)
		after = sim.Duration(p.Now() - t0)
	})
	env.Run()

	if penalized < clean+cfg.Retry.Timeout {
		t.Fatalf("op after failover took %v, want at least clean %v + timeout %v", penalized, clean, cfg.Retry.Timeout)
	}
	// The stale flag is one-shot: the third op must not pay again. The
	// surviving CNodes carry extra load, so allow slack over the clean op.
	if after >= cfg.Retry.Timeout {
		t.Fatalf("second op after failover still pays the retransmit penalty: %v", after)
	}
}

// TestMidFlightFailRecoverFail keeps op-level I/O running while the same
// CNode fails, recovers and fails again. The stream must complete, and the
// client must end on a healthy CNode.
func TestMidFlightFailRecoverFail(t *testing.T) {
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	cfg := testConfig(&netsim.TCPTransport{PerConnBW: 5e9, Connections: 1, RPC: 50 * time.Microsecond})
	cfg.Retry = netsim.RetryPolicy{Timeout: sim.Duration(500 * time.Microsecond), Multiplier: 2, MaxTimeout: sim.Duration(4 * time.Millisecond)}
	sys := MustNew(env, fab, cfg)
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 10e9, 0)).(*client)
	victim := cl.cnode

	var done bool
	env.Go("w", func(p *sim.Proc) {
		f := cl.Open(p, "/f", true)
		for i := int64(0); i < 96; i++ {
			f.WriteAt(p, i<<20, 1<<20)
			f.Fsync(p)
		}
		done = true
	})
	env.Go("chaos", func(p *sim.Proc) {
		p.Sleep(3 * time.Millisecond)
		sys.FailCNode(victim)
		p.Sleep(5 * time.Millisecond)
		sys.RecoverCNode(victim)
		p.Sleep(5 * time.Millisecond)
		sys.FailCNode(victim)
	})
	env.Run()

	if !done {
		t.Fatal("op stream did not survive fail/recover/fail")
	}
	if sys.failed[cl.cnode] {
		t.Fatalf("client ended pinned to failed CNode %d", cl.cnode)
	}
	if got := sys.HealthyCNodes(); got != 3 {
		t.Fatalf("healthy = %d, want 3", got)
	}
}
