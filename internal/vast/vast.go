// Package vast models the VAST DataStore (Section III-A of the paper): a
// disaggregated, shared-everything all-flash store built from stateless
// CNodes (protocol servers) and high-availability DBox enclosures whose
// DNodes fan NVMe-over-Fabrics out to storage-class-memory (SCM) and
// hyperscale QLC flash SSDs.
//
// The mechanisms the paper's results hinge on are modeled explicitly:
//
//   - Deployment transport. Clients mount VAST over NFS; on the LC
//     machines that is NFS/TCP through a bank of gateway nodes (one pinned
//     connection per client — the bandwidth ceiling of Figures 2a and 3a-c),
//     on Wombat NFS/RDMA with nconnect=16 and multipathing (Figures 2b, 3d).
//   - Write path. A write lands on a CNode, pays the similarity-based data
//     reduction the CNodes perform on ingest, crosses the CBox↔DBox fabric,
//     and commits to multiple SCM SSDs before the ack (write-shaping that
//     makes VAST writes slower than reads — Section V-B).
//   - Read path. A read consults SCM metadata, then streams from the QLC
//     backbone through the DNode read cache. Because the backbone is flash,
//     random reads cost nearly the same as sequential ones — the paper's
//     I/O-researcher takeaway.
package vast

import (
	"fmt"
	"time"

	"storagesim/internal/cache"
	"storagesim/internal/device"
	"storagesim/internal/fsapi"
	"storagesim/internal/fsbase"
	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

// Config describes one VAST cluster deployment.
type Config struct {
	// Name identifies the instance in pipe names and reports.
	Name string

	// CNodes is the number of protocol servers (16 on the LC instance,
	// 8 on Wombat).
	CNodes int
	// DBoxes is the number of HA enclosures (5 on LC, 4 on Wombat).
	DBoxes int
	// DNodesPerDBox is 2 in both studied instances.
	DNodesPerDBox int
	// SCMPerDBox and QLCPerDBox count SSDs per enclosure (6+22 on LC).
	SCMPerDBox, QLCPerDBox int

	// CNodeNICBW is each CNode's NIC bandwidth per direction, bytes/sec.
	CNodeNICBW float64
	// ReduceBWPerCNode is the similarity-reduction + compression ingest
	// throughput of one CNode's CPUs; writes must pass through it.
	ReduceBWPerCNode float64

	// FabricBWPerDBox is the CBox↔DBox NVMe-oF bandwidth per enclosure per
	// direction (2×50 GbE on Wombat — the scalability ceiling the paper
	// hypothesizes and our ablation AB1 confirms).
	FabricBWPerDBox float64
	// FabricLatency is the one-way NVMe-oF fabric latency.
	FabricLatency sim.Duration

	// SCMReplicas is how many SCM SSDs a write is staged to before the ack.
	SCMReplicas int

	// Transport is the client↔CNode deployment (TCP gateway or RDMA).
	Transport netsim.Transport

	// SpreadAcrossCNodes models multipath deployments where a mount's
	// nconnect connections land on different CNode VIPs, so one client can
	// use the whole CNode pool instead of being pinned to one server (the
	// Wombat deployment). TCP deployments leave this false.
	SpreadAcrossCNodes bool

	// ClientCacheBytes sizes the NFS client page cache per mount; 0
	// disables client caching.
	ClientCacheBytes int64
	// CacheBlockBytes is the page size of both client and DNode caches.
	CacheBlockBytes int64
	// DNodeCacheBytes sizes the aggregate DNode read cache; 0 disables it.
	DNodeCacheBytes int64

	// MetaLatency is the SCM metadata lookup a CNode performs per read op.
	MetaLatency sim.Duration

	// SCMStagingBytes is the capacity of the SCM write-staging tier; when
	// staged-but-unmigrated data reaches it, writers throttle to the
	// migrator's drain rate. 0 disables backpressure.
	SCMStagingBytes int64

	// Retry models the NFS client's retransmit/timeout/backoff behaviour
	// when its CNode dies: a re-pinned mount pays the retransmission rounds
	// on its next operation. The zero value keeps failover instantaneous
	// (the pre-fault-model behaviour).
	Retry netsim.RetryPolicy

	// ECParity is how many whole-DBox losses the wide-stripe erasure code
	// survives (Section III-A: stripes span enclosures, so redundancy is
	// declared per DBox). 0 defaults to min(2, DBoxes-1).
	ECParity int
	// StripeBytes is the EC stripe width used to decide which DBox an
	// extent is homed on (stripe index modulo DBoxes). 0 defaults to 1 MiB.
	StripeBytes int64
	// DecodeLatency is the extra per-op latency of reconstructing a read
	// from parity while the extent's home DBox is degraded. 0 defaults to
	// 25µs.
	DecodeLatency sim.Duration
	// DecodeReadAmp is the QLC read amplification of a degraded read (the
	// decoder fetches surviving data+parity strips instead of one strip).
	// Must be >= 1 when set; 0 defaults to 1.5.
	DecodeReadAmp float64
	// ReductionRatio is the similarity-reduction factor applied before
	// data reaches QLC (bytes on flash = bytes written / ratio). Values
	// below 1 are treated as 1.
	ReductionRatio float64
}

// Validate reports the first problem with the config.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("vast: missing name")
	case c.CNodes <= 0 || c.DBoxes <= 0 || c.DNodesPerDBox <= 0:
		return fmt.Errorf("vast %s: need at least one CNode, DBox and DNode", c.Name)
	case c.SCMPerDBox <= 0 || c.QLCPerDBox <= 0:
		return fmt.Errorf("vast %s: need SCM and QLC SSDs", c.Name)
	case c.CNodeNICBW <= 0 || c.ReduceBWPerCNode <= 0 || c.FabricBWPerDBox <= 0:
		return fmt.Errorf("vast %s: bandwidths must be positive", c.Name)
	case c.SCMReplicas <= 0:
		return fmt.Errorf("vast %s: SCM replicas must be >= 1", c.Name)
	case c.Transport == nil:
		return fmt.Errorf("vast %s: missing transport", c.Name)
	case c.ClientCacheBytes > 0 && c.CacheBlockBytes <= 0:
		return fmt.Errorf("vast %s: client cache needs a block size", c.Name)
	case c.ECParity < 0 || c.ECParity >= c.DBoxes:
		return fmt.Errorf("vast %s: EC parity %d must be in [0, DBoxes)", c.Name, c.ECParity)
	case c.StripeBytes < 0:
		return fmt.Errorf("vast %s: negative stripe width", c.Name)
	case c.DecodeLatency < 0:
		return fmt.Errorf("vast %s: negative decode latency", c.Name)
	case c.DecodeReadAmp != 0 && c.DecodeReadAmp < 1:
		return fmt.Errorf("vast %s: decode read amplification %g below 1", c.Name, c.DecodeReadAmp)
	}
	if err := c.Retry.Validate(); err != nil {
		return fmt.Errorf("vast %s: %w", c.Name, err)
	}
	return nil
}

// System is a running VAST instance on a simulation fabric.
type System struct {
	cfg Config
	env *sim.Env
	fab *sim.Fabric
	ns  *fsapi.Namespace

	cnodeNIC   []*netsim.Duplex
	reduce     []*sim.Pipe // per-CNode ingest processing
	cnodePool  *netsim.Duplex
	reducePool *sim.Pipe
	fabricUp   *sim.Pipe // CBox -> DBox (writes)
	fabricDown *sim.Pipe // DBox -> CBox (reads)

	scm *device.Device // pooled SCM write-staging tier
	qlc *device.Device // pooled QLC backbone

	dnodeCache *cache.Cache // server-side read cache (nil when disabled)

	// staging tracks SCM-staged bytes and runs the background SCM→QLC
	// migration (see migrate.go).
	staging *stager

	// failed marks out-of-service CNodes (see failover.go); clients holds
	// every mount for failover re-pinning. linkHealth is the prevailing
	// cluster-wide link derate applied by the fault injector, remembered so
	// recovering CNodes come back at the right capacity.
	failed     []bool
	clients    []*client
	linkHealth float64

	// DBox redundancy state (see repair.go): dboxFailed marks degraded
	// enclosures, dboxRebuilt their reconstructed fractions, mediaHealth
	// the cluster-wide media derate (composed with the DBox fraction).
	dboxFailed  []bool
	dboxRebuilt []float64
	mediaHealth float64

	nextCNode int
}

// New builds the system, creating all pipes and devices on fab.
func New(env *sim.Env, fab *sim.Fabric, cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, env: env, fab: fab, ns: fsapi.NewNamespace(),
		failed: make([]bool, cfg.CNodes), linkHealth: 1,
		dboxFailed: make([]bool, cfg.DBoxes), dboxRebuilt: make([]float64, cfg.DBoxes),
		mediaHealth: 1}
	for i := 0; i < cfg.CNodes; i++ {
		s.cnodeNIC = append(s.cnodeNIC,
			netsim.NewDuplex(fab, fmt.Sprintf("%s/cnode%d/nic", cfg.Name, i), cfg.CNodeNICBW, 2*time.Microsecond))
		s.reduce = append(s.reduce,
			fab.NewPipe(fmt.Sprintf("%s/cnode%d/reduce", cfg.Name, i), cfg.ReduceBWPerCNode, 0))
	}
	if cfg.SpreadAcrossCNodes {
		s.cnodePool = netsim.NewDuplex(fab, cfg.Name+"/cnode-pool/nic",
			cfg.CNodeNICBW*float64(cfg.CNodes), 2*time.Microsecond)
		s.reducePool = fab.NewPipe(cfg.Name+"/cnode-pool/reduce",
			cfg.ReduceBWPerCNode*float64(cfg.CNodes), 0)
	}
	fabricBW := cfg.FabricBWPerDBox * float64(cfg.DBoxes)
	s.fabricUp = fab.NewPipe(cfg.Name+"/fabric/up", fabricBW, cfg.FabricLatency)
	s.fabricDown = fab.NewPipe(cfg.Name+"/fabric/down", fabricBW, cfg.FabricLatency)

	// SCM pool: writes land on SCMReplicas SSDs before the ack, so the
	// pool's usable ingest bandwidth is the aggregate divided by the
	// replication factor.
	scmSpec := device.SCMSpec(cfg.Name+"/scm-pool").Scale(cfg.SCMPerDBox*cfg.DBoxes, cfg.Name+"/scm-pool")
	scmSpec.WriteBW /= float64(cfg.SCMReplicas)
	scm, err := device.New(env, fab, scmSpec)
	if err != nil {
		return nil, err
	}
	s.scm = scm

	qlcSpec := device.QLCSpec(cfg.Name+"/qlc-pool").Scale(cfg.QLCPerDBox*cfg.DBoxes, cfg.Name+"/qlc-pool")
	qlc, err := device.New(env, fab, qlcSpec)
	if err != nil {
		return nil, err
	}
	s.qlc = qlc

	if cfg.DNodeCacheBytes > 0 {
		s.dnodeCache = cache.New(cache.Config{
			BlockSize:       cfg.CacheBlockBytes,
			Capacity:        cfg.DNodeCacheBytes,
			ReadaheadBlocks: 0,
		})
	}
	s.staging = newStager(s)
	return s, nil
}

// MustNew is New that panics on config errors.
func MustNew(env *sim.Env, fab *sim.Fabric, cfg Config) *System {
	s, err := New(env, fab, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the deployment parameters.
func (s *System) Config() Config { return s.cfg }

// Namespace exposes the shared file table (all clients see all files).
func (s *System) Namespace() *fsapi.Namespace { return s.ns }

// Derate scales the instance's server-side capacities (CNodes, fabric,
// devices) and its transport links by f — the shared-environment
// contention model used for the paper's 10-repetition consistency runs.
func (s *System) Derate(f float64) {
	for _, nic := range s.cnodeNIC {
		nic.Derate(f)
	}
	for _, r := range s.reduce {
		r.SetCapacity(r.Capacity() * f)
	}
	if s.cnodePool != nil {
		s.cnodePool.Derate(f)
	}
	if s.reducePool != nil {
		s.reducePool.SetCapacity(s.reducePool.Capacity() * f)
	}
	s.fabricUp.SetCapacity(s.fabricUp.Capacity() * f)
	s.fabricDown.SetCapacity(s.fabricDown.Capacity() * f)
	s.scm.Derate(f)
	s.qlc.Derate(f)
	s.cfg.Transport.Derate(f)
}

// StagedBytes returns the SCM-staged bytes awaiting migration to QLC.
func (s *System) StagedBytes() int64 { return s.staging.Staged() }

// MigratedBytes returns the bytes drained to the QLC backbone so far.
func (s *System) MigratedBytes() int64 { return s.staging.Migrated() }

// FabricPipes exposes the CBox↔DBox pipes for ablation sweeps.
func (s *System) FabricPipes() (up, down *sim.Pipe) { return s.fabricUp, s.fabricDown }

// Mount attaches a compute node to the store and returns its client. Each
// mount is pinned to a CNode round-robin, as the NFS automounter spreads
// clients across the VIP pool.
func (s *System) Mount(node string, nic *netsim.Iface) fsapi.Client {
	home := s.nextCNode % s.cfg.CNodes
	s.nextCNode++
	cn := home
	if s.failed[cn] {
		cn = s.nextHealthy(cn)
	}
	cl := &client{sys: s, nic: nic, cnode: cn, home: home, id: uint64(len(s.clients))}
	s.clients = append(s.clients, cl)
	var pc *cache.Cache
	if s.cfg.ClientCacheBytes > 0 {
		pc = cache.New(cache.Config{
			BlockSize:       s.cfg.CacheBlockBytes,
			Capacity:        s.cfg.ClientCacheBytes,
			ReadaheadBlocks: 8,
		})
	}
	cl.core = fsbase.ClientCore{
		FS:      s.cfg.Name,
		Node:    node,
		NS:      s.ns,
		Backend: (*backend)(cl),
		Cache:   pc,
	}
	return cl
}

// client is one mount. backend is the same struct viewed through the
// op-level Backend interface, keeping the hot state in one allocation.
type client struct {
	sys   *System
	nic   *netsim.Iface
	cnode int
	// id is the mount's ordinal, used as the flow id seeding the retry
	// policy's deterministic jitter.
	id uint64
	// home is the CNode the automounter originally assigned (round-robin at
	// mount time); recovery re-balancing pins the client back to it.
	home int
	// stale marks a mount whose CNode assignment just changed under it
	// (failover or recovery re-balance): the next operation pays the NFS
	// retransmit penalty before using the new path.
	stale bool
	core  fsbase.ClientCore

	// Resolved paths are cached per mount: op-level workloads resolve the
	// path on every operation, and a stable pipe slice keeps the fabric's
	// flow-class lookup allocation-free. pathCNode tags which CNode the
	// cache was built for — FailCNode re-pins clients by mutating cnode, so
	// a stale tag forces a rebuild (op-level failover stays seamless).
	pathCNode   int
	cachedWrite netsim.Path
	cachedRead  netsim.Path
}

type backend client

// FSName implements fsapi.Client.
func (c *client) FSName() string { return c.core.FSName() }

// NodeName implements fsapi.Client.
func (c *client) NodeName() string { return c.core.NodeName() }

// Open implements fsapi.Client.
func (c *client) Open(p *sim.Proc, path string, truncate bool) fsapi.File {
	return c.core.Open(p, path, truncate)
}

// Remove implements fsapi.Client.
func (c *client) Remove(p *sim.Proc, path string) { c.core.Remove(p, path) }

// DropCaches implements fsapi.Client.
func (c *client) DropCaches() { c.core.DropCaches() }

// SetFlowTag implements fsapi.FlowTagger.
func (c *client) SetFlowTag(tag string) { c.core.SetFlowTag(tag) }

// maybeRetry charges the NFS retransmission penalty on the first operation
// after the client's CNode assignment changed under it (failover or
// recovery re-balance). With no retry policy configured the re-pin is
// instantaneous — the pre-fault-model behaviour. A soft mount that
// exhausts its retry budget proceeds anyway: the simulator has no error
// channel at the fsapi layer, so the budget only bounds the time paid.
func (c *client) maybeRetry(p *sim.Proc) {
	if !c.stale {
		return
	}
	c.stale = false
	if !c.sys.cfg.Retry.Enabled() {
		return
	}
	c.sys.cfg.Retry.Retry(p, c.id, func() bool {
		if c.sys.failed[c.cnode] {
			// The replacement died during the backoff; chase the VIP again.
			c.cnode = c.sys.nextHealthy(c.cnode)
			return false
		}
		return true
	})
}

// writePath resolves the pipes of a client→SCM write stream (cached per
// mount until a CNode failover re-pins the client).
func (c *client) writePath() netsim.Path {
	if c.pathCNode != c.cnode || c.cachedWrite.Pipes == nil {
		c.rebuildPaths()
	}
	return c.cachedWrite
}

// readPath resolves the pipes of a QLC→client read stream (cached like
// writePath).
func (c *client) readPath() netsim.Path {
	if c.pathCNode != c.cnode || c.cachedRead.Pipes == nil {
		c.rebuildPaths()
	}
	return c.cachedRead
}

// rebuildPaths re-resolves both directions through the transport for the
// client's current CNode assignment.
func (c *client) rebuildPaths() {
	s := c.sys
	var up, down []*sim.Pipe
	if s.cfg.SpreadAcrossCNodes {
		up = []*sim.Pipe{
			s.cnodePool.Dir(netsim.ClientToServer),
			s.reducePool,
			s.fabricUp,
		}
		down = []*sim.Pipe{
			s.cnodePool.Dir(netsim.ServerToClient),
			s.fabricDown,
		}
	} else {
		up = []*sim.Pipe{
			s.cnodeNIC[c.cnode].Dir(netsim.ClientToServer),
			s.reduce[c.cnode],
			s.fabricUp,
		}
		down = []*sim.Pipe{
			s.cnodeNIC[c.cnode].Dir(netsim.ServerToClient),
			s.fabricDown,
		}
	}
	c.cachedWrite = s.cfg.Transport.Path(c.nic, netsim.ClientToServer, up)
	c.cachedRead = s.cfg.Transport.Path(c.nic, netsim.ServerToClient, down)
	c.pathCNode = c.cnode
}

// StreamWrite implements fsapi.Client: the whole phase is one fair-shared
// flow from the client through gateway/rails, the CNode's reduction engine
// and the fabric into the SCM staging pool.
func (c *client) StreamWrite(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	c.core.Stamp(p)
	c.maybeRetry(p)
	if fsapi.Aborted(p) {
		return // deadline fired during the retransmit penalty
	}
	ino := c.sys.ns.Create(path, false)
	c.sys.ns.Extend(ino, 0, total)
	if !c.sys.staging.admit(p, total) {
		return // aborted while throttled behind the staging tier
	}
	pa := c.writePath()
	c.sys.scm.StreamWrite(p, a, ioSize, float64(total), pa.Pipes, pa.FlowCap)
	// Whatever landed on SCM migrates even if the client aborted mid-flow:
	// the staging drain is server-side state, not request state.
	c.sys.staging.migrate(total)
}

// StreamRead implements fsapi.Client. Random streams additionally carry the
// blocking-request ceiling (no readahead pipelining over NFS for random
// offsets).
func (c *client) StreamRead(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	c.core.Stamp(p)
	c.maybeRetry(p)
	if fsapi.Aborted(p) {
		return
	}
	pa := c.readPath()
	capBps := pa.FlowCap
	if a == fsapi.Random {
		rtt := 2*pa.Latency() + pa.RPCLatency
		if bc := netsim.BlockingStreamCap(ioSize, rtt, pa.MinCapacity()); capBps == 0 || bc < capBps {
			capBps = bc
		}
	}
	c.sys.qlc.StreamRead(p, a, ioSize, float64(total), pa.Pipes, capBps)
}

// --- op-level backend ---

// OpWrite implements fsbase.Backend: RPC, stream through the write path,
// commit to SCM replicas.
func (b *backend) OpWrite(p *sim.Proc, ino *fsapi.Inode, off, n int64) {
	c := (*client)(b)
	c.maybeRetry(p)
	if fsapi.Aborted(p) {
		return
	}
	if !c.sys.staging.admit(p, n) {
		return
	}
	pa := c.writePath()
	if pa.RPCLatency > 0 {
		p.Sleep(pa.RPCLatency)
	}
	c.sys.fab.Transfer(p, pa.Pipes, float64(n), pa.FlowCap)
	c.sys.scm.Write(p, ino.ID, off, n)
	c.sys.staging.migrate(n)
}

// OpRead implements fsbase.Backend: RPC + SCM metadata lookup, then serve
// from the DNode cache or the QLC backbone.
func (b *backend) OpRead(p *sim.Proc, ino *fsapi.Inode, off, n int64) {
	c := (*client)(b)
	c.maybeRetry(p)
	if fsapi.Aborted(p) {
		return
	}
	s := c.sys
	pa := c.readPath()
	if d := pa.RPCLatency + s.cfg.MetaLatency; d > 0 {
		p.Sleep(d)
	}
	if s.dnodeCache != nil {
		hit, misses := s.dnodeCache.Lookup(ino.ID, off, n)
		if hit > 0 {
			// Served from DNode DRAM: network path only.
			s.fab.Transfer(p, pa.Pipes, float64(hit), pa.FlowCap)
		}
		for _, m := range misses {
			if fsapi.Aborted(p) {
				return
			}
			s.qlcOpRead(p, ino.ID, m.Off, m.Len)
			s.fab.Transfer(p, pa.Pipes, float64(m.Len), pa.FlowCap)
			s.dnodeCache.Insert(ino.ID, m.Off, m.Len, false)
		}
		return
	}
	s.qlcOpRead(p, ino.ID, off, n)
	s.fab.Transfer(p, pa.Pipes, float64(n), pa.FlowCap)
}

// OpCommit implements fsbase.Backend: the SCM staging commit is already
// part of OpWrite (the write acks only after landing on the SCM replicas),
// so fsync adds nothing further.
func (b *backend) OpCommit(p *sim.Proc, ino *fsapi.Inode) {}

// OpenLatency implements fsbase.Backend: one metadata round trip.
func (b *backend) OpenLatency(p *sim.Proc, ino *fsapi.Inode) {
	c := (*client)(b)
	c.maybeRetry(p)
	pa := c.readPath()
	if d := pa.RPCLatency + c.sys.cfg.MetaLatency; d > 0 {
		p.Sleep(d)
	}
}

// Interface checks.
var (
	_ fsapi.Client   = (*client)(nil)
	_ fsbase.Backend = (*backend)(nil)
)
