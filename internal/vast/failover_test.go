package vast

import (
	"fmt"
	"testing"
	"time"

	"storagesim/internal/fsapi"
	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

func TestFailCNodeRePinsClients(t *testing.T) {
	env, fab, sys := newTestSystem(t)
	_ = env
	var clients []*client
	for i := 0; i < 4; i++ {
		nic := netsim.NewIface(fab, fmt.Sprintf("n%d/nic", i), 10e9, 0)
		clients = append(clients, sys.Mount(fmt.Sprintf("n%d", i), nic).(*client))
	}
	victim := clients[0].cnode
	sys.FailCNode(victim)
	if sys.HealthyCNodes() != 3 {
		t.Fatalf("healthy = %d, want 3", sys.HealthyCNodes())
	}
	for i, cl := range clients {
		if cl.cnode == victim {
			t.Fatalf("client %d still pinned to failed CNode %d", i, victim)
		}
	}
}

func TestFailoverKeepsIORunning(t *testing.T) {
	// Stateless containers: a CNode dying mid-stream must not lose the
	// client's service — the transfer completes via the survivors.
	env, fab, sys := newTestSystem(t)
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 10e9, 0))
	victim := cl.(*client).cnode
	var done bool
	env.Go("w", func(p *sim.Proc) {
		f := cl.Open(p, "/f", true)
		for i := int64(0); i < 64; i++ {
			f.WriteAt(p, i<<20, 1<<20)
			f.Fsync(p)
		}
		done = true
	})
	env.Go("chaos", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		sys.FailCNode(victim)
	})
	env.Run()
	if !done {
		t.Fatal("write stream did not survive the CNode failure")
	}
	if got := cl.(*client).cnode; got == victim {
		t.Fatalf("client never failed over from CNode %d", got)
	}
}

func TestFailureCostsCapacityOnly(t *testing.T) {
	// On a spread (multipath) deployment, failing half the CNodes halves
	// the reduction pool, so sustained write bandwidth halves — capacity
	// loss, not outage.
	measure := func(fail int) float64 {
		env := sim.NewEnv()
		fab := sim.NewFabric(env)
		tr := &netsim.TCPTransport{PerConnBW: 100e9, Connections: 1}
		cfg := testConfig(tr)
		cfg.SpreadAcrossCNodes = true
		sys := MustNew(env, fab, cfg)
		cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 100e9, 0))
		for i := 0; i < fail; i++ {
			sys.FailCNode(i)
		}
		const total = 8 << 30
		var end sim.Time
		env.Go("w", func(p *sim.Proc) {
			cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
			end = p.Now()
		})
		env.Run()
		return float64(total) / sim.Duration(end).Seconds()
	}
	full, degraded := measure(0), measure(2)
	ratio := degraded / full
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("failing 2 of 4 CNodes scaled writes by %.2f, want ~0.5", ratio)
	}
}

func TestRestoreCNode(t *testing.T) {
	_, fab, sys := newTestSystem(t)
	_ = fab
	sys.FailCNode(1)
	sys.RestoreCNode(1)
	if sys.HealthyCNodes() != 4 {
		t.Fatalf("healthy after restore = %d", sys.HealthyCNodes())
	}
	// Restoring a healthy node is a no-op.
	sys.RestoreCNode(2)
	if sys.HealthyCNodes() != 4 {
		t.Fatal("restore of healthy node changed state")
	}
}

func TestCannotFailLastCNode(t *testing.T) {
	_, _, sys := newTestSystem(t)
	sys.FailCNode(0)
	sys.FailCNode(1)
	sys.FailCNode(2)
	defer func() {
		if recover() == nil {
			t.Fatal("failing the last CNode did not panic")
		}
	}()
	sys.FailCNode(3)
}

func TestMountSkipsFailedCNode(t *testing.T) {
	_, fab, sys := newTestSystem(t)
	sys.FailCNode(0)
	// Mount rotation would assign CNode 0 to the first mount; it must skip.
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 10e9, 0)).(*client)
	if cl.cnode == 0 {
		t.Fatal("new mount pinned to a failed CNode")
	}
}
