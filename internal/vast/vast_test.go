package vast

import (
	"fmt"
	"math"
	"testing"
	"time"

	"storagesim/internal/fsapi"
	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

// testConfig returns a small VAST instance behind a direct (gateway-less)
// TCP transport so tests control every constant.
func testConfig(tr netsim.Transport) Config {
	return Config{
		Name:             "vast-test",
		CNodes:           4,
		DBoxes:           2,
		DNodesPerDBox:    2,
		SCMPerDBox:       4,
		QLCPerDBox:       8,
		CNodeNICBW:       10e9,
		ReduceBWPerCNode: 2e9,
		FabricBWPerDBox:  10e9,
		FabricLatency:    time.Microsecond,
		SCMReplicas:      2,
		Transport:        tr,
		ClientCacheBytes: 64 << 20,
		CacheBlockBytes:  1 << 20,
		DNodeCacheBytes:  128 << 20,
		MetaLatency:      10 * time.Microsecond,
	}
}

func newTestSystem(t *testing.T) (*sim.Env, *sim.Fabric, *System) {
	t.Helper()
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	tr := &netsim.TCPTransport{PerConnBW: 5e9, Connections: 1, RPC: 50 * time.Microsecond}
	sys, err := New(env, fab, testConfig(tr))
	if err != nil {
		t.Fatal(err)
	}
	return env, fab, sys
}

func TestConfigValidate(t *testing.T) {
	tr := &netsim.TCPTransport{PerConnBW: 1e9}
	good := testConfig(tr)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.CNodes = 0 },
		func(c *Config) { c.DBoxes = 0 },
		func(c *Config) { c.SCMPerDBox = 0 },
		func(c *Config) { c.QLCPerDBox = 0 },
		func(c *Config) { c.CNodeNICBW = 0 },
		func(c *Config) { c.ReduceBWPerCNode = -1 },
		func(c *Config) { c.FabricBWPerDBox = 0 },
		func(c *Config) { c.SCMReplicas = 0 },
		func(c *Config) { c.Transport = nil },
		func(c *Config) { c.CacheBlockBytes = 0 },
	}
	for i, mutate := range mutations {
		c := testConfig(tr)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestMountRoundRobinAcrossCNodes(t *testing.T) {
	env, fab, sys := newTestSystem(t)
	_ = env
	seen := map[int]int{}
	for i := 0; i < 8; i++ {
		nic := netsim.NewIface(fab, fmt.Sprintf("n%d/nic", i), 10e9, 0)
		cl := sys.Mount(fmt.Sprintf("n%d", i), nic).(*client)
		seen[cl.cnode]++
	}
	if len(seen) != 4 {
		t.Fatalf("mounts used %d of 4 CNodes", len(seen))
	}
	for cn, n := range seen {
		if n != 2 {
			t.Fatalf("CNode %d got %d mounts, want 2", cn, n)
		}
	}
}

func TestSharedNamespaceAcrossMounts(t *testing.T) {
	env, fab, sys := newTestSystem(t)
	nic1 := netsim.NewIface(fab, "n1/nic", 10e9, 0)
	nic2 := netsim.NewIface(fab, "n2/nic", 10e9, 0)
	c1 := sys.Mount("n1", nic1)
	c2 := sys.Mount("n2", nic2)
	env.Go("writer", func(p *sim.Proc) {
		f := c1.Open(p, "/shared", true)
		f.WriteAt(p, 0, 4<<20)
		f.Fsync(p)
		f.Close(p)
	})
	env.Go("reader", func(p *sim.Proc) {
		p.Sleep(time.Second)
		f := c2.Open(p, "/shared", false)
		if f.Size() != 4<<20 {
			t.Errorf("peer sees size %d, want 4MiB", f.Size())
		}
		f.ReadAt(p, 0, 4<<20)
		f.Close(p)
	})
	env.Run()
}

func TestWritesSlowerThanReads(t *testing.T) {
	// Section V-B: "sequential read bandwidths on VAST are higher than
	// sequential writes, as during write operations the CNodes are burdened
	// with similarity-based data arrangement and compression".
	measure := func(write bool) float64 {
		env, fab, sys := newTestSystem(t)
		nic := netsim.NewIface(fab, "n0/nic", 10e9, 0)
		cl := sys.Mount("n0", nic)
		const total = 8 << 30
		var end sim.Time
		env.Go("x", func(p *sim.Proc) {
			if write {
				cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
				end = p.Now()
				return
			}
			cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
			start := p.Now()
			cl.StreamRead(p, "/f", fsapi.Sequential, 1<<20, total)
			end = sim.Time(p.Now().Sub(start))
		})
		env.Run()
		return float64(total) / sim.Duration(end).Seconds()
	}
	w, r := measure(true), measure(false)
	if w >= r {
		t.Fatalf("VAST writes (%.2e) must be slower than reads (%.2e)", w, r)
	}
	// The write ceiling here is the per-CNode reduction engine (2 GB/s).
	if math.Abs(w-2e9) > 0.1e9 {
		t.Fatalf("write bw = %.2e, want ~2e9 (reduce pipe)", w)
	}
}

func TestSeqAndRandomReadsMatch(t *testing.T) {
	// The QLC backbone has no seek penalty: the I/O-researcher takeaway.
	measure := func(a fsapi.Access) float64 {
		env, fab, sys := newTestSystem(t)
		nic := netsim.NewIface(fab, "n0/nic", 10e9, 0)
		cl := sys.Mount("n0", nic)
		const total = 4 << 30
		var dur sim.Duration
		env.Go("x", func(p *sim.Proc) {
			cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
			start := p.Now()
			cl.StreamRead(p, "/f", a, 1<<20, total)
			dur = p.Now().Sub(start)
		})
		env.Run()
		return float64(total) / dur.Seconds()
	}
	seq, rnd := measure(fsapi.Sequential), measure(fsapi.Random)
	if rnd < 0.5*seq {
		t.Fatalf("random read (%.2e) collapsed vs sequential (%.2e)", rnd, seq)
	}
}

func TestFsyncCommitsToSCMNotQLC(t *testing.T) {
	// Op-level writes must land on the SCM staging tier (the commit point),
	// never synchronously on QLC.
	env, fab, sys := newTestSystem(t)
	nic := netsim.NewIface(fab, "n0/nic", 10e9, 0)
	cl := sys.Mount("n0", nic)
	env.Go("w", func(p *sim.Proc) {
		f := cl.Open(p, "/f", true)
		for i := int64(0); i < 8; i++ {
			f.WriteAt(p, i<<20, 1<<20)
			f.Fsync(p)
		}
	})
	env.Run()
	if sys.scm.Ops() == 0 {
		t.Fatal("fsync writes never reached the SCM tier")
	}
	if got := sys.qlc.Ops(); got != 0 {
		t.Fatalf("QLC saw %d synchronous write ops", got)
	}
}

func TestDNodeCacheServesRepeatReads(t *testing.T) {
	// Two different clients reading the same data: the second read should
	// hit the DNode cache and skip QLC.
	env, fab, sys := newTestSystem(t)
	c1 := sys.Mount("n1", netsim.NewIface(fab, "n1/nic", 10e9, 0))
	c2 := sys.Mount("n2", netsim.NewIface(fab, "n2/nic", 10e9, 0))
	env.Go("x", func(p *sim.Proc) {
		f := c1.Open(p, "/f", true)
		f.WriteAt(p, 0, 8<<20)
		f.Fsync(p)
		f.Close(p)
		// First cold read via client 1 (after dropping its page cache).
		c1.DropCaches()
		f = c1.Open(p, "/f", false)
		f.ReadAt(p, 0, 8<<20)
		f.Close(p)
		qlcAfterFirst := sys.qlc.Ops()
		// Client 2 reads the same bytes: DNode cache hit, no new QLC ops.
		f2 := c2.Open(p, "/f", false)
		f2.ReadAt(p, 0, 8<<20)
		f2.Close(p)
		if sys.qlc.Ops() != qlcAfterFirst {
			t.Errorf("second client's read went to QLC (%d -> %d ops)", qlcAfterFirst, sys.qlc.Ops())
		}
	})
	env.Run()
}

func TestSpreadAcrossCNodesLiftsPinning(t *testing.T) {
	measure := func(spread bool) float64 {
		env := sim.NewEnv()
		fab := sim.NewFabric(env)
		tr := &netsim.TCPTransport{PerConnBW: 100e9, Connections: 1}
		cfg := testConfig(tr)
		cfg.SpreadAcrossCNodes = spread
		sys := MustNew(env, fab, cfg)
		cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 100e9, 0))
		const total = 16 << 30
		var end sim.Time
		env.Go("x", func(p *sim.Proc) {
			cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
			start := p.Now()
			cl.StreamRead(p, "/f", fsapi.Sequential, 1<<20, total)
			end = sim.Time(p.Now().Sub(start))
		})
		env.Run()
		return float64(total) / sim.Duration(end).Seconds()
	}
	pinned, spread := measure(false), measure(true)
	// Pinned: one CNode NIC (10 GB/s). Spread: the pool (40 GB/s), so the
	// fabric (20 GB/s) becomes the ceiling.
	if spread < 1.5*pinned {
		t.Fatalf("multipath spreading did not lift the CNode pin: %.2e vs %.2e", pinned, spread)
	}
}

func TestDerateScalesThroughput(t *testing.T) {
	measure := func(f float64) float64 {
		env, fab, sys := newTestSystem(t)
		if f < 1 {
			sys.Derate(f)
		}
		cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 10e9, 0))
		const total = 4 << 30
		var end sim.Time
		env.Go("x", func(p *sim.Proc) {
			cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
			end = p.Now()
		})
		env.Run()
		return float64(total) / sim.Duration(end).Seconds()
	}
	full, derated := measure(1), measure(0.5)
	if derated > 0.75*full {
		t.Fatalf("derate(0.5) barely changed throughput: %.2e -> %.2e", full, derated)
	}
}

func TestFabricAblationKnob(t *testing.T) {
	env, fab, sys := newTestSystem(t)
	_ = env
	_ = fab
	up, down := sys.FabricPipes()
	if up.Capacity() != 20e9 || down.Capacity() != 20e9 {
		t.Fatalf("fabric pipes = %v/%v, want 2 DBoxes x 10e9", up.Capacity(), down.Capacity())
	}
	up.SetCapacity(5e9)
	if up.Capacity() != 5e9 {
		t.Fatal("fabric capacity not adjustable")
	}
}
