package vast

import (
	"testing"

	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

// newDegradedSystem builds a 4-DBox instance so stripe homes cycle 0..3
// over the default 1 MiB stripes.
func newDegradedSystem(t *testing.T) (*sim.Env, *System) {
	t.Helper()
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	tr := &netsim.TCPTransport{PerConnBW: 5e9, Connections: 1}
	cfg := testConfig(tr)
	cfg.DBoxes = 4
	sys, err := New(env, fab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env, sys
}

const mib = int64(1) << 20

func TestReadDegradedStripeMapping(t *testing.T) {
	_, sys := newDegradedSystem(t)
	sys.FailDBox(1)

	cases := []struct {
		name     string
		off, n   int64
		degraded bool
	}{
		{"stripe 0 homed on healthy DBox 0", 0, mib, false},
		{"stripe 1 homed on failed DBox 1", mib, mib, true},
		{"stripe 2 homed on healthy DBox 2", 2 * mib, mib, false},
		{"stripe 5 wraps back to failed DBox 1", 5 * mib, mib, true},
		{"partial extent inside stripe 1", mib + 4096, 4096, true},
		{"partial extent inside stripe 2", 2*mib + 4096, 4096, false},
		{"range spanning stripes 0-1 touches the failed home", 0, 2 * mib, true},
		{"range spanning stripes 2-3 stays clean", 2 * mib, 2 * mib, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := sys.readDegraded(tc.off, tc.n); got != tc.degraded {
				t.Errorf("readDegraded(%d, %d) = %v, want %v", tc.off, tc.n, got, tc.degraded)
			}
		})
	}
}

func TestNoDegradedReadsWhenAllHealthy(t *testing.T) {
	_, sys := newDegradedSystem(t)
	for off := int64(0); off < 8*mib; off += mib {
		if sys.readDegraded(off, mib) {
			t.Fatalf("offset %d degraded with every DBox healthy", off)
		}
	}
}

// timeQLCRead measures one op-level QLC read in isolation.
func timeQLCRead(t *testing.T, sys *System, env *sim.Env, off, n int64) sim.Duration {
	t.Helper()
	var took sim.Duration
	env.Go("read", func(p *sim.Proc) {
		start := p.Now()
		sys.qlcOpRead(p, 1, off, n)
		took = sim.Duration(p.Now() - start)
	})
	env.Run()
	return took
}

func TestDecodePenaltyOnlyOnFailedHome(t *testing.T) {
	env, sys := newDegradedSystem(t)
	sys.FailDBox(1)

	clean := timeQLCRead(t, sys, env, 0, mib)      // stripe 0, healthy home
	degraded := timeQLCRead(t, sys, env, mib, mib) // stripe 1, failed home
	clean2 := timeQLCRead(t, sys, env, 2*mib, mib) // stripe 2, healthy home

	if clean != clean2 {
		t.Fatalf("two clean-stripe reads differ: %v vs %v", clean, clean2)
	}
	if degraded <= clean {
		t.Fatalf("degraded read (%v) not slower than clean read (%v)", degraded, clean)
	}
	// The penalty is decode latency plus 1.5x read amplification; latency
	// alone lower-bounds the delta.
	if delta := degraded - clean; delta < sys.cfg.decodeLatency() {
		t.Errorf("penalty %v smaller than decode latency %v", delta, sys.cfg.decodeLatency())
	}
}

func TestDecodePenaltyPersistsThroughPartialRebuild(t *testing.T) {
	env, sys := newDegradedSystem(t)
	sys.FailDBox(1)
	// 99% rebuilt: capacity is nearly restored, but the stripe still misses
	// its home strip, so reads keep paying the decode until completion.
	sys.SetDBoxRebuild(1, 0.99)

	if !sys.readDegraded(mib, mib) {
		t.Fatal("stripe on a 99%-rebuilt DBox must still read degraded")
	}
	clean := timeQLCRead(t, sys, env, 0, mib)
	degraded := timeQLCRead(t, sys, env, mib, mib)
	if degraded <= clean {
		t.Errorf("partial rebuild removed the decode penalty early: %v vs %v", degraded, clean)
	}
}

func TestDecodePenaltyDisappearsAfterRebuildCompletes(t *testing.T) {
	env, sys := newDegradedSystem(t)
	baseline := timeQLCRead(t, sys, env, mib, mib)

	sys.FailDBox(1)
	sys.SetDBoxRebuild(1, 0.5)
	// Rebuild completion is RecoverDBox — exactly what repair.Manager calls
	// via RecoverUnit when the job's last chunk lands.
	sys.RecoverDBox(1)

	if sys.readDegraded(mib, mib) {
		t.Fatal("stripe still degraded after its DBox rebuild completed")
	}
	after := timeQLCRead(t, sys, env, mib, mib)
	if after != baseline {
		t.Errorf("post-rebuild read %v differs from pre-failure baseline %v", after, baseline)
	}
}
