package cache

import (
	"testing"
	"testing/quick"
)

func newTest(capBlocks int64, readahead int) *Cache {
	return New(Config{BlockSize: 4096, Capacity: capBlocks * 4096, ReadaheadBlocks: readahead})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{BlockSize: 0, Capacity: 4096},
		{BlockSize: 4096, Capacity: 100},
		{BlockSize: 4096, Capacity: 8192, ReadaheadBlocks: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	good := Config{BlockSize: 4096, Capacity: 1 << 20, ReadaheadBlocks: 8}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	c := newTest(16, 0)
	hit, misses := c.Lookup(1, 0, 8192)
	if hit != 0 || len(misses) != 1 || misses[0].Len != 8192 {
		t.Fatalf("cold lookup: hit=%d misses=%v", hit, misses)
	}
	c.Insert(1, 0, 8192, false)
	hit, misses = c.Lookup(1, 0, 8192)
	if hit != 8192 || len(misses) != 0 {
		t.Fatalf("warm lookup: hit=%d misses=%v", hit, misses)
	}
	if r := c.Stats().HitRatio(); r != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", r)
	}
}

func TestPartialHit(t *testing.T) {
	c := newTest(16, 0)
	c.Insert(1, 4096, 4096, false) // middle block resident
	hit, misses := c.Lookup(1, 0, 12288)
	if hit != 4096 {
		t.Fatalf("hit = %d, want 4096", hit)
	}
	if len(misses) != 2 || misses[0].Off != 0 || misses[1].Off != 8192 {
		t.Fatalf("misses = %v", misses)
	}
}

func TestMissCoalescing(t *testing.T) {
	c := newTest(64, 0)
	_, misses := c.Lookup(7, 0, 10*4096)
	if len(misses) != 1 || misses[0].Len != 10*4096 {
		t.Fatalf("contiguous misses not coalesced: %v", misses)
	}
}

func TestSubBlockAccounting(t *testing.T) {
	c := newTest(16, 0)
	c.Insert(1, 0, 4096, false)
	hit, misses := c.Lookup(1, 100, 200) // inside resident block
	if hit != 200 || len(misses) != 0 {
		t.Fatalf("sub-block hit = %d misses=%v", hit, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newTest(4, 0)
	for b := int64(0); b < 4; b++ {
		c.Insert(1, b*4096, 4096, false)
	}
	// touch block 0 so block 1 is LRU
	c.Lookup(1, 0, 4096)
	c.Insert(1, 100*4096, 4096, false) // forces one eviction
	if hit, _ := c.Lookup(1, 0, 4096); hit != 4096 {
		t.Fatal("recently touched block was evicted")
	}
	if hit, _ := c.Lookup(1, 4096, 4096); hit != 0 {
		t.Fatal("LRU block survived eviction")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := newTest(2, 0)
	c.Insert(1, 0, 4096, true)
	c.Insert(1, 4096, 4096, false)
	evicted := c.Insert(1, 8192, 4096, false)
	if len(evicted) != 1 || evicted[0].Off != 0 {
		t.Fatalf("dirty eviction = %v", evicted)
	}
	if c.Stats().DirtyEvictedBytes != 4096 {
		t.Fatalf("dirty evicted bytes = %d", c.Stats().DirtyEvictedBytes)
	}
}

func TestFlushFile(t *testing.T) {
	c := newTest(16, 0)
	c.Insert(1, 0, 3*4096, true)
	c.Insert(2, 0, 4096, true)
	if n := c.FlushFile(1); n != 3*4096 {
		t.Fatalf("flush returned %d, want %d", n, 3*4096)
	}
	if n := c.FlushFile(1); n != 0 {
		t.Fatalf("second flush returned %d, want 0", n)
	}
	if n := c.DirtyBytes(2); n != 4096 {
		t.Fatalf("file 2 dirty = %d", n)
	}
}

func TestInvalidateFile(t *testing.T) {
	c := newTest(16, 0)
	c.Insert(1, 0, 4*4096, false)
	c.Insert(2, 0, 4096, false)
	c.InvalidateFile(1)
	if hit, _ := c.Lookup(1, 0, 4*4096); hit != 0 {
		t.Fatal("invalidated file still resident")
	}
	if hit, _ := c.Lookup(2, 0, 4096); hit != 4096 {
		t.Fatal("other file was invalidated too")
	}
}

func TestReadaheadTriggersOnSequential(t *testing.T) {
	c := newTest(256, 8)
	// Two sequential accesses arm the detector.
	c.Lookup(1, 0, 4096)
	c.Lookup(1, 4096, 4096)
	ra := c.ReadaheadRange(1, 4096, 4096)
	if ra.Len != 8*4096 {
		t.Fatalf("readahead = %v, want 8 blocks", ra)
	}
	if ra.Off != 2*4096 {
		t.Fatalf("readahead starts at %d, want next unread block", ra.Off)
	}
}

func TestReadaheadSilentOnRandom(t *testing.T) {
	c := newTest(256, 8)
	c.Lookup(1, 0, 4096)
	c.Lookup(1, 50*4096, 4096)
	c.Lookup(1, 3*4096, 4096)
	if ra := c.ReadaheadRange(1, 3*4096, 4096); ra.Len != 0 {
		t.Fatalf("random pattern triggered readahead: %v", ra)
	}
}

func TestReadaheadDisabled(t *testing.T) {
	c := newTest(256, 0)
	c.Lookup(1, 0, 4096)
	c.Lookup(1, 4096, 4096)
	if ra := c.ReadaheadRange(1, 4096, 4096); ra.Len != 0 {
		t.Fatal("readahead fired while disabled")
	}
}

func TestReadaheadStopsAtResidentBlock(t *testing.T) {
	c := newTest(256, 8)
	c.Insert(1, 2*4096, 4096, false) // block 2 already resident
	c.Lookup(1, 0, 4096)
	c.Lookup(1, 4096, 4096)
	if ra := c.ReadaheadRange(1, 4096, 4096); ra.Len != 0 {
		t.Fatalf("readahead did not stop at resident block: %v", ra)
	}
}

func TestThrashingRandomWorkingSet(t *testing.T) {
	// Random access over a working set 100x the cache: hit ratio ~1%.
	c := newTest(100, 0)
	fileBlocks := int64(10000)
	seed := uint64(12345)
	for i := 0; i < 20000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		b := int64(seed>>33) % fileBlocks
		_, misses := c.Lookup(1, b*4096, 4096)
		for _, m := range misses {
			c.Insert(m.File, m.Off, m.Len, false)
		}
	}
	if r := c.Stats().HitRatio(); r > 0.05 {
		t.Fatalf("thrash hit ratio = %.3f, want ~0.01", r)
	}
}

// Property: cache never holds more than capacity blocks, and lookup after
// insert of the same range always fully hits.
func TestCapacityAndResidencyProperty(t *testing.T) {
	f := func(ops []struct {
		File uint8
		Blk  uint16
	}) bool {
		c := newTest(32, 0)
		for _, op := range ops {
			off := int64(op.Blk) * 4096
			c.Insert(uint64(op.File), off, 4096, false)
			if int64(c.Len()) > 32 {
				return false
			}
			hit, _ := c.Lookup(uint64(op.File), off, 4096)
			if hit != 4096 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
