// Package cache implements a block-granular LRU page cache with sequential
// readahead detection and write-back dirty tracking. It is the model behind
// every cache in the simulated systems: the OS page cache on compute nodes,
// GPFS's client-side pagepool (whose readahead makes sequential reads fly
// and whose thrashing makes random reads collapse), and the VAST DNode read
// cache.
//
// The cache is pure bookkeeping: it answers "which bytes hit, which ranges
// miss, what got evicted" and the file-system models attach simulated time
// to those outcomes.
package cache

import (
	"fmt"
	"slices"
)

// Range is a half-open byte range [Off, Off+Len) within a file.
type Range struct {
	File uint64
	Off  int64
	Len  int64
}

// String renders "file:off+len".
func (r Range) String() string { return fmt.Sprintf("%d:%d+%d", r.File, r.Off, r.Len) }

// Config parameterizes a cache.
type Config struct {
	// BlockSize is the cache block (page) size in bytes.
	BlockSize int64
	// Capacity is the total cache size in bytes; rounded down to whole
	// blocks.
	Capacity int64
	// ReadaheadBlocks is how many blocks ahead the cache prefetches once a
	// file's access pattern looks sequential. 0 disables readahead.
	ReadaheadBlocks int
}

// Validate reports the first problem with the config.
func (c *Config) Validate() error {
	switch {
	case c.BlockSize <= 0:
		return fmt.Errorf("cache: block size must be positive")
	case c.Capacity < c.BlockSize:
		return fmt.Errorf("cache: capacity %d smaller than one block", c.Capacity)
	case c.ReadaheadBlocks < 0:
		return fmt.Errorf("cache: negative readahead")
	}
	return nil
}

// Stats counts cache outcomes in bytes and operations.
type Stats struct {
	HitBytes   int64
	MissBytes  int64
	Insertions int64
	Evictions  int64
	// DirtyEvictedBytes counts write-back traffic forced by eviction.
	DirtyEvictedBytes int64
}

// HitRatio returns hit bytes over total looked-up bytes (0 when idle).
func (s Stats) HitRatio() float64 {
	total := s.HitBytes + s.MissBytes
	if total == 0 {
		return 0
	}
	return float64(s.HitBytes) / float64(total)
}

type blockKey struct {
	file  uint64
	index int64
}

type entry struct {
	key   blockKey
	dirty bool
	// intrusive LRU list
	prev, next *entry
}

// Cache is the LRU cache. Not safe for concurrent use; in the simulator all
// accesses are serialized by the event loop.
type Cache struct {
	cfg      Config
	capBlk   int64
	blocks   map[blockKey]*entry
	lruHead  *entry // most recently used
	lruTail  *entry // least recently used
	stats    Stats
	nextSeq  map[uint64]int64 // per-file next sequential block index
	seqScore map[uint64]int   // per-file sequential streak length
}

// New returns an empty cache; it panics on an invalid config (configs are
// static model parameters, so this is a programming error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cache{
		cfg:      cfg,
		capBlk:   cfg.Capacity / cfg.BlockSize,
		blocks:   map[blockKey]*entry{},
		nextSeq:  map[uint64]int64{},
		seqScore: map[uint64]int{},
	}
}

// Config returns the cache parameters.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Len returns the number of resident blocks.
func (c *Cache) Len() int { return len(c.blocks) }

// Lookup checks [off, off+size) of file: hit bytes are counted and
// refreshed in LRU order; missing bytes are returned as coalesced ranges
// (block-aligned). It also updates the sequential-pattern detector.
func (c *Cache) Lookup(file uint64, off, size int64) (hitBytes int64, misses []Range) {
	if size <= 0 {
		return 0, nil
	}
	bs := c.cfg.BlockSize
	first := off / bs
	last := (off + size - 1) / bs
	var missStart, missLen int64 = -1, 0
	flush := func() {
		if missStart >= 0 {
			misses = append(misses, Range{File: file, Off: missStart, Len: missLen})
			missStart, missLen = -1, 0
		}
	}
	for b := first; b <= last; b++ {
		// bytes of the request inside this block
		lo := max64(off, b*bs)
		hi := min64(off+size, (b+1)*bs)
		n := hi - lo
		if e, ok := c.blocks[blockKey{file, b}]; ok {
			c.touch(e)
			hitBytes += n
			c.stats.HitBytes += n
			flush()
		} else {
			c.stats.MissBytes += n
			if missStart < 0 {
				missStart = b * bs
				missLen = 0
			}
			missLen += bs
		}
	}
	flush()
	// Sequential detection at block granularity.
	if first == c.nextSeq[file] || c.seqScore[file] == 0 && first == 0 {
		c.seqScore[file]++
	} else if first != c.nextSeq[file] {
		c.seqScore[file] = 0
	}
	c.nextSeq[file] = last + 1
	return hitBytes, misses
}

// ReadaheadRange returns the block range the cache wants prefetched after
// the given access, or a zero-length range when the pattern is not
// sequential (or readahead is disabled). The caller fetches it and calls
// Insert.
func (c *Cache) ReadaheadRange(file uint64, off, size int64) Range {
	if c.cfg.ReadaheadBlocks == 0 || c.seqScore[file] < 2 {
		return Range{}
	}
	bs := c.cfg.BlockSize
	start := c.nextSeq[file] // next unread block
	var missLen int64
	for i := 0; i < c.cfg.ReadaheadBlocks; i++ {
		if _, ok := c.blocks[blockKey{file, start + int64(i)}]; ok {
			break
		}
		missLen += bs
	}
	return Range{File: file, Off: start * bs, Len: missLen}
}

// Insert makes [off, off+size) of file resident (rounded out to blocks),
// marking the blocks dirty when dirty is set. Evicted dirty blocks are
// returned so the caller can charge write-back I/O.
func (c *Cache) Insert(file uint64, off, size int64, dirty bool) (evictedDirty []Range) {
	if size <= 0 {
		return nil
	}
	bs := c.cfg.BlockSize
	first := off / bs
	last := (off + size - 1) / bs
	for b := first; b <= last; b++ {
		key := blockKey{file, b}
		if e, ok := c.blocks[key]; ok {
			e.dirty = e.dirty || dirty
			c.touch(e)
			continue
		}
		c.stats.Insertions++
		e := &entry{key: key, dirty: dirty}
		c.blocks[key] = e
		c.pushFront(e)
		if int64(len(c.blocks)) > c.capBlk {
			if victim := c.evictOne(); victim != nil {
				evictedDirty = append(evictedDirty, *victim)
			}
		}
	}
	return evictedDirty
}

// DirtyBytes returns the number of dirty resident bytes for file (all files
// when file is 0 and zero is not a real file id in the caller's scheme).
func (c *Cache) DirtyBytes(file uint64) int64 {
	var n int64
	for k, e := range c.blocks {
		if e.dirty && (file == 0 || k.file == file) {
			n += c.cfg.BlockSize
		}
	}
	return n
}

// FlushFile clears dirty flags on file's blocks and returns the byte count
// the caller must write back (fsync).
func (c *Cache) FlushFile(file uint64) int64 {
	var n int64
	for _, r := range c.FlushFileRanges(file) {
		n += r.Len
	}
	return n
}

// FlushFileRanges clears dirty flags on file's blocks and returns the
// coalesced dirty ranges in ascending offset order, so the caller can
// write them back preserving sequentiality.
func (c *Cache) FlushFileRanges(file uint64) []Range {
	var idxs []int64
	for k, e := range c.blocks {
		if k.file == file && e.dirty {
			e.dirty = false
			idxs = append(idxs, k.index)
		}
	}
	if len(idxs) == 0 {
		return nil
	}
	sortInt64s(idxs)
	bs := c.cfg.BlockSize
	var out []Range
	start, length := idxs[0], int64(1)
	for _, i := range idxs[1:] {
		if i == start+length {
			length++
			continue
		}
		out = append(out, Range{File: file, Off: start * bs, Len: length * bs})
		start, length = i, 1
	}
	out = append(out, Range{File: file, Off: start * bs, Len: length * bs})
	return out
}

// InvalidateFile drops all of file's blocks (close-to-open NFS semantics,
// or the "read from a different node than wrote" trick in the paper's
// methodology).
func (c *Cache) InvalidateFile(file uint64) {
	for k, e := range c.blocks {
		if k.file == file {
			c.unlink(e)
			delete(c.blocks, k)
		}
	}
	delete(c.nextSeq, file)
	delete(c.seqScore, file)
}

// evictOne removes the LRU block; returns its range if it was dirty.
func (c *Cache) evictOne() *Range {
	e := c.lruTail
	if e == nil {
		return nil
	}
	c.unlink(e)
	delete(c.blocks, e.key)
	c.stats.Evictions++
	if e.dirty {
		c.stats.DirtyEvictedBytes += c.cfg.BlockSize
		return &Range{File: e.key.file, Off: e.key.index * c.cfg.BlockSize, Len: c.cfg.BlockSize}
	}
	return nil
}

func (c *Cache) touch(e *entry) {
	if c.lruHead == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = e
	}
	c.lruHead = e
	if c.lruTail == nil {
		c.lruTail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.lruHead == e {
		c.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.lruTail == e {
		c.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func sortInt64s(xs []int64) { slices.Sort(xs) }
