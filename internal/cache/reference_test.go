package cache

import (
	"testing"

	"storagesim/internal/stats"
)

// refCache is a deliberately naive reference implementation of a
// block-granular LRU: residency via a slice ordered most-recent-first.
// The fuzz below drives both implementations with the same random op
// stream and demands identical residency and dirty state throughout.
type refCache struct {
	cap   int
	bs    int64
	order []blockKey // MRU first
	dirty map[blockKey]bool
}

func newRef(capBlocks int, bs int64) *refCache {
	return &refCache{cap: capBlocks, bs: bs, dirty: map[blockKey]bool{}}
}

func (r *refCache) find(k blockKey) int {
	for i, e := range r.order {
		if e == k {
			return i
		}
	}
	return -1
}

func (r *refCache) touch(k blockKey) bool {
	if i := r.find(k); i >= 0 {
		r.order = append([]blockKey{k}, append(r.order[:i:i], r.order[i+1:]...)...)
		return true
	}
	return false
}

func (r *refCache) insert(k blockKey, dirty bool) {
	if r.touch(k) {
		if dirty {
			r.dirty[k] = true
		}
		return
	}
	r.order = append([]blockKey{k}, r.order...)
	if dirty {
		r.dirty[k] = true
	}
	if len(r.order) > r.cap {
		victim := r.order[len(r.order)-1]
		r.order = r.order[:len(r.order)-1]
		delete(r.dirty, victim)
	}
}

func (r *refCache) resident(k blockKey) bool { return r.find(k) >= 0 }

func TestCacheAgainstReferenceModel(t *testing.T) {
	const capBlocks = 16
	const bs = 4096
	c := New(Config{BlockSize: bs, Capacity: capBlocks * bs})
	ref := newRef(capBlocks, bs)
	rng := stats.NewRNG(0xFACE)

	for op := 0; op < 20000; op++ {
		file := uint64(rng.Intn(3) + 1)
		blk := int64(rng.Intn(40))
		k := blockKey{file, blk}
		switch rng.Intn(4) {
		case 0, 1: // lookup (single block)
			hit, _ := c.Lookup(file, blk*bs, bs)
			wantHit := ref.resident(k)
			if (hit == bs) != wantHit {
				t.Fatalf("op %d: lookup(%v) hit=%v, reference says %v", op, k, hit == bs, wantHit)
			}
			ref.touch(k)
		case 2: // clean insert
			c.Insert(file, blk*bs, bs, false)
			ref.insert(k, false)
		case 3: // dirty insert
			c.Insert(file, blk*bs, bs, true)
			ref.insert(k, true)
		}
		if c.Len() != len(ref.order) {
			t.Fatalf("op %d: resident count %d vs reference %d", op, c.Len(), len(ref.order))
		}
	}

	// Dirty state must agree per file: flush both and compare volumes.
	for file := uint64(1); file <= 3; file++ {
		var refDirty int64
		for k, d := range ref.dirty {
			if d && k.file == file {
				refDirty += bs
			}
		}
		if got := c.FlushFile(file); got != refDirty {
			t.Fatalf("file %d dirty bytes %d, reference %d", file, got, refDirty)
		}
	}
}
