// Package replay projects a recorded DLIO trace onto a different storage
// deployment: it re-executes each rank's compute spans at their recorded
// durations and re-issues each read's bytes against the target file
// system, preserving the trace's dependency structure — a read must
// complete before any compute step that originally started after it ended.
// The result answers the planning question behind the paper's workload/
// file-system mapping: "this job ran on GPFS; what happens on VAST?"
//
// Semantics (conservative-dependency replay, in the tradition of
// Darshan/DFTracer replay tools):
//
//   - Compute spans replay as fixed-duration work in recorded order.
//   - Read spans are dispatched asynchronously when their rank reaches the
//     point in the recorded order where they originally started, and take
//     however long the target system needs.
//   - A compute span waits for every read that originally finished before
//     the compute began (those bytes were its inputs).
//
// Overlap therefore *emerges* from the target system's speed: a faster
// target hides more of the replayed I/O, a slower one stalls the computes
// that depend on it.
package replay

import (
	"fmt"
	"sort"

	"storagesim/internal/fsapi"
	"storagesim/internal/sim"
	"storagesim/internal/trace"
)

// Config parameterizes a replay.
type Config struct {
	// TransferBytes is the I/O size used to re-issue reads (the trace
	// records bytes, not op sizes).
	TransferBytes int64
	// Dir prefixes the synthetic dataset the reads hit.
	Dir string
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.TransferBytes <= 0 {
		out.TransferBytes = 1 << 20
	}
	if out.Dir == "" {
		out.Dir = "/replay"
	}
	return out
}

// Result is the outcome of a replay.
type Result struct {
	// Analysis is the overlap decomposition of the replayed run.
	Analysis trace.Analysis
	// Runtime is the replayed end-to-end time.
	Runtime sim.Duration
	// OriginalRuntime is the recorded trace's span (first start to last
	// end), for comparison.
	OriginalRuntime sim.Duration
	// Speedup is OriginalRuntime / Runtime (>1 = target is faster).
	Speedup float64
}

// String summarizes the result.
func (r Result) String() string {
	return fmt.Sprintf("replayed %v (original %v, speedup %.2fx): %s",
		r.Runtime, r.OriginalRuntime, r.Speedup, r.Analysis)
}

// Run replays spans against the mounts. Ranks map onto mounts round-robin
// (rank r runs on mounts[r % len(mounts)]). The replayed spans are
// recorded into rec.
func Run(env *sim.Env, mounts []fsapi.Client, spans []trace.Span, cfg Config, rec *trace.Recorder) (Result, error) {
	if len(mounts) == 0 {
		return Result{}, fmt.Errorf("replay: need at least one mount")
	}
	if len(spans) == 0 {
		return Result{}, fmt.Errorf("replay: empty trace")
	}
	cfg = cfg.withDefaults()

	perRank := map[int][]trace.Span{}
	var origStart, origEnd sim.Time
	origStart = spans[0].Start
	for _, s := range spans {
		perRank[s.Rank] = append(perRank[s.Rank], s)
		if s.Start < origStart {
			origStart = s.Start
		}
		if s.End > origEnd {
			origEnd = s.End
		}
	}
	ranks := make([]int, 0, len(perRank))
	for r := range perRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	// Synthetic dataset: one file per rank, sized to its largest read.
	var maxBytes int64 = 1
	for _, s := range spans {
		if s.Kind != trace.Compute && s.Bytes > maxBytes {
			maxBytes = s.Bytes
		}
	}

	var end sim.Time
	wg := sim.NewWaitGroup(env)
	for _, r := range ranks {
		r := r
		cl := mounts[r%len(mounts)]
		wg.Go(fmt.Sprintf("replay-r%d", r), func(p *sim.Proc) {
			replayRank(p, cl, cfg, rec, r, perRank[r], maxBytes)
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	env.Run()

	res := Result{
		Analysis:        trace.Analyze(rec.Spans()),
		Runtime:         sim.Duration(end),
		OriginalRuntime: origEnd.Sub(origStart),
	}
	if res.Runtime > 0 {
		res.Speedup = res.OriginalRuntime.Seconds() / res.Runtime.Seconds()
	}
	return res, nil
}

// replayRank re-executes one rank's spans on two lanes, the way a DLIO
// data loader runs: an I/O lane re-issues the recorded reads back to back
// (the prefetch pipeline), and the compute lane replays the recorded steps
// with input barriers — a compute waits for every read that originally
// finished before it began.
func replayRank(p *sim.Proc, cl fsapi.Client, cfg Config, rec *trace.Recorder, rank int, spans []trace.Span, fileBytes int64) {
	env := p.Env()
	sort.Slice(spans, func(a, b int) bool {
		if spans[a].Start != spans[b].Start {
			return spans[a].Start < spans[b].Start
		}
		return spans[a].End < spans[b].End
	})
	path := fmt.Sprintf("%s/rank%05d.data", cfg.Dir, rank)
	cl.StreamWrite(p, path, fsapi.Sequential, cfg.TransferBytes, fileBytes)
	cl.DropCaches()

	type ioItem struct {
		span trace.Span
		done *sim.Event
	}
	var ios []ioItem
	var computes []trace.Span
	for _, s := range spans {
		if s.Kind == trace.Compute {
			computes = append(computes, s)
		} else {
			ios = append(ios, ioItem{span: s, done: sim.NewEvent(env)})
		}
	}

	// I/O lane: the prefetch pipeline, issuing recorded transfers in order
	// as fast as the target system serves them.
	lanes := sim.NewWaitGroup(env)
	lanes.Go(fmt.Sprintf("replay-r%d-io", rank), func(p *sim.Proc) {
		for _, it := range ios {
			start := p.Now()
			if it.span.Kind == trace.Write {
				cl.StreamWrite(p, path, fsapi.Sequential, cfg.TransferBytes, it.span.Bytes)
			} else {
				cl.StreamRead(p, path, fsapi.Sequential, cfg.TransferBytes, it.span.Bytes)
			}
			rec.Record(rank, it.span.Kind, start, p.Now(), it.span.Bytes)
			it.done.Fire()
		}
	})

	// Compute lane: recorded steps with conservative input dependencies.
	lanes.Go(fmt.Sprintf("replay-r%d-compute", rank), func(p *sim.Proc) {
		next := 0
		for _, c := range computes {
			for next < len(ios) && ios[next].span.End <= c.Start {
				ios[next].done.Wait(p)
				next++
			}
			start := p.Now()
			p.Sleep(c.Duration())
			rec.Record(rank, trace.Compute, start, p.Now(), 0)
		}
	})
	lanes.Wait(p)
}
