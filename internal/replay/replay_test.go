package replay

import (
	"testing"
	"time"

	"storagesim/internal/cluster"
	"storagesim/internal/fsapi"
	"storagesim/internal/sim"
	"storagesim/internal/trace"
)

func ms(x int64) sim.Time { return sim.Time(x * int64(time.Millisecond)) }

// syntheticTrace builds a 2-rank trace: per rank, alternating 100MB reads
// and 50ms computes where each compute depends on the preceding read.
func syntheticTrace() []trace.Span {
	var spans []trace.Span
	for rank := 0; rank < 2; rank++ {
		t := int64(0)
		for step := 0; step < 4; step++ {
			spans = append(spans, trace.Span{
				Rank: rank, Kind: trace.Read,
				Start: ms(t), End: ms(t + 20), Bytes: 100e6,
			})
			spans = append(spans, trace.Span{
				Rank: rank, Kind: trace.Compute,
				Start: ms(t + 20), End: ms(t + 70),
			})
			t += 70
		}
	}
	return spans
}

// fixedClient serves streams at a fixed bandwidth.
type fixedClient struct {
	ns   *fsapi.Namespace
	fab  *sim.Fabric
	pipe *sim.Pipe
}

func newFixed(env *sim.Env, bw float64) *fixedClient {
	fab := sim.NewFabric(env)
	return &fixedClient{ns: fsapi.NewNamespace(), fab: fab, pipe: fab.NewPipe("p", bw, 0)}
}

func (c *fixedClient) FSName() string                  { return "fixed" }
func (c *fixedClient) NodeName() string                { return "n0" }
func (c *fixedClient) DropCaches()                     {}
func (c *fixedClient) Remove(p *sim.Proc, path string) { c.ns.Remove(path) }
func (c *fixedClient) Open(p *sim.Proc, path string, truncate bool) fsapi.File {
	panic("replay uses streams only")
}
func (c *fixedClient) StreamWrite(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	ino := c.ns.Create(path, false)
	c.ns.Extend(ino, 0, total)
	c.fab.Transfer(p, []*sim.Pipe{c.pipe}, float64(total), 0)
}
func (c *fixedClient) StreamRead(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	c.fab.Transfer(p, []*sim.Pipe{c.pipe}, float64(total), 0)
}

func runReplay(t *testing.T, bw float64) Result {
	t.Helper()
	env := sim.NewEnv()
	cl := newFixed(env, bw)
	rec := trace.NewRecorder()
	res, err := Run(env, []fsapi.Client{cl}, syntheticTrace(), Config{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReplayErrors(t *testing.T) {
	env := sim.NewEnv()
	if _, err := Run(env, nil, syntheticTrace(), Config{}, trace.NewRecorder()); err == nil {
		t.Fatal("no mounts accepted")
	}
	cl := newFixed(env, 1e9)
	if _, err := Run(env, []fsapi.Client{cl}, nil, Config{}, trace.NewRecorder()); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestFastTargetHidesIO(t *testing.T) {
	// 100MB reads at 100 GB/s take 1ms against 50ms computes: runtime
	// approaches pure compute (4 x 50ms + first read) per rank.
	res := runReplay(t, 100e9)
	if res.Runtime > 250*time.Millisecond {
		t.Fatalf("fast target runtime %v, want ~200ms of compute", res.Runtime)
	}
	if res.Analysis.HiddenFraction() < 0.5 {
		t.Fatalf("fast target hid only %.0f%% of I/O", 100*res.Analysis.HiddenFraction())
	}
}

func TestSlowTargetStalls(t *testing.T) {
	// 100MB reads at 500 MB/s take 200ms each: the computes stall on their
	// inputs and runtime inflates well beyond the original 280ms.
	res := runReplay(t, 0.5e9)
	if res.Runtime < 500*time.Millisecond {
		t.Fatalf("slow target runtime %v, want >500ms", res.Runtime)
	}
	if res.Speedup >= 1 {
		t.Fatalf("slow target reported speedup %.2f", res.Speedup)
	}
}

func TestSpeedupOrdering(t *testing.T) {
	fast, slow := runReplay(t, 100e9), runReplay(t, 0.5e9)
	if fast.Speedup <= slow.Speedup {
		t.Fatalf("speedups not ordered: fast %.2f, slow %.2f", fast.Speedup, slow.Speedup)
	}
	if fast.OriginalRuntime != slow.OriginalRuntime {
		t.Fatal("original runtime must not depend on the target")
	}
}

func TestDependencyBarrier(t *testing.T) {
	// A compute whose input read is slow must not start early: with one
	// read (200ms on the slow target) feeding one compute, the compute's
	// recorded start must be after the read completes.
	env := sim.NewEnv()
	cl := newFixed(env, 0.5e9) // 100MB -> 200ms
	rec := trace.NewRecorder()
	spans := []trace.Span{
		{Rank: 0, Kind: trace.Read, Start: ms(0), End: ms(10), Bytes: 100e6},
		{Rank: 0, Kind: trace.Compute, Start: ms(10), End: ms(60)},
	}
	if _, err := Run(env, []fsapi.Client{cl}, spans, Config{}, rec); err != nil {
		t.Fatal(err)
	}
	var readEnd, computeStart sim.Time
	for _, s := range rec.Spans() {
		switch s.Kind {
		case trace.Read:
			readEnd = s.End
		case trace.Compute:
			computeStart = s.Start
		}
	}
	if computeStart < readEnd {
		t.Fatalf("compute started at %v before its input finished at %v", computeStart, readEnd)
	}
}

func TestReplayOnRealDeployments(t *testing.T) {
	// End to end: the same trace projected onto GPFS must beat the VAST
	// TCP deployment (more read bandwidth per node).
	project := func(fs string) Result {
		env := sim.NewEnv()
		fab := sim.NewFabric(env)
		cl := cluster.MustNew(env, fab, cluster.LassenSpec(), 1)
		var m fsapi.Client
		if fs == "gpfs" {
			m = cluster.GPFSOnLassen(cl).Mount(cl.Node(0).Name, cl.Node(0).NIC)
		} else {
			m = cluster.VASTOnLassen(cl).Mount(cl.Node(0).Name, cl.Node(0).NIC)
		}
		rec := trace.NewRecorder()
		// heavier reads so the deployments separate
		var spans []trace.Span
		for step := int64(0); step < 4; step++ {
			spans = append(spans,
				trace.Span{Rank: 0, Kind: trace.Read, Start: ms(step * 100), End: ms(step*100 + 50), Bytes: 2e9},
				trace.Span{Rank: 0, Kind: trace.Compute, Start: ms(step*100 + 50), End: ms(step*100 + 100)},
			)
		}
		res, err := Run(env, []fsapi.Client{m}, spans, Config{}, rec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gpfs, vast := project("gpfs"), project("vast")
	if gpfs.Runtime >= vast.Runtime {
		t.Fatalf("GPFS replay (%v) not faster than VAST/TCP (%v)", gpfs.Runtime, vast.Runtime)
	}
}
