// Package fsapi defines the POSIX-flavoured client interface every
// simulated storage system (VAST, GPFS, Lustre, node-local NVMe) exposes
// and the IOR and DLIO engines program against.
//
// Two levels of interaction mirror the two experiment families in the
// paper:
//
//   - Op level: Open/ReadAt/WriteAt/Fsync/Close with per-operation latency,
//     used by the single-node fsync tests and the DLIO sample pipeline.
//   - Flow level: StreamRead/StreamWrite move a whole phase's bytes as one
//     fair-shared flow, used by the large IOR scalability sweeps where the
//     paper sizes I/O to defeat caches.
package fsapi

import (
	"fmt"

	"storagesim/internal/device"
	"storagesim/internal/sim"
)

// Access re-exports the device package's pattern type for convenience.
type Access = device.Access

// Pattern constants.
const (
	Sequential = device.Sequential
	Random     = device.Random
)

// Client is a per-compute-node mount of a file system.
type Client interface {
	// FSName identifies the file system ("vast", "gpfs", ...).
	FSName() string
	// NodeName identifies the compute node this mount belongs to.
	NodeName() string

	// Open returns a handle to path, creating the file if needed and
	// truncating it when truncate is set.
	Open(p *sim.Proc, path string, truncate bool) File

	// StreamWrite writes total bytes to path as one flow with the given
	// spatial pattern and per-op transfer size.
	StreamWrite(p *sim.Proc, path string, a Access, ioSize, total int64)
	// StreamRead reads total bytes from path likewise.
	StreamRead(p *sim.Proc, path string, a Access, ioSize, total int64)

	// Remove unlinks path (a metadata round trip); removing a missing path
	// is a no-op, like rm -f.
	Remove(p *sim.Proc, path string)

	// DropCaches invalidates client-side caches — the simulator's handle on
	// the paper's "a different client read the requests than the one who
	// generated the writes" methodology.
	DropCaches()
}

// Aborted reports whether the calling process carries a fired cancellation
// token (sim.Abort) — the abortable-op convention of the client resilience
// layer. Every Client method is a best-effort cancellation region: a
// request coordinator attaches a token to the serving process, and
// implementations check Aborted at their stage boundaries (between RPC,
// staging, device and migration phases; between the ops of a multi-op
// stream; after every retry-backoff round) and return early without
// completing the remaining work. In-flight fabric transfers are cancelled
// immediately by the kernel (sim.Fabric.Transfer registers the flow on the
// token), so the dominant blocking state unwinds without waiting for a
// stage boundary. Work already performed stays performed and stays billed —
// an aborted request wasted real bandwidth, which is what the retry-storm
// studies measure. Operations on processes without a token never abort.
func Aborted(p *sim.Proc) bool { return p.Aborted() }

// FlowTagger is implemented by mounts that can attribute their fabric
// traffic to a tenant. A tagged mount stamps the tag onto the calling
// process at the entry of every data-path operation, so all bytes it moves
// are accounted under Fabric.TagBytes(tag) and form per-tenant fair-share
// classes. The multi-tenant traffic engine mints one tagged mount per
// tenant×node; untagged mounts behave exactly as before.
type FlowTagger interface {
	// SetFlowTag sets the mount's attribution tag ("" = untagged).
	SetFlowTag(tag string)
}

// File is an open handle.
type File interface {
	// Path returns the file's path.
	Path() string
	// Size returns the current file size in bytes.
	Size() int64
	// WriteAt writes n bytes at offset off (data content is not modeled).
	WriteAt(p *sim.Proc, off, n int64)
	// ReadAt reads n bytes at offset off.
	ReadAt(p *sim.Proc, off, n int64)
	// Fsync flushes all buffered dirty data for this file to the storage
	// system's durable commit point.
	Fsync(p *sim.Proc)
	// Close releases the handle (close-to-open consistency models may
	// flush or invalidate here).
	Close(p *sim.Proc)
}

// Inode is the shared metadata record of one file in a Namespace.
type Inode struct {
	ID   uint64
	Path string
	Size int64
}

// Namespace is the server-side file table shared by all clients of one file
// system instance.
type Namespace struct {
	byPath map[string]*Inode
	byID   map[uint64]*Inode
	nextID uint64
}

// NewNamespace returns an empty namespace. IDs start at 1 so that 0 can
// mean "no file" in cache bookkeeping.
func NewNamespace() *Namespace {
	return &Namespace{byPath: map[string]*Inode{}, byID: map[uint64]*Inode{}, nextID: 1}
}

// Lookup returns the inode for path, or nil.
func (ns *Namespace) Lookup(path string) *Inode { return ns.byPath[path] }

// ByID returns the inode with the given id, or nil.
func (ns *Namespace) ByID(id uint64) *Inode { return ns.byID[id] }

// Create returns the inode for path, creating it on first use and
// truncating when requested.
func (ns *Namespace) Create(path string, truncate bool) *Inode {
	ino, ok := ns.byPath[path]
	if !ok {
		ino = &Inode{ID: ns.nextID, Path: path}
		ns.nextID++
		ns.byPath[path] = ino
		ns.byID[ino.ID] = ino
	}
	if truncate {
		ino.Size = 0
	}
	return ino
}

// Extend grows the inode to cover [off, off+n).
func (ns *Namespace) Extend(ino *Inode, off, n int64) {
	if end := off + n; end > ino.Size {
		ino.Size = end
	}
}

// Remove unlinks path, returning the removed inode (nil when absent).
func (ns *Namespace) Remove(path string) *Inode {
	ino, ok := ns.byPath[path]
	if !ok {
		return nil
	}
	delete(ns.byPath, path)
	delete(ns.byID, ino.ID)
	return ino
}

// Len returns the number of files.
func (ns *Namespace) Len() int { return len(ns.byPath) }

// TotalBytes sums every file's size — the live data a redundancy scheme
// must reconstruct after a unit loss. The map iteration order is
// irrelevant: integer addition commutes, so the sum is deterministic.
func (ns *Namespace) TotalBytes() int64 {
	var total int64
	for _, ino := range ns.byPath {
		total += ino.Size
	}
	return total
}

// ValidateRead panics when a read exceeds the file size: benchmarks always
// read what they (or a peer) wrote, so an overrun is a harness bug.
func ValidateRead(ino *Inode, off, n int64) {
	if off < 0 || n < 0 || off+n > ino.Size {
		panic(fmt.Sprintf("fsapi: read [%d,+%d) beyond EOF %d of %s", off, n, ino.Size, ino.Path))
	}
}
