package fsapi

import (
	"testing"
	"testing/quick"
)

func TestNamespaceCreateAndLookup(t *testing.T) {
	ns := NewNamespace()
	if ns.Lookup("/a") != nil {
		t.Fatal("lookup of missing path succeeded")
	}
	a := ns.Create("/a", false)
	if a == nil || a.ID == 0 {
		t.Fatalf("create returned %+v (IDs must start at 1)", a)
	}
	if got := ns.Lookup("/a"); got != a {
		t.Fatal("lookup returned a different inode")
	}
	if got := ns.ByID(a.ID); got != a {
		t.Fatal("ByID returned a different inode")
	}
	if ns.Len() != 1 {
		t.Fatalf("len = %d", ns.Len())
	}
}

func TestCreateIsIdempotent(t *testing.T) {
	ns := NewNamespace()
	a := ns.Create("/a", false)
	b := ns.Create("/a", false)
	if a != b {
		t.Fatal("second create made a new inode")
	}
}

func TestTruncateResetsSize(t *testing.T) {
	ns := NewNamespace()
	a := ns.Create("/a", false)
	ns.Extend(a, 0, 100)
	if a.Size != 100 {
		t.Fatalf("size = %d", a.Size)
	}
	ns.Create("/a", true)
	if a.Size != 0 {
		t.Fatalf("size after truncate = %d", a.Size)
	}
}

func TestExtendOnlyGrows(t *testing.T) {
	ns := NewNamespace()
	a := ns.Create("/a", false)
	ns.Extend(a, 0, 100)
	ns.Extend(a, 10, 20) // interior write: no growth
	if a.Size != 100 {
		t.Fatalf("interior write changed size to %d", a.Size)
	}
	ns.Extend(a, 90, 20)
	if a.Size != 110 {
		t.Fatalf("extending write gave size %d", a.Size)
	}
}

func TestValidateRead(t *testing.T) {
	ns := NewNamespace()
	a := ns.Create("/a", false)
	ns.Extend(a, 0, 100)
	ValidateRead(a, 0, 100) // ok
	ValidateRead(a, 50, 50) // ok
	for _, c := range []struct{ off, n int64 }{{0, 101}, {100, 1}, {-1, 10}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ValidateRead(%d, %d) did not panic", c.off, c.n)
				}
			}()
			ValidateRead(a, c.off, c.n)
		}()
	}
}

// Property: distinct paths always get distinct IDs, and ByID inverts
// Create.
func TestNamespaceIDProperty(t *testing.T) {
	f := func(paths []string) bool {
		ns := NewNamespace()
		seen := map[uint64]string{}
		for _, p := range paths {
			ino := ns.Create(p, false)
			if prev, ok := seen[ino.ID]; ok && prev != p {
				return false // ID collision across different paths
			}
			seen[ino.ID] = p
			if ns.ByID(ino.ID) != ino {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
