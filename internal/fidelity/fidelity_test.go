package fidelity

import (
	"math"
	"strings"
	"testing"

	"storagesim/internal/sim"
	"storagesim/internal/trace"
	"storagesim/internal/traffic"
)

// TestAuditBands pins the pass/fail decision of one metric against its
// relative bound and absolute floor — the core of the whole harness.
func TestAuditBands(t *testing.T) {
	cases := []struct {
		name                string
		recorded, simulated float64
		relTol, absTol      float64
		wantRel             float64
		wantPass            bool
	}{
		{"exact match", 100, 100, 0.02, 0, 0, true},
		{"inside rel band", 100, 101.9, 0.02, 0, 0.019, true},
		{"at rel band", 100, 102, 0.02, 0, 0.02, true},
		{"outside rel band", 100, 103, 0.02, 0, 0.03, false},
		{"abs floor saves tiny values", 1e-6, 2e-6, 0.02, 1e-4, 1, true},
		{"abs floor exceeded", 1e-6, 2e-3, 0.02, 1e-4, 1999, false},
		{"both zero", 0, 0, 0.02, 0, 0, true},
		{"recorded zero", 0, 5, 0.02, 0, math.Inf(1), false},
		{"recorded zero but abs ok", 0, 5, 0.02, 10, math.Inf(1), true},
		{"negative error symmetric", 100, 97, 0.02, 0, 0.03, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r Report
			r.audit("t", "m", "u", tc.recorded, tc.simulated, tc.relTol, tc.absTol)
			m := r.Metrics[0]
			if math.Abs(m.RelErr-tc.wantRel) > 1e-12 && !(math.IsInf(tc.wantRel, 1) && math.IsInf(m.RelErr, 1)) {
				t.Errorf("RelErr = %g, want %g", m.RelErr, tc.wantRel)
			}
			if m.Pass != tc.wantPass {
				t.Errorf("Pass = %v, want %v", m.Pass, tc.wantPass)
			}
			if gotFailed := r.Failed; gotFailed != b2i(!tc.wantPass) {
				t.Errorf("Failed = %d, want %d", gotFailed, b2i(!tc.wantPass))
			}
		})
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestToleranceDefaults(t *testing.T) {
	d := Tolerance{}.withDefaults()
	if d.LatencyRel != 0.02 || d.LatencyAbs != 100*sim.Microsecond || d.GoodputRel != 0.05 || d.CountRel != 0 {
		t.Errorf("unexpected defaults: %+v", d)
	}
	custom := Tolerance{LatencyRel: 0.5, LatencyAbs: sim.Millisecond, GoodputRel: 0.3, CountRel: 0.1}
	if got := custom.withDefaults(); got != custom {
		t.Errorf("withDefaults overwrote explicit values: %+v", got)
	}
}

// fixtureTrace builds a two-tenant trace with known latencies and sizes.
func fixtureTrace(t *testing.T) *trace.Trace {
	t.Helper()
	var events []trace.Event
	for i := 0; i < 100; i++ {
		events = append(events, trace.Event{
			At:      sim.Time(i) * sim.Time(sim.Millisecond),
			Tenant:  "w",
			Op:      trace.OpWrite,
			Bytes:   1 << 20,
			Latency: 5 * sim.Millisecond,
		})
		events = append(events, trace.Event{
			At:      sim.Time(i) * sim.Time(sim.Millisecond),
			Tenant:  "m",
			Op:      trace.OpMeta,
			Latency: 2 * sim.Millisecond,
		})
	}
	tr, err := trace.Normalize(events)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	return tr
}

func TestRecorded(t *testing.T) {
	tr := fixtureTrace(t)
	recs := Recorded(tr, 0)
	if len(recs) != 2 {
		t.Fatalf("got %d tenant records, want 2", len(recs))
	}
	// Sorted by name: m before w.
	m, w := recs[0], recs[1]
	if m.Name != "m" || w.Name != "w" {
		t.Fatalf("order = %q, %q; want m, w", m.Name, w.Name)
	}
	if w.Completed != 100 || w.Bytes != 100<<20 {
		t.Errorf("w: completed=%d bytes=%d", w.Completed, w.Bytes)
	}
	if m.Completed != 100 || m.Bytes != 0 {
		t.Errorf("m: completed=%d bytes=%d", m.Completed, m.Bytes)
	}
	if !w.HasLatencies || !m.HasLatencies {
		t.Errorf("HasLatencies: w=%v m=%v", w.HasLatencies, m.HasLatencies)
	}
	// All w latencies are 5ms, so every percentile estimate must sit
	// within the sketch's relative error of 5ms.
	for _, p := range []sim.Duration{w.P50, w.P95, w.P99} {
		rel := math.Abs(p.Seconds()-0.005) / 0.005
		if rel > 0.02 {
			t.Errorf("w percentile %v off 5ms by %.1f%%", p, 100*rel)
		}
	}
	// Makespan: first issue t=0, last completion 99ms+5ms.
	if want := 104 * sim.Millisecond; w.Makespan != want {
		t.Errorf("w makespan = %v, want %v", w.Makespan, want)
	}
	if w.GoodputBps() <= 0 {
		t.Errorf("w goodput = %v, want > 0", w.GoodputBps())
	}
	if (&TenantRecord{}).GoodputBps() != 0 {
		t.Error("empty record goodput must be 0")
	}
}

func TestAuditTenantMismatch(t *testing.T) {
	tr := fixtureTrace(t)
	// Replay report with only one tenant: count mismatch is a harness
	// error, not a failing metric.
	rep := traffic.Report{
		Duration: 104 * sim.Millisecond,
		Tenants:  []traffic.TenantReport{{Name: "w"}},
	}
	if _, err := Audit(tr, rep, Tolerance{}, 0); err == nil {
		t.Fatal("Audit accepted a replay missing a tenant")
	}
	// Same count, wrong name.
	rep.Tenants = []traffic.TenantReport{{Name: "w"}, {Name: "ghost"}}
	if _, err := Audit(tr, rep, Tolerance{}, 0); err == nil {
		t.Fatal("Audit accepted a replay with a renamed tenant")
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	var r Report
	r.audit("w", "p50", "s", 0.005, 0.005, 0.02, 1e-4)
	r.audit("w", "goodput", "B/s", 1e9, 1.2e9, 0.05, 0)
	r.audit("w", "completed", "requests", 100, 100, 0, 0.5)
	r.audit("z", "p99", "s", 0, 1, 0.02, 0)
	first := r.String()
	if second := r.String(); second != first {
		t.Fatal("String() not deterministic across calls")
	}
	for _, want := range []string{
		"tenant", "PASS", "FAIL", "inf",
		"fidelity: 2/4 metrics in band: FAIL",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("report missing %q:\n%s", want, first)
		}
	}
	if r.Passed() {
		t.Error("Passed() = true with failing metrics")
	}
}

func TestReportJSON(t *testing.T) {
	var r Report
	r.audit("w", "p50", "s", 0.005, 0.005, 0.02, 1e-4)
	r.audit("z", "p99", "s", 0, 1, 0.02, 0) // +Inf RelErr must marshal
	b, err := r.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	s := string(b)
	for _, want := range []string{`"passed":false`, `"failed":1`, `"rel_err":-1`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q: %s", want, s)
		}
	}
}
