// Package fidelity holds the simulator to measured reality. A recorded
// trace carries two things: a request stream and the latencies the real
// system delivered. The traffic engine replays the stream against the
// model (traffic.ReplayTrace, recorded latencies ignored); this package
// then compares what the model produced against what was measured —
// per-tenant goodput, completion counts and p50/p95/p99 latency — and
// emits a per-metric error-band report: absolute error, relative error,
// pass/fail against configurable tolerances. Unlike the golden tests
// (which pin the model to *itself*), a fidelity audit pins the model to a
// recording, so every future model change is checked against reality
// rather than against yesterday's model.
//
// Error bands, not exact matches: the recorded and simulated percentile
// estimates each come out of a DDSketch with relative error alpha
// (stats.Sketch, default 1%), so even a perfect model can disagree by up
// to ~2·alpha on a percentile. The default tolerances are set just above
// that floor; anything beyond it is genuine model error.
package fidelity

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"storagesim/internal/sim"
	"storagesim/internal/stats"
	"storagesim/internal/trace"
	"storagesim/internal/traffic"
)

// Tolerance bounds the acceptable error per metric family. A metric passes
// when its relative error is at or under the family's relative bound, or
// its absolute error is at or under the family's absolute floor (the floor
// keeps microsecond-scale latencies from failing on nanosecond noise).
type Tolerance struct {
	// LatencyRel bounds the relative error of p50/p95/p99 (default 0.02 —
	// twice the sketch's 1% bound, the documented floor).
	LatencyRel float64
	// LatencyAbs is the absolute latency slack (default 100µs).
	LatencyAbs sim.Duration
	// GoodputRel bounds the relative error of per-tenant goodput
	// (default 0.05).
	GoodputRel float64
	// CountRel bounds the relative error of completed-request counts
	// (default 0 — replaying the recorded stream must complete exactly the
	// recorded requests).
	CountRel float64
}

// withDefaults fills unset fields.
func (t Tolerance) withDefaults() Tolerance {
	if t.LatencyRel == 0 {
		t.LatencyRel = 0.02
	}
	if t.LatencyAbs == 0 {
		t.LatencyAbs = 100 * sim.Microsecond
	}
	if t.GoodputRel == 0 {
		t.GoodputRel = 0.05
	}
	return t
}

// Metric is one audited quantity of one tenant.
type Metric struct {
	// Tenant names the traffic class; Name the metric ("p50", "p95",
	// "p99", "goodput", "completed").
	Tenant, Name string
	// Recorded and Simulated are the compared values, in Unit.
	Recorded, Simulated float64
	// Unit is "s", "B/s" or "requests".
	Unit string
	// AbsErr is |Simulated-Recorded| in Unit; RelErr is AbsErr/Recorded
	// (0 when both are zero, +Inf when only the recording is zero).
	AbsErr, RelErr float64
	// Tol is the relative tolerance the metric was held to; Pass reports
	// whether it held.
	Tol  float64
	Pass bool
}

// Report is a full audit: every metric of every tenant, recorded order by
// (tenant, metric family).
type Report struct {
	Metrics []Metric
	// Failed counts metrics out of tolerance.
	Failed int
}

// Passed reports whether every metric held its error band.
func (r *Report) Passed() bool { return r.Failed == 0 }

// audit computes one metric's error against its bounds and appends it.
func (r *Report) audit(tenant, name, unit string, recorded, simulated, relTol, absTol float64) {
	m := Metric{
		Tenant: tenant, Name: name, Unit: unit,
		Recorded: recorded, Simulated: simulated,
		AbsErr: math.Abs(simulated - recorded),
		Tol:    relTol,
	}
	switch {
	case recorded == 0 && simulated == 0:
		m.RelErr = 0
	case recorded == 0:
		m.RelErr = math.Inf(1)
	default:
		m.RelErr = m.AbsErr / math.Abs(recorded)
	}
	m.Pass = m.RelErr <= relTol || m.AbsErr <= absTol
	if !m.Pass {
		r.Failed++
	}
	r.Metrics = append(r.Metrics, m)
}

// TenantRecord is the measured reality of one tenant, distilled from its
// recorded events.
type TenantRecord struct {
	Name string
	// Completed counts recorded requests; Bytes their data payload.
	Completed uint64
	Bytes     int64
	// Makespan spans the tenant's first issue to its last recorded
	// completion.
	Makespan sim.Duration
	// P50/P95/P99 are sketch-estimated percentiles of the recorded
	// latencies (same sketch, same alpha as the replay side, so both
	// estimates carry the same error bound).
	P50, P95, P99 sim.Duration
	// HasLatencies reports whether every event carried a recorded latency;
	// without them only goodput and counts are auditable.
	HasLatencies bool
}

// GoodputBps returns the tenant's recorded delivered bandwidth over its
// makespan.
func (t *TenantRecord) GoodputBps() float64 {
	if t.Makespan <= 0 {
		return 0
	}
	return float64(t.Bytes) / t.Makespan.Seconds()
}

// Recorded distills per-tenant measured metrics from a normalized trace.
// alpha is the sketch error bound (0 = stats.DefaultSketchAlpha).
func Recorded(tr *trace.Trace, alpha float64) []TenantRecord {
	byName := map[string]*TenantRecord{}
	sketches := map[string]*stats.Sketch{}
	starts := map[string]sim.Time{}
	ends := map[string]sim.Time{}
	var order []string
	for _, ev := range tr.Events {
		rec := byName[ev.Tenant]
		if rec == nil {
			rec = &TenantRecord{Name: ev.Tenant, HasLatencies: true}
			byName[ev.Tenant] = rec
			sketches[ev.Tenant] = stats.NewSketch(alpha)
			starts[ev.Tenant] = ev.At
			order = append(order, ev.Tenant)
		}
		rec.Completed++
		rec.Bytes += ev.Bytes
		if ev.At < starts[ev.Tenant] {
			starts[ev.Tenant] = ev.At
		}
		if c := ev.At.Add(ev.Latency); c > ends[ev.Tenant] {
			ends[ev.Tenant] = c
		}
		if ev.Latency > 0 {
			sketches[ev.Tenant].Add(ev.Latency.Seconds())
		} else {
			rec.HasLatencies = false
		}
	}
	sort.Strings(order)
	out := make([]TenantRecord, 0, len(order))
	for _, name := range order {
		rec := byName[name]
		rec.Makespan = ends[name].Sub(starts[name])
		sk := sketches[name]
		rec.P50 = quantileDur(sk, 50)
		rec.P95 = quantileDur(sk, 95)
		rec.P99 = quantileDur(sk, 99)
		out = append(out, *rec)
	}
	return out
}

func quantileDur(s *stats.Sketch, p float64) sim.Duration {
	q := s.Quantile(p)
	if math.IsNaN(q) {
		return 0
	}
	return sim.Duration(q * 1e9)
}

// Audit compares a replay report against the trace's recorded metrics.
// alpha must match the replay's sketch alpha so both percentile estimates
// share one error bound. Tenants absent from either side fail loudly: a
// replay that lost a tenant is not a model error, it is a harness bug.
func Audit(tr *trace.Trace, rep traffic.Report, tol Tolerance, alpha float64) (*Report, error) {
	tol = tol.withDefaults()
	recorded := Recorded(tr, alpha)
	simulated := map[string]*traffic.TenantReport{}
	for i := range rep.Tenants {
		simulated[rep.Tenants[i].Name] = &rep.Tenants[i]
	}
	if len(simulated) != len(recorded) {
		return nil, fmt.Errorf("fidelity: replay reports %d tenants, trace records %d", len(simulated), len(recorded))
	}
	out := &Report{}
	recSpan := tr.Duration().Seconds()
	for i := range recorded {
		rec := &recorded[i]
		sr := simulated[rec.Name]
		if sr == nil {
			return nil, fmt.Errorf("fidelity: tenant %q recorded but not replayed", rec.Name)
		}
		out.audit(rec.Name, "completed", "requests", float64(rec.Completed), float64(sr.Completed), tol.CountRel, 0.5)
		if rec.Bytes > 0 && recSpan > 0 && rep.Duration > 0 {
			// Payload goodput over each side's full makespan: the
			// application-visible bytes the recording counted, delivered at
			// the rate each system achieved. Fabric-tagged bytes are not
			// comparable — the model's replication and read amplification
			// never appear in a recording.
			out.audit(rec.Name, "goodput", "B/s",
				float64(rec.Bytes)/recSpan, sr.PayloadBytes/rep.Duration.Seconds(), tol.GoodputRel, 0)
		}
		if rec.HasLatencies {
			absTol := tol.LatencyAbs.Seconds()
			out.audit(rec.Name, "p50", "s", rec.P50.Seconds(), sr.P50.Seconds(), tol.LatencyRel, absTol)
			out.audit(rec.Name, "p95", "s", rec.P95.Seconds(), sr.P95.Seconds(), tol.LatencyRel, absTol)
			out.audit(rec.Name, "p99", "s", rec.P99.Seconds(), sr.P99.Seconds(), tol.LatencyRel, absTol)
		}
	}
	return out, nil
}

// WriteText renders the error-band report as a fixed-layout table. The
// rendering is byte-deterministic — the golden fidelity test pins it.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-10s %-10s %14s %14s %12s %9s %8s %6s\n",
		"tenant", "metric", "recorded", "simulated", "abs err", "rel err", "tol", "band"); err != nil {
		return err
	}
	for _, m := range r.Metrics {
		verdict := "PASS"
		if !m.Pass {
			verdict = "FAIL"
		}
		rel := "inf"
		if !math.IsInf(m.RelErr, 0) {
			rel = fmt.Sprintf("%.3f%%", 100*m.RelErr)
		}
		if _, err := fmt.Fprintf(w, "%-10s %-10s %14s %14s %12s %9s %7.1f%% %6s\n",
			m.Tenant, m.Name, formatValue(m.Recorded, m.Unit), formatValue(m.Simulated, m.Unit),
			formatValue(m.AbsErr, m.Unit), rel, 100*m.Tol, verdict); err != nil {
			return err
		}
	}
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	_, err := fmt.Fprintf(w, "fidelity: %d/%d metrics in band: %s\n",
		len(r.Metrics)-r.Failed, len(r.Metrics), verdict)
	return err
}

// String renders the report (WriteText).
func (r *Report) String() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}

// MarshalJSON renders the report machine-readably for -o exports.
func (r *Report) MarshalJSON() ([]byte, error) {
	type jsonMetric struct {
		Tenant    string  `json:"tenant"`
		Metric    string  `json:"metric"`
		Unit      string  `json:"unit"`
		Recorded  float64 `json:"recorded"`
		Simulated float64 `json:"simulated"`
		AbsErr    float64 `json:"abs_err"`
		RelErr    float64 `json:"rel_err"`
		Tol       float64 `json:"tol"`
		Pass      bool    `json:"pass"`
	}
	doc := struct {
		Metrics []jsonMetric `json:"metrics"`
		Failed  int          `json:"failed"`
		Passed  bool         `json:"passed"`
	}{Failed: r.Failed, Passed: r.Passed()}
	for _, m := range r.Metrics {
		rel := m.RelErr
		if math.IsInf(rel, 0) {
			rel = -1
		}
		doc.Metrics = append(doc.Metrics, jsonMetric{
			Tenant: m.Tenant, Metric: m.Name, Unit: m.Unit,
			Recorded: m.Recorded, Simulated: m.Simulated,
			AbsErr: m.AbsErr, RelErr: rel, Tol: m.Tol, Pass: m.Pass,
		})
	}
	return json.Marshal(doc)
}

// formatValue renders a metric value with its unit at a precision that is
// stable across platforms (fixed decimal, no scientific notation).
func formatValue(v float64, unit string) string {
	switch unit {
	case "s":
		return fmt.Sprintf("%.3fms", v*1e3)
	case "B/s":
		return fmt.Sprintf("%.3fMB/s", v/1e6)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
