package traffic

import (
	"runtime"
	"testing"
	"time"
)

// BenchmarkParallelTraffic measures the domain-parallel engine end to end:
// 8 racks in a full mesh, each its own shard, driven by as many executors
// as GOMAXPROCS allows (a `-cpu=1,2,4,8` sweep turns this into the scaling
// curve recorded in BENCH_parallel.json — results are bit-identical across
// the sweep, only wall clock moves). ns/op reads as per generated request,
// like BenchmarkTrafficEngine, so the two are directly comparable: the gap
// is the conservative-synchronization overhead, the ratio across -cpu
// values is the speedup.
func BenchmarkParallelTraffic(b *testing.B) {
	b.ReportAllocs()
	spec := Spec{Tenants: []Tenant{{
		Name: "bench", Clients: 1_000_000, Workload: SeqWrite,
		Arrival:      Arrival{Kind: Poisson, Rate: 4e-3}, // 4000 req/s aggregate
		RequestBytes: 1 << 20, IOBytes: 1 << 20,
		MaxInflight: 256,
	}}}
	const racks = 8
	window := time.Second // ~4000 requests per run, ~500 per rack
	runs := 0
	var generated uint64
	b.ResetTimer()
	for generated < uint64(b.N) {
		g, rks := buildShardedRig(0, racks, 2, 1e12, 500*time.Microsecond)
		rep := RunSharded(g, rks, ShardedConfig{
			Config:         Config{Spec: spec, Duration: window, Seed: uint64(runs + 1)},
			RemoteFraction: 0.25,
		})
		g.Shutdown()
		generated += rep.Tenants[0].Offered
		runs++
	}
	b.StopTimer()
	b.ReportMetric(float64(generated)/float64(runs), "req/run")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
}
