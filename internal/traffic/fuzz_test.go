package traffic

import (
	"encoding/json"
	"testing"
)

// FuzzTenantSpec asserts the tenant-spec parser never panics, that every
// accepted spec passes Validate (the parser may not be laxer than the
// validator), and that accepted specs survive a marshal/re-parse round
// trip tenant for tenant — the same contract FuzzSchedule pins for fault
// schedules.
func FuzzTenantSpec(f *testing.F) {
	for _, seed := range []string{
		sampleSpec,
		`{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"poisson","rate":1}}]}`,
		`{"tenants":[{"name":"a","clients":1000000,"workload":"seq-write","arrival":{"kind":"rate","rate":1e-6},"request":"1g","io":"16m","max_inflight":1,"slo_p99":"1h"}]}`,
		`{"tenants":[{"name":"a","clients":1,"workload":"rand-read","arrival":{"kind":"onoff","rate":1,"on":"1","off":"2","burst":1},"request":"4k","io":"4k"}]}`,
		`{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"diurnal","rate":1,"period":"24h","amplitude":0.999}}]}`,
		`{"tenants":[{"name":"a","clients":1,"workload":"seq-write","arrival":{"kind":"poisson","rate":1},"deadline":"50ms","retry_policy":{"timeout":"10ms","multiplier":2,"max_timeout":"100ms","max_retries":3,"max_elapsed":"1s","jitter":"5ms"}}]}`,
		`{"tenants":[{"name":"a","clients":1,"workload":"seq-read","arrival":{"kind":"poisson","rate":1},"hedge":{"quantile":0.95,"min_samples":64,"floor":"1ms"}}]}`,
		`{"tenants":[{"name":"a","clients":1,"workload":"seq-write","arrival":{"kind":"poisson","rate":1},"priority":2,"deadline":"50ms","breaker":{"failures":5,"cooldown":"200ms","probes":2,"successes":3}}]}`,
		`{"brownout":{"capacity":64,"tiers":[1.0,0.5,0.25]},"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"poisson","rate":1},"priority":1}]}`,
		`{"tenants":[{"name":"a","clients":1,"workload":"seq-write","arrival":{"kind":"poisson","rate":1},"retry_policy":{"timeout":"10ms"}}]}`,
		`{"tenants":[{"name":"a","clients":-1,"workload":"metadata","arrival":{"kind":"poisson","rate":1}}]}`,
		`{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"poisson","rate":1e309}}]}`,
		`{"tenants":[]}`,
		`{"tenants":[{}]}`,
		`{}`,
		`[]`,
		``,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("parser accepted %q but Validate rejects it: %v", data, err)
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec %q does not marshal: %v", data, err)
		}
		back, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("marshalled spec %q does not re-parse: %v", out, err)
		}
		if len(back.Tenants) != len(s.Tenants) {
			t.Fatalf("round trip changed tenant count: %d -> %d", len(s.Tenants), len(back.Tenants))
		}
		for i := range s.Tenants {
			if s.Tenants[i] != back.Tenants[i] {
				t.Fatalf("tenant %d changed in round trip:\n  %+v\n  %+v", i, s.Tenants[i], back.Tenants[i])
			}
		}
	})
}
