package traffic

import (
	"fmt"
	"math"
	"sort"

	"storagesim/internal/fsapi"
	"storagesim/internal/sim"
	"storagesim/internal/stats"
	"storagesim/internal/trace"
)

// Trace-driven replay: instead of drawing arrivals from a stochastic
// process, the engine re-issues a recorded request stream at its recorded
// timestamps — still open-loop (a slow target does not slow the arrivals,
// it just accumulates in-flight requests), so the replay measures what the
// target system would have done under the *recorded* offered load. The
// recorded per-event latencies are deliberately ignored here; they are the
// measured reality the fidelity audit (internal/fidelity) compares the
// replay against.

// TraceConfig parameterizes one trace replay.
type TraceConfig struct {
	// Trace is the normalized recorded stream (trace.Normalize output).
	Trace *trace.Trace
	// IOBytes is the per-op transfer size used to re-issue data requests
	// whose events do not record one (Event.IO takes precedence when set).
	// 0 means 1 MiB.
	IOBytes int64
	// MaxInflight caps concurrently served requests per tenant, shedding
	// beyond it like the stochastic engine. 0 replays everything: the
	// recorded stream already is the admitted load.
	MaxInflight int
	// SketchAlpha is the latency sketch's relative-error bound (0 =
	// stats.DefaultSketchAlpha).
	SketchAlpha float64
	// KeepLatencies retains every completed request's latency in seconds.
	KeepLatencies bool
	// Observer, when set, receives one event per completed request with the
	// *simulated* latency filled in — re-recording the replay, which is how
	// the audit harness audits itself (see the round-trip fidelity test).
	Observer func(trace.Event)
}

// opWorkload maps a recorded operation onto the engine's workload kinds.
func opWorkload(o trace.Op) WorkloadKind {
	switch o {
	case trace.OpWrite:
		return SeqWrite
	case trace.OpRandRead:
		return RandRead
	case trace.OpMeta:
		return Metadata
	default:
		return SeqRead
	}
}

// workloadOp is the inverse of opWorkload, used when recording a run.
func workloadOp(k WorkloadKind) trace.Op {
	switch k {
	case SeqWrite:
		return trace.OpWrite
	case RandRead:
		return trace.OpRandRead
	case Metadata:
		return trace.OpMeta
	default:
		return trace.OpRead
	}
}

// traceShard is the per-tenant×node slice of the recorded stream.
type traceShard struct {
	tenant string
	node   int
	events []trace.Event
}

// ReplayTrace re-issues the recorded stream against a storage system and
// reports per-tenant outcomes in the same shape as Run. mount and fab work
// exactly as in Run: one tagged mount per tenant×node. Events recording a
// rank are pinned to node rank%nodes (co-located requests stay
// co-located); rankless events rotate round-robin within their tenant.
// ReplayTrace drives env itself and, unlike the windowed Run, drains: it
// returns when every replayed request has completed, and the report's
// Duration is the replay makespan (first issue to last completion).
func ReplayTrace(env *sim.Env, fab *sim.Fabric, nodes int, mount func(tenant string, node int) fsapi.Client, cfg TraceConfig) Report {
	if cfg.Trace == nil || len(cfg.Trace.Events) == 0 {
		panic("traffic: replay needs a non-empty trace")
	}
	if nodes <= 0 {
		panic("traffic: need at least one node")
	}
	ioBytes := cfg.IOBytes
	if ioBytes <= 0 {
		ioBytes = 1 << 20
	}

	// Partition the stream by tenant and node, preserving issue order.
	tenants := cfg.Trace.TenantNames()
	index := map[string]int{}
	rr := map[string]int{}
	for i, name := range tenants {
		index[name] = i
	}
	shards := map[string]map[int]*traceShard{}
	for _, ev := range cfg.Trace.Events {
		node := rr[ev.Tenant] % nodes
		if ev.Rank >= 0 {
			node = ev.Rank % nodes
		} else {
			rr[ev.Tenant]++
		}
		byNode := shards[ev.Tenant]
		if byNode == nil {
			byNode = map[int]*traceShard{}
			shards[ev.Tenant] = byNode
		}
		sh := byNode[node]
		if sh == nil {
			sh = &traceShard{tenant: ev.Tenant, node: node}
			byNode[node] = sh
		}
		sh.events = append(sh.events, ev)
	}

	states := make([]*tenantState, len(tenants))
	specs := make([]Tenant, len(tenants))
	var end sim.Time
	for i, name := range tenants {
		specs[i] = Tenant{Name: name, MaxInflight: cfg.MaxInflight}
		states[i] = &tenantState{
			spec:     &specs[i],
			capacity: cfg.MaxInflight,
			sketch:   stats.NewSketch(cfg.SketchAlpha),
			keep:     cfg.KeepLatencies,
		}
	}
	for _, name := range tenants {
		byNode := shards[name]
		order := make([]int, 0, len(byNode))
		for node := range byNode {
			order = append(order, node)
		}
		sort.Ints(order)
		st := states[index[name]]
		for _, node := range order {
			sh := byNode[node]
			cl := mount(name, node)
			if tg, ok := cl.(fsapi.FlowTagger); ok {
				tg.SetFlowTag(name)
			}
			launchTraceShard(env, st, cl, sh, ioBytes, cfg.Observer, &end)
		}
	}

	env.Run()

	rep := Report{Duration: end.Sub(0)}
	for _, st := range states {
		tr := TenantReport{
			Name:         st.spec.Name,
			Offered:      st.offered,
			Shed:         st.shed,
			Completed:    st.complete,
			InFlightEnd:  st.inflight,
			PayloadBytes: st.payload,
			Sketch:       st.sketch,
			Latencies:    st.lats,
		}
		if fab != nil {
			tr.DeliveredBytes = fab.TagBytes(st.spec.Name)
		}
		tr.P50 = sketchDur(st.sketch, 50)
		tr.P95 = sketchDur(st.sketch, 95)
		tr.P99 = sketchDur(st.sketch, 99)
		tr.SLOAttainment = math.NaN()
		rep.Tenants = append(rep.Tenants, tr)
	}
	return rep
}

// launchTraceShard arms the dispatcher tick of one tenant×node shard of
// the recorded stream.
func launchTraceShard(env *sim.Env, st *tenantState, cl fsapi.Client, sh *traceShard, ioBytes int64, obs func(trace.Event), end *sim.Time) {
	rs := &replayShard{
		env:     env,
		st:      st,
		cl:      cl,
		tr:      sh,
		ioBytes: ioBytes,
		obs:     obs,
		end:     end,
		reqName: fmt.Sprintf("replay/%s/req%d", sh.tenant, sh.node),
	}
	for i := range rs.paths {
		rs.paths[i] = fmt.Sprintf("/replay/%s/n%d/f%d", sh.tenant, sh.node, i)
	}
	rs.fn = rs.tick
	if len(sh.events) > 0 {
		at := sh.events[0].At
		if now := env.Now(); at < now {
			at = now
		}
		env.AfterFunc(at.Sub(env.Now()), rs.fn)
	}
}

// replayShard drives one tenant×node slice of the recorded stream: the
// replay analog of reqShard — a batched dispatcher tick plus pooled request
// records. Recorded streams carry timestamp ties (concurrent ranks), so the
// tick's inner loop dispatches every event with at <= now before re-arming,
// preserving the exact spawn order of the per-event dispatcher it replaced.
type replayShard struct {
	env     *sim.Env
	st      *tenantState
	cl      fsapi.Client
	tr      *traceShard
	ioBytes int64
	obs     func(trace.Event)
	end     *sim.Time
	reqName string
	paths   [reqFiles]string
	reqIdx  uint64
	pos     int
	free    []*replayRec
	fn      func()
}

func (sh *replayShard) tick() {
	now := sh.env.Now()
	for sh.pos < len(sh.tr.events) {
		ev := sh.tr.events[sh.pos]
		if ev.At > now {
			sh.env.AfterFunc(ev.At.Sub(now), sh.fn)
			return
		}
		sh.pos++
		sh.handleArrival(ev)
	}
}

func (sh *replayShard) handleArrival(ev trace.Event) {
	st := sh.st
	st.offered++
	if st.capacity > 0 && st.inflight >= st.capacity {
		st.shed++
		return
	}
	st.inflight++
	path := ev.File
	if path == "" {
		path = sh.paths[sh.reqIdx%reqFiles]
	}
	sh.reqIdx++
	rec := sh.getRec()
	rec.ev = ev
	rec.path = path
	sh.env.GoPooled(sh.reqName, rec.runFn)
}

// replayRec is the replay engine's pooled request lifecycle (no resilience
// machinery: replayed requests run the baseline serve path).
type replayRec struct {
	sh    *replayShard
	freed bool
	ev    trace.Event
	path  string
	runFn func(rp *sim.Proc)
}

func (sh *replayShard) getRec() *replayRec {
	if n := len(sh.free); n > 0 {
		rec := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		rec.freed = false
		return rec
	}
	rec := &replayRec{sh: sh}
	rec.runFn = rec.run
	return rec
}

func (rec *replayRec) run(rp *sim.Proc) {
	sh := rec.sh
	st := sh.st
	start := rp.Now()
	serveEvent(rp, sh.cl, rec.ev, sh.ioBytes, rec.path)
	st.inflight--
	st.complete++
	st.payload += float64(rec.ev.Bytes)
	lat := rp.Now().Sub(start)
	st.sketch.Add(lat.Seconds())
	if st.keep {
		st.lats = append(st.lats, lat.Seconds())
	}
	if rp.Now() > *sh.end {
		*sh.end = rp.Now()
	}
	if sh.obs != nil {
		out := rec.ev
		out.Latency = lat
		out.Rank = sh.tr.node
		out.File = rec.path
		sh.obs(out)
	}
	if rec.freed {
		panic("traffic: double release of pooled request record")
	}
	rec.freed = true
	sh.free = append(sh.free, rec)
}

// serveEvent performs one recorded request's I/O on the tenant's mount.
// The op size is the event's recorded IO when present, the replay default
// otherwise, clamped to the request payload.
func serveEvent(p *sim.Proc, cl fsapi.Client, ev trace.Event, ioBytes int64, path string) {
	io := ioBytes
	if ev.IO > 0 {
		io = ev.IO
	}
	if ev.Bytes > 0 && ev.Bytes < io {
		io = ev.Bytes
	}
	switch ev.Op {
	case trace.OpWrite:
		cl.StreamWrite(p, path, fsapi.Sequential, io, ev.Bytes)
	case trace.OpRead:
		cl.StreamRead(p, path, fsapi.Sequential, io, ev.Bytes)
	case trace.OpRandRead:
		cl.StreamRead(p, path, fsapi.Random, io, ev.Bytes)
	case trace.OpMeta:
		f := cl.Open(p, path, false)
		f.Close(p)
	}
}

// SpecFromTrace fits a stochastic tenant spec to a recorded stream: one
// tenant per recorded traffic class, workload = its majority operation,
// request bytes = its mean data payload, arrival rate = its realized rate
// over the trace span, arrival kind = deterministic when the inter-arrival
// coefficient of variation is small, Poisson otherwise. The fitted spec
// abstracts the trace into the engine's native vocabulary, which is what
// lets a recorded stream ride everything a Spec can: load scaling,
// saturation sweeps, and rack-sharded replay via RunSharded.
func SpecFromTrace(tr *trace.Trace) (Spec, error) {
	if tr == nil || len(tr.Events) == 0 {
		return Spec{}, fmt.Errorf("traffic: cannot fit a spec to an empty trace")
	}
	span := tr.Duration().Seconds()
	if span <= 0 {
		return Spec{}, fmt.Errorf("traffic: trace span is zero, cannot fit arrival rates")
	}
	var spec Spec
	for _, name := range tr.TenantNames() {
		var events []trace.Event
		for _, ev := range tr.Events {
			if ev.Tenant == name {
				events = append(events, ev)
			}
		}
		t := Tenant{Name: name, Clients: 1}
		t.Workload = opWorkload(majorityOp(events))
		if t.Workload.movesData() {
			var bytes, n int64
			for _, ev := range events {
				if ev.Op.MovesData() {
					bytes += ev.Bytes
					n++
				}
			}
			t.RequestBytes = bytes / n // n > 0: the majority op moves data
			if t.RequestBytes <= 0 {
				t.RequestBytes = 1
			}
			t.IOBytes = t.RequestBytes
			if t.IOBytes > 1<<20 {
				t.IOBytes = 1 << 20
			}
		}
		t.Arrival = Arrival{Kind: fitArrivalKind(events), Rate: float64(len(events)) / span}
		spec.Tenants = append(spec.Tenants, t)
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, fmt.Errorf("traffic: fitted spec invalid: %w", err)
	}
	return spec, nil
}

// majorityOp returns the most frequent operation, ties broken in the fixed
// order read, rand-read, write, meta so the fit is deterministic.
func majorityOp(events []trace.Event) trace.Op {
	counts := map[trace.Op]int{}
	for _, ev := range events {
		counts[ev.Op]++
	}
	best, bestN := trace.OpRead, -1
	for _, op := range []trace.Op{trace.OpRead, trace.OpRandRead, trace.OpWrite, trace.OpMeta} {
		if n := counts[op]; n > bestN {
			best, bestN = op, n
		}
	}
	return best
}

// fitArrivalCoV is the inter-arrival coefficient-of-variation threshold
// below which a stream is fitted as a deterministic rate (a Poisson
// process has CoV 1; a paced recorder has CoV near 0).
const fitArrivalCoV = 0.25

// fitArrivalKind classifies a tenant's arrival process from its
// inter-arrival statistics. Streams too short to classify fit as Poisson,
// the maximum-entropy default.
func fitArrivalKind(events []trace.Event) ArrivalKind {
	if len(events) < 8 {
		return Poisson
	}
	var deltas []float64
	for i := 1; i < len(events); i++ {
		deltas = append(deltas, events[i].At.Sub(events[i-1].At).Seconds())
	}
	var mean float64
	for _, d := range deltas {
		mean += d
	}
	mean /= float64(len(deltas))
	if mean <= 0 {
		return Poisson
	}
	var varsum float64
	for _, d := range deltas {
		varsum += (d - mean) * (d - mean)
	}
	cov := math.Sqrt(varsum/float64(len(deltas))) / mean
	if cov < fitArrivalCoV {
		return DeterministicRate
	}
	return Poisson
}
