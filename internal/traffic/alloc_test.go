package traffic

import (
	"testing"
	"time"

	"storagesim/internal/netsim"
	"storagesim/internal/resilience"
)

// allocsPerRequest runs whole traffic windows under testing.AllocsPerRun
// and amortizes the measured allocations over the generated requests. The
// per-window fixed cost (environment, calendar, spec state, pool warm-up)
// is real but bounded; with ~4096 requests per window a steady-state
// regression of even a fraction of an allocation per request moves the
// amortized number far past the pinned budgets below.
func allocsPerRequest(t *testing.T, spec Spec) float64 {
	t.Helper()
	const requestsPerRun = 4096
	window := time.Duration(requestsPerRun) * time.Millisecond
	var requests uint64
	seed := uint64(0)
	per := testing.AllocsPerRun(3, func() {
		seed++
		env, fab, mount := fakeRig(1e12)
		rep := Run(env, fab, 4, mount, Config{Spec: spec, Duration: window, Seed: seed})
		requests += rep.Tenants[0].Offered
	})
	// AllocsPerRun averages over its runs; requests accumulated over the
	// warm-up run plus the measured ones, so average the same way.
	return per / (float64(requests) / 4)
}

// TestSteadyStateRequestAllocs pins the zero-alloc hot path: the pooled
// request lifecycle must keep the amortized per-request allocation count
// at window-setup noise level (well under one allocation per request) for
// both the plain engine and the fully armed resilience stack. The budgets
// are deliberately above the measured steady state (~0.1/req of setup
// amortization) and far below one real allocation per request.
func TestSteadyStateRequestAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window allocation measurement")
	}
	plain := Spec{Tenants: []Tenant{{
		Name: "bench", Clients: 1_000_000, Workload: SeqWrite,
		Arrival:      Arrival{Kind: Poisson, Rate: 1e-3},
		RequestBytes: 1 << 20, IOBytes: 1 << 20,
		MaxInflight: 256,
	}}}
	if got := allocsPerRequest(t, plain); got > 0.5 {
		t.Errorf("traffic-only path allocates %.3f/request amortized, budget 0.5", got)
	}

	armed := Spec{
		Brownout: resilience.Brownout{Capacity: 1024, Tiers: []float64{1.0, 0.5}},
		Tenants: []Tenant{{
			Name: "bench", Clients: 1_000_000, Workload: SeqWrite,
			Arrival:      Arrival{Kind: Poisson, Rate: 1e-3},
			RequestBytes: 1 << 20, IOBytes: 1 << 20,
			MaxInflight: 256,
			Resilience: resilience.Policy{
				Deadline: time.Second,
				Retry:    netsim.RetryPolicy{Timeout: 10 * time.Millisecond, Multiplier: 2, MaxRetries: 2, Jitter: time.Millisecond},
				Hedge:    resilience.Hedge{Quantile: 0.99, MinSamples: 32},
				Breaker:  resilience.BreakerSpec{Failures: 10, Cooldown: 100 * time.Millisecond, Probes: 2, Successes: 3},
			},
		}},
	}
	if got := allocsPerRequest(t, armed); got > 0.5 {
		t.Errorf("resilience-armed path allocates %.3f/request amortized, budget 0.5", got)
	}
}

// TestRequestRecordDoubleReleasePanics pins the pool's loudest invariant:
// returning a request record twice is always a lifecycle bug and must not
// silently corrupt the free list.
func TestRequestRecordDoubleReleasePanics(t *testing.T) {
	sh := &reqShard{}
	rec := sh.getRec()
	sh.freeRec(rec)
	defer func() {
		if recover() == nil {
			t.Fatal("double freeRec did not panic")
		}
	}()
	sh.freeRec(rec)
}

// TestRequestRecordGenerationAdvances pins use-after-recycle detection:
// every release bumps the record's generation, so a stale reference that
// snapshotted the generation can tell its record has been rebound.
func TestRequestRecordGenerationAdvances(t *testing.T) {
	sh := &reqShard{}
	rec := sh.getRec()
	gen := rec.gen
	sh.freeRec(rec)
	if rec.gen != gen+1 {
		t.Fatalf("release bumped gen %d -> %d, want +1", gen, rec.gen)
	}
	again := sh.getRec()
	if again != rec {
		t.Fatalf("pool of one record handed back a different record")
	}
	if again.freed {
		t.Fatal("recycled record still marked freed")
	}
	sh.freeRec(again)
	if rec.gen != gen+2 {
		t.Fatalf("second release bumped gen to %d, want %d", rec.gen, gen+2)
	}
}
