package traffic

import (
	"math"
	"reflect"
	"testing"
	"time"

	"storagesim/internal/netsim"
	"storagesim/internal/resilience"
)

// resilientSpec is one write tenant with a deadline, a bounded retry
// budget and an inflight cap — the standard budgeted configuration.
func resilientSpec(deadline, timeout time.Duration, budget int) Spec {
	return Spec{Tenants: []Tenant{{
		Name: "writer", Clients: 100_000, Workload: SeqWrite,
		Arrival:      Arrival{Kind: Poisson, Rate: 1e-3}, // 100 req/s aggregate
		RequestBytes: 1 << 20, IOBytes: 1 << 20,
		MaxInflight: 64,
		Resilience: resilience.Policy{
			Deadline: deadline,
			Retry:    netsim.RetryPolicy{Timeout: timeout, Multiplier: 2, MaxRetries: budget},
		},
	}}}
}

// checkInvariants asserts the accounting identities every tenant report
// must satisfy: the legacy sum and its split by cause.
func checkInvariants(t *testing.T, tr *TenantReport) {
	t.Helper()
	if tr.Completed+tr.Shed+uint64(tr.InFlightEnd) != tr.Offered {
		t.Fatalf("%s: offered %d != completed %d + shed %d + inflight %d",
			tr.Name, tr.Offered, tr.Completed, tr.Shed, tr.InFlightEnd)
	}
	if sum := tr.ShedAdmission + tr.ShedBrownout + tr.ShedBreaker + tr.DeadlineMiss; sum != tr.Shed {
		t.Fatalf("%s: shed %d != admission %d + brownout %d + breaker %d + deadline %d",
			tr.Name, tr.Shed, tr.ShedAdmission, tr.ShedBrownout, tr.ShedBreaker, tr.DeadlineMiss)
	}
}

// An uncongested resilient tenant behaves like a legacy one: everything
// completes first-attempt, nothing is shed, nothing retried.
func TestResilienceUncongested(t *testing.T) {
	env, fab, mount := fakeRig(1e9)
	rep := Run(env, fab, 2, mount, Config{
		Spec:     resilientSpec(500*time.Millisecond, 20*time.Millisecond, 2),
		Duration: 2 * time.Second, Seed: 1,
	})
	tr := &rep.Tenants[0]
	checkInvariants(t, tr)
	if tr.Completed == 0 || tr.DeadlineMiss != 0 || tr.Retries != 0 {
		t.Fatalf("uncongested resilient tenant: %+v", tr)
	}
}

// Under deep overload with a tight deadline, attempts miss, the retry
// budget is spent, and the shed split accounts every arrival. The
// deadline's cancellation must also free bandwidth: with every request
// cancelled at 50 ms, in-flight work cannot pile up past the cap.
func TestResilienceDeadlineAndRetries(t *testing.T) {
	env, fab, mount := fakeRig(2e7) // 20 MB/s against ~100 MB/s offered
	rep := Run(env, fab, 2, mount, Config{
		Spec:     resilientSpec(50*time.Millisecond, 10*time.Millisecond, 2),
		Duration: 2 * time.Second, Seed: 1, Drain: true,
	})
	tr := &rep.Tenants[0]
	checkInvariants(t, tr)
	if tr.DeadlineMiss == 0 {
		t.Fatalf("overloaded tenant missed no deadlines: %+v", tr)
	}
	if tr.Retries == 0 {
		t.Fatal("budget spent no retries under overload")
	}
	// Retries bounded by budget×terminal-failures + completions' retries:
	// amplification ≤ 1+budget attempts per offered request.
	maxAttempts := (tr.Offered - tr.ShedAdmission) * 3 // 1 + budget(2)
	if attempts := tr.Offered - tr.ShedAdmission + tr.Retries; attempts > maxAttempts {
		t.Fatalf("attempts %d exceed (1+budget)·admitted %d", attempts, maxAttempts)
	}
	if tr.InFlightEnd != 0 {
		t.Fatalf("drained run left %d in flight", tr.InFlightEnd)
	}
}

// A breaker under sustained failure trips, sheds arrivals while open,
// and re-probes after the cooldown.
func TestResilienceBreakerTripsAndProbes(t *testing.T) {
	spec := resilientSpec(50*time.Millisecond, 10*time.Millisecond, 1)
	spec.Tenants[0].Resilience.Breaker = resilience.BreakerSpec{
		Failures: 5, Cooldown: 100 * time.Millisecond, Probes: 2, Successes: 3,
	}
	env, fab, mount := fakeRig(1e6) // hopeless: nothing meets the deadline
	rep := Run(env, fab, 2, mount, Config{
		Spec: spec, Duration: 2 * time.Second, Seed: 1, Drain: true,
	})
	tr := &rep.Tenants[0]
	checkInvariants(t, tr)
	if tr.Breaker.Opens == 0 {
		t.Fatalf("breaker never tripped under sustained failure: %+v", tr)
	}
	if tr.ShedBreaker == 0 {
		t.Fatal("open breaker shed nothing")
	}
	if tr.Breaker.HalfOpens == 0 {
		t.Fatal("breaker never probed after cooldown")
	}
	if tr.Breaker.Closes != 0 {
		t.Fatal("breaker closed while the backend stayed hopeless")
	}
}

// Hedging: with contention-spread latencies and a warm sketch, slow
// requests launch speculative twins; the request count amplification is
// visible in Hedges but completions stay exactly-once (invariants hold).
func TestResilienceHedging(t *testing.T) {
	spec := Spec{Tenants: []Tenant{{
		Name: "reader", Clients: 100_000, Workload: SeqRead,
		Arrival:      Arrival{Kind: Poisson, Rate: 2e-3}, // 200 req/s
		RequestBytes: 1 << 20, IOBytes: 1 << 20,
		MaxInflight: 64,
		Resilience: resilience.Policy{
			Hedge: resilience.Hedge{Quantile: 0.5, MinSamples: 16},
		},
	}}}
	env, fab, mount := fakeRig(3e8) // contended: latencies spread around p50
	rep := Run(env, fab, 2, mount, Config{
		Spec: spec, Duration: 2 * time.Second, Seed: 1, Drain: true,
	})
	tr := &rep.Tenants[0]
	checkInvariants(t, tr)
	if tr.Hedges == 0 {
		t.Fatalf("contended hedging tenant never hedged: %+v", tr)
	}
	// In a homogeneous fair-share fabric the primary's head start means the
	// twin can tie but never win — hedges only pay off against asymmetric
	// slowness (faults, degraded paths), which the exec-level tests cover.
	// Here the win counter just has to stay consistent.
	if tr.HedgeWins > tr.Hedges {
		t.Fatalf("hedge wins %d exceed hedges %d", tr.HedgeWins, tr.Hedges)
	}
	if tr.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

// Brownout tiers shed strictly by priority: under saturation the
// low-priority tenant browns out first and the high-priority tenant
// keeps completing.
func TestResilienceBrownoutTiers(t *testing.T) {
	tenant := func(name string, prio int) Tenant {
		return Tenant{
			Name: name, Clients: 100_000, Workload: SeqWrite,
			Arrival:      Arrival{Kind: Poisson, Rate: 2e-3},
			RequestBytes: 1 << 20, IOBytes: 1 << 20,
			Priority: prio,
		}
	}
	spec := Spec{
		Tenants:  []Tenant{tenant("prod", 0), tenant("batch", 1)},
		Brownout: resilience.Brownout{Capacity: 32, Tiers: []float64{1.0, 0.25}},
	}
	env, fab, mount := fakeRig(5e7) // ~400 MB/s offered vs 50 MB/s served
	rep := Run(env, fab, 2, mount, Config{
		Spec: spec, Duration: 2 * time.Second, Seed: 1, Drain: true,
	})
	prod, batch := &rep.Tenants[0], &rep.Tenants[1]
	checkInvariants(t, prod)
	checkInvariants(t, batch)
	if batch.ShedBrownout == 0 {
		t.Fatalf("low-priority tenant never browned out: %+v", batch)
	}
	if prod.ShedBrownout >= batch.ShedBrownout {
		t.Fatalf("priority inversion: prod shed %d ≥ batch shed %d",
			prod.ShedBrownout, batch.ShedBrownout)
	}
	if prod.Completed <= batch.Completed {
		t.Fatalf("priority tenant completed %d ≤ batch %d", prod.Completed, batch.Completed)
	}
}

// The outcome-observer stream must reconcile exactly with the report's
// aggregate counters — it is the retry-storm study's data source.
func TestResilienceOutcomeObserver(t *testing.T) {
	counts := map[OutcomeKind]uint64{}
	var retries uint64
	env, fab, mount := fakeRig(2e7)
	rep := Run(env, fab, 2, mount, Config{
		Spec:     resilientSpec(50*time.Millisecond, 10*time.Millisecond, 2),
		Duration: 2 * time.Second, Seed: 1, Drain: true,
		OutcomeObserver: func(ev OutcomeEvent) {
			counts[ev.Kind]++
			retries += uint64(ev.Retries)
		},
	})
	tr := &rep.Tenants[0]
	if counts[OutcomeCompleted] != tr.Completed ||
		counts[OutcomeDeadlineMiss] != tr.DeadlineMiss ||
		counts[OutcomeShedAdmission] != tr.ShedAdmission ||
		counts[OutcomeShedBrownout] != tr.ShedBrownout ||
		counts[OutcomeShedBreaker] != tr.ShedBreaker {
		t.Fatalf("observer counts %v do not reconcile with report %+v", counts, tr)
	}
	if retries != tr.Retries {
		t.Fatalf("observer retries %d != report %d", retries, tr.Retries)
	}
}

// Two identical resilient runs must agree on every counter; determinism
// is the foundation the retry-storm goldens stand on.
func TestResilienceDeterminism(t *testing.T) {
	run := func() Report {
		spec := resilientSpec(600*time.Millisecond, 10*time.Millisecond, 2)
		spec.Tenants[0].Resilience.Hedge = resilience.Hedge{Quantile: 0.5, MinSamples: 8}
		spec.Tenants[0].Resilience.Retry.Jitter = 5 * time.Millisecond
		env, fab, mount := fakeRig(5e7)
		return Run(env, fab, 2, mount, Config{
			Spec: spec, Duration: 2 * time.Second, Seed: 7, Drain: true,
		})
	}
	a, b := run(), run()
	ta, tb := a.Tenants[0], b.Tenants[0]
	if ta.Completed == 0 || ta.DeadlineMiss == 0 || ta.Hedges == 0 {
		t.Fatalf("run not exercising the full layer: %+v", ta)
	}
	// NaN never compares equal; the attainment field is checked separately.
	if (math.IsNaN(ta.SLOAttainment) != math.IsNaN(tb.SLOAttainment)) ||
		(!math.IsNaN(ta.SLOAttainment) && ta.SLOAttainment != tb.SLOAttainment) {
		t.Fatalf("attainment diverged: %v vs %v", ta.SLOAttainment, tb.SLOAttainment)
	}
	ta.SLOAttainment, tb.SLOAttainment = 0, 0
	ta.Sketch, tb.Sketch = nil, nil
	if !reflect.DeepEqual(ta, tb) {
		t.Fatalf("identical resilient runs diverged:\n%+v\n%+v", ta, tb)
	}
}
