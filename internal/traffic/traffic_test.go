package traffic

import (
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"storagesim/internal/fsapi"
	"storagesim/internal/sim"
	"storagesim/internal/stats"
)

// fakeClient is a minimal fsapi.Client for engine tests: every stream
// crosses one shared pipe (so tenants contend and tagging is observable)
// and metadata ops cost a fixed latency.
type fakeClient struct {
	fab   *sim.Fabric
	path  []*sim.Pipe
	tag   string
	opLat sim.Duration
}

func (c *fakeClient) FSName() string        { return "fake" }
func (c *fakeClient) NodeName() string      { return "node" }
func (c *fakeClient) SetFlowTag(tag string) { c.tag = tag }

func (c *fakeClient) StreamWrite(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	p.SetFlowTag(c.tag)
	c.fab.Transfer(p, c.path, float64(total), 0)
}

func (c *fakeClient) StreamRead(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	p.SetFlowTag(c.tag)
	c.fab.Transfer(p, c.path, float64(total), 0)
}

func (c *fakeClient) Open(p *sim.Proc, path string, truncate bool) fsapi.File {
	p.SetFlowTag(c.tag)
	p.Sleep(c.opLat)
	return fakeFile{}
}

func (c *fakeClient) Remove(p *sim.Proc, path string) { p.Sleep(c.opLat) }
func (c *fakeClient) DropCaches()                     {}

type fakeFile struct{}

func (fakeFile) Path() string                      { return "" }
func (fakeFile) Size() int64                       { return 0 }
func (fakeFile) WriteAt(p *sim.Proc, off, n int64) {}
func (fakeFile) ReadAt(p *sim.Proc, off, n int64)  {}
func (fakeFile) Fsync(p *sim.Proc)                 {}
func (fakeFile) Close(p *sim.Proc)                 {}

// fakeRig builds an env, a fabric with one shared pipe of the given
// bandwidth, and a mount function minting tagged fake clients.
func fakeRig(bw float64) (*sim.Env, *sim.Fabric, func(string, int) fsapi.Client) {
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	link := fab.NewPipe("link", bw, 10*time.Microsecond)
	mount := func(tenant string, node int) fsapi.Client {
		return &fakeClient{fab: fab, path: []*sim.Pipe{link}, opLat: 200 * time.Microsecond}
	}
	return env, fab, mount
}

func twoTenantSpec() Spec {
	return Spec{Tenants: []Tenant{
		{
			Name: "writer", Clients: 100_000, Workload: SeqWrite,
			Arrival:      Arrival{Kind: Poisson, Rate: 1e-3}, // 100 req/s aggregate
			RequestBytes: 1 << 20, IOBytes: 1 << 20,
			MaxInflight: 64, SLOP99: 500 * time.Millisecond,
		},
		{
			Name: "md", Clients: 50_000, Workload: Metadata,
			Arrival:     Arrival{Kind: DeterministicRate, Rate: 2e-3}, // 100 req/s
			MaxInflight: 32, SLOP99: time.Millisecond,
		},
	}}
}

// TestEngineBasics: both tenants generate, complete, and report sane
// latency percentiles and byte attribution.
func TestEngineBasics(t *testing.T) {
	env, fab, mount := fakeRig(1e9) // 1 GB/s: 100 MB/s offered, uncongested
	rep := Run(env, fab, 2, mount, Config{
		Spec: twoTenantSpec(), Duration: 2 * time.Second, Seed: 1, KeepLatencies: true,
	})
	if len(rep.Tenants) != 2 {
		t.Fatalf("tenant count %d", len(rep.Tenants))
	}
	wr, md := rep.Tenants[0], rep.Tenants[1]
	// ~200 arrivals each over 2s; Poisson fluctuates, rate is exact.
	if wr.Offered < 120 || wr.Offered > 280 {
		t.Fatalf("writer offered %d, want ~200", wr.Offered)
	}
	if md.Offered != 200 {
		t.Fatalf("metadata offered %d, want exactly 200 (deterministic rate)", md.Offered)
	}
	for _, tr := range rep.Tenants {
		if tr.Completed == 0 || tr.Completed+tr.Shed+uint64(tr.InFlightEnd) != tr.Offered {
			t.Fatalf("%s: offered %d != completed %d + shed %d + inflight %d",
				tr.Name, tr.Offered, tr.Completed, tr.Shed, tr.InFlightEnd)
		}
		if tr.P50 <= 0 || tr.P99 < tr.P50 {
			t.Fatalf("%s: p50 %v p99 %v", tr.Name, tr.P50, tr.P99)
		}
	}
	// Byte attribution: the writer moved ~1 MiB per completed request (plus
	// partial in-flight progress); metadata moved nothing.
	if wr.DeliveredBytes < float64(wr.Completed)*float64(1<<20)*0.9 {
		t.Fatalf("writer delivered %.0f bytes for %d requests", wr.DeliveredBytes, wr.Completed)
	}
	if md.DeliveredBytes != 0 {
		t.Fatalf("metadata tenant delivered %.0f bytes", md.DeliveredBytes)
	}
	// SLO attainment: uncongested writer must be near 1; the metadata
	// tenant's 1ms target is well above its 200µs op cost, so exactly 1.
	if wr.SLOAttainment < 0.99 {
		t.Fatalf("writer SLO attainment %v", wr.SLOAttainment)
	}
	if md.SLOAttainment != 1 {
		t.Fatalf("metadata SLO attainment %v", md.SLOAttainment)
	}
	// The sketch tracks the exact oracle within its bound on kept latencies.
	for _, p := range []float64{50, 95, 99} {
		exact := stats.Percentile(wr.Latencies, p)
		est := wr.Sketch.Quantile(p)
		if math.Abs(est-exact)/exact > 0.02 {
			t.Fatalf("writer p%g: sketch %v vs exact %v", p, est, exact)
		}
	}
}

// TestEngineDeterminism: two identical runs must produce identical
// reports, including every kept latency; a different seed must not.
func TestEngineDeterminism(t *testing.T) {
	run := func(seed uint64) Report {
		env, fab, mount := fakeRig(2e8) // congested: contention in play
		return Run(env, fab, 2, mount, Config{
			Spec: twoTenantSpec(), Duration: time.Second, Seed: seed, KeepLatencies: true,
		})
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(reportKey(a), reportKey(b)) {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", reportKey(a), reportKey(b))
	}
	if !reflect.DeepEqual(a.Tenants[0].Latencies, b.Tenants[0].Latencies) {
		t.Fatal("latency streams diverged between identical runs")
	}
	c := run(8)
	if reflect.DeepEqual(reportKey(a), reportKey(c)) {
		t.Fatal("different seeds produced the identical report")
	}
}

// reportKey projects a report onto its comparable scalars.
func reportKey(r Report) []TenantReport {
	out := make([]TenantReport, len(r.Tenants))
	for i, tr := range r.Tenants {
		tr.Sketch = nil
		tr.Latencies = nil
		out[i] = tr
	}
	return out
}

// TestEngineAdmissionControl: a starved link with a tiny in-flight cap
// must shed, and the books must balance.
func TestEngineAdmissionControl(t *testing.T) {
	env, fab, mount := fakeRig(1e6) // 1 MB/s against 100 MB/s offered
	spec := Spec{Tenants: []Tenant{{
		Name: "w", Clients: 100_000, Workload: SeqWrite,
		Arrival:      Arrival{Kind: Poisson, Rate: 1e-3},
		RequestBytes: 1 << 20, IOBytes: 1 << 20,
		MaxInflight: 4,
	}}}
	rep := Run(env, fab, 1, mount, Config{Spec: spec, Duration: 2 * time.Second, Seed: 3})
	tr := rep.Tenants[0]
	if tr.Shed == 0 {
		t.Fatal("starved tenant shed nothing")
	}
	if tr.InFlightEnd > 4 {
		t.Fatalf("in-flight %d exceeded cap 4", tr.InFlightEnd)
	}
	if tr.Completed+tr.Shed+uint64(tr.InFlightEnd) != tr.Offered {
		t.Fatalf("books don't balance: %+v", tr)
	}
	// Uncapped tenant on the same starved link: nothing is shed, requests
	// pile up in flight instead (pure open loop).
	env2, fab2, mount2 := fakeRig(1e6)
	spec.Tenants[0].MaxInflight = 0
	rep2 := Run(env2, fab2, 1, mount2, Config{Spec: spec, Duration: 2 * time.Second, Seed: 3})
	tr2 := rep2.Tenants[0]
	if tr2.Shed != 0 {
		t.Fatalf("uncapped tenant shed %d", tr2.Shed)
	}
	if tr2.InFlightEnd <= 4 {
		t.Fatalf("uncapped starved tenant should pile up in flight, got %d", tr2.InFlightEnd)
	}
}

// TestEngineOpenLoopIsOpen: halving service bandwidth must not change the
// offered arrival count — generation is independent of completion.
func TestEngineOpenLoopIsOpen(t *testing.T) {
	offered := func(bw float64) uint64 {
		env, fab, mount := fakeRig(bw)
		spec := twoTenantSpec()
		spec.Tenants[0].MaxInflight = 0
		rep := Run(env, fab, 2, mount, Config{Spec: spec, Duration: time.Second, Seed: 11})
		return rep.Tenants[0].Offered
	}
	if a, b := offered(1e9), offered(1e7); a != b {
		t.Fatalf("offered load depends on service rate: %d vs %d", a, b)
	}
}

// TestEngineLoadScale: doubling LoadScale doubles deterministic offered
// counts exactly.
func TestEngineLoadScale(t *testing.T) {
	count := func(scale float64) uint64 {
		env, fab, mount := fakeRig(1e9)
		spec := Spec{Tenants: []Tenant{{
			Name: "md", Clients: 1000, Workload: Metadata,
			Arrival: Arrival{Kind: DeterministicRate, Rate: 0.1},
		}}}
		rep := Run(env, fab, 1, mount, Config{Spec: spec, Duration: time.Second, Seed: 1, LoadScale: scale})
		return rep.Tenants[0].Offered
	}
	if c1, c2 := count(1), count(2); c2 != 2*c1 {
		t.Fatalf("load 2x offered %d, want %d", c2, 2*c1)
	}
}

// TestMillionClientsBounded: a one-million-client population must run
// through a handful of generator processes — OS goroutine count stays
// bounded by tenants×nodes plus in-flight requests plus the kernel's
// worker pool, never by the client population.
func TestMillionClientsBounded(t *testing.T) {
	env, fab, mount := fakeRig(1e9)
	spec := Spec{Tenants: []Tenant{
		{
			Name: "a", Clients: 600_000, Workload: SeqWrite,
			Arrival:      Arrival{Kind: Poisson, Rate: 5e-4}, // 300 req/s
			RequestBytes: 1 << 20, IOBytes: 1 << 20, MaxInflight: 64,
		},
		{
			Name: "b", Clients: 400_000, Workload: Metadata,
			Arrival:     Arrival{Kind: Poisson, Rate: 1e-3}, // 400 req/s
			MaxInflight: 64,
		},
	}}
	baseline := runtime.NumGoroutine()
	peak := 0
	env.Go("probe", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			if g := runtime.NumGoroutine(); g > peak {
				peak = g
			}
			p.Sleep(10 * time.Millisecond)
		}
	})
	rep := Run(env, fab, 4, mount, Config{Spec: spec, Duration: time.Second, Seed: 5})
	if got := rep.Tenants[0].Offered + rep.Tenants[1].Offered; got < 500 {
		t.Fatalf("only %d arrivals from 1M clients", got)
	}
	// Generous bound: 2 tenants × 4 nodes generators + 128 in-flight caps +
	// the kernel's 64 pooled workers + slack is still far under 1000.
	if peak-baseline > 1000 {
		t.Fatalf("goroutine peak %d over baseline %d — per-client processes?", peak, baseline)
	}
}
