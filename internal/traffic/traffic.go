package traffic

import (
	"fmt"
	"math"

	"storagesim/internal/fsapi"
	"storagesim/internal/resilience"
	"storagesim/internal/sim"
	"storagesim/internal/stats"
	"storagesim/internal/trace"
)

// Config parameterizes one traffic run.
type Config struct {
	// Spec is the validated multi-tenant description.
	Spec Spec
	// Duration is the open-loop generation window; requests in flight when
	// it closes are counted but not waited for.
	Duration sim.Duration
	// Seed drives every arrival stream (per-shard substreams are derived
	// with Mix64, so tenants and shards are independent).
	Seed uint64
	// LoadScale multiplies every tenant's offered rate — the x axis of a
	// saturation sweep. 0 means 1.
	LoadScale float64
	// SketchAlpha is the latency sketch's relative-error bound (0 =
	// stats.DefaultSketchAlpha).
	SketchAlpha float64
	// KeepLatencies retains every completed request's latency in seconds,
	// in completion order — the exact-oracle input of the differential
	// tests. Off by default: the whole point of the sketch is not keeping
	// millions of float64s.
	KeepLatencies bool
	// Observer, when set, receives one trace event per completed request
	// (issue time, tenant, op, bytes, measured latency, node, path) — the
	// recording side of the trace pipeline: write the stream out with
	// trace.WriteJSONL and any run becomes a replayable, auditable trace.
	Observer func(trace.Event)
	// Drain keeps the simulation running after the generation window
	// closes until every admitted request completes, instead of abandoning
	// the in-flight tail. A recording meant for fidelity audits must drain:
	// requests the window cut off contended for bandwidth in the original
	// run but would be missing from the recorded stream, so an undrained
	// recording replays against less load than it was measured under.
	Drain bool
	// OutcomeObserver, when set, receives one event per request outcome —
	// completions and every shed/failure class — which is how the
	// retry-storm study buckets goodput timelines without touching the
	// engine's aggregates.
	OutcomeObserver func(OutcomeEvent)
}

// OutcomeKind classifies one request's fate.
type OutcomeKind string

// Outcome kinds.
const (
	// OutcomeCompleted: served within its deadline (or no deadline set).
	OutcomeCompleted OutcomeKind = "completed"
	// OutcomeDeadlineMiss: admitted, but every attempt missed the deadline
	// (or the retry budget/breaker cut the request short).
	OutcomeDeadlineMiss OutcomeKind = "deadline-miss"
	// OutcomeShedAdmission: refused by the per-tenant inflight cap.
	OutcomeShedAdmission OutcomeKind = "shed-admission"
	// OutcomeShedBrownout: refused by the engine-wide brownout tiers.
	OutcomeShedBrownout OutcomeKind = "shed-brownout"
	// OutcomeShedBreaker: refused by an open circuit breaker.
	OutcomeShedBreaker OutcomeKind = "shed-breaker"
)

// OutcomeEvent is one request's terminal accounting record.
type OutcomeEvent struct {
	// At is the outcome instant (arrival time for sheds, completion or
	// failure time for admitted requests).
	At sim.Time
	// Tenant names the traffic class.
	Tenant string
	// Kind classifies the outcome.
	Kind OutcomeKind
	// Bytes is the request payload (delivered only when completed).
	Bytes int64
	// Retries and Hedges are the resilience effort spent on the request.
	Retries, Hedges int
}

// TenantReport is the per-tenant outcome of a run.
type TenantReport struct {
	Name string
	// Offered counts generated arrivals; Shed the ones that terminated
	// without completing (all shed classes plus deadline misses — kept as
	// the sum for compatibility); Completed the ones fully served inside
	// the window. Offered - Shed - Completed requests were still in flight
	// at the end.
	Offered, Shed, Completed uint64
	// The Shed sum split by cause: per-tenant inflight-cap refusals,
	// engine-wide brownout refusals, open-breaker refusals, and admitted
	// requests whose every attempt missed the deadline.
	// Shed = ShedAdmission + ShedBrownout + ShedBreaker + DeadlineMiss.
	ShedAdmission, ShedBrownout, ShedBreaker, DeadlineMiss uint64
	// Retries, Hedges and HedgeWins count the resilience layer's effort:
	// re-attempts after deadline misses, speculative twins launched, and
	// requests the twin won.
	Retries, Hedges, HedgeWins uint64
	// Breaker counts the tenant's circuit-breaker state transitions.
	Breaker resilience.BreakerStats
	// InFlightEnd is the admission count still open when the window closed.
	InFlightEnd int
	// DeliveredBytes integrates the tenant's fabric traffic (tagged flows),
	// including partial progress of still-running requests.
	DeliveredBytes float64
	// PayloadBytes sums the request payload of completed requests — the
	// application-visible delivered data, the quantity recorded traces
	// count and fidelity audits compare (fabric bytes can include
	// replication and read-amplification the recording never saw).
	PayloadBytes float64
	// P50/P95/P99 are sketch-estimated completion-latency percentiles.
	P50, P95, P99 sim.Duration
	// SLOP99 echoes the tenant's target; SLOAttainment is the fraction of
	// completed requests at or under it (NaN when no SLO was declared or
	// nothing completed).
	SLOP99        sim.Duration
	SLOAttainment float64
	// Sketch is the full latency sketch (seconds), for merging or extra
	// quantiles. Latencies carries the raw values when
	// Config.KeepLatencies was set.
	Sketch    *stats.Sketch
	Latencies []float64
}

// OfferedRate returns the realized offered request rate over the window.
func (r *TenantReport) OfferedRate(d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(r.Offered) / d.Seconds()
}

// GoodputBps returns the tenant's delivered bandwidth over the window.
func (r *TenantReport) GoodputBps(d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return r.DeliveredBytes / d.Seconds()
}

// Report is the outcome of one traffic run, tenants in spec order.
type Report struct {
	Duration sim.Duration
	Tenants  []TenantReport
}

// tenantState is the shared admission/accounting state of one tenant,
// touched only from simulated processes (the kernel serializes those).
type tenantState struct {
	spec     *Tenant
	offered  uint64
	shed     uint64
	complete uint64
	inflight int
	capacity int
	payload  float64
	sketch   *stats.Sketch
	lats     []float64
	keep     bool
	obs      func(trace.Event)

	// Resilience-layer state; zero/nil for legacy-path tenants.
	breaker       *resilience.Breaker
	shedAdmission uint64
	shedBrownout  uint64
	shedBreaker   uint64
	deadlineMiss  uint64
	retries       uint64
	hedges        uint64
	hedgeWins     uint64
	outObs        func(OutcomeEvent)
}

// engineState is the run-wide admission state shared by all tenants —
// the brownout policy works on the total in-flight count.
type engineState struct {
	brown    resilience.Brownout
	inflight int
}

// shedEvent reports a refused arrival to the outcome observer.
func (st *tenantState) shedEvent(at sim.Time, kind OutcomeKind) {
	if st.outObs != nil {
		st.outObs(OutcomeEvent{At: at, Tenant: st.spec.Name, Kind: kind, Bytes: st.spec.RequestBytes})
	}
}

// reqFiles is the rotating file-set size per tenant×shard: requests cycle
// through this many paths, so the namespace stays bounded no matter how
// many requests a run generates.
const reqFiles = 16

// Run executes the spec against a storage system and reports per-tenant
// SLO outcomes. mount mints a fresh client mount for the named tenant on
// compute node `node` (0-based, < nodes); the engine creates one mount per
// tenant×node shard and — when the mount supports fsapi.FlowTagger — tags
// it so the tenant's fabric bytes are attributed. fab may be nil when no
// delivered-byte accounting is wanted.
//
// One generator process per tenant×node shard carries 1/nodes-th of the
// tenant's aggregate arrival stream (see arrivalGen for why the merge is
// exact for Poisson-family processes), so process count is
// O(tenants×nodes + in-flight requests) regardless of Tenant.Clients.
//
// Run drives env itself (RunUntil the window's end) and must be called
// with a quiescent env; fault schedules armed on the same env beforehand
// compose naturally — their timers fire inside the window.
func Run(env *sim.Env, fab *sim.Fabric, nodes int, mount func(tenant string, node int) fsapi.Client, cfg Config) Report {
	if err := cfg.Spec.Validate(); err != nil {
		panic(fmt.Sprintf("traffic: invalid spec: %v", err))
	}
	if nodes <= 0 {
		panic("traffic: need at least one node")
	}
	if cfg.Duration <= 0 {
		panic("traffic: need a positive duration")
	}
	scale := cfg.LoadScale
	if scale == 0 {
		scale = 1
	}
	end := sim.Time(0).Add(cfg.Duration)

	eng := &engineState{brown: cfg.Spec.Brownout}
	states := make([]*tenantState, len(cfg.Spec.Tenants))
	for ti := range cfg.Spec.Tenants {
		t := &cfg.Spec.Tenants[ti]
		st := &tenantState{
			spec:     t,
			capacity: t.MaxInflight,
			sketch:   stats.NewSketch(cfg.SketchAlpha),
			keep:     cfg.KeepLatencies,
			obs:      cfg.Observer,
			breaker:  resilience.NewBreaker(t.Resilience.Breaker),
			outObs:   cfg.OutcomeObserver,
		}
		states[ti] = st
		shardRate := t.AggregateRate() * scale / float64(nodes)
		for node := 0; node < nodes; node++ {
			cl := mount(t.Name, node)
			if tg, ok := cl.(fsapi.FlowTagger); ok {
				tg.SetFlowTag(t.Name)
			}
			gen := newArrivalGen(t.Arrival, shardRate, shardSeed(cfg.Seed, ti, node))
			launchShard(env, eng, st, cl, gen, node, end)
		}
	}

	env.RunUntil(end)
	if cfg.Drain {
		env.Run()
	}

	rep := Report{Duration: cfg.Duration}
	for _, st := range states {
		tr := TenantReport{
			Name:          st.spec.Name,
			Offered:       st.offered,
			Shed:          st.shed,
			Completed:     st.complete,
			ShedAdmission: st.shedAdmission,
			ShedBrownout:  st.shedBrownout,
			ShedBreaker:   st.shedBreaker,
			DeadlineMiss:  st.deadlineMiss,
			Retries:       st.retries,
			Hedges:        st.hedges,
			HedgeWins:     st.hedgeWins,
			Breaker:       st.breaker.Stats(),
			InFlightEnd:   st.inflight,
			PayloadBytes:  st.payload,
			SLOP99:        st.spec.SLOP99,
			Sketch:        st.sketch,
			Latencies:     st.lats,
		}
		if fab != nil {
			tr.DeliveredBytes = fab.TagBytes(st.spec.Name)
		}
		tr.P50 = sketchDur(st.sketch, 50)
		tr.P95 = sketchDur(st.sketch, 95)
		tr.P99 = sketchDur(st.sketch, 99)
		tr.SLOAttainment = math.NaN()
		if st.spec.SLOP99 > 0 && st.complete > 0 {
			tr.SLOAttainment = st.sketch.FractionBelow(st.spec.SLOP99.Seconds())
		}
		rep.Tenants = append(rep.Tenants, tr)
	}
	return rep
}

// sketchDur converts a sketch quantile (seconds) to a duration, 0 when the
// sketch is empty.
func sketchDur(s *stats.Sketch, p float64) sim.Duration {
	q := s.Quantile(p)
	if math.IsNaN(q) {
		return 0
	}
	return sim.Duration(q * 1e9)
}

// arrivalChunk is the number of arrival timestamps a shard pre-draws per
// refill of its ring. The draws come from the shard-private RNG in exactly
// the order the old one-draw-per-wakeup generator made them, so the
// timestamp sequence is bit-identical; chunking only amortizes the
// dispatch.
const arrivalChunk = 64

// shardGen feeds one shard's arrival timestamps from a chunked pre-drawn
// ring. The underlying arrivalGen is consulted in the same next(prev)
// sequence the per-request generator loop used (including the final
// beyond-window draw that terminates the stream).
type shardGen struct {
	gen  *arrivalGen
	end  sim.Time
	buf  [arrivalChunk]sim.Time
	idx  int
	n    int
	last sim.Time
	done bool
}

func (sg *shardGen) fill() {
	sg.idx, sg.n = 0, 0
	for sg.n < len(sg.buf) {
		at := sg.gen.next(sg.last)
		sg.last = at
		if at > sg.end {
			sg.done = true
			return
		}
		sg.buf[sg.n] = at
		sg.n++
	}
}

// peek returns the next arrival time without consuming it; ok is false once
// the stream passed the window end.
func (sg *shardGen) peek() (at sim.Time, ok bool) {
	if sg.idx >= sg.n {
		if sg.done {
			return 0, false
		}
		sg.fill()
		if sg.n == 0 {
			return 0, false
		}
	}
	return sg.buf[sg.idx], true
}

func (sg *shardGen) pop() { sg.idx++ }

// arrivalTick turns a shard's arrival stream into a self-re-arming calendar
// callback: one pooled timer event per arrival, no generator process. The
// tick admits every pending arrival with at <= now (recorded streams carry
// ties; stochastic streams are strictly increasing), then re-arms itself
// for the next future arrival. The handler runs on the scheduler's stack —
// it must not block.
type arrivalTick struct {
	env    *sim.Env
	gen    shardGen
	handle func(now sim.Time)
	fn     func() // tick bound once; re-armed for every future arrival
}

func (tk *arrivalTick) tick() {
	now := tk.env.Now()
	for {
		at, ok := tk.gen.peek()
		if !ok {
			return
		}
		if at > now {
			tk.env.AfterFunc(at.Sub(now), tk.fn)
			return
		}
		tk.gen.pop()
		tk.handle(now)
	}
}

// arm schedules the shard's first tick (called once at setup).
func (tk *arrivalTick) arm() {
	at, ok := tk.gen.peek()
	if !ok {
		return
	}
	now := tk.env.Now()
	if at < now {
		at = now
	}
	tk.fn = tk.tick
	tk.env.AfterFunc(at.Sub(now), tk.fn)
}

// reqShard drives one tenant×node shard of the single-fabric engine: a
// batched arrival tick plus a free list of request records, so the steady
// request path allocates nothing.
type reqShard struct {
	arrivalTick
	eng       *engineState
	st        *tenantState
	cl        fsapi.Client
	node      int
	resilient bool
	// countEng mirrors the historical accounting split: the sharded engine
	// counts every admitted request against the run-wide brownout gauge,
	// the single-fabric legacy path never did.
	countEng bool
	reqName  string
	paths    [reqFiles]string
	reqIdx   uint64
	free     []*reqRec
}

// handleArrival runs the admission chain for one arrival and, when
// admitted, spawns the request body on a pooled process with a pooled
// record. The legacy path (no resilience policy, no brownout) stays
// byte-identical to the engine before the policy layer existed: queue-depth
// backpressure only — beyond the cap the request is shed, never queued.
func (sh *reqShard) handleArrival(now sim.Time) {
	st := sh.st
	st.offered++
	if sh.resilient {
		sh.admitResilient(now)
		return
	}
	if st.capacity > 0 && st.inflight >= st.capacity {
		st.shed++
		st.shedAdmission++
		st.shedEvent(now, OutcomeShedAdmission)
		return
	}
	st.inflight++
	if sh.countEng {
		sh.eng.inflight++
	}
	rec := sh.getRec()
	rec.path = sh.paths[sh.reqIdx%reqFiles]
	sh.reqIdx++
	sh.env.GoPooled(sh.reqName, rec.runFn)
}

// admitResilient runs the policy-layer admission chain for one arrival —
// breaker, then brownout tiers, then the per-tenant cap, in that order
// (cheapest refusal first; a breaker grant consumed by a later stage is
// handed back with Release so probe slots are never leaked) — and, when
// admitted, spawns the request coordinator.
func (sh *reqShard) admitResilient(now sim.Time) {
	st, eng := sh.st, sh.eng
	ok, probe := st.breaker.Allow(now)
	if !ok {
		st.shed++
		st.shedBreaker++
		st.shedEvent(now, OutcomeShedBreaker)
		return
	}
	if eng.brown.Enabled() && eng.inflight >= eng.brown.Threshold(st.spec.Priority) {
		st.breaker.Release(probe)
		st.shed++
		st.shedBrownout++
		st.shedEvent(now, OutcomeShedBrownout)
		return
	}
	if st.capacity > 0 && st.inflight >= st.capacity {
		st.breaker.Release(probe)
		st.shed++
		st.shedAdmission++
		st.shedEvent(now, OutcomeShedAdmission)
		return
	}
	st.inflight++
	eng.inflight++
	rec := sh.getRec()
	rec.path = sh.paths[sh.reqIdx%reqFiles]
	sh.reqIdx++
	rec.probe = probe
	// The backoff jitter stream is per request: distinct shards (and
	// successive requests of one shard) must desynchronize, so the flow id
	// mixes the shard index with the shard-local sequence number.
	rec.call.FlowID = (uint64(sh.node)+1)*0x9e3779b97f4a7c15 + sh.reqIdx
	sh.env.GoPooled(sh.reqName, rec.runFn)
}

// reqRec is one pooled request lifecycle: arrival/admission state, the
// resilience call record (completion event, abort tokens, attempt
// closures), and the request body closure, recycled through the shard's
// free list. The generation counter makes stale references detectable in
// the pool-hardening tests; freed guards double release.
type reqRec struct {
	sh    *reqShard
	gen   uint64
	freed bool
	path  string
	probe bool
	runFn func(rp *sim.Proc)
	call  resilience.Call
}

// getRec draws a record from the shard pool, creating (and binding its
// closures, once) on first use.
func (sh *reqShard) getRec() *reqRec {
	if n := len(sh.free); n > 0 {
		rec := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		rec.freed = false
		return rec
	}
	rec := &reqRec{sh: sh}
	if sh.resilient {
		rec.runFn = rec.runResilient
		rec.call.Attempt = func(ap *sim.Proc) { serveRequest(ap, sh.cl, sh.st.spec, rec.path) }
		rec.call.OnIdle = func() { sh.freeRec(rec) }
	} else {
		rec.runFn = rec.runLegacy
	}
	return rec
}

// freeRec returns a record to the pool. Double release is always a
// lifecycle bug, so it panics.
func (sh *reqShard) freeRec(rec *reqRec) {
	if rec.freed {
		panic("traffic: double release of pooled request record")
	}
	rec.freed = true
	rec.gen++
	sh.free = append(sh.free, rec)
}

// release recycles the record once nothing references it. A cancelled
// hedge/deadline loser can outlive its coordinator (it unwinds at its next
// cancellation point), so a resilient record with live attempts defers to
// the call's OnIdle hook instead of recycling immediately.
func (rec *reqRec) release() {
	if rec.sh.resilient && !rec.call.Idle() {
		rec.call.DeferRelease()
		return
	}
	rec.sh.freeRec(rec)
}

// runLegacy is the request body of a non-resilient tenant.
func (rec *reqRec) runLegacy(rp *sim.Proc) {
	sh := rec.sh
	st := sh.st
	start := rp.Now()
	serveRequest(rp, sh.cl, st.spec, rec.path)
	st.inflight--
	if sh.countEng {
		sh.eng.inflight--
	}
	st.complete++
	st.payload += float64(st.spec.RequestBytes)
	d := rp.Now().Sub(start)
	st.sketch.Add(d.Seconds())
	if st.keep {
		st.lats = append(st.lats, d.Seconds())
	}
	if st.obs != nil {
		st.obs(trace.Event{
			At:      start,
			Tenant:  st.spec.Name,
			Op:      workloadOp(st.spec.Workload),
			Bytes:   st.spec.RequestBytes,
			IO:      ioBytesOf(st.spec),
			Latency: d,
			Rank:    sh.node,
			File:    rec.path,
		})
	}
	if st.outObs != nil {
		st.outObs(OutcomeEvent{
			At: rp.Now(), Tenant: st.spec.Name,
			Kind: OutcomeCompleted, Bytes: st.spec.RequestBytes,
		})
	}
	rec.release()
}

// runResilient is the request coordinator of a resilient tenant: it runs
// the pooled call under the tenant policy and settles terminal breaker and
// outcome accounting.
func (rec *reqRec) runResilient(rp *sim.Proc) {
	sh := rec.sh
	st := sh.st
	start := rp.Now()
	pl := st.spec.Resilience
	hd := pl.Hedge.Delay(st.sketch)
	out := resilience.ExecuteCall(rp, pl, &rec.call, hd, st.breaker)
	st.inflight--
	sh.eng.inflight--
	st.retries += uint64(out.Retries)
	st.hedges += uint64(out.Hedges)
	st.hedgeWins += uint64(out.HedgeWins)
	if !out.OK {
		st.breaker.Failure(rp.Now(), rec.probe)
		st.shed++
		st.deadlineMiss++
		if st.outObs != nil {
			st.outObs(OutcomeEvent{
				At: rp.Now(), Tenant: st.spec.Name, Kind: OutcomeDeadlineMiss,
				Bytes: st.spec.RequestBytes, Retries: out.Retries, Hedges: out.Hedges,
			})
		}
		rec.release()
		return
	}
	st.breaker.Success(rec.probe)
	st.complete++
	st.payload += float64(st.spec.RequestBytes)
	st.sketch.Add(out.Elapsed.Seconds())
	if st.keep {
		st.lats = append(st.lats, out.Elapsed.Seconds())
	}
	if st.obs != nil {
		st.obs(trace.Event{
			At:      start,
			Tenant:  st.spec.Name,
			Op:      workloadOp(st.spec.Workload),
			Bytes:   st.spec.RequestBytes,
			IO:      ioBytesOf(st.spec),
			Latency: out.Elapsed,
			Rank:    sh.node,
			File:    rec.path,
		})
	}
	if st.outObs != nil {
		st.outObs(OutcomeEvent{
			At: rp.Now(), Tenant: st.spec.Name, Kind: OutcomeCompleted,
			Bytes: st.spec.RequestBytes, Retries: out.Retries, Hedges: out.Hedges,
		})
	}
	rec.release()
}

// launchShard arms the arrival tick of one tenant×node shard. Tenants
// without a resilience policy (and specs without brownout) take the legacy
// admission path, byte-identical to the engine before the policy layer
// existed; resilient tenants route through admitResilient.
func launchShard(env *sim.Env, eng *engineState, st *tenantState, cl fsapi.Client, gen *arrivalGen, node int, end sim.Time) {
	sh := &reqShard{
		eng:       eng,
		st:        st,
		cl:        cl,
		node:      node,
		resilient: st.spec.Resilience.Enabled() || eng.brown.Enabled(),
		reqName:   fmt.Sprintf("traffic/%s/req%d", st.spec.Name, node),
	}
	sh.env = env
	sh.gen = shardGen{gen: gen, end: end}
	sh.handle = sh.handleArrival
	for i := range sh.paths {
		sh.paths[i] = fmt.Sprintf("/traffic/%s/n%d/f%d", st.spec.Name, node, i)
	}
	sh.arm()
}

// ioBytesOf is the per-op transfer size a recording should carry for a
// tenant: its configured IOBytes for data workloads, 0 for metadata (no
// data moves, so there is no op size).
func ioBytesOf(t *Tenant) int64 {
	if t.Workload == Metadata {
		return 0
	}
	return t.IOBytes
}

// serveRequest performs one request's I/O on the tenant's mount.
func serveRequest(p *sim.Proc, cl fsapi.Client, t *Tenant, path string) {
	switch t.Workload {
	case SeqWrite:
		cl.StreamWrite(p, path, fsapi.Sequential, t.IOBytes, t.RequestBytes)
	case SeqRead:
		cl.StreamRead(p, path, fsapi.Sequential, t.IOBytes, t.RequestBytes)
	case RandRead:
		cl.StreamRead(p, path, fsapi.Random, t.IOBytes, t.RequestBytes)
	case Metadata:
		f := cl.Open(p, path, false)
		f.Close(p)
	}
}
