package traffic

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"storagesim/internal/fsapi"
	"storagesim/internal/sim"
	"storagesim/internal/trace"
)

// replayTrace builds a small two-tenant normalized trace: a writer issuing
// 1 MiB requests every 5ms and a metadata tenant opening every 2ms.
func replayFixture(t *testing.T) *trace.Trace {
	t.Helper()
	var events []trace.Event
	for i := 0; i < 20; i++ {
		events = append(events, trace.Event{
			At: sim.Time(i) * sim.Time(5*time.Millisecond), Tenant: "w", Op: trace.OpWrite,
			Bytes: 1 << 20, Rank: -1,
		})
	}
	for i := 0; i < 50; i++ {
		events = append(events, trace.Event{
			At: sim.Time(i) * sim.Time(2*time.Millisecond), Tenant: "m", Op: trace.OpMeta, Rank: -1,
		})
	}
	tr, err := trace.Normalize(events)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestReplayTraceBasics: every recorded event is re-issued and completes,
// payload is attributed, and the makespan covers the stream.
func TestReplayTraceBasics(t *testing.T) {
	env, fab, mount := fakeRig(1e9)
	tr := replayFixture(t)
	rep := ReplayTrace(env, fab, 2, mount, TraceConfig{Trace: tr})
	if len(rep.Tenants) != 2 {
		t.Fatalf("tenant count %d", len(rep.Tenants))
	}
	byName := map[string]TenantReport{}
	for _, tn := range rep.Tenants {
		byName[tn.Name] = tn
	}
	w, m := byName["w"], byName["m"]
	if w.Offered != 20 || w.Completed != 20 || w.Shed != 0 || w.InFlightEnd != 0 {
		t.Fatalf("writer books: %+v", w)
	}
	if m.Completed != 50 {
		t.Fatalf("meta completed %d", m.Completed)
	}
	if w.PayloadBytes != 20*float64(1<<20) {
		t.Fatalf("writer payload %.0f", w.PayloadBytes)
	}
	if m.PayloadBytes != 0 {
		t.Fatalf("meta payload %.0f", m.PayloadBytes)
	}
	if w.P50 <= 0 || w.P99 < w.P50 {
		t.Fatalf("writer percentiles p50 %v p99 %v", w.P50, w.P99)
	}
	// The replay drains: the makespan is at least the last issue time.
	if rep.Duration < 98*time.Millisecond {
		t.Fatalf("makespan %v shorter than the recorded stream", rep.Duration)
	}
}

// TestReplayTraceDeterminism: identical replays must produce identical
// reports including every kept latency.
func TestReplayTraceDeterminism(t *testing.T) {
	run := func() Report {
		env, fab, mount := fakeRig(2e8)
		return ReplayTrace(env, fab, 2, mount, TraceConfig{Trace: replayFixture(t), KeepLatencies: true})
	}
	// reportKey, minus the SLO attainment: no replayed tenant declares an
	// SLO, and NaN breaks DeepEqual by design.
	key := func(r Report) []TenantReport {
		out := reportKey(r)
		for i := range out {
			out[i].SLOAttainment = 0
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(key(a), key(b)) {
		t.Fatalf("identical replays diverged:\n%+v\n%+v", reportKey(a), reportKey(b))
	}
	for i := range a.Tenants {
		if !reflect.DeepEqual(a.Tenants[i].Latencies, b.Tenants[i].Latencies) {
			t.Fatalf("%s: latency streams diverged", a.Tenants[i].Name)
		}
	}
}

// TestReplayNodeAssignment: ranked events pin to node rank%nodes; rankless
// events rotate round-robin over the nodes within their tenant.
func TestReplayNodeAssignment(t *testing.T) {
	var events []trace.Event
	for i := 0; i < 6; i++ {
		events = append(events, trace.Event{
			At: sim.Time(i) * sim.Time(time.Millisecond), Tenant: "ranked", Op: trace.OpRead,
			Bytes: 1024, Rank: 5, // 5 % 2 == node 1, always
		})
		events = append(events, trace.Event{
			At: sim.Time(i) * sim.Time(time.Millisecond), Tenant: "free", Op: trace.OpRead,
			Bytes: 1024, Rank: -1,
		})
	}
	tr, err := trace.Normalize(events)
	if err != nil {
		t.Fatal(err)
	}
	env, fab, base := fakeRig(1e9)
	type key struct {
		tenant string
		node   int
	}
	mounted := map[key]bool{}
	mount := func(tenant string, node int) fsapi.Client {
		mounted[key{tenant, node}] = true
		return base(tenant, node)
	}
	ReplayTrace(env, fab, 2, mount, TraceConfig{Trace: tr})
	var got []key
	for k := range mounted {
		got = append(got, k)
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i].tenant != got[j].tenant {
			return got[i].tenant < got[j].tenant
		}
		return got[i].node < got[j].node
	})
	want := []key{{"free", 0}, {"free", 1}, {"ranked", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mounted shards %v, want %v", got, want)
	}
}

// TestReplayAdmission: with a cap, overlapping recorded requests on a
// starved link shed exactly like the stochastic engine; without one the
// whole recorded stream is admitted.
func TestReplayAdmission(t *testing.T) {
	burst := func(maxInflight int) TenantReport {
		var events []trace.Event
		for i := 0; i < 30; i++ {
			events = append(events, trace.Event{
				At: sim.Time(i) * sim.Time(10*time.Microsecond), Tenant: "b", Op: trace.OpWrite,
				Bytes: 1 << 20, Rank: -1,
			})
		}
		tr, err := trace.Normalize(events)
		if err != nil {
			t.Fatal(err)
		}
		env, fab, mount := fakeRig(1e6) // 1 MB/s against a 30 MiB burst
		rep := ReplayTrace(env, fab, 1, mount, TraceConfig{Trace: tr, MaxInflight: maxInflight})
		return rep.Tenants[0]
	}
	capped := burst(4)
	if capped.Shed == 0 {
		t.Fatal("capped burst shed nothing")
	}
	if capped.Completed+capped.Shed != capped.Offered || capped.InFlightEnd != 0 {
		t.Fatalf("books don't balance after drain: %+v", capped)
	}
	if open := burst(0); open.Shed != 0 || open.Completed != 30 {
		t.Fatalf("uncapped replay shed: %+v", open)
	}
}

// ioCaptureClient records the ioSize of every stream call.
type ioCaptureClient struct {
	*fakeClient
	ios *[]int64
}

func (c *ioCaptureClient) StreamWrite(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	*c.ios = append(*c.ios, ioSize)
	c.fakeClient.StreamWrite(p, path, a, ioSize, total)
}

func (c *ioCaptureClient) StreamRead(p *sim.Proc, path string, a fsapi.Access, ioSize, total int64) {
	*c.ios = append(*c.ios, ioSize)
	c.fakeClient.StreamRead(p, path, a, ioSize, total)
}

// TestReplayOpSize: a recorded Event.IO overrides the replay's default op
// size; without one the default applies, clamped to the request payload.
func TestReplayOpSize(t *testing.T) {
	events := []trace.Event{
		{At: 0, Tenant: "a", Op: trace.OpRead, Bytes: 1 << 20, IO: 4 << 10, Rank: -1},
		{At: sim.Time(time.Millisecond), Tenant: "a", Op: trace.OpRead, Bytes: 1 << 20, Rank: -1},
		{At: sim.Time(2 * time.Millisecond), Tenant: "a", Op: trace.OpRead, Bytes: 16 << 10, Rank: -1},
	}
	tr, err := trace.Normalize(events)
	if err != nil {
		t.Fatal(err)
	}
	env, fab, base := fakeRig(1e9)
	var ios []int64
	mount := func(tenant string, node int) fsapi.Client {
		return &ioCaptureClient{fakeClient: base(tenant, node).(*fakeClient), ios: &ios}
	}
	ReplayTrace(env, fab, 1, mount, TraceConfig{Trace: tr, IOBytes: 64 << 10})
	sort.Slice(ios, func(i, j int) bool { return ios[i] < ios[j] })
	want := []int64{4 << 10, 16 << 10, 64 << 10} // recorded IO, payload clamp, default
	if !reflect.DeepEqual(ios, want) {
		t.Fatalf("op sizes %v, want %v", ios, want)
	}
}

// TestReplayObserver: the observer re-records the replay with simulated
// latencies — re-normalizing its output must yield a replayable trace of
// the same shape (the self-audit loop).
func TestReplayObserver(t *testing.T) {
	env, fab, mount := fakeRig(1e9)
	tr := replayFixture(t)
	var rerec []trace.Event
	ReplayTrace(env, fab, 2, mount, TraceConfig{
		Trace:    tr,
		Observer: func(ev trace.Event) { rerec = append(rerec, ev) },
	})
	if len(rerec) != len(tr.Events) {
		t.Fatalf("observer saw %d events, trace has %d", len(rerec), len(tr.Events))
	}
	for _, ev := range rerec {
		if ev.Latency <= 0 {
			t.Fatalf("observer event without simulated latency: %+v", ev)
		}
		if ev.File == "" || ev.Rank < 0 {
			t.Fatalf("observer event without placement: %+v", ev)
		}
	}
	tr2, err := trace.Normalize(rerec)
	if err != nil {
		t.Fatalf("re-recorded stream does not normalize: %v", err)
	}
	if !tr2.HasLatencies() {
		t.Fatal("re-recorded stream lost latencies")
	}
}

// TestSpecFromTrace: the fitted spec reflects each tenant's majority op,
// mean payload, realized rate and arrival regularity.
func TestSpecFromTrace(t *testing.T) {
	var events []trace.Event
	// "paced": 101 rand-reads of 1 MiB exactly every 10ms — CoV 0.
	for i := 0; i < 101; i++ {
		events = append(events, trace.Event{
			At: sim.Time(i) * sim.Time(10*time.Millisecond), Tenant: "paced", Op: trace.OpRandRead,
			Bytes: 1 << 20, Rank: -1,
		})
	}
	// "bursty": 4 MiB writes with alternating 1ms/19ms gaps — CoV ~0.9.
	at := sim.Time(0)
	for i := 0; i < 100; i++ {
		events = append(events, trace.Event{At: at, Tenant: "bursty", Op: trace.OpWrite, Bytes: 4 << 20, Rank: -1})
		if i%2 == 0 {
			at = at.Add(time.Millisecond)
		} else {
			at = at.Add(19 * time.Millisecond)
		}
	}
	tr, err := trace.Normalize(events)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := SpecFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Tenant{}
	for _, tn := range spec.Tenants {
		byName[tn.Name] = tn
	}
	paced, bursty := byName["paced"], byName["bursty"]
	if paced.Workload != RandRead || paced.Arrival.Kind != DeterministicRate {
		t.Fatalf("paced fit: %+v", paced)
	}
	if paced.RequestBytes != 1<<20 || paced.IOBytes != 1<<20 {
		t.Fatalf("paced sizes: %+v", paced)
	}
	span := tr.Duration().Seconds()
	if rate := paced.Arrival.Rate; rate < 100/span*0.99 || rate > 101/span*1.01 {
		t.Fatalf("paced rate %.2f over span %.3fs", rate, span)
	}
	if bursty.Workload != SeqWrite || bursty.Arrival.Kind != Poisson {
		t.Fatalf("bursty fit: %+v", bursty)
	}
	if bursty.RequestBytes != 4<<20 || bursty.IOBytes != 1<<20 {
		t.Fatalf("bursty sizes (io must clamp at 1 MiB): %+v", bursty)
	}

	if _, err := SpecFromTrace(&trace.Trace{}); err == nil {
		t.Fatal("empty trace fitted")
	}
	zero, err := trace.Normalize([]trace.Event{{At: 0, Tenant: "z", Op: trace.OpMeta, Rank: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SpecFromTrace(zero); err == nil {
		t.Fatal("zero-span trace fitted")
	}
}

// TestMajorityOpTies: equal counts resolve in the fixed read, rand-read,
// write, meta order so fits are deterministic.
func TestMajorityOpTies(t *testing.T) {
	events := []trace.Event{
		{Op: trace.OpWrite}, {Op: trace.OpRead},
	}
	if got := majorityOp(events); got != trace.OpRead {
		t.Fatalf("tie broke to %v", got)
	}
	events = append(events, trace.Event{Op: trace.OpWrite})
	if got := majorityOp(events); got != trace.OpWrite {
		t.Fatalf("majority %v", got)
	}
}
