package traffic

import (
	"math"

	"storagesim/internal/sim"
	"storagesim/internal/stats"
)

// arrivalGen produces the merged arrival stream of one tenant×node shard:
// the superposition of that shard's slice of the tenant's client
// population, generated analytically instead of per client.
//
// The aggregation argument, per kind:
//
//   - Poisson: the superposition of n independent Poisson processes of
//     rate λ is exactly a Poisson process of rate n·λ, so one exponential
//     stream at the aggregate rate is not an approximation at all.
//   - Diurnal: the same superposition theorem holds for nonhomogeneous
//     Poisson processes; the shard draws from rate Λ(t) =
//     n·λ·(1+A·sin(2πt/P)) by Lewis–Shedler thinning against the
//     envelope Λmax = n·λ·(1+A).
//   - DeterministicRate: n clients each ticking at λ with arbitrary
//     phases merge into an aggregate stream of rate n·λ; the shard emits
//     it as an evenly spaced stream (the phase structure is not
//     observable through a fair-shared fabric, and even spacing is the
//     deterministic canonical choice).
//   - OnOff: burst/idle phases are modeled at shard granularity — the
//     shard's population moves ON and OFF together, emitting Poisson
//     arrivals at Burst·n·λ during ON phases and nothing during OFF.
//     This is the heavy-tailed extreme (perfectly correlated clients);
//     uncorrelated ON/OFF clients would just be Poisson again by
//     superposition, which the poisson kind already covers.
//
// Each shard owns a private RNG seeded by Mix64 over (engine seed, tenant
// index, shard index), so streams are independent, stable under adding
// tenants, and byte-reproducible.
type arrivalGen struct {
	arr  Arrival
	rate float64 // aggregate request rate of this shard, req/s
	rng  *stats.RNG

	// onoff state: current phase and its end time.
	on    bool
	phase sim.Time
}

// shardSeed derives the RNG seed of one tenant×shard stream.
func shardSeed(seed uint64, tenant, shard int) uint64 {
	z := stats.Mix64(seed ^ 0x7261666669637467) // "raffictg"
	z = stats.Mix64(z + uint64(tenant)*0x9e3779b97f4a7c15)
	return stats.Mix64(z + uint64(shard)*0xbf58476d1ce4e5b9)
}

// newArrivalGen builds the generator for one shard carrying rate req/s of
// the tenant's aggregate load.
func newArrivalGen(a Arrival, rate float64, seed uint64) *arrivalGen {
	return &arrivalGen{arr: a, rate: rate, rng: stats.NewRNG(seed)}
}

// next returns the virtual time of the next arrival strictly after now.
// The returned time only depends on the generator's own state, never on
// service progress: the engine is open-loop.
func (g *arrivalGen) next(now sim.Time) sim.Time {
	switch g.arr.Kind {
	case DeterministicRate:
		return now.Add(sim.Duration(1e9 / g.rate))
	case Poisson:
		return now.Add(expDur(g.rng, g.rate))
	case Diurnal:
		return g.nextDiurnal(now)
	case OnOff:
		return g.nextOnOff(now)
	}
	panic("traffic: unvalidated arrival kind " + string(g.arr.Kind))
}

// expDur draws an exponential inter-arrival at the given rate (req/s) as a
// simulator duration, floored at 1ns so time always advances.
func expDur(rng *stats.RNG, rate float64) sim.Duration {
	d := sim.Duration(rng.Exp(rate) * 1e9)
	if d < 1 {
		d = 1
	}
	return d
}

// nextDiurnal thins a homogeneous Poisson stream at the peak rate down to
// the sinusoidal instantaneous rate (Lewis–Shedler).
func (g *arrivalGen) nextDiurnal(now sim.Time) sim.Time {
	peak := g.rate * (1 + g.arr.Amplitude)
	t := now
	for {
		t = t.Add(expDur(g.rng, peak))
		// Instantaneous rate at the candidate time.
		frac := math.Sin(2 * math.Pi * float64(t) / float64(g.arr.Period))
		lambda := g.rate * (1 + g.arr.Amplitude*frac)
		if g.rng.Float64()*peak <= lambda {
			return t
		}
	}
}

// nextOnOff advances through exponentially distributed ON/OFF phases,
// emitting Poisson arrivals at the burst rate only inside ON phases.
func (g *arrivalGen) nextOnOff(now sim.Time) sim.Time {
	t := now
	for {
		if t >= g.phase {
			// Enter the next phase. Starting state is OFF so the first ON
			// burst's position is randomized too.
			if g.on {
				g.on = false
				g.phase = t.Add(expDur(g.rng, 1e9/float64(g.arr.OffMean)))
			} else {
				g.on = true
				g.phase = t.Add(expDur(g.rng, 1e9/float64(g.arr.OnMean)))
			}
			continue
		}
		if !g.on {
			t = g.phase
			continue
		}
		next := t.Add(expDur(g.rng, g.rate*g.arr.Burst))
		if next > g.phase {
			// Burst ended before the draw landed; move to the phase edge and
			// redraw in the following phase.
			t = g.phase
			continue
		}
		return next
	}
}
