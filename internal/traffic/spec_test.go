package traffic

import (
	"strings"
	"testing"
	"time"
)

const sampleSpec = `{
  "tenants": [
    {"name": "ckpt", "clients": 400000, "workload": "seq-write",
     "arrival": {"kind": "poisson", "rate": 1e-3},
     "request": "4m", "io": "1m", "max_inflight": 256, "slo_p99": "250ms"},
    {"name": "dash", "clients": 50000, "workload": "metadata",
     "arrival": {"kind": "diurnal", "rate": 2e-3, "period": "2s", "amplitude": 0.8}},
    {"name": "ml", "clients": 100000, "workload": "rand-read",
     "arrival": {"kind": "onoff", "rate": 1e-3, "on": "100ms", "off": "1s", "burst": 8},
     "request": "1m", "io": "128k"},
    {"name": "scan", "clients": 1000, "workload": "seq-read",
     "arrival": {"kind": "rate", "rate": 0.05},
     "request": "64m", "io": "1m", "slo_p99": "10"}
  ]
}`

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tenants) != 4 {
		t.Fatalf("parsed %d tenants", len(s.Tenants))
	}
	ckpt := s.Tenants[0]
	if ckpt.RequestBytes != 4<<20 || ckpt.IOBytes != 1<<20 {
		t.Fatalf("size suffixes: %+v", ckpt)
	}
	if ckpt.SLOP99 != 250*time.Millisecond {
		t.Fatalf("slo = %v", ckpt.SLOP99)
	}
	if got := ckpt.AggregateRate(); got != 400 {
		t.Fatalf("aggregate rate = %v, want 400 req/s", got)
	}
	dash := s.Tenants[1]
	if dash.Arrival.Period != 2*time.Second || dash.Arrival.Amplitude != 0.8 {
		t.Fatalf("diurnal params: %+v", dash.Arrival)
	}
	// Bare numbers are seconds, like fault schedules.
	if s.Tenants[3].SLOP99 != 10*time.Second {
		t.Fatalf("bare-seconds slo = %v", s.Tenants[3].SLOP99)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty tenants", `{"tenants":[]}`, "at least one tenant"},
		{"unknown field", `{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"poisson","rate":1},"max_inflght":9}]}`, "unknown field"},
		{"trailing data", `{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"poisson","rate":1}}]} {}`, "trailing data"},
		{"bad workload", `{"tenants":[{"name":"a","clients":1,"workload":"scribble","arrival":{"kind":"poisson","rate":1}}]}`, "unknown workload"},
		{"no clients", `{"tenants":[{"name":"a","clients":0,"workload":"metadata","arrival":{"kind":"poisson","rate":1}}]}`, "clients must be positive"},
		{"data kind without bytes", `{"tenants":[{"name":"a","clients":1,"workload":"seq-write","arrival":{"kind":"poisson","rate":1}}]}`, "positive request bytes"},
		{"metadata with bytes", `{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"poisson","rate":1},"request":"1m"}]}`, "take no bytes"},
		{"bad arrival kind", `{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"weibull","rate":1}}]}`, "unknown arrival kind"},
		{"zero rate", `{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"poisson","rate":0}}]}`, "rate must be positive"},
		{"diurnal without period", `{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"diurnal","rate":1,"amplitude":0.5}}]}`, "positive period"},
		{"amplitude out of range", `{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"diurnal","rate":1,"period":"1s","amplitude":1.5}}]}`, "out of [0,1)"},
		{"onoff without means", `{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"onoff","rate":1,"burst":2}}]}`, "positive on and off"},
		{"burst below one", `{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"onoff","rate":1,"on":"1s","off":"1s","burst":0.5}}]}`, "below 1"},
		{"poisson with burst params", `{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"poisson","rate":1,"burst":2}}]}`, "take no diurnal/burst"},
		{"negative inflight", `{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"poisson","rate":1},"max_inflight":-1}]}`, "negative inflight"},
		{"negative slo", `{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"poisson","rate":1},"slo_p99":"-1s"}]}`, ""},
		{"duplicate tenant", `{"tenants":[{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"poisson","rate":1}},{"name":"a","clients":1,"workload":"metadata","arrival":{"kind":"poisson","rate":1}}]}`, "duplicate"},
		{"bad size", `{"tenants":[{"name":"a","clients":1,"workload":"seq-read","arrival":{"kind":"poisson","rate":1},"request":"4q","io":"1m"}]}`, ""},
	}
	for _, c := range cases {
		_, err := ParseSpec([]byte(c.in))
		if err == nil {
			t.Errorf("%s: accepted %s", c.name, c.in)
			continue
		}
		if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	s, err := ParseSpec([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(out)
	if err != nil {
		t.Fatalf("marshalled spec does not re-parse: %v\n%s", err, out)
	}
	if len(back.Tenants) != len(s.Tenants) {
		t.Fatalf("tenant count changed: %d -> %d", len(s.Tenants), len(back.Tenants))
	}
	for i := range s.Tenants {
		if s.Tenants[i] != back.Tenants[i] {
			t.Errorf("tenant %d changed in round trip:\n  %+v\n  %+v", i, s.Tenants[i], back.Tenants[i])
		}
	}
}
