package traffic

import (
	"math"
	"testing"
	"time"

	"storagesim/internal/sim"
)

// drain collects all arrivals of one generator up to horizon.
func drain(g *arrivalGen, horizon sim.Time) []sim.Time {
	var out []sim.Time
	for at := g.next(0); at <= horizon; at = g.next(at) {
		out = append(out, at)
	}
	return out
}

// TestArrivalDeterminism: same (arrival, rate, seed) must reproduce the
// identical stream; a different seed must not.
func TestArrivalDeterminism(t *testing.T) {
	arrs := []Arrival{
		{Kind: DeterministicRate, Rate: 1},
		{Kind: Poisson, Rate: 1},
		{Kind: Diurnal, Rate: 1, Period: 2 * time.Second, Amplitude: 0.7},
		{Kind: OnOff, Rate: 1, OnMean: 300 * time.Millisecond, OffMean: 700 * time.Millisecond, Burst: 5},
	}
	horizon := sim.Time(0).Add(20 * time.Second)
	for _, a := range arrs {
		s1 := drain(newArrivalGen(a, 100, shardSeed(1, 0, 0)), horizon)
		s2 := drain(newArrivalGen(a, 100, shardSeed(1, 0, 0)), horizon)
		if len(s1) == 0 {
			t.Fatalf("%s: no arrivals", a.Kind)
		}
		if len(s1) != len(s2) {
			t.Fatalf("%s: reruns differ in count: %d vs %d", a.Kind, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("%s: arrival %d differs: %v vs %v", a.Kind, i, s1[i], s2[i])
			}
		}
		if a.Kind != DeterministicRate {
			s3 := drain(newArrivalGen(a, 100, shardSeed(2, 0, 0)), horizon)
			same := len(s3) == len(s1)
			if same {
				for i := range s1 {
					if s1[i] != s3[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Fatalf("%s: different seeds produced the identical stream", a.Kind)
			}
		}
	}
}

// TestArrivalRates: the empirical rate of every process must track its
// nominal aggregate rate over a long horizon. For ON/OFF the long-run rate
// is Burst·rate·on/(on+off); the spec's Rate is the per-client average
// during the whole cycle, so Burst·duty must equal the advertised mean
// when Burst = (on+off)/on — here we check the process's own math instead:
// arrivals happen at Burst·rate during the ON fraction.
func TestArrivalRates(t *testing.T) {
	horizon := sim.Time(0).Add(2000 * time.Second)
	secs := sim.Duration(horizon).Seconds()
	cases := []struct {
		arr  Arrival
		rate float64
		want float64
		tol  float64
	}{
		{Arrival{Kind: DeterministicRate, Rate: 1}, 50, 50, 0.001},
		{Arrival{Kind: Poisson, Rate: 1}, 50, 50, 0.05},
		// The sinusoid integrates to zero over whole periods: mean rate is
		// the base rate.
		{Arrival{Kind: Diurnal, Rate: 1, Period: 10 * time.Second, Amplitude: 0.9}, 50, 50, 0.05},
		// ON fraction 0.25, burst 4: long-run mean equals the base rate.
		{Arrival{Kind: OnOff, Rate: 1, OnMean: 250 * time.Millisecond, OffMean: 750 * time.Millisecond, Burst: 4}, 50, 50, 0.10},
	}
	for _, c := range cases {
		got := float64(len(drain(newArrivalGen(c.arr, c.rate, 0xfeed), horizon))) / secs
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("%s: empirical rate %.2f/s, want %.2f/s ±%d%%",
				c.arr.Kind, got, c.want, int(c.tol*100))
		}
	}
}

// TestArrivalsAdvance: every generator must return strictly increasing
// times (the engine's SleepUntil loop relies on progress).
func TestArrivalsAdvance(t *testing.T) {
	arrs := []Arrival{
		{Kind: DeterministicRate, Rate: 1},
		{Kind: Poisson, Rate: 1},
		{Kind: Diurnal, Rate: 1, Period: time.Second, Amplitude: 0.99},
		{Kind: OnOff, Rate: 1, OnMean: 10 * time.Millisecond, OffMean: 10 * time.Millisecond, Burst: 100},
	}
	for _, a := range arrs {
		g := newArrivalGen(a, 1e6, 7) // very high rate stresses the 1ns floor
		prev := sim.Time(0)
		for i := 0; i < 10000; i++ {
			next := g.next(prev)
			if next <= prev {
				t.Fatalf("%s: arrival %d did not advance: %v -> %v", a.Kind, i, prev, next)
			}
			prev = next
		}
	}
}

// TestShardSeedsDiffer: distinct (tenant, shard) coordinates must get
// distinct streams from the same engine seed.
func TestShardSeedsDiffer(t *testing.T) {
	seen := map[uint64]bool{}
	for tenant := 0; tenant < 8; tenant++ {
		for shard := 0; shard < 64; shard++ {
			s := shardSeed(0x5eed, tenant, shard)
			if seen[s] {
				t.Fatalf("seed collision at tenant %d shard %d", tenant, shard)
			}
			seen[s] = true
		}
	}
}
