package traffic

import (
	"testing"
	"time"

	"storagesim/internal/netsim"
	"storagesim/internal/resilience"
)

// BenchmarkTrafficEngine measures the end-to-end cost of one generated
// request through the open-loop engine: arrival draw, admission check,
// request process spawn, one fabric transfer, sketch update. The loop runs
// whole traffic windows (~4096 requests each) until b.N requests have been
// generated, so ns/op and allocs/op read as per generated request — the
// number that bounds how many logical clients a saturation sweep can
// afford to aggregate.
func BenchmarkTrafficEngine(b *testing.B) {
	b.ReportAllocs()
	spec := Spec{Tenants: []Tenant{{
		Name: "bench", Clients: 1_000_000, Workload: SeqWrite,
		Arrival:      Arrival{Kind: Poisson, Rate: 1e-3}, // 1000 req/s aggregate
		RequestBytes: 1 << 20, IOBytes: 1 << 20,
		MaxInflight: 256,
	}}}
	const requestsPerRun = 4096
	window := time.Duration(requestsPerRun) * time.Millisecond
	runs := 0
	var generated uint64
	b.ResetTimer()
	for generated < uint64(b.N) {
		env, fab, mount := fakeRig(1e12)
		rep := Run(env, fab, 4, mount, Config{
			Spec: spec, Duration: window, Seed: uint64(runs + 1),
		})
		generated += rep.Tenants[0].Offered
		runs++
	}
	b.StopTimer()
	b.ReportMetric(float64(generated)/float64(runs), "req/run")
}

// BenchmarkResilienceOverhead is BenchmarkTrafficEngine with the full
// policy stack armed — deadline, retry budget, hedging, breaker, brownout
// — on an uncongested rig, so every request takes the resilient path but
// nothing actually fires. The delta against BenchmarkTrafficEngine is the
// pure bookkeeping cost of the layer per request (coordinator proc, abort
// token, breaker check, hedge/deadline timers armed and cancelled).
func BenchmarkResilienceOverhead(b *testing.B) {
	b.ReportAllocs()
	spec := Spec{
		Brownout: resilience.Brownout{Capacity: 1024, Tiers: []float64{1.0, 0.5}},
		Tenants: []Tenant{{
			Name: "bench", Clients: 1_000_000, Workload: SeqWrite,
			Arrival:      Arrival{Kind: Poisson, Rate: 1e-3}, // 1000 req/s aggregate
			RequestBytes: 1 << 20, IOBytes: 1 << 20,
			MaxInflight: 256,
			Resilience: resilience.Policy{
				Deadline: time.Second,
				Retry:    netsim.RetryPolicy{Timeout: 10 * time.Millisecond, Multiplier: 2, MaxRetries: 2, Jitter: time.Millisecond},
				Hedge:    resilience.Hedge{Quantile: 0.99, MinSamples: 32},
				Breaker:  resilience.BreakerSpec{Failures: 10, Cooldown: 100 * time.Millisecond, Probes: 2, Successes: 3},
			},
		}},
	}
	const requestsPerRun = 4096
	window := time.Duration(requestsPerRun) * time.Millisecond
	runs := 0
	var generated uint64
	b.ResetTimer()
	for generated < uint64(b.N) {
		env, fab, mount := fakeRig(1e12)
		rep := Run(env, fab, 4, mount, Config{
			Spec: spec, Duration: window, Seed: uint64(runs + 1),
		})
		generated += rep.Tenants[0].Offered
		runs++
	}
	b.StopTimer()
	b.ReportMetric(float64(generated)/float64(runs), "req/run")
}
