package traffic

import (
	"testing"
	"time"
)

// BenchmarkTrafficEngine measures the end-to-end cost of one generated
// request through the open-loop engine: arrival draw, admission check,
// request process spawn, one fabric transfer, sketch update. The loop runs
// whole traffic windows (~4096 requests each) until b.N requests have been
// generated, so ns/op and allocs/op read as per generated request — the
// number that bounds how many logical clients a saturation sweep can
// afford to aggregate.
func BenchmarkTrafficEngine(b *testing.B) {
	b.ReportAllocs()
	spec := Spec{Tenants: []Tenant{{
		Name: "bench", Clients: 1_000_000, Workload: SeqWrite,
		Arrival:      Arrival{Kind: Poisson, Rate: 1e-3}, // 1000 req/s aggregate
		RequestBytes: 1 << 20, IOBytes: 1 << 20,
		MaxInflight: 256,
	}}}
	const requestsPerRun = 4096
	window := time.Duration(requestsPerRun) * time.Millisecond
	runs := 0
	var generated uint64
	b.ResetTimer()
	for generated < uint64(b.N) {
		env, fab, mount := fakeRig(1e12)
		rep := Run(env, fab, 4, mount, Config{
			Spec: spec, Duration: window, Seed: uint64(runs + 1),
		})
		generated += rep.Tenants[0].Offered
		runs++
	}
	b.StopTimer()
	b.ReportMetric(float64(generated)/float64(runs), "req/run")
}
