package traffic

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"storagesim/internal/fsapi"
	"storagesim/internal/netsim"
	"storagesim/internal/resilience"
	"storagesim/internal/sim"
)

// buildShardedRig assembles a domain group with nracks racks — each with
// its own env, fabric and one shared pipe — in a full mesh at linkLat.
func buildShardedRig(parallel, nracks, nodes int, bw float64, linkLat sim.Duration) (*sim.Group, []Rack) {
	g := sim.NewGroup(parallel)
	racks := make([]Rack, nracks)
	for r := 0; r < nracks; r++ {
		env := sim.NewEnv()
		fab := sim.NewFabric(env)
		pipe := fab.NewPipe(fmt.Sprintf("rack%d", r), bw, 10*time.Microsecond)
		racks[r] = Rack{
			Shard: g.AddShard(fmt.Sprintf("rack%d", r), env),
			Fab:   fab,
			Nodes: nodes,
			Mount: func(tenant string, node int) fsapi.Client {
				return &fakeClient{fab: fab, path: []*sim.Pipe{pipe}, opLat: 200 * time.Microsecond}
			},
		}
	}
	if nracks > 1 {
		g.LinkAll(linkLat)
	}
	return g, racks
}

func shardedDigest(t *testing.T, parallel int, remote float64) string {
	t.Helper()
	g, racks := buildShardedRig(parallel, 3, 2, 1e9, 500*time.Microsecond)
	defer g.Shutdown()
	rep := RunSharded(g, racks, ShardedConfig{
		Config:         Config{Spec: twoTenantSpec(), Duration: 2 * time.Second, Seed: 7},
		RemoteFraction: remote,
	})
	return rep.Digest()
}

// TestShardedLockstep pins the engine-level tentpole property: the full
// sharded report — counters, delivered-byte floats and latency quantiles of
// every rack — is byte-identical whether the racks advance on one executor
// (the sequential oracle) or on 2 or 4.
func TestShardedLockstep(t *testing.T) {
	want := shardedDigest(t, 1, 0.4)
	for _, parallel := range []int{2, 4} {
		if got := shardedDigest(t, parallel, 0.4); got != want {
			t.Errorf("parallel=%d diverged from sequential oracle:\n got %s\nwant %s", parallel, got, want)
		}
	}
	// Sanity: remote placement must actually couple the racks — an
	// uncoupled run has to produce a different outcome.
	if local := shardedDigest(t, 1, 0); local == want {
		t.Fatal("remote fraction 0.4 produced the same digest as 0: forwarding never engaged")
	}
}

// resilientShardedSpec layers every resilience mechanism onto two tenants
// so the lockstep digest covers deadlines, retries, hedging, breakers and
// brownout at once.
func resilientShardedSpec() Spec {
	return Spec{
		Brownout: resilience.Brownout{Capacity: 48, Tiers: []float64{1.0, 0.5}},
		Tenants: []Tenant{
			{
				Name: "writer", Clients: 100_000, Workload: SeqWrite,
				Arrival:      Arrival{Kind: Poisson, Rate: 1e-3},
				RequestBytes: 1 << 20, IOBytes: 1 << 20,
				MaxInflight: 32, Priority: 0,
				Resilience: resilience.Policy{
					Deadline: 80 * time.Millisecond,
					Retry:    netsim.RetryPolicy{Timeout: 10 * time.Millisecond, Multiplier: 2, MaxRetries: 2, Jitter: 5 * time.Millisecond},
					Hedge:    resilience.Hedge{Quantile: 0.5, MinSamples: 8},
					Breaker:  resilience.BreakerSpec{Failures: 20, Cooldown: 100 * time.Millisecond, Probes: 2, Successes: 3},
				},
			},
			{
				Name: "batch", Clients: 100_000, Workload: SeqRead,
				Arrival:      Arrival{Kind: Poisson, Rate: 1e-3},
				RequestBytes: 1 << 20, IOBytes: 1 << 20,
				MaxInflight: 32, Priority: 1,
				Resilience: resilience.Policy{
					Deadline: 120 * time.Millisecond,
					Retry:    netsim.RetryPolicy{Timeout: 20 * time.Millisecond, Multiplier: 2, MaxRetries: 1},
				},
			},
		},
	}
}

func resilientShardedDigest(t *testing.T, parallel int) string {
	t.Helper()
	g, racks := buildShardedRig(parallel, 3, 2, 1e8, 500*time.Microsecond)
	defer g.Shutdown()
	rep := RunSharded(g, racks, ShardedConfig{
		Config:         Config{Spec: resilientShardedSpec(), Duration: 2 * time.Second, Seed: 7, Drain: true},
		RemoteFraction: 0.4,
	})
	return rep.Digest()
}

// TestShardedResilienceLockstep extends the lockstep gate to the resilience
// layer: with deadlines cancelling transfers mid-flight, jittered retries,
// hedge races and breaker state all active across three coupled racks, the
// digest must still be byte-identical on 1, 2 and 4 executors. This also
// holds under -tags simsequential / simreference (the resilience smoke
// target runs all three kernel builds).
func TestShardedResilienceLockstep(t *testing.T) {
	want := resilientShardedDigest(t, 1)
	for _, parallel := range []int{2, 4} {
		if got := resilientShardedDigest(t, parallel); got != want {
			t.Errorf("parallel=%d diverged from sequential oracle:\n got %s\nwant %s", parallel, got, want)
		}
	}
	// The digest is only a meaningful gate if the layer engaged: the
	// congested rig must show deadline misses and retries somewhere.
	if !strings.Contains(want, "writer:") {
		t.Fatalf("digest shape: %s", want)
	}
}

// TestShardedSingleRackMatchesRun: with one rack the sharded engine is the
// classic engine — same arrivals, same admissions, same byte stream, same
// latency list, element for element.
func TestShardedSingleRackMatchesRun(t *testing.T) {
	cfg := Config{Spec: twoTenantSpec(), Duration: 2 * time.Second, Seed: 3, KeepLatencies: true}

	env, fab, mount := fakeRig(1e9)
	classic := Run(env, fab, 2, mount, cfg)

	// RemoteFraction 0.5 with one rack must be forced to 0: nowhere else
	// to place data.
	g, racks := buildShardedRig(2, 1, 2, 1e9, 500*time.Microsecond)
	defer g.Shutdown()
	sharded := RunSharded(g, racks, ShardedConfig{Config: cfg, RemoteFraction: 0.5})

	if len(sharded.Tenants) != len(classic.Tenants) || len(sharded.Racks) != 1 {
		t.Fatalf("report shape: %d tenants / %d racks", len(sharded.Tenants), len(sharded.Racks))
	}
	for ti := range classic.Tenants {
		a, b := classic.Tenants[ti], sharded.Tenants[ti]
		if a.Offered != b.Offered || a.Shed != b.Shed || a.Completed != b.Completed || a.InFlightEnd != b.InFlightEnd {
			t.Errorf("%s counters diverged: classic %d/%d/%d/%d sharded %d/%d/%d/%d",
				a.Name, a.Offered, a.Shed, a.Completed, a.InFlightEnd,
				b.Offered, b.Shed, b.Completed, b.InFlightEnd)
		}
		if a.DeliveredBytes != b.DeliveredBytes {
			t.Errorf("%s bytes diverged: classic %v sharded %v", a.Name, a.DeliveredBytes, b.DeliveredBytes)
		}
		if a.P50 != b.P50 || a.P95 != b.P95 || a.P99 != b.P99 {
			t.Errorf("%s quantiles diverged: classic %v/%v/%v sharded %v/%v/%v",
				a.Name, a.P50, a.P95, a.P99, b.P50, b.P95, b.P99)
		}
		if !reflect.DeepEqual(a.Latencies, b.Latencies) {
			t.Errorf("%s latency streams diverged (%d vs %d values)", a.Name, len(a.Latencies), len(b.Latencies))
		}
	}
}

// TestShardedRemoteLatency forces every request remote (fraction 1, two
// racks) and checks the exact latency composition: forward link crossing +
// remote metadata service + reply link crossing, measured on the home
// rack's clock.
func TestShardedRemoteLatency(t *testing.T) {
	const linkLat = 500 * time.Microsecond
	const opLat = 200 * time.Microsecond
	spec := Spec{Tenants: []Tenant{{
		Name: "md", Clients: 50_000, Workload: Metadata,
		Arrival: Arrival{Kind: DeterministicRate, Rate: 2e-3}, // 100 req/s aggregate
	}}}
	g, racks := buildShardedRig(2, 2, 1, 1e9, linkLat)
	defer g.Shutdown()
	rep := RunSharded(g, racks, ShardedConfig{
		Config:         Config{Spec: spec, Duration: time.Second, Seed: 11, KeepLatencies: true},
		RemoteFraction: 1,
	})
	md := rep.Tenants[0]
	if md.Offered == 0 || md.Completed == 0 {
		t.Fatalf("no traffic: offered %d completed %d", md.Offered, md.Completed)
	}
	if md.Completed+uint64(md.InFlightEnd) != md.Offered || md.Shed != 0 {
		t.Fatalf("accounting: offered %d completed %d inflight %d shed %d",
			md.Offered, md.Completed, md.InFlightEnd, md.Shed)
	}
	want := (2*linkLat + opLat).Seconds()
	for i, lat := range md.Latencies {
		if lat != want {
			t.Fatalf("request %d latency %v, want %v (2 link crossings + remote service)", i, lat, want)
		}
	}
}

// TestShardedValidation covers the guard rails of RunSharded.
func TestShardedValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	cfg := ShardedConfig{Config: Config{Spec: twoTenantSpec(), Duration: time.Second, Seed: 1}}

	g, racks := buildShardedRig(1, 2, 1, 1e9, 500*time.Microsecond)
	defer g.Shutdown()
	mustPanic("no racks", func() { RunSharded(g, nil, cfg) })
	bad := cfg
	bad.RemoteFraction = 1.5
	mustPanic("remote fraction", func() { RunSharded(g, racks, bad) })
	zero := cfg
	zero.Duration = 0
	mustPanic("zero duration", func() { RunSharded(g, racks, zero) })
	RunSharded(g, racks, cfg)
	mustPanic("stale group", func() { RunSharded(g, racks, cfg) })
}

// TestShardedDigestShape: the digest names every rack and tenant — the
// lockstep comparisons above are only as strong as the digest's coverage.
func TestShardedDigestShape(t *testing.T) {
	d := shardedDigest(t, 1, 0.4)
	for _, wantSub := range []string{"rack0", "rack1", "rack2", "writer:", "md:"} {
		if !strings.Contains(d, wantSub) {
			t.Fatalf("digest missing %q: %s", wantSub, d)
		}
	}
	if strings.Contains(d, fmt.Sprintf("%016x", math.Float64bits(0))) == false {
		// md tenant moves no bytes — its zero DeliveredBytes must appear
		// as an explicit bit pattern, proving floats are bit-rendered.
		t.Fatalf("digest lacks float bit patterns: %s", d)
	}
}
