package traffic

import (
	"fmt"
	"math"

	"storagesim/internal/fsapi"
	"storagesim/internal/resilience"
	"storagesim/internal/sim"
	"storagesim/internal/stats"
)

// Sharded execution: the same open-loop multi-tenant engine, but spread
// over a domain-partitioned cluster. Each Rack is one sim.Group shard — its
// own Env, fabric and backend instance — and racks advance concurrently
// under the group's conservative synchronization. Tenants span the whole
// cluster: every rack carries its slice of each tenant's arrival stream,
// and a configurable fraction of requests are *remote* — their data lives
// on another rack (placement by request hash), so they are forwarded over
// the inter-rack link, served by the owning rack's backend, and the reply
// crosses the link again. Remote traffic is the coupling surface that makes
// the partition a single simulation rather than R independent ones.

// Rack describes one shard of a sharded deployment.
type Rack struct {
	// Shard is the rack's slot in the domain group (its Env drives every
	// process of this rack).
	Shard *sim.Shard
	// Fab is the rack's fabric, used for per-tenant delivered-byte
	// attribution; nil disables goodput accounting for this rack.
	Fab *sim.Fabric
	// Nodes is the rack's compute-node count.
	Nodes int
	// Mount mints a fresh client mount for the named tenant on rack-local
	// node i, exactly like the mount callback of Run.
	Mount func(tenant string, node int) fsapi.Client
}

// ShardedConfig parameterizes a sharded traffic run.
type ShardedConfig struct {
	Config
	// RemoteFraction is the probability that a request's data lives on
	// another rack (uniform over the others), drawn per request from a
	// deterministic placement stream. 0 decouples the racks entirely;
	// realistic scale-out deployments sit somewhere below 1 - 1/racks.
	RemoteFraction float64
}

// RackReport is the rack-local accounting of one rack: arrivals generated
// on the rack (including its forwarded remote requests) and bytes served by
// the rack's own backend.
type RackReport struct {
	Rack    int
	Name    string
	Tenants []TenantReport
}

// ShardedReport is the outcome of a sharded run: per-rack accounting plus
// the cluster-wide merge (tenant sums, sketches merged in rack order).
type ShardedReport struct {
	Duration sim.Duration
	Racks    []RackReport
	Tenants  []TenantReport
}

// Digest renders the full observable outcome with float bit patterns — the
// event-order-sensitive witness the lockstep tests compare across executor
// layouts and against the sequential oracle.
func (r ShardedReport) Digest() string {
	out := fmt.Sprintf("window=%v", r.Duration)
	for _, rr := range r.Racks {
		out += fmt.Sprintf(" [%s", rr.Name)
		for _, tr := range rr.Tenants {
			out += fmt.Sprintf(" %s:%d/%d/%d/%d:%d/%d/%d/%d/%d/%d/%d:%016x:%016x/%016x/%016x",
				tr.Name, tr.Offered, tr.Shed, tr.Completed, tr.InFlightEnd,
				tr.ShedAdmission, tr.ShedBrownout, tr.ShedBreaker, tr.DeadlineMiss,
				tr.Retries, tr.Hedges, tr.HedgeWins,
				math.Float64bits(tr.DeliveredBytes),
				math.Float64bits(tr.P50.Seconds()),
				math.Float64bits(tr.P95.Seconds()),
				math.Float64bits(tr.P99.Seconds()))
		}
		out += "]"
	}
	return out
}

// rackTenant is the rack-local admission/accounting state of one tenant —
// touched only from the rack's own Env, so the domain executors never share
// it.
type rackTenant struct {
	tenantState
	remoteMount fsapi.Client // serves requests forwarded from other racks
}

// RunSharded executes the spec across the racks of a domain group and
// reports per-rack and merged SLO outcomes. The group must be fresh (its
// barrier clock at zero) with every rack's Shard registered on it and
// inter-rack links declared (required when RemoteFraction > 0). RunSharded
// drives the group itself; the caller shuts it down afterwards.
func RunSharded(g *sim.Group, racks []Rack, cfg ShardedConfig) ShardedReport {
	if err := cfg.Spec.Validate(); err != nil {
		panic(fmt.Sprintf("traffic: invalid spec: %v", err))
	}
	if len(racks) == 0 {
		panic("traffic: need at least one rack")
	}
	if cfg.Duration <= 0 {
		panic("traffic: need a positive duration")
	}
	if cfg.RemoteFraction < 0 || cfg.RemoteFraction > 1 {
		panic("traffic: remote fraction out of [0,1]")
	}
	if g.Now() != 0 {
		panic("traffic: sharded run needs a fresh group")
	}
	scale := cfg.LoadScale
	if scale == 0 {
		scale = 1
	}
	remote := cfg.RemoteFraction
	if len(racks) == 1 {
		remote = 0 // nowhere else to place data
	}
	end := sim.Time(0).Add(cfg.Duration)

	totalNodes := 0
	for _, rk := range racks {
		if rk.Nodes <= 0 {
			panic("traffic: rack needs at least one node")
		}
		totalNodes += rk.Nodes
	}

	// states[r][ti] is rack r's accounting slot for tenant ti. Breakers
	// are per tenant×rack — each rack is its own backend instance, which
	// is exactly the per-tenant×backend granularity the policy wants.
	// Brownout capacity is likewise split evenly (rounded up) per rack,
	// mirroring the inflight-cap split: admission state never crosses a
	// domain boundary.
	brown := cfg.Spec.Brownout
	if brown.Enabled() && len(racks) > 1 {
		brown.Capacity = (brown.Capacity + len(racks) - 1) / len(racks)
	}
	engs := make([]*engineState, len(racks))
	states := make([][]*rackTenant, len(racks))
	for r := range racks {
		engs[r] = &engineState{brown: brown}
		states[r] = make([]*rackTenant, len(cfg.Spec.Tenants))
	}
	for ti := range cfg.Spec.Tenants {
		t := &cfg.Spec.Tenants[ti]
		// Admission capacity is rack-local: the tenant's global in-flight
		// cap split evenly (rounded up) across the racks carrying it.
		rackCap := t.MaxInflight
		if rackCap > 0 && len(racks) > 1 {
			rackCap = (rackCap + len(racks) - 1) / len(racks)
		}
		for r := range racks {
			st := &rackTenant{}
			st.spec = t
			st.capacity = rackCap
			st.sketch = stats.NewSketch(cfg.SketchAlpha)
			st.keep = cfg.KeepLatencies
			st.breaker = resilience.NewBreaker(t.Resilience.Breaker)
			states[r][ti] = st
		}
	}

	// Mount order per rack: every tenant's per-node generator mounts first
	// (matching Run's order exactly, so a 1-rack sharded run reproduces the
	// unsharded byte stream), then — only when remote traffic exists — one
	// remote-service mount per tenant.
	base := 0
	for r := range racks {
		rk := &racks[r]
		for ti := range cfg.Spec.Tenants {
			t := &cfg.Spec.Tenants[ti]
			shardRate := t.AggregateRate() * scale / float64(totalNodes)
			for node := 0; node < rk.Nodes; node++ {
				cl := rk.Mount(t.Name, node)
				if tg, ok := cl.(fsapi.FlowTagger); ok {
					tg.SetFlowTag(t.Name)
				}
				gen := newArrivalGen(t.Arrival, shardRate, shardSeed(cfg.Seed, ti, base+node))
				place := placementSeed(cfg.Seed, ti, base+node)
				launchRackShard(g, engs[r], racks, states, r, ti, cl, gen, node, end, remote, place)
			}
		}
		if remote > 0 {
			for ti := range cfg.Spec.Tenants {
				t := &cfg.Spec.Tenants[ti]
				cl := rk.Mount(t.Name+"@rem", ti%rk.Nodes)
				if tg, ok := cl.(fsapi.FlowTagger); ok {
					tg.SetFlowTag(t.Name)
				}
				states[r][ti].remoteMount = cl
			}
		}
		base += rk.Nodes
	}

	g.Run(end)

	rep := ShardedReport{Duration: cfg.Duration}
	for r := range racks {
		rr := RackReport{Rack: r, Name: racks[r].Shard.Name()}
		for ti := range cfg.Spec.Tenants {
			st := states[r][ti]
			tr := tenantReport(&st.tenantState)
			if racks[r].Fab != nil {
				tr.DeliveredBytes = racks[r].Fab.TagBytes(st.spec.Name)
			}
			rr.Tenants = append(rr.Tenants, tr)
		}
		rep.Racks = append(rep.Racks, rr)
	}
	for ti := range cfg.Spec.Tenants {
		t := &cfg.Spec.Tenants[ti]
		merged := TenantReport{Name: t.Name, SLOP99: t.SLOP99, Sketch: stats.NewSketch(cfg.SketchAlpha)}
		for r := range racks {
			tr := &rep.Racks[r].Tenants[ti]
			merged.Offered += tr.Offered
			merged.Shed += tr.Shed
			merged.Completed += tr.Completed
			merged.ShedAdmission += tr.ShedAdmission
			merged.ShedBrownout += tr.ShedBrownout
			merged.ShedBreaker += tr.ShedBreaker
			merged.DeadlineMiss += tr.DeadlineMiss
			merged.Retries += tr.Retries
			merged.Hedges += tr.Hedges
			merged.HedgeWins += tr.HedgeWins
			merged.Breaker.Opens += tr.Breaker.Opens
			merged.Breaker.HalfOpens += tr.Breaker.HalfOpens
			merged.Breaker.Closes += tr.Breaker.Closes
			merged.InFlightEnd += tr.InFlightEnd
			merged.DeliveredBytes += tr.DeliveredBytes
			merged.Sketch.Merge(tr.Sketch)
			merged.Latencies = append(merged.Latencies, tr.Latencies...)
		}
		merged.P50 = sketchDur(merged.Sketch, 50)
		merged.P95 = sketchDur(merged.Sketch, 95)
		merged.P99 = sketchDur(merged.Sketch, 99)
		merged.SLOAttainment = math.NaN()
		if t.SLOP99 > 0 && merged.Completed > 0 {
			merged.SLOAttainment = merged.Sketch.FractionBelow(t.SLOP99.Seconds())
		}
		rep.Tenants = append(rep.Tenants, merged)
	}
	return rep
}

// tenantReport projects one tenant state onto its report row (shared with
// the unsharded path's bookkeeping fields).
func tenantReport(st *tenantState) TenantReport {
	tr := TenantReport{
		Name:          st.spec.Name,
		Offered:       st.offered,
		Shed:          st.shed,
		Completed:     st.complete,
		ShedAdmission: st.shedAdmission,
		ShedBrownout:  st.shedBrownout,
		ShedBreaker:   st.shedBreaker,
		DeadlineMiss:  st.deadlineMiss,
		Retries:       st.retries,
		Hedges:        st.hedges,
		HedgeWins:     st.hedgeWins,
		Breaker:       st.breaker.Stats(),
		InFlightEnd:   st.inflight,
		SLOP99:        st.spec.SLOP99,
		Sketch:        st.sketch,
		Latencies:     st.lats,
	}
	tr.P50 = sketchDur(st.sketch, 50)
	tr.P95 = sketchDur(st.sketch, 95)
	tr.P99 = sketchDur(st.sketch, 99)
	tr.SLOAttainment = math.NaN()
	if st.spec.SLOP99 > 0 && st.complete > 0 {
		tr.SLOAttainment = st.sketch.FractionBelow(st.spec.SLOP99.Seconds())
	}
	return tr
}

// placementSeed derives the per-generator placement RNG seed, independent
// of the arrival stream so turning remote traffic on does not perturb
// arrival times.
func placementSeed(seed uint64, tenant, shard int) uint64 {
	return stats.Mix64(shardSeed(seed, tenant, shard) ^ 0x706c6163656d6e74) // "placemnt"
}

// launchRackShard starts the generator of one tenant×rack×node shard. Local
// requests run exactly like the unsharded engine's; remote requests are
// admitted locally, forwarded to the owning rack over the inter-rack link,
// served there on the tenant's remote-service mount, and completed when the
// reply message lands back home. The request's latency therefore includes
// two link crossings plus the remote rack's service time, measured entirely
// on the home rack's clock.
//
// The resilience layer applies to rack-local requests only: a forwarded
// request's attempts would need cross-domain cancellation (an abort token
// is single-Env state), so remote requests run the baseline path and hand
// back any breaker probe grant (Release — the grant is unused, not failed).
// Breakers still observe every local outcome, which is where the backend
// they guard actually serves.
func launchRackShard(g *sim.Group, eng *engineState, racks []Rack, states [][]*rackTenant, r, ti int,
	cl fsapi.Client, gen *arrivalGen, node int, end sim.Time, remote float64, placeSeed uint64) {
	rk := &racks[r]
	st := states[r][ti]
	env := rk.Shard.Env()
	genName := fmt.Sprintf("traffic/%s/r%dgen%d", st.spec.Name, r, node)
	reqName := fmt.Sprintf("traffic/%s/r%dreq%d", st.spec.Name, r, node)
	paths := make([]string, reqFiles)
	remPaths := make([]string, reqFiles)
	for i := range paths {
		// Local paths use the unsharded engine's namespace (node indices are
		// rack-local, and each rack is its own backend), so a 1-rack sharded
		// run reproduces the unsharded byte stream exactly.
		paths[i] = fmt.Sprintf("/traffic/%s/n%d/f%d", st.spec.Name, node, i)
		remPaths[i] = fmt.Sprintf("/traffic/%s/rem-r%dn%d/f%d", st.spec.Name, r, node, i)
	}
	resilient := st.spec.Resilience.Enabled() || eng.brown.Enabled()
	place := stats.NewRNG(placeSeed)
	env.Go(genName, func(p *sim.Proc) {
		var reqIdx uint64
		for at := gen.next(0); at <= end; at = gen.next(at) {
			p.SleepUntil(at)
			st.offered++
			probe := false
			if resilient {
				var ok bool
				now := p.Now()
				if ok, probe = st.breaker.Allow(now); !ok {
					st.shed++
					st.shedBreaker++
					continue
				}
				if eng.brown.Enabled() && eng.inflight >= eng.brown.Threshold(st.spec.Priority) {
					st.breaker.Release(probe)
					st.shed++
					st.shedBrownout++
					continue
				}
			}
			if st.capacity > 0 && st.inflight >= st.capacity {
				st.breaker.Release(probe)
				st.shed++
				st.shedAdmission++
				continue
			}
			idx := reqIdx % reqFiles
			reqIdx++
			target := r
			if remote > 0 {
				// Placement draw: one uniform for the remote decision, one
				// for the owning rack among the others. Both are consumed
				// unconditionally so admission backpressure never shifts the
				// placement stream.
				u := place.Uint64()
				v := place.Uint64()
				if float64(u>>11)/(1<<53) < remote {
					target = int(v % uint64(len(racks)-1))
					if target >= r {
						target++
					}
				}
			}
			st.inflight++
			eng.inflight++
			if target == r {
				path := paths[idx]
				if resilient {
					flowID := (uint64(node)+1)*0x9e3779b97f4a7c15 + reqIdx
					pr := probe
					env.Go(reqName, func(rp *sim.Proc) {
						pl := st.spec.Resilience
						hd := pl.Hedge.Delay(st.sketch)
						req := resilience.Request{FlowID: flowID, Attempt: func(ap *sim.Proc) {
							serveRequest(ap, cl, st.spec, path)
						}}
						out := resilience.Execute(rp, pl, req, hd, st.breaker)
						st.inflight--
						eng.inflight--
						st.retries += uint64(out.Retries)
						st.hedges += uint64(out.Hedges)
						st.hedgeWins += uint64(out.HedgeWins)
						if !out.OK {
							st.breaker.Failure(rp.Now(), pr)
							st.shed++
							st.deadlineMiss++
							return
						}
						st.breaker.Success(pr)
						st.complete++
						st.sketch.Add(out.Elapsed.Seconds())
						if st.keep {
							st.lats = append(st.lats, out.Elapsed.Seconds())
						}
					})
					continue
				}
				env.Go(reqName, func(rp *sim.Proc) {
					start := rp.Now()
					serveRequest(rp, cl, st.spec, path)
					st.inflight--
					eng.inflight--
					st.complete++
					lat := rp.Now().Sub(start).Seconds()
					st.sketch.Add(lat)
					if st.keep {
						st.lats = append(st.lats, lat)
					}
				})
				continue
			}
			// Forwarded request: baseline path; the probe grant (if any) is
			// unused — hand it back so half-open probe slots never leak to
			// requests whose outcome the breaker will not see.
			st.breaker.Release(probe)
			start := env.Now()
			path := remPaths[idx]
			home, owner := rk.Shard, racks[target].Shard
			remoteSt := states[target][ti]
			home.Send(owner, 0, func() {
				owner.Env().Go(reqName+"@rem", func(rp *sim.Proc) {
					serveRequest(rp, remoteSt.remoteMount, st.spec, path)
					owner.Send(home, 0, func() {
						st.inflight--
						eng.inflight--
						st.complete++
						lat := home.Env().Now().Sub(start).Seconds()
						st.sketch.Add(lat)
						if st.keep {
							st.lats = append(st.lats, lat)
						}
					})
				})
			})
		}
	})
}
