package traffic

import (
	"fmt"
	"math"

	"storagesim/internal/fsapi"
	"storagesim/internal/resilience"
	"storagesim/internal/sim"
	"storagesim/internal/stats"
)

// Sharded execution: the same open-loop multi-tenant engine, but spread
// over a domain-partitioned cluster. Each Rack is one sim.Group shard — its
// own Env, fabric and backend instance — and racks advance concurrently
// under the group's conservative synchronization. Tenants span the whole
// cluster: every rack carries its slice of each tenant's arrival stream,
// and a configurable fraction of requests are *remote* — their data lives
// on another rack (placement by request hash), so they are forwarded over
// the inter-rack link, served by the owning rack's backend, and the reply
// crosses the link again. Remote traffic is the coupling surface that makes
// the partition a single simulation rather than R independent ones.

// Rack describes one shard of a sharded deployment.
type Rack struct {
	// Shard is the rack's slot in the domain group (its Env drives every
	// process of this rack).
	Shard *sim.Shard
	// Fab is the rack's fabric, used for per-tenant delivered-byte
	// attribution; nil disables goodput accounting for this rack.
	Fab *sim.Fabric
	// Nodes is the rack's compute-node count.
	Nodes int
	// Mount mints a fresh client mount for the named tenant on rack-local
	// node i, exactly like the mount callback of Run.
	Mount func(tenant string, node int) fsapi.Client
}

// ShardedConfig parameterizes a sharded traffic run.
type ShardedConfig struct {
	Config
	// RemoteFraction is the probability that a request's data lives on
	// another rack (uniform over the others), drawn per request from a
	// deterministic placement stream. 0 decouples the racks entirely;
	// realistic scale-out deployments sit somewhere below 1 - 1/racks.
	RemoteFraction float64
}

// RackReport is the rack-local accounting of one rack: arrivals generated
// on the rack (including its forwarded remote requests) and bytes served by
// the rack's own backend.
type RackReport struct {
	Rack    int
	Name    string
	Tenants []TenantReport
}

// ShardedReport is the outcome of a sharded run: per-rack accounting plus
// the cluster-wide merge (tenant sums, sketches merged in rack order).
type ShardedReport struct {
	Duration sim.Duration
	Racks    []RackReport
	Tenants  []TenantReport
}

// Digest renders the full observable outcome with float bit patterns — the
// event-order-sensitive witness the lockstep tests compare across executor
// layouts and against the sequential oracle.
func (r ShardedReport) Digest() string {
	out := fmt.Sprintf("window=%v", r.Duration)
	for _, rr := range r.Racks {
		out += fmt.Sprintf(" [%s", rr.Name)
		for _, tr := range rr.Tenants {
			out += fmt.Sprintf(" %s:%d/%d/%d/%d:%d/%d/%d/%d/%d/%d/%d:%016x:%016x/%016x/%016x",
				tr.Name, tr.Offered, tr.Shed, tr.Completed, tr.InFlightEnd,
				tr.ShedAdmission, tr.ShedBrownout, tr.ShedBreaker, tr.DeadlineMiss,
				tr.Retries, tr.Hedges, tr.HedgeWins,
				math.Float64bits(tr.DeliveredBytes),
				math.Float64bits(tr.P50.Seconds()),
				math.Float64bits(tr.P95.Seconds()),
				math.Float64bits(tr.P99.Seconds()))
		}
		out += "]"
	}
	return out
}

// rackTenant is the rack-local admission/accounting state of one tenant —
// touched only from the rack's own Env, so the domain executors never share
// it.
type rackTenant struct {
	tenantState
	remoteMount fsapi.Client // serves requests forwarded from other racks
}

// RunSharded executes the spec across the racks of a domain group and
// reports per-rack and merged SLO outcomes. The group must be fresh (its
// barrier clock at zero) with every rack's Shard registered on it and
// inter-rack links declared (required when RemoteFraction > 0). RunSharded
// drives the group itself; the caller shuts it down afterwards.
func RunSharded(g *sim.Group, racks []Rack, cfg ShardedConfig) ShardedReport {
	if err := cfg.Spec.Validate(); err != nil {
		panic(fmt.Sprintf("traffic: invalid spec: %v", err))
	}
	if len(racks) == 0 {
		panic("traffic: need at least one rack")
	}
	if cfg.Duration <= 0 {
		panic("traffic: need a positive duration")
	}
	if cfg.RemoteFraction < 0 || cfg.RemoteFraction > 1 {
		panic("traffic: remote fraction out of [0,1]")
	}
	if g.Now() != 0 {
		panic("traffic: sharded run needs a fresh group")
	}
	scale := cfg.LoadScale
	if scale == 0 {
		scale = 1
	}
	remote := cfg.RemoteFraction
	if len(racks) == 1 {
		remote = 0 // nowhere else to place data
	}
	end := sim.Time(0).Add(cfg.Duration)

	totalNodes := 0
	for _, rk := range racks {
		if rk.Nodes <= 0 {
			panic("traffic: rack needs at least one node")
		}
		totalNodes += rk.Nodes
	}

	// states[r][ti] is rack r's accounting slot for tenant ti. Breakers
	// are per tenant×rack — each rack is its own backend instance, which
	// is exactly the per-tenant×backend granularity the policy wants.
	// Brownout capacity is likewise split evenly (rounded up) per rack,
	// mirroring the inflight-cap split: admission state never crosses a
	// domain boundary.
	brown := cfg.Spec.Brownout
	if brown.Enabled() && len(racks) > 1 {
		brown.Capacity = (brown.Capacity + len(racks) - 1) / len(racks)
	}
	engs := make([]*engineState, len(racks))
	states := make([][]*rackTenant, len(racks))
	for r := range racks {
		engs[r] = &engineState{brown: brown}
		states[r] = make([]*rackTenant, len(cfg.Spec.Tenants))
	}
	for ti := range cfg.Spec.Tenants {
		t := &cfg.Spec.Tenants[ti]
		// Admission capacity is rack-local: the tenant's global in-flight
		// cap split evenly (rounded up) across the racks carrying it.
		rackCap := t.MaxInflight
		if rackCap > 0 && len(racks) > 1 {
			rackCap = (rackCap + len(racks) - 1) / len(racks)
		}
		for r := range racks {
			st := &rackTenant{}
			st.spec = t
			st.capacity = rackCap
			st.sketch = stats.NewSketch(cfg.SketchAlpha)
			st.keep = cfg.KeepLatencies
			st.breaker = resilience.NewBreaker(t.Resilience.Breaker)
			states[r][ti] = st
		}
	}

	// Mount order per rack: every tenant's per-node generator mounts first
	// (matching Run's order exactly, so a 1-rack sharded run reproduces the
	// unsharded byte stream), then — only when remote traffic exists — one
	// remote-service mount per tenant.
	base := 0
	for r := range racks {
		rk := &racks[r]
		for ti := range cfg.Spec.Tenants {
			t := &cfg.Spec.Tenants[ti]
			shardRate := t.AggregateRate() * scale / float64(totalNodes)
			for node := 0; node < rk.Nodes; node++ {
				cl := rk.Mount(t.Name, node)
				if tg, ok := cl.(fsapi.FlowTagger); ok {
					tg.SetFlowTag(t.Name)
				}
				gen := newArrivalGen(t.Arrival, shardRate, shardSeed(cfg.Seed, ti, base+node))
				place := placementSeed(cfg.Seed, ti, base+node)
				launchRackShard(g, engs[r], racks, states, r, ti, cl, gen, node, end, remote, place)
			}
		}
		if remote > 0 {
			for ti := range cfg.Spec.Tenants {
				t := &cfg.Spec.Tenants[ti]
				cl := rk.Mount(t.Name+"@rem", ti%rk.Nodes)
				if tg, ok := cl.(fsapi.FlowTagger); ok {
					tg.SetFlowTag(t.Name)
				}
				states[r][ti].remoteMount = cl
			}
		}
		base += rk.Nodes
	}

	g.Run(end)

	rep := ShardedReport{Duration: cfg.Duration}
	for r := range racks {
		rr := RackReport{Rack: r, Name: racks[r].Shard.Name()}
		for ti := range cfg.Spec.Tenants {
			st := states[r][ti]
			tr := tenantReport(&st.tenantState)
			if racks[r].Fab != nil {
				tr.DeliveredBytes = racks[r].Fab.TagBytes(st.spec.Name)
			}
			rr.Tenants = append(rr.Tenants, tr)
		}
		rep.Racks = append(rep.Racks, rr)
	}
	for ti := range cfg.Spec.Tenants {
		t := &cfg.Spec.Tenants[ti]
		merged := TenantReport{Name: t.Name, SLOP99: t.SLOP99, Sketch: stats.NewSketch(cfg.SketchAlpha)}
		for r := range racks {
			tr := &rep.Racks[r].Tenants[ti]
			merged.Offered += tr.Offered
			merged.Shed += tr.Shed
			merged.Completed += tr.Completed
			merged.ShedAdmission += tr.ShedAdmission
			merged.ShedBrownout += tr.ShedBrownout
			merged.ShedBreaker += tr.ShedBreaker
			merged.DeadlineMiss += tr.DeadlineMiss
			merged.Retries += tr.Retries
			merged.Hedges += tr.Hedges
			merged.HedgeWins += tr.HedgeWins
			merged.Breaker.Opens += tr.Breaker.Opens
			merged.Breaker.HalfOpens += tr.Breaker.HalfOpens
			merged.Breaker.Closes += tr.Breaker.Closes
			merged.InFlightEnd += tr.InFlightEnd
			merged.DeliveredBytes += tr.DeliveredBytes
			merged.Sketch.Merge(tr.Sketch)
			merged.Latencies = append(merged.Latencies, tr.Latencies...)
		}
		merged.P50 = sketchDur(merged.Sketch, 50)
		merged.P95 = sketchDur(merged.Sketch, 95)
		merged.P99 = sketchDur(merged.Sketch, 99)
		merged.SLOAttainment = math.NaN()
		if t.SLOP99 > 0 && merged.Completed > 0 {
			merged.SLOAttainment = merged.Sketch.FractionBelow(t.SLOP99.Seconds())
		}
		rep.Tenants = append(rep.Tenants, merged)
	}
	return rep
}

// tenantReport projects one tenant state onto its report row (shared with
// the unsharded path's bookkeeping fields).
func tenantReport(st *tenantState) TenantReport {
	tr := TenantReport{
		Name:          st.spec.Name,
		Offered:       st.offered,
		Shed:          st.shed,
		Completed:     st.complete,
		ShedAdmission: st.shedAdmission,
		ShedBrownout:  st.shedBrownout,
		ShedBreaker:   st.shedBreaker,
		DeadlineMiss:  st.deadlineMiss,
		Retries:       st.retries,
		Hedges:        st.hedges,
		HedgeWins:     st.hedgeWins,
		Breaker:       st.breaker.Stats(),
		InFlightEnd:   st.inflight,
		SLOP99:        st.spec.SLOP99,
		Sketch:        st.sketch,
		Latencies:     st.lats,
	}
	tr.P50 = sketchDur(st.sketch, 50)
	tr.P95 = sketchDur(st.sketch, 95)
	tr.P99 = sketchDur(st.sketch, 99)
	tr.SLOAttainment = math.NaN()
	if st.spec.SLOP99 > 0 && st.complete > 0 {
		tr.SLOAttainment = st.sketch.FractionBelow(st.spec.SLOP99.Seconds())
	}
	return tr
}

// placementSeed derives the per-generator placement RNG seed, independent
// of the arrival stream so turning remote traffic on does not perturb
// arrival times.
func placementSeed(seed uint64, tenant, shard int) uint64 {
	return stats.Mix64(shardSeed(seed, tenant, shard) ^ 0x706c6163656d6e74) // "placemnt"
}

// launchRackShard starts the generator of one tenant×rack×node shard. Local
// requests run exactly like the unsharded engine's; remote requests are
// admitted locally, forwarded to the owning rack over the inter-rack link,
// served there on the tenant's remote-service mount, and completed when the
// reply message lands back home. The request's latency therefore includes
// two link crossings plus the remote rack's service time, measured entirely
// on the home rack's clock.
//
// The resilience layer applies to rack-local requests only: a forwarded
// request's attempts would need cross-domain cancellation (an abort token
// is single-Env state), so remote requests run the baseline path and hand
// back any breaker probe grant (Release — the grant is unused, not failed).
// Breakers still observe every local outcome, which is where the backend
// they guard actually serves.
func launchRackShard(g *sim.Group, eng *engineState, racks []Rack, states [][]*rackTenant, r, ti int,
	cl fsapi.Client, gen *arrivalGen, node int, end sim.Time, remote float64, placeSeed uint64) {
	rk := &racks[r]
	st := states[r][ti]
	sh := &rackShard{
		eng:       eng,
		st:        st,
		cl:        cl,
		node:      node,
		r:         r,
		ti:        ti,
		racks:     racks,
		states:    states,
		home:      rk.Shard,
		resilient: st.spec.Resilience.Enabled() || eng.brown.Enabled(),
		remote:    remote,
		place:     stats.NewRNG(placeSeed),
		reqName:   fmt.Sprintf("traffic/%s/r%dreq%d", st.spec.Name, r, node),
	}
	sh.env = rk.Shard.Env()
	sh.gen = shardGen{gen: gen, end: end}
	sh.handle = sh.handleArrival
	for i := range sh.paths {
		// Local paths use the unsharded engine's namespace (node indices are
		// rack-local, and each rack is its own backend), so a 1-rack sharded
		// run reproduces the unsharded byte stream exactly.
		sh.paths[i] = fmt.Sprintf("/traffic/%s/n%d/f%d", st.spec.Name, node, i)
		sh.remPaths[i] = fmt.Sprintf("/traffic/%s/rem-r%dn%d/f%d", st.spec.Name, r, node, i)
	}
	sh.arm()
}

// rackShard drives one tenant×rack×node shard: the sharded-engine analog of
// reqShard — the same batched arrival tick and pooled request records for
// rack-local requests; forwarded remote requests keep their per-request
// message closures (they cross domain boundaries, which pooling cannot).
type rackShard struct {
	arrivalTick
	eng       *engineState
	st        *rackTenant
	cl        fsapi.Client
	node      int
	r, ti     int
	racks     []Rack
	states    [][]*rackTenant
	home      *sim.Shard
	resilient bool
	remote    float64
	place     *stats.RNG
	reqName   string
	paths     [reqFiles]string
	remPaths  [reqFiles]string
	reqIdx    uint64
	free      []*rackRec
}

// handleArrival mirrors the sharded engine's historical admission chain
// exactly: breaker and brownout only for resilient tenants, the rack-local
// cap for everyone, every admitted request counted against the rack-wide
// brownout gauge, and placement draws consumed unconditionally once
// admitted so backpressure never shifts the placement stream.
func (sh *rackShard) handleArrival(now sim.Time) {
	st, eng := sh.st, sh.eng
	st.offered++
	probe := false
	if sh.resilient {
		var ok bool
		if ok, probe = st.breaker.Allow(now); !ok {
			st.shed++
			st.shedBreaker++
			return
		}
		if eng.brown.Enabled() && eng.inflight >= eng.brown.Threshold(st.spec.Priority) {
			st.breaker.Release(probe)
			st.shed++
			st.shedBrownout++
			return
		}
	}
	if st.capacity > 0 && st.inflight >= st.capacity {
		st.breaker.Release(probe)
		st.shed++
		st.shedAdmission++
		return
	}
	idx := sh.reqIdx % reqFiles
	sh.reqIdx++
	target := sh.r
	if sh.remote > 0 {
		// Placement draw: one uniform for the remote decision, one for the
		// owning rack among the others.
		u := sh.place.Uint64()
		v := sh.place.Uint64()
		if float64(u>>11)/(1<<53) < sh.remote {
			target = int(v % uint64(len(sh.racks)-1))
			if target >= sh.r {
				target++
			}
		}
	}
	st.inflight++
	eng.inflight++
	if target == sh.r {
		rec := sh.getRec()
		rec.path = sh.paths[idx]
		rec.probe = probe
		if sh.resilient {
			rec.call.FlowID = (uint64(sh.node)+1)*0x9e3779b97f4a7c15 + sh.reqIdx
		}
		sh.env.GoPooled(sh.reqName, rec.runFn)
		return
	}
	// Forwarded request: baseline path; the probe grant (if any) is
	// unused — hand it back so half-open probe slots never leak to
	// requests whose outcome the breaker will not see.
	st.breaker.Release(probe)
	start := sh.env.Now()
	path := sh.remPaths[idx]
	home, owner := sh.home, sh.racks[target].Shard
	remoteSt := sh.states[target][sh.ti]
	keep := st.keep
	home.Send(owner, 0, func() {
		owner.Env().Go(sh.reqName+"@rem", func(rp *sim.Proc) {
			serveRequest(rp, remoteSt.remoteMount, st.spec, path)
			owner.Send(home, 0, func() {
				st.inflight--
				eng.inflight--
				st.complete++
				lat := home.Env().Now().Sub(start).Seconds()
				st.sketch.Add(lat)
				if keep {
					st.lats = append(st.lats, lat)
				}
			})
		})
	})
}

// rackRec is the sharded engine's pooled request lifecycle for rack-local
// requests (see reqRec for the pooling contract).
type rackRec struct {
	sh    *rackShard
	gen   uint64
	freed bool
	path  string
	probe bool
	runFn func(rp *sim.Proc)
	call  resilience.Call
}

func (sh *rackShard) getRec() *rackRec {
	if n := len(sh.free); n > 0 {
		rec := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		rec.freed = false
		return rec
	}
	rec := &rackRec{sh: sh}
	if sh.resilient {
		rec.runFn = rec.runResilient
		rec.call.Attempt = func(ap *sim.Proc) { serveRequest(ap, sh.cl, sh.st.spec, rec.path) }
		rec.call.OnIdle = func() { sh.freeRec(rec) }
	} else {
		rec.runFn = rec.runLegacy
	}
	return rec
}

func (sh *rackShard) freeRec(rec *rackRec) {
	if rec.freed {
		panic("traffic: double release of pooled request record")
	}
	rec.freed = true
	rec.gen++
	sh.free = append(sh.free, rec)
}

func (rec *rackRec) release() {
	if rec.sh.resilient && !rec.call.Idle() {
		rec.call.DeferRelease()
		return
	}
	rec.sh.freeRec(rec)
}

func (rec *rackRec) runLegacy(rp *sim.Proc) {
	sh := rec.sh
	st := sh.st
	start := rp.Now()
	serveRequest(rp, sh.cl, st.spec, rec.path)
	st.inflight--
	sh.eng.inflight--
	st.complete++
	lat := rp.Now().Sub(start).Seconds()
	st.sketch.Add(lat)
	if st.keep {
		st.lats = append(st.lats, lat)
	}
	rec.release()
}

func (rec *rackRec) runResilient(rp *sim.Proc) {
	sh := rec.sh
	st := sh.st
	pl := st.spec.Resilience
	hd := pl.Hedge.Delay(st.sketch)
	out := resilience.ExecuteCall(rp, pl, &rec.call, hd, st.breaker)
	st.inflight--
	sh.eng.inflight--
	st.retries += uint64(out.Retries)
	st.hedges += uint64(out.Hedges)
	st.hedgeWins += uint64(out.HedgeWins)
	if !out.OK {
		st.breaker.Failure(rp.Now(), rec.probe)
		st.shed++
		st.deadlineMiss++
		rec.release()
		return
	}
	st.breaker.Success(rec.probe)
	st.complete++
	st.sketch.Add(out.Elapsed.Seconds())
	if st.keep {
		st.lats = append(st.lats, out.Elapsed.Seconds())
	}
	rec.release()
}
