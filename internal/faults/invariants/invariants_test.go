package invariants_test

import (
	"fmt"
	"testing"
	"time"

	"storagesim/internal/device"
	"storagesim/internal/faults"
	"storagesim/internal/faults/invariants"
	"storagesim/internal/fsapi"
	"storagesim/internal/gpfs"
	"storagesim/internal/lustre"
	"storagesim/internal/netsim"
	"storagesim/internal/nvmelocal"
	"storagesim/internal/sim"
	"storagesim/internal/unifyfs"
	"storagesim/internal/vast"
)

// backendCase builds one small deployment, returns its fault target and a
// workload that writes `total` bytes through `clients` mounts.
type backendCase struct {
	name  string
	build func(env *sim.Env, fab *sim.Fabric) (faults.Target, []fsapi.Client)
}

const (
	caseClients = 3
	caseTotal   = int64(256 << 20) // per client
)

func vastCase(env *sim.Env, fab *sim.Fabric) (faults.Target, []fsapi.Client) {
	sys := vast.MustNew(env, fab, vast.Config{
		Name: "vast-inv", CNodes: 4, DBoxes: 2, DNodesPerDBox: 2,
		SCMPerDBox: 4, QLCPerDBox: 8,
		CNodeNICBW: 10e9, ReduceBWPerCNode: 2e9, FabricBWPerDBox: 10e9,
		FabricLatency: time.Microsecond, SCMReplicas: 2,
		Transport: &netsim.TCPTransport{PerConnBW: 5e9, Connections: 1, RPC: 20 * time.Microsecond},
		Retry:     netsim.RetryPolicy{Timeout: time.Millisecond, Multiplier: 2, MaxTimeout: 20 * time.Millisecond},
	})
	return sys, mounts(fab, func(name string, nic *netsim.Iface) fsapi.Client { return sys.Mount(name, nic) })
}

func gpfsCase(env *sim.Env, fab *sim.Fabric) (faults.Target, []fsapi.Client) {
	sys := gpfs.MustNew(env, fab, gpfs.Config{
		Name: "gpfs-inv", NSDServers: 4, ServerNICBW: 10e9,
		RaidPerServer: device.GPFSRaidSpec("raid"), ServerMemBW: 40e9,
		ClientStreamCap: 14.5e9, ClientWriteCap: 10e9,
		CacheBlockBytes: 1 << 20, RPCLatency: 50 * time.Microsecond,
	})
	return sys, mounts(fab, func(name string, nic *netsim.Iface) fsapi.Client { return sys.Mount(name, nic) })
}

func lustreCase(env *sim.Env, fab *sim.Fabric) (faults.Target, []fsapi.Client) {
	sys := lustre.MustNew(env, fab, lustre.Config{
		Name: "lustre-inv", MDSCount: 2, MDSLatency: 50 * time.Microsecond,
		OSSCount: 4, OSTPerOSS: device.LustreOSTSpec("ost"), ServerNICBW: 10e9,
		RPCLatency: 50 * time.Microsecond,
	})
	return sys, mounts(fab, func(name string, nic *netsim.Iface) fsapi.Client { return sys.Mount(name, nic) })
}

func unifyfsCase(env *sim.Env, fab *sim.Fabric) (faults.Target, []fsapi.Client) {
	ic := netsim.NewLinkBank(fab, "uf-ic", 2, 12.5e9, 2*time.Microsecond)
	sys := unifyfs.MustNew(env, fab, unifyfs.Config{
		Name: "uf-inv", PerNode: device.NVMe970ProSpec("nvme"),
		Placement: unifyfs.RoundRobin, ChunkBytes: 1 << 20,
		IOServersPerNode: 4, ServerLatency: 10 * time.Microsecond, Interconnect: ic,
	})
	return sys, mounts(fab, func(name string, nic *netsim.Iface) fsapi.Client { return sys.Mount(name, nic) })
}

func nvmeCase(env *sim.Env, fab *sim.Fabric) (faults.Target, []fsapi.Client) {
	ic := netsim.NewLinkBank(fab, "nv-ic", 2, 12.5e9, 2*time.Microsecond)
	sys := nvmelocal.MustNew(env, fab, nvmelocal.Config{
		Name: "nv-inv", PerNode: device.NVMe970ProSpec("nvme"),
		MemBW: 40e9, DirtyLimitBytes: 1 << 30,
		Interconnect: ic,
	})
	return sys, mounts(fab, func(name string, nic *netsim.Iface) fsapi.Client { return sys.Mount(name, nic) })
}

func mounts(fab *sim.Fabric, mount func(string, *netsim.Iface) fsapi.Client) []fsapi.Client {
	var out []fsapi.Client
	for i := 0; i < caseClients; i++ {
		name := fmt.Sprintf("n%d", i)
		out = append(out, mount(name, netsim.NewIface(fab, name+"/nic", 12.5e9, time.Microsecond)))
	}
	return out
}

func cases() []backendCase {
	return []backendCase{
		{"vast", vastCase},
		{"gpfs", gpfsCase},
		{"lustre", lustreCase},
		{"unifyfs", unifyfsCase},
		{"nvmelocal", nvmeCase},
	}
}

// TestInvariantsUnderFaults drives every backend through a fail → derate →
// restore → recover schedule while streaming writes, with the invariant
// sampler attached: no pipe may be over-allocated, the clock must be
// monotonic, and the run must terminate (the sampler may not keep the loop
// alive). Runs under -race in `make check`.
func TestInvariantsUnderFaults(t *testing.T) {
	for _, bc := range cases() {
		bc := bc
		t.Run(bc.name, func(t *testing.T) {
			env := sim.NewEnv()
			fab := sim.NewFabric(env)
			tgt, clients := bc.build(env, fab)
			chk := invariants.Attach(env, fab, 500*time.Microsecond)
			inj := faults.NewInjector(env)
			inj.Register(bc.name, tgt)
			err := inj.Apply(faults.Schedule{Events: []faults.Event{
				{At: 2 * time.Millisecond, Kind: faults.ServerFail, Index: 0},
				{At: 4 * time.Millisecond, Kind: faults.LinkDerate, Factor: 0.5},
				{At: 6 * time.Millisecond, Kind: faults.MediaDerate, Factor: 0.7},
				{At: 8 * time.Millisecond, Kind: faults.LinkRestore},
				{At: 10 * time.Millisecond, Kind: faults.MediaRestore},
				{At: 12 * time.Millisecond, Kind: faults.ServerRecover, Index: 0},
			}})
			if err != nil {
				t.Fatal(err)
			}
			done := 0
			for i, cl := range clients {
				i, cl := i, cl
				env.Go(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
					cl.StreamWrite(p, fmt.Sprintf("/inv/%d", i), fsapi.Sequential, 1<<20, caseTotal)
					done++
				})
			}
			env.Run()
			if done != len(clients) {
				t.Fatalf("%d of %d writers finished", done, len(clients))
			}
			if len(inj.Applied()) != 6 {
				t.Fatalf("delivered %d of 6 fault events", len(inj.Applied()))
			}
			if chk.Samples() == 0 {
				t.Fatal("invariant sampler never ran")
			}
			if err := chk.Err(); err != nil {
				t.Fatalf("%v\nall: %v", err, chk.Violations())
			}
		})
	}
}

// TestNoOpFaultPairs asserts that delivering (fail at t, recover at t) —
// and a derate/restore pair — leaves every pipe's capacity state
// byte-identical to never having faulted at all.
func TestNoOpFaultPairs(t *testing.T) {
	for _, bc := range cases() {
		bc := bc
		t.Run(bc.name, func(t *testing.T) {
			env := sim.NewEnv()
			fab := sim.NewFabric(env)
			tgt, _ := bc.build(env, fab)
			before := invariants.Snapshot(fab)
			inj := faults.NewInjector(env)
			inj.Register(bc.name, tgt)
			at := sim.Duration(3 * time.Millisecond)
			err := inj.Apply(faults.Schedule{Events: []faults.Event{
				{At: at, Kind: faults.ServerFail, Index: 0},
				{At: at, Kind: faults.LinkDerate, Factor: 0.25},
				{At: at, Kind: faults.MediaDerate, Factor: 0.5},
				{At: at, Kind: faults.MediaRestore},
				{At: at, Kind: faults.LinkRestore},
				{At: at, Kind: faults.ServerRecover, Index: 0},
			}})
			if err != nil {
				t.Fatal(err)
			}
			env.Run()
			if err := invariants.DiffStates(before, invariants.Snapshot(fab)); err != nil {
				t.Fatalf("no-op fault pair changed fabric state: %v", err)
			}
		})
	}
}

// TestVASTConservation runs a faulted VAST write workload and asserts the
// conservation invariant: every byte the workload wrote is either still
// staged in SCM or has been migrated to QLC.
func TestVASTConservation(t *testing.T) {
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	tgt, clients := vastCase(env, fab)
	sys := tgt.(*vast.System)
	chk := invariants.Attach(env, fab, time.Millisecond)
	inj := faults.NewInjector(env)
	inj.Register("vast", tgt)
	if err := inj.Apply(faults.Schedule{Events: []faults.Event{
		{At: 2 * time.Millisecond, Kind: faults.ServerFail, Index: 1},
		{At: 9 * time.Millisecond, Kind: faults.ServerRecover, Index: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	var written int64
	for i, cl := range clients {
		i, cl := i, cl
		env.Go(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			cl.StreamWrite(p, fmt.Sprintf("/c/%d", i), fsapi.Sequential, 1<<20, caseTotal)
			written += caseTotal
		})
	}
	chk.Final("vast-conservation", invariants.ConserveBytes(
		func() int64 { return written },
		func() int64 { return sys.StagedBytes() + sys.MigratedBytes() },
	))
	env.Run()
	if written != caseTotal*int64(len(clients)) {
		t.Fatalf("wrote %d bytes, want %d", written, caseTotal*int64(len(clients)))
	}
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
}
