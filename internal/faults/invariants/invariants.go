// Package invariants is a reusable harness asserting the physical
// invariants a fault-injected simulation must keep:
//
//   - Conservation: every byte a workload wrote is accounted for by the
//     backend (for VAST, bytes written == bytes migrated + bytes still
//     staged) — registered per test as a final check.
//   - No over-allocation: no pipe's granted flow rate exceeds its
//     capacity, sampled periodically through the event loop.
//   - Clock monotonicity: virtual time never moves backwards across
//     samples.
//   - No-op fault pairs: a (fail at t, recover at t) pair leaves the
//     fabric's capacity state byte-identical to never having failed —
//     asserted by snapshotting and diffing pipe state.
//
// The sampler delivers itself through the simulation event loop and
// re-arms only while other events remain pending, so attaching a Checker
// never keeps Env.Run from terminating.
package invariants

import (
	"fmt"

	"storagesim/internal/sim"
)

// Checker samples invariants over a run and collects violations.
type Checker struct {
	env      *sim.Env
	fab      *sim.Fabric
	interval sim.Duration

	lastNow    sim.Time
	samples    int
	violations []string

	finals []finalCheck
}

type finalCheck struct {
	name string
	fn   func() error
}

// Attach enables fabric accounting and starts a periodic sampler with the
// given interval. Call before env.Run.
func Attach(env *sim.Env, fab *sim.Fabric, interval sim.Duration) *Checker {
	if interval <= 0 {
		panic("invariants: sampling interval must be positive")
	}
	fab.EnableAccounting()
	c := &Checker{env: env, fab: fab, interval: interval, lastNow: env.Now()}
	c.arm()
	return c
}

// arm schedules the next sample.
func (c *Checker) arm() {
	c.env.After(c.interval, func() {
		c.sample()
		// Re-arm only while the run has other work: a sampler that always
		// re-armed would keep the event loop alive forever.
		if c.env.Pending() > 0 {
			c.arm()
		}
	})
}

// sample runs the periodic checks at the current virtual instant.
func (c *Checker) sample() {
	c.samples++
	now := c.env.Now()
	if now < c.lastNow {
		c.violationf("clock moved backwards: %v after %v", now, c.lastNow)
	}
	c.lastNow = now
	// Allocation checks are only meaningful when the fabric has settled:
	// between a capacity change and its same-instant coalesced solve, rates
	// are transiently stale by design.
	if !c.fab.Settled() {
		return
	}
	for _, p := range c.fab.Pipes() {
		capBps := p.Capacity()
		alloc := p.AllocatedRate()
		// Tolerance for the solver's float math: parts-per-billion relative
		// plus a sub-byte/sec absolute floor.
		if alloc > capBps*(1+1e-9)+1e-6 {
			c.violationf("pipe %s over-allocated at %v: %.3f B/s granted, %.3f B/s capacity",
				p.Name(), now, alloc, capBps)
		}
		// Rebuild (or any other) flows must never push a pipe past its
		// nominal capacity either: health factors only derate, so the
		// effective capacity bounds the base, and an allocation above base
		// means repair traffic was scheduled outside the solver.
		if base := p.BaseCapacity(); alloc > base*(1+1e-9)+1e-6 {
			c.violationf("pipe %s pushed past nominal at %v: %.3f B/s granted, %.3f B/s nominal",
				p.Name(), now, alloc, base)
		}
		if h := p.HealthFactor(); h < 0 || h > 1 {
			c.violationf("pipe %s health factor %g outside [0,1]", p.Name(), h)
		}
	}
}

// violationf records one violation (capped so a broken run cannot fill
// memory with repeats).
func (c *Checker) violationf(format string, args ...interface{}) {
	if len(c.violations) < 100 {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

// Final registers a named conservation (or other end-state) check to run
// when Err is called after the run — e.g. bytes written == migrated +
// staged for a VAST system.
func (c *Checker) Final(name string, fn func() error) {
	c.finals = append(c.finals, finalCheck{name, fn})
}

// Samples reports how many periodic samples ran (tests assert > 0 so a
// mis-armed sampler cannot pass vacuously).
func (c *Checker) Samples() int { return c.samples }

// Err runs the final checks and returns the first violation, or nil when
// the run kept every invariant.
func (c *Checker) Err() error {
	for _, f := range c.finals {
		if err := f.fn(); err != nil {
			c.violationf("final check %s: %v", f.name, err)
		}
	}
	c.finals = nil
	if len(c.violations) > 0 {
		return fmt.Errorf("invariants: %d violation(s), first: %s", len(c.violations), c.violations[0])
	}
	return nil
}

// Violations returns every recorded violation.
func (c *Checker) Violations() []string { return append([]string(nil), c.violations...) }

// ConserveBytes builds a Final check asserting that the accounted bytes
// (e.g. migrated + staged) match the bytes the workload wrote, within a
// per-gigabyte float slack.
func ConserveBytes(written func() int64, accounted func() int64) func() error {
	return func() error {
		w, a := written(), accounted()
		if w != a {
			return fmt.Errorf("wrote %d bytes but backend accounts %d", w, a)
		}
		return nil
	}
}

// SteadyStateMatch asserts that a post-rebuild steady-state measurement
// equals its pre-failure clean counterpart within 1e-9 relative — the
// self-healing analogue of the no-op pair check: once a rebuild has
// completed, a probe workload must be indistinguishable from one that ran
// before the failure, or the rebuild left residual derates behind.
func SteadyStateMatch(what string, clean, postRebuild float64) error {
	diff := clean - postRebuild
	if diff < 0 {
		diff = -diff
	}
	scale := clean
	if scale < 0 {
		scale = -scale
	}
	if diff > scale*1e-9 {
		return fmt.Errorf("%s drifted after rebuild: clean %g, post-rebuild %g (relative %g)",
			what, clean, postRebuild, diff/scale)
	}
	return nil
}

// PipeState is one pipe's capacity state for no-op pair snapshots.
type PipeState struct {
	Name     string
	Base     float64
	Capacity float64
	Health   float64
}

// Snapshot captures every pipe's capacity state in creation order.
func Snapshot(fab *sim.Fabric) []PipeState {
	pipes := fab.Pipes()
	out := make([]PipeState, 0, len(pipes))
	for _, p := range pipes {
		out = append(out, PipeState{
			Name:     p.Name(),
			Base:     p.BaseCapacity(),
			Capacity: p.Capacity(),
			Health:   p.HealthFactor(),
		})
	}
	return out
}

// DiffStates compares two snapshots field-by-field and reports the first
// difference — the identical-final-state assertion for (fail, recover)
// no-op pairs. Pipes created between the snapshots (lazy per-mount or
// per-pattern pipes) fail the diff: a no-op pair must not create state.
func DiffStates(before, after []PipeState) error {
	if len(before) != len(after) {
		return fmt.Errorf("pipe count changed: %d -> %d", len(before), len(after))
	}
	for i := range before {
		b, a := before[i], after[i]
		if b != a {
			return fmt.Errorf("pipe %s changed: base %g->%g capacity %g->%g health %g->%g",
				b.Name, b.Base, a.Base, b.Capacity, a.Capacity, b.Health, a.Health)
		}
	}
	return nil
}
