package faults

import (
	"bytes"
	"encoding/json"
	"fmt"

	"storagesim/internal/sim"
	"storagesim/internal/units"
)

// JSON schedule format, shared by the experiment harness and the iorbench
// -faults flag:
//
//	{
//	  "events": [
//	    {"at": "10ms", "kind": "server-fail",    "target": "vast", "index": 0},
//	    {"at": "40ms", "kind": "server-recover", "target": "vast", "index": 0},
//	    {"at": "5ms",  "kind": "link-derate",    "target": "gpfs", "factor": 0.5},
//	    {"at": "1.2",  "kind": "media-derate",   "factor": 0.8},
//	    {"at": "20ms", "kind": "unit-fail",      "target": "vast", "index": 1}
//	  ]
//	}
//
// "at" accepts Go duration syntax ("10ms", "2m30s") or a bare number of
// seconds. "target" may be omitted when only one backend is registered.
// "factor" is the health fraction for derates; restores take none.

type jsonEvent struct {
	At     string   `json:"at"`
	Kind   string   `json:"kind"`
	Target string   `json:"target,omitempty"`
	Index  *int     `json:"index,omitempty"`
	Factor *float64 `json:"factor,omitempty"`
}

type jsonSchedule struct {
	Events []jsonEvent `json:"events"`
}

// ParseSchedule decodes and validates the JSON schedule format. Unknown
// fields are rejected — a typoed "indx" silently dropping a fault would
// invalidate a whole degraded-mode study.
func ParseSchedule(data []byte) (Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var js jsonSchedule
	if err := dec.Decode(&js); err != nil {
		return Schedule{}, fmt.Errorf("faults: bad schedule JSON: %v", err)
	}
	// A second document in the same input is a mistake, not data.
	if dec.More() {
		return Schedule{}, fmt.Errorf("faults: trailing data after schedule")
	}
	var s Schedule
	for i, je := range js.Events {
		ev, err := je.toEvent()
		if err != nil {
			return Schedule{}, fmt.Errorf("faults: event %d: %w", i, err)
		}
		s.Events = append(s.Events, ev)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, fmt.Errorf("faults: %w", err)
	}
	return s, nil
}

// toEvent converts one JSON event, enforcing that the fields present match
// the kind (an index on a derate or a factor on a fail is a schedule bug).
func (je jsonEvent) toEvent() (Event, error) {
	kind := Kind(je.Kind)
	if !kind.valid() {
		return Event{}, fmt.Errorf("unknown kind %q", je.Kind)
	}
	at, err := units.ParseDuration(je.At)
	if err != nil {
		return Event{}, err
	}
	ev := Event{At: sim.Duration(at), Kind: kind, Target: je.Target, Index: -1}
	switch {
	case kind.needsIndex():
		if je.Index == nil {
			return Event{}, fmt.Errorf("%s needs \"index\"", kind)
		}
		if je.Factor != nil {
			return Event{}, fmt.Errorf("%s takes no \"factor\"", kind)
		}
		ev.Index = *je.Index
	case kind.needsFactor():
		if je.Factor == nil {
			return Event{}, fmt.Errorf("%s needs \"factor\"", kind)
		}
		if je.Index != nil {
			return Event{}, fmt.Errorf("%s takes no \"index\"", kind)
		}
		ev.Factor = *je.Factor
	default:
		if je.Index != nil || je.Factor != nil {
			return Event{}, fmt.Errorf("%s takes neither \"index\" nor \"factor\"", kind)
		}
	}
	return ev, nil
}

// MarshalJSON renders the schedule back into the documented format, so a
// programmatically built schedule can be written out as an example file.
func (s Schedule) MarshalJSON() ([]byte, error) {
	js := jsonSchedule{Events: []jsonEvent{}}
	for _, ev := range s.Events {
		je := jsonEvent{At: ev.At.String(), Kind: string(ev.Kind), Target: ev.Target}
		if ev.Kind.needsIndex() {
			idx := ev.Index
			je.Index = &idx
		}
		if ev.Kind.needsFactor() {
			f := ev.Factor
			je.Factor = &f
		}
		js.Events = append(js.Events, je)
	}
	return json.Marshal(js)
}
