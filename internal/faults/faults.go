// Package faults is the simulator's deterministic fault-injection engine.
//
// The paper's central claim about VAST is architectural: stateless CNodes
// mean "a failure only costs capacity, never data or availability"
// (Section III-A.2). Claims like that are only worth anything if the model
// can exercise them, so this package turns every storage backend into a
// fault target: timed events — server crash and recovery, NIC/link derate
// and restore, SSD wear derate — are delivered through the simulation
// event loop, which keeps any run with a fixed seed and schedule
// byte-reproducible.
//
// A Schedule is a list of events with offsets from injection start. An
// Injector binds a schedule to registered Targets (one per storage
// deployment) and delivers each event at its virtual time. Schedules can
// be built in code or parsed from JSON (see schedule.go), so experiment
// harnesses and the iorbench CLI share one format.
package faults

import (
	"fmt"
	"sort"

	"storagesim/internal/sim"
)

// Kind names a fault event type.
type Kind string

// The event vocabulary. Fail/recover address one server by index; derate
// and restore act on the whole backend's link or media layer.
const (
	// ServerFail takes server Index out of service (CNode, NSD server,
	// OSS, UnifyFS delegator node, local-NVMe node).
	ServerFail Kind = "server-fail"
	// ServerRecover returns a failed server to service.
	ServerRecover Kind = "server-recover"
	// LinkDerate scales the backend's network links to Factor of nominal.
	LinkDerate Kind = "link-derate"
	// LinkRestore returns the links to full health.
	LinkRestore Kind = "link-restore"
	// MediaDerate scales the backend's storage media to Factor of nominal
	// (SSD wear, a rebuilding RAID group).
	MediaDerate Kind = "media-derate"
	// MediaRestore returns the media to full health.
	MediaRestore Kind = "media-restore"
	// UnitFail takes redundancy unit Index out of service: the granularity
	// data protection works at (a VAST DBox enclosure, a GPFS NSD server's
	// RAID array, an OSS's OSTs, a burst-buffer node's SSD). Only targets
	// implementing UnitTarget accept it.
	UnitFail Kind = "unit-fail"
	// UnitRecover returns a failed redundancy unit to service.
	UnitRecover Kind = "unit-recover"
)

// valid reports whether k is part of the vocabulary.
func (k Kind) valid() bool {
	switch k {
	case ServerFail, ServerRecover, LinkDerate, LinkRestore, MediaDerate, MediaRestore,
		UnitFail, UnitRecover:
		return true
	}
	return false
}

// needsIndex reports whether the kind addresses one server or unit.
func (k Kind) needsIndex() bool {
	return k == ServerFail || k == ServerRecover || k == UnitFail || k == UnitRecover
}

// needsUnits reports whether the kind addresses a redundancy unit.
func (k Kind) needsUnits() bool { return k == UnitFail || k == UnitRecover }

// needsFactor reports whether the kind carries a derate factor.
func (k Kind) needsFactor() bool { return k == LinkDerate || k == MediaDerate }

// Event is one timed fault.
type Event struct {
	// At is the offset from injection start at which the event fires.
	At sim.Duration
	// Kind selects the action.
	Kind Kind
	// Target names the registered backend; empty addresses the only
	// registered target (an error when several are registered).
	Target string
	// Index is the server ordinal for ServerFail/ServerRecover.
	Index int
	// Factor is the health fraction for LinkDerate/MediaDerate: 1 is full
	// capacity, 0 parks the component.
	Factor float64
}

// String renders the event for logs and error messages.
func (ev Event) String() string {
	return fmt.Sprintf("%v %s", ev.At, ev.describe())
}

// describe renders the event without its schedule offset.
func (ev Event) describe() string {
	s := string(ev.Kind)
	if ev.Target != "" {
		s += " target=" + ev.Target
	}
	if ev.Kind.needsIndex() {
		s += fmt.Sprintf(" index=%d", ev.Index)
	}
	if ev.Kind.needsFactor() {
		s += fmt.Sprintf(" factor=%g", ev.Factor)
	}
	return s
}

// Validate reports the first problem with the event in isolation (target
// existence and index range are checked against the registry at Apply).
func (ev Event) Validate() error {
	switch {
	case !ev.Kind.valid():
		return fmt.Errorf("faults: unknown event kind %q", ev.Kind)
	case ev.At < 0:
		return fmt.Errorf("faults: event %q at negative offset %v", ev.Kind, ev.At)
	case ev.Kind.needsIndex() && ev.Index < 0:
		return fmt.Errorf("faults: %s needs a server index", ev.Kind)
	case ev.Kind.needsFactor() && (ev.Factor < 0 || ev.Factor > 1 || ev.Factor != ev.Factor):
		return fmt.Errorf("faults: %s factor %g out of [0,1]", ev.Kind, ev.Factor)
	}
	return nil
}

// Schedule is an ordered list of fault events.
type Schedule struct {
	Events []Event
}

// Validate checks every event in isolation.
func (s Schedule) Validate() error {
	for i, ev := range s.Events {
		if err := ev.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Sorted returns a copy with events in firing order. The sort is stable:
// same-instant events keep their schedule order, which together with the
// event loop's sequence numbers makes delivery order deterministic.
func (s Schedule) Sorted() Schedule {
	out := Schedule{Events: append([]Event(nil), s.Events...)}
	sort.SliceStable(out.Events, func(i, j int) bool {
		return out.Events[i].At < out.Events[j].At
	})
	return out
}

// Target is a storage backend that can take faults. Each backend package
// implements it on its System type; the experiment harness registers them
// with an Injector under the deployment's name.
type Target interface {
	// FaultServers returns how many individually failable servers the
	// backend has (CNodes, NSD servers, OSSes, nodes).
	FaultServers() int
	// FailServer takes server i out of service.
	FailServer(i int)
	// RecoverServer returns a failed server to service; recovering a
	// healthy server is a no-op.
	RecoverServer(i int)
	// SetLinkHealth derates the backend's network links to fraction f of
	// nominal capacity (1 restores, 0 parks).
	SetLinkHealth(f float64)
	// SetMediaHealth derates the backend's storage media to fraction f.
	SetMediaHealth(f float64)
}

// UnitTarget is a Target whose storage is organized into failable
// redundancy units — the granularity data protection works at, which is
// not always the server granularity (a VAST CNode is stateless; the unit
// is the DBox enclosure behind it). Backends implement it to accept
// UnitFail/UnitRecover events; internal/repair layers rebuild jobs and
// loss accounting on top of the same interface.
type UnitTarget interface {
	Target
	// FaultUnits returns how many individually failable redundancy units
	// the backend has.
	FaultUnits() int
	// FailUnit takes unit i out of service (media loss: the enclosure, the
	// RAID array, the node's SSD).
	FailUnit(i int)
	// RecoverUnit returns a failed unit to service at full nominal
	// capacity; recovering a healthy unit is a no-op.
	RecoverUnit(i int)
}

// Applied is one delivered event, recorded for tests and reports.
type Applied struct {
	At    sim.Time
	Event Event
}

// String renders the delivery with its absolute simulation time (the
// event's own At is the schedule-relative offset).
func (a Applied) String() string {
	return fmt.Sprintf("%v %s", a.At, a.Event.describe())
}

// Injector binds schedules to targets on a simulation environment.
type Injector struct {
	env     *sim.Env
	targets map[string]Target
	order   []string // registration order, for deterministic error text
	applied []Applied
}

// NewInjector returns an injector bound to env.
func NewInjector(env *sim.Env) *Injector {
	return &Injector{env: env, targets: map[string]Target{}}
}

// Register adds a named target. Re-registering a name replaces the target
// (fresh testbed per repetition).
func (in *Injector) Register(name string, t Target) {
	if name == "" {
		panic("faults: target name must not be empty")
	}
	if _, ok := in.targets[name]; !ok {
		in.order = append(in.order, name)
	}
	in.targets[name] = t
}

// Targets returns the registered names in registration order.
func (in *Injector) Targets() []string { return append([]string(nil), in.order...) }

// Applied returns the events delivered so far, in delivery order.
func (in *Injector) Applied() []Applied { return in.applied }

// resolve maps an event's target name to the registered Target.
func (in *Injector) resolve(ev Event) (Target, error) {
	if ev.Target == "" {
		if len(in.order) != 1 {
			return nil, fmt.Errorf("faults: event %q names no target and %d are registered %v",
				ev.Kind, len(in.order), in.order)
		}
		return in.targets[in.order[0]], nil
	}
	t, ok := in.targets[ev.Target]
	if !ok {
		return nil, fmt.Errorf("faults: unknown target %q (registered: %v)", ev.Target, in.order)
	}
	return t, nil
}

// Apply validates the schedule against the registered targets and arms one
// simulation event per fault. It must be called before env.Run; events fire
// at injection-time-plus-offset in (At, schedule order).
func (in *Injector) Apply(s Schedule) error {
	if err := s.Validate(); err != nil {
		return err
	}
	sorted := s.Sorted()
	// Validate everything up front so a bad schedule never half-applies.
	for i, ev := range sorted.Events {
		t, err := in.resolve(ev)
		if err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if ev.Kind.needsUnits() {
			ut, ok := t.(UnitTarget)
			if !ok {
				return fmt.Errorf("event %d: %s target %q has no redundancy units",
					i, ev.Kind, ev.Target)
			}
			if ev.Index >= ut.FaultUnits() {
				return fmt.Errorf("event %d: %s index %d out of range (target has %d units)",
					i, ev.Kind, ev.Index, ut.FaultUnits())
			}
		} else if ev.Kind.needsIndex() && ev.Index >= t.FaultServers() {
			return fmt.Errorf("event %d: %s index %d out of range (target has %d servers)",
				i, ev.Kind, ev.Index, t.FaultServers())
		}
	}
	start := in.env.Now()
	for _, ev := range sorted.Events {
		ev := ev
		t, _ := in.resolve(ev)
		in.env.Schedule(start.Add(ev.At), func() {
			in.deliver(t, ev)
		})
	}
	return nil
}

// deliver executes one event against its target and logs it.
func (in *Injector) deliver(t Target, ev Event) {
	switch ev.Kind {
	case ServerFail:
		t.FailServer(ev.Index)
	case ServerRecover:
		t.RecoverServer(ev.Index)
	case LinkDerate:
		t.SetLinkHealth(ev.Factor)
	case LinkRestore:
		t.SetLinkHealth(1)
	case MediaDerate:
		t.SetMediaHealth(ev.Factor)
	case MediaRestore:
		t.SetMediaHealth(1)
	case UnitFail:
		t.(UnitTarget).FailUnit(ev.Index) // asserted at Apply
	case UnitRecover:
		t.(UnitTarget).RecoverUnit(ev.Index)
	}
	in.applied = append(in.applied, Applied{At: in.env.Now(), Event: ev})
}
