package faults

import (
	"encoding/json"
	"testing"
)

// FuzzSchedule asserts the schedule parser never panics, that every
// accepted schedule passes Validate (the parser may not be laxer than the
// validator), and that accepted schedules survive a marshal/re-parse
// round trip event for event.
func FuzzSchedule(f *testing.F) {
	for _, seed := range []string{
		`{"events":[]}`,
		`{"events":[{"at":"10ms","kind":"server-fail","target":"vast","index":0}]}`,
		`{"events":[{"at":"1.5","kind":"media-derate","factor":0.8}]}`,
		`{"events":[{"at":"2s","kind":"link-restore"},{"at":"3s","kind":"media-restore"}]}`,
		`{"events":[{"at":"1s","kind":"link-derate","factor":0.5}]}`,
		`{"events":[{"at":"-1s","kind":"link-restore"}]}`,
		`{"events":[{"at":"1s","kind":"server-melt","index":0}]}`,
		`{"events":[{"at":"NaN","kind":"link-restore"}]}`,
		`{"events":[]}{"events":[]}`,
		`{}`,
		`[]`,
		``,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSchedule(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("parser accepted %q but Validate rejects it: %v", data, err)
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted schedule %q does not marshal: %v", data, err)
		}
		back, err := ParseSchedule(out)
		if err != nil {
			t.Fatalf("marshalled schedule %q does not re-parse: %v", out, err)
		}
		if len(back.Events) != len(s.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(s.Events), len(back.Events))
		}
		for i := range s.Events {
			a, b := s.Events[i], back.Events[i]
			if a.At != b.At || a.Kind != b.Kind || a.Target != b.Target {
				t.Fatalf("event %d changed in round trip: %+v -> %+v", i, a, b)
			}
			if a.Kind.needsIndex() && a.Index != b.Index {
				t.Fatalf("event %d index changed: %d -> %d", i, a.Index, b.Index)
			}
			if a.Kind.needsFactor() && a.Factor != b.Factor {
				t.Fatalf("event %d factor changed: %g -> %g", i, a.Factor, b.Factor)
			}
		}
	})
}
