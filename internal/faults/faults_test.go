package faults

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"storagesim/internal/sim"
)

// fakeTarget records the calls delivered to it.
type fakeTarget struct {
	servers int
	calls   []string
}

func (f *fakeTarget) FaultServers() int        { return f.servers }
func (f *fakeTarget) FailServer(i int)         { f.calls = append(f.calls, "fail", itoa(i)) }
func (f *fakeTarget) RecoverServer(i int)      { f.calls = append(f.calls, "recover", itoa(i)) }
func (f *fakeTarget) SetLinkHealth(v float64)  { f.calls = append(f.calls, "link", ftoa(v)) }
func (f *fakeTarget) SetMediaHealth(v float64) { f.calls = append(f.calls, "media", ftoa(v)) }

// fakeUnitTarget adds redundancy units to fakeTarget.
type fakeUnitTarget struct {
	fakeTarget
	units int
}

func (f *fakeUnitTarget) FaultUnits() int   { return f.units }
func (f *fakeUnitTarget) FailUnit(i int)    { f.calls = append(f.calls, "unit-fail", itoa(i)) }
func (f *fakeUnitTarget) RecoverUnit(i int) { f.calls = append(f.calls, "unit-recover", itoa(i)) }

func itoa(i int) string     { return string(rune('0' + i)) }
func ftoa(v float64) string { return string(rune('0' + int(v*10))) }

func TestParseSchedule(t *testing.T) {
	data := []byte(`{"events": [
		{"at": "10ms", "kind": "server-fail", "target": "vast", "index": 0},
		{"at": "40ms", "kind": "server-recover", "target": "vast", "index": 0},
		{"at": "5ms", "kind": "link-derate", "factor": 0.5},
		{"at": "1.5", "kind": "media-derate", "factor": 0.8},
		{"at": "2s", "kind": "link-restore"},
		{"at": "20ms", "kind": "unit-fail", "target": "vast", "index": 1},
		{"at": "80ms", "kind": "unit-recover", "target": "vast", "index": 1}
	]}`)
	s, err := ParseSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 7 {
		t.Fatalf("parsed %d events, want 7", len(s.Events))
	}
	if s.Events[5].Kind != UnitFail || s.Events[5].Index != 1 {
		t.Fatalf("unit-fail parsed wrong: %+v", s.Events[5])
	}
	if s.Events[0].At != sim.Duration(10*time.Millisecond) || s.Events[0].Index != 0 {
		t.Fatalf("event 0 parsed wrong: %+v", s.Events[0])
	}
	// Bare numbers are seconds.
	if s.Events[3].At != sim.Duration(1500*time.Millisecond) {
		t.Fatalf("bare-seconds offset parsed as %v", s.Events[3].At)
	}
}

func TestParseScheduleRejects(t *testing.T) {
	cases := map[string]string{
		"unknown kind":      `{"events":[{"at":"1s","kind":"server-melt","index":0}]}`,
		"missing index":     `{"events":[{"at":"1s","kind":"server-fail"}]}`,
		"factor on fail":    `{"events":[{"at":"1s","kind":"server-fail","index":0,"factor":0.5}]}`,
		"missing factor":    `{"events":[{"at":"1s","kind":"link-derate"}]}`,
		"index on derate":   `{"events":[{"at":"1s","kind":"link-derate","factor":0.5,"index":1}]}`,
		"args on restore":   `{"events":[{"at":"1s","kind":"link-restore","factor":1}]}`,
		"factor above one":  `{"events":[{"at":"1s","kind":"media-derate","factor":1.5}]}`,
		"negative offset":   `{"events":[{"at":"-1s","kind":"link-restore"}]}`,
		"unknown field":     `{"events":[{"at":"1s","kind":"server-fail","indx":0}]}`,
		"trailing document": `{"events":[]}{"events":[]}`,
		"bad duration":      `{"events":[{"at":"soon","kind":"link-restore"}]}`,
		"nan duration":      `{"events":[{"at":"NaN","kind":"link-restore"}]}`,
		"unit-fail no idx":  `{"events":[{"at":"1s","kind":"unit-fail"}]}`,
		"factor on unit":    `{"events":[{"at":"1s","kind":"unit-recover","index":0,"factor":0.5}]}`,
	}
	for name, data := range cases {
		if _, err := ParseSchedule([]byte(data)); err == nil {
			t.Errorf("%s: accepted %s", name, data)
		}
	}
}

func TestScheduleMarshalRoundTrip(t *testing.T) {
	s := Schedule{Events: []Event{
		{At: sim.Duration(10 * time.Millisecond), Kind: ServerFail, Target: "vast", Index: 2},
		{At: sim.Duration(time.Second), Kind: LinkDerate, Factor: 0.25},
		{At: sim.Duration(2 * time.Second), Kind: MediaRestore},
		{At: sim.Duration(3 * time.Second), Kind: UnitFail, Target: "vast", Index: 1},
		{At: sim.Duration(4 * time.Second), Kind: UnitRecover, Target: "vast", Index: 1},
	}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSchedule(data)
	if err != nil {
		t.Fatalf("round trip rejected %s: %v", data, err)
	}
	if len(back.Events) != len(s.Events) {
		t.Fatalf("round trip lost events: %s", data)
	}
	for i := range s.Events {
		if back.Events[i].At != s.Events[i].At || back.Events[i].Kind != s.Events[i].Kind ||
			back.Events[i].Target != s.Events[i].Target || back.Events[i].Factor != s.Events[i].Factor {
			t.Fatalf("event %d changed: %+v -> %+v", i, s.Events[i], back.Events[i])
		}
		if s.Events[i].Kind.needsIndex() && back.Events[i].Index != s.Events[i].Index {
			t.Fatalf("event %d index changed", i)
		}
	}
}

func TestInjectorDeliversInOrder(t *testing.T) {
	env := sim.NewEnv()
	tgt := &fakeTarget{servers: 4}
	inj := NewInjector(env)
	inj.Register("fs", tgt)
	// Deliberately unsorted; same-instant events must keep schedule order.
	sched := Schedule{Events: []Event{
		{At: sim.Duration(20 * time.Millisecond), Kind: ServerRecover, Index: 1},
		{At: sim.Duration(10 * time.Millisecond), Kind: ServerFail, Index: 1},
		{At: sim.Duration(20 * time.Millisecond), Kind: LinkDerate, Factor: 0.5},
		{At: sim.Duration(30 * time.Millisecond), Kind: MediaDerate, Factor: 0.9},
	}}
	if err := inj.Apply(sched); err != nil {
		t.Fatal(err)
	}
	env.Run()
	want := []string{"fail", "1", "recover", "1", "link", "5", "media", "9"}
	if got := strings.Join(tgt.calls, ","); got != strings.Join(want, ",") {
		t.Fatalf("delivery order %v, want %v", tgt.calls, want)
	}
	applied := inj.Applied()
	if len(applied) != 4 {
		t.Fatalf("recorded %d applied events, want 4", len(applied))
	}
	if applied[0].At != sim.Time(sim.Duration(10*time.Millisecond)) {
		t.Fatalf("first delivery at %v", applied[0].At)
	}
}

func TestInjectorValidation(t *testing.T) {
	env := sim.NewEnv()
	inj := NewInjector(env)
	inj.Register("a", &fakeTarget{servers: 2})
	inj.Register("b", &fakeTarget{servers: 2})

	// Ambiguous empty target with two registrations.
	err := inj.Apply(Schedule{Events: []Event{{Kind: LinkRestore}}})
	if err == nil || !strings.Contains(err.Error(), "names no target") {
		t.Fatalf("ambiguous target accepted: %v", err)
	}
	// Unknown target.
	err = inj.Apply(Schedule{Events: []Event{{Kind: LinkRestore, Target: "c"}}})
	if err == nil || !strings.Contains(err.Error(), "unknown target") {
		t.Fatalf("unknown target accepted: %v", err)
	}
	// Index out of range, checked against the registry up front.
	err = inj.Apply(Schedule{Events: []Event{{Kind: ServerFail, Target: "a", Index: 2}}})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range index accepted: %v", err)
	}
	// Unit events against a target without redundancy units.
	err = inj.Apply(Schedule{Events: []Event{{Kind: UnitFail, Target: "a", Index: 0}}})
	if err == nil || !strings.Contains(err.Error(), "no redundancy units") {
		t.Fatalf("unit-fail on unitless target accepted: %v", err)
	}
	// Unit index validated against FaultUnits, not FaultServers.
	inj.Register("u", &fakeUnitTarget{fakeTarget: fakeTarget{servers: 9}, units: 3})
	err = inj.Apply(Schedule{Events: []Event{{Kind: UnitFail, Target: "u", Index: 3}}})
	if err == nil || !strings.Contains(err.Error(), "3 units") {
		t.Fatalf("out-of-range unit index accepted: %v", err)
	}
	// Nothing may have been armed by the failed applies.
	if n := env.Pending(); n != 0 {
		t.Fatalf("failed Apply armed %d events", n)
	}
}

func TestInjectorDeliversUnitEvents(t *testing.T) {
	env := sim.NewEnv()
	tgt := &fakeUnitTarget{fakeTarget: fakeTarget{servers: 2}, units: 4}
	inj := NewInjector(env)
	inj.Register("fs", tgt)
	sched := Schedule{Events: []Event{
		{At: sim.Duration(10 * time.Millisecond), Kind: UnitFail, Index: 3},
		{At: sim.Duration(20 * time.Millisecond), Kind: UnitRecover, Index: 3},
	}}
	if err := inj.Apply(sched); err != nil {
		t.Fatal(err)
	}
	env.Run()
	want := []string{"unit-fail", "3", "unit-recover", "3"}
	if got := strings.Join(tgt.calls, ","); got != strings.Join(want, ",") {
		t.Fatalf("unit delivery %v, want %v", tgt.calls, want)
	}
}

func TestInjectorSingleTargetDefault(t *testing.T) {
	env := sim.NewEnv()
	tgt := &fakeTarget{servers: 1}
	inj := NewInjector(env)
	inj.Register("only", tgt)
	if err := inj.Apply(Schedule{Events: []Event{{Kind: MediaDerate, Factor: 0.5}}}); err != nil {
		t.Fatal(err)
	}
	env.Run()
	if len(tgt.calls) != 2 || tgt.calls[0] != "media" {
		t.Fatalf("default target not used: %v", tgt.calls)
	}
}

func TestInjectorOffsetsFromApplyInstant(t *testing.T) {
	// Events fire at injection-time-plus-offset, not at absolute time.
	env := sim.NewEnv()
	tgt := &fakeTarget{servers: 1}
	inj := NewInjector(env)
	inj.Register("fs", tgt)
	env.After(sim.Duration(50*time.Millisecond), func() {
		if err := inj.Apply(Schedule{Events: []Event{
			{At: sim.Duration(10 * time.Millisecond), Kind: ServerFail, Index: 0},
		}}); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	if len(inj.Applied()) != 1 {
		t.Fatal("event not delivered")
	}
	if got := inj.Applied()[0].At; got != sim.Time(sim.Duration(60*time.Millisecond)) {
		t.Fatalf("delivered at %v, want 60ms", got)
	}
}
