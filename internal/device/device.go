// Package device models block storage devices — storage-class-memory SSDs,
// hyperscale QLC flash, SAS hard disks, consumer NVMe — as latency +
// shared-bandwidth servers on the simulation fabric.
//
// Two levels of fidelity are offered, matching the two kinds of experiments
// in the paper:
//
//   - Op level (Read/Write/Flush): each I/O pays per-op access latency, a
//     seek penalty when it is not sequential with the previous access to the
//     same file, and then streams its bytes through the device's shared
//     bandwidth pipe under a queue-depth limit. Used for the single-node
//     fsync tests and the DLIO sample reads.
//
//   - Flow level (StreamRead/StreamWrite): a rank's whole phase is one flow;
//     non-sequential patterns are charged an inflation factor derived from
//     the same per-op costs, so a random-read stream obtains exactly the
//     device's effective random bandwidth. Used for the IOR scalability
//     sweeps where the paper sizes I/O to defeat caches (120 GB per node).
package device

import (
	"fmt"

	"storagesim/internal/sim"
)

// Access describes the spatial pattern of an I/O stream.
type Access int

const (
	// Sequential accesses advance through a file in order (IOR sequential
	// read/write; scientific and data-analytics workloads).
	Sequential Access = iota
	// Random accesses jump to uncorrelated offsets (IOR random read; the
	// paper's stand-in for ML workloads).
	Random
)

// String returns "seq" or "random".
func (a Access) String() string {
	if a == Sequential {
		return "seq"
	}
	return "random"
}

// Spec is the parameter set of a device model. All bandwidths are
// bytes/second; latencies are per operation.
type Spec struct {
	Name string
	// ReadBW and WriteBW are the sustained sequential media bandwidths.
	ReadBW, WriteBW float64
	// ReadLatency/WriteLatency are per-op access latencies (controller +
	// media access for the first byte).
	ReadLatency, WriteLatency sim.Duration
	// SeekPenalty is the extra cost of a non-sequential access: rotational
	// seek for disks, ~0 for flash.
	SeekPenalty sim.Duration
	// FlushLatency is the cost of making data durable on fsync. Devices
	// with power-loss protection (enterprise SSD, SCM) flush in ~0; consumer
	// NVMe must drain its volatile write cache.
	FlushLatency sim.Duration
	// QueueDepth bounds concurrent operations at the device.
	QueueDepth int
	// Units is the internal parallelism of the device: spindles in a RAID
	// group, members of a device bank. Per-op costs are paid per unit, so a
	// 120-spindle array serves 120 concurrent seeks. Zero means 1.
	Units int
}

// Validate reports the first problem with the spec, or nil.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("device: spec missing name")
	case s.ReadBW <= 0 || s.WriteBW <= 0:
		return fmt.Errorf("device %s: bandwidths must be positive", s.Name)
	case s.ReadLatency < 0 || s.WriteLatency < 0 || s.SeekPenalty < 0 || s.FlushLatency < 0:
		return fmt.Errorf("device %s: negative latency", s.Name)
	case s.QueueDepth <= 0:
		return fmt.Errorf("device %s: queue depth must be positive", s.Name)
	}
	return nil
}

// Scale returns a copy of the spec with bandwidths, queue depth and unit
// count multiplied by n — the standard way to build a RAID group or a bank
// of identical devices behind one controller. Per-unit characteristics
// (latency, seek, per-unit bandwidth) are preserved.
func (s Spec) Scale(n int, name string) Spec {
	out := s
	out.Name = name
	out.ReadBW *= float64(n)
	out.WriteBW *= float64(n)
	out.QueueDepth *= n
	if out.Units <= 0 {
		out.Units = 1
	}
	out.Units *= n
	return out
}

// units returns the effective unit count (>= 1).
func (s Spec) units() int {
	if s.Units <= 0 {
		return 1
	}
	return s.Units
}

// Device is an instantiated device on a fabric.
type Device struct {
	spec      Spec
	env       *sim.Env
	fab       *sim.Fabric
	readPipe  *sim.Pipe
	writePipe *sim.Pipe
	qd        *sim.Resource

	// nextOffset tracks the expected next sequential offset per file, used
	// to detect seeks at op level.
	nextOffset map[uint64]int64

	// service caches the per-(pattern, direction, ioSize) stream paths used
	// by the flow-level API; see StreamPipes. serviceList holds the service
	// pipes in creation order so Derate never iterates a map (map order
	// would leak into the fabric's dirty-pipe order and with it into float
	// evaluation order — a reproducibility hazard).
	service     map[serviceKey][]*sim.Pipe
	serviceList []*sim.Pipe

	// cached single-pipe media paths for full-bandwidth streams.
	readPath  []*sim.Pipe
	writePath []*sim.Pipe

	// health is the current fault derate factor, remembered so service
	// pipes created lazily mid-fault inherit it (see StreamPipes).
	health float64

	ops   int64
	seeks int64
}

type serviceKey struct {
	access Access
	write  bool
	ioSize int64
}

// New creates a device and registers its bandwidth pipes on the fabric.
func New(env *sim.Env, fab *sim.Fabric, spec Spec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		spec:       spec,
		env:        env,
		fab:        fab,
		readPipe:   fab.NewPipe(spec.Name+"/read", spec.ReadBW, 0),
		writePipe:  fab.NewPipe(spec.Name+"/write", spec.WriteBW, 0),
		qd:         sim.NewResource(env, spec.Name+"/qd", spec.QueueDepth),
		nextOffset: map[uint64]int64{},
		service:    map[serviceKey][]*sim.Pipe{},
		health:     1,
	}
	d.readPath = []*sim.Pipe{d.readPipe}
	d.writePath = []*sim.Pipe{d.writePipe}
	return d, nil
}

// MustNew is New that panics on a bad spec, for use with the validated
// presets in this package.
func MustNew(env *sim.Env, fab *sim.Fabric, spec Spec) *Device {
	d, err := New(env, fab, spec)
	if err != nil {
		panic(err)
	}
	return d
}

// Spec returns the device parameters.
func (d *Device) Spec() Spec { return d.spec }

// Ops returns the number of op-level I/Os served.
func (d *Device) Ops() int64 { return d.ops }

// Seeks returns how many of those paid the seek penalty.
func (d *Device) Seeks() int64 { return d.seeks }

// Derate multiplies the device's media and service pipe capacities by f
// (contention from other tenants of a shared array).
func (d *Device) Derate(f float64) {
	d.readPipe.SetCapacity(d.readPipe.Capacity() * f)
	d.writePipe.SetCapacity(d.writePipe.Capacity() * f)
	for _, svc := range d.serviceList {
		svc.SetCapacity(svc.Capacity() * f)
	}
}

// SetHealthFactor applies an absolute fault derate (1 = healthy, 0 =
// parked) to the media pipes and every derived service pipe — the SSD-wear
// and device-failure handle of the fault injector. serviceList is iterated
// (never the service map) so the dirty-pipe order stays deterministic.
func (d *Device) SetHealthFactor(f float64) {
	d.health = f
	d.readPipe.SetHealthFactor(f)
	d.writePipe.SetHealthFactor(f)
	for _, svc := range d.serviceList {
		svc.SetHealthFactor(f)
	}
}

// ReadPipe exposes the read bandwidth pipe (for wiring into routes).
func (d *Device) ReadPipe() *sim.Pipe { return d.readPipe }

// WritePipe exposes the write bandwidth pipe.
func (d *Device) WritePipe() *sim.Pipe { return d.writePipe }

// Read performs one op-level read of size bytes at offset within file.
func (d *Device) Read(p *sim.Proc, file uint64, offset, size int64) {
	d.op(p, file, offset, size, d.readPipe, d.spec.ReadLatency)
}

// Write performs one op-level write.
func (d *Device) Write(p *sim.Proc, file uint64, offset, size int64) {
	d.op(p, file, offset, size, d.writePipe, d.spec.WriteLatency)
}

func (d *Device) op(p *sim.Proc, file uint64, offset, size int64, pipe *sim.Pipe, lat sim.Duration) {
	if size <= 0 {
		return
	}
	d.qd.Acquire(p, 1)
	defer d.qd.Release(1)
	d.ops++
	if d.nextOffset[file] != offset {
		d.seeks++
		lat += d.spec.SeekPenalty
	}
	d.nextOffset[file] = offset + size
	if lat > 0 {
		p.Sleep(lat)
	}
	d.fab.Transfer(p, []*sim.Pipe{pipe}, float64(size), 0)
}

// Flush makes previously written data durable (the device half of fsync).
// A flush is a device-wide barrier: it drains the queue (acquires every
// slot) before paying the flush latency, so concurrent flushers serialize —
// the behaviour that makes fsync-per-write so expensive on consumer NVMe.
func (d *Device) Flush(p *sim.Proc) {
	if d.spec.FlushLatency <= 0 {
		return
	}
	d.qd.Acquire(p, d.spec.QueueDepth)
	p.Sleep(d.spec.FlushLatency)
	d.qd.Release(d.spec.QueueDepth)
}

// EffectiveBW returns the sustained aggregate bandwidth of a workload of
// ioSize-byte operations with the given pattern. The device is modeled as
// `Units` independent servers (spindles, SSDs): each op pays a transfer
// time at the unit's share of the media bandwidth, an access latency that
// queueing can overlap (latency / per-unit queue depth), and — for random
// patterns — a seek penalty that cannot be overlapped within a unit (a
// disk arm is mechanical, serial hardware). This makes random reads
// collapse on spinning media and stay near-sequential on flash, which is
// the mechanism behind the paper's GPFS-vs-VAST random-read contrast.
func (d *Device) EffectiveBW(a Access, write bool, ioSize int64) float64 {
	lat := d.spec.ReadLatency
	bw := d.spec.ReadBW
	if write {
		lat = d.spec.WriteLatency
		bw = d.spec.WriteBW
	}
	units := d.spec.units()
	perBW := bw / float64(units)
	qdPerUnit := d.spec.QueueDepth / units
	if qdPerUnit < 1 {
		qdPerUnit = 1
	}
	t := lat.Seconds()/float64(qdPerUnit) + float64(ioSize)/perBW
	if a == Random {
		t += d.spec.SeekPenalty.Seconds()
	}
	if t <= 0 {
		return bw
	}
	eff := float64(ioSize) / t * float64(units)
	if eff > bw {
		eff = bw
	}
	return eff
}

// PerStreamBW returns the sustainable rate of a single blocking stream of
// ioSize ops: unlike EffectiveBW it cannot exploit unit parallelism — one
// outstanding request occupies one spindle/die at a time. This is the
// service rate a random reader without prefetching sees.
func (d *Device) PerStreamBW(a Access, write bool, ioSize int64) float64 {
	lat := d.spec.ReadLatency
	bw := d.spec.ReadBW
	if write {
		lat = d.spec.WriteLatency
		bw = d.spec.WriteBW
	}
	perBW := bw / float64(d.spec.units())
	t := lat.Seconds() + float64(ioSize)/perBW
	if a == Random {
		t += d.spec.SeekPenalty.Seconds()
	}
	if t <= 0 {
		return perBW
	}
	return float64(ioSize) / t
}

// StreamPipes returns the pipes a flow-level stream with the given pattern
// and I/O size must cross at this device. For patterns whose per-op costs
// are negligible (large sequential I/O on flash) this is just the media
// pipe; otherwise a cached "service pipe" with capacity equal to the
// pattern's effective bandwidth is prepended, so that any number of
// concurrent random streams share the device's true random throughput while
// the network path still carries real bytes.
func (d *Device) StreamPipes(a Access, write bool, ioSize int64) []*sim.Pipe {
	media, mediaPath := d.readPipe, d.readPath
	bw := d.spec.ReadBW
	if write {
		media, mediaPath = d.writePipe, d.writePath
		bw = d.spec.WriteBW
	}
	eff := d.EffectiveBW(a, write, ioSize)
	if eff >= 0.999*bw {
		return mediaPath
	}
	key := serviceKey{access: a, write: write, ioSize: ioSize}
	path, ok := d.service[key]
	if !ok {
		name := fmt.Sprintf("%s/svc-%s-%s-%d", d.spec.Name, a, rw(write), ioSize)
		svc := d.fab.NewPipe(name, eff, 0)
		if d.health != 1 {
			svc.SetHealthFactor(d.health)
		}
		d.serviceList = append(d.serviceList, svc)
		path = []*sim.Pipe{svc, media}
		d.service[key] = path
	}
	return path
}

func rw(write bool) string {
	if write {
		return "w"
	}
	return "r"
}

// StreamRead moves `bytes` as one flow-level read stream with the given
// pattern and I/O size, via any extra pipes (the network path) the caller
// supplies, blocking until delivery. rateCap, when non-zero, bounds the
// stream's rate (e.g. a single TCP connection).
func (d *Device) StreamRead(p *sim.Proc, a Access, ioSize int64, bytes float64, path []*sim.Pipe, rateCap float64) {
	d.stream(p, a, false, ioSize, bytes, path, rateCap)
}

// StreamWrite is StreamRead for writes.
func (d *Device) StreamWrite(p *sim.Proc, a Access, ioSize int64, bytes float64, path []*sim.Pipe, rateCap float64) {
	d.stream(p, a, true, ioSize, bytes, path, rateCap)
}

func (d *Device) stream(p *sim.Proc, a Access, write bool, ioSize int64, bytes float64, path []*sim.Pipe, rateCap float64) {
	if bytes <= 0 {
		return
	}
	devPipes := d.StreamPipes(a, write, ioSize)
	if len(path) == 0 {
		// Device-only stream: hand the fabric the cached slice directly.
		d.fab.Transfer(p, devPipes, bytes, rateCap)
		return
	}
	// Concatenate into fresh storage: devPipes is a shared cached slice and
	// must never be extended in place.
	pipes := make([]*sim.Pipe, 0, len(devPipes)+len(path))
	pipes = append(append(pipes, devPipes...), path...)
	d.fab.Transfer(p, pipes, bytes, rateCap)
}
