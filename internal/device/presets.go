package device

import (
	"time"

	"storagesim/internal/units"
)

// Presets for the device families named in the paper (Section III-A and
// IV-B). Values come from public vendor specifications and the latency
// ranges the paper itself quotes; they are calibration constants, collected
// here so every physical assumption is visible and testable in one place.

// SCMSpec models a storage-class-memory SSD (the fast layer of a VAST
// DBox). The paper quotes SCM random-access latency of "100 nanoseconds to
// 30 microseconds"; we use 10 µs device-level with full power-loss
// protection (flush is free).
func SCMSpec(name string) Spec {
	return Spec{
		Name:         name,
		ReadBW:       2.4 * units.GBps.Float(),
		WriteBW:      2.0 * units.GBps.Float(),
		ReadLatency:  10 * time.Microsecond,
		WriteLatency: 10 * time.Microsecond,
		SeekPenalty:  0,
		FlushLatency: 0,
		QueueDepth:   64,
	}
}

// QLCSpec models a hyperscale quad-level-cell flash SSD (the capacity layer
// of a VAST DBox). QLC reads are fast; direct QLC programming is slow —
// which is exactly why VAST stages writes in SCM first.
func QLCSpec(name string) Spec {
	return Spec{
		Name:         name,
		ReadBW:       3.2 * units.GBps.Float(),
		WriteBW:      1.0 * units.GBps.Float(),
		ReadLatency:  90 * time.Microsecond,
		WriteLatency: 2 * time.Millisecond, // QLC program time
		SeekPenalty:  0,
		FlushLatency: 0, // enterprise PLP
		QueueDepth:   128,
	}
}

// SASHDDSpec models a nearline SAS hard disk (Lustre OST media on the LC
// clusters and the GPFS NSD media class). The seek penalty is what makes
// random reads collapse on HDD-backed file systems (the paper's 90% GPFS
// drop).
func SASHDDSpec(name string) Spec {
	return Spec{
		Name:         name,
		ReadBW:       230 * units.MBps.Float(),
		WriteBW:      210 * units.MBps.Float(),
		ReadLatency:  2 * time.Millisecond,
		WriteLatency: 2 * time.Millisecond,
		SeekPenalty:  6 * time.Millisecond, // average seek + rotational
		FlushLatency: 8 * time.Millisecond,
		QueueDepth:   4,
	}
}

// NVMe970ProSpec models one Samsung 970 PRO (the node-local NVMe on
// Wombat): PCIe Gen3x4, ~3.5/2.7 GB/s sequential read/write, and a costly
// flush because the consumer part has no power-loss-protected cache.
func NVMe970ProSpec(name string) Spec {
	return Spec{
		Name:         name,
		ReadBW:       2.9 * units.GBps.Float(), // sustained host-side (A64FX PCIe Gen3) rate
		WriteBW:      2.7 * units.GBps.Float(),
		ReadLatency:  80 * time.Microsecond,
		WriteLatency: 30 * time.Microsecond,
		SeekPenalty:  0,
		FlushLatency: 850 * time.Microsecond, // volatile-cache drain on FUA/flush
		QueueDepth:   32,
	}
}

// GPFSRaidSpec models one GPFS-RAID (declustered RAID) array behind a
// Lassen NSD server: many HDDs striped so that sequential bandwidth is
// high, while random access still pays a (reduced, because declustered)
// seek cost.
func GPFSRaidSpec(name string) Spec {
	base := SASHDDSpec(name)
	s := base.Scale(40, name) // ~40 data spindles per NSD array
	// Declustering and track caches soften per-op costs versus a raw disk.
	s.ReadLatency = 1 * time.Millisecond
	s.WriteLatency = 1 * time.Millisecond
	s.SeekPenalty = 4 * time.Millisecond
	s.FlushLatency = 4 * time.Millisecond
	return s
}

// LustreOSTSpec models one Lustre OSS backend: an 80-disk SAS HDD raidz2
// group (Section IV-B), striped for bandwidth.
func LustreOSTSpec(name string) Spec {
	s := SASHDDSpec(name).Scale(20, name) // raidz2 groups yield ~20 disks of useful stream bw
	s.FlushLatency = 5 * time.Millisecond // ZFS intent log on SSD mirrors absorbs fsync
	return s
}
