package device

import (
	"testing"
	"testing/quick"
	"time"

	"storagesim/internal/sim"
)

func TestPerStreamBWSingleSpindle(t *testing.T) {
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	// 120-spindle array: a single blocking random stream still only gets
	// one spindle's seek-bound rate.
	d := MustNew(e, fab, SASHDDSpec("hdd").Scale(120, "raid"))
	per := d.PerStreamBW(Random, false, 1<<20)
	agg := d.EffectiveBW(Random, false, 1<<20)
	if per >= agg/10 {
		t.Fatalf("per-stream (%.2e) too close to aggregate (%.2e): unit parallelism leaked", per, agg)
	}
	// Analytic check: 1 MiB / (2ms lat + 6ms seek + 1 MiB/230MB/s).
	spec := SASHDDSpec("x")
	want := float64(1<<20) / (spec.ReadLatency.Seconds() + spec.SeekPenalty.Seconds() + float64(1<<20)/spec.ReadBW)
	if per < 0.95*want || per > 1.05*want {
		t.Fatalf("per-stream = %.3e, want %.3e", per, want)
	}
}

func TestPerStreamBWScalesWithIOSize(t *testing.T) {
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, SASHDDSpec("hdd"))
	small := d.PerStreamBW(Random, false, 64<<10)
	big := d.PerStreamBW(Random, false, 4<<20)
	if big <= small {
		t.Fatalf("larger I/O must amortize seeks: %e vs %e", small, big)
	}
}

func TestDerateScalesPipes(t *testing.T) {
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, SASHDDSpec("hdd"))
	// Materialize a service pipe so derate covers it too.
	svc := d.StreamPipes(Random, false, 1<<20)[0]
	before, beforeSvc := d.ReadPipe().Capacity(), svc.Capacity()
	d.Derate(0.5)
	if d.ReadPipe().Capacity() != before/2 {
		t.Fatal("media pipe not derated")
	}
	if svc.Capacity() != beforeSvc/2 {
		t.Fatal("service pipe not derated")
	}
}

func TestStreamPipesCachedPerKey(t *testing.T) {
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, SASHDDSpec("hdd"))
	a := d.StreamPipes(Random, false, 1<<20)
	b := d.StreamPipes(Random, false, 1<<20)
	if a[0] != b[0] {
		t.Fatal("service pipe not cached: every stream would get private bandwidth")
	}
	c := d.StreamPipes(Random, false, 64<<10)
	if c[0] == a[0] {
		t.Fatal("different I/O sizes must not share a service pipe")
	}
}

func TestFlushBarrierDrainsQueue(t *testing.T) {
	// A flush issued while reads are in flight must wait for them, and
	// block new ops meanwhile.
	spec := testSpec()
	spec.ReadLatency = 10 * time.Millisecond
	spec.FlushLatency = 5 * time.Millisecond
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, spec)
	var flushDone, lateRead sim.Time
	for i := 0; i < 4; i++ { // fill the QD=4 queue with 10ms reads
		i := i
		e.Go("r", func(p *sim.Proc) {
			d.Read(p, uint64(i), 0, 1)
		})
	}
	e.Go("f", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		d.Flush(p)
		flushDone = p.Now()
	})
	e.Go("late", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		d.Read(p, 9, 0, 1)
		lateRead = p.Now()
	})
	e.Run()
	if sim.Duration(flushDone) < 15*time.Millisecond {
		t.Fatalf("flush finished at %v, before the queue drained", sim.Duration(flushDone))
	}
	if lateRead < flushDone {
		t.Fatalf("read jumped the flush barrier: read %v, flush %v", lateRead, flushDone)
	}
}

// Property: EffectiveBW is monotone in io size for any pattern, bounded by
// media bandwidth, and PerStreamBW never exceeds EffectiveBW.
func TestBWModelProperty(t *testing.T) {
	f := func(units uint8, ioSizeK uint16, random bool) bool {
		n := int(units%64) + 1
		ioSize := int64(ioSizeK%4096+4) << 10
		e := sim.NewEnv()
		fab := sim.NewFabric(e)
		d := MustNew(e, fab, SASHDDSpec("hdd").Scale(n, "raid"))
		a := Sequential
		if random {
			a = Random
		}
		eff := d.EffectiveBW(a, false, ioSize)
		eff2 := d.EffectiveBW(a, false, ioSize*2)
		per := d.PerStreamBW(a, false, ioSize)
		media := d.Spec().ReadBW
		return eff <= media*(1+1e-9) && eff2 >= eff*(1-1e-9) && per <= eff*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
