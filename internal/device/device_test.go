package device

import (
	"fmt"
	"math"
	"testing"
	"time"

	"storagesim/internal/sim"
	"storagesim/internal/units"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

func testSpec() Spec {
	return Spec{
		Name:         "test",
		ReadBW:       1e9,
		WriteBW:      5e8,
		ReadLatency:  100 * time.Microsecond,
		WriteLatency: 50 * time.Microsecond,
		SeekPenalty:  5 * time.Millisecond,
		FlushLatency: time.Millisecond,
		QueueDepth:   4,
	}
}

func TestSpecValidate(t *testing.T) {
	s := testSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.ReadBW = 0 },
		func(s *Spec) { s.WriteBW = -1 },
		func(s *Spec) { s.ReadLatency = -time.Second },
		func(s *Spec) { s.QueueDepth = 0 },
	}
	for i, mutate := range bad {
		s := testSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestScale(t *testing.T) {
	s := testSpec().Scale(10, "raid")
	if s.Name != "raid" || s.ReadBW != 1e10 || s.WriteBW != 5e9 || s.QueueDepth != 40 {
		t.Fatalf("scaled = %+v", s)
	}
	if s.ReadLatency != testSpec().ReadLatency {
		t.Fatal("scaling must not change latency")
	}
}

func TestOpLevelSequentialRead(t *testing.T) {
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, testSpec())
	var end sim.Time
	e.Go("r", func(p *sim.Proc) {
		// 10 sequential 1 MiB reads: each pays 100us + 1MiB/1GB/s.
		for i := int64(0); i < 10; i++ {
			d.Read(p, 1, i*1048576, 1048576)
		}
		end = p.Now()
	})
	e.Run()
	perOp := 100e-6 + 1048576/1e9
	want := 10 * perOp
	if !approx(sim.Duration(end).Seconds(), want, 1e-3) {
		t.Fatalf("10 seq reads took %v, want %.6fs", sim.Duration(end), want)
	}
	if d.Seeks() != 0 {
		t.Fatalf("sequential stream counted %d seeks", d.Seeks())
	}
}

func TestOpLevelRandomPaysSeek(t *testing.T) {
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, testSpec())
	var seqEnd, randEnd sim.Duration
	run := func(offsets []int64) sim.Duration {
		e := sim.NewEnv()
		fab := sim.NewFabric(e)
		d = MustNew(e, fab, testSpec())
		var end sim.Time
		e.Go("r", func(p *sim.Proc) {
			for _, off := range offsets {
				d.Read(p, 1, off, 1048576)
			}
			end = p.Now()
		})
		e.Run()
		return sim.Duration(end)
	}
	seq := []int64{0, 1048576, 2097152, 3145728}
	rnd := []int64{0, 99 * 1048576, 7 * 1048576, 55 * 1048576}
	seqEnd, randEnd = run(seq), run(rnd)
	// Random pays 3 extra seeks of 5ms (first op of both runs seeks or not
	// identically: offset 0 matches the initial expected offset 0).
	extra := (randEnd - seqEnd).Seconds()
	if !approx(extra, 3*5e-3, 0.01) {
		t.Fatalf("random extra cost = %v, want ~15ms", randEnd-seqEnd)
	}
	if d.Seeks() != 3 {
		t.Fatalf("seeks = %d, want 3", d.Seeks())
	}
}

func TestQueueDepthLimitsConcurrency(t *testing.T) {
	// 8 concurrent 1-byte ops on a QD=4 device with 1ms latency take 2ms,
	// not 1ms.
	spec := testSpec()
	spec.ReadLatency = time.Millisecond
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, spec)
	var last sim.Time
	for i := 0; i < 8; i++ {
		i := i
		e.Go(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			d.Read(p, uint64(i), 0, 1)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	e.Run()
	got := sim.Duration(last).Seconds()
	if got < 2e-3 || got > 2.2e-3 {
		t.Fatalf("8 ops on QD4 took %v, want ~2ms", sim.Duration(last))
	}
}

func TestFlush(t *testing.T) {
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, testSpec())
	var end sim.Time
	e.Go("f", func(p *sim.Proc) {
		d.Flush(p)
		end = p.Now()
	})
	e.Run()
	if sim.Duration(end) != time.Millisecond {
		t.Fatalf("flush took %v, want 1ms", sim.Duration(end))
	}
}

func TestEffectiveBWSequentialNearMedia(t *testing.T) {
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, testSpec())
	eff := d.EffectiveBW(Sequential, false, 1048576)
	if eff < 0.95e9 {
		t.Fatalf("seq effective = %v, want near 1 GB/s", units.BPS(eff))
	}
}

func TestEffectiveBWRandomCollapsesOnSeeky(t *testing.T) {
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, SASHDDSpec("hdd"))
	seq := d.EffectiveBW(Sequential, false, 1048576)
	rnd := d.EffectiveBW(Random, false, 1048576)
	if rnd >= seq {
		t.Fatalf("random (%v) not slower than sequential (%v)", units.BPS(rnd), units.BPS(seq))
	}
	drop := 1 - rnd/seq
	if drop < 0.2 {
		t.Fatalf("HDD random drop = %.0f%%, want substantial", drop*100)
	}
}

func TestEffectiveBWRandomNearSeqOnFlash(t *testing.T) {
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, QLCSpec("qlc"))
	seq := d.EffectiveBW(Sequential, false, 1048576)
	rnd := d.EffectiveBW(Random, false, 1048576)
	if rnd < 0.9*seq {
		t.Fatalf("flash random %v much slower than seq %v", units.BPS(rnd), units.BPS(seq))
	}
}

func TestStreamReadUsesServicePipeForRandom(t *testing.T) {
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, SASHDDSpec("hdd"))
	const ioSize = 1048576
	eff := d.EffectiveBW(Random, false, ioSize)
	bytes := eff * 2 // should take ~2s at effective bandwidth
	var end sim.Time
	e.Go("s", func(p *sim.Proc) {
		d.StreamRead(p, Random, ioSize, bytes, nil, 0)
		end = p.Now()
	})
	e.Run()
	if !approx(sim.Duration(end).Seconds(), 2.0, 0.01) {
		t.Fatalf("random stream took %v, want ~2s", sim.Duration(end))
	}
}

func TestStreamConcurrentRandomSharesEffectiveBW(t *testing.T) {
	// 4 concurrent random streams on one HDD must share the random
	// effective bandwidth, not each get it.
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, SASHDDSpec("hdd"))
	const ioSize = 1048576
	eff := d.EffectiveBW(Random, false, ioSize)
	per := eff / 2 // each stream is eff/2 bytes; 4 streams = 2*eff total -> 2s
	var last sim.Time
	for i := 0; i < 4; i++ {
		e.Go(fmt.Sprintf("s%d", i), func(p *sim.Proc) {
			d.StreamRead(p, Random, ioSize, per, nil, 0)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	e.Run()
	if !approx(sim.Duration(last).Seconds(), 2.0, 0.01) {
		t.Fatalf("4 random streams took %v, want ~2s", sim.Duration(last))
	}
}

func TestStreamSequentialGetsMediaBW(t *testing.T) {
	e := sim.NewEnv()
	fab := sim.NewFabric(e)
	d := MustNew(e, fab, QLCSpec("qlc"))
	var end sim.Time
	e.Go("s", func(p *sim.Proc) {
		d.StreamRead(p, Sequential, 1048576, 3.2e9, nil, 0) // 1s at media bw
		end = p.Now()
	})
	e.Run()
	if !approx(sim.Duration(end).Seconds(), 1.0, 0.02) {
		t.Fatalf("seq stream took %v, want ~1s", sim.Duration(end))
	}
}

func TestPresetsValid(t *testing.T) {
	for _, s := range []Spec{
		SCMSpec("scm"), QLCSpec("qlc"), SASHDDSpec("hdd"),
		NVMe970ProSpec("nvme"), GPFSRaidSpec("gr"), LustreOSTSpec("ost"),
	} {
		if err := s.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", s.Name, err)
		}
	}
}

func TestPresetRelationships(t *testing.T) {
	// Relationships the models rely on: SCM has the lowest write latency;
	// QLC direct writes are slow; NVMe flush is expensive relative to SCM.
	scm, qlc, nvme := SCMSpec("scm"), QLCSpec("qlc"), NVMe970ProSpec("n")
	if scm.WriteLatency >= qlc.WriteLatency {
		t.Fatal("SCM must program faster than QLC")
	}
	if nvme.FlushLatency <= scm.FlushLatency {
		t.Fatal("consumer NVMe flush must cost more than PLP SCM")
	}
}
