package configsearch

import (
	"fmt"
	"sort"
)

// The search loop: enumerate → surrogate-score everything → keep the
// predicted frontier plus a margin band → DES-verify only the survivors
// → report the exact Pareto frontier of the measured survivors.

// Predictor scores one candidate analytically (microseconds). The
// returned metrics carry goodput and p99; the search fills in cost.
type Predictor func(c Candidate) (Metrics, error)

// Evaluator measures candidates with the DES (milliseconds each). It
// receives the whole batch so callers can fan it out over the
// experiments rep machinery; results must align with the input order.
type Evaluator func(cs []Candidate) ([]Metrics, error)

// Options tune one search run.
type Options struct {
	// Objectives are the frontier axes (default: goodput, p99, cost).
	Objectives []Objective
	// Margin is the fractional band kept around the predicted frontier
	// (default 0.25). Wider margins survive larger surrogate errors at
	// the price of more DES verification.
	Margin float64
	// Budget caps DES verifications; 0 means no cap. When the margin
	// band exceeds the budget the best-ranked survivors are kept and the
	// truncation is recorded in Result.Truncated — never silent.
	Budget int
}

func (o Options) withDefaults() Options {
	if len(o.Objectives) == 0 {
		o.Objectives = DefaultObjectives()
	}
	if o.Margin == 0 {
		o.Margin = 0.25
	}
	return o
}

// Validate reports the first problem with the options.
func (o Options) Validate() error {
	if o.Margin <= 0 {
		return fmt.Errorf("configsearch: margin must be positive")
	}
	seen := map[Objective]bool{}
	for _, ob := range o.Objectives {
		switch ob {
		case Goodput, P99, Cost:
		default:
			return fmt.Errorf("configsearch: unknown objective %q", ob)
		}
		if seen[ob] {
			return fmt.Errorf("configsearch: duplicate objective %q", ob)
		}
		seen[ob] = true
	}
	if o.Budget < 0 {
		return fmt.Errorf("configsearch: negative budget")
	}
	return nil
}

// ParseObjectives parses a comma-separated objective list ("goodput,cost").
func ParseObjectives(s string) ([]Objective, error) {
	if s == "" {
		return DefaultObjectives(), nil
	}
	var out []Objective
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, Objective(s[start:i]))
			start = i + 1
		}
	}
	o := Options{Objectives: out, Margin: 0.25}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Scored pairs a candidate with its metrics.
type Scored struct {
	Candidate Candidate
	Predicted Metrics
	// Measured is the DES result; only set for verified candidates.
	Measured *Metrics
}

// Result is one completed search.
type Result struct {
	// Objectives echoes the axes searched.
	Objectives []Objective
	// Margin echoes the pruning band.
	Margin float64
	// Candidates is the full enumerated space with predictions, in
	// enumeration order.
	Candidates []Scored
	// PredictedFrontier indexes Candidates: the surrogate's exact
	// frontier (no margin).
	PredictedFrontier []int
	// Survivors indexes Candidates: the margin band the DES verified.
	Survivors []int
	// Frontier indexes Candidates: the exact Pareto frontier of the
	// measured survivors — the search's answer.
	Frontier []int
	// Truncated counts margin-band survivors dropped by the budget
	// (0 when the band fit).
	Truncated int
}

// Search runs the full loop. Deterministic: enumeration order is fixed,
// the predictor and evaluator are assumed deterministic, and all
// tie-breaking is by enumeration index.
func Search(space *Space, opts Options, predict Predictor, evaluate Evaluator) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cands, err := space.Enumerate()
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("configsearch: space enumerates to zero candidates")
	}
	res := &Result{Objectives: opts.Objectives, Margin: opts.Margin}
	preds := make([]Metrics, len(cands))
	for i, c := range cands {
		m, err := predict(c)
		if err != nil {
			return nil, fmt.Errorf("configsearch: predict %s: %w", c, err)
		}
		m.CostHr = space.Cost(c)
		preds[i] = m
		res.Candidates = append(res.Candidates, Scored{Candidate: c, Predicted: m})
	}
	res.PredictedFrontier = ParetoIndices(preds, opts.Objectives)
	res.Survivors = MarginSurvivors(preds, opts.Objectives, opts.Margin)
	if opts.Budget > 0 && len(res.Survivors) > opts.Budget {
		// Rank survivors by how far inside the predicted frontier they
		// sit (frontier members first, then by enumeration index) and
		// keep the budgeted prefix. The drop count is reported, never
		// silent: a truncated verification can miss frontier points.
		onFrontier := map[int]bool{}
		for _, i := range res.PredictedFrontier {
			onFrontier[i] = true
		}
		ranked := append([]int(nil), res.Survivors...)
		sort.SliceStable(ranked, func(a, b int) bool {
			fa, fb := onFrontier[ranked[a]], onFrontier[ranked[b]]
			if fa != fb {
				return fa
			}
			return ranked[a] < ranked[b]
		})
		res.Truncated = len(ranked) - opts.Budget
		ranked = ranked[:opts.Budget]
		sort.Ints(ranked)
		res.Survivors = ranked
	}
	batch := make([]Candidate, len(res.Survivors))
	for k, i := range res.Survivors {
		batch[k] = cands[i]
	}
	measured, err := evaluate(batch)
	if err != nil {
		return nil, fmt.Errorf("configsearch: evaluate: %w", err)
	}
	if len(measured) != len(batch) {
		return nil, fmt.Errorf("configsearch: evaluator returned %d results for %d candidates", len(measured), len(batch))
	}
	survivorMetrics := make([]Metrics, len(res.Survivors))
	for k, i := range res.Survivors {
		m := measured[k]
		m.CostHr = space.Cost(cands[i])
		survivorMetrics[k] = m
		res.Candidates[i].Measured = &survivorMetrics[k]
	}
	for _, k := range ParetoIndices(survivorMetrics, opts.Objectives) {
		res.Frontier = append(res.Frontier, res.Survivors[k])
	}
	return res, nil
}
