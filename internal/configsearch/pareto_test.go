package configsearch

import (
	"reflect"
	"testing"
)

func m(goodput, p99, cost float64) Metrics {
	return Metrics{GoodputBps: goodput, P99Sec: p99, CostHr: cost}
}

func TestParetoIndices(t *testing.T) {
	ms := []Metrics{
		m(10, 1, 5),  // 0: frontier (best goodput)
		m(8, 0.5, 5), // 1: frontier (best p99)
		m(8, 1, 6),   // 2: dominated by 0 (less goodput, same p99, more cost)
		m(5, 2, 1),   // 3: frontier (cheapest)
		m(5, 2, 2),   // 4: dominated by 3
	}
	got := ParetoIndices(ms, DefaultObjectives())
	if want := []int{0, 1, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("frontier %v, want %v", got, want)
	}
}

func TestParetoSubsetPreservation(t *testing.T) {
	// The pruning-correctness argument: a point non-dominated in the
	// full set stays non-dominated in any subset containing it.
	ms := []Metrics{m(10, 1, 5), m(8, 0.5, 5), m(8, 1, 6), m(5, 2, 1)}
	full := ParetoIndices(ms, DefaultObjectives())
	sub := []Metrics{ms[0], ms[2], ms[3]} // drop point 1
	subFront := ParetoIndices(sub, DefaultObjectives())
	subSet := map[int]bool{}
	for _, i := range subFront {
		subSet[i] = true
	}
	for _, i := range full {
		if i == 1 {
			continue // not in the subset
		}
		j := map[int]int{0: 0, 2: 1, 3: 2}[i]
		if !subSet[j] {
			t.Fatalf("full-set frontier point %d lost its frontier status in the subset", i)
		}
	}
}

func TestMarginSurvivors(t *testing.T) {
	ms := []Metrics{
		m(10, 1, 5),      // 0: frontier
		m(9.5, 1.05, 5),  // 1: within 10% of 0 on every axis — survives
		m(5, 2, 5),       // 2: beaten by 0 by far more than the margin
		m(5, 2, 1),       // 3: cheapest, survives on the cost axis
	}
	got := MarginSurvivors(ms, DefaultObjectives(), 0.10)
	if want := []int{0, 1, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("survivors %v, want %v", got, want)
	}
	// Frontier members always survive: the band contains the frontier.
	front := ParetoIndices(ms, DefaultObjectives())
	surv := map[int]bool{}
	for _, i := range got {
		surv[i] = true
	}
	for _, i := range front {
		if !surv[i] {
			t.Fatalf("frontier point %d pruned by its own margin band", i)
		}
	}
}

func TestMarginSurvivorsKeepsDuplicates(t *testing.T) {
	ms := []Metrics{m(10, 1, 5), m(10, 1, 5)}
	if got := MarginSurvivors(ms, DefaultObjectives(), 0.05); len(got) != 2 {
		t.Fatalf("identical points pruned each other: %v", got)
	}
}

func TestObjectiveSubset(t *testing.T) {
	ms := []Metrics{
		m(10, 5, 9), // best goodput, terrible p99
		m(9, 1, 9),  // dominated on (goodput, cost) alone
	}
	two := ParetoIndices(ms, []Objective{Goodput, Cost})
	if !reflect.DeepEqual(two, []int{0}) {
		t.Fatalf("two-axis frontier %v, want [0]", two)
	}
	three := ParetoIndices(ms, DefaultObjectives())
	if !reflect.DeepEqual(three, []int{0, 1}) {
		t.Fatalf("three-axis frontier %v, want [0 1]", three)
	}
}

func TestParseObjectives(t *testing.T) {
	got, err := ParseObjectives("goodput,cost")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []Objective{Goodput, Cost}) {
		t.Fatalf("parsed %v", got)
	}
	if _, err := ParseObjectives("goodput,latency"); err == nil {
		t.Fatal("unknown objective accepted")
	}
	if _, err := ParseObjectives("cost,cost"); err == nil {
		t.Fatal("duplicate objective accepted")
	}
	def, err := ParseObjectives("")
	if err != nil || len(def) != 3 {
		t.Fatalf("empty list: %v %v", def, err)
	}
}
