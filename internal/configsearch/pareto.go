package configsearch

// Pareto-frontier extraction over (goodput, p99, cost) — goodput
// maximized, the other two minimized — plus the margin-band relaxation
// the surrogate-guided search prunes with.
//
// The pruning argument the search relies on: non-domination is preserved
// under subsetting. If a candidate is non-dominated in the full space, it
// is non-dominated in any subset that contains it, so the frontier of the
// DES-verified survivors contains every true-frontier point *provided no
// true-frontier candidate was pruned*. Pruning drops a candidate only
// when another candidate beats it on every objective simultaneously:
// by more than the margin on the surrogate-predicted axes (goodput, p99),
// and outright on the cost axis, which is priced exactly and carries no
// prediction error. With the surrogate's relative error bounded below
// margin/2 per predicted objective (the differential tests pin this), a
// predicted beating that decisive implies a true domination, so
// true-frontier candidates always survive.

// Objective names one search axis.
type Objective string

// Objectives.
const (
	// Goodput is delivered payload bandwidth (maximize).
	Goodput Objective = "goodput"
	// P99 is merged p99 completion latency (minimize).
	P99 Objective = "p99"
	// Cost is the pricing model's hourly rate (minimize).
	Cost Objective = "cost"
)

// DefaultObjectives is the full three-axis frontier.
func DefaultObjectives() []Objective { return []Objective{Goodput, P99, Cost} }

// Metrics is one candidate's scored or measured performance.
type Metrics struct {
	// GoodputBps is delivered payload bandwidth, bytes/second.
	GoodputBps float64
	// P99Sec is the merged p99 completion latency, seconds.
	P99Sec float64
	// CostHr is the candidate's price under the space's model.
	CostHr float64
	// ShedFrac is the fraction of offered requests refused.
	ShedFrac float64
	// Offered/Completed/Shed are the request counts of a DES run (zero
	// for surrogate predictions).
	Offered, Completed, Shed uint64
}

// axis carries one objective value with its direction. Values keep their
// natural sign (multiplicative margins need positive magnitudes), so the
// direction travels alongside instead of being folded into a negation.
// exact marks axes known without prediction error (cost): the margin
// band does not apply to them.
type axis struct {
	value    float64
	maximize bool
	exact    bool
}

func axes(m Metrics, objs []Objective) []axis {
	out := make([]axis, len(objs))
	for i, o := range objs {
		switch o {
		case Goodput:
			out[i] = axis{m.GoodputBps, true, false}
		case P99:
			out[i] = axis{m.P99Sec, false, false}
		case Cost:
			out[i] = axis{m.CostHr, false, true}
		}
	}
	return out
}

// dominates reports whether a dominates b: at least as good on every
// objective and strictly better on one.
func dominates(a, b []axis) bool {
	strict := false
	for i := range a {
		if a[i].maximize {
			if a[i].value < b[i].value {
				return false
			}
			if a[i].value > b[i].value {
				strict = true
			}
		} else {
			if a[i].value > b[i].value {
				return false
			}
			if a[i].value < b[i].value {
				strict = true
			}
		}
	}
	return strict
}

// beatsByMargin is the pruning predicate: a must beat b strictly by more
// than the fractional margin on every predicted axis, and be at least as
// good on every exact axis. Requiring a strict win on a predicted axis
// (not just the multiplicative bound, which degenerates at zero) keeps
// equal points from pruning each other.
func beatsByMargin(a, b []axis, margin float64) bool {
	won := false
	for i := range a {
		switch {
		case a[i].exact:
			if a[i].maximize {
				if a[i].value < b[i].value {
					return false
				}
				if a[i].value > b[i].value {
					won = true
				}
			} else {
				if a[i].value > b[i].value {
					return false
				}
				if a[i].value < b[i].value {
					won = true
				}
			}
		case a[i].maximize:
			if a[i].value <= b[i].value || a[i].value < b[i].value*(1+margin) {
				return false
			}
			won = true
		default:
			if a[i].value >= b[i].value || a[i].value > b[i].value*(1-margin) {
				return false
			}
			won = true
		}
	}
	return won
}

// ParetoIndices returns the indices of the non-dominated points, in
// input order. O(n²), fine for the enumerated spaces this serves.
func ParetoIndices(ms []Metrics, objs []Objective) []int {
	ax := make([][]axis, len(ms))
	for i, m := range ms {
		ax[i] = axes(m, objs)
	}
	var out []int
	for i := range ms {
		dominated := false
		for j := range ms {
			if i != j && dominates(ax[j], ax[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// MarginSurvivors returns the indices of points no other point beats
// under beatsByMargin — the predicted frontier plus its margin band on
// the predicted axes. The margin must be positive; exactly equal points
// never prune each other.
func MarginSurvivors(ms []Metrics, objs []Objective, margin float64) []int {
	ax := make([][]axis, len(ms))
	for i, m := range ms {
		ax[i] = axes(m, objs)
	}
	var out []int
	for i := range ms {
		pruned := false
		for j := range ms {
			if i != j && beatsByMargin(ax[j], ax[i], margin) {
				pruned = true
				break
			}
		}
		if !pruned {
			out = append(out, i)
		}
	}
	return out
}
