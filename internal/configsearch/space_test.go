package configsearch

import (
	"encoding/json"
	"strings"
	"testing"
)

func validSpaceJSON() string {
	return `{
		"machine": "Wombat",
		"backends": ["vast", "nvme"],
		"nodes": [2],
		"cnodes": [2, 4, 8],
		"nconnect": [4, 16],
		"dboxes": [4],
		"stripe_width": [1, 2],
		"ec_parity": [1, 2],
		"max_inflight": [16, 64],
		"pricing": {"client_node_hr": 1, "server_hr": 3, "enclosure_hr": 8}
	}`
}

func TestParseSpaceValid(t *testing.T) {
	s, err := ParseSpace([]byte(validSpaceJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine != "Wombat" || len(s.Backends) != 2 {
		t.Fatalf("parsed space mangled: %+v", s)
	}
	cands, err := s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	// vast: 3 cnodes × 2 nconnect × 1 dboxes × 2 stripes × 2 parities × 2 caps = 48;
	// nvme canonicalizes every vast knob away: 2 caps = 2.
	if len(cands) != 50 {
		t.Fatalf("enumerated %d candidates, want 50", len(cands))
	}
}

func TestParseSpaceRejections(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"machine":"Wombat","backends":["vast"],"nconect":[4]}`, "unknown field"},
		{"trailing data", validSpaceJSON() + `{"machine":"Ruby"}`, "trailing data"},
		{"empty backends", `{"machine":"Wombat","backends":[]}`, "at least one backend"},
		{"empty knob domain", `{"machine":"Wombat","backends":["vast"],"cnodes":[]}`, "empty cnodes domain"},
		{"empty nodes domain", `{"machine":"Wombat","backends":["vast"],"nodes":[]}`, "empty nodes domain"},
		{"unknown backend", `{"machine":"Wombat","backends":["ceph"]}`, "unknown backend"},
		{"no machine", `{"backends":["vast"]}`, "needs a machine"},
		{"stripe too wide", `{"machine":"Wombat","backends":["vast"],"dboxes":[4],"stripe_width":[3],"ec_parity":[2]}`, "exceeds the 4-enclosure server count"},
		{"stripe default dboxes", `{"machine":"Wombat","backends":["vast"],"stripe_width":[4],"ec_parity":[1]}`, "exceeds the 4-enclosure server count"},
		{"ec on wrong backend", `{"machine":"Ruby","backends":["lustre"],"ec_parity":[2]}`, "vast backend only"},
		{"vast knobs off wombat", `{"machine":"Lassen","backends":["vast"],"cnodes":[4]}`, "Wombat only"},
		{"qos without fault", `{"machine":"Wombat","backends":["vast"],"repair_qos":["throttled","aggressive"]}`, "fault scenario"},
		{"bad qos", `{"machine":"Wombat","backends":["vast"],"repair_qos":["gentle"]}`, "unknown repair_qos"},
		{"bad fault kind", `{"machine":"Wombat","backends":["vast"],"fault":{"kind":"meteor","at":"1s"}}`, "unknown fault kind"},
		{"fault without time", `{"machine":"Wombat","backends":["vast"],"fault":{"kind":"unit-fail"}}`, "positive time"},
		{"derate factor", `{"machine":"Wombat","backends":["vast"],"fault":{"kind":"link-derate","at":"1s","factor":1.5}}`, "out of (0,1]"},
		{"negative nodes", `{"machine":"Wombat","backends":["vast"],"nodes":[0]}`, "below 1"},
		{"negative pricing", `{"machine":"Wombat","backends":["vast"],"pricing":{"server_hr":-1}}`, "negative pricing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpace([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted %s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestSpaceRoundTrip(t *testing.T) {
	in := `{"machine":"Wombat","backends":["vast"],"nodes":[2,4],"cnodes":[4,8],
		"repair_qos":["throttled","aggressive"],
		"fault":{"kind":"unit-fail","at":"250ms"},
		"pricing":{"server_hr":2.5}}`
	s, err := ParseSpace([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpace(buf)
	if err != nil {
		t.Fatalf("re-parse of own marshal failed: %v\n%s", err, buf)
	}
	if s2.Machine != s.Machine || len(s2.Backends) != len(s.Backends) ||
		s2.Fault == nil || s2.Fault.At != s.Fault.At || s2.Pricing != s.Pricing {
		t.Fatalf("round trip mangled the space:\n%+v\n%+v", s, s2)
	}
}

func TestEnumerateCanonicalizesInertKnobs(t *testing.T) {
	s := Space{Machine: "Wombat", Backends: []string{"nvme", "vast"}, CNodes: []int{2, 4}}
	cands, err := s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	nvme := 0
	for _, c := range cands {
		if c.Backend == "nvme" {
			nvme++
			if c.CNodes != 0 {
				t.Fatalf("nvme candidate kept a vast knob: %+v", c)
			}
		}
	}
	if nvme != 1 {
		t.Fatalf("nvme collapsed to %d candidates, want 1", nvme)
	}
	// Without a fault, repair QoS canonicalizes away entirely.
	for _, c := range cands {
		if c.RepairQoS != "" {
			t.Fatalf("healthy space kept a repair QoS: %+v", c)
		}
	}
}

func TestEnumerateDeterministicOrder(t *testing.T) {
	s := Space{Machine: "Wombat", Backends: []string{"vast", "nvme"},
		Nodes: []int{4, 2}, CNodes: []int{8, 2}, MaxInflight: []int{64, 16}}
	a, err := s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	// Shuffled domain listing must not change enumeration order.
	s2 := Space{Machine: "Wombat", Backends: []string{"nvme", "vast"},
		Nodes: []int{2, 4}, CNodes: []int{2, 8}, MaxInflight: []int{16, 64}}
	b, err := s2.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCostModel(t *testing.T) {
	s := Space{Machine: "Wombat", Backends: []string{"vast"}}
	s.Pricing = DefaultPricing()
	base := s.Cost(Candidate{Backend: "vast", Nodes: 2})
	bigger := s.Cost(Candidate{Backend: "vast", Nodes: 2, CNodes: 16})
	if bigger <= base {
		t.Fatalf("more CNodes not more expensive: %.2f vs %.2f", bigger, base)
	}
	// Wider stripes amortize parity: same parity, wider stripe, cheaper.
	narrow := s.Cost(Candidate{Backend: "vast", Nodes: 2, DBoxes: 4, StripeWidth: 1, ECParity: 2})
	wide := s.Cost(Candidate{Backend: "vast", Nodes: 2, DBoxes: 4, StripeWidth: 2, ECParity: 2})
	if wide >= narrow {
		t.Fatalf("wider stripe not cheaper: %.2f vs %.2f", wide, narrow)
	}
	if s.Cost(Candidate{Backend: "nvme", Nodes: 2}) >= base {
		t.Fatal("node-local nvme should be cheaper than a vast cluster")
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{Backend: "vast", Nodes: 2, CNodes: 4, Nconnect: 16, DBoxes: 4,
		StripeWidth: 2, ECParity: 1, RepairQoS: "aggressive", ClientCacheMiB: 4096, MaxInflight: 64}
	want := "vast n2 cn4 nc16 db4 sw2 p1 aggressive cc4096 if64"
	if got := c.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	min := Candidate{Backend: "nvme", Nodes: 2}
	if got := min.String(); got != "nvme n2" {
		t.Fatalf("String() = %q, want %q", got, "nvme n2")
	}
}
