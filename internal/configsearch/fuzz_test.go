package configsearch

import (
	"encoding/json"
	"testing"
)

// FuzzParseSpace asserts two properties over arbitrary input: the parser
// never panics, and any accepted space round-trips — marshal then
// re-parse yields a space that enumerates to the same candidate list.
func FuzzParseSpace(f *testing.F) {
	f.Add([]byte(validSpaceJSON()))
	f.Add([]byte(`{"machine":"Ruby","backends":["lustre","gpfs"],"nodes":[1,2,4]}`))
	f.Add([]byte(`{"machine":"Wombat","backends":["vast"],"repair_qos":["throttled","aggressive"],"fault":{"kind":"unit-fail","at":"250ms"}}`))
	f.Add([]byte(`{"machine":"Wombat","backends":["vast"],"client_cache_mib":[0,4096],"pricing":{"cache_gib_hr":0.02}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"machine":"Wombat","backends":["vast"],"stripe_width":[3],"ec_parity":[2]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpace(data)
		if err != nil {
			return
		}
		buf, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted space does not marshal: %v", err)
		}
		s2, err := ParseSpace(buf)
		if err != nil {
			t.Fatalf("marshal of accepted space rejected: %v\n%s", err, buf)
		}
		a, err := s.Enumerate()
		if err != nil {
			t.Fatalf("accepted space does not enumerate: %v", err)
		}
		b, err := s2.Enumerate()
		if err != nil {
			t.Fatalf("round-tripped space does not enumerate: %v", err)
		}
		if len(a) != len(b) {
			t.Fatalf("round trip changed candidate count: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip changed candidate %d: %v vs %v", i, a[i], b[i])
			}
		}
	})
}
