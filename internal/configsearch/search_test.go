package configsearch

import (
	"fmt"
	"reflect"
	"testing"
)

// fakeMetrics gives each candidate deterministic synthetic performance:
// goodput binds on the narrower of the CNode pool and the connection
// pipe, p99 improves with nconnect. Same-cost candidates (cost depends
// only on CNodes) with starved connection pipes are margin-dominated, so
// the band genuinely prunes. Exercises the search plumbing, not realism.
func fakeMetrics(c Candidate) Metrics {
	cn := c.CNodes
	if cn == 0 {
		cn = 8
	}
	nc := c.Nconnect
	if nc == 0 {
		nc = 4
	}
	goodput := float64(cn) * 1e9
	if pipe := float64(nc) * 1e9; pipe < goodput {
		goodput = pipe
	}
	p99 := 0.010 / float64(nc)
	return Metrics{GoodputBps: goodput, P99Sec: p99}
}

func searchSpace() *Space {
	return &Space{
		Machine:  "Wombat",
		Backends: []string{"vast"},
		Nodes:    []int{2},
		CNodes:   []int{1, 2, 4, 8},
		Nconnect: []int{1, 4, 16},
	}
}

func TestSearchEndToEnd(t *testing.T) {
	var evaluated []Candidate
	predict := func(c Candidate) (Metrics, error) { return fakeMetrics(c), nil }
	evaluate := func(cs []Candidate) ([]Metrics, error) {
		evaluated = append(evaluated, cs...)
		out := make([]Metrics, len(cs))
		for i, c := range cs {
			out[i] = fakeMetrics(c) // perfect surrogate: DES agrees exactly
		}
		return out, nil
	}
	res, err := Search(searchSpace(), Options{Margin: 0.20}, predict, evaluate)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 12 {
		t.Fatalf("enumerated %d candidates, want 12", len(res.Candidates))
	}
	if len(res.Survivors) == 0 || len(res.Survivors) == len(res.Candidates) {
		t.Fatalf("margin band did not prune: %d of %d survived", len(res.Survivors), len(res.Candidates))
	}
	if len(evaluated) != len(res.Survivors) {
		t.Fatalf("evaluator saw %d candidates, survivors %d", len(evaluated), len(res.Survivors))
	}
	// With a perfect surrogate the measured frontier equals the predicted one.
	if !reflect.DeepEqual(res.Frontier, res.PredictedFrontier) {
		t.Fatalf("frontier %v != predicted %v under a perfect surrogate", res.Frontier, res.PredictedFrontier)
	}
	// Every frontier candidate carries a measured result.
	for _, i := range res.Frontier {
		if res.Candidates[i].Measured == nil {
			t.Fatalf("frontier candidate %d has no measurement", i)
		}
		if res.Candidates[i].Measured.CostHr <= 0 {
			t.Fatalf("frontier candidate %d has no cost", i)
		}
	}
	if res.Truncated != 0 {
		t.Fatalf("unbudgeted search reported truncation %d", res.Truncated)
	}
}

func TestSearchBudgetTruncation(t *testing.T) {
	predict := func(c Candidate) (Metrics, error) { return fakeMetrics(c), nil }
	evaluate := func(cs []Candidate) ([]Metrics, error) {
		out := make([]Metrics, len(cs))
		for i, c := range cs {
			out[i] = fakeMetrics(c)
		}
		return out, nil
	}
	full, err := Search(searchSpace(), Options{Margin: 0.20}, predict, evaluate)
	if err != nil {
		t.Fatal(err)
	}
	budget := len(full.PredictedFrontier)
	if budget >= len(full.Survivors) {
		t.Skipf("band (%d) not larger than frontier (%d); nothing to truncate", len(full.Survivors), budget)
	}
	res, err := Search(searchSpace(), Options{Margin: 0.20, Budget: budget}, predict, evaluate)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Survivors) != budget {
		t.Fatalf("budget %d but %d survivors verified", budget, len(res.Survivors))
	}
	if want := len(full.Survivors) - budget; res.Truncated != want {
		t.Fatalf("Truncated = %d, want %d", res.Truncated, want)
	}
	// Predicted-frontier members outrank band members: all kept.
	kept := map[int]bool{}
	for _, i := range res.Survivors {
		kept[i] = true
	}
	for _, i := range res.PredictedFrontier {
		if !kept[i] {
			t.Fatalf("budget dropped predicted-frontier candidate %d", i)
		}
	}
	// Survivor indices stay sorted so the evaluation batch is in
	// enumeration order (deterministic goldens depend on this).
	for k := 1; k < len(res.Survivors); k++ {
		if res.Survivors[k] <= res.Survivors[k-1] {
			t.Fatalf("survivors not ascending: %v", res.Survivors)
		}
	}
}

func TestSearchErrorPaths(t *testing.T) {
	predict := func(c Candidate) (Metrics, error) { return fakeMetrics(c), nil }
	okEval := func(cs []Candidate) ([]Metrics, error) { return make([]Metrics, len(cs)), nil }

	if _, err := Search(searchSpace(), Options{Margin: -1}, predict, okEval); err == nil {
		t.Fatal("negative margin accepted")
	}
	if _, err := Search(searchSpace(), Options{Objectives: []Objective{"latency"}}, predict, okEval); err == nil {
		t.Fatal("unknown objective accepted")
	}
	bad := &Space{Machine: "Wombat", Backends: []string{"ceph"}}
	if _, err := Search(bad, Options{}, predict, okEval); err == nil {
		t.Fatal("invalid space accepted")
	}
	failPredict := func(c Candidate) (Metrics, error) { return Metrics{}, fmt.Errorf("boom") }
	if _, err := Search(searchSpace(), Options{}, failPredict, okEval); err == nil {
		t.Fatal("predictor error swallowed")
	}
	shortEval := func(cs []Candidate) ([]Metrics, error) { return nil, nil }
	if _, err := Search(searchSpace(), Options{}, predict, shortEval); err == nil {
		t.Fatal("misaligned evaluator accepted")
	}
}
