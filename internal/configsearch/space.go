// Package configsearch is the what-if configuration explorer's search
// substrate: a typed knob space over the deployments the testbeds can
// build, enumeration of its candidate configurations, a per-resource
// pricing model, and Pareto-frontier extraction over (goodput, p99
// latency, cost) with a margin band for surrogate-guided pruning.
//
// The package deliberately knows nothing about the DES: candidates are
// scored through a Predictor (the analytical surrogate) and verified
// through an Evaluator (the traffic engine), both supplied by the caller
// (internal/experiments wires them). That keeps the dependency flow
// one-way — experiments → configsearch → surrogate — and makes the search
// logic testable with fake oracles.
package configsearch

import (
	"fmt"
	"sort"

	"storagesim/internal/sim"
)

// Knob domains understood by the space. A nil domain means "the
// deployment default"; an explicitly empty domain is rejected — a typoed
// space silently collapsing to zero candidates would invalidate a study.
//
// The vast-only knobs (cnodes, nconnect, dboxes, stripe_width, ec_parity,
// client_cache_mib) are canonicalized to zero for other backends, so a
// mixed-backend space does not multiply inert combinations.

// Fault optionally declares a degraded-window scenario: a single fault
// event mid-window, served through the repair manager, so the EC and
// repair-QoS knobs become performance-live instead of cost-only.
type Fault struct {
	// Kind is the fault class: "unit-fail", "server-fail" or
	// "link-derate" (faults.EventKind names).
	Kind string
	// At is when the fault fires.
	At sim.Duration
	// Index selects the failing unit/server.
	Index int
	// Factor is the link-derate multiplier in (0,1]; unused otherwise.
	Factor float64
}

// Validate reports the first problem with the fault block.
func (f *Fault) Validate() error {
	switch f.Kind {
	case "unit-fail", "server-fail":
		if f.Factor != 0 {
			return fmt.Errorf("configsearch: fault %s takes no factor", f.Kind)
		}
	case "link-derate":
		if f.Factor <= 0 || f.Factor > 1 {
			return fmt.Errorf("configsearch: link-derate factor %g out of (0,1]", f.Factor)
		}
	default:
		return fmt.Errorf("configsearch: unknown fault kind %q", f.Kind)
	}
	if f.At <= 0 {
		return fmt.Errorf("configsearch: fault needs a positive time")
	}
	if f.Index < 0 {
		return fmt.Errorf("configsearch: negative fault index")
	}
	return nil
}

// Pricing is the per-resource cost model attached to a space: simple
// hourly rates whose only job is to give the frontier a third axis that
// rises with provisioned hardware.
type Pricing struct {
	// ClientNodeHr prices one compute node.
	ClientNodeHr float64
	// ServerHr prices one protocol server (CNode, NSD, MDS/OSS).
	ServerHr float64
	// EnclosureHr prices one storage enclosure (DBox, OST shelf,
	// node-local SSD set).
	EnclosureHr float64
	// CacheGiBHr prices one GiB of provisioned cache.
	CacheGiBHr float64
}

// DefaultPricing returns rates in arbitrary but stable units.
func DefaultPricing() Pricing {
	return Pricing{ClientNodeHr: 1.0, ServerHr: 3.0, EnclosureHr: 8.0, CacheGiBHr: 0.02}
}

func (p Pricing) validate() error {
	if p.ClientNodeHr < 0 || p.ServerHr < 0 || p.EnclosureHr < 0 || p.CacheGiBHr < 0 {
		return fmt.Errorf("configsearch: negative pricing rate")
	}
	return nil
}

// Repair-QoS knob values.
const (
	// QoSThrottled caps rebuild flows at background priority.
	QoSThrottled = "throttled"
	// QoSAggressive lets rebuild flows take their fair share.
	QoSAggressive = "aggressive"
)

// Space is a typed knob space over deployments of one machine. Zero knob
// values mean "deployment default" throughout, so every domain can mix
// the default with explicit overrides.
type Space struct {
	// Machine is the hosting cluster ("Wombat", "Ruby", ...).
	Machine string
	// Backends are the storage deployments to consider ("vast",
	// "lustre", "nvme", "gpfs", "unifyfs").
	Backends []string
	// Nodes are client node counts.
	Nodes []int
	// CNodes are VAST protocol-server counts (0 = deployment default).
	CNodes []int
	// Nconnect are NFS/RDMA nconnect values (0 = deployment default).
	Nconnect []int
	// DBoxes are VAST enclosure counts (0 = deployment default).
	DBoxes []int
	// StripeWidth are EC data strips per stripe (0 = default). Resolved
	// width+parity must fit within the enclosure count.
	StripeWidth []int
	// ECParity are EC parity strips per stripe (0 = deployment default).
	ECParity []int
	// RepairQoS are rebuild QoS policies; varying it needs a Fault.
	RepairQoS []string
	// ClientCacheMiB are client page-cache sizes per mount (0 = default).
	ClientCacheMiB []int
	// MaxInflight override every tenant's admission cap (0 = keep the
	// tenant spec's own caps).
	MaxInflight []int
	// Fault optionally arms a degraded-window scenario.
	Fault *Fault
	// Pricing is the cost model; the zero value means DefaultPricing.
	Pricing Pricing
}

// Candidate is one fully specified configuration drawn from a Space.
// It is a comparable value type: enumeration dedups canonicalized
// candidates through an equality map.
type Candidate struct {
	Backend        string
	Nodes          int
	CNodes         int
	Nconnect       int
	DBoxes         int
	StripeWidth    int
	ECParity       int
	RepairQoS      string
	ClientCacheMiB int
	MaxInflight    int
}

// String renders the candidate as a compact, stable key for tables.
func (c Candidate) String() string {
	s := fmt.Sprintf("%s n%d", c.Backend, c.Nodes)
	if c.CNodes > 0 {
		s += fmt.Sprintf(" cn%d", c.CNodes)
	}
	if c.Nconnect > 0 {
		s += fmt.Sprintf(" nc%d", c.Nconnect)
	}
	if c.DBoxes > 0 {
		s += fmt.Sprintf(" db%d", c.DBoxes)
	}
	if c.StripeWidth > 0 {
		s += fmt.Sprintf(" sw%d", c.StripeWidth)
	}
	if c.ECParity > 0 {
		s += fmt.Sprintf(" p%d", c.ECParity)
	}
	if c.RepairQoS != "" {
		s += " " + c.RepairQoS
	}
	if c.ClientCacheMiB > 0 {
		s += fmt.Sprintf(" cc%d", c.ClientCacheMiB)
	}
	if c.MaxInflight > 0 {
		s += fmt.Sprintf(" if%d", c.MaxInflight)
	}
	return s
}

// knownBackends are the deployments the testbed builders can make.
var knownBackends = map[string]bool{
	"vast": true, "gpfs": true, "lustre": true, "nvme": true, "unifyfs": true,
}

// vastKnob reports whether the backend consumes the VAST-only knobs.
func vastKnob(backend string) bool { return backend == "vast" }

// Deployment defaults used to resolve zero knob values for validation
// and pricing. These mirror the Wombat VAST instance and the fixed LC
// deployments (cluster/params.go); the materializer in experiments reads
// the same numbers from the real configs, and the differential tests
// would catch drift between the two views.
const (
	defaultVASTCNodes = 8
	defaultVASTDBoxes = 4
	lustreServers     = 16 + 36 // MDS + OSS
	lustreEnclosures  = 36
	gpfsServers       = 16 // NSD servers
)

// resolvedDBoxes returns the enclosure count a candidate materializes.
func resolvedDBoxes(db int) int {
	if db == 0 {
		return defaultVASTDBoxes
	}
	return db
}

// resolvedParity returns the EC parity a candidate materializes (the
// VAST model defaults to min(2, DBoxes-1)).
func resolvedParity(p, db int) int {
	if p != 0 {
		return p
	}
	db = resolvedDBoxes(db)
	if db-1 < 2 {
		return db - 1
	}
	return 2
}

// resolvedStripeWidth returns the EC data-strip count (default 1).
func resolvedStripeWidth(w int) int {
	if w == 0 {
		return 1
	}
	return w
}

// normalized returns a copy with default domains filled in and every
// domain sorted ascending and deduplicated, so enumeration order is a
// function of the space's content, not of how the file listed values.
func (s Space) normalized() Space {
	n := s
	n.Backends = sortedStrings(s.Backends)
	n.RepairQoS = sortedStrings(s.RepairQoS)
	fill := func(d []int) []int {
		if d == nil {
			return []int{0}
		}
		return sortedInts(d)
	}
	if n.Nodes == nil {
		n.Nodes = []int{2}
	} else {
		n.Nodes = sortedInts(n.Nodes)
	}
	n.CNodes = fill(s.CNodes)
	n.Nconnect = fill(s.Nconnect)
	n.DBoxes = fill(s.DBoxes)
	n.StripeWidth = fill(s.StripeWidth)
	n.ECParity = fill(s.ECParity)
	n.ClientCacheMiB = fill(s.ClientCacheMiB)
	n.MaxInflight = fill(s.MaxInflight)
	if n.RepairQoS == nil {
		n.RepairQoS = []string{""}
	}
	if n.Pricing == (Pricing{}) {
		n.Pricing = DefaultPricing()
	}
	return n
}

func sortedInts(v []int) []int {
	out := append([]int(nil), v...)
	sort.Ints(out)
	j := 0
	for i, x := range out {
		if i == 0 || x != out[j-1] {
			out[j] = x
			j++
		}
	}
	return out[:j]
}

func sortedStrings(v []string) []string {
	if v == nil {
		return nil
	}
	out := append([]string(nil), v...)
	sort.Strings(out)
	j := 0
	for i, x := range out {
		if i == 0 || x != out[j-1] {
			out[j] = x
			j++
		}
	}
	return out[:j]
}

// Validate reports the first problem with the space. Cross-knob rules
// are conservative: every combination the domains can produce must be
// materializable, so a bad combination is rejected here rather than
// silently skipped during enumeration.
func (s *Space) Validate() error {
	if s.Machine == "" {
		return fmt.Errorf("configsearch: space needs a machine")
	}
	if len(s.Backends) == 0 {
		return fmt.Errorf("configsearch: space needs at least one backend")
	}
	hasVast := false
	for _, b := range s.Backends {
		if !knownBackends[b] {
			return fmt.Errorf("configsearch: unknown backend %q", b)
		}
		if b == "vast" {
			hasVast = true
		}
	}
	checkInts := func(name string, dom []int, min int) error {
		if dom != nil && len(dom) == 0 {
			return fmt.Errorf("configsearch: empty %s domain", name)
		}
		for _, v := range dom {
			if v < min {
				return fmt.Errorf("configsearch: %s value %d below %d", name, v, min)
			}
		}
		return nil
	}
	if err := checkInts("nodes", s.Nodes, 1); err != nil {
		return err
	}
	for _, k := range []struct {
		name string
		dom  []int
	}{
		{"cnodes", s.CNodes}, {"nconnect", s.Nconnect}, {"dboxes", s.DBoxes},
		{"stripe_width", s.StripeWidth}, {"ec_parity", s.ECParity},
		{"client_cache_mib", s.ClientCacheMiB}, {"max_inflight", s.MaxInflight},
	} {
		if err := checkInts(k.name, k.dom, 0); err != nil {
			return err
		}
	}
	if s.RepairQoS != nil && len(s.RepairQoS) == 0 {
		return fmt.Errorf("configsearch: empty repair_qos domain")
	}
	for _, q := range s.RepairQoS {
		if q != "" && q != QoSThrottled && q != QoSAggressive {
			return fmt.Errorf("configsearch: unknown repair_qos %q", q)
		}
	}
	// VAST-only knobs need the vast backend in play: a space that sweeps
	// EC parity over lustre alone would explore nothing.
	vastOnly := []struct {
		name string
		set  bool
	}{
		{"cnodes", nonDefaultInts(s.CNodes)},
		{"nconnect", nonDefaultInts(s.Nconnect)},
		{"dboxes", nonDefaultInts(s.DBoxes)},
		{"stripe_width", nonDefaultInts(s.StripeWidth)},
		{"ec_parity", nonDefaultInts(s.ECParity)},
		{"client_cache_mib", nonDefaultInts(s.ClientCacheMiB)},
	}
	for _, k := range vastOnly {
		if k.set && !hasVast {
			return fmt.Errorf("configsearch: %s applies to the vast backend only; backends %v include none", k.name, s.Backends)
		}
	}
	if hasVast && (nonDefaultInts(s.CNodes) || nonDefaultInts(s.Nconnect) ||
		nonDefaultInts(s.DBoxes) || nonDefaultInts(s.StripeWidth) || nonDefaultInts(s.ECParity)) && s.Machine != "Wombat" {
		return fmt.Errorf("configsearch: vast deployment knobs are mutable on Wombat only (machine %s)", s.Machine)
	}
	// EC geometry: stripe width + parity strips must fit the enclosure
	// count for every combination the domains can produce. Widths or
	// parities without an explicit dboxes domain resolve against the
	// deployment default.
	if nonDefaultInts(s.StripeWidth) || nonDefaultInts(s.ECParity) {
		minDB := defaultVASTDBoxes
		for i, db := range s.DBoxes {
			r := resolvedDBoxes(db)
			if i == 0 || r < minDB {
				minDB = r
			}
		}
		for _, w := range domainOr(s.StripeWidth) {
			for _, p := range domainOr(s.ECParity) {
				rw, rp := resolvedStripeWidth(w), resolvedParity(p, minDB)
				if rw+rp > minDB {
					return fmt.Errorf("configsearch: stripe width %d + parity %d exceeds the %d-enclosure server count", rw, rp, minDB)
				}
			}
		}
	}
	if len(s.RepairQoS) > 1 && s.Fault == nil {
		return fmt.Errorf("configsearch: repair_qos varies only under a fault scenario; add a fault block")
	}
	if s.Fault != nil {
		if err := s.Fault.Validate(); err != nil {
			return err
		}
	}
	return s.Pricing.validate()
}

// nonDefaultInts reports whether the domain holds any explicit override.
func nonDefaultInts(dom []int) bool {
	for _, v := range dom {
		if v != 0 {
			return true
		}
	}
	return false
}

// domainOr returns the domain, or the single default when nil.
func domainOr(dom []int) []int {
	if len(dom) == 0 {
		return []int{0}
	}
	return dom
}

// Enumerate expands the space into its canonicalized, deduplicated
// candidate list in a deterministic order: backends, then nodes, then
// each VAST knob, each ascending. Inert knobs (VAST knobs on other
// backends, repair QoS without a fault) are canonicalized to their
// defaults first, so the cross product never multiplies configurations
// the testbed cannot distinguish.
func (s *Space) Enumerate() ([]Candidate, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.normalized()
	var out []Candidate
	seen := map[Candidate]bool{}
	for _, be := range n.Backends {
		for _, nodes := range n.Nodes {
			for _, cn := range n.CNodes {
				for _, nc := range n.Nconnect {
					for _, db := range n.DBoxes {
						for _, sw := range n.StripeWidth {
							for _, p := range n.ECParity {
								for _, q := range n.RepairQoS {
									for _, cc := range n.ClientCacheMiB {
										for _, inf := range n.MaxInflight {
											c := Candidate{
												Backend: be, Nodes: nodes, CNodes: cn, Nconnect: nc,
												DBoxes: db, StripeWidth: sw, ECParity: p,
												RepairQoS: q, ClientCacheMiB: cc, MaxInflight: inf,
											}
											c = s.canonical(c)
											if !seen[c] {
												seen[c] = true
												out = append(out, c)
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// canonical zeroes the knobs the candidate's backend cannot express.
func (s *Space) canonical(c Candidate) Candidate {
	if !vastKnob(c.Backend) {
		c.CNodes, c.Nconnect, c.DBoxes = 0, 0, 0
		c.StripeWidth, c.ECParity, c.ClientCacheMiB = 0, 0, 0
	}
	if s.Fault == nil {
		c.RepairQoS = ""
	} else if c.RepairQoS == "" {
		c.RepairQoS = QoSThrottled
	}
	return c
}

// Cost prices a candidate with the space's per-resource model. EC parity
// raises the enclosure bill by the redundancy overhead (w+p)/w — wider
// stripes amortize parity, more parity strips cost raw capacity.
func (s *Space) Cost(c Candidate) float64 {
	p := s.Pricing
	if p == (Pricing{}) {
		p = DefaultPricing()
	}
	cost := p.ClientNodeHr * float64(c.Nodes)
	switch c.Backend {
	case "vast":
		cn := c.CNodes
		if cn == 0 {
			cn = defaultVASTCNodes
		}
		db := resolvedDBoxes(c.DBoxes)
		w := resolvedStripeWidth(c.StripeWidth)
		par := resolvedParity(c.ECParity, c.DBoxes)
		overhead := float64(w+par) / float64(w)
		cost += p.ServerHr*float64(cn) + p.EnclosureHr*float64(db)*overhead
		cost += p.CacheGiBHr * float64(c.ClientCacheMiB) / 1024 * float64(c.Nodes)
	case "lustre":
		cost += p.ServerHr*lustreServers + p.EnclosureHr*lustreEnclosures
	case "gpfs":
		cost += p.ServerHr * gpfsServers
	case "nvme", "unifyfs":
		cost += p.EnclosureHr * float64(c.Nodes)
	}
	return cost
}
