package configsearch

import (
	"bytes"
	"encoding/json"
	"fmt"

	"storagesim/internal/sim"
	"storagesim/internal/units"
)

// JSON wire format for knob spaces, mirroring the tenant-spec parser
// (traffic.ParseSpec): unknown fields and trailing data are rejected — a
// typoed "nconect" silently falling back to the default would invalidate
// a whole what-if study.
//
//	{
//	  "machine": "Wombat",
//	  "backends": ["vast", "nvme"],
//	  "nodes": [2],
//	  "cnodes": [2, 4, 8],
//	  "nconnect": [4, 16],
//	  "stripe_width": [1, 2],
//	  "ec_parity": [1, 2],
//	  "dboxes": [4],
//	  "max_inflight": [16, 64],
//	  "pricing": {"server_hr": 3, "enclosure_hr": 8}
//	}
//
// Durations in the fault block accept Go syntax or bare seconds, like
// fault schedules and tenant specs.

type jsonFault struct {
	Kind   string  `json:"kind"`
	At     string  `json:"at"`
	Index  int     `json:"index,omitempty"`
	Factor float64 `json:"factor,omitempty"`
}

type jsonPricing struct {
	ClientNodeHr float64 `json:"client_node_hr,omitempty"`
	ServerHr     float64 `json:"server_hr,omitempty"`
	EnclosureHr  float64 `json:"enclosure_hr,omitempty"`
	CacheGiBHr   float64 `json:"cache_gib_hr,omitempty"`
}

type jsonSpace struct {
	Machine        string       `json:"machine"`
	Backends       []string     `json:"backends"`
	Nodes          []int        `json:"nodes,omitempty"`
	CNodes         []int        `json:"cnodes,omitempty"`
	Nconnect       []int        `json:"nconnect,omitempty"`
	DBoxes         []int        `json:"dboxes,omitempty"`
	StripeWidth    []int        `json:"stripe_width,omitempty"`
	ECParity       []int        `json:"ec_parity,omitempty"`
	RepairQoS      []string     `json:"repair_qos,omitempty"`
	ClientCacheMiB []int        `json:"client_cache_mib,omitempty"`
	MaxInflight    []int        `json:"max_inflight,omitempty"`
	Fault          *jsonFault   `json:"fault,omitempty"`
	Pricing        *jsonPricing `json:"pricing,omitempty"`
}

// ParseSpace decodes and validates the JSON knob-space format.
func ParseSpace(data []byte) (Space, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var js jsonSpace
	if err := dec.Decode(&js); err != nil {
		return Space{}, fmt.Errorf("configsearch: bad space JSON: %v", err)
	}
	if dec.More() {
		return Space{}, fmt.Errorf("configsearch: trailing data after space")
	}
	s := Space{
		Machine:        js.Machine,
		Backends:       js.Backends,
		Nodes:          js.Nodes,
		CNodes:         js.CNodes,
		Nconnect:       js.Nconnect,
		DBoxes:         js.DBoxes,
		StripeWidth:    js.StripeWidth,
		ECParity:       js.ECParity,
		RepairQoS:      js.RepairQoS,
		ClientCacheMiB: js.ClientCacheMiB,
		MaxInflight:    js.MaxInflight,
	}
	if jf := js.Fault; jf != nil {
		f := Fault{Kind: jf.Kind, Index: jf.Index, Factor: jf.Factor}
		if jf.At != "" {
			d, err := units.ParseDuration(jf.At)
			if err != nil {
				return Space{}, fmt.Errorf("configsearch: fault at: %w", err)
			}
			f.At = sim.Duration(d)
		}
		s.Fault = &f
	}
	if jp := js.Pricing; jp != nil {
		s.Pricing = Pricing{
			ClientNodeHr: jp.ClientNodeHr,
			ServerHr:     jp.ServerHr,
			EnclosureHr:  jp.EnclosureHr,
			CacheGiBHr:   jp.CacheGiBHr,
		}
	}
	if err := s.Validate(); err != nil {
		return Space{}, err
	}
	return s, nil
}

// MarshalJSON renders the space back into the documented wire format, so
// programmatically built spaces can be written as example files and
// accepted spaces round-trip (see FuzzParseSpace).
func (s Space) MarshalJSON() ([]byte, error) {
	js := jsonSpace{
		Machine:        s.Machine,
		Backends:       s.Backends,
		Nodes:          s.Nodes,
		CNodes:         s.CNodes,
		Nconnect:       s.Nconnect,
		DBoxes:         s.DBoxes,
		StripeWidth:    s.StripeWidth,
		ECParity:       s.ECParity,
		RepairQoS:      s.RepairQoS,
		ClientCacheMiB: s.ClientCacheMiB,
		MaxInflight:    s.MaxInflight,
	}
	if f := s.Fault; f != nil {
		js.Fault = &jsonFault{Kind: f.Kind, At: f.At.String(), Index: f.Index, Factor: f.Factor}
	}
	if s.Pricing != (Pricing{}) {
		js.Pricing = &jsonPricing{
			ClientNodeHr: s.Pricing.ClientNodeHr,
			ServerHr:     s.Pricing.ServerHr,
			EnclosureHr:  s.Pricing.EnclosureHr,
			CacheGiBHr:   s.Pricing.CacheGiBHr,
		}
	}
	return json.Marshal(js)
}
