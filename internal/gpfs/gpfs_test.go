package gpfs

import (
	"testing"
	"time"

	"storagesim/internal/device"
	"storagesim/internal/fsapi"
	"storagesim/internal/netsim"
	"storagesim/internal/sim"
)

func testConfig() Config {
	return Config{
		Name:             "gpfs-test",
		NSDServers:       4,
		ServerNICBW:      10e9,
		RaidPerServer:    device.SASHDDSpec("hdd").Scale(20, "raid"),
		ServerCacheBytes: 1 << 30,
		ServerMemBW:      40e9,
		ClientCacheBytes: 64 << 20,
		CacheBlockBytes:  1 << 20,
		ClientStreamCap:  8e9,
		ClientWriteCap:   2e9,
		RPCLatency:       100 * time.Microsecond,
	}
}

func newTestSystem(t *testing.T) (*sim.Env, *sim.Fabric, *System) {
	t.Helper()
	env := sim.NewEnv()
	fab := sim.NewFabric(env)
	sys, err := New(env, fab, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return env, fab, sys
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.NSDServers = 0 },
		func(c *Config) { c.ServerNICBW = 0 },
		func(c *Config) { c.ServerMemBW = 0 },
		func(c *Config) { c.ClientStreamCap = 0 },
		func(c *Config) { c.ClientWriteCap = 0 },
		func(c *Config) { c.CacheBlockBytes = 0 },
		func(c *Config) { c.RaidPerServer.ReadBW = 0 },
	}
	for i, mutate := range mutations {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func measureStream(t *testing.T, a fsapi.Access, write bool, total int64) float64 {
	t.Helper()
	env, fab, sys := newTestSystem(t)
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 25e9, 0))
	var dur sim.Duration
	env.Go("x", func(p *sim.Proc) {
		cl.StreamWrite(p, "/f", fsapi.Sequential, 1<<20, total)
		if write {
			dur = sim.Duration(p.Now())
			return
		}
		start := p.Now()
		cl.StreamRead(p, "/f", a, 1<<20, total)
		dur = p.Now().Sub(start)
	})
	env.Run()
	return float64(total) / dur.Seconds()
}

func TestSequentialReadRidesReadahead(t *testing.T) {
	// Sequential streams are served through server memory, capped by the
	// client stack (8 GB/s here), not the spinning pool.
	bw := measureStream(t, fsapi.Sequential, false, 16<<30)
	if bw < 7.5e9 || bw > 8.5e9 {
		t.Fatalf("seq read = %.2e, want ~8e9 (client stream cap)", bw)
	}
}

func TestRandomReadCollapsesToSpindles(t *testing.T) {
	seq := measureStream(t, fsapi.Sequential, false, 4<<30)
	rnd := measureStream(t, fsapi.Random, false, 1<<30)
	if rnd > 0.25*seq {
		t.Fatalf("random read (%.2e) did not collapse vs sequential (%.2e)", rnd, seq)
	}
}

func TestWriteBoundByClientStack(t *testing.T) {
	bw := measureStream(t, fsapi.Sequential, true, 8<<30)
	if bw < 1.8e9 || bw > 2.2e9 {
		t.Fatalf("write = %.2e, want ~2e9 (client write cap)", bw)
	}
}

func TestPerNodeStackIsolation(t *testing.T) {
	// Two nodes each get their own stack pipes: aggregate read should be
	// ~2x one node's, not shared through a single stack.
	env, fab, sys := newTestSystem(t)
	c1 := sys.Mount("n1", netsim.NewIface(fab, "n1/nic", 25e9, 0))
	c2 := sys.Mount("n2", netsim.NewIface(fab, "n2/nic", 25e9, 0))
	const total = 8 << 30
	var last sim.Time
	wg := sim.NewWaitGroup(env)
	for i, cl := range []fsapi.Client{c1, c2} {
		cl := cl
		i := i
		wg.Go("w", func(p *sim.Proc) {
			cl.StreamWrite(p, "/f"+string(rune('0'+i)), fsapi.Sequential, 1<<20, total)
			cl.StreamRead(p, "/f"+string(rune('0'+i)), fsapi.Sequential, 1<<20, total)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	env.Run()
	// write at 2 GB/s + read at 8 GB/s per node, concurrently on two
	// nodes: makespan ~ 8GiB/2e9 + 8GiB/8e9 ≈ 5.4s. A shared stack would
	// double it.
	if sec := sim.Duration(last).Seconds(); sec > 6.5 {
		t.Fatalf("two nodes appear to share one client stack: makespan %.1fs", sec)
	}
}

func TestServerCacheServesFreshData(t *testing.T) {
	// Op-level: data just written is served from NSD memory, not the
	// spinning pool — the ResNet-50 effect.
	env, fab, sys := newTestSystem(t)
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 25e9, 0))
	env.Go("x", func(p *sim.Proc) {
		f := cl.Open(p, "/f", true)
		f.WriteAt(p, 0, 8<<20)
		f.Fsync(p)
		f.Close(p)
		raidOpsAfterWrite := sys.raid.Ops()
		cl.DropCaches() // client cold, server warm
		f = cl.Open(p, "/f", false)
		f.ReadAt(p, 0, 8<<20)
		f.Close(p)
		if sys.raid.Ops() != raidOpsAfterWrite {
			t.Errorf("warm-server read hit the RAID pool (%d -> %d ops)",
				raidOpsAfterWrite, sys.raid.Ops())
		}
	})
	env.Run()
}

func TestFsyncPaysRaidCommit(t *testing.T) {
	env, fab, sys := newTestSystem(t)
	_ = sys
	cl := sys.Mount("n0", netsim.NewIface(fab, "n0/nic", 25e9, 0))
	var withSync, withoutSync sim.Duration
	env.Go("x", func(p *sim.Proc) {
		f := cl.Open(p, "/a", true)
		start := p.Now()
		f.WriteAt(p, 0, 1<<20) // buffered: ~free
		withoutSync = p.Now().Sub(start)
		start = p.Now()
		f.Fsync(p)
		withSync = p.Now().Sub(start)
	})
	env.Run()
	if withSync <= withoutSync {
		t.Fatalf("fsync (%v) must cost more than a buffered write (%v)", withSync, withoutSync)
	}
	if withSync < testConfig().RaidPerServer.FlushLatency {
		t.Fatalf("fsync (%v) skipped the RAID commit (%v)", withSync, testConfig().RaidPerServer.FlushLatency)
	}
}

func TestDerate(t *testing.T) {
	env, fab, sys := newTestSystem(t)
	_ = env
	_ = fab
	before := sys.serverMem.Capacity()
	sys.Derate(0.5)
	if sys.serverMem.Capacity() != before/2 {
		t.Fatalf("derate did not halve server memory bandwidth")
	}
}
